package mixnn_test

import (
	"testing"

	"mixnn"
)

func TestFacadeDatasets(t *testing.T) {
	specs := mixnn.Datasets(mixnn.ScaleQuick, 1)
	if len(specs) != 4 {
		t.Fatalf("datasets = %d, want 4", len(specs))
	}
	if _, err := mixnn.DatasetByKey("lfw", mixnn.ScaleQuick, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := mixnn.DatasetByKey("mnist", mixnn.ScaleQuick, 1); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestFacadeArms(t *testing.T) {
	for _, arm := range []mixnn.Arm{
		mixnn.ClassicArm(),
		mixnn.MixNNArm(),
		mixnn.MixNNStreamArm(4),
		mixnn.NoisyArm(0.5),
	} {
		if arm.Key == "" || arm.Transform == nil {
			t.Fatalf("malformed arm %+v", arm)
		}
	}
}

// TestFacadeEndToEnd exercises the documented public workflow: build a
// federation, run it under attack, check both utility and protection.
func TestFacadeEndToEnd(t *testing.T) {
	spec, err := mixnn.DatasetByKey("cifar10", mixnn.ScaleQuick, 1)
	if err != nil {
		t.Fatal(err)
	}
	spec.FL.Rounds = 2
	spec.AttackEpochs = 2
	spec.AuxPerClass = 48

	sim, attrs, err := mixnn.NewFederation(spec, mixnn.MixNNArm(), 1)
	if err != nil {
		t.Fatal(err)
	}
	adv, err := mixnn.NewAttack(mixnn.AttackConfig{
		Arch:         spec.Arch,
		Source:       spec.Source,
		AuxPerClass:  spec.AuxPerClass,
		Epochs:       spec.AttackEpochs,
		BatchSize:    spec.FL.BatchSize,
		LearningRate: spec.FL.LearningRate,
		Active:       true,
		Seed:         5,
	})
	if err != nil {
		t.Fatal(err)
	}
	sim.Observer = adv
	sim.Disseminate = adv.Disseminator()

	metrics, err := sim.Run(spec.FL.Rounds)
	if err != nil {
		t.Fatal(err)
	}
	if len(metrics) != 2 {
		t.Fatalf("rounds = %d, want 2", len(metrics))
	}
	if metrics[1].MeanAccuracy <= 0.1 {
		t.Fatalf("mean accuracy %.3f suspiciously low", metrics[1].MeanAccuracy)
	}
	leak, err := adv.Accuracy(attrs)
	if err != nil {
		t.Fatal(err)
	}
	if leak > 0.8 {
		t.Fatalf("inference accuracy %.3f under MixNN — protection failed", leak)
	}
}
