// Benchmarks regenerating every table and figure of the paper's
// evaluation (§6), plus the ablations called out in DESIGN.md §9.
//
// Figure benches run one miniature experiment per iteration and attach the
// headline quantity (accuracy, inference accuracy, neighbour count) via
// b.ReportMetric, so `go test -bench` both times the pipeline and shows
// the reproduced result. See EXPERIMENTS.md for paper-vs-measured numbers.
package mixnn

import (
	"crypto/aes"
	"crypto/cipher"
	crand "crypto/rand"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"mixnn/internal/attack"
	"mixnn/internal/core"
	"mixnn/internal/enclave"
	"mixnn/internal/experiment"
	"mixnn/internal/nn"
	"mixnn/internal/privacy"
	"mixnn/internal/stats"
)

// benchSpec returns a reduced quick spec so one bench iteration is one
// short federated run.
func benchSpec(b *testing.B, key string, rounds int) experiment.DatasetSpec {
	b.Helper()
	spec, err := experiment.DatasetByKey(key, experiment.ScaleQuick, 1)
	if err != nil {
		b.Fatal(err)
	}
	spec.FL.Rounds = rounds
	spec.AttackEpochs = 2
	spec.AuxPerClass = 48
	return spec
}

// --- Figure 5: utility per arm -------------------------------------------

func BenchmarkFig5Utility(b *testing.B) {
	for _, dataset := range []string{"cifar10", "motionsense", "mobiact", "lfw"} {
		for _, arm := range experiment.Arms() {
			b.Run(fmt.Sprintf("%s/%s", dataset, arm.Key), func(b *testing.B) {
				spec := benchSpec(b, dataset, 2)
				var acc float64
				for i := 0; i < b.N; i++ {
					res, err := experiment.RunUtility(spec, arm, int64(i)+1)
					if err != nil {
						b.Fatal(err)
					}
					acc = res.FinalAccuracy()
				}
				b.ReportMetric(acc, "accuracy")
			})
		}
	}
}

// --- Figure 6: per-participant accuracy CDF ------------------------------

func BenchmarkFig6AccuracyCDF(b *testing.B) {
	spec := benchSpec(b, "cifar10", 2)
	var median float64
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunUtility(spec, experiment.Arms()[0], int64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		per := res.PerClientAt(spec.FL.Rounds - 1)
		_ = stats.CDF(per)
		median = stats.Percentile(per, 50)
	}
	b.ReportMetric(median, "median-accuracy")
}

// --- Figure 7: active ∇Sim inference per arm ------------------------------

func BenchmarkFig7Inference(b *testing.B) {
	for _, dataset := range []string{"cifar10", "motionsense", "mobiact", "lfw"} {
		for _, arm := range experiment.Arms() {
			b.Run(fmt.Sprintf("%s/%s", dataset, arm.Key), func(b *testing.B) {
				spec := benchSpec(b, dataset, 2)
				var acc float64
				for i := 0; i < b.N; i++ {
					res, err := experiment.RunInference(spec, arm, true, 1, int64(i)+1)
					if err != nil {
						b.Fatal(err)
					}
					acc = res.FinalAccuracy()
				}
				b.ReportMetric(acc, "inference-accuracy")
			})
		}
	}
}

// --- Figure 8: background-knowledge ratio sweep ---------------------------

func BenchmarkFig8Background(b *testing.B) {
	for _, ratio := range []float64{0.2, 1.0} {
		b.Run(fmt.Sprintf("ratio=%.1f", ratio), func(b *testing.B) {
			spec := benchSpec(b, "cifar10", 2)
			var acc float64
			for i := 0; i < b.N; i++ {
				res, err := experiment.RunInference(spec, experiment.Arms()[0], true, ratio, int64(i)+1)
				if err != nil {
					b.Fatal(err)
				}
				acc = res.FinalAccuracy()
			}
			b.ReportMetric(acc, "inference-accuracy")
		})
	}
}

// --- Figure 9: close-neighbour CDF ----------------------------------------

func BenchmarkFig9Neighbours(b *testing.B) {
	for _, dataset := range []string{"cifar10", "motionsense"} {
		b.Run(dataset, func(b *testing.B) {
			spec := benchSpec(b, dataset, 1)
			var mean float64
			for i := 0; i < b.N; i++ {
				res, err := experiment.RunNeighbours(spec, experiment.DefaultNeighbourRadius, int64(i)+1)
				if err != nil {
					b.Fatal(err)
				}
				total := 0
				for _, n := range res.Neighbours {
					total += n
				}
				mean = float64(total) / float64(len(res.Neighbours))
			}
			b.ReportMetric(mean, "mean-neighbours")
		})
	}
}

// --- §6.5 system performance ----------------------------------------------

// BenchmarkProxyDecrypt isolates the enclave decryption of one
// CIFAR-model-sized update — the dominant §6.5 cost (0.17 of 0.19 s in the
// paper's setup).
func BenchmarkProxyDecrypt(b *testing.B) {
	platform, err := enclave.NewPlatform()
	if err != nil {
		b.Fatal(err)
	}
	encl, err := enclave.New(enclave.Config{}, platform)
	if err != nil {
		b.Fatal(err)
	}
	update := experiment.PerfModels(experiment.ScaleQuick)[0].Arch.New(1).SnapshotParams()
	raw, err := nn.EncodeParamSet(update)
	if err != nil {
		b.Fatal(err)
	}
	ct, err := enclave.Encrypt(encl.PublicKey(), raw)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := encl.Decrypt(ct); err != nil {
			b.Fatal(err)
		}
	}
}

// cryptoBenchArm is one measured arm of the ingress-crypto benchmark,
// persisted in BENCH_crypto.json (see writeCryptoBench).
type cryptoBenchArm struct {
	Name          string  `json:"name"`
	NsPerUpdate   float64 `json:"ns_per_update"`
	UpdatesPerSec float64 `json:"updates_per_sec"`
	Updates       int     `json:"updates"`
}

var cryptoBench struct {
	sync.Mutex
	Model       string
	UpdateBytes int
	Arms        []cryptoBenchArm
}

func recordCryptoArm(b *testing.B, model string, updateBytes, updates int, elapsed time.Duration) {
	b.Helper()
	arm := cryptoBenchArm{
		Name:          b.Name(),
		NsPerUpdate:   float64(elapsed.Nanoseconds()) / float64(updates),
		UpdatesPerSec: float64(updates) / elapsed.Seconds(),
		Updates:       updates,
	}
	b.ReportMetric(arm.NsPerUpdate, "ns/update")
	b.ReportMetric(arm.UpdatesPerSec, "updates/sec")
	cryptoBench.Lock()
	defer cryptoBench.Unlock()
	cryptoBench.Model = model
	cryptoBench.UpdateBytes = updateBytes
	for i := range cryptoBench.Arms {
		if cryptoBench.Arms[i].Name == arm.Name {
			cryptoBench.Arms[i] = arm
			arm.Name = ""
		}
	}
	if arm.Name != "" {
		cryptoBench.Arms = append(cryptoBench.Arms, arm)
	}
}

func writeCryptoBench(b *testing.B) {
	b.Helper()
	cryptoBench.Lock()
	defer cryptoBench.Unlock()
	if len(cryptoBench.Arms) == 0 {
		return
	}
	var legacy, session float64
	for _, arm := range cryptoBench.Arms {
		switch {
		case strings.HasSuffix(arm.Name, "/legacy"):
			legacy = arm.NsPerUpdate
		case strings.HasSuffix(arm.Name, "/session"):
			session = arm.NsPerUpdate
		}
	}
	snap := struct {
		Model                  string          `json:"model"`
		UpdateBytes            int             `json:"update_bytes"`
		Arms                   []cryptoBenchArm `json:"arms"`
		SpeedupSessionVsLegacy float64         `json:"speedup_session_vs_legacy,omitempty"`
	}{cryptoBench.Model, cryptoBench.UpdateBytes, cryptoBench.Arms, 0}
	if legacy > 0 && session > 0 {
		snap.SpeedupSessionVsLegacy = legacy / session
	}
	enc, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_crypto.json", append(enc, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkProxyCrypto measures the full per-update crypto round trip —
// sender wrap plus enclave decrypt, both in-loop — for the legacy hybrid
// format (RSA-OAEP unwrap every update) against the session-keyed format
// (RSA amortised into the establish handshake, steady state is one
// AES-GCM pass each side). The gcm-floor arm is the raw seal+open of the
// same payload with no framing: the theoretical lower bound the session
// path should sit within a small constant factor of. Writes
// BENCH_crypto.json so CI can gate on the steady-state cost.
func BenchmarkProxyCrypto(b *testing.B) {
	platform, err := enclave.NewPlatform()
	if err != nil {
		b.Fatal(err)
	}
	encl, err := enclave.New(enclave.Config{}, platform)
	if err != nil {
		b.Fatal(err)
	}
	model := experiment.PerfModels(experiment.ScaleQuick)[0]
	raw, err := nn.EncodeParamSet(model.Arch.New(1).SnapshotParams())
	if err != nil {
		b.Fatal(err)
	}

	b.Run("legacy", func(b *testing.B) {
		b.SetBytes(int64(len(raw)))
		start := time.Now()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ct, err := enclave.Encrypt(encl.PublicKey(), raw)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := encl.Decrypt(ct); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		recordCryptoArm(b, model.Name, len(raw), b.N, time.Since(start))
	})

	b.Run("session", func(b *testing.B) {
		sess, err := enclave.NewSession(encl.PublicKey())
		if err != nil {
			b.Fatal(err)
		}
		est, err := sess.Wrap(raw) // one-time handshake, amortised away
		if err != nil {
			b.Fatal(err)
		}
		if _, err := encl.Decrypt(est); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(len(raw)))
		start := time.Now()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ct, err := sess.Wrap(raw)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := encl.Decrypt(ct); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		recordCryptoArm(b, model.Name, len(raw), b.N, time.Since(start))
	})

	b.Run("gcm-floor", func(b *testing.B) {
		key := make([]byte, 32)
		if _, err := crand.Read(key); err != nil {
			b.Fatal(err)
		}
		blk, err := aes.NewCipher(key)
		if err != nil {
			b.Fatal(err)
		}
		aead, err := cipher.NewGCM(blk)
		if err != nil {
			b.Fatal(err)
		}
		nonce := make([]byte, aead.NonceSize())
		sealBuf := make([]byte, 0, len(raw)+aead.Overhead())
		openBuf := make([]byte, 0, len(raw))
		b.SetBytes(int64(len(raw)))
		start := time.Now()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			binary.LittleEndian.PutUint64(nonce, uint64(i)+1)
			ct := aead.Seal(sealBuf[:0], nonce, raw, nil)
			if _, err := aead.Open(openBuf[:0], nonce, ct, nil); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		recordCryptoArm(b, model.Name, len(raw), b.N, time.Since(start))
	})

	writeCryptoBench(b)
}

// BenchmarkProxyStore isolates decode-and-buffer (the §6.5 "storage" step).
func BenchmarkProxyStore(b *testing.B) {
	update := experiment.PerfModels(experiment.ScaleQuick)[0].Arch.New(1).SnapshotParams()
	raw, err := nn.EncodeParamSet(update)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := nn.DecodeParamSet(raw); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProxyMix isolates the mixing operation (the §6.5 0.03 s step).
func BenchmarkProxyMix(b *testing.B) {
	arch := experiment.PerfModels(experiment.ScaleQuick)[0].Arch
	updates := make([]nn.ParamSet, 8)
	for i := range updates {
		updates[i] = arch.New(int64(i)).SnapshotParams()
	}
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.BatchMix(updates, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProxyMixSharded scales the mixing step across shard counts:
// one round of C updates through the sharded stream-mixer tier for
// P ∈ {1, 2, 4}. The per-layer work per shard shrinks with P, which is
// the horizontal-scaling claim of the sharded deployment.
func BenchmarkProxyMixSharded(b *testing.B) {
	arch := experiment.PerfModels(experiment.ScaleQuick)[0].Arch
	updates := make([]nn.ParamSet, 16)
	for i := range updates {
		updates[i] = arch.New(int64(i)).SnapshotParams()
	}
	for _, p := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", p), func(b *testing.B) {
			tr := core.ShardedStreamTransform{K: 4, Shards: p}
			rng := rand.New(rand.NewSource(1))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := tr.Apply(updates, rng); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkProxyMixShardedHTTP drives the full networked sharded tier —
// concurrent encrypted participants through P shards into a real
// aggregation server — and reports round throughput per shard count.
// The rounds=4 arms exercise cross-round pipelining: ingest of round N+1
// overlaps batched delivery of round N, so per-round time should drop
// relative to rounds=1. Each iteration stands up a fresh deployment (key
// generation, attestation), so ns/op is setup-dominated; the
// authoritative numbers are the reported round-ms / updates-per-sec
// means, which time only the rounds themselves inside RunShardedPerf.
func BenchmarkProxyMixShardedHTTP(b *testing.B) {
	m := experiment.PerfModels(experiment.ScaleQuick)[0]
	for _, p := range []int{1, 2, 4} {
		for _, rounds := range []int{1, 4} {
			b.Run(fmt.Sprintf("shards=%d/rounds=%d", p, rounds), func(b *testing.B) {
				var roundMs, upsPerSec float64
				for i := 0; i < b.N; i++ {
					res, err := experiment.RunShardedPerf(m.Name, m.Arch, 8, 2, p, false, rounds, int64(i)+1)
					if err != nil {
						b.Fatal(err)
					}
					roundMs += res.RoundMillis
					upsPerSec += res.UpdatesPerSec
				}
				b.ReportMetric(upsPerSec/float64(b.N), "updates/sec")
				b.ReportMetric(roundMs/float64(b.N), "round-ms")
			})
		}
	}
}

// BenchmarkProxyMixShardedTransport runs the identical sharded §6.5
// pipeline under both transports — "http" over real loopback sockets,
// "loopback" over the in-process typed transport — so the delta is
// exactly the serialization tax (HTTP framing, header encode/parse,
// socket copies): the mixer, enclave crypto and outbox delivery are the
// same code on both arms. Loopback's updates/sec should beat HTTP's.
func BenchmarkProxyMixShardedTransport(b *testing.B) {
	m := experiment.PerfModels(experiment.ScaleQuick)[0]
	for _, kind := range []string{"http", "loopback"} {
		b.Run(kind, func(b *testing.B) {
			var roundMs, upsPerSec float64
			for i := 0; i < b.N; i++ {
				res, err := experiment.RunShardedPerfTransport(m.Name, m.Arch, 8, 2, 2, false, 4, "", kind, int64(i)+1)
				if err != nil {
					b.Fatal(err)
				}
				roundMs += res.RoundMillis
				upsPerSec += res.UpdatesPerSec
			}
			b.ReportMetric(upsPerSec/float64(b.N), "updates/sec")
			b.ReportMetric(roundMs/float64(b.N), "round-ms")
		})
	}
}

// BenchmarkOutboxLaneDeadPeer measures the per-destination outbox lanes
// under the failure they exist for: one remote peer of a three-destination
// tier is unreachable for the whole run, and the reported updates/sec is
// the delivery throughput of the HEALTHY lanes during the outage. Before
// the lane split this number was ~0 — the single ordered queue wedged
// behind the dead peer's first entry. The dead-lane-depth metric is the
// parked backlog (one sealed entry per round: degradation, not loss).
//
// The run also writes BENCH_outbox.json next to the test binary's working
// directory so CI can persist the numbers as a comparable artifact.
func BenchmarkOutboxLaneDeadPeer(b *testing.B) {
	m := experiment.PerfModels(experiment.ScaleQuick)[0]
	var (
		ups, drainMs, depth float64
		last                experiment.LanePerfResult
	)
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunLanePerf(m.Name, m.Arch, 6, 2, 3, int64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		ups += res.UpdatesPerSec
		drainMs += res.DrainMillis
		depth += float64(res.DeadLaneDepth)
		last = res
	}
	n := float64(b.N)
	b.ReportMetric(ups/n, "updates/sec")
	b.ReportMetric(drainMs/n, "healthy-drain-ms")
	b.ReportMetric(depth/n, "dead-lane-depth")
	writeOutboxBench(b, outboxBenchSnapshot{
		Bench:            "BenchmarkOutboxLaneDeadPeer",
		Model:            last.Model,
		Participants:     last.Participants,
		Shards:           last.Shards,
		Rounds:           last.Rounds,
		HealthyUpdates:   last.HealthyUpdates,
		UpdatesPerSec:    ups / n,
		HealthyDrainMs:   drainMs / n,
		DeadLaneDepth:    depth / n,
		DeadLaneFailures: last.DeadLaneFailures,
		Iterations:       b.N,
	})
}

// outboxBenchSnapshot is the persisted shape of BENCH_outbox.json — the
// repo's first committed perf baseline. Keep fields append-only so old
// baselines stay comparable.
type outboxBenchSnapshot struct {
	Bench            string  `json:"bench"`
	Model            string  `json:"model"`
	Participants     int     `json:"participants"`
	Shards           int     `json:"shards"`
	Rounds           int     `json:"rounds"`
	HealthyUpdates   int     `json:"healthy_updates"`
	UpdatesPerSec    float64 `json:"updates_per_sec"`
	HealthyDrainMs   float64 `json:"healthy_drain_ms"`
	DeadLaneDepth    float64 `json:"dead_lane_depth"`
	DeadLaneFailures uint64  `json:"dead_lane_failures"`
	Iterations       int     `json:"iterations"`
}

func writeOutboxBench(b *testing.B, snap outboxBenchSnapshot) {
	b.Helper()
	enc, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_outbox.json", append(enc, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkProxyEndToEnd reproduces the §6.5 table: encrypted updates
// through a real HTTP proxy into a real aggregation server, for both model
// sizes.
func BenchmarkProxyEndToEnd(b *testing.B) {
	for _, m := range experiment.PerfModels(experiment.ScaleQuick) {
		b.Run(m.Name, func(b *testing.B) {
			var res experiment.PerfResult
			for i := 0; i < b.N; i++ {
				var err error
				res, err = experiment.RunSystemPerf(m.Name, m.Arch, 4, 2, int64(i)+1)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.UpdateBytes)/1024, "update-KB")
			b.ReportMetric(res.DecryptMillis, "decrypt-ms")
			b.ReportMetric(res.MixMillis, "mix-ms")
			b.ReportMetric(res.EndToEndMillis, "e2e-ms")
		})
	}
}

// --- Ablations (DESIGN.md §9) ----------------------------------------------

// BenchmarkAblationGranularity compares mixing granularities: per-layer
// (paper), per-tensor (finer) and whole-model (sender unlinking only) by
// the inference accuracy they leave to an active ∇Sim.
func BenchmarkAblationGranularity(b *testing.B) {
	for _, g := range []core.Granularity{core.GranularityLayer, core.GranularityTensor, core.GranularityModel} {
		b.Run(g.String(), func(b *testing.B) {
			spec := benchSpec(b, "cifar10", 2)
			arm := experiment.Arm{Key: "mixnn-" + g.String(), Transform: core.Transform{Granularity: g}}
			var acc float64
			for i := 0; i < b.N; i++ {
				res, err := experiment.RunInference(spec, arm, true, 1, int64(i)+1)
				if err != nil {
					b.Fatal(err)
				}
				acc = res.FinalAccuracy()
			}
			b.ReportMetric(acc, "inference-accuracy")
		})
	}
}

// BenchmarkAblationBufferK sweeps the streaming mixer's list capacity k.
func BenchmarkAblationBufferK(b *testing.B) {
	for _, k := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			spec := benchSpec(b, "cifar10", 2)
			arm := experiment.StreamArm(k)
			var acc float64
			for i := 0; i < b.N; i++ {
				res, err := experiment.RunInference(spec, arm, true, 1, int64(i)+1)
				if err != nil {
					b.Fatal(err)
				}
				acc = res.FinalAccuracy()
			}
			b.ReportMetric(acc, "inference-accuracy")
		})
	}
}

// BenchmarkAblationActivePassive compares the two ∇Sim variants on the
// unprotected pipeline.
func BenchmarkAblationActivePassive(b *testing.B) {
	for _, active := range []bool{true, false} {
		name := "passive"
		if active {
			name = "active"
		}
		b.Run(name, func(b *testing.B) {
			spec := benchSpec(b, "cifar10", 2)
			var acc float64
			for i := 0; i < b.N; i++ {
				res, err := experiment.RunInference(spec, experiment.Arms()[0], active, 1, int64(i)+1)
				if err != nil {
					b.Fatal(err)
				}
				acc = res.FinalAccuracy()
			}
			b.ReportMetric(acc, "inference-accuracy")
		})
	}
}

// BenchmarkAblationNoiseScale sweeps the noisy baseline's sigma, the
// trade-off MixNN avoids.
func BenchmarkAblationNoiseScale(b *testing.B) {
	for _, sigma := range []float64{0.01, 0.1, 1.0} {
		b.Run(fmt.Sprintf("sigma=%.2f", sigma), func(b *testing.B) {
			spec := benchSpec(b, "cifar10", 2)
			arm := experiment.Arm{Key: "noisy", Transform: privacy.NoisyTransform{Sigma: sigma}}
			var acc float64
			for i := 0; i < b.N; i++ {
				res, err := experiment.RunUtility(spec, arm, int64(i)+1)
				if err != nil {
					b.Fatal(err)
				}
				acc = res.FinalAccuracy()
			}
			b.ReportMetric(acc, "accuracy")
		})
	}
}

// --- Micro-benchmarks of the core pipeline stages --------------------------

// mixBenchArm is one measured arm of the slab-vs-legacy hot-path
// benchmarks, persisted in BENCH_mix.json (see writeMixBench).
type mixBenchArm struct {
	Name            string  `json:"name"`
	NsPerUpdate     float64 `json:"ns_per_update"`
	AllocsPerUpdate float64 `json:"allocs_per_update"`
	BytesPerUpdate  float64 `json:"bytes_per_update"`
	UpdatesPerSec   float64 `json:"updates_per_sec"`
	Updates         int     `json:"updates"`
}

// mixBench collects arms across the mixer benchmarks of one `go test
// -bench` run; each parent benchmark rewrites BENCH_mix.json with
// everything collected so far, so a run covering both parents leaves the
// complete before/after picture.
var mixBench struct {
	sync.Mutex
	Model       string       `json:"model"`
	UpdateBytes int          `json:"update_bytes"`
	RoundSize   int          `json:"round_size"`
	Arms        []mixBenchArm `json:"arms"`
}

func recordMixArm(b *testing.B, model string, updateBytes, roundSize, updates int, elapsed time.Duration, mallocs, bytes uint64) {
	b.Helper()
	arm := mixBenchArm{
		Name:            b.Name(),
		NsPerUpdate:     float64(elapsed.Nanoseconds()) / float64(updates),
		AllocsPerUpdate: float64(mallocs) / float64(updates),
		BytesPerUpdate:  float64(bytes) / float64(updates),
		UpdatesPerSec:   float64(updates) / elapsed.Seconds(),
		Updates:         updates,
	}
	b.ReportMetric(arm.AllocsPerUpdate, "allocs/update")
	b.ReportMetric(arm.UpdatesPerSec, "updates/sec")
	mixBench.Lock()
	defer mixBench.Unlock()
	mixBench.Model = model
	mixBench.UpdateBytes = updateBytes
	mixBench.RoundSize = roundSize
	for i := range mixBench.Arms {
		if mixBench.Arms[i].Name == arm.Name {
			mixBench.Arms[i] = arm
			arm.Name = ""
		}
	}
	if arm.Name != "" {
		mixBench.Arms = append(mixBench.Arms, arm)
	}
}

func writeMixBench(b *testing.B) {
	b.Helper()
	mixBench.Lock()
	defer mixBench.Unlock()
	if len(mixBench.Arms) == 0 {
		return
	}
	snap := struct {
		Model       string        `json:"model"`
		UpdateBytes int           `json:"update_bytes"`
		RoundSize   int           `json:"round_size"`
		Arms        []mixBenchArm `json:"arms"`
	}{mixBench.Model, mixBench.UpdateBytes, mixBench.RoundSize, mixBench.Arms}
	enc, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_mix.json", append(enc, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// mixRoundSize is the per-mixer round the hot-path benchmarks cycle:
// every mixRoundSize updates the round closes — drain, encode for the
// outbox, swap to a fresh mixer (recycling the slab in slab mode) —
// exactly the steady-state epoch cycle of the sharded proxy.
const mixRoundSize = 64

// BenchmarkStreamMixerAdd measures the §6.5 store+mix hot path per
// storage mode over the REAL per-update cycle: a fresh wire buffer (the
// decrypt output each request materialises), AddWire into the mixer, and
// at each round close the drain plus the outbox-side re-encode of every
// mixed update. The legacy arm is the pre-slab pipeline (zero-copy
// decode aliasing the buffer, per-emission allocations, EncodeParamSet
// per outgoing update); the slab arm decodes into pooled slab rows and
// re-encodes through the skeleton fast path into a reused buffer.
func BenchmarkStreamMixerAdd(b *testing.B) {
	model := experiment.PerfModels(experiment.ScaleQuick)[0]
	update := model.Arch.New(1).SnapshotParams()
	wire, err := nn.EncodeParamSet(update)
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []string{"legacy", "slab"} {
		b.Run(mode, func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			pool := core.NewSlabPool()
			newMixer := func() *core.StreamMixer {
				var m *core.StreamMixer
				var err error
				if mode == "slab" {
					m, err = core.NewStreamMixerSlab(8, rng, pool)
				} else {
					m, err = core.NewStreamMixer(8, rng)
				}
				if err != nil {
					b.Fatal(err)
				}
				return m
			}
			closeRound := func(m *core.StreamMixer, emitted []nn.ParamSet, encBuf []byte) []byte {
				emitted = append(emitted, m.Drain()...)
				for _, ps := range emitted {
					if mode == "slab" {
						encBuf = encBuf[:0]
						var err error
						if encBuf, err = nn.AppendParamSet(encBuf, ps); err != nil {
							b.Fatal(err)
						}
					} else {
						if _, err := nn.EncodeParamSet(ps); err != nil {
							b.Fatal(err)
						}
					}
				}
				m.ReleaseSlab()
				return encBuf
			}
			m := newMixer()
			emitted := make([]nn.ParamSet, 0, mixRoundSize)
			encBuf := make([]byte, 0, len(wire))
			b.ReportAllocs()
			b.SetBytes(int64(len(wire)))
			var ms0, ms1 runtime.MemStats
			runtime.ReadMemStats(&ms0)
			start := time.Now()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// The decrypt output is a fresh buffer per request in both
				// modes; the slab arm drops it immediately after the copy,
				// the legacy arm's views pin it until the round closes.
				buf := make([]byte, len(wire))
				copy(buf, wire)
				out, err := m.AddWire(buf)
				if err != nil {
					b.Fatal(err)
				}
				if out != nil {
					emitted = append(emitted, *out)
				}
				if (i+1)%mixRoundSize == 0 {
					encBuf = closeRound(m, emitted, encBuf)
					emitted = emitted[:0]
					m = newMixer()
				}
			}
			b.StopTimer()
			elapsed := time.Since(start)
			runtime.ReadMemStats(&ms1)
			recordMixArm(b, model.Name, len(wire), mixRoundSize, b.N, elapsed,
				ms1.Mallocs-ms0.Mallocs, ms1.TotalAlloc-ms0.TotalAlloc)
		})
	}
	writeMixBench(b)
}

// BenchmarkProxyMixWire is the sharded wire-ingress benchmark: one round
// of raw encoded updates round-robined across P shards (the proxy's
// ingest path minus crypto), per storage mode, including each round's
// drain + outbox re-encode. The slab arms are what a default-config
// sharded proxy runs per update since the slab refactor.
func BenchmarkProxyMixWire(b *testing.B) {
	model := experiment.PerfModels(experiment.ScaleQuick)[0]
	update := model.Arch.New(1).SnapshotParams()
	wire, err := nn.EncodeParamSet(update)
	if err != nil {
		b.Fatal(err)
	}
	for _, p := range []int{1, 4} {
		for _, mode := range []string{"legacy", "slab"} {
			b.Run(fmt.Sprintf("shards=%d/%s", p, mode), func(b *testing.B) {
				pool := core.NewSlabPool()
				newTier := func(epoch int64) []*core.StreamMixer {
					tier := make([]*core.StreamMixer, p)
					for s := range tier {
						rng := rand.New(rand.NewSource(epoch*int64(p) + int64(s)))
						var err error
						if mode == "slab" {
							tier[s], err = core.NewStreamMixerSlab(8, rng, pool)
						} else {
							tier[s], err = core.NewStreamMixer(8, rng)
						}
						if err != nil {
							b.Fatal(err)
						}
					}
					return tier
				}
				encode := func(ps nn.ParamSet, encBuf []byte) []byte {
					if mode == "slab" {
						encBuf = encBuf[:0]
						var err error
						if encBuf, err = nn.AppendParamSet(encBuf, ps); err != nil {
							b.Fatal(err)
						}
						return encBuf
					}
					if _, err := nn.EncodeParamSet(ps); err != nil {
						b.Fatal(err)
					}
					return encBuf
				}
				tier := newTier(0)
				epoch := int64(0)
				encBuf := make([]byte, 0, len(wire))
				b.ReportAllocs()
				b.SetBytes(int64(len(wire)))
				var ms0, ms1 runtime.MemStats
				runtime.ReadMemStats(&ms0)
				start := time.Now()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					buf := make([]byte, len(wire))
					copy(buf, wire)
					out, err := tier[i%p].AddWire(buf)
					if err != nil {
						b.Fatal(err)
					}
					if out != nil {
						encBuf = encode(*out, encBuf)
					}
					if (i+1)%mixRoundSize == 0 {
						for _, m := range tier {
							for _, ps := range m.Drain() {
								encBuf = encode(ps, encBuf)
							}
							m.ReleaseSlab()
						}
						epoch++
						tier = newTier(epoch)
					}
				}
				b.StopTimer()
				elapsed := time.Since(start)
				runtime.ReadMemStats(&ms1)
				recordMixArm(b, model.Name, len(wire), mixRoundSize, b.N, elapsed,
					ms1.Mallocs-ms0.Mallocs, ms1.TotalAlloc-ms0.TotalAlloc)
			})
		}
	}
	writeMixBench(b)
}

func BenchmarkLocalTraining(b *testing.B) {
	spec := benchSpec(b, "cifar10", 1)
	sim, _, err := experiment.BuildFederation(spec, experiment.Arms()[0], 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.RunRound(i); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAttackReferenceTraining(b *testing.B) {
	spec := benchSpec(b, "cifar10", 1)
	adv, err := attack.New(attack.Config{
		Arch:        spec.Arch,
		Source:      spec.Source,
		AuxPerClass: 48,
		Epochs:      1,
		BatchSize:   16,
	})
	if err != nil {
		b.Fatal(err)
	}
	_ = adv
	sim, attrs, err := experiment.BuildFederation(spec, experiment.Arms()[0], 1)
	if err != nil {
		b.Fatal(err)
	}
	sim.Observer = adv
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.RunRound(i); err != nil {
			b.Fatal(err)
		}
	}
	if _, err := adv.Accuracy(attrs); err != nil {
		b.Fatal(err)
	}
}
