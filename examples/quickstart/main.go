// Quickstart: run the paper's three arms (classic FL, MixNN, noisy
// gradient) on the synthetic CIFAR10 population and print the utility of
// each — demonstrating MixNN's zero-cost protection in under a minute.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"mixnn"
)

func main() {
	spec, err := mixnn.DatasetByKey("cifar10", mixnn.ScaleQuick, 1)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("dataset %s: %d participants, %d classes, sensitive attribute with %d classes\n",
		spec.Key, len(spec.Source.Participants(1)), spec.Source.Classes(), spec.Source.AttrClasses())

	for _, arm := range []mixnn.Arm{mixnn.ClassicArm(), mixnn.MixNNArm(), mixnn.NoisyArm(0)} {
		sim, _, err := mixnn.NewFederation(spec, arm, 1)
		if err != nil {
			log.Fatal(err)
		}
		metrics, err := sim.Run(spec.FL.Rounds)
		if err != nil {
			log.Fatal(err)
		}
		final := metrics[len(metrics)-1]
		fmt.Printf("%-7s final mean accuracy over %d rounds: %.3f\n", arm.Key, spec.FL.Rounds, final.MeanAccuracy)
	}
	fmt.Println("\nMixNN matches classic FL exactly (aggregation equivalence); noise destroys utility.")
}
