// Activity recognition over a real network: this example deploys the full
// MixNN pipeline on localhost — aggregation server, enclave-hosted MixNN
// proxy, and federated participants training on the MotionSense-like
// activity-recognition task. Every update travels over HTTP, encrypted for
// the attested enclave, and is layer-mixed before reaching the server.
//
//	go run ./examples/activity
package main

import (
	"context"
	"encoding/hex"
	"fmt"
	"log"
	"net"
	"net/http"
	"sync"
	"time"

	"mixnn"
	"mixnn/internal/client"
	"mixnn/internal/enclave"
	"mixnn/internal/fl"
	"mixnn/internal/proxy"
)

const rounds = 3

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	spec, err := mixnn.DatasetByKey("motionsense", mixnn.ScaleQuick, 5)
	if err != nil {
		return err
	}
	parts := spec.Source.Participants(5)
	cfg := spec.FL
	if err := cfg.Validate(); err != nil {
		return err
	}

	// --- Aggregation server ---------------------------------------------
	agg, err := proxy.NewAggServer(spec.Arch.New(5^0x6d78).SnapshotParams(), len(parts))
	if err != nil {
		return err
	}
	serverURL, stopServer, err := serve(agg.Handler())
	if err != nil {
		return err
	}
	defer stopServer()

	// --- MixNN proxy in a simulated enclave ------------------------------
	platform, err := enclave.NewPlatform()
	if err != nil {
		return err
	}
	encl, err := enclave.New(enclave.Config{CodeIdentity: "mixnn-activity-demo"}, platform)
	if err != nil {
		return err
	}
	px, err := proxy.New(proxy.Config{
		Upstream:  serverURL,
		K:         len(parts) / 2,
		RoundSize: len(parts),
		Seed:      42,
	}, encl, platform)
	if err != nil {
		return err
	}
	defer px.Close()
	proxyURL, stopProxy, err := serve(px.Handler())
	if err != nil {
		return err
	}
	defer stopProxy()

	meas := encl.Measurement()
	fmt.Printf("deployed: server %s, proxy %s (enclave %s...)\n\n",
		serverURL, proxyURL, hex.EncodeToString(meas[:8]))

	// --- Participants -----------------------------------------------------
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	clients := make([]*fl.Client, len(parts))
	for i, p := range parts {
		clients[i] = fl.NewClient(p, spec.Arch, cfg)
	}

	for r := 0; r < rounds; r++ {
		var wg sync.WaitGroup
		errs := make([]error, len(parts))
		for i := range parts {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				errs[i] = participate(ctx, clients[i], proxyURL, serverURL, platform, encl, r)
			}(i)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				return fmt.Errorf("participant %d round %d: %w", i, r, err)
			}
		}

		// Delivery is asynchronous: sends are only ACCEPTED into the
		// mixing tier, so wait for the server to close the round before
		// evaluating the new global model.
		for agg.Round() <= r {
			select {
			case <-ctx.Done():
				return fmt.Errorf("round %d never closed: %w", r+1, ctx.Err())
			case <-time.After(5 * time.Millisecond):
			}
		}
		// Evaluate the new global model on every participant's test data.
		global := agg.Global()
		sum := 0.0
		for _, c := range clients {
			acc, err := c.TestAccuracy(global)
			if err != nil {
				return err
			}
			sum += acc
		}
		fmt.Printf("round %d complete: mean activity-recognition accuracy %.3f\n", r+1, sum/float64(len(clients)))
	}

	st := px.Status()
	fmt.Printf("\nproxy stats: %d updates received, %d forwarded, update size %.1f KB\n",
		st.Received, st.Forwarded, float64(st.UpdateBytes)/1024)
	fmt.Printf("per-update cost: decrypt %.3f ms, store %.3f ms, mix %.3f ms\n",
		st.DecryptMillis, st.StoreMillis, st.MixMillis)
	return nil
}

// participate performs one participant's round: attest, fetch, train, send.
func participate(ctx context.Context, c *fl.Client, proxyURL, serverURL string, platform *enclave.Platform, encl *enclave.Enclave, round int) error {
	t, err := client.New(client.Config{Proxies: []string{proxyURL}, Server: serverURL})
	if err != nil {
		return err
	}
	if err := t.Attest(ctx, platform.AttestationPublicKey(), encl.Measurement()); err != nil {
		return err
	}
	_, global, err := t.WaitForRound(ctx, round, 50*time.Millisecond)
	if err != nil {
		return err
	}
	update, err := c.LocalTrain(global)
	if err != nil {
		return err
	}
	return t.SendUpdate(ctx, update)
}

// serve starts an HTTP server on an ephemeral localhost port.
func serve(h http.Handler) (string, func(), error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: h, ReadHeaderTimeout: 10 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return "http://" + ln.Addr().String(), func() { _ = srv.Close() }, nil
}
