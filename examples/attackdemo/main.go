// Attack demo: a malicious aggregation server runs the active ∇Sim
// attribute-inference attack against the MotionSense-like population,
// first on classic federated learning and then through the MixNN proxy
// pipeline. Prints the inference accuracy per round for both.
//
//	go run ./examples/attackdemo
package main

import (
	"fmt"
	"log"

	"mixnn"
)

func main() {
	spec, err := mixnn.DatasetByKey("cifar10", mixnn.ScaleQuick, 1)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("∇Sim active attack: inferring %q from model updates (%d participants)\n\n",
		"preference group", len(spec.Source.Participants(1)))

	for _, arm := range []mixnn.Arm{mixnn.ClassicArm(), mixnn.MixNNArm()} {
		sim, attrs, err := mixnn.NewFederation(spec, arm, 1)
		if err != nil {
			log.Fatal(err)
		}
		adv, err := mixnn.NewAttack(mixnn.AttackConfig{
			Arch:         spec.Arch,
			Source:       spec.Source,
			AuxPerClass:  spec.AuxPerClass,
			Epochs:       spec.AttackEpochs,
			BatchSize:    spec.FL.BatchSize,
			LearningRate: spec.FL.LearningRate,
			Active:       true,
			Seed:         99,
		})
		if err != nil {
			log.Fatal(err)
		}
		sim.Observer = adv
		sim.Disseminate = adv.Disseminator()

		fmt.Printf("arm=%s\n", arm.Key)
		for r := 0; r < spec.FL.Rounds; r++ {
			if _, err := sim.RunRound(r); err != nil {
				log.Fatal(err)
			}
			acc, err := adv.Accuracy(attrs)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  round %d: inference accuracy %.3f\n", r+1, acc)
		}
		fmt.Println()
	}
	fmt.Println("Classic FL leaks the attribute; MixNN keeps the attacker at chance level.")
}
