// Multiproc: the one-enclave-per-shard mixing tier. A front proxy routes
// a round across three shards by hash-quota — one mixed locally in the
// front enclave, two RELAYED to peer shard proxies, each holding its own
// enclave — and the aggregation server receives exactly one round whose
// mean equals classic FedAvg. This is the multi-process deployment the
// routing plane (internal/route) unlocks: every shard proxy here runs
// its own attested enclave and HTTP server, exactly what a real
// deployment runs as separate OS processes via `mixnn-proxy
// -shards-file` (the equivalent command lines are printed at the end).
//
//	go run ./examples/multiproc
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"time"

	"mixnn/internal/client"
	"mixnn/internal/enclave"
	"mixnn/internal/experiment"
	"mixnn/internal/nn"
	"mixnn/internal/proxy"
	"mixnn/internal/route"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		participants = 8
		seed         = int64(42)
	)
	spec, err := experiment.DatasetByKey("motionsense", experiment.ScaleQuick, seed)
	if err != nil {
		return err
	}
	arch := spec.Arch
	platform, err := enclave.NewPlatform()
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	agg, err := proxy.NewAggServer(arch.New(seed).SnapshotParams(), participants)
	if err != nil {
		return err
	}
	aggSrv := httptest.NewServer(agg.Handler())
	defer aggSrv.Close()

	// The topology: shard 0 local (weight 2 — half the round), shards 1
	// and 2 remote, each its own proxy with its own enclave.
	topo, err := route.New(0, route.ModeHashQuota, participants, []route.ShardSpec{
		{Weight: 2}, {Addr: "placeholder://1", Weight: 1}, {Addr: "placeholder://2", Weight: 1},
	})
	if err != nil {
		return err
	}
	specs := topo.Specs()
	remotes := make(map[string]proxy.RemoteShard)
	type shardProc struct {
		px  *proxy.ShardedProxy
		url string
	}
	var procs []shardProc
	for s := 1; s < topo.P(); s++ {
		encl, err := enclave.New(enclave.Config{CodeIdentity: fmt.Sprintf("mixnn-shard-%d", s)}, platform)
		if err != nil {
			return err
		}
		px, err := proxy.NewSharded(proxy.ShardedConfig{
			Upstream: aggSrv.URL, K: 2, RoundSize: topo.Quota(s), Shards: 1, Seed: seed + int64(s),
		}, encl, platform)
		if err != nil {
			return err
		}
		defer px.Close()
		srv := httptest.NewServer(px.Handler())
		defer srv.Close()
		key, err := proxy.AttestHop(ctx, srv.URL, nil, platform.AttestationPublicKey(), encl.Measurement())
		if err != nil {
			return err
		}
		specs[s].Addr = srv.URL
		remotes[srv.URL] = proxy.RemoteShard{Key: key}
		procs = append(procs, shardProc{px: px, url: srv.URL})
		fmt.Printf("shard %d: own enclave (%s), quota %d/round, serving %s\n",
			s, fmt.Sprintf("mixnn-shard-%d", s), topo.Quota(s), srv.URL)
	}

	frontEncl, err := enclave.New(enclave.Config{CodeIdentity: "mixnn-front"}, platform)
	if err != nil {
		return err
	}
	front, err := proxy.NewSharded(proxy.ShardedConfig{
		Upstream: aggSrv.URL, K: 2, RoundSize: participants,
		Routing: route.ModeHashQuota, ShardSpecs: specs, RemoteShards: remotes,
		Seed: seed,
	}, frontEncl, platform)
	if err != nil {
		return err
	}
	defer front.Close()
	frontSrv := httptest.NewServer(front.Handler())
	defer frontSrv.Close()
	fmt.Printf("front:   enclave mixnn-front, %d shards (1 local + %d remote), serving %s\n\n",
		topo.P(), len(procs), frontSrv.URL)

	// One round of participants through the front tier, each a
	// participant-SDK session (the same client.New call drives a real
	// deployment; here the failover list has one entry).
	updates := make([]nn.ParamSet, participants)
	for i := range updates {
		updates[i] = arch.New(seed + int64(i) + 1).SnapshotParams()
		part, err := client.New(client.Config{
			Proxies:  []string{frontSrv.URL},
			Server:   aggSrv.URL,
			ClientID: fmt.Sprintf("client-%d", i),
		})
		if err != nil {
			return err
		}
		if err := part.Attest(ctx, platform.AttestationPublicKey(), frontEncl.Measurement()); err != nil {
			return err
		}
		if err := part.SendUpdate(ctx, updates[i]); err != nil {
			return err
		}
	}
	for agg.Round() < 1 {
		select {
		case <-ctx.Done():
			return fmt.Errorf("round did not close: %w", ctx.Err())
		case <-time.After(2 * time.Millisecond):
		}
	}

	st := front.Status()
	fmt.Println("front tier after the round:")
	for _, sh := range st.Shards {
		placement := "local mixer"
		if sh.Addr != "" {
			placement = "relayed to " + sh.Addr
		}
		fmt.Printf("  shard %d: quota %d, %s\n", sh.Shard, sh.Quota, placement)
	}
	want, err := nn.Average(updates)
	if err != nil {
		return err
	}
	if agg.Global().ApproxEqual(want, 1e-9) {
		fmt.Println("\naggregate == classic FedAvg @1e-9: mixing across three enclaves changed nothing the server can see.")
	} else {
		return fmt.Errorf("aggregate diverged from classic FedAvg")
	}

	fmt.Println("\nthe same tier as real OS processes:")
	fmt.Printf("  mixnn-proxy -listen :8443 -round-size %d -upstream http://localhost:8440 -trust-out shard1.json\n", topo.Quota(1))
	fmt.Printf("  mixnn-proxy -listen :8444 -round-size %d -upstream http://localhost:8440 -trust-out shard2.json\n", topo.Quota(2))
	fmt.Printf("  mixnn-proxy -listen :8441 -round-size %d -shards-file topology.json\n", participants)
	fmt.Println(`  # topology.json:
  {"mode": "hash-quota", "shards": [
    {"weight": 2},
    {"addr": "http://localhost:8443", "weight": 1, "trust_file": "shard1.json"},
    {"addr": "http://localhost:8444", "weight": 1, "trust_file": "shard2.json"}]}`)
	return nil
}
