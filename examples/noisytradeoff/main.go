// Noisy trade-off: sweeps the Gaussian noise scale of the local-DP
// baseline and prints utility against attribute leakage, illustrating the
// privacy/utility trade-off that MixNN side-steps (its row is printed for
// comparison).
//
//	go run ./examples/noisytradeoff
package main

import (
	"fmt"
	"log"

	"mixnn"
)

func main() {
	spec, err := mixnn.DatasetByKey("cifar10", mixnn.ScaleQuick, 3)
	if err != nil {
		log.Fatal(err)
	}
	spec.FL.Rounds = 4

	arms := []struct {
		label string
		arm   mixnn.Arm
	}{
		{"fl", mixnn.ClassicArm()},
		{"noisy σ=0.01", mixnn.NoisyArm(0.01)},
		{"noisy σ=0.1", mixnn.NoisyArm(0.1)},
		{"noisy σ=1.0", mixnn.NoisyArm(1.0)}, // the paper's N(0,1)
		{"mixnn", mixnn.MixNNArm()},
	}
	fmt.Printf("%-16s %10s %12s\n", "arm", "accuracy", "inference")
	for _, a := range arms {
		util, leak, err := evaluate(spec, a.arm)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s %10.3f %12.3f\n", a.label, util, leak)
	}
	fmt.Println("\nSmall noise leaks; large noise destroys accuracy. MixNN gets both.")
}

// evaluate returns (final utility, final inference accuracy) for one arm.
func evaluate(spec mixnn.DatasetSpec, arm mixnn.Arm) (float64, float64, error) {
	sim, attrs, err := mixnn.NewFederation(spec, arm, 3)
	if err != nil {
		return 0, 0, err
	}
	adv, err := mixnn.NewAttack(mixnn.AttackConfig{
		Arch:         spec.Arch,
		Source:       spec.Source,
		AuxPerClass:  spec.AuxPerClass,
		Epochs:       spec.AttackEpochs,
		BatchSize:    spec.FL.BatchSize,
		LearningRate: spec.FL.LearningRate,
		Active:       true,
		Seed:         17,
	})
	if err != nil {
		return 0, 0, err
	}
	sim.Observer = adv
	sim.Disseminate = adv.Disseminator()

	metrics, err := sim.Run(spec.FL.Rounds)
	if err != nil {
		return 0, 0, err
	}
	leak, err := adv.Accuracy(attrs)
	if err != nil {
		return 0, 0, err
	}
	return metrics[len(metrics)-1].MeanAccuracy, leak, nil
}
