module mixnn

go 1.22
