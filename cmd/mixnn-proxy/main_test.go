package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestShardsFileFingerprintSameSecondRewrite pins the hot-reload fix: a
// rewrite that lands within the mtime's granularity window (simulated by
// forcing the same mtime back onto the file) must still be detected,
// because detection compares contents, not timestamps. The old
// ModTime().After(last) comparison silently ignored exactly this case.
func TestShardsFileFingerprintSameSecondRewrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shards.json")
	v1 := []byte(`{"mode":"hash-quota","shards":[{"weight":1}]}`)
	if err := os.WriteFile(path, v1, 0o600); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	mtime := st.ModTime()
	last, err := shardsFileFingerprint(path)
	if err != nil {
		t.Fatal(err)
	}

	v2 := []byte(`{"mode":"hash-quota","shards":[{"weight":1},{"weight":2}]}`)
	if err := os.WriteFile(path, v2, 0o600); err != nil {
		t.Fatal(err)
	}
	// Pin the original mtime back: the rewrite is now invisible to any
	// timestamp-based comparison.
	if err := os.Chtimes(path, mtime, mtime); err != nil {
		t.Fatal(err)
	}
	sum, err := shardsFileFingerprint(path)
	if err != nil {
		t.Fatal(err)
	}
	if sum == last {
		t.Fatal("same-mtime rewrite not detected: fingerprint unchanged across a content change")
	}

	// The converse: touching the file without changing it (fresh mtime,
	// same bytes) must NOT read as a change — no spurious reloads.
	if err := os.Chtimes(path, time.Now(), time.Now()); err != nil {
		t.Fatal(err)
	}
	again, err := shardsFileFingerprint(path)
	if err != nil {
		t.Fatal(err)
	}
	if again != sum {
		t.Fatal("mtime-only touch read as a content change")
	}
}

// TestLoadShardsFileRejectsEmpty keeps the loader honest about a
// directive that names no shards (an empty tier can route nothing).
func TestLoadShardsFileRejectsEmpty(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shards.json")
	if err := os.WriteFile(path, []byte(`{"mode":"sticky","shards":[]}`), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := loadShardsFile(path); err == nil {
		t.Fatal("shards file with no shards accepted")
	}
}
