// Command mixnn-proxy runs the MixNN mixing tier inside a simulated SGX
// enclave: it decrypts participant updates, mixes their layers across P
// independent k-buffer stream-mixer shards, and forwards the mixed updates
// either to the aggregation server or — in cascade mode — re-encrypted to
// a next-hop mixing proxy, so no single proxy observes the full
// participant↔update linkage.
//
// On startup it writes a trust bundle (attestation-authority public key +
// enclave measurement) that participants (and upstream proxies of a
// cascade) use to verify the enclave before encrypting updates for it:
//
//	mixnn-proxy -listen :8441 -upstream http://localhost:8440 \
//	    -round-size 8 -k 4 -shards 2 -trust-out trust.json
//
//	# cascade: front tier forwards to a second mixing hop
//	mixnn-proxy -listen :8442 -round-size 8 -k 4 -trust-out hop.json
//	mixnn-proxy -listen :8441 -round-size 8 -k 4 -shards 2 \
//	    -next-hop http://localhost:8442 -next-hop-trust hop.json
//
// Delivery is asynchronous: a drained round is committed to an outbox
// and delivered downstream as one /v1/batch POST by a background
// dispatcher with bounded retry (-retry caps the backoff), so a
// downstream outage neither blocks ingress nor loses updates. With
// -outbox-dir the outbox is a sealed on-disk queue and delivery also
// survives proxy restarts; -batch=false falls back to one POST per
// update for pre-batch downstreams:
//
//	mixnn-proxy -listen :8441 -round-size 8 -k 4 -shards 2 \
//	    -outbox-dir proxy.outbox -fuse-file proxy.fuse -retry 5s
//
// Crash/restart durability: with -state-file the proxy seals its whole
// tier (every shard's buffered layers, pending emissions + the round
// ledger) on SIGINT or SIGTERM and restores it at the next start, so a
// mid-round restart loses no participant material. The sealed blob is
// shard-aware: the restarted proxy may run a different -shards count and
// the buffered round is resharded on restore. Sealing keys derive from
// the platform fuse secret, so -state-file (and -outbox-dir) require
// -fuse-file (and restoring needs the same -identity):
//
//	mixnn-proxy -listen :8441 -round-size 8 -k 4 -shards 2 \
//	    -state-file proxy.state -fuse-file proxy.fuse
package main

import (
	"context"
	"crypto/ecdsa"
	"crypto/rand"
	"crypto/sha256"
	"crypto/x509"
	"encoding/hex"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"mixnn/internal/enclave"
	"mixnn/internal/outbox"
	"mixnn/internal/proxy"
	"mixnn/internal/route"
	"mixnn/internal/wire"
)

// TrustBundle is the out-of-band material a participant (or an upstream
// proxy of a cascade) pins: the (simulated) attestation authority key and
// the expected enclave measurement.
type TrustBundle = proxy.TrustBundle

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mixnn-proxy:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mixnn-proxy", flag.ContinueOnError)
	var (
		listen       = fs.String("listen", ":8441", "address to serve on")
		upstream     = fs.String("upstream", "http://localhost:8440", "aggregation server base URL")
		nextHop      = fs.String("next-hop", "", "next mixing proxy base URL (cascade mode; overrides -upstream)")
		nextHopTrust = fs.String("next-hop-trust", "", "trust bundle file of the next hop (required with -next-hop)")
		nextHopSec   = fs.String("next-hop-secret", "", "inter-proxy secret sent with forwarded hop traffic")
		hopSecret    = fs.String("hop-secret", "", "inter-proxy secret required on this proxy's /v1/hop endpoint")
		shards       = fs.Int("shards", 1, "number of independent mixing shards (P)")
		routing      = fs.String("routing", "sticky", "shard routing mode: sticky, round-robin or hash-quota")
		shardsFile   = fs.String("shards-file", "", "topology file (JSON TopologyDirective: mode, weighted shards, remote shards with trust_file); overrides -shards/-routing and hot-reloads on change at round boundaries")
		dedupWindow  = fs.Int("dedup-window", proxy.DefaultDedupWindow, "batch-dedup FIFO window; aged-out redeliveries are rejected with 409 via the sender sequence watermark")
		roundSize    = fs.Int("round-size", 8, "total updates per round (C) across all shards")
		k            = fs.Int("k", 4, "per-shard mixing list capacity (<= shard round share)")
		maxHops      = fs.Int("max-hops", proxy.DefaultMaxHops, "maximum cascade depth accepted/forwarded")
		constMs      = fs.Int("const-ms", 0, "constant per-update processing time in ms (side-channel hardening; 0 = off)")
		identity     = fs.String("identity", "mixnn-proxy-v1", "enclave code identity (measured)")
		trustOut     = fs.String("trust-out", "trust.json", "file to write the participant trust bundle to")
		stateFile    = fs.String("state-file", "", "sealed tier state: restored at startup if present, written on SIGINT/SIGTERM")
		fuseFile     = fs.String("fuse-file", "", "platform fuse-secret file (created if missing); required for -state-file/-outbox-dir restores across process restarts")
		outboxDir    = fs.String("outbox-dir", "", "sealed delivery outbox directory: drained rounds are committed here before forwarding and survive restarts (requires -fuse-file); empty = in-memory queue")
		batch        = fs.Bool("batch", true, "coalesce each drained round into one /v1/batch POST; false = one POST per update for pre-batch downstreams")
		legacyMix    = fs.Bool("legacy-mix", false, "run the shards on the legacy per-tensor mixer storage instead of pooled slab storage (same mixing output; escape hatch)")
		retry        = fs.Duration("retry", 5*time.Second, "maximum delivery retry backoff per destination lane (jittered)")
		workers      = fs.Int("delivery-workers", outbox.DefaultWorkers, "destination lanes delivered concurrently; a dead peer stalls only its own lane")
		deliveryTO   = fs.Duration("delivery-timeout", outbox.DefaultAttemptTimeout, "per-attempt delivery timeout (raised to -retry if set lower)")
		seed         = fs.Int64("seed", time.Now().UnixNano(), "mixing randomness seed")
		endpoint     = fs.String("endpoint", "", "this proxy's advertised base URL in /v1/discover (empty = not advertised)")
		peers        = fs.String("peers", "", "comma-separated peer front endpoints advertised via /v1/discover for SDK bootstrap")
		rateLimit    = fs.Float64("rate-limit", 0, "per-sender participant update budget in updates/sec (0 = unlimited)")
		rateBurst    = fs.Float64("rate-burst", 0, "per-sender token-bucket burst (0 = max(1, -rate-limit))")
		shedDepth    = fs.Int("shed-queue-depth", 0, "shed ALL participant ingress with 429 while the committed-but-undelivered outbox backlog reaches this (0 = never shed)")
		metrics      = fs.Bool("metrics", true, "serve the Prometheus text exposition at /v1/metrics")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *stateFile != "" && *fuseFile == "" {
		// Without a persisted fuse secret the next process draws a fresh
		// one, the sealed blob can never be unsealed, and startup fails —
		// sealing unrecoverable state is strictly worse than not sealing.
		return fmt.Errorf("-state-file requires -fuse-file (a sealed blob is only restorable under the same fuse secret)")
	}
	if *outboxDir != "" && *fuseFile == "" {
		// Same reasoning: outbox entries sealed under an ephemeral fuse
		// secret would be unreadable garbage to the next process.
		return fmt.Errorf("-outbox-dir requires -fuse-file (sealed entries are only restorable under the same fuse secret)")
	}

	platform, err := loadPlatform(*fuseFile)
	if err != nil {
		return err
	}
	encl, err := enclave.New(enclave.Config{
		CodeIdentity:       *identity,
		ConstantProcessing: time.Duration(*constMs) * time.Millisecond,
	}, platform)
	if err != nil {
		return err
	}

	mode, err := route.ParseMode(*routing)
	if err != nil {
		return err
	}
	cfg := proxy.ShardedConfig{
		Upstream:      *upstream,
		Shards:        *shards,
		Routing:       mode,
		DedupWindow:   *dedupWindow,
		K:             *k,
		RoundSize:     *roundSize,
		MaxHops:       *maxHops,
		Seed:          *seed,
		HopSecret:     *hopSecret,
		NextHopSecret: *nextHopSec,
		OutboxDir:       *outboxDir,
		NoBatch:         !*batch,
		LegacyMix:       *legacyMix,
		RetryMax:        *retry,
		DeliveryWorkers: *workers,
		DeliveryTimeout: *deliveryTO,
		Endpoint:        *endpoint,
		Peers:           splitPeers(*peers),
		RatePerSec:      *rateLimit,
		RateBurst:       *rateBurst,
		ShedQueueDepth:  *shedDepth,
		DisableMetrics:  !*metrics,
	}
	// A restored tier comes back under the topology it was sealed under,
	// UNLESS the operator explicitly asked for a different shape on this
	// command line — then the sealed material is resharded into it.
	cfg.AdoptSealedTopology = true
	fs.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "shards", "routing", "round-size":
			cfg.AdoptSealedTopology = false
		}
	})
	if *shardsFile != "" {
		d, err := loadShardsFile(*shardsFile)
		if err != nil {
			return err
		}
		if err := applyDirectiveToConfig(&cfg, d); err != nil {
			return err
		}
		cfg.AdoptSealedTopology = false
	}
	if *nextHop != "" {
		if *nextHopTrust == "" {
			return fmt.Errorf("-next-hop requires -next-hop-trust")
		}
		hopKey, err := pinNextHop(*nextHop, *nextHopTrust)
		if err != nil {
			return err
		}
		cfg.Upstream, cfg.NextHop, cfg.NextHopKey = "", *nextHop, hopKey
		hopMeas := hopKey.Measurement()
		log.Printf("mixnn-proxy: cascade hop attested, measurement %s", hex.EncodeToString(hopMeas[:]))
	}

	px, err := proxy.NewSharded(cfg, encl, platform)
	if err != nil {
		return err
	}

	if *stateFile != "" {
		blob, err := os.ReadFile(*stateFile)
		switch {
		case errors.Is(err, os.ErrNotExist):
			log.Printf("mixnn-proxy: no sealed state at %s, starting fresh", *stateFile)
		case err != nil:
			return fmt.Errorf("read sealed state: %w", err)
		default:
			if err := px.RestoreState(blob); err != nil {
				return fmt.Errorf("restore sealed state: %w", err)
			}
			// Consume the blob: once restored, its material flows onward,
			// and replaying it after a later hard crash (no fresh seal)
			// would double-count already-forwarded updates upstream.
			// Rename rather than delete so a startup failure between here
			// and serving (port in use, trust-bundle write) doesn't lose
			// the round — the operator can move the .restored file back.
			if err := os.Rename(*stateFile, *stateFile+".restored"); err != nil {
				return fmt.Errorf("consume state file: %w", err)
			}
			st := px.Status()
			log.Printf("mixnn-proxy: restored sealed state (sealed at %d shards, now %d, %s routing; %d updates into the round)",
				st.RestoredFrom, len(st.Shards), st.RoutingMode, st.InRound)
			// Re-attest remote shards from the sealed trust material so
			// the tier's relay legs deliver without waiting for an admin
			// directive or a shards-file reload. Best-effort AND
			// asynchronous: a still-down peer keeps its queued material
			// stalled (never lost), and blocking startup on it would
			// take participant ingress down with it.
			go func() {
				rctx, rcancel := context.WithTimeout(context.Background(), 60*time.Second)
				defer rcancel()
				if err := px.ReattestRemotes(rctx); err != nil {
					log.Printf("mixnn-proxy: re-attest remote shards: %v", err)
				}
			}()
		}
	}

	authDER, err := x509.MarshalPKIXPublicKey(platform.AttestationPublicKey())
	if err != nil {
		return fmt.Errorf("marshal authority key: %w", err)
	}
	meas := encl.Measurement()
	bundle, err := json.MarshalIndent(TrustBundle{
		AuthorityPubDER: authDER,
		MeasurementHex:  hex.EncodeToString(meas[:]),
	}, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*trustOut, bundle, 0o600); err != nil {
		return fmt.Errorf("write trust bundle: %w", err)
	}

	log.Printf("mixnn-proxy: enclave measurement %s", hex.EncodeToString(meas[:]))
	log.Printf("mixnn-proxy: trust bundle written to %s", *trustOut)
	downstream := cfg.Upstream
	if cfg.NextHop != "" {
		downstream = cfg.NextHop + " (cascade)"
	}
	topo := px.Topology()
	log.Printf("mixnn-proxy: topology v%d mode=%s shards=%d (%d remote) round-size=%d k=%d downstream=%s listening on %s",
		topo.Version(), topo.Mode(), topo.P(), len(topo.Remotes()), topo.RoundSize(), *k, downstream, *listen)

	// Hot reload: poll the shards file and stage its directive when it
	// changes; the new topology applies at the next round boundary.
	if *shardsFile != "" {
		go watchShardsFile(*shardsFile, px)
	}
	srv := &http.Server{
		Addr:              *listen,
		Handler:           px.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	if *stateFile == "" {
		defer px.Close()
		return srv.ListenAndServe()
	}

	// With durable state configured, catch SIGINT/SIGTERM, seal the tier
	// to the state file and drain in-flight requests before exiting.
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case sig := <-sigCh:
		log.Printf("mixnn-proxy: %v: sealing tier state to %s", sig, *stateFile)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownErr := srv.Shutdown(ctx)
		if shutdownErr != nil {
			// Graceful drain timed out with handlers still in flight.
			// Force-close their connections BEFORE sealing so no handler
			// can acknowledge an update after the snapshot (acknowledged
			// material in neither the blob nor upstream would be silently
			// lost). This is best-effort, not exactly-once: an unacked
			// update that made it into the snapshot is duplicated if the
			// client retries, and round-drained material still mid-forward
			// when the process exits is lost — closing the latter gap
			// needs -outbox-dir (entries persist on disk and redeliver
			// after restart). The graceful path (Shutdown returning nil)
			// has neither problem.
			srv.Close()
		}
		// Best-effort outbox drain before exit: with -outbox-dir the
		// entries would survive anyway, but delivering now hands the
		// material off without waiting for the next start; without it
		// this is the in-memory queue's only chance.
		flushCtx, flushCancel := context.WithTimeout(context.Background(), 5*time.Second)
		if err := px.Flush(flushCtx); err != nil {
			log.Printf("mixnn-proxy: outbox not fully drained at shutdown: %v", err)
		}
		flushCancel()
		px.Close()
		blob, err := px.SealState()
		if err != nil {
			return fmt.Errorf("seal tier state: %w", err)
		}
		// Temp-file + rename so a crash or full disk mid-write cannot
		// leave a truncated blob where a good one (or nothing) was.
		tmp := *stateFile + ".tmp"
		if err := os.WriteFile(tmp, blob, 0o600); err != nil {
			return fmt.Errorf("write sealed state: %w", err)
		}
		if err := os.Rename(tmp, *stateFile); err != nil {
			return fmt.Errorf("commit sealed state: %w", err)
		}
		st := px.Status()
		log.Printf("mixnn-proxy: sealed %d-shard tier (%d updates into the round)", len(st.Shards), st.InRound)
		return shutdownErr
	}
}

// splitPeers parses the -peers flag: comma-separated endpoints, blanks
// dropped so a trailing comma is harmless.
func splitPeers(s string) []string {
	var peers []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peers = append(peers, p)
		}
	}
	return peers
}

// loadShardsFile parses a topology file: a wire.TopologyDirective in
// JSON, remote shards referencing their trust bundles by trust_file.
func loadShardsFile(path string) (wire.TopologyDirective, error) {
	var d wire.TopologyDirective
	raw, err := os.ReadFile(path)
	if err != nil {
		return d, fmt.Errorf("read shards file: %w", err)
	}
	if err := json.Unmarshal(raw, &d); err != nil {
		return d, fmt.Errorf("parse shards file %s: %w", path, err)
	}
	if len(d.Shards) == 0 {
		return d, fmt.Errorf("shards file %s names no shards", path)
	}
	return d, nil
}

// applyDirectiveToConfig turns a topology directive into the initial
// ShardedConfig topology, attesting remote shards now (they must be up
// before this proxy starts routing to them).
func applyDirectiveToConfig(cfg *proxy.ShardedConfig, d wire.TopologyDirective) error {
	if d.Mode != "" {
		mode, err := route.ParseMode(d.Mode)
		if err != nil {
			return err
		}
		cfg.Routing = mode
	}
	if d.RoundSize > 0 {
		cfg.RoundSize = d.RoundSize
	}
	cfg.ShardSpecs = make([]route.ShardSpec, len(d.Shards))
	cfg.RemoteShards = make(map[string]proxy.RemoteShard)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	for i, s := range d.Shards {
		cfg.ShardSpecs[i] = route.ShardSpec{Addr: s.Addr, Weight: s.Weight}
		if s.Addr == "" {
			continue
		}
		rs, err := proxy.ResolveRemoteShard(ctx, s, nil)
		if err != nil {
			return err
		}
		cfg.RemoteShards[s.Addr] = rs
		hopMeas := rs.Key.Measurement()
		log.Printf("mixnn-proxy: remote shard %s attested, measurement %s", s.Addr, hex.EncodeToString(hopMeas[:]))
	}
	return nil
}

// shardsFileFingerprint identifies the topology file's current contents.
// A content hash — not mtime — is what change detection compares:
// filesystem timestamps are often second-granular, so an edit-save-edit
// within one second leaves the mtime unchanged and a ModTime comparison
// would silently skip the second edit. Hashing also makes touch(1) (same
// bytes, new mtime) a no-op instead of a spurious reload.
func shardsFileFingerprint(path string) ([sha256.Size]byte, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return [sha256.Size]byte{}, err
	}
	return sha256.Sum256(raw), nil
}

// watchShardsFile polls the topology file and stages its directive when
// its contents change. A bad edit is logged and skipped — the tier keeps
// its current topology.
func watchShardsFile(path string, px *proxy.ShardedProxy) {
	last, _ := shardsFileFingerprint(path)
	for {
		time.Sleep(2 * time.Second)
		sum, err := shardsFileFingerprint(path)
		if err != nil || sum == last {
			continue
		}
		last = sum
		d, err := loadShardsFile(path)
		if err != nil {
			log.Printf("mixnn-proxy: shards file reload: %v", err)
			continue
		}
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		next, err := px.StageTopology(ctx, d)
		cancel()
		if err != nil {
			log.Printf("mixnn-proxy: shards file reload: %v", err)
			continue
		}
		log.Printf("mixnn-proxy: staged topology v%d (mode=%s, %d shards) from %s; applies at the next round boundary",
			next.Version(), next.Mode(), next.P(), path)
	}
}

// loadPlatform builds the simulated SGX platform. With a fuse file the
// fuse secret persists across process restarts — the simulation of
// permanent CPU fuses — which is what lets a restarted proxy unseal the
// state a previous run sealed. Without one the secret is ephemeral.
func loadPlatform(fuseFile string) (*enclave.Platform, error) {
	if fuseFile == "" {
		return enclave.NewPlatform()
	}
	var fuse [32]byte
	raw, err := os.ReadFile(fuseFile)
	switch {
	case errors.Is(err, os.ErrNotExist):
		if _, err := rand.Read(fuse[:]); err != nil {
			return nil, fmt.Errorf("draw fuse secret: %w", err)
		}
		if err := os.WriteFile(fuseFile, fuse[:], 0o600); err != nil {
			return nil, fmt.Errorf("write fuse file: %w", err)
		}
		log.Printf("mixnn-proxy: new fuse secret written to %s", fuseFile)
	case err != nil:
		return nil, fmt.Errorf("read fuse file: %w", err)
	case len(raw) != len(fuse):
		return nil, fmt.Errorf("fuse file %s holds %d bytes, want %d", fuseFile, len(raw), len(fuse))
	default:
		copy(fuse[:], raw)
	}
	return enclave.NewPlatformWithFuse(fuse)
}

// pinNextHop loads the next hop's trust bundle and runs the proxy-to-proxy
// attestation handshake against its /v1/attestation endpoint.
func pinNextHop(nextHopURL, bundlePath string) (*enclave.HopKey, error) {
	raw, err := os.ReadFile(bundlePath)
	if err != nil {
		return nil, fmt.Errorf("read next-hop trust bundle: %w", err)
	}
	var bundle TrustBundle
	if err := json.Unmarshal(raw, &bundle); err != nil {
		return nil, fmt.Errorf("parse next-hop trust bundle: %w", err)
	}
	pub, err := x509.ParsePKIXPublicKey(bundle.AuthorityPubDER)
	if err != nil {
		return nil, fmt.Errorf("parse next-hop authority key: %w", err)
	}
	authority, ok := pub.(*ecdsa.PublicKey)
	if !ok {
		return nil, fmt.Errorf("next-hop authority key is %T, want ECDSA", pub)
	}
	measBytes, err := hex.DecodeString(bundle.MeasurementHex)
	if err != nil || len(measBytes) != 32 {
		return nil, fmt.Errorf("malformed next-hop measurement")
	}
	var meas [32]byte
	copy(meas[:], measBytes)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	return proxy.AttestHop(ctx, nextHopURL, nil, authority, meas)
}
