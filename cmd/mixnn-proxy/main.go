// Command mixnn-proxy runs the MixNN mixing tier inside a simulated SGX
// enclave: it decrypts participant updates, mixes their layers across P
// independent k-buffer stream-mixer shards, and forwards the mixed updates
// either to the aggregation server or — in cascade mode — re-encrypted to
// a next-hop mixing proxy, so no single proxy observes the full
// participant↔update linkage.
//
// On startup it writes a trust bundle (attestation-authority public key +
// enclave measurement) that participants (and upstream proxies of a
// cascade) use to verify the enclave before encrypting updates for it:
//
//	mixnn-proxy -listen :8441 -upstream http://localhost:8440 \
//	    -round-size 8 -k 4 -shards 2 -trust-out trust.json
//
//	# cascade: front tier forwards to a second mixing hop
//	mixnn-proxy -listen :8442 -round-size 8 -k 4 -trust-out hop.json
//	mixnn-proxy -listen :8441 -round-size 8 -k 4 -shards 2 \
//	    -next-hop http://localhost:8442 -next-hop-trust hop.json
package main

import (
	"context"
	"crypto/ecdsa"
	"crypto/x509"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"mixnn/internal/enclave"
	"mixnn/internal/proxy"
)

// TrustBundle is the out-of-band material a participant (or an upstream
// proxy of a cascade) pins: the (simulated) attestation authority key and
// the expected enclave measurement.
type TrustBundle struct {
	AuthorityPubDER []byte `json:"authority_pub_der"`
	MeasurementHex  string `json:"measurement"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mixnn-proxy:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mixnn-proxy", flag.ContinueOnError)
	var (
		listen       = fs.String("listen", ":8441", "address to serve on")
		upstream     = fs.String("upstream", "http://localhost:8440", "aggregation server base URL")
		nextHop      = fs.String("next-hop", "", "next mixing proxy base URL (cascade mode; overrides -upstream)")
		nextHopTrust = fs.String("next-hop-trust", "", "trust bundle file of the next hop (required with -next-hop)")
		nextHopSec   = fs.String("next-hop-secret", "", "inter-proxy secret sent with forwarded hop traffic")
		hopSecret    = fs.String("hop-secret", "", "inter-proxy secret required on this proxy's /v1/hop endpoint")
		shards       = fs.Int("shards", 1, "number of independent mixing shards (P)")
		roundSize    = fs.Int("round-size", 8, "total updates per round (C) across all shards")
		k            = fs.Int("k", 4, "per-shard mixing list capacity (<= shard round share)")
		maxHops      = fs.Int("max-hops", proxy.DefaultMaxHops, "maximum cascade depth accepted/forwarded")
		constMs      = fs.Int("const-ms", 0, "constant per-update processing time in ms (side-channel hardening; 0 = off)")
		identity     = fs.String("identity", "mixnn-proxy-v1", "enclave code identity (measured)")
		trustOut     = fs.String("trust-out", "trust.json", "file to write the participant trust bundle to")
		seed         = fs.Int64("seed", time.Now().UnixNano(), "mixing randomness seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	platform, err := enclave.NewPlatform()
	if err != nil {
		return err
	}
	encl, err := enclave.New(enclave.Config{
		CodeIdentity:       *identity,
		ConstantProcessing: time.Duration(*constMs) * time.Millisecond,
	}, platform)
	if err != nil {
		return err
	}

	cfg := proxy.ShardedConfig{
		Upstream:      *upstream,
		Shards:        *shards,
		K:             *k,
		RoundSize:     *roundSize,
		MaxHops:       *maxHops,
		Seed:          *seed,
		HopSecret:     *hopSecret,
		NextHopSecret: *nextHopSec,
	}
	if *nextHop != "" {
		if *nextHopTrust == "" {
			return fmt.Errorf("-next-hop requires -next-hop-trust")
		}
		hopKey, err := pinNextHop(*nextHop, *nextHopTrust)
		if err != nil {
			return err
		}
		cfg.Upstream, cfg.NextHop, cfg.NextHopKey = "", *nextHop, hopKey
		hopMeas := hopKey.Measurement()
		log.Printf("mixnn-proxy: cascade hop attested, measurement %s", hex.EncodeToString(hopMeas[:]))
	}

	px, err := proxy.NewSharded(cfg, encl, platform)
	if err != nil {
		return err
	}

	authDER, err := x509.MarshalPKIXPublicKey(platform.AttestationPublicKey())
	if err != nil {
		return fmt.Errorf("marshal authority key: %w", err)
	}
	meas := encl.Measurement()
	bundle, err := json.MarshalIndent(TrustBundle{
		AuthorityPubDER: authDER,
		MeasurementHex:  hex.EncodeToString(meas[:]),
	}, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*trustOut, bundle, 0o600); err != nil {
		return fmt.Errorf("write trust bundle: %w", err)
	}

	log.Printf("mixnn-proxy: enclave measurement %s", hex.EncodeToString(meas[:]))
	log.Printf("mixnn-proxy: trust bundle written to %s", *trustOut)
	downstream := cfg.Upstream
	if cfg.NextHop != "" {
		downstream = cfg.NextHop + " (cascade)"
	}
	log.Printf("mixnn-proxy: shards=%d k=%d round-size=%d downstream=%s listening on %s",
		*shards, *k, *roundSize, downstream, *listen)
	srv := &http.Server{
		Addr:              *listen,
		Handler:           px.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	return srv.ListenAndServe()
}

// pinNextHop loads the next hop's trust bundle and runs the proxy-to-proxy
// attestation handshake against its /v1/attestation endpoint.
func pinNextHop(nextHopURL, bundlePath string) (*enclave.HopKey, error) {
	raw, err := os.ReadFile(bundlePath)
	if err != nil {
		return nil, fmt.Errorf("read next-hop trust bundle: %w", err)
	}
	var bundle TrustBundle
	if err := json.Unmarshal(raw, &bundle); err != nil {
		return nil, fmt.Errorf("parse next-hop trust bundle: %w", err)
	}
	pub, err := x509.ParsePKIXPublicKey(bundle.AuthorityPubDER)
	if err != nil {
		return nil, fmt.Errorf("parse next-hop authority key: %w", err)
	}
	authority, ok := pub.(*ecdsa.PublicKey)
	if !ok {
		return nil, fmt.Errorf("next-hop authority key is %T, want ECDSA", pub)
	}
	measBytes, err := hex.DecodeString(bundle.MeasurementHex)
	if err != nil || len(measBytes) != 32 {
		return nil, fmt.Errorf("malformed next-hop measurement")
	}
	var meas [32]byte
	copy(meas[:], measBytes)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	return proxy.AttestHop(ctx, nextHopURL, nil, authority, meas)
}
