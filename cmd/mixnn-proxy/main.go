// Command mixnn-proxy runs the MixNN proxy inside a simulated SGX enclave:
// it decrypts participant updates, mixes their layers with the k-buffer
// stream mixer, and forwards the mixed updates to the aggregation server.
//
// On startup it writes a trust bundle (attestation-authority public key +
// enclave measurement) that participants use to verify the enclave before
// encrypting updates for it:
//
//	mixnn-proxy -listen :8441 -upstream http://localhost:8440 \
//	    -round-size 8 -k 4 -trust-out trust.json
package main

import (
	"crypto/x509"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"mixnn/internal/enclave"
	"mixnn/internal/proxy"
)

// TrustBundle is the out-of-band material a participant pins: the
// (simulated) attestation authority key and the expected enclave
// measurement.
type TrustBundle struct {
	AuthorityPubDER []byte `json:"authority_pub_der"`
	MeasurementHex  string `json:"measurement"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mixnn-proxy:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mixnn-proxy", flag.ContinueOnError)
	var (
		listen    = fs.String("listen", ":8441", "address to serve on")
		upstream  = fs.String("upstream", "http://localhost:8440", "aggregation server base URL")
		roundSize = fs.Int("round-size", 8, "participants per round (C)")
		k         = fs.Int("k", 4, "per-layer mixing list capacity (<= round-size)")
		constMs   = fs.Int("const-ms", 0, "constant per-update processing time in ms (side-channel hardening; 0 = off)")
		identity  = fs.String("identity", "mixnn-proxy-v1", "enclave code identity (measured)")
		trustOut  = fs.String("trust-out", "trust.json", "file to write the participant trust bundle to")
		seed      = fs.Int64("seed", time.Now().UnixNano(), "mixing randomness seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	platform, err := enclave.NewPlatform()
	if err != nil {
		return err
	}
	encl, err := enclave.New(enclave.Config{
		CodeIdentity:       *identity,
		ConstantProcessing: time.Duration(*constMs) * time.Millisecond,
	}, platform)
	if err != nil {
		return err
	}

	px, err := proxy.New(proxy.Config{
		Upstream:  *upstream,
		K:         *k,
		RoundSize: *roundSize,
		Seed:      *seed,
	}, encl, platform)
	if err != nil {
		return err
	}

	authDER, err := x509.MarshalPKIXPublicKey(platform.AttestationPublicKey())
	if err != nil {
		return fmt.Errorf("marshal authority key: %w", err)
	}
	meas := encl.Measurement()
	bundle, err := json.MarshalIndent(TrustBundle{
		AuthorityPubDER: authDER,
		MeasurementHex:  hex.EncodeToString(meas[:]),
	}, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*trustOut, bundle, 0o600); err != nil {
		return fmt.Errorf("write trust bundle: %w", err)
	}

	log.Printf("mixnn-proxy: enclave measurement %s", hex.EncodeToString(meas[:]))
	log.Printf("mixnn-proxy: trust bundle written to %s", *trustOut)
	log.Printf("mixnn-proxy: k=%d round-size=%d upstream=%s listening on %s", *k, *roundSize, *upstream, *listen)
	srv := &http.Server{
		Addr:              *listen,
		Handler:           px.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	return srv.ListenAndServe()
}
