// Command fl-server runs the aggregation server of the federated pipeline:
// it serves the global model, collects (possibly mixed) parameter updates,
// and averages them once a round's worth has arrived.
//
// The initial model is derived deterministically from -dataset/-scale/-seed
// so that independently-started clients and server agree on the
// architecture.
//
// Usage:
//
//	fl-server -listen :8440 -dataset motionsense -scale quick -expect 8
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"mixnn/internal/experiment"
	"mixnn/internal/proxy"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "fl-server:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("fl-server", flag.ContinueOnError)
	var (
		listen  = fs.String("listen", ":8440", "address to serve on")
		dataset = fs.String("dataset", "motionsense", "dataset key (fixes the model architecture)")
		scaleS  = fs.String("scale", "quick", "experiment scale: quick or full")
		seed    = fs.Int64("seed", 1, "model-initialisation seed (must match clients)")
		expect  = fs.Int("expect", 8, "updates per aggregation round")
		dedupW  = fs.Int("dedup-window", proxy.DefaultDedupWindow, "batch-dedup FIFO window; aged-out redeliveries are rejected with 409 via the sender sequence watermark")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	scale := experiment.ScaleQuick
	if *scaleS == "full" {
		scale = experiment.ScaleFull
	}
	spec, err := experiment.DatasetByKey(*dataset, scale, *seed)
	if err != nil {
		return err
	}

	agg, err := proxy.NewAggServer(spec.Arch.New(*seed^0x6d78).SnapshotParams(), *expect)
	if err != nil {
		return err
	}
	agg.SetDedupWindow(*dedupW)
	log.Printf("fl-server: dataset=%s scale=%s expect=%d listening on %s", *dataset, scale, *expect, *listen)
	srv := &http.Server{
		Addr:              *listen,
		Handler:           agg.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	return srv.ListenAndServe()
}
