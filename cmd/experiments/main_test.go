package main

import (
	"io"
	"os"
	"path/filepath"
	"testing"

	"mixnn/internal/experiment"
)

func TestParseRatios(t *testing.T) {
	got, err := parseRatios("0.2, 0.4,1.0")
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.2, 0.4, 1.0}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if _, err := parseRatios("0.2,abc"); err == nil {
		t.Fatal("bad ratio accepted")
	}
}

func TestSelectDatasets(t *testing.T) {
	all, err := selectDatasets("all", experiment.ScaleQuick, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 4 {
		t.Fatalf("all = %d datasets", len(all))
	}
	one, err := selectDatasets("lfw", experiment.ScaleQuick, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(one) != 1 || one[0].Key != "lfw" {
		t.Fatalf("one = %+v", one)
	}
	if _, err := selectDatasets("nope", experiment.ScaleQuick, 1); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestWriteCSVHelper(t *testing.T) {
	dir := t.TempDir()
	err := writeCSV(dir, "out.csv", func(w io.Writer) error {
		_, err := w.Write([]byte("a,b\n1,2\n"))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "out.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "a,b\n1,2\n" {
		t.Fatalf("content = %q", data)
	}
	// Empty dir is a no-op.
	if err := writeCSV("", "out.csv", func(io.Writer) error { t.Fatal("called"); return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-scale", "medium"}); err == nil {
		t.Fatal("bad scale accepted")
	}
	if err := run([]string{"-fig", "12"}); err == nil {
		t.Fatal("bad figure accepted")
	}
	if err := run([]string{"-dataset", "imagenet"}); err == nil {
		t.Fatal("bad dataset accepted")
	}
}
