// Command experiments regenerates every table and figure of the MixNN
// paper's evaluation (§6). See DESIGN.md §4 for the experiment index and
// EXPERIMENTS.md for paper-vs-measured results.
//
// Usage:
//
//	experiments -fig all  -scale quick          # every figure, CI sizing
//	experiments -fig 5    -dataset cifar10      # one figure, one dataset
//	experiments -fig 7    -scale full           # paper-sized inference run
//	experiments -perf                           # §6.5 system performance
//	experiments -shard-perf -shards 1,2,4       # sharded mixing-tier throughput
//	experiments -shard-perf -cascade            # same, through a second mixing hop
//	experiments -shard-perf -rounds 4           # pipelined: overlap ingest of
//	                                            # round N+1 with delivery of N
//	experiments -shard-perf -topology hash-quota  # quota routing arm
//	experiments -shard-perf -topology remote    # one proxy+enclave per shard
//	experiments -shard-perf -transport loopback # same pipeline over the
//	                                            # in-process typed transport
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"mixnn/internal/experiment"
	"mixnn/internal/stats"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		fig        = fs.String("fig", "all", "figure to regenerate: 5, 6, 7, 8, 9 or all")
		perf       = fs.Bool("perf", false, "run the §6.5 system-performance experiment")
		shardPerf  = fs.Bool("shard-perf", false, "run the sharded mixing-tier throughput experiment")
		shardsS    = fs.String("shards", "1,2,4", "shard counts P to sweep in -shard-perf")
		cascade    = fs.Bool("cascade", false, "cascade the sharded tier through a second mixing hop in -shard-perf")
		topology   = fs.String("topology", "", "routing-plane arm for -shard-perf: sticky, round-robin, hash-quota, or remote (one proxy+enclave per shard)")
		rounds     = fs.Int("rounds", 1, "back-to-back rounds per -shard-perf run (>1 exercises cross-round pipelining)")
		transportK = fs.String("transport", "http", "transport arm for -shard-perf: http (real sockets) or loopback (in-process typed transport)")
		ablate     = fs.Bool("ablation", false, "run the DESIGN.md §9 ablation studies instead of figures")
		dataset    = fs.String("dataset", "all", "dataset: cifar10, motionsense, mobiact, lfw or all")
		scaleS     = fs.String("scale", "quick", "experiment scale: quick or full")
		seed       = fs.Int64("seed", 1, "base random seed")
		passive    = fs.Bool("passive", false, "use the passive (honest-server) ∇Sim variant for figures 7/8")
		ratioS     = fs.String("ratios", "0.2,0.4,0.6,0.8,1.0", "background-knowledge ratios for figure 8")
		radius     = fs.Float64("radius", experiment.DefaultNeighbourRadius, "neighbour radius for figure 9 (on unit-normalised directions)")
		cdfAt      = fs.Int("cdf-round", 6, "round at which figure 6 snapshots per-participant accuracy")
		csvDir     = fs.String("csv", "", "directory to also write CSV result files into (created if missing)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	scale := experiment.ScaleQuick
	if *scaleS == "full" {
		scale = experiment.ScaleFull
	} else if *scaleS != "quick" {
		return fmt.Errorf("unknown scale %q", *scaleS)
	}

	specs, err := selectDatasets(*dataset, scale, *seed)
	if err != nil {
		return err
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return fmt.Errorf("create csv dir: %w", err)
		}
	}

	if *perf {
		return runPerf(scale, *seed, *csvDir)
	}
	if *shardPerf {
		shardCounts, err := parseShards(*shardsS)
		if err != nil {
			return err
		}
		return runShardPerf(scale, *seed, shardCounts, *cascade, *rounds, *topology, *transportK, *csvDir)
	}
	if *ablate {
		return runAblations(specs, *seed)
	}

	wantFig := func(f string) bool { return *fig == "all" || *fig == f }
	ran := false
	if wantFig("5") {
		ran = true
		if err := runFig5(specs, *seed, *csvDir); err != nil {
			return err
		}
	}
	if wantFig("6") {
		ran = true
		if err := runFig6(specs, *seed, *cdfAt); err != nil {
			return err
		}
	}
	if wantFig("7") {
		ran = true
		if err := runFig7(specs, *seed, !*passive, *csvDir); err != nil {
			return err
		}
	}
	if wantFig("8") {
		ran = true
		ratios, err := parseRatios(*ratioS)
		if err != nil {
			return err
		}
		if err := runFig8(specs, *seed, !*passive, ratios, *csvDir); err != nil {
			return err
		}
	}
	if wantFig("9") {
		ran = true
		if err := runFig9(specs, *seed, *radius, *csvDir); err != nil {
			return err
		}
	}
	if !ran {
		return fmt.Errorf("unknown figure %q (want 5, 6, 7, 8, 9 or all)", *fig)
	}
	return nil
}

func selectDatasets(key string, scale experiment.Scale, seed int64) ([]experiment.DatasetSpec, error) {
	if key == "all" {
		return experiment.Datasets(scale, seed), nil
	}
	spec, err := experiment.DatasetByKey(key, scale, seed)
	if err != nil {
		return nil, err
	}
	return []experiment.DatasetSpec{spec}, nil
}

func parseShards(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad shard count %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseRatios(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad ratio %q: %w", part, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// runFig5 prints model accuracy per learning round for the three arms
// ("MixNN provides the same utility than a standard FL scheme, noisy
// gradient however decreases significantly the utility").
func runFig5(specs []experiment.DatasetSpec, seed int64, csvDir string) error {
	fmt.Println("=== Figure 5: model accuracy vs learning round ===")
	var all []experiment.UtilityResult
	for _, spec := range specs {
		var series []stats.Series
		for _, arm := range experiment.Arms() {
			res, err := experiment.RunUtility(spec, arm, seed)
			if err != nil {
				return err
			}
			x := make([]float64, len(res.Accuracy))
			for i := range x {
				x[i] = float64(i + 1)
			}
			series = append(series, stats.Series{Name: arm.Key, X: x, Y: res.Accuracy})
			all = append(all, res)
			fmt.Printf("  %-12s %-7s %s  final=%.3f\n", spec.Key, arm.Key, stats.Sparkline(res.Accuracy), res.FinalAccuracy())
		}
		fmt.Printf("\n(%s)\n%s\n", spec.Key, stats.FormatSeriesTable("round", series))
	}
	return writeCSV(csvDir, "fig5_utility.csv", func(w io.Writer) error {
		return experiment.WriteUtilityCSV(w, all)
	})
}

// runFig6 prints the CDF of per-participant accuracy at the snapshot round
// ("using noisy gradient decreases the utility for all participants").
func runFig6(specs []experiment.DatasetSpec, seed int64, round int) error {
	fmt.Printf("=== Figure 6: CDF of per-participant accuracy at round %d ===\n", round)
	for _, spec := range specs {
		fmt.Printf("\n(%s)\n", spec.Key)
		for _, arm := range experiment.Arms() {
			res, err := experiment.RunUtility(spec, arm, seed)
			if err != nil {
				return err
			}
			per := res.PerClientAt(round - 1)
			cdf := stats.CDF(per)
			fmt.Printf("  %-7s mean=%.3f p10=%.3f median=%.3f p90=%.3f  cdf=",
				arm.Key, stats.Mean(per), stats.Percentile(per, 10), stats.Percentile(per, 50), stats.Percentile(per, 90))
			for _, p := range cdf {
				fmt.Printf(" (%.2f,%.2f)", p.X, p.Y)
			}
			fmt.Println()
		}
	}
	return nil
}

// runFig7 prints ∇Sim inference accuracy per round for the three arms
// ("MixNN better prevents attribute leakage compared to using noisy
// gradient").
func runFig7(specs []experiment.DatasetSpec, seed int64, active bool, csvDir string) error {
	mode := "active"
	if !active {
		mode = "passive"
	}
	fmt.Printf("=== Figure 7: %s ∇Sim inference accuracy vs learning round ===\n", mode)
	var all []experiment.InferenceResult
	for _, spec := range specs {
		var series []stats.Series
		chance := 0.0
		for _, arm := range experiment.Arms() {
			res, err := experiment.RunInference(spec, arm, active, 1, seed)
			if err != nil {
				return err
			}
			chance = res.Chance
			all = append(all, res)
			x := make([]float64, len(res.InferenceAccuracy))
			for i := range x {
				x[i] = float64(i + 1)
			}
			series = append(series, stats.Series{Name: arm.Key, X: x, Y: res.InferenceAccuracy})
		}
		fmt.Printf("\n(%s, random guess = %.3f)\n%s\n", spec.Key, chance, stats.FormatSeriesTable("round", series))
	}
	return writeCSV(csvDir, "fig7_inference.csv", func(w io.Writer) error {
		return experiment.WriteInferenceCSV(w, all)
	})
}

// runFig8 prints final inference accuracy vs background-knowledge ratio
// ("this background knowledge has only a small impact on the protection
// of MixNN").
func runFig8(specs []experiment.DatasetSpec, seed int64, active bool, ratios []float64, csvDir string) error {
	fmt.Println("=== Figure 8: inference accuracy vs background knowledge ratio ===")
	var all []experiment.InferenceResult
	for _, spec := range specs {
		var series []stats.Series
		for _, arm := range experiment.Arms() {
			results, err := experiment.RunBackgroundSweep(spec, arm, active, ratios, seed)
			if err != nil {
				return err
			}
			all = append(all, results...)
			y := make([]float64, len(results))
			for i, r := range results {
				y[i] = r.FinalAccuracy()
			}
			series = append(series, stats.Series{Name: arm.Key, X: ratios, Y: y})
		}
		fmt.Printf("\n(%s)\n%s\n", spec.Key, stats.FormatSeriesTable("ratio", series))
	}
	return writeCSV(csvDir, "fig8_background.csv", func(w io.Writer) error {
		return experiment.WriteInferenceCSV(w, all)
	})
}

// runFig9 prints the CDF of close-neighbour counts ("many participants
// have very close model updates making it difficult ... to retrieve and
// distinguish all pieces of the gradient coming from the same
// participant").
func runFig9(specs []experiment.DatasetSpec, seed int64, radius float64, csvDir string) error {
	fmt.Printf("=== Figure 9: CDF of #neighbours within radius %.2f (unit-normalised directions) ===\n", radius)
	var all []experiment.NeighbourResult
	for _, spec := range specs {
		res, err := experiment.RunNeighbours(spec, radius, seed)
		if err != nil {
			return err
		}
		all = append(all, res)
		fmt.Printf("\n(%s) neighbour counts per participant: %v\n  cdf:", spec.Key, res.Neighbours)
		for _, p := range res.CDF {
			fmt.Printf(" (%.0f,%.2f)", p.X, p.Y)
		}
		fmt.Println()
	}
	return writeCSV(csvDir, "fig9_neighbours.csv", func(w io.Writer) error {
		return experiment.WriteNeighboursCSV(w, all)
	})
}

// runPerf prints the §6.5 system-performance table for the two model
// variants.
func runPerf(scale experiment.Scale, seed int64, csvDir string) error {
	var all []experiment.PerfResult
	fmt.Println("=== §6.5 system performance (real HTTP proxy, simulated enclave) ===")
	fmt.Printf("%-12s %12s %12s %10s %10s %10s %12s %14s\n",
		"model", "update(KB)", "decrypt(ms)", "store(ms)", "mix(ms)", "proc(ms)", "e2e(ms)", "peak-mem(KB)")
	participants, k := 8, 4
	if scale == experiment.ScaleFull {
		participants, k = 20, 10
	}
	for _, m := range experiment.PerfModels(scale) {
		res, err := experiment.RunSystemPerf(m.Name, m.Arch, participants, k, seed)
		if err != nil {
			return err
		}
		all = append(all, res)
		fmt.Printf("%-12s %12.1f %12.3f %10.3f %10.3f %10.3f %12.3f %14.1f\n",
			res.Model, float64(res.UpdateBytes)/1024, res.DecryptMillis, res.StoreMillis,
			res.MixMillis, res.ProcessMillis, res.EndToEndMillis, float64(res.EnclavePeakBytes)/1024)
	}
	return writeCSV(csvDir, "sysperf.csv", func(w io.Writer) error {
		return experiment.WritePerfCSV(w, all)
	})
}

// runShardPerf prints the sharded mixing-tier throughput table: one full
// round of concurrent participants through P shards (optionally cascaded
// through a second mixing hop), for each requested P.
func runShardPerf(scale experiment.Scale, seed int64, shardCounts []int, cascade bool, rounds int, topology, transportKind, csvDir string) error {
	mode := "direct"
	if cascade {
		mode = "cascade (2 mixing hops)"
	}
	if topology != "" {
		mode += ", topology " + topology
	}
	if rounds > 1 {
		mode += fmt.Sprintf(", %d pipelined rounds", rounds)
	}
	if transportKind != "" && transportKind != "http" {
		mode += ", transport " + transportKind
	}
	fmt.Printf("=== Sharded mixing tier throughput, %s ===\n", mode)
	fmt.Printf("%-12s %7s %5s %12s %12s %14s %12s %8s\n",
		"model", "shards", "k", "update(KB)", "round(ms)", "updates/sec", "proc(ms)", "batches")
	participants, k := 8, 2
	if scale == experiment.ScaleFull {
		participants, k = 32, 4
	}
	m := experiment.PerfModels(scale)[0]
	var all []experiment.ShardedPerfResult
	for _, p := range shardCounts {
		res, err := experiment.RunShardedPerfTransport(m.Name, m.Arch, participants, k, p, cascade, rounds, topology, transportKind, seed)
		if err != nil {
			return err
		}
		all = append(all, res)
		fmt.Printf("%-12s %7d %5d %12.1f %12.3f %14.1f %12.3f %8d\n",
			res.Model, res.Shards, res.K, float64(res.UpdateBytes)/1024,
			res.RoundMillis, res.UpdatesPerSec, res.ProcessMillis, res.BatchesSent)
	}
	return writeCSV(csvDir, "shardperf.csv", func(w io.Writer) error {
		return experiment.WriteShardedPerfCSV(w, all)
	})
}

// runAblations prints the DESIGN.md §9 design-choice studies.
func runAblations(specs []experiment.DatasetSpec, seed int64) error {
	fmt.Println("=== Ablations (DESIGN.md §9): utility and active-∇Sim leakage per design choice ===")
	for _, spec := range specs {
		rows, err := experiment.RunAblations(spec, seed)
		if err != nil {
			return err
		}
		fmt.Printf("\n(%s)\n%-14s %-14s %10s %10s %10s\n", spec.Key, "study", "config", "utility", "leakage", "chance")
		for _, r := range rows {
			fmt.Printf("%-14s %-14s %10.3f %10.3f %10.3f\n", r.Study, r.Config, r.Utility, r.Leakage, r.Chance)
		}
	}
	return nil
}

// writeCSV writes one result file into dir (no-op when dir is empty).
func writeCSV(dir, name string, write func(io.Writer) error) error {
	if dir == "" {
		return nil
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return fmt.Errorf("create %s: %w", name, err)
	}
	defer f.Close()
	if err := write(f); err != nil {
		return fmt.Errorf("write %s: %w", name, err)
	}
	return f.Close()
}
