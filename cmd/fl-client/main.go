// Command fl-client runs one federated participant through the
// participant SDK (internal/client): it verifies the MixNN proxies'
// attestation, then loops — fetch the global model, train locally on
// its private partition, encrypt the update for the attested enclave
// and send it through the mixing tier. -proxy takes a comma-separated
// FAILOVER LIST: a proxy that is down or answers 5xx is skipped and the
// update is re-encrypted for the next proxy's enclave.
//
// The participant's private data is its deterministic partition of the
// synthetic dataset (-dataset/-scale/-seed must match the server):
//
//	fl-client -id 0 -rounds 3 \
//	    -proxy http://localhost:8441,http://localhost:8442 \
//	    -server http://localhost:8440 -trust trust.json
package main

import (
	"context"
	"crypto/ecdsa"
	"crypto/x509"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"mixnn/internal/client"
	"mixnn/internal/experiment"
	"mixnn/internal/fl"
)

// trustBundle mirrors the file written by mixnn-proxy -trust-out.
type trustBundle struct {
	AuthorityPubDER []byte `json:"authority_pub_der"`
	MeasurementHex  string `json:"measurement"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "fl-client:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("fl-client", flag.ContinueOnError)
	var (
		proxyURL  = fs.String("proxy", "http://localhost:8441", "MixNN proxy base URL, or a comma-separated failover list tried in order")
		serverURL = fs.String("server", "http://localhost:8440", "aggregation server base URL")
		dataset   = fs.String("dataset", "motionsense", "dataset key")
		scaleS    = fs.String("scale", "quick", "experiment scale: quick or full")
		seed      = fs.Int64("seed", 1, "data/model seed (must match server)")
		id        = fs.Int("id", 0, "participant index in the population")
		rounds    = fs.Int("rounds", 3, "learning rounds to participate in")
		trustFile = fs.String("trust", "trust.json", "trust bundle written by mixnn-proxy")
		timeout   = fs.Duration("timeout", 10*time.Minute, "overall deadline")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	scale := experiment.ScaleQuick
	if *scaleS == "full" {
		scale = experiment.ScaleFull
	}
	spec, err := experiment.DatasetByKey(*dataset, scale, *seed)
	if err != nil {
		return err
	}
	parts := spec.Source.Participants(*seed)
	if *id < 0 || *id >= len(parts) {
		return fmt.Errorf("participant id %d outside population [0,%d)", *id, len(parts))
	}
	cfg := spec.FL
	cfg.Seed = *seed
	if err := cfg.Validate(); err != nil {
		return err
	}
	learner := fl.NewClient(parts[*id], spec.Arch, cfg)

	authority, measurement, err := loadTrust(*trustFile)
	if err != nil {
		return err
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	var proxies []string
	for _, ep := range strings.Split(*proxyURL, ",") {
		if ep = strings.TrimSpace(ep); ep != "" {
			proxies = append(proxies, ep)
		}
	}
	session, err := client.New(client.Config{
		Proxies:  proxies,
		Server:   *serverURL,
		ClientID: fmt.Sprintf("fl-client-%d", *id),
	})
	if err != nil {
		return err
	}
	if err := session.Attest(ctx, authority, measurement); err != nil {
		return fmt.Errorf("attestation failed — refusing to send updates: %w", err)
	}
	log.Printf("fl-client %d: proxy enclave attested (measurement %s, %d proxies on the failover list)",
		*id, hex.EncodeToString(measurement[:]), len(proxies))

	for r := 0; r < *rounds; r++ {
		round, global, err := session.WaitForRound(ctx, r, 200*time.Millisecond)
		if err != nil {
			return err
		}
		update, err := learner.LocalTrain(global)
		if err != nil {
			return err
		}
		if err := session.SendUpdate(ctx, update); err != nil {
			return err
		}
		acc, err := learner.TestAccuracy(update)
		if err != nil {
			return err
		}
		log.Printf("fl-client %d: round %d trained and sent (local test acc %.3f)", *id, round, acc)
	}
	return nil
}

func loadTrust(path string) (*ecdsa.PublicKey, [32]byte, error) {
	var meas [32]byte
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, meas, fmt.Errorf("read trust bundle: %w", err)
	}
	var tb trustBundle
	if err := json.Unmarshal(raw, &tb); err != nil {
		return nil, meas, fmt.Errorf("parse trust bundle: %w", err)
	}
	pub, err := x509.ParsePKIXPublicKey(tb.AuthorityPubDER)
	if err != nil {
		return nil, meas, fmt.Errorf("parse authority key: %w", err)
	}
	ecPub, ok := pub.(*ecdsa.PublicKey)
	if !ok {
		return nil, meas, fmt.Errorf("authority key is %T, want ECDSA", pub)
	}
	mb, err := hex.DecodeString(tb.MeasurementHex)
	if err != nil || len(mb) != 32 {
		return nil, meas, fmt.Errorf("malformed measurement in trust bundle")
	}
	copy(meas[:], mb)
	return ecPub, meas, nil
}
