package main

import (
	"crypto/x509"
	"encoding/hex"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"mixnn/internal/enclave"
)

func writeBundle(t *testing.T, authorityDER []byte, measurement string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "trust.json")
	raw, err := json.Marshal(trustBundle{AuthorityPubDER: authorityDER, MeasurementHex: measurement})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw, 0o600); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadTrustRoundTrip(t *testing.T) {
	platform, err := enclave.NewPlatform()
	if err != nil {
		t.Fatal(err)
	}
	encl, err := enclave.New(enclave.Config{}, platform)
	if err != nil {
		t.Fatal(err)
	}
	der, err := x509.MarshalPKIXPublicKey(platform.AttestationPublicKey())
	if err != nil {
		t.Fatal(err)
	}
	meas := encl.Measurement()
	path := writeBundle(t, der, hex.EncodeToString(meas[:]))

	pub, gotMeas, err := loadTrust(path)
	if err != nil {
		t.Fatal(err)
	}
	if !pub.Equal(platform.AttestationPublicKey()) {
		t.Fatal("authority key mangled")
	}
	if gotMeas != meas {
		t.Fatal("measurement mangled")
	}
}

func TestLoadTrustRejects(t *testing.T) {
	platform, err := enclave.NewPlatform()
	if err != nil {
		t.Fatal(err)
	}
	der, err := x509.MarshalPKIXPublicKey(platform.AttestationPublicKey())
	if err != nil {
		t.Fatal(err)
	}

	tests := []struct {
		name string
		path string
	}{
		{"missing file", filepath.Join(t.TempDir(), "nope.json")},
		{"bad measurement", writeBundle(t, der, "zz")},
		{"bad key", writeBundle(t, []byte("junk"), "00")},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, _, err := loadTrust(tt.path); err == nil {
				t.Fatal("no error")
			}
		})
	}

	t.Run("not json", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "trust.json")
		if err := os.WriteFile(path, []byte("{broken"), 0o600); err != nil {
			t.Fatal(err)
		}
		if _, _, err := loadTrust(path); err == nil {
			t.Fatal("no error")
		}
	})
}
