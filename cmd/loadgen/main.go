// Command loadgen hosts a whole MixNN deployment — two sharded front
// proxies, two relay shards, a cascade hop and the aggregation server —
// over the in-process bounded-queue Loopback transport, and drives tens
// of thousands of concurrent participant SDK sessions through a
// scripted churn sequence: calm waves, a sync_peers directive, a dead
// relay peer, stragglers and session replacement, a cascade reshard
// under load, and a mid-wave front failover storm. The run fails unless
// every acked update is accounted for at the aggregation server with
// layer-wise means agreeing at 1e-9 (zero loss, zero duplication).
//
// Usage:
//
//	loadgen                                  # full scale: 10k participants
//	loadgen -participants 120 -round 24 -waves 3   # CI smoke scale
//	loadgen -out BENCH_loadgen.json          # write the metrics snapshot
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"mixnn/internal/experiment"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	var (
		participants = fs.Int("participants", 10080, "concurrent participant sessions (multiple of -round)")
		round        = fs.Int("round", 504, "front tier round size C (divisible by 3)")
		k            = fs.Int("k", 4, "per-shard stream-mixer list capacity")
		waves        = fs.Int("waves", 5, "send waves (>= 3: calm, churn, failover)")
		queueDepth   = fs.Int("queue-depth", 1024, "bounded ingress queue depth per Loopback peer (0 = default)")
		workers      = fs.Int("workers", 0, "ingress workers per Loopback peer (0 = GOMAXPROCS)")
		straggler    = fs.Float64("straggler", 0.05, "fraction of participants per churn wave that delay their send")
		disconnect   = fs.Float64("disconnect", 0.02, "fraction of sessions per churn wave replaced mid-run")
		rsaBits      = fs.Int("rsa-bits", 0, "enclave RSA key size (0 = production 2048)")
		seed         = fs.Int64("seed", 1, "base random seed")
		timeout      = fs.Duration("timeout", 10*time.Minute, "whole-run deadline")
		out          = fs.String("out", "", "write the LoadgenResult JSON here (e.g. BENCH_loadgen.json)")
		metricsOut   = fs.String("metrics-out", "", "write the tier's Prometheus text exposition here after the run (validated before writing)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	res, err := experiment.RunLoadgen(experiment.LoadgenConfig{
		Participants: *participants, FrontRound: *round, K: *k, Waves: *waves,
		QueueDepth: *queueDepth, Workers: *workers,
		StragglerFrac: *straggler, DisconnectFrac: *disconnect,
		RSABits: *rsaBits, Seed: *seed, Timeout: *timeout,
		MetricsOut: *metricsOut,
	})
	if err != nil {
		return err
	}

	fmt.Printf("loadgen: %d participants x %d waves = %d updates (%d fillers) in %.1fms\n",
		res.Participants, res.Waves, res.TotalUpdates, res.Fillers, res.DurationMillis)
	fmt.Printf("  throughput   %.0f updates/sec over %d agg rounds of %d\n", res.UpdatesPerSec, res.AggRounds, res.Quota)
	fmt.Printf("  send latency p50 %.2fms  p95 %.2fms  p99 %.2fms\n", res.SendMsP50, res.SendMsP95, res.SendMsP99)
	fmt.Printf("  round gaps   p50 %.2fms  p95 %.2fms  p99 %.2fms\n", res.RoundGapMsP50, res.RoundGapMsP95, res.RoundGapMsP99)
	fmt.Printf("  backpressure peak queue %d, %d busy rejections, %d send retries\n", res.PeakIngressQueue, res.BusyRejections, res.SendRetries)
	fmt.Printf("  churn        %d sessions replaced, %d stragglers, peak outbox lane %d\n", res.Replaced, res.Stragglers, res.PeakLaneDepth)
	fmt.Printf("  admission    %d overload sends, %d rate-limited 429s, %d shed\n", res.OverloadSends, res.RateLimited429, res.AdmissionShed)
	fmt.Printf("  allocs/op    %.0f\n", res.AllocsPerUpdate)
	fmt.Printf("  conservation %v (every acked update accounted for at 1e-9)\n", res.ConservationOK)

	if *metricsOut != "" {
		fmt.Printf("loadgen: wrote %s\n", *metricsOut)
	}
	if *out != "" {
		enc, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, append(enc, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("loadgen: wrote %s\n", *out)
	}
	return nil
}
