package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestLoadgenSmallScale runs the command end to end at smoke scale and
// checks the BENCH_loadgen.json snapshot it writes.
func TestLoadgenSmallScale(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_loadgen.json")
	err := run([]string{
		"-participants", "24", "-round", "12", "-k", "2", "-waves", "3",
		"-queue-depth", "16", "-workers", "4", "-rsa-bits", "1024",
		"-straggler", "0.2", "-disconnect", "0.1",
		"-out", out,
	})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var res struct {
		Bench          string `json:"bench"`
		TotalUpdates   int    `json:"total_updates"`
		AggRounds      int    `json:"agg_rounds"`
		Quota          int    `json:"quota"`
		ConservationOK bool   `json:"conservation_ok"`
	}
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatalf("BENCH_loadgen.json did not parse: %v", err)
	}
	if res.Bench != "loadgen" || !res.ConservationOK {
		t.Fatalf("snapshot = %+v, want bench=loadgen with conservation_ok", res)
	}
	if res.AggRounds*res.Quota != res.TotalUpdates {
		t.Fatalf("snapshot accounting broken: %d rounds x %d != %d updates", res.AggRounds, res.Quota, res.TotalUpdates)
	}
}

func TestLoadgenRejectsBadConfig(t *testing.T) {
	if err := run([]string{"-participants", "10", "-round", "4"}); err == nil {
		t.Fatal("round size not divisible by 3 must be rejected")
	}
}
