// Package mixnn is the public facade of the MixNN reproduction — a
// privacy-preserving proxy system for federated learning that protects
// participants against attribute-inference attacks by mixing neural-network
// layers between participants before aggregation (Boutet et al.,
// MIDDLEWARE 2022).
//
// The facade re-exports the user-facing types of the internal packages so
// applications interact with a single import:
//
//	import "mixnn"
//
//	spec, _ := mixnn.DatasetByKey("cifar10", mixnn.ScaleQuick, 1)
//	sim, attrs, _ := mixnn.NewFederation(spec, mixnn.MixNNArm(), 1)
//	metrics, _ := sim.Run(spec.FL.Rounds)
//
// Networked deployments are driven through the participant SDK: a
// ParticipantClient holds an ordered failover list of mixing proxies,
// attests their enclaves, and sends each round's update with typed
// retry semantics; its Admin sub-client drives routing-plane
// directives. Every inter-tier leg rides a Transport — NewHTTPTransport
// for the wire deployment, NewLoopbackTransport to run a whole
// multi-tier deployment in one process:
//
//	part, _ := mixnn.NewParticipantClient(mixnn.ParticipantConfig{
//	    Proxies: []string{"http://proxy-a:8441", "http://proxy-b:8441"},
//	    Server:  "http://agg:8440",
//	})
//	_ = part.Attest(ctx, authority, measurement)
//	_ = part.SendUpdate(ctx, update) // fails over down the proxy list
//
// Layering (see DESIGN.md):
//
//	tensor → nn → {data, fl, core, privacy, wire} → transport →
//	{attack, proxy, client} → experiment
//
// The three evaluation arms of the paper are exposed as UpdateTransforms:
// classic FL (Identity), the MixNN mixer (layer mixing; batch or
// streaming), and the noisy-gradient local-DP baseline.
package mixnn

import (
	"net/http"

	"mixnn/internal/attack"
	"mixnn/internal/client"
	"mixnn/internal/core"
	"mixnn/internal/data"
	"mixnn/internal/enclave"
	"mixnn/internal/experiment"
	"mixnn/internal/fl"
	"mixnn/internal/nn"
	"mixnn/internal/privacy"
	"mixnn/internal/proxy"
	"mixnn/internal/transport"
)

// Model/parameter types.
type (
	// ParamSet is a model's parameters grouped by layer — the unit
	// participants send and the proxy mixes.
	ParamSet = nn.ParamSet
	// LayerParams is one layer's parameter group (the mixing unit).
	LayerParams = nn.LayerParams
	// Arch is a reusable architecture description.
	Arch = nn.Arch
	// Network is a feed-forward neural network.
	Network = nn.Network
)

// Federated-learning types.
type (
	// FLConfig holds the federated schedule (rounds, epochs, batches).
	FLConfig = fl.Config
	// Client is a federated participant.
	Client = fl.Client
	// Server is the aggregation server.
	Server = fl.Server
	// Simulation orchestrates rounds over a pluggable update pipeline.
	Simulation = fl.Simulation
	// UpdateTransform is the pluggable pipeline stage between
	// participants and server (identity / mixing / noise).
	UpdateTransform = fl.UpdateTransform
	// RoundRecord is the adversarial server's per-round view.
	RoundRecord = fl.RoundRecord
)

// Dataset types.
type (
	// Source generates a benchmark dataset and its population.
	Source = data.Source
	// Dataset is a supervised dataset.
	Dataset = data.Dataset
	// Participant is one client's data partition plus its sensitive
	// attribute.
	Participant = data.Participant
)

// Attack types.
type (
	// NablaSim is the ∇Sim attribute-inference adversary.
	NablaSim = attack.NablaSim
	// AttackConfig parameterises ∇Sim.
	AttackConfig = attack.Config
)

// Deployment types (networked mode).
type (
	// Enclave is the simulated SGX enclave hosting the proxy.
	Enclave = enclave.Enclave
	// Platform is the simulated host (fuse secret + attestation).
	Platform = enclave.Platform
	// Proxy is the HTTP MixNN proxy (single mixer).
	Proxy = proxy.Proxy
	// ShardedProxy is the horizontally-scaled mixing tier: P independent
	// mixer shards behind one endpoint, optionally cascaded to a next-hop
	// proxy with per-hop re-encryption.
	ShardedProxy = proxy.ShardedProxy
	// ShardedProxyConfig parameterises a ShardedProxy.
	ShardedProxyConfig = proxy.ShardedConfig
	// HopKey is the attested key material one cascade hop holds for the
	// next.
	HopKey = enclave.HopKey
	// AggServer is the HTTP aggregation server.
	AggServer = proxy.AggServer
	// ParticipantClient is the participant SDK: a session handle that
	// attests the mixing tier, holds an ordered failover list of proxy
	// endpoints, and sends updates with typed retry semantics.
	ParticipantClient = client.Participant
	// ParticipantConfig parameterises a ParticipantClient.
	ParticipantConfig = client.Config
	// AdminClient drives a proxy's routing-plane admin surface
	// (topology reads and directives) through the typed transport.
	AdminClient = client.Admin
)

// Transport types: the typed communication layer every inter-tier leg
// rides (see internal/transport).
type (
	// Transport is the typed inter-tier protocol (SendUpdate, SendBatch,
	// Hop, Attest, Model, Topology, Status).
	Transport = transport.Transport
	// TransportServer is the receiving side of the typed protocol,
	// implemented by ShardedProxy and AggServer.
	TransportServer = transport.Server
	// LoopbackTransport runs a whole deployment in one process: peers
	// are names in a registry, operations are direct method calls.
	LoopbackTransport = transport.Loopback
)

// NewHTTPTransport returns the wire-compatible network transport;
// httpc may be nil for a default client.
func NewHTTPTransport(httpc *http.Client) Transport { return transport.NewHTTP(httpc) }

// NewLoopbackTransport returns an empty in-process transport registry.
func NewLoopbackTransport() *LoopbackTransport { return transport.NewLoopback() }

// NewParticipantClient builds a participant session from a config.
func NewParticipantClient(cfg ParticipantConfig) (*ParticipantClient, error) {
	return client.New(cfg)
}

// NewAdminClient builds an admin sub-client for a proxy endpoint.
func NewAdminClient(tr Transport, endpoint, secret string) *AdminClient {
	return client.NewAdmin(tr, endpoint, secret)
}

// Experiment types.
type (
	// DatasetSpec bundles a dataset with its paper schedule.
	DatasetSpec = experiment.DatasetSpec
	// Arm is one evaluation arm (fl / mixnn / noisy).
	Arm = experiment.Arm
	// Scale selects quick (CI) or full (paper) sizing.
	Scale = experiment.Scale
)

// Scales.
const (
	ScaleQuick = experiment.ScaleQuick
	ScaleFull  = experiment.ScaleFull
)

// Datasets returns the paper's four benchmark specs at the given scale.
func Datasets(scale Scale, seed int64) []DatasetSpec { return experiment.Datasets(scale, seed) }

// DatasetByKey returns one benchmark spec by name
// ("cifar10", "motionsense", "mobiact", "lfw").
func DatasetByKey(key string, scale Scale, seed int64) (DatasetSpec, error) {
	return experiment.DatasetByKey(key, scale, seed)
}

// ClassicArm returns the unprotected federated-learning arm.
func ClassicArm() Arm { return Arm{Key: "fl", Transform: fl.Identity{}} }

// MixNNArm returns the MixNN batch-mixing arm (the paper's L = C setting).
func MixNNArm() Arm { return Arm{Key: "mixnn", Transform: core.Transform{}} }

// MixNNStreamArm returns the streaming k-buffer MixNN arm (§4.3).
func MixNNStreamArm(k int) Arm { return experiment.StreamArm(k) }

// MixNNShardedArm returns the sharded mixing-tier arm: P independent
// k-buffer stream mixers over a round-robin partition of each round.
func MixNNShardedArm(k, shards int) Arm { return experiment.ShardedStreamArm(k, shards) }

// NoisyArm returns the noisy-gradient baseline with the given sigma
// (0 = the paper's N(0,1)).
func NoisyArm(sigma float64) Arm {
	return Arm{Key: "noisy", Transform: privacy.NoisyTransform{Sigma: sigma}}
}

// NewFederation wires a complete in-process federation for a dataset spec
// and arm: clients with their non-IID partitions, a fresh global model and
// the chosen pipeline. It returns the simulation and the participants'
// true sensitive attributes (for evaluating inference attacks).
func NewFederation(spec DatasetSpec, arm Arm, seed int64) (*Simulation, []int, error) {
	return experiment.BuildFederation(spec, arm, seed)
}

// NewAttack builds a ∇Sim adversary.
func NewAttack(cfg AttackConfig) (*NablaSim, error) { return attack.New(cfg) }
