package fl

import (
	"errors"
	"math/rand"
	"testing"

	"mixnn/internal/data"
	"mixnn/internal/nn"
)

// toyPopulation builds a small linearly-separable federated population:
// two Gaussian blobs in 4-D, split across nClients participants whose
// attribute is the blob their data over-represents.
func toyPopulation(nClients, perClient int, seed int64) []data.Participant {
	rng := rand.New(rand.NewSource(seed))
	parts := make([]data.Participant, nClients)
	for id := 0; id < nClients; id++ {
		attr := id % 2
		mk := func(n int) data.Dataset {
			ds := data.NewDataset(n, 4)
			for i := 0; i < n; i++ {
				// Attribute skews the class mixture 80/20.
				y := attr
				if rng.Float64() < 0.2 {
					y = 1 - attr
				}
				ds.Y[i] = y
				for j := 0; j < 4; j++ {
					center := -1.0
					if y == 1 {
						center = 1.0
					}
					ds.X.Data()[i*4+j] = center + rng.NormFloat64()*0.5
				}
			}
			return ds
		}
		parts[id] = data.Participant{ID: id, Attribute: attr, Train: mk(perClient), Test: mk(perClient / 4)}
	}
	return parts
}

func toyArch() nn.Arch { return nn.NewMLP("toy", 4, []int{8}, 2) }

func toyConfig() Config {
	return Config{Rounds: 3, LocalEpochs: 1, BatchSize: 8, LearningRate: 0.01, Optimizer: "adam", Seed: 1}
}

func buildSim(t *testing.T, nClients int, tr UpdateTransform) *Simulation {
	t.Helper()
	cfg := toyConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	arch := toyArch()
	parts := toyPopulation(nClients, 64, 42)
	clients := make([]*Client, len(parts))
	for i, p := range parts {
		clients[i] = NewClient(p, arch, cfg)
	}
	server := NewServer(arch.New(999).SnapshotParams())
	return NewSimulation(server, clients, tr, 7)
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name    string
		cfg     Config
		wantErr bool
	}{
		{"valid", Config{Rounds: 1}, false},
		{"zero rounds", Config{}, true},
		{"bad optimizer", Config{Rounds: 1, Optimizer: "nope"}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.cfg.Validate()
			if (err != nil) != tt.wantErr {
				t.Fatalf("Validate() error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{Rounds: 2}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.LocalEpochs != 1 || cfg.BatchSize != 32 || cfg.Optimizer != "adam" || cfg.LearningRate == 0 {
		t.Fatalf("defaults not filled: %+v", cfg)
	}
}

func TestFederatedTrainingImproves(t *testing.T) {
	sim := buildSim(t, 4, Identity{})
	initial, err := sim.evaluate(-1)
	if err != nil {
		t.Fatal(err)
	}
	metrics, err := sim.Run(4)
	if err != nil {
		t.Fatal(err)
	}
	final := metrics[len(metrics)-1]
	if final.MeanAccuracy <= initial.MeanAccuracy {
		t.Fatalf("accuracy did not improve: %g -> %g", initial.MeanAccuracy, final.MeanAccuracy)
	}
	if final.MeanAccuracy < 0.9 {
		t.Fatalf("final accuracy %g too low for separable task", final.MeanAccuracy)
	}
	if len(final.PerClient) != 4 {
		t.Fatalf("per-client accuracies = %d, want 4", len(final.PerClient))
	}
}

func TestServerAggregateIsMean(t *testing.T) {
	arch := toyArch()
	server := NewServer(arch.New(1).SnapshotParams())
	a := arch.New(2).SnapshotParams()
	b := arch.New(3).SnapshotParams()
	want, err := nn.Average([]nn.ParamSet{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if err := server.Aggregate([]nn.ParamSet{a, b}); err != nil {
		t.Fatal(err)
	}
	if !server.Global().ApproxEqual(want, 1e-12) {
		t.Fatal("Aggregate != mean of updates")
	}
}

func TestServerAggregateRejectsIncompatible(t *testing.T) {
	server := NewServer(toyArch().New(1).SnapshotParams())
	other := nn.NewMLP("other", 3, []int{2}, 2).New(1).SnapshotParams()
	if err := server.Aggregate([]nn.ParamSet{other}); err == nil {
		t.Fatal("aggregate of incompatible update succeeded")
	}
	if err := server.Aggregate(nil); err == nil {
		t.Fatal("aggregate of zero updates succeeded")
	}
}

func TestServerGlobalIsCopy(t *testing.T) {
	server := NewServer(toyArch().New(1).SnapshotParams())
	g := server.Global()
	g.Layers[0].Tensors[0].Data()[0] = 1e9
	if server.Global().Layers[0].Tensors[0].Data()[0] == 1e9 {
		t.Fatal("Global() exposed internal state")
	}
}

// recordingObserver captures RoundRecords for assertions.
type recordingObserver struct{ recs []RoundRecord }

func (r *recordingObserver) ObserveRound(rec RoundRecord) { r.recs = append(r.recs, rec) }

func TestObserverSeesEveryRound(t *testing.T) {
	sim := buildSim(t, 3, Identity{})
	obs := &recordingObserver{}
	sim.Observer = obs
	if _, err := sim.Run(2); err != nil {
		t.Fatal(err)
	}
	if len(obs.recs) != 2 {
		t.Fatalf("observer saw %d rounds, want 2", len(obs.recs))
	}
	for i, rec := range obs.recs {
		if rec.Round != i {
			t.Fatalf("round %d recorded as %d", i, rec.Round)
		}
		if len(rec.Updates) != 3 {
			t.Fatalf("round %d: %d updates, want 3", i, len(rec.Updates))
		}
	}
}

func TestDisseminatorOverridesModel(t *testing.T) {
	sim := buildSim(t, 2, Identity{})
	crafted := toyArch().New(555).SnapshotParams()
	var sent nn.ParamSet
	sim.Disseminate = func(round int, global nn.ParamSet) nn.ParamSet { return crafted }
	obs := &recordingObserver{}
	sim.Observer = obs
	if _, err := sim.Run(1); err != nil {
		t.Fatal(err)
	}
	sent = obs.recs[0].Disseminated
	if !sent.ApproxEqual(crafted, 0) {
		t.Fatal("disseminated model is not the crafted one")
	}
}

// failingTransform simulates a broken pipeline stage.
type failingTransform struct{ err error }

func (f failingTransform) Name() string { return "failing" }
func (f failingTransform) Apply(updates []nn.ParamSet, _ *rand.Rand) ([]nn.ParamSet, error) {
	return nil, f.err
}

// shrinkingTransform violates the same-count contract.
type shrinkingTransform struct{}

func (shrinkingTransform) Name() string { return "shrinking" }
func (shrinkingTransform) Apply(updates []nn.ParamSet, _ *rand.Rand) ([]nn.ParamSet, error) {
	return updates[:1], nil
}

func TestSimulationSurfacesTransformErrors(t *testing.T) {
	wantErr := errors.New("pipeline exploded")
	sim := buildSim(t, 2, failingTransform{err: wantErr})
	if _, err := sim.Run(1); err == nil || !errors.Is(err, wantErr) {
		t.Fatalf("Run error = %v, want wrapped %v", err, wantErr)
	}
}

func TestSimulationRejectsCountChangingTransform(t *testing.T) {
	sim := buildSim(t, 3, shrinkingTransform{})
	if _, err := sim.Run(1); err == nil {
		t.Fatal("count-changing transform accepted")
	}
}

func TestRunRejectsNonPositiveRounds(t *testing.T) {
	sim := buildSim(t, 2, Identity{})
	if _, err := sim.Run(0); err == nil {
		t.Fatal("Run(0) succeeded")
	}
}

func TestIdentityTransformPassesThrough(t *testing.T) {
	arch := toyArch()
	in := []nn.ParamSet{arch.New(1).SnapshotParams(), arch.New(2).SnapshotParams()}
	out, err := Identity{}.Apply(in, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range in {
		if !out[i].ApproxEqual(in[i], 0) {
			t.Fatalf("update %d altered by identity transform", i)
		}
	}
}

func TestClientLocalTrainMovesParams(t *testing.T) {
	cfg := toyConfig()
	arch := toyArch()
	p := toyPopulation(1, 32, 5)[0]
	c := NewClient(p, arch, cfg)
	global := arch.New(100).SnapshotParams()
	update, err := c.LocalTrain(global)
	if err != nil {
		t.Fatal(err)
	}
	if update.ApproxEqual(global, 1e-12) {
		t.Fatal("local training returned the global model unchanged")
	}
	if !update.Compatible(global) {
		t.Fatal("update structure differs from global model")
	}
}

func TestClientLocalTrainRejectsWrongShape(t *testing.T) {
	cfg := toyConfig()
	c := NewClient(toyPopulation(1, 16, 6)[0], toyArch(), cfg)
	bad := nn.NewMLP("bad", 7, []int{3}, 2).New(1).SnapshotParams()
	if _, err := c.LocalTrain(bad); err == nil {
		t.Fatal("LocalTrain accepted incompatible global model")
	}
}

func TestSimulationDeterministicWithSeed(t *testing.T) {
	run := func() []RoundMetrics {
		sim := buildSim(t, 3, Identity{})
		sim.Parallel = 1
		m, err := sim.Run(2)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	a, b := run(), run()
	for i := range a {
		if a[i].MeanAccuracy != b[i].MeanAccuracy {
			t.Fatalf("round %d: %g vs %g (not deterministic)", i, a[i].MeanAccuracy, b[i].MeanAccuracy)
		}
	}
}
