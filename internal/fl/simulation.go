package fl

import (
	"fmt"
	"math/rand"
	"sync"

	"mixnn/internal/nn"
)

// RoundRecord is what an adversarial aggregation server observes in one
// round: the model it disseminated and the per-slot updates it received.
// With classic FL, slot i genuinely is participant i's update; after MixNN,
// each slot is a per-layer mixture of many participants.
type RoundRecord struct {
	Round        int
	Disseminated nn.ParamSet
	Updates      []nn.ParamSet
	// ClientIDs[i] is the participant the server believes produced
	// Updates[i] (the sender of slot i). With client sampling only the
	// selected participants appear; after MixNN the per-layer content of
	// a slot does not actually belong to its nominal sender.
	ClientIDs []int
}

// Observer receives each round's server-side view. ∇Sim implements this.
type Observer interface {
	ObserveRound(rec RoundRecord)
}

// Disseminator lets a malicious server replace the honest global model
// before dissemination (the active form of ∇Sim). The honest behaviour is
// the identity.
type Disseminator func(round int, global nn.ParamSet) nn.ParamSet

// RoundMetrics aggregates the evaluation of one round.
type RoundMetrics struct {
	Round        int
	MeanAccuracy float64   // mean per-participant test accuracy of the new global model
	PerClient    []float64 // per-participant accuracies (Figure 6's CDF input)
}

// Simulation wires clients, an update pipeline and the server into the
// paper's iterative operating flow (Figure 2, plus the MixNN proxy of
// Figure 3 when Transform is a mixer).
type Simulation struct {
	Server    *Server
	Clients   []*Client
	Transform UpdateTransform
	// Observer, if set, sees every round from the server's perspective.
	Observer Observer
	// Disseminate, if set, replaces the model sent to participants
	// (active attack). Defaults to honest dissemination.
	Disseminate Disseminator
	// Rng drives transform randomness (mixing permutations, noise) and
	// per-round client sampling.
	Rng *rand.Rand
	// Parallel caps concurrent local trainings; 0 = GOMAXPROCS.
	Parallel int
	// ClientsPerRound samples this many clients per round (0 or >= len
	// means all participate), mirroring fl.Config.ClientsPerRound.
	ClientsPerRound int
}

// NewSimulation builds a simulation with honest dissemination.
func NewSimulation(server *Server, clients []*Client, tr UpdateTransform, seed int64) *Simulation {
	return &Simulation{
		Server:    server,
		Clients:   clients,
		Transform: tr,
		Rng:       rand.New(rand.NewSource(seed)),
	}
}

// RunRound executes one federated round and returns its metrics.
func (s *Simulation) RunRound(round int) (RoundMetrics, error) {
	global := s.Server.Global()
	toSend := global
	if s.Disseminate != nil {
		toSend = s.Disseminate(round, global)
	}

	selected := s.sampleClients()
	updates, err := s.trainAll(toSend, selected)
	if err != nil {
		return RoundMetrics{}, err
	}

	transformed, err := s.Transform.Apply(updates, s.Rng)
	if err != nil {
		return RoundMetrics{}, fmt.Errorf("fl: transform %q: %w", s.Transform.Name(), err)
	}
	if len(transformed) != len(updates) {
		return RoundMetrics{}, fmt.Errorf("fl: transform %q returned %d updates for %d clients",
			s.Transform.Name(), len(transformed), len(updates))
	}

	if s.Observer != nil {
		ids := make([]int, len(selected))
		for i, ci := range selected {
			ids[i] = s.Clients[ci].ID
		}
		s.Observer.ObserveRound(RoundRecord{Round: round, Disseminated: toSend, Updates: transformed, ClientIDs: ids})
	}

	if err := s.Server.Aggregate(transformed); err != nil {
		return RoundMetrics{}, err
	}

	return s.evaluate(round)
}

// sampleClients returns the client indices participating this round.
func (s *Simulation) sampleClients() []int {
	n := len(s.Clients)
	k := s.ClientsPerRound
	if k <= 0 || k >= n {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	return s.Rng.Perm(n)[:k]
}

// Run executes the configured number of rounds and returns per-round
// metrics.
func (s *Simulation) Run(rounds int) ([]RoundMetrics, error) {
	if rounds <= 0 {
		return nil, fmt.Errorf("fl: non-positive round count %d", rounds)
	}
	out := make([]RoundMetrics, 0, rounds)
	for r := 0; r < rounds; r++ {
		m, err := s.RunRound(r)
		if err != nil {
			return out, fmt.Errorf("fl: round %d: %w", r, err)
		}
		out = append(out, m)
	}
	return out, nil
}

// trainAll runs the selected clients' local training concurrently and
// returns the updates in selection order.
func (s *Simulation) trainAll(global nn.ParamSet, selected []int) ([]nn.ParamSet, error) {
	par := s.Parallel
	if par <= 0 {
		par = parallelism()
	}
	updates := make([]nn.ParamSet, len(selected))
	errs := make([]error, len(selected))
	sem := make(chan struct{}, par)
	var wg sync.WaitGroup
	for i, ci := range selected {
		wg.Add(1)
		go func(i int, c *Client) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			updates[i], errs[i] = c.LocalTrain(global)
		}(i, s.Clients[ci])
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return updates, nil
}

// evaluate computes the new global model's per-participant test accuracy.
func (s *Simulation) evaluate(round int) (RoundMetrics, error) {
	global := s.Server.Global()
	per := make([]float64, len(s.Clients))
	sum := 0.0
	for i, c := range s.Clients {
		acc, err := c.TestAccuracy(global)
		if err != nil {
			return RoundMetrics{}, err
		}
		per[i] = acc
		sum += acc
	}
	return RoundMetrics{
		Round:        round,
		MeanAccuracy: sum / float64(len(s.Clients)),
		PerClient:    per,
	}, nil
}
