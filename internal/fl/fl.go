// Package fl implements the federated-learning scheme of the paper's §2.2:
// an aggregation server disseminates a global model, participants refine it
// locally with SGD/Adam over their private data, and the server averages
// the returned parameter updates (FedAvg-style, McMahan et al.).
//
// The pipeline between participants and server is pluggable via
// UpdateTransform, which is where the three evaluation arms differ:
// identity (classic FL), noisy gradients (the local-DP baseline), and the
// MixNN layer mixer.
package fl

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"mixnn/internal/data"
	"mixnn/internal/nn"
)

// Config holds the hyper-parameters of one federated run (§6.1.4 of the
// paper gives the per-dataset values).
type Config struct {
	Rounds       int     // learning rounds
	LocalEpochs  int     // local epochs per round
	BatchSize    int     // local mini-batch size
	LearningRate float64 // optimizer learning rate
	Optimizer    string  // "adam" (paper default) or "sgd"
	Seed         int64   // base seed for client-side randomness
	// ClientsPerRound samples this many participants uniformly without
	// replacement each round (the paper aggregates 16 of CIFAR10's 20
	// participants per round). Zero or >= population means everyone
	// participates.
	ClientsPerRound int
}

// Validate fills defaults and rejects nonsensical settings.
func (c *Config) Validate() error {
	if c.Rounds <= 0 {
		return fmt.Errorf("fl: Rounds must be positive, got %d", c.Rounds)
	}
	if c.LocalEpochs <= 0 {
		c.LocalEpochs = 1
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 32
	}
	if c.LearningRate == 0 {
		c.LearningRate = 0.001
	}
	if c.Optimizer == "" {
		c.Optimizer = "adam"
	}
	if _, err := nn.NewOptimizer(c.Optimizer, c.LearningRate); err != nil {
		return err
	}
	return nil
}

// Client is one federated participant: a private dataset and a local model
// instance rebuilt from the disseminated global parameters each round.
type Client struct {
	ID        int
	Attribute int // sensitive-attribute class (ground truth for evaluation)

	net   *nn.Network
	train data.Dataset
	test  data.Dataset
	cfg   Config
	rng   *rand.Rand
}

// NewClient builds a participant from its partition of the dataset.
func NewClient(p data.Participant, arch nn.Arch, cfg Config) *Client {
	return &Client{
		ID:        p.ID,
		Attribute: p.Attribute,
		net:       arch.New(cfg.Seed + int64(p.ID)),
		train:     p.Train,
		test:      p.Test,
		cfg:       cfg,
		rng:       rand.New(rand.NewSource(cfg.Seed*31 + int64(p.ID))),
	}
}

// LocalTrain loads the disseminated global parameters, runs LocalEpochs of
// mini-batch training on the client's private data and returns the updated
// parameters — the paper's "parameter update" sent upstream. A fresh
// optimizer is used each round, matching the per-round local training of
// the reference implementation.
func (c *Client) LocalTrain(global nn.ParamSet) (nn.ParamSet, error) {
	if err := c.net.SetParams(global); err != nil {
		return nn.ParamSet{}, fmt.Errorf("fl: client %d: %w", c.ID, err)
	}
	opt, err := nn.NewOptimizer(c.cfg.Optimizer, c.cfg.LearningRate)
	if err != nil {
		return nn.ParamSet{}, fmt.Errorf("fl: client %d: %w", c.ID, err)
	}
	for e := 0; e < c.cfg.LocalEpochs; e++ {
		for _, idx := range c.train.Batches(c.cfg.BatchSize, c.rng) {
			x, y := c.train.Batch(idx)
			c.net.TrainBatch(x, y, opt)
		}
	}
	return c.net.SnapshotParams(), nil
}

// TestAccuracy evaluates the given parameters on the client's local test
// data (the per-participant accuracy of Figure 6).
func (c *Client) TestAccuracy(params nn.ParamSet) (float64, error) {
	if err := c.net.SetParams(params); err != nil {
		return 0, fmt.Errorf("fl: client %d: %w", c.ID, err)
	}
	x, y := c.test.Batch(seq(c.test.Len()))
	return c.net.Evaluate(x, y), nil
}

// TrainSize returns the number of local training examples.
func (c *Client) TrainSize() int { return c.train.Len() }

// Server is the aggregation server: it owns the global model and averages
// incoming parameter updates.
type Server struct {
	mu     sync.Mutex
	global nn.ParamSet
}

// NewServer initialises the server with the given global parameters
// (typically a fresh arch.New(seed).SnapshotParams()).
func NewServer(initial nn.ParamSet) *Server {
	return &Server{global: initial.Clone()}
}

// Global returns a deep copy of the current global parameters.
func (s *Server) Global() nn.ParamSet {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.global.Clone()
}

// Aggregate replaces the global model with the mean of the updates
// (the paper's Agr: column-wise mean, §4.2).
func (s *Server) Aggregate(updates []nn.ParamSet) error {
	avg, err := nn.Average(updates)
	if err != nil {
		return fmt.Errorf("fl: aggregate: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.global.Compatible(avg) {
		return fmt.Errorf("fl: aggregate: updates incompatible with global model")
	}
	s.global = avg
	return nil
}

// UpdateTransform processes the batch of client updates on their way to the
// aggregation server. Slot i of the output is what the server attributes to
// participant i — MixNN's protection is precisely that after mixing this
// attribution is wrong for every layer.
type UpdateTransform interface {
	// Name identifies the arm in experiment output.
	Name() string
	// Apply returns the updates as the server will see them. It must
	// return the same number of updates it was given and must not mutate
	// the inputs.
	Apply(updates []nn.ParamSet, rng *rand.Rand) ([]nn.ParamSet, error)
}

// Identity is the classic-FL arm: updates pass through untouched.
type Identity struct{}

// Name implements UpdateTransform.
func (Identity) Name() string { return "fl" }

// Apply implements UpdateTransform.
func (Identity) Apply(updates []nn.ParamSet, _ *rand.Rand) ([]nn.ParamSet, error) {
	out := make([]nn.ParamSet, len(updates))
	copy(out, updates)
	return out, nil
}

func seq(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// parallelism caps concurrent client training.
func parallelism() int {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		return 1
	}
	return n
}
