package fl

import (
	"testing"
)

func TestClientSamplingSelectsSubset(t *testing.T) {
	sim := buildSim(t, 6, Identity{})
	sim.ClientsPerRound = 3
	obs := &recordingObserver{}
	sim.Observer = obs
	if _, err := sim.Run(4); err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]bool)
	for _, rec := range obs.recs {
		if len(rec.Updates) != 3 {
			t.Fatalf("round %d: %d updates, want 3", rec.Round, len(rec.Updates))
		}
		if len(rec.ClientIDs) != 3 {
			t.Fatalf("round %d: %d client IDs, want 3", rec.Round, len(rec.ClientIDs))
		}
		dup := make(map[int]bool)
		for _, id := range rec.ClientIDs {
			if dup[id] {
				t.Fatalf("round %d: client %d sampled twice", rec.Round, id)
			}
			dup[id] = true
			seen[id] = true
		}
	}
	// Over 4 rounds of 3-of-6 sampling, more than 3 distinct clients
	// should have participated (overwhelmingly likely).
	if len(seen) <= 3 {
		t.Fatalf("only %d distinct clients sampled over 4 rounds", len(seen))
	}
}

func TestClientSamplingZeroMeansAll(t *testing.T) {
	sim := buildSim(t, 4, Identity{})
	sim.ClientsPerRound = 0
	obs := &recordingObserver{}
	sim.Observer = obs
	if _, err := sim.Run(1); err != nil {
		t.Fatal(err)
	}
	if len(obs.recs[0].Updates) != 4 {
		t.Fatalf("updates = %d, want all 4", len(obs.recs[0].Updates))
	}
}

func TestClientSamplingOversizedMeansAll(t *testing.T) {
	sim := buildSim(t, 4, Identity{})
	sim.ClientsPerRound = 99
	obs := &recordingObserver{}
	sim.Observer = obs
	if _, err := sim.Run(1); err != nil {
		t.Fatal(err)
	}
	if len(obs.recs[0].Updates) != 4 {
		t.Fatalf("updates = %d, want all 4", len(obs.recs[0].Updates))
	}
}
