package experiment

import (
	"fmt"

	"mixnn/internal/fl"
)

// UtilityResult is the outcome of a Figure 5/6 run: model accuracy per
// round for one dataset and arm, plus the per-participant accuracies
// needed for the Figure 6 CDF.
type UtilityResult struct {
	Dataset string
	Arm     string
	// Accuracy[r] is the mean per-participant test accuracy after round r.
	Accuracy []float64
	// PerClient[r] are the per-participant accuracies after round r.
	PerClient [][]float64
}

// FinalAccuracy returns the last round's mean accuracy.
func (r UtilityResult) FinalAccuracy() float64 {
	if len(r.Accuracy) == 0 {
		return 0
	}
	return r.Accuracy[len(r.Accuracy)-1]
}

// PerClientAt returns the per-participant accuracies after the given round
// (clamped to the last completed round), which is what Figure 6 plots at
// round 6.
func (r UtilityResult) PerClientAt(round int) []float64 {
	if len(r.PerClient) == 0 {
		return nil
	}
	if round >= len(r.PerClient) {
		round = len(r.PerClient) - 1
	}
	if round < 0 {
		round = 0
	}
	return append([]float64(nil), r.PerClient[round]...)
}

// BuildFederation assembles clients, server and pipeline for a spec/arm,
// returning the simulation and the participants' true sensitive
// attributes (ground truth for inference evaluation).
func BuildFederation(spec DatasetSpec, arm Arm, seed int64) (*fl.Simulation, []int, error) {
	cfg := spec.FL
	cfg.Seed = seed
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	parts := spec.Source.Participants(seed)
	if len(parts) == 0 {
		return nil, nil, fmt.Errorf("experiment: dataset %q has no participants", spec.Key)
	}
	clients := make([]*fl.Client, len(parts))
	attrs := make([]int, len(parts))
	for i, p := range parts {
		clients[i] = fl.NewClient(p, spec.Arch, cfg)
		attrs[i] = p.Attribute
	}
	server := fl.NewServer(spec.Arch.New(seed ^ 0x6d78).SnapshotParams())
	sim := fl.NewSimulation(server, clients, arm.Transform, seed*2+1)
	sim.ClientsPerRound = cfg.ClientsPerRound
	return sim, attrs, nil
}

// RunUtility executes the Figure 5/6 experiment for one dataset and arm:
// train for the spec's number of rounds and record utility per round.
func RunUtility(spec DatasetSpec, arm Arm, seed int64) (UtilityResult, error) {
	sim, _, err := BuildFederation(spec, arm, seed)
	if err != nil {
		return UtilityResult{}, err
	}
	metrics, err := sim.Run(spec.FL.Rounds)
	if err != nil {
		return UtilityResult{}, fmt.Errorf("experiment: utility %s/%s: %w", spec.Key, arm.Key, err)
	}
	res := UtilityResult{Dataset: spec.Key, Arm: arm.Key}
	for _, m := range metrics {
		res.Accuracy = append(res.Accuracy, m.MeanAccuracy)
		res.PerClient = append(res.PerClient, m.PerClient)
	}
	return res, nil
}
