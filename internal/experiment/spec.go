// Package experiment contains one runner per table/figure of the paper's
// evaluation (§6), wired from the substrate packages. DESIGN.md §4 maps
// each experiment to its runner; EXPERIMENTS.md records paper-vs-measured.
package experiment

import (
	"fmt"
	"strconv"
	"strings"

	"mixnn/internal/core"
	"mixnn/internal/data"
	"mixnn/internal/fl"
	"mixnn/internal/nn"
	"mixnn/internal/privacy"
)

// Scale selects experiment sizing. Quick shrinks populations, input dims
// and rounds so the whole suite runs in seconds (CI, unit tests); Full uses
// the paper's populations and schedules (§6.1.4).
type Scale int

const (
	// ScaleQuick is the CI-sized configuration.
	ScaleQuick Scale = iota + 1
	// ScaleFull is the paper-sized configuration.
	ScaleFull
)

// String implements fmt.Stringer.
func (s Scale) String() string {
	if s == ScaleFull {
		return "full"
	}
	return "quick"
}

// DatasetSpec bundles everything one benchmark dataset needs: the data
// source, the model architecture, and the paper's federated schedule.
type DatasetSpec struct {
	Key    string
	Source data.Source
	Arch   nn.Arch
	FL     fl.Config
	// AttackEpochs is the reference-model training budget of ∇Sim
	// ("attack models are trained for 5 learning rounds", §6.1.4).
	AttackEpochs int
	// AuxPerClass is the adversary's background-knowledge pool per class.
	AuxPerClass int
}

// Datasets returns the four benchmark specs of §6.1.1 at the given scale.
// Seed controls data generation; the federated schedule follows §6.1.4
// (local epochs, batch sizes, rounds, population sizes).
func Datasets(scale Scale, seed int64) []DatasetSpec {
	if scale == ScaleFull {
		return fullDatasets(seed)
	}
	return quickDatasets(seed)
}

// DatasetByKey returns the named spec at the given scale.
func DatasetByKey(key string, scale Scale, seed int64) (DatasetSpec, error) {
	for _, spec := range Datasets(scale, seed) {
		if spec.Key == key {
			return spec, nil
		}
	}
	return DatasetSpec{}, fmt.Errorf("experiment: unknown dataset %q", key)
}

func fullDatasets(seed int64) []DatasetSpec {
	cifarSrc := data.NewCIFAR(data.CIFARConfig{Seed: seed})
	motionSrc := data.NewMotion(withSeed(data.MotionSenseConfig(), seed))
	mobiSrc := data.NewMotion(withSeed(data.MobiActConfig(), seed))
	facesSrc := data.NewFaces(data.FacesConfig{Seed: seed})

	return []DatasetSpec{
		{
			Key:    "cifar10",
			Source: cifarSrc,
			Arch:   convNetFor(cifarSrc, 8, 16, 64, 32),
			// §6.1.4: 3 local epochs, batch 32, 10 rounds, 16 of the 20
			// participants aggregated per round.
			FL:           fl.Config{Rounds: 10, LocalEpochs: 3, BatchSize: 32, LearningRate: 0.001, Optimizer: "adam", Seed: seed, ClientsPerRound: 16},
			AttackEpochs: 5,
			AuxPerClass:  400,
		},
		{
			Key:    "motionsense",
			Source: motionSrc,
			Arch:   convNetFor(motionSrc, 8, 16, 64, 32),
			// §6.1.4: 2 local epochs, batch 256, 20 rounds, 20 users
			// aggregated per round.
			FL:           fl.Config{Rounds: 20, LocalEpochs: 2, BatchSize: 256, LearningRate: 0.001, Optimizer: "adam", Seed: seed, ClientsPerRound: 20},
			AttackEpochs: 5,
			AuxPerClass:  400,
		},
		{
			Key:    "mobiact",
			Source: mobiSrc,
			Arch:   convNetFor(mobiSrc, 8, 16, 64, 32),
			// §6.1.4: 3 local epochs, batch 64, 20 rounds, 40 of the 58
			// subjects aggregated per round.
			FL:           fl.Config{Rounds: 20, LocalEpochs: 3, BatchSize: 64, LearningRate: 0.001, Optimizer: "adam", Seed: seed, ClientsPerRound: 40},
			AttackEpochs: 5,
			AuxPerClass:  400,
		},
		{
			Key:    "lfw",
			Source: facesSrc,
			Arch:   deepFaceFor(facesSrc, 8, 16, 8, 64),
			// §6.1.4: 2 local epochs, batch 16, 30 rounds.
			FL:           fl.Config{Rounds: 30, LocalEpochs: 2, BatchSize: 16, LearningRate: 0.001, Optimizer: "adam", Seed: seed},
			AttackEpochs: 5,
			AuxPerClass:  320,
		},
	}
}

func quickDatasets(seed int64) []DatasetSpec {
	cifarSrc := data.NewCIFAR(data.CIFARConfig{
		H: 16, W: 16,
		GroupSizes: []int{3, 3, 4},
		TrainPer:   48, TestPer: 16,
		Seed: seed,
	})
	msCfg := data.MotionSenseConfig()
	// At 50 Hz a window must span at least one gait cycle for the gender
	// frequency shift to be visible; T=48 keeps ~1 s of signal.
	msCfg.T = 48
	msCfg.Participants = 8
	msCfg.TrainPer, msCfg.TestPer = 48, 16
	msCfg.Seed = seed
	motionSrc := data.NewMotion(msCfg)

	maCfg := data.MobiActConfig()
	maCfg.T = 32
	maCfg.Participants = 10
	maCfg.TrainPer, maCfg.TestPer = 48, 16
	maCfg.Seed = seed
	mobiSrc := data.NewMotion(maCfg)

	facesSrc := data.NewFaces(data.FacesConfig{
		H: 16, W: 16,
		Participants: 8,
		TrainPer:     48, TestPer: 16,
		Seed: seed,
	})

	quickFL := func(epochs, batch int) fl.Config {
		return fl.Config{Rounds: 5, LocalEpochs: epochs, BatchSize: batch, LearningRate: 0.002, Optimizer: "adam", Seed: seed}
	}
	return []DatasetSpec{
		{Key: "cifar10", Source: cifarSrc, Arch: convNetFor(cifarSrc, 4, 8, 32, 16),
			FL: quickFL(2, 16), AttackEpochs: 3, AuxPerClass: 96},
		{Key: "motionsense", Source: motionSrc, Arch: convNetFor(motionSrc, 4, 8, 32, 16),
			FL: quickFL(2, 16), AttackEpochs: 3, AuxPerClass: 96},
		{Key: "mobiact", Source: mobiSrc, Arch: convNetFor(mobiSrc, 4, 8, 32, 16),
			FL: quickFL(2, 16), AttackEpochs: 3, AuxPerClass: 96},
		{Key: "lfw", Source: facesSrc, Arch: deepFaceFor(facesSrc, 4, 8, 4, 32),
			FL: quickFL(2, 16), AttackEpochs: 3, AuxPerClass: 96},
	}
}

func withSeed(cfg data.MotionConfig, seed int64) data.MotionConfig {
	cfg.Seed = seed
	return cfg
}

// convNetFor builds the paper's 2-conv+3-FC architecture for a source,
// pooling spatially where the input allows it (images pool 2×2 twice;
// motion windows pool along time only).
func convNetFor(src data.Source, f1, f2, h1, h2 int) nn.Arch {
	c, h, w := src.Input()
	cfg := nn.ConvNetConfig{
		InC: c, InH: h, InW: w,
		Classes:  src.Classes(),
		Filters1: f1, Filters2: f2, Hidden1: h1, Hidden2: h2,
	}
	if h%4 == 0 {
		cfg.PoolH1, cfg.PoolH2 = 2, 2
	}
	if w%4 == 0 {
		cfg.PoolW1, cfg.PoolW2 = 2, 2
	}
	return nn.NewConvNet(src.Name()+"-cnn", cfg)
}

// deepFaceFor builds the DeepFace-style architecture for the face source.
func deepFaceFor(src data.Source, f1, f2, l3, hidden int) nn.Arch {
	c, h, w := src.Input()
	return nn.NewDeepFace(src.Name()+"-deepface", nn.DeepFaceConfig{
		InC: c, InH: h, InW: w,
		Classes:  src.Classes(),
		Filters1: f1, Filters2: f2, Local3: l3, Hidden: hidden,
	})
}

// Arm is one comparison arm of the evaluation: classic FL, MixNN, or the
// noisy-gradient baseline.
type Arm struct {
	Key       string
	Transform fl.UpdateTransform
}

// Arms returns the paper's three arms. The MixNN arm uses the batch mixer
// (L = C); use StreamArm for the k-buffer variant.
func Arms() []Arm {
	return []Arm{
		{Key: "fl", Transform: fl.Identity{}},
		{Key: "mixnn", Transform: core.Transform{}},
		{Key: "noisy", Transform: privacy.NoisyTransform{Sigma: privacy.DefaultSigma}},
	}
}

// ArmByKey returns the named arm.
func ArmByKey(key string) (Arm, error) {
	for _, a := range Arms() {
		if a.Key == key {
			return a, nil
		}
	}
	switch key {
	case "mixnn-stream":
		return StreamArm(0), nil
	case "mixnn-sharded":
		return ShardedStreamArm(0, 2), nil
	}
	// Round-trip the sharded arm's own key ("mixnn-sharded-p<P>") so a
	// reported arm label resolves back to the arm that produced it.
	if p, ok := strings.CutPrefix(key, "mixnn-sharded-p"); ok {
		if shards, err := strconv.Atoi(p); err == nil && shards > 0 {
			return ShardedStreamArm(0, shards), nil
		}
	}
	return Arm{}, fmt.Errorf("experiment: unknown arm %q", key)
}

// StreamArm returns the streaming-mixer arm with buffer size k
// (k <= 0 lets the transform clamp to the population size).
func StreamArm(k int) Arm {
	return Arm{Key: "mixnn-stream", Transform: core.StreamTransform{K: k}}
}

// ShardedStreamArm returns the sharded mixing-tier arm: P independent
// k-buffer stream mixers over a round-robin partition of each round. It
// evaluates how much protection the scalable multi-proxy deployment
// retains when mixing breadth shrinks from C to C/P per shard.
func ShardedStreamArm(k, shards int) Arm {
	return Arm{
		Key:       fmt.Sprintf("mixnn-sharded-p%d", shards),
		Transform: core.ShardedStreamTransform{K: k, Shards: shards},
	}
}
