package experiment

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// CSV writers so experiment output can be re-plotted outside Go. One file
// per figure, long format (one row per observation).

// WriteUtilityCSV emits dataset,arm,round,accuracy rows (Figure 5) plus
// dataset,arm,round,participant,accuracy rows when per-client data exists
// (Figure 6).
func WriteUtilityCSV(w io.Writer, results []UtilityResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"dataset", "arm", "round", "participant", "accuracy"}); err != nil {
		return fmt.Errorf("experiment: write csv header: %w", err)
	}
	for _, r := range results {
		for round, acc := range r.Accuracy {
			row := []string{r.Dataset, r.Arm, strconv.Itoa(round + 1), "mean", formatFloat(acc)}
			if err := cw.Write(row); err != nil {
				return fmt.Errorf("experiment: write csv row: %w", err)
			}
			if round < len(r.PerClient) {
				for pi, pacc := range r.PerClient[round] {
					row := []string{r.Dataset, r.Arm, strconv.Itoa(round + 1), strconv.Itoa(pi), formatFloat(pacc)}
					if err := cw.Write(row); err != nil {
						return fmt.Errorf("experiment: write csv row: %w", err)
					}
				}
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteInferenceCSV emits dataset,arm,mode,ratio,round,inference_accuracy
// rows (Figures 7 and 8).
func WriteInferenceCSV(w io.Writer, results []InferenceResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"dataset", "arm", "mode", "ratio", "round", "inference_accuracy", "chance"}); err != nil {
		return fmt.Errorf("experiment: write csv header: %w", err)
	}
	for _, r := range results {
		mode := "passive"
		if r.Active {
			mode = "active"
		}
		for round, acc := range r.InferenceAccuracy {
			row := []string{
				r.Dataset, r.Arm, mode,
				formatFloat(r.Ratio), strconv.Itoa(round + 1),
				formatFloat(acc), formatFloat(r.Chance),
			}
			if err := cw.Write(row); err != nil {
				return fmt.Errorf("experiment: write csv row: %w", err)
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteNeighboursCSV emits dataset,participant,neighbours rows (Figure 9).
func WriteNeighboursCSV(w io.Writer, results []NeighbourResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"dataset", "radius", "participant", "neighbours"}); err != nil {
		return fmt.Errorf("experiment: write csv header: %w", err)
	}
	for _, r := range results {
		for pi, n := range r.Neighbours {
			row := []string{r.Dataset, formatFloat(r.Radius), strconv.Itoa(pi), strconv.Itoa(n)}
			if err := cw.Write(row); err != nil {
				return fmt.Errorf("experiment: write csv row: %w", err)
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WritePerfCSV emits the §6.5 table rows.
func WritePerfCSV(w io.Writer, results []PerfResult) error {
	cw := csv.NewWriter(w)
	header := []string{"model", "participants", "k", "update_bytes",
		"decrypt_ms", "store_ms", "mix_ms", "process_ms", "e2e_ms", "enclave_peak_bytes", "page_events"}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("experiment: write csv header: %w", err)
	}
	for _, r := range results {
		row := []string{
			r.Model, strconv.Itoa(r.Participants), strconv.Itoa(r.K), strconv.Itoa(r.UpdateBytes),
			formatFloat(r.DecryptMillis), formatFloat(r.StoreMillis), formatFloat(r.MixMillis),
			formatFloat(r.ProcessMillis), formatFloat(r.EndToEndMillis),
			strconv.Itoa(r.EnclavePeakBytes), strconv.Itoa(r.PageEvents),
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("experiment: write csv row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteShardedPerfCSV emits one row per sharded-tier throughput run.
func WriteShardedPerfCSV(w io.Writer, results []ShardedPerfResult) error {
	cw := csv.NewWriter(w)
	header := []string{"model", "participants", "shards", "k", "cascade", "rounds", "topology", "transport",
		"update_bytes", "round_ms", "updates_per_sec", "process_ms", "batches_sent"}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("experiment: write csv header: %w", err)
	}
	for _, r := range results {
		row := []string{
			r.Model, strconv.Itoa(r.Participants), strconv.Itoa(r.Shards), strconv.Itoa(r.K),
			strconv.FormatBool(r.Cascade), strconv.Itoa(r.Rounds), r.Topology, r.Transport, strconv.Itoa(r.UpdateBytes),
			formatFloat(r.RoundMillis), formatFloat(r.UpdatesPerSec), formatFloat(r.ProcessMillis),
			strconv.Itoa(r.BatchesSent),
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("experiment: write csv row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }
