package experiment

import (
	"context"
	"fmt"
	"time"

	"mixnn/internal/client"
	"mixnn/internal/enclave"
	"mixnn/internal/nn"
	"mixnn/internal/proxy"
	"mixnn/internal/route"
	"mixnn/internal/transport"
	"mixnn/internal/wire"
)

// LanePerfResult reports one dead-peer lane-isolation experiment: a
// three-destination front tier (aggregation server, one healthy remote
// peer, one unreachable peer) ingests `rounds` of participants while
// the dead peer stays down, and the measured window runs until every
// HEALTHY lane has drained. Before the per-destination lane split this
// scenario wedged the whole pipeline — the single ordered queue parked
// behind the dead peer's first entry — so the healthy drain time is the
// headline regression number for head-of-line blocking.
type LanePerfResult struct {
	Model        string
	Participants int
	// Shards is the destination count of the front tier (local shard +
	// healthy peer + dead peer).
	Shards int
	Rounds int
	// HealthyUpdates is how many updates reached a live destination
	// during the outage (everything except the dead peer's quota).
	HealthyUpdates int
	// DrainMillis is the wall-clock time from the first send until all
	// healthy lanes had delivered every round, with the dead peer down
	// throughout.
	DrainMillis float64
	// UpdatesPerSec is HealthyUpdates divided by the drain duration —
	// the tier's delivery throughput under one dead peer.
	UpdatesPerSec float64
	// DeadLaneDepth is the dead peer's outbox backlog at the end of the
	// window (one sealed entry per round: parked, not lost).
	DeadLaneDepth int
	// DeadLaneFailures counts the dead lane's recorded delivery
	// attempts — evidence the lane was retrying in the background, not
	// starved, while the healthy lanes drained.
	DeadLaneFailures uint64
}

func laneByDest(st wire.ShardedProxyStatus, dest string) wire.OutboxLaneStatus {
	for _, ls := range st.OutboxLanes {
		if ls.Dest == dest {
			return ls
		}
	}
	return wire.OutboxLaneStatus{}
}

// RunLanePerf stands up the dead-peer topology over the in-process
// Loopback transport: a front proxy routing by hash-quota across its
// local shard, a healthy remote peer, and a peer whose endpoint is
// never registered — every send to it fails as unreachable, the same
// transient error a downed HTTP listener produces. It drives `rounds`
// of concurrent participants and times how long the healthy lanes take
// to drain while the dead lane accumulates and retries its backlog.
func RunLanePerf(modelName string, arch nn.Arch, participants, k, rounds int, seed int64) (LanePerfResult, error) {
	if participants < 3 || participants%3 != 0 {
		return LanePerfResult{}, fmt.Errorf("experiment: lane perf wants participants divisible by 3 (one quota per destination), got %d", participants)
	}
	if rounds <= 0 {
		rounds = 1
	}
	quota := participants / 3
	lb := transport.NewLoopback()
	platform, err := enclave.NewPlatform()
	if err != nil {
		return LanePerfResult{}, err
	}

	agg, err := proxy.NewAggServer(arch.New(seed).SnapshotParams(), participants)
	if err != nil {
		return LanePerfResult{}, err
	}
	lb.Register("loop://agg", agg)

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// The healthy peer is a real relay shard proxy with its own enclave.
	healthyEncl, err := enclave.New(enclave.Config{CodeIdentity: "mixnn-proxy-lane-healthy"}, platform)
	if err != nil {
		return LanePerfResult{}, err
	}
	healthy, err := proxy.NewSharded(proxy.ShardedConfig{
		Upstream: "loop://agg", K: k, RoundSize: quota, Shards: 1,
		Seed: seed + 1, Transport: lb,
	}, healthyEncl, platform)
	if err != nil {
		return LanePerfResult{}, err
	}
	defer healthy.Close()
	lb.Register("loop://peer-healthy", healthy)
	healthyKey, err := proxy.AttestHopOver(ctx, lb, "loop://peer-healthy", platform.AttestationPublicKey(), healthyEncl.Measurement())
	if err != nil {
		return LanePerfResult{}, err
	}

	// The dead peer exists only as key material: its endpoint is never
	// registered with the Loopback, so the front tier can seal and
	// address entries for it but every delivery attempt fails.
	deadEncl, err := enclave.New(enclave.Config{CodeIdentity: "mixnn-proxy-lane-dead"}, platform)
	if err != nil {
		return LanePerfResult{}, err
	}
	deadKey := enclave.PinnedHop(deadEncl.PublicKey(), deadEncl.Measurement())
	const deadEP = "loop://peer-dead"

	frontEncl, err := enclave.New(enclave.Config{CodeIdentity: "mixnn-proxy-lane-front"}, platform)
	if err != nil {
		return LanePerfResult{}, err
	}
	front, err := proxy.NewSharded(proxy.ShardedConfig{
		Upstream: "loop://agg", K: k, RoundSize: participants,
		Routing:    route.ModeHashQuota,
		ShardSpecs: []route.ShardSpec{{}, {Addr: "loop://peer-healthy"}, {Addr: deadEP}},
		RemoteShards: map[string]proxy.RemoteShard{
			"loop://peer-healthy": {Key: healthyKey},
			deadEP:                {Key: deadKey},
		},
		Seed: seed, Transport: lb,
		RetryBase: 2 * time.Millisecond, RetryMax: 20 * time.Millisecond,
		DeliveryWorkers: 3,
	}, frontEncl, platform)
	if err != nil {
		return LanePerfResult{}, err
	}
	defer front.Close()
	lb.Register("loop://front", front)

	parts := make([]*client.Participant, participants)
	updates := make([][]nn.ParamSet, rounds)
	for i := range parts {
		if parts[i], err = client.New(client.Config{
			Proxies: []string{"loop://front"}, Server: "loop://agg", Transport: lb,
		}); err != nil {
			return LanePerfResult{}, err
		}
		if err := parts[i].Attest(ctx, platform.AttestationPublicKey(), frontEncl.Measurement()); err != nil {
			return LanePerfResult{}, err
		}
	}
	for r := range updates {
		updates[r] = make([]nn.ParamSet, participants)
		for i := range updates[r] {
			updates[r][i] = arch.New(seed + int64(r*participants+i) + 1).SnapshotParams()
		}
	}

	start := time.Now()
	for r := 0; r < rounds; r++ {
		for i := 0; i < participants; i++ {
			if err := parts[i].SendUpdate(ctx, updates[r][i]); err != nil {
				return LanePerfResult{}, fmt.Errorf("experiment: lane perf round %d update %d: %w", r, i, err)
			}
		}
	}

	// The window closes when the healthy lanes have fully drained with
	// the dead peer STILL down: the agg and healthy-peer lanes empty
	// with one delivery per round each, and the healthy peer has both
	// ingested its quota and relayed it onward. The dead lane must be
	// parked with its whole backlog — if the old single-queue behaviour
	// regressed, this poll times out instead of completing.
	for {
		st := front.Status()
		aggLane := laneByDest(st, "")
		healthyLane := laneByDest(st, "loop://peer-healthy")
		if aggLane.Pending == 0 && aggLane.Delivered == uint64(rounds) &&
			healthyLane.Pending == 0 && healthyLane.Delivered == uint64(rounds) &&
			healthy.Status().HopReceived == quota*rounds {
			break
		}
		select {
		case <-ctx.Done():
			return LanePerfResult{}, fmt.Errorf("experiment: lane perf: healthy lanes did not drain during the outage (lanes %+v): %w", st.OutboxLanes, ctx.Err())
		case <-time.After(time.Millisecond):
		}
	}
	// Let the healthy peer finish relaying its own outbox so the drain
	// time covers the full healthy path, not just the front tier.
	if err := healthy.Flush(ctx); err != nil {
		return LanePerfResult{}, err
	}
	dur := time.Since(start)

	st := front.Status()
	deadLane := laneByDest(st, deadEP)
	if deadLane.Pending != rounds {
		return LanePerfResult{}, fmt.Errorf("experiment: lane perf: dead lane holds %d entries, want %d (one per round)", deadLane.Pending, rounds)
	}
	healthyUpdates := rounds * (participants - quota)
	return LanePerfResult{
		Model:            modelName,
		Participants:     participants,
		Shards:           3,
		Rounds:           rounds,
		HealthyUpdates:   healthyUpdates,
		DrainMillis:      dur.Seconds() * 1000,
		UpdatesPerSec:    float64(healthyUpdates) / dur.Seconds(),
		DeadLaneDepth:    deadLane.Pending,
		DeadLaneFailures: deadLane.Failures,
	}, nil
}
