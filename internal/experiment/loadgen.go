package experiment

import (
	"bytes"
	"context"
	"crypto/x509"
	"encoding/hex"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"mixnn/internal/client"
	"mixnn/internal/enclave"
	"mixnn/internal/fl"
	"mixnn/internal/health"
	"mixnn/internal/nn"
	"mixnn/internal/proxy"
	"mixnn/internal/route"
	"mixnn/internal/stats"
	"mixnn/internal/transport"
	"mixnn/internal/wire"
)

// LoadgenConfig sizes one whole-deployment load run: a two-front mixing
// tier (hash-quota across a local shard and two relay peers), a cascade
// hop, and an aggregation server, all hosted over one bounded-queue
// Loopback, driven by Participants concurrent SDK sessions through
// Waves rounds of sends with scripted churn.
type LoadgenConfig struct {
	// Participants is the concurrent SDK session count. Must be a
	// multiple of FrontRound (each wave is Participants sends and front
	// rounds must be able to close exactly).
	Participants int
	// FrontRound is the front tier's round size C; must be divisible by
	// 3 (local shard + two relay peers at weight 1 each). The relay and
	// cascade tiers run at quota = FrontRound/3.
	FrontRound int
	// K is the per-shard stream-mixer list capacity.
	K int
	// Waves is how many times every participant sends one update
	// (minimum 3: the run needs a calm phase, a churn phase and a
	// failover phase).
	Waves int
	// QueueDepth and Workers tune the Loopback's per-peer bounded
	// ingress queues (0 = transport defaults). At scale the queue is
	// deliberately smaller than the participant count, so senders feel
	// ErrBusy backpressure and retry.
	QueueDepth int
	Workers    int
	// StragglerFrac and DisconnectFrac pick, per churn wave, the
	// fraction of participants that delay their send and the fraction
	// whose session is torn down and replaced by a fresh one (new
	// client id, lazy re-attestation) before sending.
	StragglerFrac  float64
	DisconnectFrac float64
	// RSABits sizes the tier's enclave keys (0 = the production 2048;
	// CI smokes may drop to 1024 to cut handshake cost).
	RSABits int
	Seed    int64
	// Timeout bounds the whole run (0 = 10 minutes).
	Timeout time.Duration
	// MetricsOut, when set, writes the tier's Prometheus text exposition
	// (front-0's /v1/metrics registry plus the harness's loopback-queue
	// instruments) to this file after the run, self-validated with
	// health.ValidateExposition.
	MetricsOut string
}

// LoadgenResult is the measured outcome, serialised as
// BENCH_loadgen.json by cmd/loadgen.
type LoadgenResult struct {
	Bench        string `json:"bench"`
	Participants int    `json:"participants"`
	FrontRound   int    `json:"front_round"`
	Quota        int    `json:"quota"`
	Waves        int    `json:"waves"`
	QueueDepth   int    `json:"queue_depth"`
	Workers      int    `json:"workers"`
	// TotalUpdates counts every acked participant update, fillers
	// included; every one of them is accounted for at the aggregation
	// server (AggRounds * Quota slots observed).
	TotalUpdates int `json:"total_updates"`
	Fillers      int `json:"fillers"`
	AggRounds    int `json:"agg_rounds"`
	// Replaced counts sessions torn down and replaced mid-run;
	// Stragglers counts deliberately delayed sends.
	Replaced       int     `json:"replaced"`
	Stragglers     int     `json:"stragglers"`
	DurationMillis float64 `json:"duration_ms"`
	UpdatesPerSec  float64 `json:"updates_per_sec"`
	// SendMs* are client-observed SendUpdate latencies (first attempt to
	// ack, retries and failover included).
	SendMsP50 float64 `json:"send_ms_p50"`
	SendMsP95 float64 `json:"send_ms_p95"`
	SendMsP99 float64 `json:"send_ms_p99"`
	// RoundGapMs* are the gaps between consecutive aggregation-server
	// round closes — the tail carries the churn stalls (dead relay,
	// failover storm).
	RoundGapMsP50 float64 `json:"round_gap_ms_p50"`
	RoundGapMsP95 float64 `json:"round_gap_ms_p95"`
	RoundGapMsP99 float64 `json:"round_gap_ms_p99"`
	// PeakLaneDepth is the deepest outbox delivery lane observed on
	// either front (the dead relay's parked backlog, usually).
	PeakLaneDepth int `json:"peak_lane_depth"`
	// PeakIngressQueue is the deepest bounded ingress queue any peer
	// reached; BusyRejections counts sends turned away with ErrBusy;
	// SendRetries counts harness-level retries after every endpoint
	// answered a transient error.
	PeakIngressQueue int     `json:"peak_ingress_queue"`
	BusyRejections   uint64  `json:"busy_rejections"`
	SendRetries      uint64  `json:"send_retries"`
	AllocsPerUpdate  float64 `json:"allocs_per_update"`
	// ConservationOK reports the zero-loss/zero-duplication check: the
	// layer-wise mean of every slot observed at the aggregation server
	// equals the mean of every acked update at 1e-9.
	ConservationOK bool `json:"conservation_ok"`
	// OverloadSends counts the phase-E sends that deliberately drove
	// front-0 past its per-sender rate budget (all of them acked
	// somewhere — the shed remainder failed over to front-1);
	// RateLimited429 and AdmissionShed are the fronts' admission-gate
	// refusal counters across the run.
	OverloadSends  uint64 `json:"overload_sends"`
	RateLimited429 uint64 `json:"rate_limited_429"`
	AdmissionShed  uint64 `json:"admission_shed"`
}

// loadgenObserver accumulates every update slot the aggregation server
// absorbs, plus round-close timestamps for the latency tail.
type loadgenObserver struct {
	mu     sync.Mutex
	sum    nn.ParamSet
	slots  int
	rounds int
	closes []time.Time
}

func (o *loadgenObserver) ObserveRound(rec fl.RoundRecord) {
	o.mu.Lock()
	defer o.mu.Unlock()
	for _, u := range rec.Updates {
		if o.slots == 0 {
			o.sum = u.Clone()
		} else {
			o.sum.Add(u)
		}
		o.slots++
	}
	o.rounds++
	o.closes = append(o.closes, time.Now())
}

func (o *loadgenObserver) snapshot() (nn.ParamSet, int, int, []time.Time) {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.sum, o.slots, o.rounds, append([]time.Time(nil), o.closes...)
}

// loadgenHarness is the assembled deployment plus run-wide accounting.
type loadgenHarness struct {
	cfg      LoadgenConfig
	arch     nn.Arch
	lb       *transport.Loopback
	platform *enclave.Platform
	obs      *loadgenObserver
	agg      *proxy.AggServer

	fronts       [2]*proxy.ShardedProxy
	frontEPs     [2]string
	frontMeasure [32]byte
	relays       [2]*proxy.ShardedProxy
	relayEPs     [2]string
	relaySpecs   [2]wire.TopologyShardSpec
	cascade      *proxy.ShardedProxy
	cascadeEP    string

	parts []*client.Participant

	// expected accumulates the layer-wise sum of every acked update.
	expMu    sync.Mutex
	expSum   nn.ParamSet
	expCount int

	latMu sync.Mutex
	lats  []float64 // milliseconds

	retries    atomic.Uint64
	replaced   atomic.Uint64
	stragglers atomic.Uint64
	overload   atomic.Uint64
	peakLane   atomic.Int64
}

const (
	lgAggEP         = "loop://agg"
	lgCascadeEP     = "loop://cascade"
	lgFrontSecret   = "front-admin-secret"
	lgRelaySecret   = "relay-hop-secret"
	lgCascadeSecret = "cascade-hop-secret"
)

// RunLoadgen stands up the deployment and drives the scripted load:
//
//	phase A (calm):      waves with every component healthy, then a
//	                     quiesced sync_peers directive on front-0;
//	phase B (churn):     relay-b is killed, stragglers delay, sessions
//	                     are torn down and replaced mid-wave, and a
//	                     local reshard directive lands on the loaded
//	                     cascade tier;
//	phase C (failover):  front-0's ingress dies mid-wave — every
//	                     in-flight participant fails over to front-1;
//	phase D (recovery):  the dead relay and front return;
//	phase E (overload):  dedicated senders drive front-0 past its
//	                     per-sender rate budget — the tail of each burst
//	                     is refused with a typed 429 + Retry-After and
//	                     must land on front-1 — then partial front
//	                     rounds are topped off with fillers, everything
//	                     drains, and the zero-loss check runs.
func RunLoadgen(cfg LoadgenConfig) (LoadgenResult, error) {
	if cfg.Participants <= 0 || cfg.FrontRound <= 0 || cfg.FrontRound%3 != 0 {
		return LoadgenResult{}, fmt.Errorf("experiment: loadgen wants FrontRound > 0 and divisible by 3, got %d", cfg.FrontRound)
	}
	if cfg.Participants%cfg.FrontRound != 0 {
		return LoadgenResult{}, fmt.Errorf("experiment: loadgen wants Participants (%d) divisible by FrontRound (%d)", cfg.Participants, cfg.FrontRound)
	}
	if cfg.Waves < 3 {
		return LoadgenResult{}, fmt.Errorf("experiment: loadgen wants at least 3 waves (calm, churn, failover), got %d", cfg.Waves)
	}
	if cfg.K <= 0 {
		cfg.K = 2
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 10 * time.Minute
	}
	ctx, cancel := context.WithTimeout(context.Background(), cfg.Timeout)
	defer cancel()

	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	h := &loadgenHarness{
		cfg:  cfg,
		arch: nn.NewMLP("loadgen", 4, []int{6}, 2),
		obs:  &loadgenObserver{},
	}
	if err := h.deploy(ctx); err != nil {
		return LoadgenResult{}, err
	}
	defer h.lb.Close()
	defer h.cascade.Close()
	defer h.relays[0].Close()
	defer h.relays[1].Close()
	defer h.fronts[0].Close()
	defer h.fronts[1].Close()

	// Background poller: peak outbox lane depth across both fronts.
	pollDone := make(chan struct{})
	pollStop := make(chan struct{})
	go func() {
		defer close(pollDone)
		for {
			select {
			case <-pollStop:
				return
			case <-time.After(10 * time.Millisecond):
			}
			for _, f := range h.fronts {
				for _, ls := range f.Status().OutboxLanes {
					if d := int64(ls.Pending); d > h.peakLane.Load() {
						h.peakLane.Store(d)
					}
				}
			}
		}
	}()

	start := time.Now()
	err := h.run(ctx)
	close(pollStop)
	<-pollDone
	if err != nil {
		return LoadgenResult{}, err
	}
	dur := time.Since(start)

	if cfg.MetricsOut != "" {
		if err := h.dumpMetrics(cfg.MetricsOut); err != nil {
			return LoadgenResult{}, err
		}
	}

	var after runtime.MemStats
	runtime.ReadMemStats(&after)

	return h.results(dur, before, after)
}

// deploy builds agg ← cascade ← {front local lanes, relay-a, relay-b} ←
// {front-0, front-1} ← participants, entirely over one Loopback.
func (h *loadgenHarness) deploy(ctx context.Context) error {
	cfg := h.cfg
	quota := cfg.FrontRound / 3
	h.lb = transport.NewLoopbackWith(transport.LoopbackOptions{QueueDepth: cfg.QueueDepth, Workers: cfg.Workers})
	platform, err := enclave.NewPlatform()
	if err != nil {
		return err
	}
	h.platform = platform
	initial := h.arch.New(cfg.Seed).SnapshotParams()

	agg, err := proxy.NewAggServer(initial, quota)
	if err != nil {
		return err
	}
	agg.SetObserver(h.obs)
	h.agg = agg
	h.lb.Register(lgAggEP, agg)

	mkEnclave := func(identity string) (*enclave.Enclave, error) {
		return enclave.New(enclave.Config{CodeIdentity: identity, RSABits: cfg.RSABits}, platform)
	}

	// Cascade hop: re-mixes every Q-sized chunk (front local output and
	// each relay's output) across the whole deployment before the agg.
	cascadeEncl, err := mkEnclave("mixnn-loadgen-cascade")
	if err != nil {
		return err
	}
	h.cascade, err = proxy.NewSharded(proxy.ShardedConfig{
		Upstream: lgAggEP, K: cfg.K, RoundSize: quota, Shards: 1,
		HopSecret: lgCascadeSecret, Seed: cfg.Seed + 11, Transport: h.lb,
		RetryBase: 2 * time.Millisecond, RetryMax: 50 * time.Millisecond,
	}, cascadeEncl, platform)
	if err != nil {
		return err
	}
	h.cascadeEP = lgCascadeEP
	h.lb.Register(lgCascadeEP, h.cascade)
	cascadeKey, err := proxy.AttestHopOver(ctx, h.lb, lgCascadeEP, platform.AttestationPublicKey(), cascadeEncl.Measurement())
	if err != nil {
		return err
	}

	// Relay shards: each runs its own round of size quota and forwards
	// to the cascade.
	authorityDER, err := x509.MarshalPKIXPublicKey(platform.AttestationPublicKey())
	if err != nil {
		return err
	}
	relayKeys := [2]*enclave.HopKey{}
	for i := 0; i < 2; i++ {
		encl, err := mkEnclave(fmt.Sprintf("mixnn-loadgen-relay-%d", i))
		if err != nil {
			return err
		}
		h.relays[i], err = proxy.NewSharded(proxy.ShardedConfig{
			Upstream: lgAggEP, NextHop: lgCascadeEP, NextHopKey: cascadeKey, NextHopSecret: lgCascadeSecret,
			HopSecret: lgRelaySecret, K: cfg.K, RoundSize: quota, Shards: 1,
			Seed: cfg.Seed + int64(21+i), Transport: h.lb,
			RetryBase: 2 * time.Millisecond, RetryMax: 50 * time.Millisecond,
		}, encl, platform)
		if err != nil {
			return err
		}
		h.relayEPs[i] = fmt.Sprintf("loop://relay-%d", i)
		h.lb.Register(h.relayEPs[i], h.relays[i])
		if relayKeys[i], err = proxy.AttestHopOver(ctx, h.lb, h.relayEPs[i], platform.AttestationPublicKey(), encl.Measurement()); err != nil {
			return err
		}
		meas := encl.Measurement()
		h.relaySpecs[i] = wire.TopologyShardSpec{
			Addr: h.relayEPs[i], Weight: 1,
			AuthorityPubDER: authorityDER, MeasurementHex: hex.EncodeToString(meas[:]),
			Secret: lgRelaySecret,
		}
	}

	// Two fronts with the SAME code identity: one (authority,
	// measurement) pin covers the participants' whole failover list.
	// Both advertise the pair on /v1/discover (so a seed-only SDK learns
	// the full set) and feed their live loopback queue depth into the
	// admission signals; front-0 additionally runs the per-sender rate
	// limiter that phase E drives past its budget. The burst equals one
	// front round, so ordinary wave traffic and round top-off fillers
	// (at most FrontRound-1 back-to-back sends) never trip it.
	frontEPs := [2]string{"loop://front-0", "loop://front-1"}
	for i := 0; i < 2; i++ {
		encl, err := mkEnclave("mixnn-loadgen-front")
		if err != nil {
			return err
		}
		ep := frontEPs[i]
		fcfg := proxy.ShardedConfig{
			Upstream: lgAggEP, NextHop: lgCascadeEP, NextHopKey: cascadeKey, NextHopSecret: lgCascadeSecret,
			HopSecret:  lgFrontSecret,
			Routing:    route.ModeHashQuota,
			ShardSpecs: []route.ShardSpec{{}, {Addr: h.relayEPs[0]}, {Addr: h.relayEPs[1]}},
			RemoteShards: map[string]proxy.RemoteShard{
				h.relayEPs[0]: {Key: relayKeys[0], Secret: lgRelaySecret},
				h.relayEPs[1]: {Key: relayKeys[1], Secret: lgRelaySecret},
			},
			K: cfg.K, RoundSize: cfg.FrontRound, Seed: cfg.Seed + int64(31+i),
			Transport: h.lb,
			RetryBase: 2 * time.Millisecond, RetryMax: 50 * time.Millisecond,
			DeliveryWorkers: 3,
			Endpoint:        ep,
			Peers:           frontEPs[:],
			IngressDepth:    func() int { return h.lb.QueueDepth(ep) },
		}
		if i == 0 {
			fcfg.RatePerSec = 1
			fcfg.RateBurst = float64(cfg.FrontRound)
		}
		h.fronts[i], err = proxy.NewSharded(fcfg, encl, platform)
		if err != nil {
			return err
		}
		h.frontEPs[i] = ep
		h.lb.Register(ep, h.fronts[i])
		h.frontMeasure = encl.Measurement()
	}

	h.parts = make([]*client.Participant, cfg.Participants)
	for i := range h.parts {
		if h.parts[i], err = h.newSession(fmt.Sprintf("p-%d", i)); err != nil {
			return err
		}
	}
	return nil
}

func (h *loadgenHarness) newSession(clientID string) (*client.Participant, error) {
	return client.New(client.Config{
		Proxies: []string{h.frontEPs[0], h.frontEPs[1]}, Server: lgAggEP,
		Transport: h.lb, ClientID: clientID,
		Authority: h.platform.AttestationPublicKey(), Measurement: h.frontMeasure,
	})
}

// sendWithRetry is the participant's load-shedding loop: ErrBusy (a
// full bounded ingress queue) and ErrUnreachable (a killed front) are
// transient AND provably-not-ingested, so when every endpoint answers
// one the send backs off and retries; anything else surfaces.
func (h *loadgenHarness) sendWithRetry(ctx context.Context, part *client.Participant, ps nn.ParamSet) error {
	backoff := 2 * time.Millisecond
	for {
		err := part.SendUpdate(ctx, ps)
		if err == nil {
			return nil
		}
		if !errors.Is(err, transport.ErrBusy) && !errors.Is(err, transport.ErrUnreachable) {
			return err
		}
		h.retries.Add(1)
		select {
		case <-ctx.Done():
			return fmt.Errorf("experiment: loadgen send gave up retrying: %w", err)
		case <-time.After(backoff):
		}
		if backoff < 64*time.Millisecond {
			backoff *= 2
		}
	}
}

// waveOpts scripts one wave's churn.
type waveOpts struct {
	straggle   []bool          // delay this participant's send
	disconnect []bool          // replace this participant's session first
	delay      []time.Duration // straggler delays
	// hook fires once, the first time acked sends cross threshold.
	threshold int
	hook      func()
}

// runWave generates one update per participant (accumulating the
// expected sum), then sends them all concurrently with the scripted
// churn applied.
func (h *loadgenHarness) runWave(ctx context.Context, wave int, opts waveOpts) error {
	cfg := h.cfg
	updates := make([]nn.ParamSet, cfg.Participants)
	for i := range updates {
		updates[i] = h.arch.New(cfg.Seed + int64((wave+1)*cfg.Participants+i)).SnapshotParams()
	}
	h.accumulateExpected(updates)

	var acked atomic.Int64
	var hookOnce sync.Once
	var wg sync.WaitGroup
	errs := make([]error, cfg.Participants)
	for i := 0; i < cfg.Participants; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if opts.disconnect != nil && opts.disconnect[i] {
				// The participant "drops": a fresh session (new pseudonym,
				// no pinned keys, lazy re-attestation) takes its slot.
				fresh, err := h.newSession(fmt.Sprintf("p-%d-w%d", i, wave))
				if err != nil {
					errs[i] = err
					return
				}
				h.parts[i] = fresh
				h.replaced.Add(1)
			}
			if opts.straggle != nil && opts.straggle[i] {
				h.stragglers.Add(1)
				select {
				case <-time.After(opts.delay[i]):
				case <-ctx.Done():
				}
			}
			t0 := time.Now()
			errs[i] = h.sendWithRetry(ctx, h.parts[i], updates[i])
			if errs[i] != nil {
				return
			}
			ms := float64(time.Since(t0).Microseconds()) / 1000
			h.latMu.Lock()
			h.lats = append(h.lats, ms)
			h.latMu.Unlock()
			if n := acked.Add(1); opts.hook != nil && int(n) >= opts.threshold {
				hookOnce.Do(opts.hook)
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("experiment: loadgen wave %d participant %d: %w", wave, i, err)
		}
	}
	return nil
}

func (h *loadgenHarness) accumulateExpected(updates []nn.ParamSet) {
	h.expMu.Lock()
	defer h.expMu.Unlock()
	for _, u := range updates {
		if h.expCount == 0 {
			h.expSum = u.Clone()
		} else {
			h.expSum.Add(u)
		}
		h.expCount++
	}
}

// drainTier polls until every proxy is quiescent (no open round, empty
// outbox) and the aggregation server has closed one round per quota of
// acked updates.
func (h *loadgenHarness) drainTier(ctx context.Context) error {
	quota := h.cfg.FrontRound / 3
	h.expMu.Lock()
	wantRounds := h.expCount / quota
	h.expMu.Unlock()
	proxies := []*proxy.ShardedProxy{h.fronts[0], h.fronts[1], h.relays[0], h.relays[1], h.cascade}
	for {
		idle := true
		for _, p := range proxies {
			st := p.Status()
			if st.InRound != 0 || st.OutboxPending != 0 {
				idle = false
				break
			}
		}
		if idle && h.agg.Round() == wantRounds {
			return nil
		}
		select {
		case <-ctx.Done():
			var depths []string
			for _, p := range proxies {
				st := p.Status()
				depths = append(depths, fmt.Sprintf("in_round=%d pending=%d", st.InRound, st.OutboxPending))
			}
			return fmt.Errorf("experiment: loadgen tier did not drain (agg %d/%d rounds; %v): %w",
				h.agg.Round(), wantRounds, depths, ctx.Err())
		case <-time.After(2 * time.Millisecond):
		}
	}
}

// topOffFronts closes each front's partial round by sending fillers
// pinned to that front until its InRound returns to zero. Fillers are
// ordinary acked updates and count toward the conservation sums.
func (h *loadgenHarness) topOffFronts(ctx context.Context) (int, error) {
	fillers := 0
	for i, front := range h.fronts {
		need := front.Status().InRound
		if need == 0 {
			continue
		}
		need = h.cfg.FrontRound - need
		filler, err := client.New(client.Config{
			Proxies: []string{h.frontEPs[i]}, Server: lgAggEP,
			Transport: h.lb, ClientID: fmt.Sprintf("filler-%d", i),
			Authority: h.platform.AttestationPublicKey(), Measurement: h.frontMeasure,
		})
		if err != nil {
			return fillers, err
		}
		for j := 0; j < need; j++ {
			u := h.arch.New(h.cfg.Seed + int64(1_000_000+i*h.cfg.FrontRound+j)).SnapshotParams()
			h.accumulateExpected([]nn.ParamSet{u})
			if err := h.sendWithRetry(ctx, filler, u); err != nil {
				return fillers, fmt.Errorf("experiment: loadgen filler %d for front-%d: %w", j, i, err)
			}
			fillers++
		}
	}
	return fillers, nil
}

// dumpMetrics writes the run's operator exposition to path: front-0's
// full /v1/metrics registry (ingress, admission, outbox-lane and
// session-crypto instruments) plus the harness's loopback-queue
// instruments, concatenated as one Prometheus text document and
// re-parsed through health.ValidateExposition before it is written —
// an unparseable dump fails the run, not the scrape that reads it
// later.
func (h *loadgenHarness) dumpMetrics(path string) error {
	var buf bytes.Buffer
	if err := h.fronts[0].WriteMetrics(&buf); err != nil {
		return fmt.Errorf("experiment: loadgen metrics dump: %w", err)
	}
	reg := health.NewRegistry()
	for _, s := range h.lb.Stats() {
		l := health.Label{Key: "peer", Value: s.Endpoint}
		reg.NewGauge("mixnn_loopback_queue_peak",
			"Ingress-queue high watermark per loopback peer.", l).Set(float64(s.Peak))
		reg.NewCounter("mixnn_loopback_handled_total",
			"Data-plane requests executed per loopback peer.", l).Set(float64(s.Handled))
		reg.NewCounter("mixnn_loopback_busy_total",
			"Sends rejected queue-full (ErrBusy) per loopback peer.", l).Set(float64(s.Busy))
	}
	if err := reg.WritePrometheus(&buf); err != nil {
		return fmt.Errorf("experiment: loadgen metrics dump: %w", err)
	}
	if _, err := health.ValidateExposition(bytes.NewReader(buf.Bytes())); err != nil {
		return fmt.Errorf("experiment: loadgen metrics dump does not parse: %w", err)
	}
	return os.WriteFile(path, buf.Bytes(), 0o644)
}

// run executes the phased script. See RunLoadgen's doc comment.
func (h *loadgenHarness) run(ctx context.Context) error {
	cfg := h.cfg
	rng := rand.New(rand.NewSource(cfg.Seed))
	wavesA := cfg.Waves / 3
	if wavesA == 0 {
		wavesA = 1
	}
	wavesC := 1
	wavesB := cfg.Waves - wavesA - wavesC
	if wavesB < 1 {
		wavesA, wavesB = 1, cfg.Waves-2
	}
	wave := 0

	// Phase A: calm waves, then a sync_peers directive against the
	// quiesced tier — it re-affirms the topology and drives each relay's
	// round size to its quota through the relays' authenticated admin
	// planes, proving the directive path works on the assembled tier.
	for i := 0; i < wavesA; i++ {
		if err := h.runWave(ctx, wave, waveOpts{}); err != nil {
			return err
		}
		wave++
	}
	// Backpressure failover may have split even the calm waves across
	// both fronts, leaving each with a partial round; close them so the
	// tier can actually quiesce for the directive.
	if _, err := h.topOffFronts(ctx); err != nil {
		return err
	}
	if err := h.drainTier(ctx); err != nil {
		return fmt.Errorf("pre-directive drain: %w", err)
	}
	admin := client.NewAdmin(h.lb, h.frontEPs[0], lgFrontSecret)
	if _, err := admin.Stage(ctx, wire.TopologyDirective{
		Mode:      route.ModeHashQuota.String(),
		Shards:    []wire.TopologyShardSpec{{Weight: 1}, h.relaySpecs[0], h.relaySpecs[1]},
		SyncPeers: true,
	}); err != nil {
		return fmt.Errorf("experiment: loadgen sync_peers directive: %w", err)
	}

	// Phase B: relay-1 dies (its front lanes park and retry), stragglers
	// delay, sessions churn, and a local reshard directive lands on the
	// cascade while the pipeline is loaded.
	h.lb.Unregister(h.relayEPs[1])
	cascadeAdmin := client.NewAdmin(h.lb, h.cascadeEP, lgCascadeSecret)
	reshardErr := make(chan error, 1)
	for i := 0; i < wavesB; i++ {
		opts := waveOpts{
			straggle:   make([]bool, cfg.Participants),
			disconnect: make([]bool, cfg.Participants),
			delay:      make([]time.Duration, cfg.Participants),
		}
		for j := 0; j < cfg.Participants; j++ {
			if rng.Float64() < cfg.StragglerFrac {
				opts.straggle[j] = true
				opts.delay[j] = time.Duration(1+rng.Intn(20)) * time.Millisecond
			}
			if rng.Float64() < cfg.DisconnectFrac {
				opts.disconnect[j] = true
			}
		}
		if i == 0 {
			// Mid-wave, under load: split the cascade into two local
			// shards. The directive stages now and applies at the
			// cascade's next round close.
			opts.threshold = cfg.Participants / 3
			opts.hook = func() {
				_, err := cascadeAdmin.Stage(ctx, wire.TopologyDirective{
					Shards: []wire.TopologyShardSpec{{Weight: 1}, {Weight: 1}},
				})
				reshardErr <- err
			}
		}
		if err := h.runWave(ctx, wave, opts); err != nil {
			return err
		}
		wave++
	}
	select {
	case err := <-reshardErr:
		if err != nil {
			return fmt.Errorf("experiment: loadgen cascade reshard under load: %w", err)
		}
	default:
		return fmt.Errorf("experiment: loadgen cascade reshard hook never fired")
	}

	// Phase C: the primary front's ingress dies mid-wave. In-flight
	// sends that were still queued fail as provably-not-ingested and the
	// SDK storms over to front-1 (single-flighted lazy attestation);
	// front-0's outbox keeps draining its already-closed rounds.
	if err := h.runWave(ctx, wave, waveOpts{
		threshold: cfg.Participants / 3,
		hook:      func() { h.lb.Unregister(h.frontEPs[0]) },
	}); err != nil {
		return err
	}
	wave++

	// Phase D: recovery. The dead relay and front return, each front's
	// partial round is topped off, and everything must drain to zero.
	h.lb.Register(h.relayEPs[1], h.relays[1])
	h.lb.Register(h.frontEPs[0], h.fronts[0])

	// Phase E: overload. Dedicated senders drive front-0 past its
	// per-sender rate budget; the refused remainder must land on
	// front-1, nothing may be lost or quarantined.
	if err := h.overloadPhase(ctx); err != nil {
		return err
	}

	if _, err := h.topOffFronts(ctx); err != nil {
		return err
	}
	if err := h.drainTier(ctx); err != nil {
		return fmt.Errorf("final drain: %w", err)
	}
	return nil
}

// overloadPhase drives front-0's admission gate past its budget: each
// overload sender fires one front round's worth of sends (the exact
// burst) plus a few more, back to back. The bucket refills at 1
// token/sec and the burst completes in well under a second, so the
// tail provably meets an empty bucket: front-0 answers the typed 429 +
// Retry-After, the SDK's walk fails over, and front-1 (no limiter)
// accepts. Every overload update is accumulated into the expected sum,
// so the final conservation check proves the shed sends were neither
// lost nor double-ingested across the failover.
func (h *loadgenHarness) overloadPhase(ctx context.Context) error {
	const overloadSenders = 3
	sends := h.cfg.FrontRound + 4
	before := h.fronts[0].Status().AdmissionRateLimited
	var wg sync.WaitGroup
	errs := make([]error, overloadSenders)
	for s := 0; s < overloadSenders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			part, err := h.newSession(fmt.Sprintf("overload-%d", s))
			if err != nil {
				errs[s] = err
				return
			}
			for j := 0; j < sends; j++ {
				u := h.arch.New(h.cfg.Seed + int64(2_000_000+s*sends+j)).SnapshotParams()
				h.accumulateExpected([]nn.ParamSet{u})
				if err := h.sendWithRetry(ctx, part, u); err != nil {
					errs[s] = fmt.Errorf("send %d: %w", j, err)
					return
				}
				h.overload.Add(1)
			}
		}(s)
	}
	wg.Wait()
	for s, err := range errs {
		if err != nil {
			return fmt.Errorf("experiment: loadgen overload sender %d: %w", s, err)
		}
	}
	limited := h.fronts[0].Status().AdmissionRateLimited - before
	if limited == 0 {
		return fmt.Errorf("experiment: loadgen overload: front-0 never answered 429 (%d senders x %d sends against burst %d)",
			overloadSenders, sends, h.cfg.FrontRound)
	}
	return nil
}

func (h *loadgenHarness) results(dur time.Duration, before, after runtime.MemStats) (LoadgenResult, error) {
	quota := h.cfg.FrontRound / 3
	obsSum, slots, rounds, closes := h.obs.snapshot()
	h.expMu.Lock()
	expSum, expCount := h.expSum, h.expCount
	h.expMu.Unlock()

	// Zero loss, zero duplication: every acked update (fillers included)
	// is accounted for at the aggregation server, and the layer-wise
	// means agree at 1e-9 — mixing permutes layers across participants
	// but conserves sums at every hop.
	if slots != expCount {
		return LoadgenResult{}, fmt.Errorf("experiment: loadgen conservation: agg observed %d update slots, %d were acked", slots, expCount)
	}
	conserved := expSum.Clone().Scale(1/float64(expCount)).ApproxEqual(obsSum.Clone().Scale(1/float64(slots)), 1e-9)
	if !conserved {
		return LoadgenResult{}, fmt.Errorf("experiment: loadgen conservation: layer-wise mean of %d observed slots diverged from the acked mean", slots)
	}

	h.latMu.Lock()
	lats := append([]float64(nil), h.lats...)
	h.latMu.Unlock()
	gaps := make([]float64, 0, len(closes))
	for i := 1; i < len(closes); i++ {
		gaps = append(gaps, closes[i].Sub(closes[i-1]).Seconds()*1000)
	}
	var peakQueue int
	var busy uint64
	for _, s := range h.lb.Stats() {
		if s.Peak > peakQueue {
			peakQueue = s.Peak
		}
		busy += s.Busy
	}
	var rateLimited, shed uint64
	for _, f := range h.fronts {
		st := f.Status()
		rateLimited += st.AdmissionRateLimited
		shed += st.AdmissionShed
		if st.OutboxQuarantined != 0 {
			return LoadgenResult{}, fmt.Errorf("experiment: loadgen front quarantined %d outbox entries; overload shedding must never poison delivery", st.OutboxQuarantined)
		}
	}
	fillers := expCount - h.cfg.Participants*h.cfg.Waves - int(h.overload.Load())
	return LoadgenResult{
		Bench:            "loadgen",
		Participants:     h.cfg.Participants,
		FrontRound:       h.cfg.FrontRound,
		Quota:            quota,
		Waves:            h.cfg.Waves,
		QueueDepth:       h.cfg.QueueDepth,
		Workers:          h.cfg.Workers,
		TotalUpdates:     expCount,
		Fillers:          fillers,
		AggRounds:        rounds,
		Replaced:         int(h.replaced.Load()),
		Stragglers:       int(h.stragglers.Load()),
		DurationMillis:   dur.Seconds() * 1000,
		UpdatesPerSec:    float64(expCount) / dur.Seconds(),
		SendMsP50:        stats.Percentile(lats, 50),
		SendMsP95:        stats.Percentile(lats, 95),
		SendMsP99:        stats.Percentile(lats, 99),
		RoundGapMsP50:    stats.Percentile(gaps, 50),
		RoundGapMsP95:    stats.Percentile(gaps, 95),
		RoundGapMsP99:    stats.Percentile(gaps, 99),
		PeakLaneDepth:    int(h.peakLane.Load()),
		PeakIngressQueue: peakQueue,
		BusyRejections:   busy,
		SendRetries:      h.retries.Load(),
		AllocsPerUpdate:  float64(after.Mallocs-before.Mallocs) / float64(expCount),
		ConservationOK:   conserved,
		OverloadSends:    h.overload.Load(),
		RateLimited429:   rateLimited,
		AdmissionShed:    shed,
	}, nil
}
