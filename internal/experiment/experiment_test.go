package experiment

import (
	"math/rand"
	"testing"

	"mixnn/internal/tensor"
)

// quickBatch returns a small random batch of the given width.
func quickBatch(dim, n int) *tensor.Tensor {
	return tensor.New(n, dim).RandN(rand.New(rand.NewSource(1)), 0, 1)
}

func TestDatasetsQuick(t *testing.T) {
	specs := Datasets(ScaleQuick, 1)
	if len(specs) != 4 {
		t.Fatalf("quick datasets = %d, want 4", len(specs))
	}
	wantKeys := map[string]bool{"cifar10": true, "motionsense": true, "mobiact": true, "lfw": true}
	for _, s := range specs {
		if !wantKeys[s.Key] {
			t.Fatalf("unexpected dataset %q", s.Key)
		}
		if err := s.FL.Validate(); err != nil {
			t.Fatalf("%s: invalid FL config: %v", s.Key, err)
		}
		if s.Arch.Build == nil {
			t.Fatalf("%s: missing architecture", s.Key)
		}
		// Architecture must accept the source's input shape.
		c, h, w := s.Source.Input()
		net := s.Arch.New(1)
		x := quickBatch(c*h*w, 2)
		out := net.Forward(x, false)
		if out.Dim(1) != s.Source.Classes() {
			t.Fatalf("%s: model outputs %d classes, source has %d", s.Key, out.Dim(1), s.Source.Classes())
		}
	}
}

func TestDatasetsFullConfigMatchesPaper(t *testing.T) {
	specs := Datasets(ScaleFull, 1)
	byKey := map[string]DatasetSpec{}
	for _, s := range specs {
		byKey[s.Key] = s
	}

	// §6.1.4 schedules.
	tests := []struct {
		key                   string
		rounds, epochs, batch int
		participants          int
	}{
		{"cifar10", 10, 3, 32, 20},
		{"motionsense", 20, 2, 256, 24},
		{"mobiact", 20, 3, 64, 58},
		{"lfw", 30, 2, 16, 20},
	}
	for _, tt := range tests {
		s, ok := byKey[tt.key]
		if !ok {
			t.Fatalf("missing dataset %q", tt.key)
		}
		if s.FL.Rounds != tt.rounds || s.FL.LocalEpochs != tt.epochs || s.FL.BatchSize != tt.batch {
			t.Fatalf("%s schedule = %d rounds/%d epochs/%d batch, want %d/%d/%d",
				tt.key, s.FL.Rounds, s.FL.LocalEpochs, s.FL.BatchSize, tt.rounds, tt.epochs, tt.batch)
		}
		if got := len(s.Source.Participants(1)); got != tt.participants {
			t.Fatalf("%s population = %d, want %d", tt.key, got, tt.participants)
		}
		if s.AttackEpochs != 5 {
			t.Fatalf("%s attack epochs = %d, want 5 (§6.1.4)", tt.key, s.AttackEpochs)
		}
	}
}

func TestDatasetByKey(t *testing.T) {
	if _, err := DatasetByKey("cifar10", ScaleQuick, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := DatasetByKey("imagenet", ScaleQuick, 1); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestArms(t *testing.T) {
	arms := Arms()
	if len(arms) != 3 {
		t.Fatalf("arms = %d, want 3", len(arms))
	}
	for _, key := range []string{"fl", "mixnn", "noisy", "mixnn-stream"} {
		arm, err := ArmByKey(key)
		if err != nil {
			t.Fatalf("ArmByKey(%q): %v", key, err)
		}
		if arm.Transform == nil {
			t.Fatalf("arm %q has no transform", key)
		}
	}
	if _, err := ArmByKey("quantum"); err == nil {
		t.Fatal("unknown arm accepted")
	}
}

// TestFig5UtilityEquivalence is the heart of the paper: MixNN provides the
// same utility as classic FL, while noisy gradients lose accuracy.
func TestFig5UtilityEquivalence(t *testing.T) {
	spec := smallSpec(t, "cifar10")
	flRes, err := RunUtility(spec, mustArm(t, "fl"), 7)
	if err != nil {
		t.Fatal(err)
	}
	mixRes, err := RunUtility(spec, mustArm(t, "mixnn"), 7)
	if err != nil {
		t.Fatal(err)
	}
	noisyRes, err := RunUtility(spec, mustArm(t, "noisy"), 7)
	if err != nil {
		t.Fatal(err)
	}

	if len(flRes.Accuracy) != spec.FL.Rounds {
		t.Fatalf("recorded %d rounds, want %d", len(flRes.Accuracy), spec.FL.Rounds)
	}
	// Same seed, equivalent aggregation: the two curves must be nearly
	// identical (float reordering only).
	for r := range flRes.Accuracy {
		if diff := flRes.Accuracy[r] - mixRes.Accuracy[r]; diff > 0.02 || diff < -0.02 {
			t.Fatalf("round %d: fl %.4f vs mixnn %.4f — utility equivalence violated",
				r, flRes.Accuracy[r], mixRes.Accuracy[r])
		}
	}
	// Noisy gradients must hurt utility (paper: ~10% lower on average).
	if noisyRes.FinalAccuracy() >= flRes.FinalAccuracy() {
		t.Fatalf("noisy (%.4f) not worse than fl (%.4f)", noisyRes.FinalAccuracy(), flRes.FinalAccuracy())
	}
	// And the trained model must actually have learned something.
	if flRes.FinalAccuracy() < 0.4 {
		t.Fatalf("final fl accuracy %.4f too low — main task not learned", flRes.FinalAccuracy())
	}
}

// TestFig7InferenceProtection: ∇Sim succeeds against classic FL and is
// reduced to chance by MixNN.
func TestFig7InferenceProtection(t *testing.T) {
	spec := smallSpec(t, "cifar10")
	flRes, err := RunInference(spec, mustArm(t, "fl"), true, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	mixRes, err := RunInference(spec, mustArm(t, "mixnn"), true, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if flRes.FinalAccuracy() < flRes.Chance+0.2 {
		t.Fatalf("attack on classic FL = %.3f, chance %.3f — attack not working", flRes.FinalAccuracy(), flRes.Chance)
	}
	if mixRes.FinalAccuracy() > mixRes.Chance+0.25 {
		t.Fatalf("attack under MixNN = %.3f, chance %.3f — protection not working", mixRes.FinalAccuracy(), mixRes.Chance)
	}
	if flRes.FinalAccuracy() <= mixRes.FinalAccuracy() {
		t.Fatalf("MixNN (%.3f) leaks at least as much as classic FL (%.3f)", mixRes.FinalAccuracy(), flRes.FinalAccuracy())
	}
}

func TestFig8BackgroundSweepShape(t *testing.T) {
	spec := smallSpec(t, "motionsense")
	spec.FL.Rounds = 2
	results, err := RunBackgroundSweep(spec, mustArm(t, "fl"), true, []float64{0.3, 1.0}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("sweep points = %d, want 2", len(results))
	}
	for i, r := range results {
		if len(r.InferenceAccuracy) != spec.FL.Rounds {
			t.Fatalf("point %d recorded %d rounds, want %d", i, len(r.InferenceAccuracy), spec.FL.Rounds)
		}
	}
	if results[0].Ratio != 0.3 || results[1].Ratio != 1.0 {
		t.Fatalf("ratios = %g/%g", results[0].Ratio, results[1].Ratio)
	}
}

func TestFig9Neighbours(t *testing.T) {
	spec := smallSpec(t, "motionsense")
	res, err := RunNeighbours(spec, DefaultNeighbourRadius, 2)
	if err != nil {
		t.Fatal(err)
	}
	n := len(spec.Source.Participants(2))
	if len(res.Neighbours) != n {
		t.Fatalf("neighbour counts = %d, want %d", len(res.Neighbours), n)
	}
	if len(res.CDF) != n {
		t.Fatalf("CDF points = %d, want %d", len(res.CDF), n)
	}
	// The paper's claim: participants have close alter egos. With unit
	// normalisation and radius 0.5 at this scale, at least some
	// participants must have at least one neighbour.
	withNeighbour := 0
	for _, c := range res.Neighbours {
		if c > 0 {
			withNeighbour++
		}
	}
	if withNeighbour == 0 {
		t.Fatal("no participant has any close neighbour — robustness claim would fail")
	}
	// CDF is monotone and ends at 1.
	last := res.CDF[len(res.CDF)-1]
	if last.Y != 1 {
		t.Fatalf("CDF does not reach 1: %v", last)
	}
}

// TestShardedPerfPipelined drives the pipelined shard-perf arm: several
// back-to-back rounds through the async delivery tier must all close,
// with the whole tier's ingest split across shards and one batch
// delivered per round.
func TestShardedPerfPipelined(t *testing.T) {
	m := PerfModels(ScaleQuick)[0]
	const participants, shards, rounds = 4, 2, 3
	res, err := RunShardedPerf(m.Name, m.Arch, participants, 2, shards, false, rounds, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != rounds || res.BatchesSent != rounds {
		t.Fatalf("rounds/batches = %d/%d, want %d/%d", res.Rounds, res.BatchesSent, rounds, rounds)
	}
	total := 0
	for _, n := range res.ShardReceived {
		total += n
	}
	if total != participants*rounds {
		t.Fatalf("shards ingested %d updates, want %d", total, participants*rounds)
	}
	if res.UpdatesPerSec <= 0 || res.RoundMillis <= 0 {
		t.Fatalf("degenerate throughput numbers: %+v", res)
	}
}

func TestSystemPerf(t *testing.T) {
	models := PerfModels(ScaleQuick)
	if len(models) != 2 {
		t.Fatalf("perf models = %d, want 2", len(models))
	}
	small, err := RunSystemPerf(models[0].Name, models[0].Arch, 4, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	big, err := RunSystemPerf(models[1].Name, models[1].Arch, 4, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if small.UpdateBytes <= 0 || big.UpdateBytes <= 0 {
		t.Fatal("update sizes not recorded")
	}
	// §6.5's qualitative claim: the larger model costs more memory.
	if big.UpdateBytes <= small.UpdateBytes {
		t.Fatalf("3conv update (%d B) not larger than 2conv (%d B)", big.UpdateBytes, small.UpdateBytes)
	}
	if small.EnclavePeakBytes <= 0 {
		t.Fatal("enclave peak memory not recorded")
	}
	if small.EndToEndMillis <= 0 {
		t.Fatal("end-to-end latency not recorded")
	}
}

// smallSpec shrinks a quick spec further for unit-test latency.
func smallSpec(t *testing.T, key string) DatasetSpec {
	t.Helper()
	spec, err := DatasetByKey(key, ScaleQuick, 11)
	if err != nil {
		t.Fatal(err)
	}
	spec.FL.Rounds = 3
	spec.AuxPerClass = 48
	spec.AttackEpochs = 2
	return spec
}

func mustArm(t *testing.T, key string) Arm {
	t.Helper()
	arm, err := ArmByKey(key)
	if err != nil {
		t.Fatal(err)
	}
	return arm
}
