package experiment

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"
)

func parseCSV(t *testing.T, buf *bytes.Buffer) [][]string {
	t.Helper()
	rows, err := csv.NewReader(buf).ReadAll()
	if err != nil {
		t.Fatalf("parse csv: %v", err)
	}
	return rows
}

func TestWriteUtilityCSV(t *testing.T) {
	res := []UtilityResult{{
		Dataset:   "cifar10",
		Arm:       "mixnn",
		Accuracy:  []float64{0.5, 0.7},
		PerClient: [][]float64{{0.4, 0.6}, {0.65, 0.75}},
	}}
	var buf bytes.Buffer
	if err := WriteUtilityCSV(&buf, res); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, &buf)
	// header + 2 rounds × (1 mean + 2 participants)
	if len(rows) != 1+2*3 {
		t.Fatalf("rows = %d, want 7", len(rows))
	}
	if rows[0][0] != "dataset" {
		t.Fatalf("header = %v", rows[0])
	}
	if rows[1][4] != "0.5" || rows[1][3] != "mean" {
		t.Fatalf("first data row = %v", rows[1])
	}
}

func TestWriteInferenceCSV(t *testing.T) {
	res := []InferenceResult{{
		Dataset: "lfw", Arm: "fl", Active: true, Ratio: 0.8,
		InferenceAccuracy: []float64{0.6, 0.9}, Chance: 0.5,
	}}
	var buf bytes.Buffer
	if err := WriteInferenceCSV(&buf, res); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, &buf)
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	if rows[1][2] != "active" || rows[2][5] != "0.9" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestWriteNeighboursCSV(t *testing.T) {
	res := []NeighbourResult{{Dataset: "mobiact", Radius: 1, Neighbours: []int{2, 0, 5}}}
	var buf bytes.Buffer
	if err := WriteNeighboursCSV(&buf, res); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, &buf)
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	if rows[3][3] != "5" {
		t.Fatalf("last row = %v", rows[3])
	}
}

func TestWritePerfCSV(t *testing.T) {
	res := []PerfResult{{
		Model: "2conv+3fc", Participants: 8, K: 4, UpdateBytes: 1024,
		DecryptMillis: 1.5, EndToEndMillis: 3.25, EnclavePeakBytes: 4096,
	}}
	var buf bytes.Buffer
	if err := WritePerfCSV(&buf, res); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "2conv+3fc") || !strings.Contains(out, "3.25") {
		t.Fatalf("csv missing fields:\n%s", out)
	}
}
