package experiment

import (
	"context"
	"fmt"
	"net/http/httptest"
	"sync"
	"time"

	"mixnn/internal/enclave"
	"mixnn/internal/nn"
	"mixnn/internal/proxy"
)

// ShardedPerfResult reports one sharded-tier throughput experiment: one
// or more rounds of concurrent participants through P mixing shards
// (optionally cascaded through a second mixing hop) into the aggregation
// server.
type ShardedPerfResult struct {
	Model        string
	Participants int
	Shards       int
	K            int
	Cascade      bool
	// Rounds is how many back-to-back rounds were driven. With more than
	// one, the tier's cross-round pipelining is exercised: round N+1 is
	// ingested while round N's batch is still being delivered.
	Rounds int
	// UpdateBytes is the plaintext size of one encoded update.
	UpdateBytes int
	// RoundMillis is the mean wall-clock time per round, from the first
	// send to closure of the final round at the aggregation server (all
	// sends run concurrently, so this measures tier throughput rather
	// than per-update latency).
	RoundMillis float64
	// UpdatesPerSec is Rounds×Participants divided by the total duration
	// in seconds.
	UpdatesPerSec float64
	// ProcessMillis is the front tier's mean in-enclave processing time.
	ProcessMillis float64
	// BatchesSent counts the front tier's /v1/batch deliveries (one per
	// round when batching is on).
	BatchesSent int
	// ShardReceived is the per-shard ingest distribution of the front tier.
	ShardReceived []int
}

// RunShardedPerf stands up the sharded mixing tier over real HTTP —
// optionally cascaded through a second mixing proxy with per-hop
// re-encryption — and drives `rounds` back-to-back rounds of concurrent
// participants through it. Delivery is asynchronous (outbox + batched
// forwarding), so the measured window runs until the aggregation server
// has closed every round, not merely until the proxy acknowledged the
// sends.
func RunShardedPerf(modelName string, arch nn.Arch, participants, k, shards int, cascade bool, rounds int, seed int64) (ShardedPerfResult, error) {
	if participants <= 0 {
		return ShardedPerfResult{}, fmt.Errorf("experiment: sharded perf requires participants > 0")
	}
	if rounds <= 0 {
		rounds = 1
	}
	platform, err := enclave.NewPlatform()
	if err != nil {
		return ShardedPerfResult{}, err
	}
	frontEncl, err := enclave.New(enclave.Config{CodeIdentity: "mixnn-proxy-shard-front"}, platform)
	if err != nil {
		return ShardedPerfResult{}, err
	}

	agg, err := proxy.NewAggServer(arch.New(seed).SnapshotParams(), participants)
	if err != nil {
		return ShardedPerfResult{}, err
	}
	aggSrv := httptest.NewServer(agg.Handler())
	defer aggSrv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	frontCfg := proxy.ShardedConfig{Upstream: aggSrv.URL, K: k, RoundSize: participants, Shards: shards, Seed: seed}
	if cascade {
		hopEncl, err := enclave.New(enclave.Config{CodeIdentity: "mixnn-proxy-shard-hop"}, platform)
		if err != nil {
			return ShardedPerfResult{}, err
		}
		hopPx, err := proxy.NewSharded(proxy.ShardedConfig{
			Upstream: aggSrv.URL, K: k, RoundSize: participants, Shards: shards, Seed: seed + 1,
		}, hopEncl, platform)
		if err != nil {
			return ShardedPerfResult{}, err
		}
		defer hopPx.Close()
		hopSrv := httptest.NewServer(hopPx.Handler())
		defer hopSrv.Close()
		hopKey, err := proxy.AttestHop(ctx, hopSrv.URL, nil, platform.AttestationPublicKey(), hopEncl.Measurement())
		if err != nil {
			return ShardedPerfResult{}, err
		}
		frontCfg.Upstream, frontCfg.NextHop, frontCfg.NextHopKey = "", hopSrv.URL, hopKey
	}

	frontPx, err := proxy.NewSharded(frontCfg, frontEncl, platform)
	if err != nil {
		return ShardedPerfResult{}, err
	}
	defer frontPx.Close()
	frontSrv := httptest.NewServer(frontPx.Handler())
	defer frontSrv.Close()

	// Pre-build and pre-attest all participants so the timed window
	// contains only the rounds themselves.
	parts := make([]*proxy.Participant, participants)
	updates := make([][]nn.ParamSet, rounds)
	for i := range parts {
		parts[i] = proxy.NewParticipant(frontSrv.URL, aggSrv.URL, nil)
		if err := parts[i].Attest(ctx, platform.AttestationPublicKey(), frontEncl.Measurement()); err != nil {
			return ShardedPerfResult{}, err
		}
	}
	for r := range updates {
		updates[r] = make([]nn.ParamSet, participants)
		for i := range updates[r] {
			updates[r][i] = arch.New(seed + int64(r*participants+i) + 1).SnapshotParams()
		}
	}

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	start := time.Now()
	for r := 0; r < rounds; r++ {
		for i := 0; i < participants; i++ {
			wg.Add(1)
			go func(r, i int) {
				defer wg.Done()
				if err := parts[i].SendUpdate(ctx, updates[r][i]); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("experiment: sharded perf round %d update %d: %w", r, i, err)
					}
					mu.Unlock()
				}
			}(r, i)
		}
	}
	wg.Wait()
	if firstErr != nil {
		return ShardedPerfResult{}, firstErr
	}
	// Sends are acknowledged before delivery; the rounds close when the
	// delivery pipeline has drained into the server.
	for agg.Round() < rounds {
		select {
		case <-ctx.Done():
			return ShardedPerfResult{}, fmt.Errorf("experiment: sharded perf: %d of %d rounds closed: %w", agg.Round(), rounds, ctx.Err())
		case <-time.After(time.Millisecond):
		}
	}
	totalDur := time.Since(start)
	// Settle the delivery pipeline before reading counters: the server
	// closes a round inside the batch POST, an instant before the proxy
	// records the acknowledgement.
	if err := frontPx.Flush(ctx); err != nil {
		return ShardedPerfResult{}, err
	}

	st := frontPx.Status()
	received := make([]int, len(st.Shards))
	for i, sh := range st.Shards {
		received[i] = sh.Received
	}
	return ShardedPerfResult{
		Model:         modelName,
		Participants:  participants,
		Shards:        shards,
		K:             k,
		Cascade:       cascade,
		Rounds:        rounds,
		UpdateBytes:   st.UpdateBytes,
		RoundMillis:   totalDur.Seconds() * 1000 / float64(rounds),
		UpdatesPerSec: float64(rounds*participants) / totalDur.Seconds(),
		ProcessMillis: st.ProcessMillis,
		BatchesSent:   st.BatchesSent,
		ShardReceived: received,
	}, nil
}
