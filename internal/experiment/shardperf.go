package experiment

import (
	"context"
	"fmt"
	"net/http/httptest"
	"sync"
	"time"

	"mixnn/internal/client"
	"mixnn/internal/enclave"
	"mixnn/internal/nn"
	"mixnn/internal/proxy"
	"mixnn/internal/route"
	"mixnn/internal/transport"
)

// ShardedPerfResult reports one sharded-tier throughput experiment: one
// or more rounds of concurrent participants through P mixing shards
// (optionally cascaded through a second mixing hop) into the aggregation
// server.
type ShardedPerfResult struct {
	Model        string
	Participants int
	Shards       int
	K            int
	Cascade      bool
	// Rounds is how many back-to-back rounds were driven. With more than
	// one, the tier's cross-round pipelining is exercised: round N+1 is
	// ingested while round N's batch is still being delivered.
	Rounds int
	// Topology names the routing-plane arm: "sticky" (default),
	// "round-robin", "hash-quota", or "remote" (every shard is its own
	// proxy process with its own enclave — the multi-process tier).
	Topology string
	// Transport names the transport arm: "http" (real sockets on
	// loopback) or "loopback" (the in-process typed transport — the same
	// pipeline at hardware speed, isolating the mixer's own cost from
	// HTTP framing and socket copies).
	Transport string
	// UpdateBytes is the plaintext size of one encoded update.
	UpdateBytes int
	// RoundMillis is the mean wall-clock time per round, from the first
	// send to closure of the final round at the aggregation server (all
	// sends run concurrently, so this measures tier throughput rather
	// than per-update latency).
	RoundMillis float64
	// UpdatesPerSec is Rounds×Participants divided by the total duration
	// in seconds.
	UpdatesPerSec float64
	// ProcessMillis is the front tier's mean in-enclave processing time.
	ProcessMillis float64
	// BatchesSent counts the front tier's batch deliveries (one per
	// round when batching is on).
	BatchesSent int
	// ShardReceived is the per-shard ingest distribution of the front tier.
	ShardReceived []int
}

// perfNet abstracts how the experiment's tiers are served: over real
// HTTP listeners, or registered in one in-process Loopback.
type perfNet struct {
	lb      *transport.Loopback // nil = HTTP
	tr      transport.Transport // what senders (proxies, participants) use
	cleanup []func()
}

func newPerfNet(kind string) (*perfNet, error) {
	switch kind {
	case "", "http":
		return &perfNet{tr: nil}, nil // nil Transport = each tier's default HTTP
	case "loopback":
		lb := transport.NewLoopback()
		return &perfNet{lb: lb, tr: lb}, nil
	default:
		return nil, fmt.Errorf("experiment: unknown transport %q (want http or loopback)", kind)
	}
}

// serve exposes a typed server under a stable name and returns its
// endpoint: a registry name over Loopback, a listener URL over HTTP.
func (pn *perfNet) serve(name string, s transport.Server) string {
	if pn.lb != nil {
		pn.lb.Register(name, s)
		return name
	}
	srv := httptest.NewServer(transport.NewHandler(s))
	pn.cleanup = append(pn.cleanup, srv.Close)
	return srv.URL
}

func (pn *perfNet) close() {
	for i := len(pn.cleanup) - 1; i >= 0; i-- {
		pn.cleanup[i]()
	}
}

// RunShardedPerf stands up the sharded mixing tier — optionally
// cascaded through a second mixing proxy with per-hop re-encryption —
// and drives `rounds` back-to-back rounds of concurrent participants
// through it over HTTP. Delivery is asynchronous (outbox + batched
// forwarding), so the measured window runs until the aggregation server
// has closed every round, not merely until the proxy acknowledged the
// sends.
func RunShardedPerf(modelName string, arch nn.Arch, participants, k, shards int, cascade bool, rounds int, seed int64) (ShardedPerfResult, error) {
	return RunShardedPerfTransport(modelName, arch, participants, k, shards, cascade, rounds, "", "http", seed)
}

// RunShardedPerfTopology is RunShardedPerf with a routing-plane arm:
// topology selects the routing mode ("sticky", "round-robin",
// "hash-quota") or, with "remote", deploys every shard as its OWN proxy
// behind the front tier — one enclave per shard, the material relayed to
// each shard re-encrypted for that shard's enclave — measuring the
// multi-process deployment the routing plane unlocks.
func RunShardedPerfTopology(modelName string, arch nn.Arch, participants, k, shards int, cascade bool, rounds int, topology string, seed int64) (ShardedPerfResult, error) {
	return RunShardedPerfTransport(modelName, arch, participants, k, shards, cascade, rounds, topology, "http", seed)
}

// RunShardedPerfTransport is the full experiment surface: routing-plane
// arm × transport arm. With transportKind "loopback" the whole
// deployment — participants, front tier, optional cascade hop or remote
// shard proxies, and the aggregation server — runs over the in-process
// typed transport: the identical pipeline (same enclave crypto, same
// mixing, same outbox delivery) minus HTTP framing and socket copies,
// which is the apples-to-apples measurement of the mixer's own cost.
func RunShardedPerfTransport(modelName string, arch nn.Arch, participants, k, shards int, cascade bool, rounds int, topology, transportKind string, seed int64) (ShardedPerfResult, error) {
	if participants <= 0 {
		return ShardedPerfResult{}, fmt.Errorf("experiment: sharded perf requires participants > 0")
	}
	if rounds <= 0 {
		rounds = 1
	}
	remote := topology == "remote"
	routing := route.ModeSticky
	if !remote && topology != "" {
		var err error
		if routing, err = route.ParseMode(topology); err != nil {
			return ShardedPerfResult{}, err
		}
	}
	if remote && cascade {
		return ShardedPerfResult{}, fmt.Errorf("experiment: -topology remote and -cascade are mutually exclusive")
	}
	pn, err := newPerfNet(transportKind)
	if err != nil {
		return ShardedPerfResult{}, err
	}
	defer pn.close()
	platform, err := enclave.NewPlatform()
	if err != nil {
		return ShardedPerfResult{}, err
	}
	frontEncl, err := enclave.New(enclave.Config{CodeIdentity: "mixnn-proxy-shard-front"}, platform)
	if err != nil {
		return ShardedPerfResult{}, err
	}

	agg, err := proxy.NewAggServer(arch.New(seed).SnapshotParams(), participants)
	if err != nil {
		return ShardedPerfResult{}, err
	}
	aggEP := pn.serve("loop://agg", agg)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	frontCfg := proxy.ShardedConfig{
		Upstream: aggEP, K: k, RoundSize: participants, Shards: shards,
		Routing: routing, Seed: seed, Transport: pn.tr,
	}
	if remote {
		// One proxy per shard, each hosting its own enclave: the front
		// tier routes by hash-quota and relays each shard's material
		// re-encrypted for that shard's enclave.
		topo, err := route.Uniform(0, route.ModeHashQuota, participants, shards)
		if err != nil {
			return ShardedPerfResult{}, err
		}
		specs := make([]route.ShardSpec, shards)
		remotes := make(map[string]proxy.RemoteShard, shards)
		for s := 0; s < shards; s++ {
			shardEncl, err := enclave.New(enclave.Config{CodeIdentity: fmt.Sprintf("mixnn-proxy-shard-%d", s)}, platform)
			if err != nil {
				return ShardedPerfResult{}, err
			}
			shardPx, err := proxy.NewSharded(proxy.ShardedConfig{
				Upstream: aggEP, K: k, RoundSize: topo.Quota(s), Shards: 1,
				Seed: seed + int64(s) + 1, Transport: pn.tr,
			}, shardEncl, platform)
			if err != nil {
				return ShardedPerfResult{}, err
			}
			defer shardPx.Close()
			shardEP := pn.serve(fmt.Sprintf("loop://shard-%d", s), shardPx)
			key, err := attestHop(ctx, pn, shardEP, platform, shardEncl)
			if err != nil {
				return ShardedPerfResult{}, err
			}
			specs[s] = route.ShardSpec{Addr: shardEP}
			remotes[shardEP] = proxy.RemoteShard{Key: key}
		}
		frontCfg.Shards = 0
		frontCfg.Routing = route.ModeHashQuota
		frontCfg.ShardSpecs = specs
		frontCfg.RemoteShards = remotes
	}
	if cascade {
		hopEncl, err := enclave.New(enclave.Config{CodeIdentity: "mixnn-proxy-shard-hop"}, platform)
		if err != nil {
			return ShardedPerfResult{}, err
		}
		hopPx, err := proxy.NewSharded(proxy.ShardedConfig{
			Upstream: aggEP, K: k, RoundSize: participants, Shards: shards,
			Seed: seed + 1, Transport: pn.tr,
		}, hopEncl, platform)
		if err != nil {
			return ShardedPerfResult{}, err
		}
		defer hopPx.Close()
		hopEP := pn.serve("loop://hop", hopPx)
		hopKey, err := attestHop(ctx, pn, hopEP, platform, hopEncl)
		if err != nil {
			return ShardedPerfResult{}, err
		}
		frontCfg.Upstream, frontCfg.NextHop, frontCfg.NextHopKey = "", hopEP, hopKey
	}

	frontPx, err := proxy.NewSharded(frontCfg, frontEncl, platform)
	if err != nil {
		return ShardedPerfResult{}, err
	}
	defer frontPx.Close()
	frontEP := pn.serve("loop://front", frontPx)

	// Pre-build and pre-attest all participants so the timed window
	// contains only the rounds themselves.
	parts := make([]*client.Participant, participants)
	updates := make([][]nn.ParamSet, rounds)
	for i := range parts {
		if parts[i], err = client.New(client.Config{
			Proxies: []string{frontEP}, Server: aggEP, Transport: pn.tr,
		}); err != nil {
			return ShardedPerfResult{}, err
		}
		if err := parts[i].Attest(ctx, platform.AttestationPublicKey(), frontEncl.Measurement()); err != nil {
			return ShardedPerfResult{}, err
		}
	}
	for r := range updates {
		updates[r] = make([]nn.ParamSet, participants)
		for i := range updates[r] {
			updates[r][i] = arch.New(seed + int64(r*participants+i) + 1).SnapshotParams()
		}
	}

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	start := time.Now()
	for r := 0; r < rounds; r++ {
		for i := 0; i < participants; i++ {
			wg.Add(1)
			go func(r, i int) {
				defer wg.Done()
				if err := parts[i].SendUpdate(ctx, updates[r][i]); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("experiment: sharded perf round %d update %d: %w", r, i, err)
					}
					mu.Unlock()
				}
			}(r, i)
		}
	}
	wg.Wait()
	if firstErr != nil {
		return ShardedPerfResult{}, firstErr
	}
	// Sends are acknowledged before delivery; the rounds close when the
	// delivery pipeline has drained into the server.
	for agg.Round() < rounds {
		select {
		case <-ctx.Done():
			return ShardedPerfResult{}, fmt.Errorf("experiment: sharded perf: %d of %d rounds closed: %w", agg.Round(), rounds, ctx.Err())
		case <-time.After(time.Millisecond):
		}
	}
	totalDur := time.Since(start)
	// Settle the delivery pipeline before reading counters: the server
	// closes a round inside the batch delivery, an instant before the
	// proxy records the acknowledgement.
	if err := frontPx.Flush(ctx); err != nil {
		return ShardedPerfResult{}, err
	}

	st := frontPx.Status()
	received := make([]int, len(st.Shards))
	for i, sh := range st.Shards {
		received[i] = sh.Received
	}
	label := topology
	if label == "" {
		label = route.ModeSticky.String()
	}
	trLabel := transportKind
	if trLabel == "" {
		trLabel = "http"
	}
	return ShardedPerfResult{
		Model:         modelName,
		Participants:  participants,
		Shards:        shards,
		K:             k,
		Cascade:       cascade,
		Rounds:        rounds,
		Topology:      label,
		Transport:     trLabel,
		UpdateBytes:   st.UpdateBytes,
		RoundMillis:   totalDur.Seconds() * 1000 / float64(rounds),
		UpdatesPerSec: float64(rounds*participants) / totalDur.Seconds(),
		ProcessMillis: st.ProcessMillis,
		BatchesSent:   st.BatchesSent,
		ShardReceived: received,
	}, nil
}

// attestHop runs the proxy-to-proxy attestation handshake over the
// experiment's transport.
func attestHop(ctx context.Context, pn *perfNet, ep string, platform *enclave.Platform, encl *enclave.Enclave) (*enclave.HopKey, error) {
	tr := pn.tr
	if tr == nil {
		tr = transport.NewHTTP(nil)
	}
	return proxy.AttestHopOver(ctx, tr, ep, platform.AttestationPublicKey(), encl.Measurement())
}
