package experiment

import (
	"context"
	"fmt"
	"net/http/httptest"
	"sync"
	"time"

	"mixnn/internal/enclave"
	"mixnn/internal/nn"
	"mixnn/internal/proxy"
)

// ShardedPerfResult reports one sharded-tier throughput experiment: a full
// round of concurrent participants through P mixing shards (optionally
// cascaded through a second mixing hop) into the aggregation server.
type ShardedPerfResult struct {
	Model        string
	Participants int
	Shards       int
	K            int
	Cascade      bool
	// UpdateBytes is the plaintext size of one encoded update.
	UpdateBytes int
	// RoundMillis is the wall-clock time from the first send to round
	// closure at the aggregation server (all sends run concurrently, so
	// this measures tier throughput rather than per-update latency).
	RoundMillis float64
	// UpdatesPerSec is Participants divided by the round duration in
	// seconds.
	UpdatesPerSec float64
	// ProcessMillis is the front tier's mean in-enclave processing time.
	ProcessMillis float64
	// ShardReceived is the per-shard ingest distribution of the front tier.
	ShardReceived []int
}

// RunShardedPerf stands up the sharded mixing tier over real HTTP —
// optionally cascaded through a second mixing proxy with per-hop
// re-encryption — and drives one round of concurrent participants
// through it.
func RunShardedPerf(modelName string, arch nn.Arch, participants, k, shards int, cascade bool, seed int64) (ShardedPerfResult, error) {
	if participants <= 0 {
		return ShardedPerfResult{}, fmt.Errorf("experiment: sharded perf requires participants > 0")
	}
	platform, err := enclave.NewPlatform()
	if err != nil {
		return ShardedPerfResult{}, err
	}
	frontEncl, err := enclave.New(enclave.Config{CodeIdentity: "mixnn-proxy-shard-front"}, platform)
	if err != nil {
		return ShardedPerfResult{}, err
	}

	agg, err := proxy.NewAggServer(arch.New(seed).SnapshotParams(), participants)
	if err != nil {
		return ShardedPerfResult{}, err
	}
	aggSrv := httptest.NewServer(agg.Handler())
	defer aggSrv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	frontCfg := proxy.ShardedConfig{Upstream: aggSrv.URL, K: k, RoundSize: participants, Shards: shards, Seed: seed}
	if cascade {
		hopEncl, err := enclave.New(enclave.Config{CodeIdentity: "mixnn-proxy-shard-hop"}, platform)
		if err != nil {
			return ShardedPerfResult{}, err
		}
		hopPx, err := proxy.NewSharded(proxy.ShardedConfig{
			Upstream: aggSrv.URL, K: k, RoundSize: participants, Shards: shards, Seed: seed + 1,
		}, hopEncl, platform)
		if err != nil {
			return ShardedPerfResult{}, err
		}
		hopSrv := httptest.NewServer(hopPx.Handler())
		defer hopSrv.Close()
		hopKey, err := proxy.AttestHop(ctx, hopSrv.URL, nil, platform.AttestationPublicKey(), hopEncl.Measurement())
		if err != nil {
			return ShardedPerfResult{}, err
		}
		frontCfg.Upstream, frontCfg.NextHop, frontCfg.NextHopKey = "", hopSrv.URL, hopKey
	}

	frontPx, err := proxy.NewSharded(frontCfg, frontEncl, platform)
	if err != nil {
		return ShardedPerfResult{}, err
	}
	frontSrv := httptest.NewServer(frontPx.Handler())
	defer frontSrv.Close()

	// Pre-build and pre-attest all participants so the timed window
	// contains only the round itself.
	parts := make([]*proxy.Participant, participants)
	updates := make([]nn.ParamSet, participants)
	for i := range parts {
		parts[i] = proxy.NewParticipant(frontSrv.URL, aggSrv.URL, nil)
		if err := parts[i].Attest(ctx, platform.AttestationPublicKey(), frontEncl.Measurement()); err != nil {
			return ShardedPerfResult{}, err
		}
		updates[i] = arch.New(seed + int64(i) + 1).SnapshotParams()
	}

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	start := time.Now()
	for i := 0; i < participants; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := parts[i].SendUpdate(ctx, updates[i]); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = fmt.Errorf("experiment: sharded perf update %d: %w", i, err)
				}
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	roundDur := time.Since(start)
	if firstErr != nil {
		return ShardedPerfResult{}, firstErr
	}
	if agg.Round() != 1 {
		return ShardedPerfResult{}, fmt.Errorf("experiment: sharded perf round did not close (round=%d)", agg.Round())
	}

	st := frontPx.Status()
	received := make([]int, len(st.Shards))
	for i, sh := range st.Shards {
		received[i] = sh.Received
	}
	return ShardedPerfResult{
		Model:         modelName,
		Participants:  participants,
		Shards:        shards,
		K:             k,
		Cascade:       cascade,
		UpdateBytes:   st.UpdateBytes,
		RoundMillis:   roundDur.Seconds() * 1000,
		UpdatesPerSec: float64(participants) / roundDur.Seconds(),
		ProcessMillis: st.ProcessMillis,
		ShardReceived: received,
	}, nil
}
