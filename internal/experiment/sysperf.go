package experiment

import (
	"context"
	"fmt"
	"net/http/httptest"
	"time"

	"mixnn/internal/enclave"
	"mixnn/internal/nn"
	"mixnn/internal/proxy"
)

// PerfResult reproduces the §6.5 system-performance table for one model:
// per-update size and the decomposition of proxy processing time into
// decryption, storage and mixing, plus enclave memory pressure.
type PerfResult struct {
	Model        string
	Participants int
	K            int
	// UpdateBytes is the plaintext size of one encoded update (the
	// paper's "each update consumes 26.9MB inside the enclave").
	UpdateBytes int
	// Mean per-update stage latencies in milliseconds.
	DecryptMillis float64
	StoreMillis   float64
	MixMillis     float64
	ProcessMillis float64
	// EnclavePeakBytes is the peak simulated EPC usage.
	EnclavePeakBytes int
	// PageEvents counts simulated EPC paging events.
	PageEvents int
	// EndToEndMillis is the mean wall-clock time from posting an
	// encrypted update to the proxy acknowledging it (includes upstream
	// forwarding — the paper's "end-to-end latency").
	EndToEndMillis float64
}

// RunSystemPerf stands up a real HTTP aggregation server and MixNN proxy,
// streams `participants` encrypted updates of the given architecture
// through them, and reports the proxy's instrumentation.
func RunSystemPerf(modelName string, arch nn.Arch, participants, k int, seed int64) (PerfResult, error) {
	if participants <= 0 {
		return PerfResult{}, fmt.Errorf("experiment: sysperf requires participants > 0")
	}
	platform, err := enclave.NewPlatform()
	if err != nil {
		return PerfResult{}, err
	}
	encl, err := enclave.New(enclave.Config{CodeIdentity: "mixnn-proxy-sysperf"}, platform)
	if err != nil {
		return PerfResult{}, err
	}

	agg, err := proxy.NewAggServer(arch.New(seed).SnapshotParams(), participants)
	if err != nil {
		return PerfResult{}, err
	}
	aggSrv := httptest.NewServer(agg.Handler())
	defer aggSrv.Close()

	px, err := proxy.New(proxy.Config{Upstream: aggSrv.URL, K: k, RoundSize: participants, Seed: seed}, encl, platform)
	if err != nil {
		return PerfResult{}, err
	}
	defer px.Close()
	pxSrv := httptest.NewServer(px.Handler())
	defer pxSrv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	part := proxy.NewParticipant(pxSrv.URL, aggSrv.URL, nil)
	if err := part.Attest(ctx, platform.AttestationPublicKey(), encl.Measurement()); err != nil {
		return PerfResult{}, err
	}

	var totalSend time.Duration
	for i := 0; i < participants; i++ {
		update := arch.New(seed + int64(i) + 1).SnapshotParams()
		start := time.Now()
		if err := part.SendUpdate(ctx, update); err != nil {
			return PerfResult{}, fmt.Errorf("experiment: sysperf update %d: %w", i, err)
		}
		totalSend += time.Since(start)
	}
	// Drain the delivery pipeline so the reported counters are settled.
	if err := px.Flush(ctx); err != nil {
		return PerfResult{}, err
	}

	st := px.Status()
	return PerfResult{
		Model:            modelName,
		Participants:     participants,
		K:                st.K,
		UpdateBytes:      st.UpdateBytes,
		DecryptMillis:    st.DecryptMillis,
		StoreMillis:      st.StoreMillis,
		MixMillis:        st.MixMillis,
		ProcessMillis:    st.ProcessMillis,
		EnclavePeakBytes: st.EnclavePeak,
		PageEvents:       st.EnclavePaging,
		EndToEndMillis:   totalSend.Seconds() * 1000 / float64(participants),
	}, nil
}

// PerfModels returns the two §6.5 model variants: the CIFAR architecture
// (two conv + three FC) and the larger three-conv variant the paper uses
// to show cost grows with model size.
func PerfModels(scale Scale) []struct {
	Name string
	Arch nn.Arch
} {
	dim := 32
	f1, f2, h1, h2 := 8, 16, 64, 32
	if scale == ScaleQuick {
		dim, f1, f2, h1, h2 = 16, 4, 8, 32, 16
	}
	base := nn.ConvNetConfig{
		InC: 3, InH: dim, InW: dim, Classes: 10,
		Filters1: f1, Filters2: f2, Hidden1: h1, Hidden2: h2,
		PoolH1: 2, PoolW1: 2, PoolH2: 2, PoolW2: 2,
	}
	withConv3 := base
	withConv3.Conv3 = f2 * 2
	return []struct {
		Name string
		Arch nn.Arch
	}{
		{"2conv+3fc", nn.NewConvNet("sysperf-2conv", base)},
		{"3conv+3fc", nn.NewConvNet("sysperf-3conv", withConv3)},
	}
}
