package experiment

import (
	"fmt"

	"mixnn/internal/fl"
	"mixnn/internal/nn"
	"mixnn/internal/stats"
	"mixnn/internal/tensor"
)

// NeighbourResult is the outcome of the Figure 9 robustness analysis: for
// each participant, how many other participants produced a gradient within
// the given Euclidean radius in the same round. Many close neighbours mean
// a malicious server cannot re-associate mixed layers by update proximity.
// DefaultNeighbourRadius is the Euclidean threshold on unit-normalised
// update directions. The paper uses 0.5 in its raw coordinate scale; after
// unit normalisation two directions are within 1.0 exactly when their
// cosine similarity is at least 0.5, which is the scale-free analogue
// (orthogonal directions sit at sqrt(2) ≈ 1.41).
const DefaultNeighbourRadius = 1.0

type NeighbourResult struct {
	Dataset string
	// Radius is the Euclidean threshold applied to unit-normalised update
	// directions.
	Radius float64
	// Neighbours[i] counts participants within Radius of participant i.
	Neighbours []int
	// CDF is the cumulative distribution over participants.
	CDF []stats.Point
}

// RunNeighbours executes the Figure 9 experiment: one honest federated
// round, then pairwise distances between the participants' update
// directions. Directions are normalised to unit L2 norm so the radius is
// scale-free (the paper's absolute 0.5 presumes its fixed model scale; see
// EXPERIMENTS.md).
func RunNeighbours(spec DatasetSpec, radius float64, seed int64) (NeighbourResult, error) {
	if radius <= 0 {
		radius = DefaultNeighbourRadius
	}
	sim, _, err := BuildFederation(spec, Arm{Key: "fl", Transform: fl.Identity{}}, seed)
	if err != nil {
		return NeighbourResult{}, err
	}
	global := sim.Server.Global()

	// One round of local training, observing the raw (unmixed) updates.
	rec := &captureObserver{}
	sim.Observer = rec
	if _, err := sim.RunRound(0); err != nil {
		return NeighbourResult{}, fmt.Errorf("experiment: neighbours %s: %w", spec.Key, err)
	}

	dirs := make([]*tensor.Tensor, len(rec.updates))
	for i, u := range rec.updates {
		d := u.Clone().Sub(global).Flatten()
		if n := d.Norm(); n > 0 {
			d.Scale(1 / n)
		}
		dirs[i] = d
	}

	res := NeighbourResult{Dataset: spec.Key, Radius: radius, Neighbours: make([]int, len(dirs))}
	for i := range dirs {
		for j := range dirs {
			if i == j {
				continue
			}
			if tensor.EuclideanDistance(dirs[i], dirs[j]) <= radius {
				res.Neighbours[i]++
			}
		}
	}
	counts := make([]float64, len(res.Neighbours))
	for i, n := range res.Neighbours {
		counts[i] = float64(n)
	}
	res.CDF = stats.CDF(counts)
	return res, nil
}

// captureObserver records the updates of the observed round.
type captureObserver struct{ updates []nn.ParamSet }

var _ fl.Observer = (*captureObserver)(nil)

// ObserveRound implements fl.Observer.
func (c *captureObserver) ObserveRound(rec fl.RoundRecord) { c.updates = rec.Updates }
