package experiment

import (
	"fmt"

	"mixnn/internal/core"
	"mixnn/internal/fl"
	"mixnn/internal/privacy"
)

// AblationResult is one row of an ablation study: a configuration label
// plus the utility and leakage it produces.
type AblationResult struct {
	Study   string
	Config  string
	Utility float64 // final mean model accuracy
	Leakage float64 // final active-∇Sim inference accuracy
	Chance  float64 // random-guess level for the leakage column
}

// RunAblations executes the four design-choice studies of DESIGN.md §9 on
// one dataset spec and returns all rows:
//
//  1. mixing granularity (layer / tensor / model),
//  2. streaming buffer size k,
//  3. active vs passive ∇Sim (on the unprotected arm),
//  4. noise scale of the local-DP baseline.
func RunAblations(spec DatasetSpec, seed int64) ([]AblationResult, error) {
	var out []AblationResult

	evalArm := func(study, config string, arm Arm, active bool) error {
		util, err := RunUtility(spec, arm, seed)
		if err != nil {
			return fmt.Errorf("experiment: ablation %s/%s utility: %w", study, config, err)
		}
		inf, err := RunInference(spec, arm, active, 1, seed)
		if err != nil {
			return fmt.Errorf("experiment: ablation %s/%s inference: %w", study, config, err)
		}
		out = append(out, AblationResult{
			Study:   study,
			Config:  config,
			Utility: util.FinalAccuracy(),
			Leakage: inf.FinalAccuracy(),
			Chance:  inf.Chance,
		})
		return nil
	}

	// 1. Granularity.
	for _, g := range []core.Granularity{core.GranularityLayer, core.GranularityTensor, core.GranularityModel} {
		arm := Arm{Key: "mixnn-" + g.String(), Transform: core.Transform{Granularity: g}}
		if err := evalArm("granularity", g.String(), arm, true); err != nil {
			return nil, err
		}
	}

	// 2. Streaming buffer size.
	population := len(spec.Source.Participants(seed))
	for _, k := range []int{2, population / 2, population} {
		if k < 1 {
			k = 1
		}
		if err := evalArm("buffer-k", fmt.Sprintf("k=%d", k), StreamArm(k), true); err != nil {
			return nil, err
		}
	}

	// 3. Active vs passive on the unprotected arm.
	flArm := Arm{Key: "fl", Transform: fl.Identity{}}
	if err := evalArm("attack-mode", "active", flArm, true); err != nil {
		return nil, err
	}
	if err := evalArm("attack-mode", "passive", flArm, false); err != nil {
		return nil, err
	}

	// 4. Noise scale.
	for _, sigma := range []float64{0.01, 0.1, privacy.DefaultSigma} {
		arm := Arm{Key: "noisy", Transform: privacy.NoisyTransform{Sigma: sigma}}
		if err := evalArm("noise-scale", fmt.Sprintf("sigma=%.2f", sigma), arm, true); err != nil {
			return nil, err
		}
	}

	return out, nil
}
