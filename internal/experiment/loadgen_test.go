package experiment

import (
	"testing"
	"time"
)

// TestLoadgenSmoke runs the whole churn script — calm waves, a
// sync_peers directive, a dead relay, session churn, a cascade reshard
// under load, a mid-wave front failover, recovery and fillers — at CI
// scale, and requires the zero-loss conservation check to pass. The
// full-scale run lives in cmd/loadgen; this pins that the script and
// its accounting survive the race detector.
func TestLoadgenSmoke(t *testing.T) {
	res, err := RunLoadgen(LoadgenConfig{
		Participants: 24, FrontRound: 12, K: 2, Waves: 4,
		QueueDepth: 16, Workers: 4,
		StragglerFrac: 0.2, DisconnectFrac: 0.1,
		RSABits: 1024, Seed: 7, Timeout: 2 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.ConservationOK {
		t.Fatal("conservation check failed")
	}
	if res.TotalUpdates < 24*4 {
		t.Fatalf("acked %d updates, want at least %d", res.TotalUpdates, 24*4)
	}
	if res.AggRounds*res.Quota != res.TotalUpdates {
		t.Fatalf("agg closed %d rounds of %d, want exactly %d updates", res.AggRounds, res.Quota, res.TotalUpdates)
	}
	if res.UpdatesPerSec <= 0 || res.SendMsP50 <= 0 {
		t.Fatalf("degenerate metrics: %+v", res)
	}
}
