package experiment

import "testing"

func TestRunAblations(t *testing.T) {
	spec := smallSpec(t, "cifar10")
	spec.FL.Rounds = 2
	rows, err := RunAblations(spec, 3)
	if err != nil {
		t.Fatal(err)
	}
	// 3 granularities + 3 buffer sizes + 2 attack modes + 3 noise scales.
	if len(rows) != 11 {
		t.Fatalf("ablation rows = %d, want 11", len(rows))
	}
	studies := map[string]int{}
	for _, r := range rows {
		studies[r.Study]++
		if r.Utility < 0 || r.Utility > 1 || r.Leakage < 0 || r.Leakage > 1 {
			t.Fatalf("row out of range: %+v", r)
		}
	}
	for study, want := range map[string]int{
		"granularity": 3, "buffer-k": 3, "attack-mode": 2, "noise-scale": 3,
	} {
		if studies[study] != want {
			t.Fatalf("study %q has %d rows, want %d", study, studies[study], want)
		}
	}

	// The headline ablation claims:
	byConfig := map[string]AblationResult{}
	for _, r := range rows {
		byConfig[r.Study+"/"+r.Config] = r
	}
	// All mixing granularities defeat the per-slot scoring attack (even
	// whole-model permutation unlinks identities; layer mixing
	// additionally resists re-association — Figure 9). The unprotected
	// active arm must leak clearly more than layer mixing.
	layer := byConfig["granularity/layer"]
	active := byConfig["attack-mode/active"]
	if active.Leakage <= layer.Leakage {
		t.Fatalf("unprotected active attack (%.3f) should leak more than layer mixing (%.3f)",
			active.Leakage, layer.Leakage)
	}
	// The paper's N(0,1) noise must hurt utility more than sigma=0.01.
	small := byConfig["noise-scale/sigma=0.01"]
	big := byConfig["noise-scale/sigma=1.00"]
	if big.Utility >= small.Utility {
		t.Fatalf("sigma=1 utility (%.3f) not worse than sigma=0.01 (%.3f)", big.Utility, small.Utility)
	}
}
