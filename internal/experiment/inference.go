package experiment

import (
	"fmt"

	"mixnn/internal/attack"
)

// InferenceResult is the outcome of a Figure 7/8 run: ∇Sim inference
// accuracy after each learning round for one dataset and arm.
type InferenceResult struct {
	Dataset string
	Arm     string
	Active  bool
	// Ratio is the background-knowledge ratio used (Figure 8's x-axis).
	Ratio float64
	// InferenceAccuracy[r] is the attack accuracy after observing r+1
	// rounds (scores accumulate, §5).
	InferenceAccuracy []float64
	// Chance is the random-guess accuracy (majority attribute class share)
	// against which leakage is judged.
	Chance float64
}

// FinalAccuracy returns the accuracy after the last observed round.
func (r InferenceResult) FinalAccuracy() float64 {
	if len(r.InferenceAccuracy) == 0 {
		return 0
	}
	return r.InferenceAccuracy[len(r.InferenceAccuracy)-1]
}

// RunInference executes the Figure 7 experiment (and, with ratio < 1, one
// point of the Figure 8 sweep): federated training under a ∇Sim adversary,
// recording inference accuracy round by round.
func RunInference(spec DatasetSpec, arm Arm, active bool, ratio float64, seed int64) (InferenceResult, error) {
	sim, attrs, err := BuildFederation(spec, arm, seed)
	if err != nil {
		return InferenceResult{}, err
	}
	if ratio <= 0 {
		ratio = 1
	}
	adv, err := attack.New(attack.Config{
		Arch:            spec.Arch,
		Source:          spec.Source,
		AuxPerClass:     spec.AuxPerClass,
		BackgroundRatio: ratio,
		Epochs:          spec.AttackEpochs,
		BatchSize:       spec.FL.BatchSize,
		LearningRate:    spec.FL.LearningRate,
		Optimizer:       spec.FL.Optimizer,
		Active:          active,
		Seed:            seed ^ 0x517cc1b7,
	})
	if err != nil {
		return InferenceResult{}, err
	}
	sim.Observer = adv
	sim.Disseminate = adv.Disseminator()

	res := InferenceResult{
		Dataset: spec.Key,
		Arm:     arm.Key,
		Active:  active,
		Ratio:   ratio,
		Chance:  chanceLevel(attrs),
	}
	for r := 0; r < spec.FL.Rounds; r++ {
		if _, err := sim.RunRound(r); err != nil {
			return InferenceResult{}, fmt.Errorf("experiment: inference %s/%s round %d: %w", spec.Key, arm.Key, r, err)
		}
		acc, err := adv.Accuracy(attrs)
		if err != nil {
			return InferenceResult{}, err
		}
		res.InferenceAccuracy = append(res.InferenceAccuracy, acc)
	}
	return res, nil
}

// RunBackgroundSweep executes the Figure 8 experiment: final inference
// accuracy as a function of the background-knowledge ratio.
func RunBackgroundSweep(spec DatasetSpec, arm Arm, active bool, ratios []float64, seed int64) ([]InferenceResult, error) {
	if len(ratios) == 0 {
		ratios = []float64{0.2, 0.4, 0.6, 0.8, 1.0}
	}
	out := make([]InferenceResult, 0, len(ratios))
	for _, r := range ratios {
		res, err := RunInference(spec, arm, active, r, seed)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}

// chanceLevel returns the accuracy of always guessing the most common
// attribute class — the paper's "random guess" reference line.
func chanceLevel(attrs []int) float64 {
	if len(attrs) == 0 {
		return 0
	}
	counts := make(map[int]int)
	best := 0
	for _, a := range attrs {
		counts[a]++
		if counts[a] > best {
			best = counts[a]
		}
	}
	return float64(best) / float64(len(attrs))
}
