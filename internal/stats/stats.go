// Package stats provides the small statistics toolkit the experiments
// need: moments, CDFs, percentiles and simple text rendering of series.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Mean returns the arithmetic mean (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Std returns the population standard deviation (0 for fewer than two
// values).
func Std(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// MinMax returns the extrema (0,0 for an empty slice).
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// Percentile returns the p-th percentile (0 <= p <= 100) using linear
// interpolation between closest ranks.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Point is one (x, y) sample of a curve.
type Point struct{ X, Y float64 }

// CDF returns the empirical cumulative distribution of xs: for each sorted
// value v_i the fraction of values <= v_i.
func CDF(xs []float64) []Point {
	if len(xs) == 0 {
		return nil
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	out := make([]Point, len(sorted))
	for i, v := range sorted {
		out[i] = Point{X: v, Y: float64(i+1) / float64(len(sorted))}
	}
	return out
}

// CDFAt evaluates the empirical CDF of xs at x.
func CDFAt(xs []float64, x float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, v := range xs {
		if v <= x {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// Series is a named curve, used by the experiment tables.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// FormatSeriesTable renders several series sharing an x-axis as an aligned
// text table (one row per x value, one column per series).
func FormatSeriesTable(xLabel string, series []Series) string {
	if len(series) == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s", xLabel)
	for _, s := range series {
		fmt.Fprintf(&b, "%14s", s.Name)
	}
	b.WriteByte('\n')
	for i := range series[0].X {
		fmt.Fprintf(&b, "%-12.4g", series[0].X[i])
		for _, s := range series {
			if i < len(s.Y) {
				fmt.Fprintf(&b, "%14.4f", s.Y[i])
			} else {
				fmt.Fprintf(&b, "%14s", "-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Sparkline renders values as a compact unicode bar chart, for quick
// eyeballing of convergence curves in terminal output.
func Sparkline(xs []float64) string {
	if len(xs) == 0 {
		return ""
	}
	blocks := []rune("▁▂▃▄▅▆▇█")
	min, max := MinMax(xs)
	var b strings.Builder
	for _, x := range xs {
		idx := 0
		if max > min {
			idx = int((x - min) / (max - min) * float64(len(blocks)-1))
		}
		b.WriteRune(blocks[idx])
	}
	return b.String()
}
