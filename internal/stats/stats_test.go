package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestMeanStd(t *testing.T) {
	tests := []struct {
		name     string
		xs       []float64
		mean, sd float64
	}{
		{"empty", nil, 0, 0},
		{"single", []float64{5}, 5, 0},
		{"simple", []float64{1, 2, 3, 4}, 2.5, math.Sqrt(1.25)},
		{"constant", []float64{7, 7, 7}, 7, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Mean(tt.xs); math.Abs(got-tt.mean) > 1e-12 {
				t.Fatalf("Mean = %g, want %g", got, tt.mean)
			}
			if got := Std(tt.xs); math.Abs(got-tt.sd) > 1e-12 {
				t.Fatalf("Std = %g, want %g", got, tt.sd)
			}
		})
	}
}

func TestMinMax(t *testing.T) {
	min, max := MinMax([]float64{3, -1, 4, 1, 5})
	if min != -1 || max != 5 {
		t.Fatalf("MinMax = %g/%g, want -1/5", min, max)
	}
	if min, max := MinMax(nil); min != 0 || max != 0 {
		t.Fatalf("MinMax(nil) = %g/%g", min, max)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 10}, {100, 50}, {50, 30}, {25, 20}, {-5, 10}, {110, 50},
		{12.5, 15}, // interpolation between 10 and 20
	}
	for _, tt := range tests {
		if got := Percentile(xs, tt.p); math.Abs(got-tt.want) > 1e-12 {
			t.Fatalf("Percentile(%g) = %g, want %g", tt.p, got, tt.want)
		}
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Fatalf("Percentile(nil) = %g", got)
	}
}

func TestCDF(t *testing.T) {
	pts := CDF([]float64{3, 1, 2})
	if len(pts) != 3 {
		t.Fatalf("CDF points = %d, want 3", len(pts))
	}
	// Sorted x, monotone y ending at 1.
	for i := 1; i < len(pts); i++ {
		if pts[i].X < pts[i-1].X || pts[i].Y < pts[i-1].Y {
			t.Fatalf("CDF not monotone: %v", pts)
		}
	}
	if pts[len(pts)-1].Y != 1 {
		t.Fatalf("CDF does not end at 1: %v", pts)
	}
	if CDF(nil) != nil {
		t.Fatal("CDF(nil) != nil")
	}
}

func TestCDFAt(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := CDFAt(xs, 2.5); got != 0.5 {
		t.Fatalf("CDFAt(2.5) = %g, want 0.5", got)
	}
	if got := CDFAt(xs, 0); got != 0 {
		t.Fatalf("CDFAt(0) = %g, want 0", got)
	}
	if got := CDFAt(xs, 10); got != 1 {
		t.Fatalf("CDFAt(10) = %g, want 1", got)
	}
	if got := CDFAt(nil, 1); got != 0 {
		t.Fatalf("CDFAt(nil) = %g", got)
	}
}

func TestFormatSeriesTable(t *testing.T) {
	s := []Series{
		{Name: "fl", X: []float64{1, 2}, Y: []float64{0.5, 0.6}},
		{Name: "mixnn", X: []float64{1, 2}, Y: []float64{0.5, 0.61}},
	}
	out := FormatSeriesTable("round", s)
	if !strings.Contains(out, "fl") || !strings.Contains(out, "mixnn") {
		t.Fatalf("missing headers:\n%s", out)
	}
	if !strings.Contains(out, "0.6100") {
		t.Fatalf("missing value:\n%s", out)
	}
	if lines := strings.Count(out, "\n"); lines != 3 {
		t.Fatalf("lines = %d, want 3:\n%s", lines, out)
	}
	if FormatSeriesTable("x", nil) != "" {
		t.Fatal("empty series produced output")
	}
}

func TestSparkline(t *testing.T) {
	if got := Sparkline(nil); got != "" {
		t.Fatalf("Sparkline(nil) = %q", got)
	}
	out := Sparkline([]float64{0, 0.5, 1})
	if len([]rune(out)) != 3 {
		t.Fatalf("sparkline runes = %d, want 3", len([]rune(out)))
	}
	flat := Sparkline([]float64{2, 2, 2})
	if len([]rune(flat)) != 3 {
		t.Fatalf("flat sparkline runes = %d", len([]rune(flat)))
	}
}

// Property: the CDF evaluated at the maximum is 1 and percentiles are
// bounded by the extrema.
func TestQuickCDFBounds(t *testing.T) {
	f := func(xs []float64) bool {
		if len(xs) == 0 {
			return true
		}
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
		}
		min, max := MinMax(xs)
		if CDFAt(xs, max) != 1 {
			return false
		}
		for _, p := range []float64{0, 25, 50, 75, 100} {
			v := Percentile(xs, p)
			if v < min || v > max {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
