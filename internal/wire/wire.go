// Package wire defines the HTTP protocol spoken between participants, the
// MixNN proxy and the aggregation server, plus bounded-read helpers for
// handling untrusted bodies.
//
// Endpoints (all bodies are binary unless noted):
//
//	POST {proxy}/v1/update        encrypted update (enclave hybrid ciphertext)
//	POST {proxy}/v1/hop           re-encrypted mixed update from an upstream
//	                              proxy (cascade mode); X-Mixnn-Hop header
//	                              carries the hop depth
//	POST {server}/v1/update       plaintext encoded ParamSet (from the proxy)
//	GET  {server}/v1/model        current global model; X-Mixnn-Round header
//	GET  {server}/v1/status       JSON ServerStatus
//	GET  {proxy}/v1/attestation   JSON AttestationResponse (nonce query param)
//	GET  {proxy}/v1/status        JSON ShardedProxyStatus (every proxy is a
//	                              sharded tier; single proxies are Shards=1)
package wire

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
)

// Header names. Go canonicalises header keys, so these are the canonical
// forms.
const (
	HeaderRound  = "X-Mixnn-Round"
	HeaderClient = "X-Mixnn-Client"
	// HeaderHop carries the cascade depth of an inter-proxy update: the
	// first mixing proxy forwards with hop 1, the next with hop 2, and so
	// on. Proxies reject updates whose hop exceeds their configured bound,
	// which breaks forwarding loops.
	HeaderHop = "X-Mixnn-Hop"
	// HeaderShard reports, on proxy responses, which shard ingested the
	// update (diagnostics only; it reveals nothing beyond arrival order).
	HeaderShard = "X-Mixnn-Shard"
)

// ParseHop extracts the cascade depth from a request's HeaderHop value.
// A missing header means depth 0 (a participant update). Negative or
// non-numeric values are rejected.
func ParseHop(h http.Header) (int, error) {
	v := h.Get(HeaderHop)
	if v == "" {
		return 0, nil
	}
	hop, err := strconv.Atoi(v)
	if err != nil || hop < 0 {
		return 0, fmt.Errorf("wire: invalid %s header %q", HeaderHop, v)
	}
	return hop, nil
}

// ContentTypeUpdate is the content type of binary model updates.
const ContentTypeUpdate = "application/x-mixnn-update"

// MaxBodyBytes bounds request/response bodies (encrypted or encoded
// updates). 512 MiB accommodates the largest models the codec accepts.
const MaxBodyBytes = 512 << 20

// AttestationResponse carries the enclave report to participants.
type AttestationResponse struct {
	MeasurementHex string `json:"measurement"`
	NonceHex       string `json:"nonce"`
	PubKeyDER      []byte `json:"pub_key_der"`
	Signature      []byte `json:"signature"`
}

// ServerStatus reports aggregation-server progress.
type ServerStatus struct {
	Round          int `json:"round"`
	UpdatesInRound int `json:"updates_in_round"`
	ExpectPerRound int `json:"expect_per_round"`
}

// ProxyStatus is the single-proxy (§6.5) view of a tier's status, kept
// for the paper-shaped `proxy.Proxy` API; over HTTP every proxy now
// reports ShardedProxyStatus.
type ProxyStatus struct {
	Buffered      int     `json:"buffered"`
	Received      int     `json:"received"`
	Forwarded     int     `json:"forwarded"`
	RoundSize     int     `json:"round_size"`
	K             int     `json:"k"`
	UpdateBytes   int     `json:"update_bytes"`
	EnclaveUsed   int     `json:"enclave_used_bytes"`
	EnclavePeak   int     `json:"enclave_peak_bytes"`
	EnclavePaging int     `json:"enclave_page_events"`
	DecryptMillis float64 `json:"decrypt_ms_mean"`
	StoreMillis   float64 `json:"store_ms_mean"`
	MixMillis     float64 `json:"mix_ms_mean"`
	ProcessMillis float64 `json:"process_ms_mean"`
}

// ShardStatus reports one mixing shard inside a sharded proxy.
type ShardStatus struct {
	Shard    int `json:"shard"`
	K        int `json:"k"`
	Buffered int `json:"buffered"`
	Received int `json:"received"`
	Emitted  int `json:"emitted"`
}

// ShardedProxyStatus reports a sharded proxy tier: global round progress,
// cascade wiring and the per-shard mixer states.
type ShardedProxyStatus struct {
	Shards      []ShardStatus `json:"shards"`
	Received    int           `json:"received"`
	HopReceived int           `json:"hop_received"`
	Forwarded   int           `json:"forwarded"`
	Rounds      int           `json:"rounds"`
	InRound     int           `json:"in_round"`
	RoundSize   int           `json:"round_size"`
	NextHop     string        `json:"next_hop,omitempty"`
	MaxHops     int           `json:"max_hops"`
	// RestoredFrom is the shard count of the sealed blob this tier was
	// restored from, 0 if it started fresh; it differs from len(Shards)
	// when the restore resharded.
	RestoredFrom  int     `json:"restored_from,omitempty"`
	UpdateBytes   int     `json:"update_bytes"`
	EnclaveUsed   int     `json:"enclave_used_bytes"`
	EnclavePeak   int     `json:"enclave_peak_bytes"`
	EnclavePaging int     `json:"enclave_page_events"`
	DecryptMillis float64 `json:"decrypt_ms_mean"`
	StoreMillis   float64 `json:"store_ms_mean"`
	MixMillis     float64 `json:"mix_ms_mean"`
	ProcessMillis float64 `json:"process_ms_mean"`
}

// ReadBody reads an entire request/response body with the standard bound,
// failing loudly when the peer exceeds it.
func ReadBody(r io.Reader) ([]byte, error) {
	data, err := io.ReadAll(io.LimitReader(r, MaxBodyBytes+1))
	if err != nil {
		return nil, fmt.Errorf("wire: read body: %w", err)
	}
	if len(data) > MaxBodyBytes {
		return nil, fmt.Errorf("wire: body exceeds %d bytes", MaxBodyBytes)
	}
	return data, nil
}

// WriteJSON writes v as a JSON response.
func WriteJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are already out; nothing more to do than drop the
		// connection, which the caller's return accomplishes.
		return
	}
}

// DecodeJSON parses a bounded JSON body into v.
func DecodeJSON(r io.Reader, v any) error {
	data, err := ReadBody(r)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("wire: decode json: %w", err)
	}
	return nil
}
