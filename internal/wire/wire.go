// Package wire defines the HTTP protocol spoken between participants, the
// MixNN proxy and the aggregation server, plus bounded-read helpers for
// handling untrusted bodies.
//
// Endpoints (all bodies are binary unless noted):
//
//	POST {proxy}/v1/update        encrypted update (enclave hybrid ciphertext)
//	POST {proxy}/v1/hop           re-encrypted mixed update from an upstream
//	                              proxy (cascade mode); X-Mixnn-Hop header
//	                              carries the hop depth
//	POST {proxy}/v1/batch         a whole drained round from an upstream
//	                              proxy: a BatchEnvelope re-encrypted for
//	                              this hop's enclave; X-Mixnn-Hop carries
//	                              the depth, X-Mixnn-Batch the idempotency
//	                              id the receiver dedups on
//	POST {server}/v1/update       plaintext encoded ParamSet (from the proxy)
//	POST {server}/v1/batch        plaintext BatchEnvelope (one drained
//	                              round); X-Mixnn-Batch idempotency id
//	GET  {server}/v1/model        current global model; X-Mixnn-Round header
//	GET  {server}/v1/status       JSON ServerStatus
//	GET  {proxy}/v1/attestation   JSON AttestationResponse (nonce query param)
//	GET  {proxy}/v1/status        JSON ShardedProxyStatus (every proxy is a
//	                              sharded tier; single proxies are Shards=1)
//	GET  {proxy}/v1/admin/topology  JSON TopologyStatus: the routing plane's
//	                              current (and staged) topology
//	GET  {proxy}/v1/discover      JSON DiscoverResponse: the proxy's peer
//	                              list, topology epoch, load signals and
//	                              health score (control plane; SDKs
//	                              bootstrap their failover list from it)
//	GET  {proxy}/v1/metrics       Prometheus text exposition (operator
//	                              metrics; 404 when the proxy runs with
//	                              metrics disabled)
//	POST {proxy}/v1/admin/topology  JSON TopologyDirective: stage the next
//	                              epoch's topology (applied at round close);
//	                              requires the inter-proxy secret — 403
//	                              when the proxy runs without one
//
// The single-update endpoints remain for compatibility; batch-capable
// proxies coalesce a drained round into one /v1/batch POST.
package wire

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
)

// Header names. Go canonicalises header keys, so these are the canonical
// forms.
const (
	HeaderRound  = "X-Mixnn-Round"
	HeaderClient = "X-Mixnn-Client"
	// HeaderHop carries the cascade depth of an inter-proxy update: the
	// first mixing proxy forwards with hop 1, the next with hop 2, and so
	// on. Proxies reject updates whose hop exceeds their configured bound,
	// which breaks forwarding loops.
	HeaderHop = "X-Mixnn-Hop"
	// HeaderShard reports, on proxy responses, which shard ingested the
	// update (diagnostics only; it reveals nothing beyond arrival order).
	HeaderShard = "X-Mixnn-Shard"
	// HeaderBatch carries the idempotency id of a /v1/batch POST. The
	// sender derives it deterministically from the outbox entry, so a
	// redelivery after a lost acknowledgement carries the same id and the
	// receiver can drop the duplicate instead of double-counting a round.
	HeaderBatch = "X-Mixnn-Batch"
	// HeaderSender identifies the sending outbox (a stable random id) on
	// /v1/batch POSTs, and HeaderBatchSeq carries the entry's sequence
	// number in that outbox. Together they let a receiver recognise a
	// redelivery whose idempotency id has already aged out of the dedup
	// window: the sender's queue is strictly ordered, so a sequence number
	// at or below the sender's last acknowledged one can only be a stale
	// duplicate — the receiver answers 409 instead of re-absorbing it.
	HeaderSender   = "X-Mixnn-Sender"
	HeaderBatchSeq = "X-Mixnn-Batch-Seq"
	// HeaderStale marks a 409 response as a STALE-redelivery rejection
	// (as opposed to "application in flight", which is retryable): the
	// batch was superseded at this receiver and retrying can never
	// succeed, so the sender must quarantine the entry instead of
	// retrying it forever.
	HeaderStale = "X-Mixnn-Stale"
	// HeaderSessionUnknown marks a rejection (428) as a crypto-session
	// miss: the receiver's enclave no longer holds the session the
	// ciphertext names (cache eviction or a restart), so NOTHING was
	// ingested and the sender must re-establish with a full RSA wrap and
	// resend. Distinct from plain 4xx so senders never quarantine or
	// fail over on what is a recoverable key-cache condition.
	HeaderSessionUnknown = "X-Mixnn-Session-Unknown"
	// HeaderProto carries the typed-protocol version a peer speaks. A
	// missing header means ProtoV1 — exactly what pre-transport binaries
	// send — so version negotiation is wire-compatible in both
	// directions: new senders tag their requests, new receivers reject
	// only versions they provably cannot serve, and old peers never see a
	// difference.
	HeaderProto = "X-Mixnn-Proto"
)

// ProtoV1 is the current typed-protocol version. The typed transport
// stamps it on every request and response; endpoints refuse requests
// claiming a HIGHER version (the peer would rely on semantics this
// binary does not implement) and accept everything at or below it.
const ProtoV1 = 1

// ParseProto extracts the typed-protocol version from a header set. A
// missing header is version 1 (pre-negotiation binaries). Malformed or
// non-positive values are rejected.
func ParseProto(h http.Header) (int, error) {
	v := h.Get(HeaderProto)
	if v == "" {
		return ProtoV1, nil
	}
	p, err := strconv.Atoi(v)
	if err != nil || p <= 0 {
		return 0, fmt.Errorf("wire: invalid %s header %q", HeaderProto, v)
	}
	return p, nil
}

// ParseHop extracts the cascade depth from a request's HeaderHop value.
// A missing header means depth 0 (a participant update). Negative or
// non-numeric values are rejected.
func ParseHop(h http.Header) (int, error) {
	v := h.Get(HeaderHop)
	if v == "" {
		return 0, nil
	}
	hop, err := strconv.Atoi(v)
	if err != nil || hop < 0 {
		return 0, fmt.Errorf("wire: invalid %s header %q", HeaderHop, v)
	}
	return hop, nil
}

// ContentTypeUpdate is the content type of binary model updates.
const ContentTypeUpdate = "application/x-mixnn-update"

// ContentTypeBatch is the content type of BatchEnvelope bodies.
const ContentTypeBatch = "application/x-mixnn-batch"

// BatchEnvelope is the wire container for one drained round: the mixed
// updates a proxy forwards as a single POST instead of one request per
// update. Binary layout (little-endian), versioned:
//
//	magic   [4]byte "MXBE"
//	version uint8 (1)
//	count   uint32
//	per update: len uint32, bytes (an encoded ParamSet, opaque here)
//
// On the proxy→server leg the envelope travels in plaintext (like
// /v1/update bodies); on the proxy→proxy cascade leg the whole encoded
// envelope is wrapped for the next hop's enclave, so a round costs one
// re-encryption instead of C.
type BatchEnvelope struct {
	Updates [][]byte
}

const (
	batchMagic   = "MXBE"
	batchVersion = 1

	// maxBatchUpdates bounds the updates one envelope may claim (the
	// decoder handles untrusted input).
	maxBatchUpdates = 1 << 20
)

// Encode serialises the envelope.
func (e BatchEnvelope) Encode() ([]byte, error) {
	if len(e.Updates) == 0 {
		return nil, fmt.Errorf("wire: empty batch envelope")
	}
	if len(e.Updates) > maxBatchUpdates {
		return nil, fmt.Errorf("wire: batch of %d updates exceeds limit", len(e.Updates))
	}
	n := 4 + 1 + 4
	for _, u := range e.Updates {
		n += 4 + len(u)
	}
	out := make([]byte, 0, n)
	out = append(out, batchMagic...)
	out = append(out, batchVersion)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(e.Updates)))
	for i, u := range e.Updates {
		if len(u) > MaxBodyBytes {
			return nil, fmt.Errorf("wire: batch update %d exceeds %d bytes", i, MaxBodyBytes)
		}
		out = binary.LittleEndian.AppendUint32(out, uint32(len(u)))
		out = append(out, u...)
	}
	return out, nil
}

// DecodeBatchEnvelope parses an envelope from untrusted input, validating
// structure before allocating. The returned update slices alias data.
func DecodeBatchEnvelope(data []byte) (BatchEnvelope, error) {
	if len(data) < 9 || string(data[:4]) != batchMagic {
		return BatchEnvelope{}, fmt.Errorf("wire: bad batch magic")
	}
	if data[4] != batchVersion {
		return BatchEnvelope{}, fmt.Errorf("wire: batch version %d, want %d", data[4], batchVersion)
	}
	count := binary.LittleEndian.Uint32(data[5:])
	if count == 0 || count > maxBatchUpdates {
		return BatchEnvelope{}, fmt.Errorf("wire: batch update count %d out of range", count)
	}
	// Each update needs at least its 4-byte length prefix, so a count
	// the body cannot possibly hold is rejected before the pre-sized
	// allocation — a 13-byte forgery must not buy megabytes of headers.
	if uint64(count) > uint64(len(data)-9)/4 {
		return BatchEnvelope{}, fmt.Errorf("wire: batch update count %d exceeds body", count)
	}
	off := 9
	env := BatchEnvelope{Updates: make([][]byte, 0, count)}
	for i := uint32(0); i < count; i++ {
		if len(data)-off < 4 {
			return BatchEnvelope{}, fmt.Errorf("wire: batch truncated at update %d", i)
		}
		// Compare in uint64: on 32-bit platforms int(n) of an adversarial
		// length ≥ 2³¹ would go negative and slip past the bound.
		n32 := binary.LittleEndian.Uint32(data[off:])
		off += 4
		if uint64(n32) > uint64(len(data)-off) {
			return BatchEnvelope{}, fmt.Errorf("wire: batch update %d length %d exceeds remaining bytes", i, n32)
		}
		n := int(n32)
		env.Updates = append(env.Updates, data[off:off+n:off+n])
		off += n
	}
	if off != len(data) {
		return BatchEnvelope{}, fmt.Errorf("wire: %d trailing bytes after batch", len(data)-off)
	}
	return env, nil
}

// MaxBodyBytes bounds request/response bodies (encrypted or encoded
// updates). 512 MiB accommodates the largest models the codec accepts.
const MaxBodyBytes = 512 << 20

// AttestationResponse carries the enclave report to participants.
type AttestationResponse struct {
	MeasurementHex string `json:"measurement"`
	NonceHex       string `json:"nonce"`
	PubKeyDER      []byte `json:"pub_key_der"`
	Signature      []byte `json:"signature"`
}

// ServerStatus reports aggregation-server progress.
type ServerStatus struct {
	Round          int `json:"round"`
	UpdatesInRound int `json:"updates_in_round"`
	ExpectPerRound int `json:"expect_per_round"`
}

// ProxyStatus is the single-proxy (§6.5) view of a tier's status, kept
// for the paper-shaped `proxy.Proxy` API; over HTTP every proxy now
// reports ShardedProxyStatus.
type ProxyStatus struct {
	Buffered      int     `json:"buffered"`
	Received      int     `json:"received"`
	Forwarded     int     `json:"forwarded"`
	RoundSize     int     `json:"round_size"`
	K             int     `json:"k"`
	UpdateBytes   int     `json:"update_bytes"`
	EnclaveUsed   int     `json:"enclave_used_bytes"`
	EnclavePeak   int     `json:"enclave_peak_bytes"`
	EnclavePaging int     `json:"enclave_page_events"`
	DecryptMillis float64 `json:"decrypt_ms_mean"`
	StoreMillis   float64 `json:"store_ms_mean"`
	MixMillis     float64 `json:"mix_ms_mean"`
	ProcessMillis float64 `json:"process_ms_mean"`
}

// ShardStatus reports one mixing shard inside a sharded proxy.
type ShardStatus struct {
	Shard    int `json:"shard"`
	K        int `json:"k"`
	Buffered int `json:"buffered"`
	Received int `json:"received"`
	Emitted  int `json:"emitted"`
	// Quota is the shard's per-round update quota under the current
	// topology; Load counts updates routed to it in the open round.
	Quota int `json:"quota"`
	Load  int `json:"load"`
	// Addr is set for a remote shard: the peer proxy (its own enclave)
	// this shard's material is relayed to.
	Addr string `json:"addr,omitempty"`
	// Weight is the shard's capacity weight in the topology.
	Weight int `json:"weight"`
}

// OutboxLaneStatus reports one delivery lane of the outbox: the pending
// backlog and retry state for a single destination. Dest is the remote
// shard address the lane serves; empty means the tier's ordinary
// downstream (aggregation server or cascade next hop).
type OutboxLaneStatus struct {
	Dest    string `json:"dest,omitempty"`
	Pending int    `json:"pending"`
	// InFlight reports a delivery attempt running right now.
	InFlight bool `json:"in_flight,omitempty"`
	// BackoffMs is the lane's current retry delay (0 when healthy) and
	// NextRetryMs the time until its next gated attempt.
	BackoffMs   float64 `json:"backoff_ms,omitempty"`
	NextRetryMs float64 `json:"next_retry_ms,omitempty"`
	// Delivered counts entries acknowledged on this lane since the
	// process started; Failures counts transient delivery failures.
	Delivered uint64 `json:"delivered"`
	Failures  uint64 `json:"failures,omitempty"`
}

// ShardedProxyStatus reports a sharded proxy tier: global round progress,
// cascade wiring and the per-shard mixer states.
type ShardedProxyStatus struct {
	Shards      []ShardStatus `json:"shards"`
	Received    int           `json:"received"`
	HopReceived int           `json:"hop_received"`
	Forwarded   int           `json:"forwarded"`
	Rounds      int           `json:"rounds"`
	InRound     int           `json:"in_round"`
	RoundSize   int           `json:"round_size"`
	// Epoch is the round currently being ingested — deliberately an
	// alias of Rounds in the delivery pipeline's vocabulary: with
	// cross-round pipelining the tier ingests epoch N while the
	// dispatcher still delivers earlier epochs, so the pair (Epoch,
	// OutboxPending) shows how far delivery lags ingest. Consumers
	// watching delivery should read these two; Rounds stays for the
	// pre-pipeline round counter.
	Epoch int `json:"epoch"`
	// OutboxPending counts drained rounds committed to the delivery
	// outbox but not yet acknowledged downstream, across all lanes.
	OutboxPending int `json:"outbox_pending"`
	// OutboxLanes breaks the delivery backlog down per destination lane:
	// each remote peer, plus the tier's ordinary downstream (empty
	// dest). A healthy tier shows every lane at backoff 0; a dead peer
	// shows its own lane backing off while the others stay clear.
	OutboxLanes []OutboxLaneStatus `json:"outbox_lanes,omitempty"`
	// BatchesSent counts /v1/batch POSTs acknowledged downstream.
	BatchesSent int    `json:"batches_sent"`
	NextHop     string `json:"next_hop,omitempty"`
	MaxHops     int    `json:"max_hops"`
	// TopoVersion is the routing plane's current topology version and
	// RoutingMode its policy ("sticky", "round-robin", "hash-quota").
	TopoVersion uint64 `json:"topo_version"`
	RoutingMode string `json:"routing_mode"`
	// StagedTopoVersion is set when a topology directive awaits the next
	// round close.
	StagedTopoVersion uint64 `json:"staged_topo_version,omitempty"`
	// OutboxQuarantined counts outbox entries set aside as undeliverable
	// (.bad files) — rounds that left the delivery path and need an
	// operator.
	OutboxQuarantined int `json:"outbox_quarantined"`
	// RestoredFrom is the shard count of the sealed blob this tier was
	// restored from, 0 if it started fresh; it differs from len(Shards)
	// when the restore resharded.
	RestoredFrom  int     `json:"restored_from,omitempty"`
	UpdateBytes   int     `json:"update_bytes"`
	EnclaveUsed   int     `json:"enclave_used_bytes"`
	EnclavePeak   int     `json:"enclave_peak_bytes"`
	EnclavePaging int     `json:"enclave_page_events"`
	DecryptMillis float64 `json:"decrypt_ms_mean"`
	// DecryptMicros is the same per-update decrypt mean in µs — the
	// headline number for the session-crypto path, where the cost sits
	// far below a millisecond (DecryptMillis stays for older
	// consumers).
	DecryptMicros float64 `json:"decrypt_us_mean"`
	StoreMillis   float64 `json:"store_ms_mean"`
	MixMillis     float64 `json:"mix_ms_mean"`
	ProcessMillis float64 `json:"process_ms_mean"`
	// Crypto session cache observability: the enclave's live session
	// count plus its lifetime establish/hit/miss/evict/replay counters.
	// A healthy steady state shows hits ≫ establishes, with misses
	// clustered around restarts or cache pressure; a sustained miss or
	// replay rate means senders are re-establishing (and paying RSA)
	// per send.
	SessionsActive      int    `json:"sessions_active"`
	SessionsEstablished uint64 `json:"sessions_established"`
	SessionHits         uint64 `json:"session_hits"`
	SessionMisses       uint64 `json:"session_misses"`
	SessionEvictions    uint64 `json:"session_evictions,omitempty"`
	SessionReplays      uint64 `json:"session_replays,omitempty"`
	// Admission-control outcomes: updates refused because the sender was
	// over its token-bucket budget, and updates refused while the tier
	// was load-shedding. Both are provably-not-ingested 429 rejections.
	AdmissionRateLimited uint64 `json:"admission_rate_limited,omitempty"`
	AdmissionShed        uint64 `json:"admission_shed,omitempty"`
}

// DiscoverShard is one shard's load view inside a DiscoverResponse.
type DiscoverShard struct {
	Shard int    `json:"shard"`
	Quota int    `json:"quota"`
	Load  int    `json:"load"`
	Addr  string `json:"addr,omitempty"`
}

// DiscoverResponse is the control-plane view a proxy advertises on
// /v1/discover: who its peers are, where its topology stands, and how
// loaded it is — condensed into a health score in (0, 1] that SDKs sort
// their failover lists by. Peers are endpoint strings only; a client
// probes each peer's own /v1/discover for its health, and every learned
// peer still gates on attestation before receiving material, so a
// malicious peer list cannot redirect updates to an unattested enclave.
type DiscoverResponse struct {
	// Endpoint is the advertising proxy's own base URL as it wants to be
	// addressed (may be empty when the proxy does not know it).
	Endpoint string `json:"endpoint,omitempty"`
	// Peers lists sibling front endpoints a participant could fail over
	// to (operator-configured; never includes the proxy itself).
	Peers []string `json:"peers,omitempty"`
	// Epoch/TopoVersion locate the proxy in the tier's reshard history.
	Epoch       int    `json:"epoch"`
	TopoVersion uint64 `json:"topo_version"`
	RoundSize   int    `json:"round_size"`
	InRound     int    `json:"in_round"`
	// Shards is the per-shard quota/load breakdown of the open round.
	Shards []DiscoverShard `json:"shards,omitempty"`
	// Raw pressure signals behind the score (operator diagnostics).
	QueueDepth     int     `json:"queue_depth"`
	OutboxPending  int     `json:"outbox_pending"`
	LaneBacklogMax int     `json:"lane_backlog_max"`
	DecryptMicros  float64 `json:"decrypt_us_mean"`
	// Shedding reports the admission gate actively refusing all ingress.
	Shedding bool `json:"shedding,omitempty"`
	// Health is the computed score in (0, 1]; higher is healthier, and a
	// shedding proxy always scores below any non-shedding one.
	Health float64 `json:"health"`
}

// TopologyShardSpec describes one shard in a topology directive. A
// remote shard carries the peer's address plus the attestation material
// to pin its enclave (the same trust bundle participants use): the
// receiving proxy runs the hop attestation handshake before staging.
type TopologyShardSpec struct {
	// Addr is empty for a local shard, the peer proxy's base URL for a
	// remote one.
	Addr string `json:"addr,omitempty"`
	// Weight scales the shard's share of the round (default 1).
	Weight int `json:"weight,omitempty"`
	// AuthorityPubDER + MeasurementHex pin the remote shard's enclave
	// (required with Addr unless the proxy already holds an attested key
	// for it). TrustFile is the file-based alternative for -shards-file:
	// the path of the peer's trust bundle.
	AuthorityPubDER []byte `json:"authority_pub_der,omitempty"`
	MeasurementHex  string `json:"measurement,omitempty"`
	TrustFile       string `json:"trust_file,omitempty"`
	// Secret is the inter-proxy bearer secret the remote shard's hop
	// endpoints require, if any.
	Secret string `json:"secret,omitempty"`
}

// TopologyDirective asks the proxy to reshape its routing plane at the
// next round close. Empty fields keep their current values.
type TopologyDirective struct {
	// Mode is "sticky", "round-robin" or "hash-quota" ("" = keep).
	Mode string `json:"mode,omitempty"`
	// RoundSize changes the round size C (0 = keep).
	RoundSize int `json:"round_size,omitempty"`
	// Shards replaces the shard set (absent = keep).
	Shards []TopologyShardSpec `json:"shards,omitempty"`
	// SyncPeers makes the receiving proxy drive each remote shard's OWN
	// round size to that shard's new quota, by posting a RoundSize
	// directive to the peer's admin endpoint as part of staging this one.
	// One directive thus reshapes both ends of every relay leg in the
	// same epoch, instead of the operator coordinating two proxies by
	// hand. Peers must run with an inter-proxy secret (their admin POST
	// surface is gated on it), and the receiving proxy must be QUIESCENT
	// (no open round, empty delivery outbox) — otherwise the directive is
	// rejected, because material routed under the old quotas could land
	// in peer rounds already resized to the new ones.
	SyncPeers bool `json:"sync_peers,omitempty"`
}

// TopologyStatus reports the routing plane over the admin endpoint.
type TopologyStatus struct {
	Version   uint64          `json:"version"`
	Mode      string          `json:"mode"`
	RoundSize int             `json:"round_size"`
	Epoch     int             `json:"epoch"`
	Shards    []TopologyShard `json:"shards"`
	// Staged describes the topology staged for the next round close, if
	// any.
	Staged *TopologyStaged `json:"staged,omitempty"`
}

// TopologyShard is one shard's view in TopologyStatus.
type TopologyShard struct {
	Shard  int    `json:"shard"`
	Addr   string `json:"addr,omitempty"`
	Weight int    `json:"weight"`
	Quota  int    `json:"quota"`
	Load   int    `json:"load"`
}

// TopologyStaged summarises a staged (not yet applied) topology.
type TopologyStaged struct {
	Version   uint64          `json:"version"`
	Mode      string          `json:"mode"`
	RoundSize int             `json:"round_size"`
	Shards    []TopologyShard `json:"shards"`
}

// ReadBody reads an entire request/response body with the standard bound,
// failing loudly when the peer exceeds it.
func ReadBody(r io.Reader) ([]byte, error) {
	data, err := io.ReadAll(io.LimitReader(r, MaxBodyBytes+1))
	if err != nil {
		return nil, fmt.Errorf("wire: read body: %w", err)
	}
	if len(data) > MaxBodyBytes {
		return nil, fmt.Errorf("wire: body exceeds %d bytes", MaxBodyBytes)
	}
	return data, nil
}

// WriteJSON writes v as a JSON response.
func WriteJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are already out; nothing more to do than drop the
		// connection, which the caller's return accomplishes.
		return
	}
}

// DecodeJSON parses a bounded JSON body into v.
func DecodeJSON(r io.Reader, v any) error {
	data, err := ReadBody(r)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("wire: decode json: %w", err)
	}
	return nil
}
