package wire

import (
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
)

func TestReadBodyBounds(t *testing.T) {
	small, err := ReadBody(strings.NewReader("hello"))
	if err != nil {
		t.Fatal(err)
	}
	if string(small) != "hello" {
		t.Fatalf("ReadBody = %q", small)
	}
}

func TestWriteDecodeJSONRoundTrip(t *testing.T) {
	rec := httptest.NewRecorder()
	in := ServerStatus{Round: 3, UpdatesInRound: 2, ExpectPerRound: 5}
	WriteJSON(rec, in)
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type = %q", ct)
	}
	var out ServerStatus
	if err := DecodeJSON(rec.Body, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip = %+v, want %+v", out, in)
	}
}

func TestDecodeJSONRejectsGarbage(t *testing.T) {
	var out ServerStatus
	if err := DecodeJSON(strings.NewReader("{not json"), &out); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestParseHop(t *testing.T) {
	h := http.Header{}
	if hop, err := ParseHop(h); err != nil || hop != 0 {
		t.Fatalf("missing header: hop=%d err=%v, want 0, nil", hop, err)
	}
	for _, want := range []int{0, 1, 7} {
		h.Set(HeaderHop, strconv.Itoa(want))
		hop, err := ParseHop(h)
		if err != nil || hop != want {
			t.Fatalf("hop %d: got %d, %v", want, hop, err)
		}
	}
	for _, bad := range []string{"-1", "x", "1.5"} {
		h.Set(HeaderHop, bad)
		if _, err := ParseHop(h); err == nil {
			t.Fatalf("hop %q accepted", bad)
		}
	}
}
