package wire

import (
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
)

func TestReadBodyBounds(t *testing.T) {
	small, err := ReadBody(strings.NewReader("hello"))
	if err != nil {
		t.Fatal(err)
	}
	if string(small) != "hello" {
		t.Fatalf("ReadBody = %q", small)
	}
}

func TestWriteDecodeJSONRoundTrip(t *testing.T) {
	rec := httptest.NewRecorder()
	in := ServerStatus{Round: 3, UpdatesInRound: 2, ExpectPerRound: 5}
	WriteJSON(rec, in)
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type = %q", ct)
	}
	var out ServerStatus
	if err := DecodeJSON(rec.Body, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip = %+v, want %+v", out, in)
	}
}

func TestDecodeJSONRejectsGarbage(t *testing.T) {
	var out ServerStatus
	if err := DecodeJSON(strings.NewReader("{not json"), &out); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestBatchEnvelopeRoundTrip(t *testing.T) {
	in := BatchEnvelope{Updates: [][]byte{[]byte("alpha"), []byte("b"), {}}}
	raw, err := in.Encode()
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeBatchEnvelope(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Updates) != 3 {
		t.Fatalf("decoded %d updates, want 3", len(out.Updates))
	}
	for i := range in.Updates {
		if string(out.Updates[i]) != string(in.Updates[i]) {
			t.Fatalf("update %d = %q, want %q", i, out.Updates[i], in.Updates[i])
		}
	}
}

func TestBatchEnvelopeRejects(t *testing.T) {
	if _, err := (BatchEnvelope{}).Encode(); err == nil {
		t.Fatal("empty envelope encoded")
	}
	good, err := BatchEnvelope{Updates: [][]byte{[]byte("payload")}}.Encode()
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":     {},
		"bad magic": append([]byte("ZZZZ"), good[4:]...),
		"version":   func() []byte { b := append([]byte(nil), good...); b[4] = 9; return b }(),
		"truncated": good[:len(good)-2],
		"trailing":  append(append([]byte(nil), good...), 1),
		"forged count": func() []byte {
			b := append([]byte(nil), good...)
			b[5], b[6] = 0xFF, 0xFF // claim 65535 updates against a tiny body
			return b
		}(),
	}
	for name, data := range cases {
		if _, err := DecodeBatchEnvelope(data); err == nil {
			t.Fatalf("%s accepted", name)
		}
	}
}

func TestParseHop(t *testing.T) {
	h := http.Header{}
	if hop, err := ParseHop(h); err != nil || hop != 0 {
		t.Fatalf("missing header: hop=%d err=%v, want 0, nil", hop, err)
	}
	for _, want := range []int{0, 1, 7} {
		h.Set(HeaderHop, strconv.Itoa(want))
		hop, err := ParseHop(h)
		if err != nil || hop != want {
			t.Fatalf("hop %d: got %d, %v", want, hop, err)
		}
	}
	for _, bad := range []string{"-1", "x", "1.5"} {
		h.Set(HeaderHop, bad)
		if _, err := ParseHop(h); err == nil {
			t.Fatalf("hop %q accepted", bad)
		}
	}
}
