package wire

import (
	"net/http/httptest"
	"strings"
	"testing"
)

func TestReadBodyBounds(t *testing.T) {
	small, err := ReadBody(strings.NewReader("hello"))
	if err != nil {
		t.Fatal(err)
	}
	if string(small) != "hello" {
		t.Fatalf("ReadBody = %q", small)
	}
}

func TestWriteDecodeJSONRoundTrip(t *testing.T) {
	rec := httptest.NewRecorder()
	in := ServerStatus{Round: 3, UpdatesInRound: 2, ExpectPerRound: 5}
	WriteJSON(rec, in)
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type = %q", ct)
	}
	var out ServerStatus
	if err := DecodeJSON(rec.Body, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip = %+v, want %+v", out, in)
	}
}

func TestDecodeJSONRejectsGarbage(t *testing.T) {
	var out ServerStatus
	if err := DecodeJSON(strings.NewReader("{not json"), &out); err == nil {
		t.Fatal("garbage accepted")
	}
}
