// Package route is the mixing tier's routing plane: an immutable,
// epoch-versioned Topology (shard set, per-shard round quotas, remote
// placement) plus the routing policies that map an incoming update onto a
// shard, and a Planner that stages the next epoch's topology so shard
// membership changes apply atomically at a round boundary.
//
// The package is deliberately dependency-free (stdlib only): the proxy
// owns mixers, enclaves and HTTP; route owns WHO an update goes to and
// HOW MANY a shard may take per round. A Topology never mutates after
// construction — the proxy swaps the whole value at round close, the same
// atomic swap that already rotates its per-epoch mixers, so resharding
// can never tear an open round.
package route

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"sort"
)

// Mode selects how updates are routed onto shards.
type Mode uint8

const (
	// ModeSticky is the legacy policy: a stable FNV hash of the client id
	// when the participant identifies itself (a client's updates always
	// meet the same buffer), round-robin for anonymous traffic. Quotas are
	// advisory only — sticky placement wins, matching the pre-topology
	// tier exactly.
	ModeSticky Mode = 1
	// ModeRoundRobin deals updates over the shards in arrival order,
	// skipping shards whose round quota is exhausted, so weighted shards
	// fill proportionally.
	ModeRoundRobin Mode = 2
	// ModeHashQuota routes identified clients by consistent hashing over a
	// virtual-node ring (weighted by shard capacity) and enforces the
	// per-shard round quota: when the hashed shard is full the update
	// spills over to the least-relatively-loaded shard with capacity.
	// Anonymous traffic goes straight to the least-loaded shard.
	ModeHashQuota Mode = 3
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeSticky:
		return "sticky"
	case ModeRoundRobin:
		return "round-robin"
	case ModeHashQuota:
		return "hash-quota"
	default:
		return fmt.Sprintf("mode(%d)", uint8(m))
	}
}

// ParseMode maps a flag/JSON spelling onto a Mode.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "", "sticky":
		return ModeSticky, nil
	case "round-robin", "rr":
		return ModeRoundRobin, nil
	case "hash-quota", "hash":
		return ModeHashQuota, nil
	default:
		return 0, fmt.Errorf("route: unknown routing mode %q (want sticky, round-robin or hash-quota)", s)
	}
}

// ShardSpec describes one shard of a topology. A shard is local (an
// in-process mixer) when Addr is empty, or remote (a peer mixing proxy
// holding its own enclave, reached over the hop leg) when Addr is its
// base URL. Weight scales the shard's share of the round; the absolute
// per-round quota is derived from the weights and the round size.
type ShardSpec struct {
	Addr   string
	Weight int
}

// label is the shard's stable identity on the consistent-hash ring:
// remote shards are identified by address (so re-ordering the spec list
// does not reshuffle their keys), local shards by position.
func (s ShardSpec) label(index int) string {
	if s.Addr != "" {
		return s.Addr
	}
	return fmt.Sprintf("local/%d", index)
}

const (
	// MaxShards bounds the shard count a topology (or a parsed blob) may
	// claim.
	MaxShards = 1 << 12
	// maxAddrBytes bounds one shard address in a parsed blob.
	maxAddrBytes = 1 << 10
	// ringPointsPerWeight is the virtual-node count per weight unit; more
	// points smooth the ring at the cost of a larger sort at build time.
	ringPointsPerWeight = 32
	// maxRingPoints caps the ring size so a huge weight cannot buy an
	// unbounded allocation.
	maxRingPoints = 1 << 16
)

// Topology is one epoch's immutable routing plan: the shard set with
// per-shard round quotas, the routing mode, and a monotone version so
// status, seal blobs and outbox entries can name the plan they were made
// under. Construct with New; never mutate the fields of a built Topology.
type Topology struct {
	version   uint64
	mode      Mode
	roundSize int
	specs     []ShardSpec
	quotas    []int
	ring      []ringPoint // consistent-hash ring, ModeHashQuota only
}

type ringPoint struct {
	h     uint64
	shard int
}

// New validates and builds a topology. Shard weights default to 1;
// quotas are the largest-remainder apportionment of roundSize over the
// weights with every shard guaranteed at least one slot (hence the shard
// count may not exceed the round size).
func New(version uint64, mode Mode, roundSize int, specs []ShardSpec) (*Topology, error) {
	if mode == 0 {
		mode = ModeSticky
	}
	if mode != ModeSticky && mode != ModeRoundRobin && mode != ModeHashQuota {
		return nil, fmt.Errorf("route: unknown routing mode %d", mode)
	}
	if roundSize <= 0 {
		return nil, fmt.Errorf("route: round size must be positive, got %d", roundSize)
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("route: topology needs at least one shard")
	}
	if len(specs) > MaxShards {
		return nil, fmt.Errorf("route: %d shards exceed the limit %d", len(specs), MaxShards)
	}
	if len(specs) > roundSize {
		return nil, fmt.Errorf("route: %d shards for round size %d (every shard needs a quota of at least one)", len(specs), roundSize)
	}
	norm := make([]ShardSpec, len(specs))
	for i, s := range specs {
		if s.Weight < 0 {
			return nil, fmt.Errorf("route: shard %d has negative weight %d", i, s.Weight)
		}
		if s.Weight == 0 {
			s.Weight = 1
		}
		if len(s.Addr) > maxAddrBytes {
			return nil, fmt.Errorf("route: shard %d address exceeds %d bytes", i, maxAddrBytes)
		}
		norm[i] = s
	}
	for i, s := range norm {
		if s.Addr == "" {
			continue
		}
		// A remote shard's peer proxy is provisioned for exactly its
		// quota per round; sticky routing ignores quotas (placement wins),
		// so it could starve the peer of a round — or flood it — and
		// stall the tier. Remote placement therefore requires a
		// quota-enforcing mode.
		if mode == ModeSticky {
			return nil, fmt.Errorf("route: shard %d is remote (%s) but the sticky mode cannot honour remote quotas; use round-robin or hash-quota", i, s.Addr)
		}
		for j := 0; j < i; j++ {
			if norm[j].Addr == s.Addr {
				return nil, fmt.Errorf("route: shards %d and %d share address %q", j, i, s.Addr)
			}
		}
	}
	t := &Topology{
		version:   version,
		mode:      mode,
		roundSize: roundSize,
		specs:     norm,
		quotas:    apportion(roundSize, norm),
	}
	if mode == ModeHashQuota {
		t.ring = buildRing(norm)
	}
	return t, nil
}

// Uniform builds the legacy topology: p local shards of weight 1 — the
// exact shape the pre-routing-plane tier hard-coded.
func Uniform(version uint64, mode Mode, roundSize, p int) (*Topology, error) {
	return New(version, mode, roundSize, make([]ShardSpec, p))
}

// apportion splits roundSize over the shards proportionally to weight
// (largest remainder, ties to the lower index), then guarantees every
// shard at least one slot by taking from the largest quotas.
func apportion(roundSize int, specs []ShardSpec) []int {
	totalW := 0
	for _, s := range specs {
		totalW += s.Weight
	}
	quotas := make([]int, len(specs))
	type rem struct {
		frac int // remainder numerator (over totalW)
		i    int
	}
	rems := make([]rem, len(specs))
	assigned := 0
	for i, s := range specs {
		quotas[i] = roundSize * s.Weight / totalW
		rems[i] = rem{frac: roundSize * s.Weight % totalW, i: i}
		assigned += quotas[i]
	}
	sort.SliceStable(rems, func(a, b int) bool { return rems[a].frac > rems[b].frac })
	for k := 0; assigned < roundSize; k++ {
		quotas[rems[k%len(rems)].i]++
		assigned++
	}
	// Every shard must be routable at least once per round (a zero-quota
	// shard would buffer nothing and starve); steal from the largest.
	for i := range quotas {
		for quotas[i] == 0 {
			maxI := 0
			for j := range quotas {
				if quotas[j] > quotas[maxI] {
					maxI = j
				}
			}
			if quotas[maxI] <= 1 {
				break // roundSize >= len(specs) makes this unreachable
			}
			quotas[maxI]--
			quotas[i]++
		}
	}
	return quotas
}

// buildRing places ringPointsPerWeight virtual nodes per weight unit per
// shard on a 64-bit hash ring, sorted for binary search.
func buildRing(specs []ShardSpec) []ringPoint {
	total := 0
	for _, s := range specs {
		total += s.Weight * ringPointsPerWeight
	}
	scale := 1.0
	if total > maxRingPoints {
		scale = float64(maxRingPoints) / float64(total)
	}
	var ring []ringPoint
	for i, s := range specs {
		points := int(float64(s.Weight*ringPointsPerWeight) * scale)
		if points < 1 {
			points = 1
		}
		label := s.label(i)
		for v := 0; v < points; v++ {
			h := fnv.New64a()
			fmt.Fprintf(h, "%s#%d", label, v)
			ring = append(ring, ringPoint{h: h.Sum64(), shard: i})
		}
	}
	sort.Slice(ring, func(a, b int) bool {
		if ring[a].h != ring[b].h {
			return ring[a].h < ring[b].h
		}
		return ring[a].shard < ring[b].shard
	})
	return ring
}

// Version returns the topology's monotone version.
func (t *Topology) Version() uint64 { return t.version }

// Mode returns the routing mode.
func (t *Topology) Mode() Mode { return t.mode }

// RoundSize returns the round size C the quotas apportion.
func (t *Topology) RoundSize() int { return t.roundSize }

// P returns the shard count.
func (t *Topology) P() int { return len(t.specs) }

// Spec returns shard s's spec.
func (t *Topology) Spec(s int) ShardSpec { return t.specs[s] }

// Specs returns a copy of the shard specs.
func (t *Topology) Specs() []ShardSpec {
	out := make([]ShardSpec, len(t.specs))
	copy(out, t.specs)
	return out
}

// Quota returns shard s's per-round update quota.
func (t *Topology) Quota(s int) int { return t.quotas[s] }

// Quotas returns a copy of the per-shard quotas (summing to RoundSize).
func (t *Topology) Quotas() []int {
	out := make([]int, len(t.quotas))
	copy(out, t.quotas)
	return out
}

// IsRemote reports whether shard s is a remote placement.
func (t *Topology) IsRemote(s int) bool { return t.specs[s].Addr != "" }

// Remotes returns the addresses of every remote shard (in shard order).
func (t *Topology) Remotes() []string {
	var out []string
	for _, s := range t.specs {
		if s.Addr != "" {
			out = append(out, s.Addr)
		}
	}
	return out
}

// State is the mutable per-round routing state a Topology routes against:
// the round-robin cursor and the per-shard load of the open round. The
// caller owns its synchronisation (the proxy mutates it under the same
// mutex that serialises mixing) and resets Load at round close.
type State struct {
	RR   int
	Load []int
}

// NewState returns a fresh State sized for the topology.
func (t *Topology) NewState() *State {
	return &State{Load: make([]int, len(t.specs))}
}

// Route picks the shard for one update and records it in st.Load. A
// client id makes routing deterministic in the sticky and hash-quota
// modes; anonymous updates follow the mode's load-spreading rule.
func (t *Topology) Route(clientID string, st *State) int {
	var s int
	switch t.mode {
	case ModeRoundRobin:
		s = t.nextRR(st)
	case ModeHashQuota:
		if clientID != "" {
			s = t.ringShard(clientID)
			if st.Load[s] >= t.quotas[s] {
				s = t.leastLoaded(st)
			}
		} else {
			s = t.leastLoaded(st)
		}
	default: // ModeSticky
		if clientID != "" {
			h := fnv.New32a()
			h.Write([]byte(clientID))
			s = int(h.Sum32() % uint32(len(t.specs)))
		} else {
			s = st.RR % len(t.specs)
			st.RR = (s + 1) % len(t.specs)
		}
	}
	st.Load[s]++
	return s
}

// nextRR advances the cursor to the next shard with remaining quota;
// when every quota is exhausted (overflow traffic past the round size)
// it degrades to plain round-robin so routing never fails.
func (t *Topology) nextRR(st *State) int {
	p := len(t.specs)
	for off := 0; off < p; off++ {
		s := (st.RR + off) % p
		if st.Load[s] < t.quotas[s] {
			st.RR = (s + 1) % p
			return s
		}
	}
	s := st.RR % p
	st.RR = (s + 1) % p
	return s
}

// ringShard maps a client id onto the consistent-hash ring.
func (t *Topology) ringShard(clientID string) int {
	h := fnv.New64a()
	h.Write([]byte(clientID))
	key := h.Sum64()
	i := sort.Search(len(t.ring), func(i int) bool { return t.ring[i].h >= key })
	if i == len(t.ring) {
		i = 0
	}
	return t.ring[i].shard
}

// leastLoaded returns the shard with the most relative headroom
// (smallest Load/Quota with capacity left; ties to the lower index),
// falling back to smallest relative load when every quota is exhausted.
func (t *Topology) leastLoaded(st *State) int {
	best, bestWithCap := 0, -1
	for s := range t.specs {
		// Compare Load[s]/Quota[s] < Load[best]/Quota[best] in integers.
		if st.Load[s]*t.quotas[best] < st.Load[best]*t.quotas[s] {
			best = s
		}
		if st.Load[s] < t.quotas[s] && (bestWithCap == -1 ||
			st.Load[s]*t.quotas[bestWithCap] < st.Load[bestWithCap]*t.quotas[s]) {
			bestWithCap = s
		}
	}
	if bestWithCap != -1 {
		return bestWithCap
	}
	return best
}

// Equal reports whether two topologies describe the same routing plan
// (version included).
func (t *Topology) Equal(o *Topology) bool {
	if t == nil || o == nil {
		return t == o
	}
	if t.version != o.version || t.mode != o.mode || t.roundSize != o.roundSize || len(t.specs) != len(o.specs) {
		return false
	}
	for i := range t.specs {
		if t.specs[i] != o.specs[i] {
			return false
		}
	}
	return true
}

// Binary topology blob, versioned ("MXTO" v1), embedded opaquely in the
// proxy's sealed tier state (seal blob v3) and surfaced in admin status:
//
//	magic     [4]byte "MXTO"
//	blobVer   uint16 (1)
//	version   uint64 topology version
//	mode      uint8
//	roundSize uint32
//	shards    uint32 P
//	per shard: weight uint32, addrLen uint16, addr bytes
const (
	topoMagic    = "MXTO"
	topoBlobVer  = 1
	topoHeadSize = 4 + 2 + 8 + 1 + 4 + 4
)

// Marshal encodes the topology.
func (t *Topology) Marshal() []byte {
	var buf bytes.Buffer
	buf.WriteString(topoMagic)
	binary.Write(&buf, binary.LittleEndian, uint16(topoBlobVer))
	binary.Write(&buf, binary.LittleEndian, t.version)
	buf.WriteByte(byte(t.mode))
	binary.Write(&buf, binary.LittleEndian, uint32(t.roundSize))
	binary.Write(&buf, binary.LittleEndian, uint32(len(t.specs)))
	for _, s := range t.specs {
		binary.Write(&buf, binary.LittleEndian, uint32(s.Weight))
		binary.Write(&buf, binary.LittleEndian, uint16(len(s.Addr)))
		buf.WriteString(s.Addr)
	}
	return buf.Bytes()
}

// Parse decodes a Marshal blob, re-validating through New so a parsed
// topology is always as trustworthy as a constructed one.
func Parse(blob []byte) (*Topology, error) {
	r := bytes.NewReader(blob)
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil || string(magic[:]) != topoMagic {
		return nil, fmt.Errorf("route: bad topology magic %q", magic)
	}
	var blobVer uint16
	if err := binary.Read(r, binary.LittleEndian, &blobVer); err != nil {
		return nil, fmt.Errorf("route: read topology blob version: %w", err)
	}
	if blobVer != topoBlobVer {
		return nil, fmt.Errorf("route: topology blob version %d, want %d", blobVer, topoBlobVer)
	}
	var version uint64
	if err := binary.Read(r, binary.LittleEndian, &version); err != nil {
		return nil, fmt.Errorf("route: read topology version: %w", err)
	}
	mode, err := r.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("route: read routing mode: %w", err)
	}
	var roundSize, p uint32
	if err := binary.Read(r, binary.LittleEndian, &roundSize); err != nil {
		return nil, fmt.Errorf("route: read round size: %w", err)
	}
	if err := binary.Read(r, binary.LittleEndian, &p); err != nil {
		return nil, fmt.Errorf("route: read shard count: %w", err)
	}
	if p == 0 || p > MaxShards {
		return nil, fmt.Errorf("route: shard count %d out of range", p)
	}
	// Each shard needs at least 6 bytes; reject counts the blob cannot
	// hold before allocating.
	if uint64(p) > uint64(r.Len())/6 {
		return nil, fmt.Errorf("route: shard count %d exceeds blob", p)
	}
	specs := make([]ShardSpec, p)
	for i := range specs {
		var weight uint32
		var addrLen uint16
		if err := binary.Read(r, binary.LittleEndian, &weight); err != nil {
			return nil, fmt.Errorf("route: read shard %d weight: %w", i, err)
		}
		if err := binary.Read(r, binary.LittleEndian, &addrLen); err != nil {
			return nil, fmt.Errorf("route: read shard %d addr length: %w", i, err)
		}
		if int(addrLen) > maxAddrBytes || int(addrLen) > r.Len() {
			return nil, fmt.Errorf("route: shard %d addr length %d out of range", i, addrLen)
		}
		addr := make([]byte, addrLen)
		if _, err := io.ReadFull(r, addr); err != nil {
			return nil, fmt.Errorf("route: read shard %d addr: %w", i, err)
		}
		if weight > uint32(1<<20) {
			return nil, fmt.Errorf("route: shard %d weight %d out of range", i, weight)
		}
		specs[i] = ShardSpec{Addr: string(addr), Weight: int(weight)}
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("route: %d trailing bytes after topology", r.Len())
	}
	return New(version, Mode(mode), int(roundSize), specs)
}
