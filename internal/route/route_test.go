package route

import (
	"fmt"
	"testing"
)

func mustNew(t *testing.T, version uint64, mode Mode, roundSize int, specs []ShardSpec) *Topology {
	t.Helper()
	topo, err := New(version, mode, roundSize, specs)
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestQuotasApportionWeights(t *testing.T) {
	cases := []struct {
		roundSize int
		weights   []int
		want      []int
	}{
		{8, []int{1, 1}, []int{4, 4}},
		{8, []int{3, 1}, []int{6, 2}},
		{7, []int{1, 1, 1}, []int{3, 2, 2}},
		{10, []int{2, 3, 5}, []int{2, 3, 5}},
		{5, []int{100, 1, 1}, []int{3, 1, 1}}, // minimum-one guarantee
		{4, []int{1}, []int{4}},
	}
	for _, tc := range cases {
		specs := make([]ShardSpec, len(tc.weights))
		for i, w := range tc.weights {
			specs[i].Weight = w
		}
		topo := mustNew(t, 1, ModeHashQuota, tc.roundSize, specs)
		got := topo.Quotas()
		sum := 0
		for i, q := range got {
			sum += q
			if q != tc.want[i] {
				t.Errorf("roundSize=%d weights=%v: quotas = %v, want %v", tc.roundSize, tc.weights, got, tc.want)
				break
			}
		}
		if sum != tc.roundSize {
			t.Errorf("roundSize=%d weights=%v: quotas %v sum to %d", tc.roundSize, tc.weights, got, sum)
		}
	}
}

func TestNewRejects(t *testing.T) {
	if _, err := New(1, ModeSticky, 0, make([]ShardSpec, 1)); err == nil {
		t.Error("zero round size accepted")
	}
	if _, err := New(1, ModeSticky, 4, nil); err == nil {
		t.Error("empty shard set accepted")
	}
	if _, err := New(1, ModeSticky, 2, make([]ShardSpec, 3)); err == nil {
		t.Error("more shards than round size accepted")
	}
	if _, err := New(1, Mode(99), 4, make([]ShardSpec, 2)); err == nil {
		t.Error("unknown mode accepted")
	}
	if _, err := New(1, ModeSticky, 4, []ShardSpec{{Weight: -1}}); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := New(1, ModeHashQuota, 4, []ShardSpec{{Addr: "http://a"}, {Addr: "http://a"}}); err == nil {
		t.Error("duplicate remote address accepted")
	}
	if _, err := New(1, ModeSticky, 4, []ShardSpec{{}, {Addr: "http://a"}}); err == nil {
		t.Error("sticky mode with a remote shard accepted (quotas unenforceable)")
	}
}

func TestHashQuotaRespectsQuotas(t *testing.T) {
	topo := mustNew(t, 1, ModeHashQuota, 12, []ShardSpec{{Weight: 1}, {Weight: 2}, {Weight: 3}})
	st := topo.NewState()
	for i := 0; i < topo.RoundSize(); i++ {
		s := topo.Route(fmt.Sprintf("client-%d", i), st)
		if s < 0 || s >= topo.P() {
			t.Fatalf("route %d returned shard %d", i, s)
		}
	}
	for s, load := range st.Load {
		if load != topo.Quota(s) {
			t.Fatalf("after a full round, load = %v, want quotas %v", st.Load, topo.Quotas())
		}
	}
}

func TestHashQuotaStickyUntilFull(t *testing.T) {
	topo := mustNew(t, 1, ModeHashQuota, 16, []ShardSpec{{}, {}, {}, {}})
	// The same client routes to the same shard while its quota lasts.
	st1 := topo.NewState()
	st2 := topo.NewState()
	for i := 0; i < 3; i++ {
		if a, b := topo.Route("alice", st1), topo.Route("alice", st2); a != b {
			t.Fatalf("hash routing not deterministic: %d vs %d", a, b)
		}
	}
}

func TestHashQuotaAnonymousBalances(t *testing.T) {
	topo := mustNew(t, 1, ModeHashQuota, 8, []ShardSpec{{Weight: 1}, {Weight: 3}})
	st := topo.NewState()
	for i := 0; i < 8; i++ {
		topo.Route("", st)
	}
	if st.Load[0] != 2 || st.Load[1] != 6 {
		t.Fatalf("anonymous hash-quota load = %v, want [2 6]", st.Load)
	}
}

func TestRoundRobinHonoursWeights(t *testing.T) {
	topo := mustNew(t, 1, ModeRoundRobin, 9, []ShardSpec{{Weight: 2}, {Weight: 1}})
	st := topo.NewState()
	for i := 0; i < 9; i++ {
		topo.Route(fmt.Sprintf("c%d", i), st)
	}
	if st.Load[0] != 6 || st.Load[1] != 3 {
		t.Fatalf("round-robin load = %v, want [6 3]", st.Load)
	}
}

func TestStickyMatchesLegacyRouting(t *testing.T) {
	// ModeSticky must reproduce the pre-topology router bit for bit:
	// FNV-32a of the client id modulo P, round-robin for anonymous.
	topo := mustNew(t, 1, ModeSticky, 8, make([]ShardSpec, 4))
	st := topo.NewState()
	legacyRR := 0
	for i := 0; i < 16; i++ {
		id := ""
		if i%2 == 0 {
			id = fmt.Sprintf("client-%d", i)
		}
		var want int
		if id != "" {
			want = legacyFNV(id) % 4
		} else {
			want = legacyRR
			legacyRR = (legacyRR + 1) % 4
		}
		if got := topo.Route(id, st); got != want {
			t.Fatalf("update %d (id %q): shard %d, want %d", i, id, got, want)
		}
	}
}

func legacyFNV(id string) int {
	const offset32, prime32 = 2166136261, 16777619
	h := uint32(offset32)
	for i := 0; i < len(id); i++ {
		h ^= uint32(id[i])
		h *= prime32
	}
	return int(h % 4)
}

func TestConsistentHashingStability(t *testing.T) {
	// Growing the shard set must leave most identified clients on their
	// original shard — the property that makes reshards cheap on sticky
	// anonymity sets. Remote shards keep their identity by address.
	specs := []ShardSpec{{Addr: "http://a"}, {Addr: "http://b"}, {Addr: "http://c"}}
	before := mustNew(t, 1, ModeHashQuota, 1000, specs)
	after := mustNew(t, 2, ModeHashQuota, 1000, append(append([]ShardSpec{}, specs...), ShardSpec{Addr: "http://d"}))
	moved := 0
	const clients = 500
	for i := 0; i < clients; i++ {
		id := fmt.Sprintf("client-%d", i)
		b := before.ringShard(id)
		a := after.ringShard(id)
		if a == 3 {
			continue // moved onto the new shard — expected for ~1/4
		}
		if before.Spec(b).Addr != after.Spec(a).Addr {
			moved++
		}
	}
	if moved > clients/10 {
		t.Fatalf("%d of %d clients moved between surviving shards (want ~0)", moved, clients)
	}
}

func TestMarshalParseRoundTrip(t *testing.T) {
	topo := mustNew(t, 7, ModeHashQuota, 12, []ShardSpec{
		{Weight: 2},
		{Addr: "http://shard-b:8441", Weight: 1},
		{Addr: "http://shard-c:8441", Weight: 3},
	})
	got, err := Parse(topo.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(topo) {
		t.Fatalf("roundtrip mismatch: %+v vs %+v", got, topo)
	}
	if got.Quota(2) != topo.Quota(2) {
		t.Fatal("quotas not rebuilt on parse")
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	topo := mustNew(t, 1, ModeSticky, 4, make([]ShardSpec, 2))
	good := topo.Marshal()
	for _, bad := range [][]byte{
		nil,
		[]byte("XXXX"),
		good[:len(good)-1],
		append(append([]byte{}, good...), 0),
	} {
		if _, err := Parse(bad); err == nil {
			t.Fatalf("garbage blob of %d bytes accepted", len(bad))
		}
	}
}

func TestPlannerStageAdvance(t *testing.T) {
	initial := mustNew(t, 0, ModeSticky, 8, make([]ShardSpec, 2))
	p := NewPlanner(initial)
	if got := p.Advance(); !got.Equal(initial) {
		t.Fatal("advance with nothing staged changed the topology")
	}
	next, err := p.Stage(Directive{Mode: ModeHashQuota, Shards: []ShardSpec{{Weight: 1}, {Weight: 1}, {Weight: 2}}})
	if err != nil {
		t.Fatal(err)
	}
	if next.Version() != 1 || next.P() != 3 || next.Mode() != ModeHashQuota {
		t.Fatalf("staged topology wrong: v%d P=%d mode=%s", next.Version(), next.P(), next.Mode())
	}
	if next.RoundSize() != 8 {
		t.Fatalf("round size not kept: %d", next.RoundSize())
	}
	if cur := p.Current(); !cur.Equal(initial) {
		t.Fatal("stage mutated the current topology")
	}
	if got := p.Advance(); !got.Equal(next) {
		t.Fatal("advance did not promote the staged topology")
	}
	if p.Staged() != nil {
		t.Fatal("staged survived the advance")
	}
}

func TestPlannerStageRejects(t *testing.T) {
	p := NewPlanner(mustNew(t, 0, ModeSticky, 4, make([]ShardSpec, 2)))
	if _, err := p.Stage(Directive{Shards: []ShardSpec{}}); err == nil {
		t.Fatal("empty shard set staged")
	}
	if _, err := p.Stage(Directive{Shards: make([]ShardSpec, 9)}); err == nil {
		t.Fatal("more shards than round size staged")
	}
	if p.Staged() != nil {
		t.Fatal("failed stage left a staged topology")
	}
}

func TestPlannerLatestStageWins(t *testing.T) {
	p := NewPlanner(mustNew(t, 0, ModeSticky, 8, make([]ShardSpec, 2)))
	if _, err := p.Stage(Directive{Shards: make([]ShardSpec, 3)}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Stage(Directive{Shards: make([]ShardSpec, 4)}); err != nil {
		t.Fatal(err)
	}
	got := p.Advance()
	if got.P() != 4 {
		t.Fatalf("advanced to P=%d, want the latest staged 4", got.P())
	}
	if got.Version() != 1 {
		t.Fatalf("version = %d, want 1 (versions count applied plans)", got.Version())
	}
}

func TestModeParseString(t *testing.T) {
	for _, m := range []Mode{ModeSticky, ModeRoundRobin, ModeHashQuota} {
		got, err := ParseMode(m.String())
		if err != nil || got != m {
			t.Fatalf("ParseMode(%q) = %v, %v", m.String(), got, err)
		}
	}
	if _, err := ParseMode("bogus"); err == nil {
		t.Fatal("bogus mode parsed")
	}
	if got, err := ParseMode(""); err != nil || got != ModeSticky {
		t.Fatalf("empty mode = %v, %v, want sticky default", got, err)
	}
}
