package route

import (
	"fmt"
	"sync"
)

// Directive is an operator's request to change the routing plane: each
// zero field means "keep the current value". Directives arrive from the
// proxy's /v1/admin/topology endpoint or from mixnn-proxy's -shards-file
// hot reload; the Planner turns them into the next epoch's Topology.
type Directive struct {
	// Mode switches the routing policy (0 = keep).
	Mode Mode
	// RoundSize changes the round size C (0 = keep).
	RoundSize int
	// Shards replaces the shard set (nil = keep). An empty non-nil slice
	// is invalid — a tier cannot shrink to zero shards.
	Shards []ShardSpec
}

// Planner owns the routing plane's lifecycle: the current epoch's
// topology plus at most one staged successor. Stage validates and builds
// the successor immediately (so a bad directive fails at the admin call,
// not at round close); Advance promotes it — the proxy calls Advance
// inside the same critical section that swaps its per-epoch mixers, which
// is what makes membership changes atomic at round boundaries.
type Planner struct {
	mu     sync.Mutex
	cur    *Topology
	staged *Topology
}

// NewPlanner builds a planner over the tier's initial topology.
func NewPlanner(initial *Topology) *Planner {
	return &Planner{cur: initial}
}

// Current returns the topology of the epoch being ingested.
func (p *Planner) Current() *Topology {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.cur
}

// Staged returns the topology staged for the next epoch, nil if none.
func (p *Planner) Staged() *Topology {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.staged
}

// Stage computes the next epoch's topology from the current one plus the
// directive, validates it, and stages it for the next Advance. A second
// Stage before the next Advance replaces the previously staged plan (the
// operator's latest word wins). The staged topology's version is always
// current+1: versions count applied plans, not attempts.
func (p *Planner) Stage(d Directive) (*Topology, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	mode := d.Mode
	if mode == 0 {
		mode = p.cur.Mode()
	}
	roundSize := d.RoundSize
	if roundSize == 0 {
		roundSize = p.cur.RoundSize()
	}
	specs := d.Shards
	if specs == nil {
		specs = p.cur.Specs()
	} else if len(specs) == 0 {
		return nil, fmt.Errorf("route: directive with an empty shard set")
	}
	next, err := New(p.cur.Version()+1, mode, roundSize, specs)
	if err != nil {
		return nil, err
	}
	p.staged = next
	return next, nil
}

// Unstage discards the staged topology (if any). The proxy uses it to
// roll back a directive whose cross-process side effects (peer
// round-size syncs) could not complete — a half-applied plan must not
// auto-promote at the next round close.
func (p *Planner) Unstage() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.staged = nil
}

// Advance promotes the staged topology (if any) and returns the topology
// the new epoch should run under. Callers must invoke it exactly once per
// epoch swap, inside the swap's critical section.
func (p *Planner) Advance() *Topology {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.staged != nil {
		p.cur, p.staged = p.staged, nil
	}
	return p.cur
}

// Reset replaces the current topology outright (no version bump, staged
// plan discarded). RestoreState uses it when a sealed blob dictates the
// topology the tier must come back under.
func (p *Planner) Reset(t *Topology) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.cur, p.staged = t, nil
}
