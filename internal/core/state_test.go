package core

import (
	"math/rand"
	"testing"

	"mixnn/internal/nn"
)

func TestStreamMixerStateRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	updates := makeUpdates(6, 3, rng)
	m, err := NewStreamMixer(4, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Buffer 4, emit on the next 2.
	var emittedBefore []nn.ParamSet
	for _, u := range updates {
		out, err := m.Add(u)
		if err != nil {
			t.Fatal(err)
		}
		if out != nil {
			emittedBefore = append(emittedBefore, *out)
		}
	}

	blob, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	restored, err := NewStreamMixer(4, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if restored.Buffered() != m.Buffered() {
		t.Fatalf("buffered = %d, want %d", restored.Buffered(), m.Buffered())
	}
	if restored.Received() != m.Received() || restored.Emitted() != m.Emitted() {
		t.Fatalf("counters = %d/%d, want %d/%d",
			restored.Received(), restored.Emitted(), m.Received(), m.Emitted())
	}

	// Conservation must hold across the snapshot boundary: the drained
	// remainder plus the pre-snapshot emissions must average to the
	// average of all inputs.
	all := append(emittedBefore, restored.Drain()...)
	if len(all) != len(updates) {
		t.Fatalf("total emissions = %d, want %d", len(all), len(updates))
	}
	want, _ := nn.Average(updates)
	got, err := nn.Average(all)
	if err != nil {
		t.Fatal(err)
	}
	if !want.ApproxEqual(got, 1e-9) {
		t.Fatal("aggregate broken across snapshot/restore")
	}
}

func TestStreamMixerStateRoundTripEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m, err := NewStreamMixer(3, rng)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := NewStreamMixer(3, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	// A restored-empty mixer must accept updates like a fresh one.
	u := makeUpdates(1, 2, rng)[0]
	if _, err := restored.Add(u); err != nil {
		t.Fatalf("Add after empty restore: %v", err)
	}
}

func TestStreamMixerStateRejects(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m, err := NewStreamMixer(3, rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Add(makeUpdates(1, 2, rng)[0]); err != nil {
		t.Fatal(err)
	}
	blob, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	t.Run("non-fresh receiver", func(t *testing.T) {
		if err := m.UnmarshalBinary(blob); err == nil {
			t.Fatal("restore into used mixer accepted")
		}
	})
	t.Run("k mismatch", func(t *testing.T) {
		other, err := NewStreamMixer(5, rng)
		if err != nil {
			t.Fatal(err)
		}
		if err := other.UnmarshalBinary(blob); err == nil {
			t.Fatal("k mismatch accepted")
		}
	})
	t.Run("bad magic", func(t *testing.T) {
		bad := append([]byte(nil), blob...)
		bad[0] = 'X'
		fresh, err := NewStreamMixer(3, rng)
		if err != nil {
			t.Fatal(err)
		}
		if err := fresh.UnmarshalBinary(bad); err == nil {
			t.Fatal("bad magic accepted")
		}
	})
	t.Run("truncated", func(t *testing.T) {
		fresh, err := NewStreamMixer(3, rng)
		if err != nil {
			t.Fatal(err)
		}
		if err := fresh.UnmarshalBinary(blob[:len(blob)/2]); err == nil {
			t.Fatal("truncated blob accepted")
		}
	})
}
