package core

import (
	"fmt"
	"math/rand"
	"sync"

	"mixnn/internal/nn"
)

// StreamMixer is the paper's §4.3 enclave implementation of mixing: the
// parameters of each layer are stored in per-layer lists of capacity k.
// The first k updates fill the lists. Every further update causes the
// mixer to pick at random and remove one element from each list, assemble
// those elements into an outgoing update, and file the arriving update's
// layers into the freed slots.
//
// A StreamMixer is safe for concurrent use: Add, Drain, the counters and
// the state snapshot methods serialise on an internal mutex, so the
// sharded proxy tier can drive one mixer per shard from concurrent
// request handlers.
type StreamMixer struct {
	k   int
	rng *rand.Rand

	mu       sync.Mutex
	template nn.ParamSet // structure of the first update; guards compatibility
	lists    [][]nn.LayerParams
	buffered int
	emitted  int
	received int
	// slab, when non-nil, switches the mixer to slab-backed storage:
	// every accepted update is copied (or wire-decoded) into one
	// stride-length row of a contiguous float64 chunk and the lists hold
	// that row's pre-built view, so the swap/drain logic below runs
	// unchanged — and RNG-identically — while per-update allocation
	// drops to ~zero. See slab.go.
	slab *slabStore
}

// NewStreamMixer creates a mixer with per-layer lists of capacity k.
func NewStreamMixer(k int, rng *rand.Rand) (*StreamMixer, error) {
	if k <= 0 {
		return nil, fmt.Errorf("core: stream mixer requires k > 0, got %d", k)
	}
	if rng == nil {
		return nil, fmt.Errorf("core: stream mixer requires a rand source")
	}
	return &StreamMixer{k: k, rng: rng}, nil
}

// NewStreamMixerSlab creates a slab-backed mixer: same mixing semantics
// as NewStreamMixer (bit-identical output for the same seed), storage in
// contiguous per-round float64 slabs drawn from pool. pool may be nil
// (the mixer then allocates chunks that die with it instead of
// recycling them at the epoch swap).
func NewStreamMixerSlab(k int, rng *rand.Rand, pool *SlabPool) (*StreamMixer, error) {
	m, err := NewStreamMixer(k, rng)
	if err != nil {
		return nil, err
	}
	m.slab = newSlabStore(k, pool)
	return m, nil
}

// K returns the list capacity.
func (m *StreamMixer) K() int { return m.k }

// Buffered returns the number of updates currently held in the lists.
func (m *StreamMixer) Buffered() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.buffered
}

// Received returns the total number of updates accepted.
func (m *StreamMixer) Received() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.received
}

// Emitted returns the total number of mixed updates produced.
func (m *StreamMixer) Emitted() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.emitted
}

// Add accepts one participant update. While the lists are filling
// (fewer than k buffered) it returns (nil, nil). Once the lists are full,
// each Add returns exactly one mixed update assembled from randomly-drawn
// buffered layers, with the arriving layers taking the freed slots.
func (m *StreamMixer) Add(u nn.ParamSet) (*nn.ParamSet, error) {
	if len(u.Layers) == 0 {
		return nil, fmt.Errorf("core: empty update")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.slab != nil {
		view, err := m.slab.fileParamSet(u)
		if err != nil {
			return nil, fmt.Errorf("core: update incompatible with mixer model structure")
		}
		u = view
	}
	return m.addLocked(u)
}

// addLocked runs the §4.3 fill/swap step on an update whose storage is
// already settled (the caller's ParamSet for a legacy mixer, a slab row
// view for a slab mixer). Caller holds m.mu.
func (m *StreamMixer) addLocked(u nn.ParamSet) (*nn.ParamSet, error) {
	if m.lists == nil {
		m.template = u
		m.lists = make([][]nn.LayerParams, len(u.Layers))
		for i := range m.lists {
			m.lists[i] = make([]nn.LayerParams, 0, m.k)
		}
	} else if m.slab == nil && !m.template.Compatible(u) {
		// A slab mixer already checked structure against its layout while
		// filing the row.
		return nil, fmt.Errorf("core: update incompatible with mixer model structure")
	}
	m.received++

	if m.buffered < m.k {
		for li, lp := range u.Layers {
			m.lists[li] = append(m.lists[li], lp)
		}
		m.buffered++
		return nil, nil
	}

	var out *nn.ParamSet
	if m.slab != nil {
		out = m.slab.emission(len(m.lists))
	} else {
		out = &nn.ParamSet{Layers: make([]nn.LayerParams, len(m.lists))}
	}
	for li := range m.lists {
		pick := m.rng.Intn(len(m.lists[li]))
		out.Layers[li] = m.lists[li][pick]
		// Replace the drawn element with the arriving layer ("the empty
		// element in each list is then filled out with information coming
		// from the incoming update", §4.3).
		m.lists[li][pick] = u.Layers[li]
	}
	m.emitted++
	return out, nil
}

// Drain empties the lists at the end of a round, emitting the remaining
// buffered material as mixed updates (each assembled from one random
// element per layer, without replacement). After Drain the mixer is ready
// for a new round. The paper's proxy drains once all C participants of a
// round have been forwarded, which restores L = C and therefore exact
// aggregation equivalence.
func (m *StreamMixer) Drain() []nn.ParamSet {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]nn.ParamSet, 0, m.buffered)
	for m.buffered > 0 {
		ps := nn.ParamSet{Layers: make([]nn.LayerParams, len(m.lists))}
		for li := range m.lists {
			pick := m.rng.Intn(len(m.lists[li]))
			last := len(m.lists[li]) - 1
			ps.Layers[li] = m.lists[li][pick]
			m.lists[li][pick] = m.lists[li][last]
			m.lists[li] = m.lists[li][:last]
		}
		m.buffered--
		m.emitted++
		out = append(out, ps)
	}
	return out
}

// StreamTransform adapts StreamMixer to the federated pipeline: it feeds
// the round's updates through a fresh k-buffer stream and drains it, so the
// server receives exactly as many updates as participants sent
// (it satisfies fl.UpdateTransform).
type StreamTransform struct {
	// K is the list capacity; it must be at most the number of
	// participants per round (otherwise the buffer never fills).
	K int
}

// Name implements fl.UpdateTransform.
func (t StreamTransform) Name() string { return "mixnn-stream" }

// Apply implements fl.UpdateTransform.
func (t StreamTransform) Apply(updates []nn.ParamSet, rng *rand.Rand) ([]nn.ParamSet, error) {
	k := t.K
	if k <= 0 || k > len(updates) {
		k = len(updates)
	}
	m, err := NewStreamMixer(k, rng)
	if err != nil {
		return nil, err
	}
	out := make([]nn.ParamSet, 0, len(updates))
	for i, u := range updates {
		mixed, err := m.Add(u)
		if err != nil {
			return nil, fmt.Errorf("core: stream update %d: %w", i, err)
		}
		if mixed != nil {
			out = append(out, *mixed)
		}
	}
	out = append(out, m.Drain()...)
	return out, nil
}
