package core

import (
	"math/rand"
	"testing"

	"mixnn/internal/nn"
)

// TestWeightedAverageBreaksUnderMixing documents the design constraint the
// §4.2 proof implies: MixNN's equivalence holds for the UNIFORM mean only.
// If the server weighted updates (e.g. by dataset size, classic FedAvg),
// mixing would attach participant i's weight to other participants'
// layers, changing the aggregate. MixNN deployments must aggregate
// uniformly — which the paper's operating flow does.
func TestWeightedAverageBreaksUnderMixing(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	updates := makeUpdates(6, 3, rng)
	weights := []float64{1, 2, 3, 4, 5, 6} // deliberately non-uniform

	mixed, err := BatchMix(updates, rng)
	if err != nil {
		t.Fatal(err)
	}

	before, err := nn.WeightedAverage(updates, weights)
	if err != nil {
		t.Fatal(err)
	}
	after, err := nn.WeightedAverage(mixed, weights)
	if err != nil {
		t.Fatal(err)
	}
	if before.ApproxEqual(after, 1e-6) {
		t.Fatal("weighted aggregation unexpectedly survived mixing — the uniform-mean constraint would be moot")
	}

	// Uniform weights are exactly the §4.2 setting and must agree.
	uniform := []float64{1, 1, 1, 1, 1, 1}
	b2, err := nn.WeightedAverage(updates, uniform)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := nn.WeightedAverage(mixed, uniform)
	if err != nil {
		t.Fatal(err)
	}
	if !b2.ApproxEqual(a2, 1e-9) {
		t.Fatal("uniform weighted average disagrees with mixing equivalence")
	}
}
