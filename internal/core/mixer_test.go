package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mixnn/internal/nn"
	"mixnn/internal/tensor"
)

// makeUpdates builds c structurally-identical random updates with nLayers
// layers of two tensors each. Each update is tagged: every scalar of
// update i's layer j equals a distinct base value, so tests can trace
// exactly where each layer went after mixing.
func makeUpdates(c, nLayers int, rng *rand.Rand) []nn.ParamSet {
	out := make([]nn.ParamSet, c)
	for i := 0; i < c; i++ {
		var ps nn.ParamSet
		for j := 0; j < nLayers; j++ {
			w := tensor.New(3, 2).RandN(rng, float64(i*100+j), 0.01)
			b := tensor.New(2).RandN(rng, float64(i*100+j), 0.01)
			ps.Layers = append(ps.Layers, nn.LayerParams{
				Name:    layerName(j),
				Tensors: []*tensor.Tensor{w, b},
			})
		}
		out[i] = ps
	}
	return out
}

func layerName(j int) string { return string(rune('a' + j)) }

func TestBatchMixPreservesAggregation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	updates := makeUpdates(8, 4, rng)
	mixed, err := BatchMix(updates, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(mixed) != len(updates) {
		t.Fatalf("mixed %d updates from %d inputs", len(mixed), len(updates))
	}
	before, err := nn.Average(updates)
	if err != nil {
		t.Fatal(err)
	}
	after, err := nn.Average(mixed)
	if err != nil {
		t.Fatal(err)
	}
	if !before.ApproxEqual(after, 1e-9) {
		t.Fatal("aggregation changed by mixing (violates §4.2 theorem)")
	}
}

func TestBatchMixAssignmentIsPerLayerBijection(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	updates := makeUpdates(10, 5, rng)
	_, assign, err := BatchMixAssignment(updates, rng, GranularityLayer)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 5; j++ {
		seen := make(map[int]bool)
		for i := range assign {
			src := assign[i][j]
			if seen[src] {
				t.Fatalf("layer %d: participant %d used twice (not a bijection)", j, src)
			}
			seen[src] = true
		}
		if len(seen) != len(updates) {
			t.Fatalf("layer %d: only %d of %d participants used", j, len(seen), len(updates))
		}
	}
}

func TestBatchMixAssignmentMatchesContent(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	updates := makeUpdates(6, 3, rng)
	mixed, assign, err := BatchMixAssignment(updates, rng, GranularityLayer)
	if err != nil {
		t.Fatal(err)
	}
	for i := range mixed {
		for j := range mixed[i].Layers {
			src := assign[i][j]
			want := updates[src].Layers[j]
			got := mixed[i].Layers[j]
			if !tensor.Equal(got.Tensors[0], want.Tensors[0]) {
				t.Fatalf("slot %d layer %d does not hold participant %d's layer", i, j, src)
			}
			if got.Name != want.Name {
				t.Fatalf("slot %d layer %d name %q, want %q", i, j, got.Name, want.Name)
			}
		}
	}
}

func TestBatchMixActuallyMixes(t *testing.T) {
	// With 20 participants and 5 layers the probability that every emitted
	// update is entirely from a single participant is astronomically
	// small; assert at least one emitted update is genuinely composite.
	rng := rand.New(rand.NewSource(4))
	updates := makeUpdates(20, 5, rng)
	_, assign, err := BatchMixAssignment(updates, rng, GranularityLayer)
	if err != nil {
		t.Fatal(err)
	}
	composite := 0
	for i := range assign {
		first := assign[i][0]
		for _, src := range assign[i][1:] {
			if src != first {
				composite++
				break
			}
		}
	}
	if composite == 0 {
		t.Fatal("no emitted update combined layers from different participants")
	}
}

func TestBatchMixGranularities(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	updates := makeUpdates(6, 3, rng)

	tests := []struct {
		g         Granularity
		wantUnits int
	}{
		{GranularityLayer, 3},
		{GranularityTensor, 6}, // 3 layers x 2 tensors
		{GranularityModel, 1},
	}
	for _, tt := range tests {
		t.Run(tt.g.String(), func(t *testing.T) {
			mixed, assign, err := BatchMixAssignment(updates, rng, tt.g)
			if err != nil {
				t.Fatal(err)
			}
			if len(assign[0]) != tt.wantUnits {
				t.Fatalf("units = %d, want %d", len(assign[0]), tt.wantUnits)
			}
			before, _ := nn.Average(updates)
			after, err := nn.Average(mixed)
			if err != nil {
				t.Fatal(err)
			}
			if !before.ApproxEqual(after, 1e-9) {
				t.Fatalf("granularity %v changed the aggregate", tt.g)
			}
		})
	}
}

func TestBatchMixModelGranularityKeepsUpdatesIntact(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	updates := makeUpdates(5, 3, rng)
	mixed, assign, err := BatchMixAssignment(updates, rng, GranularityModel)
	if err != nil {
		t.Fatal(err)
	}
	for i := range mixed {
		if !mixed[i].ApproxEqual(updates[assign[i][0]], 0) {
			t.Fatalf("slot %d is not exactly participant %d's whole update", i, assign[i][0])
		}
	}
}

func TestBatchMixErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	if _, err := BatchMix(nil, rng); err == nil {
		t.Fatal("BatchMix(nil) succeeded")
	}
	a := makeUpdates(1, 2, rng)[0]
	b := makeUpdates(1, 3, rng)[0]
	if _, err := BatchMix([]nn.ParamSet{a, b}, rng); err == nil {
		t.Fatal("BatchMix of incompatible updates succeeded")
	}
	if _, _, err := BatchMixAssignment(makeUpdates(2, 2, rng), rng, Granularity(99)); err == nil {
		t.Fatal("unknown granularity accepted")
	}
}

func TestTransformInterface(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	updates := makeUpdates(4, 3, rng)
	tr := Transform{}
	if tr.Name() != "mixnn" {
		t.Fatalf("Name() = %q", tr.Name())
	}
	mixed, err := tr.Apply(updates, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(mixed) != 4 {
		t.Fatalf("Apply returned %d updates, want 4", len(mixed))
	}
}

// Property (§4.2 theorem): Agr(mixed) == Agr(original) for random update
// populations, layer counts and granularities.
func TestQuickMixEquivalence(t *testing.T) {
	f := func(seed int64, c8, l8, g8 uint8) bool {
		c := int(c8%9) + 2
		l := int(l8%5) + 1
		g := Granularity(int(g8%3) + 1)
		rng := rand.New(rand.NewSource(seed))
		updates := makeUpdates(c, l, rng)
		mixed, _, err := BatchMixAssignment(updates, rng, g)
		if err != nil {
			return false
		}
		before, err1 := nn.Average(updates)
		after, err2 := nn.Average(mixed)
		if err1 != nil || err2 != nil {
			return false
		}
		return before.ApproxEqual(after, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: every unit column of the assignment matrix is a bijection —
// the paper's condition that each participant/layer combination appears
// exactly once.
func TestQuickMixBijectivity(t *testing.T) {
	f := func(seed int64, c8, l8 uint8) bool {
		c := int(c8%9) + 2
		l := int(l8%5) + 1
		rng := rand.New(rand.NewSource(seed))
		updates := makeUpdates(c, l, rng)
		_, assign, err := BatchMixAssignment(updates, rng, GranularityLayer)
		if err != nil {
			return false
		}
		for j := 0; j < l; j++ {
			seen := make(map[int]bool, c)
			for i := 0; i < c; i++ {
				if seen[assign[i][j]] {
					return false
				}
				seen[assign[i][j]] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
