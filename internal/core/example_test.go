package core_test

import (
	"fmt"
	"math/rand"

	"mixnn/internal/core"
	"mixnn/internal/nn"
	"mixnn/internal/tensor"
)

// ExampleBatchMix shows the paper's central property: mixing layers between
// participants leaves the aggregated mean unchanged.
func ExampleBatchMix() {
	rng := rand.New(rand.NewSource(1))

	// Three participants, each with a two-layer update.
	updates := make([]nn.ParamSet, 3)
	for i := range updates {
		updates[i] = nn.ParamSet{Layers: []nn.LayerParams{
			{Name: "conv1", Tensors: []*tensor.Tensor{tensor.Full(float64(i), 2)}},
			{Name: "fc1", Tensors: []*tensor.Tensor{tensor.Full(float64(i*10), 2)}},
		}}
	}

	mixed, err := core.BatchMix(updates, rng)
	if err != nil {
		panic(err)
	}

	before, _ := nn.Average(updates)
	after, _ := nn.Average(mixed)
	fmt.Println("updates emitted:", len(mixed))
	fmt.Println("aggregate unchanged:", before.ApproxEqual(after, 1e-12))
	// Output:
	// updates emitted: 3
	// aggregate unchanged: true
}

// ExampleStreamMixer walks the §4.3 enclave algorithm: fill k per-layer
// lists, then emit one mixed update per arrival.
func ExampleStreamMixer() {
	rng := rand.New(rand.NewSource(7))
	mixer, err := core.NewStreamMixer(2, rng)
	if err != nil {
		panic(err)
	}

	update := func(v float64) nn.ParamSet {
		return nn.ParamSet{Layers: []nn.LayerParams{
			{Name: "fc1", Tensors: []*tensor.Tensor{tensor.Full(v, 2)}},
		}}
	}

	for i := 1; i <= 4; i++ {
		out, err := mixer.Add(update(float64(i)))
		if err != nil {
			panic(err)
		}
		fmt.Printf("after update %d: emitted=%v buffered=%d\n", i, out != nil, mixer.Buffered())
	}
	fmt.Println("drained:", len(mixer.Drain()))
	// Output:
	// after update 1: emitted=false buffered=1
	// after update 2: emitted=false buffered=2
	// after update 3: emitted=true buffered=2
	// after update 4: emitted=true buffered=2
	// drained: 2
}
