package core

import (
	"bytes"
	"fmt"
	"sync"

	"mixnn/internal/nn"
)

// SlabPool recycles slab chunks across rounds: a round-scoped pool, in
// the sense that a chunk returns to it exactly once — at the epoch swap,
// after the retired mixers' round has been drained, encoded and
// committed to the outbox — and is handed to a later epoch's fresh
// mixers. Steady-state rounds therefore allocate no slab storage and no
// per-row view structures at all: the chunk carries its ParamSet views
// with it, and because a recycled chunk keeps its layout, the views are
// valid the moment the chunk is reused.
//
// Matching is by layout identity (skeleton bytes): a pooled chunk of a
// different model structure or a smaller row count is dropped to the GC
// rather than reshaped. The pool is safe for concurrent use and a nil
// *SlabPool is valid (every get misses, every put discards).
type SlabPool struct {
	p sync.Pool
}

// NewSlabPool builds an empty pool.
func NewSlabPool() *SlabPool { return &SlabPool{} }

func (p *SlabPool) get(layout *nn.SlabLayout, rows int) *slabChunk {
	if p == nil {
		return nil
	}
	// A pool may hold chunks of an older topology's shape (membership or
	// model changes); try a few before giving up so one stale chunk does
	// not defeat recycling forever.
	for i := 0; i < 4; i++ {
		v := p.p.Get()
		if v == nil {
			return nil
		}
		c := v.(*slabChunk)
		if c.rows >= rows && bytes.Equal(c.skeleton, layout.Skeleton()) {
			return c
		}
	}
	return nil
}

func (p *SlabPool) put(c *slabChunk) {
	if p != nil && c != nil {
		p.p.Put(c)
	}
}

// slabChunk is one contiguous allocation of slab rows plus the ParamSet
// views materialised over them (one per row, bulk-allocated). Chunks are
// never grown or reshaped: a store that outgrows its chunk appends a new
// one, so every view handed out stays valid for the whole round.
type slabChunk struct {
	skeleton []byte // layout identity (aliases the layout's skeleton)
	rows     int
	data     []float64
	views    []nn.ParamSet
}

// slabStore is a StreamMixer's slab-backed storage: each accepted update
// occupies one stride-length row of a chunk, and what the mixing lists
// hold are LayerParams drawn from the row's pre-built view — so the
// mixer's swap/drain logic runs unchanged (and RNG-identically) over
// tensors that all live in a handful of flat float64 allocations.
//
// Rows are never reused within a round: an emitted update's view aliases
// its row until the round's outbox entry is committed, so the store only
// ever appends. The whole round's storage is recycled at once through
// the SlabPool (see StreamMixer.ReleaseSlab). The store is guarded by
// the owning mixer's mutex.
type slabStore struct {
	pool      *SlabPool
	layout    *nn.SlabLayout
	chunkRows int
	chunks    []*slabChunk
	used      int // rows used in the last chunk

	// Emission arenas: mid-round emissions hand out *nn.ParamSet whose
	// struct and Layers slice come from bulk allocations, amortising the
	// two per-emission allocations of the legacy path to ~zero. Exhausted
	// arenas are abandoned to the GC (outstanding emissions keep them
	// alive) and replaced.
	emSets    []nn.ParamSet
	emSetUsed int
	emLayers  []nn.LayerParams
	emLayUsed int
}

func newSlabStore(k int, pool *SlabPool) *slabStore {
	rows := k
	if rows < 8 {
		rows = 8
	}
	return &slabStore{pool: pool, chunkRows: rows}
}

// ensureLayout learns the round's model structure from its first update.
func (s *slabStore) ensureLayout(build func() (*nn.SlabLayout, error)) error {
	if s.layout != nil {
		return nil
	}
	l, err := build()
	if err != nil {
		return err
	}
	s.layout = l
	return nil
}

// nextRow claims a fresh row, returning its pre-built view and storage.
func (s *slabStore) nextRow() (nn.ParamSet, []float64) {
	if len(s.chunks) == 0 || s.used == s.chunkRows {
		c := s.pool.get(s.layout, s.chunkRows)
		if c == nil {
			data := make([]float64, s.chunkRows*s.layout.Stride())
			c = &slabChunk{
				skeleton: s.layout.Skeleton(),
				rows:     s.chunkRows,
				data:     data,
				views:    s.layout.NewChunkViews(data, s.chunkRows),
			}
		}
		s.chunks = append(s.chunks, c)
		s.used = 0
	}
	c := s.chunks[len(s.chunks)-1]
	stride := s.layout.Stride()
	row := c.data[s.used*stride : (s.used+1)*stride]
	view := c.views[s.used]
	s.used++
	return view, row
}

// fileWire decodes one encoded update straight into a fresh row and
// returns its view — the wire-bytes → slab path with no intermediate
// materialisation.
func (s *slabStore) fileWire(wire []byte) (nn.ParamSet, error) {
	if err := s.ensureLayout(func() (*nn.SlabLayout, error) { return nn.SlabLayoutFromWire(wire) }); err != nil {
		return nn.ParamSet{}, err
	}
	view, row := s.nextRow()
	if err := s.layout.DecodeIntoSlab(row, wire); err != nil {
		s.used-- // the row was never published; reclaim it
		return nn.ParamSet{}, err
	}
	return view, nil
}

// fileParamSet copies one already-decoded update into a fresh row and
// returns its view (batch items and seal restores arrive decoded).
func (s *slabStore) fileParamSet(u nn.ParamSet) (nn.ParamSet, error) {
	if err := s.ensureLayout(func() (*nn.SlabLayout, error) { return nn.NewSlabLayout(u) }); err != nil {
		return nn.ParamSet{}, err
	}
	view, row := s.nextRow()
	if err := s.layout.CopyIntoRow(row, u); err != nil {
		s.used--
		return nn.ParamSet{}, err
	}
	return view, nil
}

// emission hands out an emission ParamSet with a Layers slice of length
// L, both drawn from the arenas.
func (s *slabStore) emission(L int) *nn.ParamSet {
	if s.emSetUsed == len(s.emSets) {
		s.emSets = make([]nn.ParamSet, s.chunkRows)
		s.emSetUsed = 0
	}
	if s.emLayUsed+L > len(s.emLayers) {
		n := s.chunkRows * L
		if n < L {
			n = L
		}
		s.emLayers = make([]nn.LayerParams, n)
		s.emLayUsed = 0
	}
	out := &s.emSets[s.emSetUsed]
	s.emSetUsed++
	out.Layers = s.emLayers[s.emLayUsed : s.emLayUsed+L : s.emLayUsed+L]
	s.emLayUsed += L
	return out
}

// release returns every chunk to the pool for the next epoch's mixers.
// The caller (ReleaseSlab) guarantees no view into the chunks is still
// referenced.
func (s *slabStore) release() {
	for i, c := range s.chunks {
		s.pool.put(c)
		s.chunks[i] = nil
	}
	s.chunks = nil
	s.used = 0
	s.emSets = nil
	s.emSetUsed = 0
	s.emLayers = nil
	s.emLayUsed = 0
}

// Layout exposes the store's learned layout (nil before the first
// update); the proxy's round packaging uses it to re-encode emissions
// through the skeleton fast path.
func (m *StreamMixer) Layout() *nn.SlabLayout {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.slab == nil {
		return nil
	}
	return m.slab.layout
}

// ReleaseSlab recycles a slab-backed mixer's storage into its pool. It
// is the round-scoped half of the pool lifecycle: the proxy calls it on
// a RETIRED epoch's mixers after the round's outbox entry committed —
// at that point every emission and drained update of the round has been
// encoded into the sealed entry, so no live reference into the slab
// remains. It must NOT be called while the round's material can still
// be referenced (a failed commit retains emissions that alias the slab;
// the proxy skips the release and lets the GC reclaim the chunks
// instead). A legacy mixer, a mixer without a pool, or a mixer still
// holding buffered material ignores the call.
func (m *StreamMixer) ReleaseSlab() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.slab == nil || m.slab.pool == nil || m.buffered != 0 {
		return
	}
	m.slab.release()
	m.lists = nil
	m.template = nn.ParamSet{}
}

// AddWire ingests one ENCODED update: the slab path decodes it straight
// into a fresh slab row (header-skeleton validation plus one bulk
// payload copy — no intermediate ParamSet, no per-tensor allocation) and
// mixes the row's pre-built view; a legacy mixer falls back to the
// zero-copy decoder plus Add. Emission semantics and the RNG call
// sequence are identical to Add, so slab and legacy mixers given the
// same seed produce bit-identical streams.
func (m *StreamMixer) AddWire(wire []byte) (*nn.ParamSet, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.slab == nil {
		ps, err := nn.DecodeParamSetNoCopy(wire)
		if err != nil {
			return nil, err
		}
		if len(ps.Layers) == 0 {
			return nil, fmt.Errorf("core: empty update")
		}
		return m.addLocked(ps)
	}
	view, err := m.slab.fileWire(wire)
	if err != nil {
		return nil, fmt.Errorf("core: update incompatible with mixer model structure: %w", err)
	}
	return m.addLocked(view)
}
