// Package core implements the MixNN mixing strategy — the paper's primary
// contribution (§4). A mixer receives the per-participant parameter updates
// and reassembles them so that each update sent to the aggregation server
// combines layers from different participants, destroying the per-client
// gradient footprint while leaving the layer-wise mean (and therefore the
// aggregated global model) unchanged up to floating-point reordering.
//
// Two modes are provided, matching the paper:
//
//   - BatchMix (§4.2): wait for all C participants, then emit L = C mixed
//     updates built from one independent uniform permutation per layer.
//     Per-layer bijectivity gives the aggregation-equivalence theorem.
//   - StreamMixer (§4.3): the implementation deployed inside the enclave.
//     Per-layer lists of capacity k are filled first; each further update
//     causes one element per layer to be drawn at random, assembled into
//     an outgoing update, and replaced by the arriving update's layer.
package core

import (
	"fmt"
	"math/rand"

	"mixnn/internal/nn"
	"mixnn/internal/tensor"
)

// Granularity selects the unit of mixing. The paper mixes whole layers;
// the other granularities exist for the ablation study.
type Granularity int

const (
	// GranularityLayer mixes per layer (the paper's design).
	GranularityLayer Granularity = iota + 1
	// GranularityTensor mixes each tensor independently (weights and
	// biases of the same layer may come from different participants).
	GranularityTensor
	// GranularityModel permutes whole updates without splitting them.
	// It preserves aggregation trivially but only unlinks sender
	// identity — the "no mixing" ablation arm.
	GranularityModel
)

// String implements fmt.Stringer.
func (g Granularity) String() string {
	switch g {
	case GranularityLayer:
		return "layer"
	case GranularityTensor:
		return "tensor"
	case GranularityModel:
		return "model"
	default:
		return fmt.Sprintf("granularity(%d)", int(g))
	}
}

// BatchMix mixes the C updates with one independent uniform permutation per
// layer and returns C mixed updates (the paper's L = C setting, where the
// proxy waits for every participant before mixing).
//
// The returned updates share tensor storage with the inputs; callers that
// mutate updates afterwards must clone.
func BatchMix(updates []nn.ParamSet, rng *rand.Rand) ([]nn.ParamSet, error) {
	mixed, _, err := BatchMixAssignment(updates, rng, GranularityLayer)
	return mixed, err
}

// BatchMixAssignment is BatchMix exposing the mixing matrix: assign[i][j]
// is the index of the participant whose unit j (layer or tensor, per the
// granularity) landed in outgoing update i. For GranularityModel there is
// a single unit per update. Tests use the assignment to verify per-unit
// bijectivity; the robustness analysis (Figure 9) uses it as ground truth.
func BatchMixAssignment(updates []nn.ParamSet, rng *rand.Rand, g Granularity) ([]nn.ParamSet, [][]int, error) {
	c := len(updates)
	if c == 0 {
		return nil, nil, fmt.Errorf("core: BatchMix of zero updates")
	}
	for i := 1; i < c; i++ {
		if !updates[0].Compatible(updates[i]) {
			return nil, nil, fmt.Errorf("core: update %d incompatible with update 0", i)
		}
	}
	units, err := unitCount(updates[0], g)
	if err != nil {
		return nil, nil, err
	}

	// One independent uniform permutation per unit: unit j of outgoing
	// update i comes from participant perm[j][i]. Every column of the
	// assignment matrix is a bijection over participants, which is exactly
	// the condition of the §4.2 equivalence proof.
	perm := make([][]int, units)
	for j := range perm {
		perm[j] = rng.Perm(c)
	}

	mixed := make([]nn.ParamSet, c)
	assign := make([][]int, c)
	for i := 0; i < c; i++ {
		assign[i] = make([]int, units)
		for j := 0; j < units; j++ {
			assign[i][j] = perm[j][i]
		}
		mixed[i] = assembleFrom(updates, assign[i], g)
	}
	return mixed, assign, nil
}

// unitCount returns the number of mixing units per update at granularity g.
func unitCount(ps nn.ParamSet, g Granularity) (int, error) {
	switch g {
	case GranularityLayer:
		return len(ps.Layers), nil
	case GranularityTensor:
		n := 0
		for _, lp := range ps.Layers {
			n += len(lp.Tensors)
		}
		return n, nil
	case GranularityModel:
		return 1, nil
	default:
		return 0, fmt.Errorf("core: unknown granularity %d", int(g))
	}
}

// assembleFrom builds one outgoing update taking unit j from
// updates[srcs[j]]. Tensors are shared, not copied.
func assembleFrom(updates []nn.ParamSet, srcs []int, g Granularity) nn.ParamSet {
	template := updates[0]
	switch g {
	case GranularityModel:
		return updates[srcs[0]]
	case GranularityLayer:
		out := nn.ParamSet{Layers: make([]nn.LayerParams, len(template.Layers))}
		for j := range template.Layers {
			out.Layers[j] = updates[srcs[j]].Layers[j]
		}
		return out
	case GranularityTensor:
		out := nn.ParamSet{Layers: make([]nn.LayerParams, len(template.Layers))}
		u := 0
		for li, lp := range template.Layers {
			tensors := make([]*tensor.Tensor, len(lp.Tensors))
			for ti := range lp.Tensors {
				tensors[ti] = updates[srcs[u]].Layers[li].Tensors[ti]
				u++
			}
			out.Layers[li] = nn.LayerParams{Name: lp.Name, Tensors: tensors}
		}
		return out
	default:
		panic(fmt.Sprintf("core: unknown granularity %d", int(g)))
	}
}

// Transform adapts the batch mixer to the federated pipeline
// (it satisfies fl.UpdateTransform).
type Transform struct {
	// Granularity defaults to GranularityLayer (the paper's design).
	Granularity Granularity
}

// Name implements fl.UpdateTransform.
func (t Transform) Name() string { return "mixnn" }

// Apply implements fl.UpdateTransform.
func (t Transform) Apply(updates []nn.ParamSet, rng *rand.Rand) ([]nn.ParamSet, error) {
	g := t.Granularity
	if g == 0 {
		g = GranularityLayer
	}
	mixed, _, err := BatchMixAssignment(updates, rng, g)
	return mixed, err
}
