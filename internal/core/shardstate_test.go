package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"mixnn/internal/nn"
)

// newTier builds p fresh mixers with capacity k each, as the Shard
// interface the seal/restore API operates on.
func newTier(t testing.TB, p, k int) []Shard {
	t.Helper()
	tier := make([]Shard, p)
	for s := range tier {
		m, err := NewStreamMixer(k, rand.New(rand.NewSource(int64(100+s))))
		if err != nil {
			t.Fatal(err)
		}
		tier[s] = m
	}
	return tier
}

// feedTier routes updates round-robin into the tier and collects whatever
// the mixers emit.
func feedTier(t testing.TB, tier []Shard, updates []nn.ParamSet) []nn.ParamSet {
	t.Helper()
	var out []nn.ParamSet
	for i, u := range updates {
		mixed, err := tier[i%len(tier)].Add(u)
		if err != nil {
			t.Fatalf("add %d: %v", i, err)
		}
		if mixed != nil {
			out = append(out, *mixed)
		}
	}
	return out
}

func drainTier(tier []Shard) []nn.ParamSet {
	var out []nn.ParamSet
	for _, m := range tier {
		out = append(out, m.Drain()...)
	}
	return out
}

// TestShardedStateReshardRoundTrip is the tentpole property as a table
// test: a tier sealed at P shards mid-round restores into P′ shards
// (including P′ > total buffered and P′ small enough to over-fill k) and
// the finished round's layer-wise mean equals the mean of all inputs.
func TestShardedStateReshardRoundTrip(t *testing.T) {
	cases := []struct {
		c, split, p, pPrime, k int
	}{
		{6, 3, 2, 2, 2},  // same shape
		{6, 3, 2, 3, 2},  // reshard up
		{8, 5, 4, 1, 2},  // reshard down: 5 buffered into one k=2 mixer (over-full)
		{12, 7, 3, 4, 2}, // reshard up mid-emission
		{5, 1, 1, 4, 5},  // single buffered entry over a wide tier
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("C%d_seal%d_P%d_to_P%d_k%d", tc.c, tc.split, tc.p, tc.pPrime, tc.k), func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			updates := makeUpdates(tc.c, 3, rng)

			tier := newTier(t, tc.p, tc.k)
			emitted := feedTier(t, tier, updates[:tc.split])

			blob, err := SealShardedState(tier, ShardedStateMeta{
				Routing: RoutingHashRR, RRCursor: tc.split, InRound: tc.split,
				Received: tc.split, Forwarded: len(emitted),
			}, nil)
			if err != nil {
				t.Fatal(err)
			}

			fresh := newTier(t, tc.pPrime, tc.k)
			meta, err := RestoreShardedState(blob, fresh, nil)
			if err != nil {
				t.Fatal(err)
			}
			if meta.SealedShards != tc.p {
				t.Fatalf("SealedShards = %d, want %d", meta.SealedShards, tc.p)
			}
			if meta.InRound != tc.split || meta.Received != tc.split || meta.Forwarded != len(emitted) {
				t.Fatalf("ledger = %+v", meta)
			}
			buffered := 0
			for _, m := range fresh {
				buffered += m.Buffered()
			}
			if buffered != tc.split-len(emitted) {
				t.Fatalf("restored buffered = %d, want %d", buffered, tc.split-len(emitted))
			}

			// Finish the round on the restored tier.
			emitted = append(emitted, feedTier(t, fresh, updates[tc.split:])...)
			emitted = append(emitted, drainTier(fresh)...)
			if len(emitted) != tc.c {
				t.Fatalf("round emitted %d updates, want %d", len(emitted), tc.c)
			}
			want, err := nn.Average(updates)
			if err != nil {
				t.Fatal(err)
			}
			got, err := nn.Average(emitted)
			if err != nil {
				t.Fatal(err)
			}
			if !want.ApproxEqual(got, 1e-9) {
				t.Fatal("resharded restore changed the layer-wise aggregate")
			}
		})
	}
}

// TestShardedStateSealedSections drives the per-shard seal/open hooks: the
// open func must be called with the seal-time shard indices, and a
// mismatched open must surface as an error, not silent corruption.
func TestShardedStateSealedSections(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tier := newTier(t, 3, 2)
	feedTier(t, tier, makeUpdates(5, 2, rng))

	xor := func(shard int, data []byte) []byte {
		out := make([]byte, len(data))
		for i, b := range data {
			out[i] = b ^ byte(shard+1)
		}
		return out
	}
	var sealed []int
	blob, err := SealShardedState(tier, ShardedStateMeta{Routing: RoutingHashRR}, func(s int, plain []byte) ([]byte, error) {
		sealed = append(sealed, s)
		return xor(s, plain), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// The pending section seals first (as PendingSection), then one call
	// per shard.
	if len(sealed) != 4 || sealed[0] != PendingSection || sealed[1] != 0 || sealed[2] != 1 || sealed[3] != 2 {
		t.Fatalf("seal called for shards %v, want [%d 0 1 2]", sealed, PendingSection)
	}

	var opened []int
	if _, err := RestoreShardedState(blob, newTier(t, 2, 2), func(s int, sec []byte) ([]byte, error) {
		opened = append(opened, s)
		return xor(s, sec), nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(opened) != 4 {
		t.Fatalf("open called for shards %v, want all 4 sections", opened)
	}

	// Opening with the wrong per-shard key material must fail loudly.
	if _, err := RestoreShardedState(blob, newTier(t, 2, 2), func(s int, sec []byte) ([]byte, error) {
		return xor(s+1, sec), nil
	}); err == nil {
		t.Fatal("mismatched section opener accepted")
	}
	// As must skipping the opener entirely.
	if _, err := RestoreShardedState(blob, newTier(t, 2, 2), nil); err == nil {
		t.Fatal("sealed sections restored without an opener")
	}
}

// TestShardedStateLedgersAndPendingRoundTrip pins the v2 additions: the
// per-shard mixer ledgers and the pending-emission buffer survive
// seal/restore, with same-shape restores landing each shard's material
// back in its own mixer.
func TestShardedStateLedgersAndPendingRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	updates := makeUpdates(9, 2, rng)

	tier := newTier(t, 2, 2)
	emitted := feedTier(t, tier, updates[:6]) // both k=2 mixers overflow → emissions
	if len(emitted) == 0 {
		t.Fatal("tier emitted nothing; test setup broken")
	}
	blob, err := SealShardedState(tier, ShardedStateMeta{
		Routing: RoutingHashRR, InRound: 6, Received: 6,
		ShardReceived: []int{13, 7}, ShardEmitted: []int{9, 4},
		Pending: emitted,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}

	fresh := newTier(t, 2, 2)
	meta, err := RestoreShardedState(blob, fresh, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(meta.ShardReceived) != 2 || meta.ShardReceived[0] != 13 || meta.ShardReceived[1] != 7 {
		t.Fatalf("ShardReceived = %v, want [13 7]", meta.ShardReceived)
	}
	if len(meta.ShardEmitted) != 2 || meta.ShardEmitted[0] != 9 || meta.ShardEmitted[1] != 4 {
		t.Fatalf("ShardEmitted = %v, want [9 4]", meta.ShardEmitted)
	}
	if len(meta.Pending) != len(emitted) {
		t.Fatalf("restored %d pending updates, want %d", len(meta.Pending), len(emitted))
	}
	// Same-shape restore: each mixer holds exactly what it held at seal.
	for s := range tier {
		if fresh[s].Buffered() != tier[s].Buffered() {
			t.Fatalf("shard %d buffered %d, sealed %d", s, fresh[s].Buffered(), tier[s].Buffered())
		}
	}
	// The whole round — buffered everywhere plus pending — is conserved:
	// finishing it must reproduce the classic mean.
	var out []nn.ParamSet
	out = append(out, meta.Pending...)
	out = append(out, feedTier(t, fresh, updates[6:])...)
	out = append(out, drainTier(fresh)...)
	want, _ := nn.Average(updates)
	got, err := nn.Average(out)
	if err != nil {
		t.Fatal(err)
	}
	if !want.ApproxEqual(got, 1e-9) {
		t.Fatal("pending + buffered restore broke conservation")
	}

	// Mismatched ledger lengths are rejected at seal time.
	if _, err := SealShardedState(tier, ShardedStateMeta{ShardReceived: []int{1}}, nil); err == nil {
		t.Fatal("mismatched shard ledger length accepted")
	}
}

// TestRestoreShardedStateReadsV1 pins upgrade compatibility: a blob in
// the PR 2 (version 1) layout — no per-shard ledgers, no pending
// section — still restores, so upgrading the binary does not strand a
// sealed mid-round.
func TestRestoreShardedStateReadsV1(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	tier := newTier(t, 2, 2)
	feedTier(t, tier, makeUpdates(3, 2, rng))

	var v1 bytes.Buffer
	v1.WriteString("MXSH")
	for _, v := range []uint32{1, 2} { // version 1, 2 shards
		binary.Write(&v1, binary.LittleEndian, v)
	}
	v1.WriteByte(byte(RoutingHashRR))
	for _, v := range []uint32{3, 3, 5, 0} { // rr, inRound, rounds, hopMark
		binary.Write(&v1, binary.LittleEndian, v)
	}
	for _, v := range []uint64{3, 0, 0} { // received, hopReceived, forwarded
		binary.Write(&v1, binary.LittleEndian, v)
	}
	for _, m := range tier {
		section, err := marshalSection(m.SnapshotEntries())
		if err != nil {
			t.Fatal(err)
		}
		binary.Write(&v1, binary.LittleEndian, uint32(len(section)))
		v1.Write(section)
	}

	if rounds, err := ShardedStateRounds(v1.Bytes()); err != nil || rounds != 5 {
		t.Fatalf("ShardedStateRounds on v1 = %d, %v; want 5, nil", rounds, err)
	}
	fresh := newTier(t, 2, 2)
	meta, err := RestoreShardedState(v1.Bytes(), fresh, nil)
	if err != nil {
		t.Fatalf("v1 blob no longer restores: %v", err)
	}
	if meta.Rounds != 5 || meta.InRound != 3 || meta.Received != 3 {
		t.Fatalf("v1 ledger = %+v", meta)
	}
	if meta.ShardReceived != nil || meta.Pending != nil {
		t.Fatalf("v1 blob restored phantom v2 fields: %+v", meta)
	}
	buffered := 0
	for _, m := range fresh {
		buffered += m.Buffered()
	}
	if buffered != 3 {
		t.Fatalf("v1 restore buffered %d, want 3", buffered)
	}
}

func TestRestoreShardedStateRejects(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	tier := newTier(t, 2, 2)
	feedTier(t, tier, makeUpdates(3, 2, rng))
	blob, err := SealShardedState(tier, ShardedStateMeta{Routing: RoutingHashRR, InRound: 3}, nil)
	if err != nil {
		t.Fatal(err)
	}

	fresh := func() []Shard { return newTier(t, 2, 2) }
	t.Run("garbage", func(t *testing.T) {
		if _, err := RestoreShardedState([]byte("not a blob"), fresh(), nil); err == nil {
			t.Fatal("garbage accepted")
		}
	})
	t.Run("bad magic", func(t *testing.T) {
		bad := append([]byte(nil), blob...)
		bad[0] = 'Z'
		if _, err := RestoreShardedState(bad, fresh(), nil); err == nil {
			t.Fatal("bad magic accepted")
		}
	})
	t.Run("wrong version", func(t *testing.T) {
		bad := append([]byte(nil), blob...)
		bad[4] = 0xFE
		if _, err := RestoreShardedState(bad, fresh(), nil); err == nil {
			t.Fatal("future version accepted")
		}
	})
	t.Run("truncated", func(t *testing.T) {
		if _, err := RestoreShardedState(blob[:len(blob)-5], fresh(), nil); err == nil {
			t.Fatal("truncated blob accepted")
		}
	})
	t.Run("trailing bytes", func(t *testing.T) {
		if _, err := RestoreShardedState(append(append([]byte(nil), blob...), 0xAA), fresh(), nil); err == nil {
			t.Fatal("trailing bytes accepted")
		}
	})
	t.Run("non-fresh target", func(t *testing.T) {
		used := fresh()
		feedTier(t, used, makeUpdates(1, 2, rng))
		if _, err := RestoreShardedState(blob, used, nil); err == nil {
			t.Fatal("restore into used tier accepted")
		}
	})
	t.Run("zero target shards", func(t *testing.T) {
		if _, err := RestoreShardedState(blob, nil, nil); err == nil {
			t.Fatal("restore into empty tier accepted")
		}
	})
	t.Run("forged section length", func(t *testing.T) {
		// A valid header claiming a near-limit section length against a
		// tiny blob must be rejected before any large allocation.
		var forged bytes.Buffer
		forged.WriteString("MXSH")
		for _, v := range []uint32{ShardedStateVersion, 1} {
			binary.Write(&forged, binary.LittleEndian, v)
		}
		forged.WriteByte(byte(RoutingHashRR))
		for i := 0; i < 4; i++ {
			binary.Write(&forged, binary.LittleEndian, uint32(0))
		}
		for i := 0; i < 3; i++ { // tier ledger
			binary.Write(&forged, binary.LittleEndian, uint64(0))
		}
		for i := 0; i < 2; i++ { // shard 0 ledger
			binary.Write(&forged, binary.LittleEndian, uint64(0))
		}
		// Forge the pending-section length (the first length-prefixed
		// section of a v2 blob).
		binary.Write(&forged, binary.LittleEndian, uint32(maxSectionBytes-1))
		if _, err := RestoreShardedState(forged.Bytes(), fresh(), nil); err == nil {
			t.Fatal("forged oversized section length accepted")
		}
	})
}

func TestSealShardedStateRejects(t *testing.T) {
	if _, err := SealShardedState(nil, ShardedStateMeta{}, nil); err == nil {
		t.Fatal("seal of zero shards accepted")
	}
	tier := newTier(t, 1, 2)
	if _, err := SealShardedState(tier, ShardedStateMeta{InRound: -1}, nil); err == nil {
		t.Fatal("negative ledger field accepted")
	}
}

// TestRestoredOverfullMixerStaysConservative pins the over-stuffed
// restore contract restoreEntry documents: a mixer holding more than k
// entries still swap-emits one update per Add and drains completely.
func TestRestoredOverfullMixerStaysConservative(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	updates := makeUpdates(6, 2, rng)

	tier := newTier(t, 4, 2)
	if got := feedTier(t, tier, updates[:4]); len(got) != 0 {
		t.Fatalf("tier emitted %d during fill", len(got))
	}
	blob, err := SealShardedState(tier, ShardedStateMeta{Routing: RoutingHashRR, InRound: 4}, nil)
	if err != nil {
		t.Fatal(err)
	}

	// 4 buffered entries land in ONE k=2 mixer: over-full by 2.
	narrow := newTier(t, 1, 2)
	if _, err := RestoreShardedState(blob, narrow, nil); err != nil {
		t.Fatal(err)
	}
	if narrow[0].Buffered() != 4 {
		t.Fatalf("buffered = %d, want 4", narrow[0].Buffered())
	}
	var emitted []nn.ParamSet
	emitted = append(emitted, feedTier(t, narrow, updates[4:])...)
	if len(emitted) != 2 {
		t.Fatalf("over-full mixer emitted %d on 2 adds, want 2", len(emitted))
	}
	emitted = append(emitted, drainTier(narrow)...)
	if len(emitted) != 6 {
		t.Fatalf("round emitted %d, want 6", len(emitted))
	}
	want, _ := nn.Average(updates)
	got, err := nn.Average(emitted)
	if err != nil {
		t.Fatal(err)
	}
	if !want.ApproxEqual(got, 1e-9) {
		t.Fatal("over-full restore broke conservation")
	}
}

// TestSealShardedStateConcurrentWithAdd exercises the seal path against
// concurrent mixing at the core level (run under -race): snapshotting a
// tier while every shard is being fed must neither race nor produce an
// unparseable blob.
func TestSealShardedStateConcurrentWithAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	const p, rounds = 3, 40
	tier := newTier(t, p, 2)
	updates := makeUpdates(rounds, 2, rng)

	var wg sync.WaitGroup
	for s := 0; s < p; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := s; i < rounds; i += p {
				if _, err := tier[s].Add(updates[i]); err != nil {
					t.Errorf("shard %d add %d: %v", s, i, err)
					return
				}
			}
		}(s)
	}
	sealDone := make(chan struct{})
	go func() {
		defer close(sealDone)
		for j := 0; j < 50; j++ {
			blob, err := SealShardedState(tier, ShardedStateMeta{Routing: RoutingHashRR}, nil)
			if err != nil {
				t.Errorf("concurrent seal: %v", err)
				return
			}
			if _, err := RestoreShardedState(blob, newTier(t, 2, 2), nil); err != nil {
				t.Errorf("concurrent seal produced unrestorable blob: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	<-sealDone
}

// TestShardedStateV3TopoAndLoads pins the v3 additions: the opaque
// topology blob and per-shard quota loads round-trip, and the topology
// is peekable without a full parse.
func TestShardedStateV3TopoAndLoads(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	tier := newTier(t, 2, 2)
	feedTier(t, tier, makeUpdates(3, 2, rng))
	topoBlob := []byte("opaque-topology-bytes")
	blob, err := SealShardedState(tier, ShardedStateMeta{
		Routing:   RoutingHashQuota,
		InRound:   3,
		ShardLoad: []int{2, 1},
		Topo:      topoBlob,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	peeked, err := ShardedStateTopo(blob)
	if err != nil {
		t.Fatal(err)
	}
	if string(peeked) != string(topoBlob) {
		t.Fatalf("peeked topo = %q, want %q", peeked, topoBlob)
	}
	meta, err := RestoreShardedState(blob, newTier(t, 2, 2), nil)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Routing != RoutingHashQuota {
		t.Fatalf("routing = %d, want hash-quota", meta.Routing)
	}
	if len(meta.ShardLoad) != 2 || meta.ShardLoad[0] != 2 || meta.ShardLoad[1] != 1 {
		t.Fatalf("ShardLoad = %v, want [2 1]", meta.ShardLoad)
	}
	if string(meta.Topo) != string(topoBlob) {
		t.Fatalf("restored topo = %q", meta.Topo)
	}
	// Mismatched load length is rejected at seal time.
	if _, err := SealShardedState(tier, ShardedStateMeta{ShardLoad: []int{1}}, nil); err == nil {
		t.Fatal("mismatched shard-load length accepted")
	}
	// ShardedStateTopo rejects garbage and pre-v3 blobs gracefully.
	if _, err := ShardedStateTopo([]byte("garbage")); err == nil {
		t.Fatal("garbage accepted by topo peek")
	}
}

// TestRelayShardConservation: the remote-placement buffer is trivially
// conservative (Drain returns exactly what Add received) and implements
// the full Shard contract including snapshot/restore.
func TestRelayShardConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	updates := makeUpdates(4, 2, rng)
	r := NewRelayShard(4)
	for _, u := range updates {
		out, err := r.Add(u)
		if err != nil {
			t.Fatal(err)
		}
		if out != nil {
			t.Fatal("relay shard emitted mid-round")
		}
	}
	if r.Buffered() != 4 || r.Received() != 4 || r.Emitted() != 0 {
		t.Fatalf("ledger = %d/%d/%d", r.Buffered(), r.Received(), r.Emitted())
	}
	snap := r.SnapshotEntries()
	if len(snap) != 4 {
		t.Fatalf("snapshot has %d entries", len(snap))
	}
	drained := r.Drain()
	if len(drained) != 4 || r.Buffered() != 0 || r.Emitted() != 4 {
		t.Fatalf("drain: %d entries, buffered %d, emitted %d", len(drained), r.Buffered(), r.Emitted())
	}
	for i := range drained {
		got, _ := nn.Average([]nn.ParamSet{drained[i]})
		want, _ := nn.Average([]nn.ParamSet{updates[i]})
		if !got.ApproxEqual(want, 0) {
			t.Fatalf("drained entry %d differs from input (relay must not mix)", i)
		}
	}
	// Restore path: entries land back, counted.
	r2 := NewRelayShard(4)
	for _, u := range snap {
		if err := r2.RestoreEntry(u); err != nil {
			t.Fatal(err)
		}
	}
	if r2.Buffered() != 4 || r2.Received() != 4 {
		t.Fatalf("restored relay ledger = %d/%d", r2.Buffered(), r2.Received())
	}
	if _, err := r.Add(nn.ParamSet{}); err == nil {
		t.Fatal("empty update accepted by relay")
	}
}

// TestShardedStateRelayInTier: a tier mixing StreamMixers and a
// RelayShard seals and restores like any other tier — the relay's
// buffered (unmixed) material is a shard section like the rest.
func TestShardedStateRelayInTier(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	updates := makeUpdates(6, 2, rng)
	m, err := NewStreamMixer(2, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	tier := []Shard{m, NewRelayShard(3)}
	emitted := feedTier(t, tier, updates)
	blob, err := SealShardedState(tier, ShardedStateMeta{Routing: RoutingHashQuota, InRound: 6}, nil)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := NewStreamMixer(2, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	fresh := []Shard{m2, NewRelayShard(3)}
	if _, err := RestoreShardedState(blob, fresh, nil); err != nil {
		t.Fatal(err)
	}
	out := append([]nn.ParamSet{}, emitted...)
	out = append(out, drainTier(fresh)...)
	want, _ := nn.Average(updates)
	got, err := nn.Average(out)
	if err != nil {
		t.Fatal(err)
	}
	if !want.ApproxEqual(got, 1e-9) {
		t.Fatal("relay-bearing tier broke conservation across seal/restore")
	}
}
