package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"mixnn/internal/nn"
)

// newTier builds p fresh mixers with capacity k each.
func newTier(t testing.TB, p, k int) []*StreamMixer {
	t.Helper()
	tier := make([]*StreamMixer, p)
	for s := range tier {
		m, err := NewStreamMixer(k, rand.New(rand.NewSource(int64(100+s))))
		if err != nil {
			t.Fatal(err)
		}
		tier[s] = m
	}
	return tier
}

// feedTier routes updates round-robin into the tier and collects whatever
// the mixers emit.
func feedTier(t testing.TB, tier []*StreamMixer, updates []nn.ParamSet) []nn.ParamSet {
	t.Helper()
	var out []nn.ParamSet
	for i, u := range updates {
		mixed, err := tier[i%len(tier)].Add(u)
		if err != nil {
			t.Fatalf("add %d: %v", i, err)
		}
		if mixed != nil {
			out = append(out, *mixed)
		}
	}
	return out
}

func drainTier(tier []*StreamMixer) []nn.ParamSet {
	var out []nn.ParamSet
	for _, m := range tier {
		out = append(out, m.Drain()...)
	}
	return out
}

// TestShardedStateReshardRoundTrip is the tentpole property as a table
// test: a tier sealed at P shards mid-round restores into P′ shards
// (including P′ > total buffered and P′ small enough to over-fill k) and
// the finished round's layer-wise mean equals the mean of all inputs.
func TestShardedStateReshardRoundTrip(t *testing.T) {
	cases := []struct {
		c, split, p, pPrime, k int
	}{
		{6, 3, 2, 2, 2},  // same shape
		{6, 3, 2, 3, 2},  // reshard up
		{8, 5, 4, 1, 2},  // reshard down: 5 buffered into one k=2 mixer (over-full)
		{12, 7, 3, 4, 2}, // reshard up mid-emission
		{5, 1, 1, 4, 5},  // single buffered entry over a wide tier
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("C%d_seal%d_P%d_to_P%d_k%d", tc.c, tc.split, tc.p, tc.pPrime, tc.k), func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			updates := makeUpdates(tc.c, 3, rng)

			tier := newTier(t, tc.p, tc.k)
			emitted := feedTier(t, tier, updates[:tc.split])

			blob, err := SealShardedState(tier, ShardedStateMeta{
				Routing: RoutingHashRR, RRCursor: tc.split, InRound: tc.split,
				Received: tc.split, Forwarded: len(emitted),
			}, nil)
			if err != nil {
				t.Fatal(err)
			}

			fresh := newTier(t, tc.pPrime, tc.k)
			meta, err := RestoreShardedState(blob, fresh, nil)
			if err != nil {
				t.Fatal(err)
			}
			if meta.SealedShards != tc.p {
				t.Fatalf("SealedShards = %d, want %d", meta.SealedShards, tc.p)
			}
			if meta.InRound != tc.split || meta.Received != tc.split || meta.Forwarded != len(emitted) {
				t.Fatalf("ledger = %+v", meta)
			}
			buffered := 0
			for _, m := range fresh {
				buffered += m.Buffered()
			}
			if buffered != tc.split-len(emitted) {
				t.Fatalf("restored buffered = %d, want %d", buffered, tc.split-len(emitted))
			}

			// Finish the round on the restored tier.
			emitted = append(emitted, feedTier(t, fresh, updates[tc.split:])...)
			emitted = append(emitted, drainTier(fresh)...)
			if len(emitted) != tc.c {
				t.Fatalf("round emitted %d updates, want %d", len(emitted), tc.c)
			}
			want, err := nn.Average(updates)
			if err != nil {
				t.Fatal(err)
			}
			got, err := nn.Average(emitted)
			if err != nil {
				t.Fatal(err)
			}
			if !want.ApproxEqual(got, 1e-9) {
				t.Fatal("resharded restore changed the layer-wise aggregate")
			}
		})
	}
}

// TestShardedStateSealedSections drives the per-shard seal/open hooks: the
// open func must be called with the seal-time shard indices, and a
// mismatched open must surface as an error, not silent corruption.
func TestShardedStateSealedSections(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tier := newTier(t, 3, 2)
	feedTier(t, tier, makeUpdates(5, 2, rng))

	xor := func(shard int, data []byte) []byte {
		out := make([]byte, len(data))
		for i, b := range data {
			out[i] = b ^ byte(shard+1)
		}
		return out
	}
	var sealed []int
	blob, err := SealShardedState(tier, ShardedStateMeta{Routing: RoutingHashRR}, func(s int, plain []byte) ([]byte, error) {
		sealed = append(sealed, s)
		return xor(s, plain), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sealed) != 3 || sealed[0] != 0 || sealed[1] != 1 || sealed[2] != 2 {
		t.Fatalf("seal called for shards %v, want [0 1 2]", sealed)
	}

	var opened []int
	if _, err := RestoreShardedState(blob, newTier(t, 2, 2), func(s int, sec []byte) ([]byte, error) {
		opened = append(opened, s)
		return xor(s, sec), nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(opened) != 3 {
		t.Fatalf("open called for shards %v, want all 3", opened)
	}

	// Opening with the wrong per-shard key material must fail loudly.
	if _, err := RestoreShardedState(blob, newTier(t, 2, 2), func(s int, sec []byte) ([]byte, error) {
		return xor(s+1, sec), nil
	}); err == nil {
		t.Fatal("mismatched section opener accepted")
	}
	// As must skipping the opener entirely.
	if _, err := RestoreShardedState(blob, newTier(t, 2, 2), nil); err == nil {
		t.Fatal("sealed sections restored without an opener")
	}
}

func TestRestoreShardedStateRejects(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	tier := newTier(t, 2, 2)
	feedTier(t, tier, makeUpdates(3, 2, rng))
	blob, err := SealShardedState(tier, ShardedStateMeta{Routing: RoutingHashRR, InRound: 3}, nil)
	if err != nil {
		t.Fatal(err)
	}

	fresh := func() []*StreamMixer { return newTier(t, 2, 2) }
	t.Run("garbage", func(t *testing.T) {
		if _, err := RestoreShardedState([]byte("not a blob"), fresh(), nil); err == nil {
			t.Fatal("garbage accepted")
		}
	})
	t.Run("bad magic", func(t *testing.T) {
		bad := append([]byte(nil), blob...)
		bad[0] = 'Z'
		if _, err := RestoreShardedState(bad, fresh(), nil); err == nil {
			t.Fatal("bad magic accepted")
		}
	})
	t.Run("wrong version", func(t *testing.T) {
		bad := append([]byte(nil), blob...)
		bad[4] = 0xFE
		if _, err := RestoreShardedState(bad, fresh(), nil); err == nil {
			t.Fatal("future version accepted")
		}
	})
	t.Run("truncated", func(t *testing.T) {
		if _, err := RestoreShardedState(blob[:len(blob)-5], fresh(), nil); err == nil {
			t.Fatal("truncated blob accepted")
		}
	})
	t.Run("trailing bytes", func(t *testing.T) {
		if _, err := RestoreShardedState(append(append([]byte(nil), blob...), 0xAA), fresh(), nil); err == nil {
			t.Fatal("trailing bytes accepted")
		}
	})
	t.Run("non-fresh target", func(t *testing.T) {
		used := fresh()
		feedTier(t, used, makeUpdates(1, 2, rng))
		if _, err := RestoreShardedState(blob, used, nil); err == nil {
			t.Fatal("restore into used tier accepted")
		}
	})
	t.Run("zero target shards", func(t *testing.T) {
		if _, err := RestoreShardedState(blob, nil, nil); err == nil {
			t.Fatal("restore into empty tier accepted")
		}
	})
	t.Run("forged section length", func(t *testing.T) {
		// A valid header claiming a near-limit section length against a
		// tiny blob must be rejected before any large allocation.
		var forged bytes.Buffer
		forged.WriteString("MXSH")
		for _, v := range []uint32{ShardedStateVersion, 1} {
			binary.Write(&forged, binary.LittleEndian, v)
		}
		forged.WriteByte(byte(RoutingHashRR))
		for i := 0; i < 4; i++ {
			binary.Write(&forged, binary.LittleEndian, uint32(0))
		}
		for i := 0; i < 3; i++ {
			binary.Write(&forged, binary.LittleEndian, uint64(0))
		}
		binary.Write(&forged, binary.LittleEndian, uint32(maxSectionBytes-1))
		if _, err := RestoreShardedState(forged.Bytes(), fresh(), nil); err == nil {
			t.Fatal("forged oversized section length accepted")
		}
	})
}

func TestSealShardedStateRejects(t *testing.T) {
	if _, err := SealShardedState(nil, ShardedStateMeta{}, nil); err == nil {
		t.Fatal("seal of zero shards accepted")
	}
	tier := newTier(t, 1, 2)
	if _, err := SealShardedState(tier, ShardedStateMeta{InRound: -1}, nil); err == nil {
		t.Fatal("negative ledger field accepted")
	}
}

// TestRestoredOverfullMixerStaysConservative pins the over-stuffed
// restore contract restoreEntry documents: a mixer holding more than k
// entries still swap-emits one update per Add and drains completely.
func TestRestoredOverfullMixerStaysConservative(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	updates := makeUpdates(6, 2, rng)

	tier := newTier(t, 4, 2)
	if got := feedTier(t, tier, updates[:4]); len(got) != 0 {
		t.Fatalf("tier emitted %d during fill", len(got))
	}
	blob, err := SealShardedState(tier, ShardedStateMeta{Routing: RoutingHashRR, InRound: 4}, nil)
	if err != nil {
		t.Fatal(err)
	}

	// 4 buffered entries land in ONE k=2 mixer: over-full by 2.
	narrow := newTier(t, 1, 2)
	if _, err := RestoreShardedState(blob, narrow, nil); err != nil {
		t.Fatal(err)
	}
	if narrow[0].Buffered() != 4 {
		t.Fatalf("buffered = %d, want 4", narrow[0].Buffered())
	}
	var emitted []nn.ParamSet
	emitted = append(emitted, feedTier(t, narrow, updates[4:])...)
	if len(emitted) != 2 {
		t.Fatalf("over-full mixer emitted %d on 2 adds, want 2", len(emitted))
	}
	emitted = append(emitted, drainTier(narrow)...)
	if len(emitted) != 6 {
		t.Fatalf("round emitted %d, want 6", len(emitted))
	}
	want, _ := nn.Average(updates)
	got, err := nn.Average(emitted)
	if err != nil {
		t.Fatal(err)
	}
	if !want.ApproxEqual(got, 1e-9) {
		t.Fatal("over-full restore broke conservation")
	}
}

// TestSealShardedStateConcurrentWithAdd exercises the seal path against
// concurrent mixing at the core level (run under -race): snapshotting a
// tier while every shard is being fed must neither race nor produce an
// unparseable blob.
func TestSealShardedStateConcurrentWithAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	const p, rounds = 3, 40
	tier := newTier(t, p, 2)
	updates := makeUpdates(rounds, 2, rng)

	var wg sync.WaitGroup
	for s := 0; s < p; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := s; i < rounds; i += p {
				if _, err := tier[s].Add(updates[i]); err != nil {
					t.Errorf("shard %d add %d: %v", s, i, err)
					return
				}
			}
		}(s)
	}
	sealDone := make(chan struct{})
	go func() {
		defer close(sealDone)
		for j := 0; j < 50; j++ {
			blob, err := SealShardedState(tier, ShardedStateMeta{Routing: RoutingHashRR}, nil)
			if err != nil {
				t.Errorf("concurrent seal: %v", err)
				return
			}
			if _, err := RestoreShardedState(blob, newTier(t, 2, 2), nil); err != nil {
				t.Errorf("concurrent seal produced unrestorable blob: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	<-sealDone
}
