package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"mixnn/internal/nn"
)

// Shard-aware durable state for a whole mixing tier. Where state.go
// snapshots ONE StreamMixer, this file snapshots every shard of a tier
// plus the routing metadata and round ledger that make the snapshot
// restorable — including into a tier with a DIFFERENT shard count
// (resharding on restore).
//
// Binary layout (little-endian), versioned so the format can evolve:
//
//	magic    [4]byte "MXSH"
//	version  uint32 (currently 4)
//	shards   uint32 P at seal time
//	routing  uint8  RoutingMode tag
//	rr       uint32 round-robin routing cursor
//	inRound  uint32 updates received in the open round
//	rounds   uint32 completed rounds (the tier's delivery epoch)
//	hopMark  uint32 round hop-depth watermark
//	received, hopReceived, forwarded uint64 (tier ledger)
//	per shard: shardReceived uint64, shardEmitted uint64 (v2: shard ledger)
//	per shard: shardLoad uint32 (v3: updates routed this round — the
//	  quota-routing state of the open round)
//	topoLen  uint32, topo bytes (v3: the routing-plane topology blob,
//	  opaque here — internal/route marshals it; zero length = none)
//	trustLen uint32, trust section (v4: the remote shards' attestation
//	  trust material, opaque here and sealed under TrustSection; zero
//	  length = none)
//	pendingLen uint32, pending section (v2: updates the mixers emitted
//	  mid-round that have not yet been committed to the delivery outbox)
//	per shard: sectionLen uint32, section bytes
//
// Each shard section holds that shard's buffered material as complete
// pseudo-updates (one ParamSet assembled from slot j of every per-layer
// list). Because a mixer's lists always have equal length, slot-major
// regrouping is lossless, and because the §4.2 equivalence theorem only
// depends on the multiset of buffered layers, the pseudo-updates can be
// redistributed over any number of fresh mixers without changing the
// layer-wise aggregate — that is what makes restore reshard-safe.
//
// Sections pass through SealSectionFunc/OpenSectionFunc so the proxy can
// encrypt each shard's material under a per-shard derived sealing key
// (enclave.SealLabeled); core itself stays crypto-free and tests run on
// plaintext sections (nil funcs).
//
// Section layout: entries uint32, then one ParamSet encoding per entry.
const (
	shardedStateMagic = "MXSH"

	// ShardedStateVersion is the current seal-blob format version.
	// Version 2 added the per-shard mixer ledgers and the
	// pending-emission section for the asynchronous delivery pipeline;
	// version 3 adds the routing-plane topology blob and the open
	// round's per-shard quota loads, so a restored tier comes back under
	// the exact topology (mode, weights, remote placement) it was sealed
	// under; version 4 adds a remote-trust section (sealed like a shard
	// section, under the TrustSection index) so a restarted tier can
	// RE-ATTEST its remote shards from the blob alone.
	// RestoreShardedState still reads versions 1 through 3 (missing
	// fields restore empty), so an upgrade does not strand a sealed
	// mid-round.
	ShardedStateVersion = 4

	// maxSealedShards bounds the shard count a blob may claim (the blob
	// crosses the sealing boundary, so parse limits guard allocations).
	maxSealedShards = 1 << 12
	// maxSectionBytes bounds one shard section.
	maxSectionBytes = 512 << 20
	// maxSectionEntries bounds the buffered pseudo-updates per section.
	maxSectionEntries = 1 << 20
)

// RoutingMode tags how a tier routed updates to shards when it was
// sealed. It travels in the blob so a restoring tier can refuse state it
// would route differently.
type RoutingMode uint8

// The routing modes a blob may be sealed under. The values mirror
// internal/route's Mode tags (core stays free of the route dependency;
// the proxy maps between them).
const (
	// RoutingHashRR is sticky routing: stable FNV client-hash with a
	// round-robin fallback for anonymous participants.
	RoutingHashRR RoutingMode = 1
	// RoutingRoundRobin is quota-aware round-robin.
	RoutingRoundRobin RoutingMode = 2
	// RoutingHashQuota is consistent hashing with per-shard round quotas
	// and spillover.
	RoutingHashQuota RoutingMode = 3
)

// PendingSection is the shard index SealSectionFunc/OpenSectionFunc see
// for the pending-emission section, which belongs to no single shard.
const PendingSection = -1

// TrustSection is the shard index SealSectionFunc/OpenSectionFunc see
// for the remote-trust section (v4): the attestation trust material of
// the tier's remote shards, opaque to core (the proxy owns the
// encoding). It carries inter-proxy secrets, so it is sealed like
// buffered participant material.
const TrustSection = -2

// SealSectionFunc seals one shard's plaintext section (e.g. under a
// per-shard derived enclave key). The pending-emission section is sealed
// with shard == PendingSection. A nil func stores sections as-is.
type SealSectionFunc func(shard int, plain []byte) ([]byte, error)

// OpenSectionFunc reverses SealSectionFunc for the shard index recorded
// at seal time.
type OpenSectionFunc func(shard int, sealed []byte) ([]byte, error)

// ShardedStateMeta is the routing metadata and round ledger sealed next
// to the shard buffers.
type ShardedStateMeta struct {
	// SealedShards is the shard count P of the tier that produced the
	// blob. It is an output of RestoreShardedState (ignored on seal,
	// where it is taken from the mixer slice).
	SealedShards int
	// Routing is the tier's shard-routing mode.
	Routing RoutingMode
	// RRCursor is the round-robin routing cursor; a restoring tier
	// reduces it modulo its own shard count.
	RRCursor int
	// InRound counts updates received in the open round.
	InRound int
	// Rounds counts completed rounds.
	Rounds int
	// HopMark is the open round's cascade-depth watermark.
	HopMark int
	// Received, HopReceived and Forwarded are the tier's lifetime
	// ingress/egress ledger.
	Received    int
	HopReceived int
	Forwarded   int
	// ShardReceived and ShardEmitted are the per-shard mixer ledgers
	// (cumulative across epochs), len P at seal time. A restoring tier
	// redistributes them when its shard count differs.
	ShardReceived []int
	ShardEmitted  []int
	// Pending holds updates the mixers emitted mid-round that were not
	// yet committed to the delivery outbox when the tier was sealed. They
	// restore into the replacement tier's pending buffer, not its mixers.
	Pending []nn.ParamSet
	// ShardLoad is the open round's per-shard routed-update count (the
	// quota-enforcement state), len P at seal time. v3 only.
	ShardLoad []int
	// Topo is the routing plane's marshalled topology, opaque to core
	// (internal/route owns the encoding). v3 only; nil on older blobs.
	Topo []byte
	// RemoteTrust is the remote shards' attestation trust material,
	// opaque to core (the proxy owns the encoding); it is sealed under
	// the TrustSection index. v4 only; nil on older blobs or when the
	// tier has no remote shards.
	RemoteTrust []byte
}

// SnapshotEntries exports the mixer's buffered contents as complete
// pseudo-updates: entry j holds slot j of every per-layer list. The
// returned ParamSets alias the buffered tensors (which are never mutated
// in place), so the caller may encode them without holding the lock.
// It implements Shard.
func (m *StreamMixer) SnapshotEntries() []nn.ParamSet {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]nn.ParamSet, m.buffered)
	for j := range out {
		ps := nn.ParamSet{Layers: make([]nn.LayerParams, len(m.lists))}
		for li := range m.lists {
			ps.Layers[li] = m.lists[li][j]
		}
		out[j] = ps
	}
	return out
}

// RestoreEntry files one restored pseudo-update into the mixer. Unlike
// Add it never emits, and it may push the buffer PAST k: a blob sealed
// from a tier with more total capacity legitimately restores into fewer
// (or smaller) mixers. An over-full mixer stays conservative — every
// subsequent Add swap-emits exactly one update and the round-close Drain
// empties whatever remains — so aggregation equivalence is unaffected;
// the extra occupancy only widens that shard's anonymity set. It
// implements Shard.
func (m *StreamMixer) RestoreEntry(u nn.ParamSet) error {
	if len(u.Layers) == 0 {
		return fmt.Errorf("core: restore of empty update")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.lists == nil && m.received != 0 {
		return fmt.Errorf("core: RestoreEntry on a non-fresh mixer")
	}
	if m.slab != nil {
		// A slab mixer owns its storage: copy the restored entry into a
		// fresh row and file the row's view (restores may push past k —
		// chunks grow, they never reject).
		view, err := m.slab.fileParamSet(u)
		if err != nil {
			return fmt.Errorf("core: restored update incompatible with mixer model structure")
		}
		u = view
	}
	if m.lists == nil {
		m.template = u
		m.lists = make([][]nn.LayerParams, len(u.Layers))
		for i := range m.lists {
			m.lists[i] = make([]nn.LayerParams, 0, m.k)
		}
	} else if m.slab == nil && !m.template.Compatible(u) {
		return fmt.Errorf("core: restored update incompatible with mixer model structure")
	}
	for li, lp := range u.Layers {
		m.lists[li] = append(m.lists[li], lp)
	}
	m.buffered++
	m.received++
	return nil
}

// marshalSection encodes one shard's buffered pseudo-updates.
func marshalSection(entries []nn.ParamSet) ([]byte, error) {
	var buf bytes.Buffer
	if err := binary.Write(&buf, binary.LittleEndian, uint32(len(entries))); err != nil {
		return nil, err
	}
	for i, e := range entries {
		if err := nn.WriteParamSet(&buf, e); err != nil {
			return nil, fmt.Errorf("core: marshal shard entry %d: %w", i, err)
		}
	}
	return buf.Bytes(), nil
}

// unmarshalSection decodes one shard section back into pseudo-updates.
func unmarshalSection(data []byte) ([]nn.ParamSet, error) {
	r := bytes.NewReader(data)
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, fmt.Errorf("core: read section entry count: %w", err)
	}
	if n > maxSectionEntries {
		return nil, fmt.Errorf("core: section entry count %d exceeds limit", n)
	}
	entries := make([]nn.ParamSet, 0, n)
	for i := uint32(0); i < n; i++ {
		ps, err := nn.ReadParamSet(r)
		if err != nil {
			return nil, fmt.Errorf("core: read section entry %d: %w", i, err)
		}
		entries = append(entries, ps)
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("core: %d trailing bytes after section entries", r.Len())
	}
	return entries, nil
}

// SealShardedState exports a whole tier — every shard's buffered layers
// plus routing metadata and the round ledger — as one versioned blob.
// The name mirrors the proxy operation the blob exists for: the caller
// (the enclave-hosted proxy) wraps the result with its sealing key; seal,
// when non-nil, additionally protects each shard section individually.
func SealShardedState(shards []Shard, meta ShardedStateMeta, seal SealSectionFunc) ([]byte, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("core: seal of zero shards")
	}
	if len(shards) > maxSealedShards {
		return nil, fmt.Errorf("core: seal of %d shards exceeds limit %d", len(shards), maxSealedShards)
	}
	if meta.ShardReceived != nil && len(meta.ShardReceived) != len(shards) {
		return nil, fmt.Errorf("core: %d shard-received entries for %d shards", len(meta.ShardReceived), len(shards))
	}
	if meta.ShardEmitted != nil && len(meta.ShardEmitted) != len(shards) {
		return nil, fmt.Errorf("core: %d shard-emitted entries for %d shards", len(meta.ShardEmitted), len(shards))
	}
	if meta.ShardLoad != nil && len(meta.ShardLoad) != len(shards) {
		return nil, fmt.Errorf("core: %d shard-load entries for %d shards", len(meta.ShardLoad), len(shards))
	}
	if len(meta.Topo) > maxSectionBytes {
		return nil, fmt.Errorf("core: topology blob exceeds %d bytes", maxSectionBytes)
	}
	var buf bytes.Buffer
	buf.WriteString(shardedStateMagic)
	for _, v := range []uint32{ShardedStateVersion, uint32(len(shards))} {
		if err := binary.Write(&buf, binary.LittleEndian, v); err != nil {
			return nil, fmt.Errorf("core: marshal sharded state: %w", err)
		}
	}
	buf.WriteByte(byte(meta.Routing))
	for _, v := range []int{meta.RRCursor, meta.InRound, meta.Rounds, meta.HopMark} {
		if v < 0 {
			return nil, fmt.Errorf("core: negative ledger field %d", v)
		}
		if err := binary.Write(&buf, binary.LittleEndian, uint32(v)); err != nil {
			return nil, fmt.Errorf("core: marshal sharded state: %w", err)
		}
	}
	for _, v := range []int{meta.Received, meta.HopReceived, meta.Forwarded} {
		if v < 0 {
			return nil, fmt.Errorf("core: negative ledger field %d", v)
		}
		if err := binary.Write(&buf, binary.LittleEndian, uint64(v)); err != nil {
			return nil, fmt.Errorf("core: marshal sharded state: %w", err)
		}
	}
	// Per-shard mixer ledgers. When the caller does not supply them, the
	// mixers' own counters stand in (a tier that never swapped mixers).
	for s, m := range shards {
		recv, emit := m.Received(), m.Emitted()
		if meta.ShardReceived != nil {
			recv = meta.ShardReceived[s]
		}
		if meta.ShardEmitted != nil {
			emit = meta.ShardEmitted[s]
		}
		if recv < 0 || emit < 0 {
			return nil, fmt.Errorf("core: negative shard %d ledger (%d, %d)", s, recv, emit)
		}
		for _, v := range []int{recv, emit} {
			if err := binary.Write(&buf, binary.LittleEndian, uint64(v)); err != nil {
				return nil, fmt.Errorf("core: marshal sharded state: %w", err)
			}
		}
	}
	// v3: the open round's per-shard quota loads and the topology blob.
	for s := range shards {
		load := 0
		if meta.ShardLoad != nil {
			load = meta.ShardLoad[s]
		}
		if load < 0 {
			return nil, fmt.Errorf("core: negative shard %d load %d", s, load)
		}
		if err := binary.Write(&buf, binary.LittleEndian, uint32(load)); err != nil {
			return nil, fmt.Errorf("core: marshal sharded state: %w", err)
		}
	}
	if err := binary.Write(&buf, binary.LittleEndian, uint32(len(meta.Topo))); err != nil {
		return nil, fmt.Errorf("core: marshal sharded state: %w", err)
	}
	buf.Write(meta.Topo)
	// v4: the remote-trust section, sealed under the TrustSection index
	// (it carries inter-proxy secrets).
	trustSec := meta.RemoteTrust
	if len(trustSec) > 0 && seal != nil {
		var err error
		if trustSec, err = seal(TrustSection, trustSec); err != nil {
			return nil, fmt.Errorf("core: seal trust section: %w", err)
		}
	}
	if len(trustSec) > maxSectionBytes {
		return nil, fmt.Errorf("core: trust section exceeds %d bytes", maxSectionBytes)
	}
	if err := binary.Write(&buf, binary.LittleEndian, uint32(len(trustSec))); err != nil {
		return nil, fmt.Errorf("core: marshal sharded state: %w", err)
	}
	buf.Write(trustSec)
	// Pending-emission section, sealed like a shard section but under the
	// PendingSection index.
	pendingSec, err := marshalSection(meta.Pending)
	if err != nil {
		return nil, fmt.Errorf("core: pending section: %w", err)
	}
	if seal != nil {
		if pendingSec, err = seal(PendingSection, pendingSec); err != nil {
			return nil, fmt.Errorf("core: seal pending section: %w", err)
		}
	}
	if len(pendingSec) > maxSectionBytes {
		return nil, fmt.Errorf("core: pending section exceeds %d bytes", maxSectionBytes)
	}
	if err := binary.Write(&buf, binary.LittleEndian, uint32(len(pendingSec))); err != nil {
		return nil, fmt.Errorf("core: marshal sharded state: %w", err)
	}
	buf.Write(pendingSec)
	for s, m := range shards {
		section, err := marshalSection(m.SnapshotEntries())
		if err != nil {
			return nil, fmt.Errorf("core: shard %d: %w", s, err)
		}
		if seal != nil {
			if section, err = seal(s, section); err != nil {
				return nil, fmt.Errorf("core: seal shard %d section: %w", s, err)
			}
		}
		if len(section) > maxSectionBytes {
			return nil, fmt.Errorf("core: shard %d section exceeds %d bytes", s, maxSectionBytes)
		}
		if err := binary.Write(&buf, binary.LittleEndian, uint32(len(section))); err != nil {
			return nil, fmt.Errorf("core: marshal sharded state: %w", err)
		}
		buf.Write(section)
	}
	return buf.Bytes(), nil
}

// ShardedStateRounds peeks the completed-round counter (the delivery
// epoch) out of an unsealed blob's fixed-offset header without parsing
// the sections. A restoring proxy needs it BEFORE building the fresh
// mixers it restores into: per-epoch rand-stream seeding must continue
// from the sealed epoch, not restart at zero.
func ShardedStateRounds(blob []byte) (int, error) {
	// magic(4) version(4) shards(4) routing(1) rr(4) inRound(4) rounds(4)
	const roundsOff = 4 + 4 + 4 + 1 + 4 + 4
	if len(blob) < roundsOff+4 || string(blob[:4]) != shardedStateMagic {
		return 0, fmt.Errorf("core: not a sharded state blob")
	}
	// The header prefix is identical in every version so far.
	if v := binary.LittleEndian.Uint32(blob[4:]); v < 1 || v > ShardedStateVersion {
		return 0, fmt.Errorf("core: sharded state version %d, want <= %d", v, ShardedStateVersion)
	}
	return int(binary.LittleEndian.Uint32(blob[roundsOff:])), nil
}

// ShardedStateTopo peeks the routing-plane topology blob out of an
// unsealed state blob without parsing the sections (nil for v1/v2 blobs,
// which predate the routing plane). A restoring proxy needs it BEFORE
// building the shard set it restores into: the topology dictates which
// shards are mixers and which are relays.
func ShardedStateTopo(blob []byte) ([]byte, error) {
	// magic(4) version(4) shards(4) routing(1) rr(4) inRound(4) rounds(4)
	// hopMark(4) tierLedger(3×8) = 53 bytes of fixed header.
	const headOff = 4 + 4 + 4 + 1 + 4 + 4 + 4 + 4 + 24
	if len(blob) < headOff || string(blob[:4]) != shardedStateMagic {
		return nil, fmt.Errorf("core: not a sharded state blob")
	}
	v := binary.LittleEndian.Uint32(blob[4:])
	if v < 1 || v > ShardedStateVersion {
		return nil, fmt.Errorf("core: sharded state version %d, want <= %d", v, ShardedStateVersion)
	}
	if v < 3 {
		return nil, nil
	}
	p := binary.LittleEndian.Uint32(blob[8:])
	if p == 0 || p > maxSealedShards {
		return nil, fmt.Errorf("core: sealed shard count %d out of range", p)
	}
	// v2 per-shard ledgers (16 bytes each) + v3 per-shard loads (4 each).
	off := uint64(headOff) + uint64(p)*20
	if uint64(len(blob)) < off+4 {
		return nil, fmt.Errorf("core: sharded state truncated before topology")
	}
	topoLen := binary.LittleEndian.Uint32(blob[off:])
	if topoLen == 0 {
		return nil, nil
	}
	if uint64(topoLen) > uint64(len(blob))-off-4 {
		return nil, fmt.Errorf("core: topology length %d exceeds blob", topoLen)
	}
	return blob[off+4 : off+4+uint64(topoLen) : off+4+uint64(topoLen)], nil
}

// RestoreShardedState loads a SealShardedState blob into a tier of fresh
// mixers. With an unchanged shard count each shard's buffered material
// returns to its own mixer; otherwise the pseudo-updates are
// redistributed round-robin across the new shards, so a P-shard blob
// restores into a P′-shard tier with the layer-wise aggregate of the
// eventual round unchanged. open must reverse the SealSectionFunc used at
// seal time (nil for plaintext sections). The returned meta carries the
// sealed tier's ledger (tier-wide and per-shard), the pending emissions,
// and the original shard count in SealedShards.
func RestoreShardedState(blob []byte, shards []Shard, open OpenSectionFunc) (ShardedStateMeta, error) {
	var meta ShardedStateMeta
	if len(shards) == 0 {
		return meta, fmt.Errorf("core: restore into zero shards")
	}
	for s, m := range shards {
		if m.Received() != 0 || m.Buffered() != 0 {
			return meta, fmt.Errorf("core: restore into non-fresh mixer (shard %d)", s)
		}
	}
	r := bytes.NewReader(blob)
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return meta, fmt.Errorf("core: read sharded state magic: %w", err)
	}
	if string(magic[:]) != shardedStateMagic {
		return meta, fmt.Errorf("core: bad sharded state magic %q", magic)
	}
	var version, sealedShards uint32
	if err := binary.Read(r, binary.LittleEndian, &version); err != nil {
		return meta, fmt.Errorf("core: read version: %w", err)
	}
	if version < 1 || version > ShardedStateVersion {
		return meta, fmt.Errorf("core: sharded state version %d, want <= %d", version, ShardedStateVersion)
	}
	if err := binary.Read(r, binary.LittleEndian, &sealedShards); err != nil {
		return meta, fmt.Errorf("core: read shard count: %w", err)
	}
	if sealedShards == 0 || sealedShards > maxSealedShards {
		return meta, fmt.Errorf("core: sealed shard count %d out of range", sealedShards)
	}
	meta.SealedShards = int(sealedShards)
	routing, err := r.ReadByte()
	if err != nil {
		return meta, fmt.Errorf("core: read routing mode: %w", err)
	}
	meta.Routing = RoutingMode(routing)
	for _, dst := range []*int{&meta.RRCursor, &meta.InRound, &meta.Rounds, &meta.HopMark} {
		var v uint32
		if err := binary.Read(r, binary.LittleEndian, &v); err != nil {
			return meta, fmt.Errorf("core: read ledger: %w", err)
		}
		*dst = int(v)
	}
	for _, dst := range []*int{&meta.Received, &meta.HopReceived, &meta.Forwarded} {
		var v uint64
		if err := binary.Read(r, binary.LittleEndian, &v); err != nil {
			return meta, fmt.Errorf("core: read ledger: %w", err)
		}
		*dst = int(v)
	}
	// Per-shard mixer ledgers: v2 only (a v1 blob restores them empty —
	// the counters reset, which is exactly the pre-v2 behaviour).
	if version >= 2 {
		meta.ShardReceived = make([]int, meta.SealedShards)
		meta.ShardEmitted = make([]int, meta.SealedShards)
		for s := 0; s < meta.SealedShards; s++ {
			for _, dst := range []*int{&meta.ShardReceived[s], &meta.ShardEmitted[s]} {
				var v uint64
				if err := binary.Read(r, binary.LittleEndian, &v); err != nil {
					return meta, fmt.Errorf("core: read shard %d ledger: %w", s, err)
				}
				*dst = int(v)
			}
		}
	}
	// v3: per-shard quota loads of the open round + the topology blob.
	if version >= 3 {
		meta.ShardLoad = make([]int, meta.SealedShards)
		for s := 0; s < meta.SealedShards; s++ {
			var v uint32
			if err := binary.Read(r, binary.LittleEndian, &v); err != nil {
				return meta, fmt.Errorf("core: read shard %d load: %w", s, err)
			}
			meta.ShardLoad[s] = int(v)
		}
		var topoLen uint32
		if err := binary.Read(r, binary.LittleEndian, &topoLen); err != nil {
			return meta, fmt.Errorf("core: read topology length: %w", err)
		}
		if topoLen > maxSectionBytes || int(topoLen) > r.Len() {
			return meta, fmt.Errorf("core: topology length %d out of range", topoLen)
		}
		if topoLen > 0 {
			meta.Topo = make([]byte, topoLen)
			if _, err := io.ReadFull(r, meta.Topo); err != nil {
				return meta, fmt.Errorf("core: read topology: %w", err)
			}
		}
	}
	// readRaw pulls one length-prefixed section, bounding by the bytes
	// actually present before allocating: a forged header must not buy a
	// 512 MiB allocation against a tiny blob.
	readRaw := func(shard int) ([]byte, error) {
		var n uint32
		if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
			return nil, fmt.Errorf("core: read section length: %w", err)
		}
		if n > maxSectionBytes {
			return nil, fmt.Errorf("core: section length %d exceeds limit", n)
		}
		if int(n) > r.Len() {
			return nil, fmt.Errorf("core: section length %d exceeds %d remaining bytes", n, r.Len())
		}
		section := make([]byte, n)
		if _, err := io.ReadFull(r, section); err != nil {
			return nil, fmt.Errorf("core: read section: %w", err)
		}
		if len(section) > 0 && open != nil {
			var err error
			if section, err = open(shard, section); err != nil {
				return nil, fmt.Errorf("core: open section: %w", err)
			}
		}
		return section, nil
	}
	readSection := func(shard int) ([]nn.ParamSet, error) {
		section, err := readRaw(shard)
		if err != nil {
			return nil, err
		}
		return unmarshalSection(section)
	}
	// v4: the remote-trust section.
	if version >= 4 {
		if meta.RemoteTrust, err = readRaw(TrustSection); err != nil {
			return meta, fmt.Errorf("core: trust section: %w", err)
		}
		if len(meta.RemoteTrust) == 0 {
			meta.RemoteTrust = nil
		}
	}
	// Pending-emission section: v2 only (v1 had no delivery pipeline, so
	// nothing could be pending).
	if version >= 2 {
		if meta.Pending, err = readSection(PendingSection); err != nil {
			return meta, fmt.Errorf("core: pending section: %w", err)
		}
	}
	// Collect every sealed shard's pseudo-updates. With an unchanged
	// shard count each section restores into its own mixer (exact
	// restore); otherwise the entries are dealt round-robin over the
	// target tier (resharding).
	sameShape := len(shards) == meta.SealedShards
	var entries []nn.ParamSet
	for s := 0; s < meta.SealedShards; s++ {
		got, err := readSection(s)
		if err != nil {
			return meta, fmt.Errorf("core: shard %d: %w", s, err)
		}
		if sameShape {
			for i, e := range got {
				if err := shards[s].RestoreEntry(e); err != nil {
					return meta, fmt.Errorf("core: restore shard %d entry %d: %w", s, i, err)
				}
			}
		} else {
			entries = append(entries, got...)
		}
	}
	if r.Len() != 0 {
		return meta, fmt.Errorf("core: %d trailing bytes after sharded state", r.Len())
	}
	for i, e := range entries {
		if err := shards[i%len(shards)].RestoreEntry(e); err != nil {
			return meta, fmt.Errorf("core: restore entry %d: %w", i, err)
		}
	}
	return meta, nil
}
