package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"mixnn/internal/nn"
)

// Binary state format for StreamMixer (little-endian):
//
//	magic   [4]byte "MXST"
//	k       uint32
//	buffered uint32
//	received, emitted uint64
//	layers  uint32
//	per layer: entries uint32, each entry a single-layer ParamSet encoding
//
// The MixNN proxy seals this blob with the enclave sealing key so the
// mixing buffer survives a proxy restart without ever leaving trusted
// custody in plaintext (§2.5's sealing applied to §4.3's lists).
const stateMagic = "MXST"

// MarshalBinary exports the mixer's buffered contents.
func (m *StreamMixer) MarshalBinary() ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var buf bytes.Buffer
	buf.WriteString(stateMagic)
	for _, v := range []uint32{uint32(m.k), uint32(m.buffered)} {
		if err := binary.Write(&buf, binary.LittleEndian, v); err != nil {
			return nil, fmt.Errorf("core: marshal state: %w", err)
		}
	}
	for _, v := range []uint64{uint64(m.received), uint64(m.emitted)} {
		if err := binary.Write(&buf, binary.LittleEndian, v); err != nil {
			return nil, fmt.Errorf("core: marshal state: %w", err)
		}
	}
	if err := binary.Write(&buf, binary.LittleEndian, uint32(len(m.lists))); err != nil {
		return nil, fmt.Errorf("core: marshal state: %w", err)
	}
	for li, list := range m.lists {
		if err := binary.Write(&buf, binary.LittleEndian, uint32(len(list))); err != nil {
			return nil, fmt.Errorf("core: marshal state: %w", err)
		}
		for _, lp := range list {
			if err := nn.WriteParamSet(&buf, nn.ParamSet{Layers: []nn.LayerParams{lp}}); err != nil {
				return nil, fmt.Errorf("core: marshal layer %d: %w", li, err)
			}
		}
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary restores a mixer from a MarshalBinary blob. The receiver
// must be freshly constructed; its k must match the snapshot.
func (m *StreamMixer) UnmarshalBinary(data []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.received != 0 || m.lists != nil {
		return fmt.Errorf("core: UnmarshalBinary on a non-fresh mixer")
	}
	r := bytes.NewReader(data)
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return fmt.Errorf("core: read state magic: %w", err)
	}
	if string(magic[:]) != stateMagic {
		return fmt.Errorf("core: bad state magic %q", magic)
	}
	var k, buffered uint32
	if err := binary.Read(r, binary.LittleEndian, &k); err != nil {
		return fmt.Errorf("core: read k: %w", err)
	}
	if int(k) != m.k {
		return fmt.Errorf("core: snapshot k=%d does not match mixer k=%d", k, m.k)
	}
	if err := binary.Read(r, binary.LittleEndian, &buffered); err != nil {
		return fmt.Errorf("core: read buffered: %w", err)
	}
	if buffered > k {
		return fmt.Errorf("core: snapshot buffered %d exceeds k %d", buffered, k)
	}
	var received, emitted uint64
	if err := binary.Read(r, binary.LittleEndian, &received); err != nil {
		return fmt.Errorf("core: read received: %w", err)
	}
	if err := binary.Read(r, binary.LittleEndian, &emitted); err != nil {
		return fmt.Errorf("core: read emitted: %w", err)
	}
	var layers uint32
	if err := binary.Read(r, binary.LittleEndian, &layers); err != nil {
		return fmt.Errorf("core: read layer count: %w", err)
	}
	const maxLayers = 4096
	if layers > maxLayers {
		return fmt.Errorf("core: snapshot layer count %d exceeds limit", layers)
	}
	lists := make([][]nn.LayerParams, layers)
	var template nn.ParamSet
	for li := range lists {
		var entries uint32
		if err := binary.Read(r, binary.LittleEndian, &entries); err != nil {
			return fmt.Errorf("core: read entry count: %w", err)
		}
		if entries != buffered {
			return fmt.Errorf("core: layer %d has %d entries, want %d (corrupt snapshot)", li, entries, buffered)
		}
		lists[li] = make([]nn.LayerParams, 0, m.k)
		for e := uint32(0); e < entries; e++ {
			ps, err := nn.ReadParamSet(r)
			if err != nil {
				return fmt.Errorf("core: read layer %d entry %d: %w", li, e, err)
			}
			if len(ps.Layers) != 1 {
				return fmt.Errorf("core: layer %d entry %d holds %d layers, want 1", li, e, len(ps.Layers))
			}
			lists[li] = append(lists[li], ps.Layers[0])
		}
		template.Layers = append(template.Layers, nn.LayerParams{})
	}
	m.received = int(received)
	m.emitted = int(emitted)
	if buffered == 0 {
		// Nothing buffered: behave like a fresh mixer (the next Add
		// establishes the structure).
		return nil
	}
	// Rebuild the structural template from the first buffered entry of
	// each layer so compatibility checks keep working after restore.
	for li := range lists {
		template.Layers[li] = lists[li][0]
	}
	m.template = template
	m.lists = lists
	m.buffered = int(buffered)
	return nil
}
