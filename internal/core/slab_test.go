package core

import (
	"math/rand"
	"testing"

	"mixnn/internal/nn"
)

// encodeAll serialises updates to wire bytes (fresh buffer each — the
// slab ingress takes ownership of the buffer it is handed).
func encodeAll(t testing.TB, updates []nn.ParamSet) [][]byte {
	t.Helper()
	out := make([][]byte, len(updates))
	for i, u := range updates {
		raw, err := nn.EncodeParamSet(u)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = raw
	}
	return out
}

// TestSlabAddWireBitEquivalent drives the identical update stream through
// a legacy mixer (zero-copy decode + Add) and a slab mixer (AddWire) with
// the same seed: every emission and the round-close drain must be
// BIT-identical, because slab mode changes storage, not mixing decisions.
func TestSlabAddWireBitEquivalent(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	updates := makeUpdates(23, 3, rng)
	wires := encodeAll(t, updates)

	legacy, err := NewStreamMixer(5, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	slab, err := NewStreamMixerSlab(5, rand.New(rand.NewSource(7)), NewSlabPool())
	if err != nil {
		t.Fatal(err)
	}

	var legacyOut, slabOut []nn.ParamSet
	for i := range updates {
		lo, err := legacy.Add(updates[i])
		if err != nil {
			t.Fatal(err)
		}
		so, err := slab.AddWire(wires[i])
		if err != nil {
			t.Fatal(err)
		}
		if (lo == nil) != (so == nil) {
			t.Fatalf("update %d: legacy emitted %v, slab emitted %v", i, lo != nil, so != nil)
		}
		if lo != nil {
			legacyOut = append(legacyOut, *lo)
			slabOut = append(slabOut, *so)
		}
	}
	legacyOut = append(legacyOut, legacy.Drain()...)
	slabOut = append(slabOut, slab.Drain()...)
	if len(legacyOut) != len(updates) || len(slabOut) != len(updates) {
		t.Fatalf("emitted %d legacy / %d slab updates from %d inputs", len(legacyOut), len(slabOut), len(updates))
	}
	for i := range legacyOut {
		if !legacyOut[i].ApproxEqual(slabOut[i], 0) {
			t.Fatalf("output %d differs between legacy and slab storage", i)
		}
	}
	if got, want := slab.Received(), legacy.Received(); got != want {
		t.Fatalf("slab received %d, legacy %d", got, want)
	}
}

// TestSlabWireRoundtripBitExact proves the skeleton encoder closes the
// loop: wire → slab row → AppendWire must reproduce the input bytes
// exactly (the outbox encode path re-emits what ingress absorbed).
func TestSlabWireRoundtripBitExact(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	u := makeUpdates(1, 4, rng)[0]
	wire, err := nn.EncodeParamSet(u)
	if err != nil {
		t.Fatal(err)
	}
	layout, err := nn.SlabLayoutFromWire(wire)
	if err != nil {
		t.Fatal(err)
	}
	row := make([]float64, layout.Stride())
	if err := layout.DecodeIntoSlab(row, wire); err != nil {
		t.Fatal(err)
	}
	out, err := layout.AppendWire(nil, row)
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != string(wire) {
		t.Fatal("AppendWire did not reproduce the input bytes")
	}
}

// TestSlabRejectsForeignStructure pins the header-skeleton check: an
// update of a different model structure must be rejected without
// corrupting the mixer (the claimed row is reclaimed, counters and later
// ingress are unaffected).
func TestSlabRejectsForeignStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	good := makeUpdates(4, 2, rng)
	bad := makeUpdates(1, 3, rng)[0] // different layer count
	goodWires := encodeAll(t, good)
	badWire := encodeAll(t, []nn.ParamSet{bad})[0]

	m, err := NewStreamMixerSlab(2, rand.New(rand.NewSource(1)), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddWire(goodWires[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddWire(badWire); err == nil {
		t.Fatal("slab mixer accepted a structurally foreign update")
	}
	if _, err := m.Add(bad); err == nil {
		t.Fatal("slab mixer accepted a structurally foreign decoded update")
	}
	if got := m.Received(); got != 1 {
		t.Fatalf("received %d after rejections, want 1", got)
	}
	// The mixer keeps working on compatible material.
	for _, w := range goodWires[1:] {
		if _, err := m.AddWire(w); err != nil {
			t.Fatal(err)
		}
	}
	emitted := m.Emitted()
	if got := len(m.Drain()) + emitted; got != len(good) {
		t.Fatalf("drained+emitted %d, want %d", got, len(good))
	}
}

// TestSlabPoolRecyclesChunks pins the round-scoped pool lifecycle: after
// ReleaseSlab, a fresh mixer of the same layout draws the SAME chunk
// (same backing array) instead of allocating.
func TestSlabPoolRecyclesChunks(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	updates := makeUpdates(6, 2, rng)
	wires := encodeAll(t, updates)
	pool := NewSlabPool()

	m1, err := NewStreamMixerSlab(4, rand.New(rand.NewSource(1)), pool)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range wires {
		if _, err := m1.AddWire(w); err != nil {
			t.Fatal(err)
		}
	}
	m1.Drain()
	first := &m1.slab.chunks[0].data[0]
	m1.ReleaseSlab()

	m2, err := NewStreamMixerSlab(4, rand.New(rand.NewSource(2)), pool)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m2.AddWire(wires[0]); err != nil {
		t.Fatal(err)
	}
	if &m2.slab.chunks[0].data[0] != first {
		t.Fatal("fresh mixer did not recycle the released chunk")
	}
}

// TestSlabReleaseRefusesBufferedMaterial: a mixer still holding a round's
// material must not recycle its storage out from under it.
func TestSlabReleaseRefusesBufferedMaterial(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	wires := encodeAll(t, makeUpdates(2, 2, rng))
	pool := NewSlabPool()
	m, err := NewStreamMixerSlab(4, rand.New(rand.NewSource(1)), pool)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range wires {
		if _, err := m.AddWire(w); err != nil {
			t.Fatal(err)
		}
	}
	m.ReleaseSlab() // must be a no-op: 2 updates still buffered
	if got := len(m.Drain()); got != 2 {
		t.Fatalf("drained %d updates after a refused release, want 2", got)
	}
}

// TestSlabRestorePastK mirrors the over-full restore contract of the
// legacy mixer: restores may push the buffer past k and the mixer stays
// conservative.
func TestSlabRestorePastK(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	updates := makeUpdates(7, 2, rng)
	m, err := NewStreamMixerSlab(2, rand.New(rand.NewSource(1)), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range updates {
		if err := m.RestoreEntry(u); err != nil {
			t.Fatal(err)
		}
	}
	if got := m.Buffered(); got != len(updates) {
		t.Fatalf("buffered %d, want %d", got, len(updates))
	}
	drained := m.Drain()
	if len(drained) != len(updates) {
		t.Fatalf("drained %d, want %d", len(drained), len(updates))
	}
	before, err := nn.Average(updates)
	if err != nil {
		t.Fatal(err)
	}
	after, err := nn.Average(drained)
	if err != nil {
		t.Fatal(err)
	}
	// 1e-9, not 0: Drain reorders which entry each layer ends up in, so
	// the mean's float additions run in a different order.
	if !before.ApproxEqual(after, 1e-9) {
		t.Fatal("over-full slab restore changed the aggregate")
	}
}

// TestSlabSealRestoreV4Unchanged is the seal-compat contract of slab
// mode: a slab-backed tier seals into a v4 blob BYTE-IDENTICAL to the
// one a legacy tier with the same contents produces, and that blob
// restores into either storage mode with bit-identical buffered
// material — so seal blobs taken before and after this refactor are
// interchangeable in both directions.
func TestSlabSealRestoreV4Unchanged(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	// 6 updates over 2 shards of k=3 leave both tiers exactly full with
	// no mid-round emissions, so every input is in the sealed blob.
	updates := makeUpdates(6, 3, rng)

	build := func(slab bool) []*StreamMixer {
		tier := make([]*StreamMixer, 2)
		for s := range tier {
			var m *StreamMixer
			var err error
			if slab {
				m, err = NewStreamMixerSlab(3, rand.New(rand.NewSource(int64(s))), NewSlabPool())
			} else {
				m, err = NewStreamMixer(3, rand.New(rand.NewSource(int64(s))))
			}
			if err != nil {
				t.Fatal(err)
			}
			tier[s] = m
		}
		for i, u := range updates {
			if _, err := tier[i%2].Add(u); err != nil {
				t.Fatal(err)
			}
		}
		return tier
	}
	meta := ShardedStateMeta{Routing: RoutingHashRR, InRound: len(updates), Received: len(updates)}
	legacyBlob, err := SealShardedState(asShards(build(false)), meta, nil)
	if err != nil {
		t.Fatal(err)
	}
	slabBlob, err := SealShardedState(asShards(build(true)), meta, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(legacyBlob) != string(slabBlob) {
		t.Fatal("slab-mode tier sealed a different v4 blob than the legacy tier")
	}

	// The blob restores into both storage modes with identical contents.
	restore := func(slab bool) []nn.ParamSet {
		tier := make([]*StreamMixer, 2)
		for s := range tier {
			var m *StreamMixer
			var err error
			if slab {
				m, err = NewStreamMixerSlab(3, rand.New(rand.NewSource(int64(50+s))), nil)
			} else {
				m, err = NewStreamMixer(3, rand.New(rand.NewSource(int64(50+s))))
			}
			if err != nil {
				t.Fatal(err)
			}
			tier[s] = m
		}
		if _, err := RestoreShardedState(legacyBlob, asShards(tier), nil); err != nil {
			t.Fatal(err)
		}
		var out []nn.ParamSet
		for _, m := range tier {
			out = append(out, m.SnapshotEntries()...)
		}
		return out
	}
	intoLegacy, intoSlab := restore(false), restore(true)
	if len(intoLegacy) != len(updates) || len(intoSlab) != len(updates) {
		t.Fatalf("restored %d legacy / %d slab entries from %d sealed", len(intoLegacy), len(intoSlab), len(updates))
	}
	for i := range intoLegacy {
		if !intoLegacy[i].ApproxEqual(intoSlab[i], 0) {
			t.Fatalf("restored entry %d differs between storage modes", i)
		}
	}
}

// TestSlabAddWireSteadyStateAllocs pins the tentpole's allocation claim
// at the mixer level: once the slab's first chunk exists, AddWire on the
// emit path stays under 2 allocations per update on average (the row
// store, views, and emission structures are all amortised arenas; the
// occasional chunk/arena growth is the only allocation left).
func TestSlabAddWireSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	updates := makeUpdates(64, 3, rng)
	wires := encodeAll(t, updates)
	m, err := NewStreamMixerSlab(8, rand.New(rand.NewSource(1)), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Fill the buffer and force the first chunk + arenas into existence.
	for _, w := range wires[:16] {
		if _, err := m.AddWire(w); err != nil {
			t.Fatal(err)
		}
	}
	i := 16
	avg := testing.AllocsPerRun(32, func() {
		if _, err := m.AddWire(wires[i%len(wires)]); err != nil {
			t.Fatal(err)
		}
		i++
	})
	if avg > 2 {
		t.Fatalf("steady-state AddWire costs %.1f allocs/update, want <= 2", avg)
	}
}
