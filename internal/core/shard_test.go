package core

import (
	"math/rand"
	"sync"
	"testing"

	"mixnn/internal/nn"
)

func TestShardSizes(t *testing.T) {
	cases := []struct {
		c, p int
		want []int
	}{
		{8, 1, []int{8}},
		{8, 2, []int{4, 4}},
		{9, 2, []int{5, 4}},
		{13, 4, []int{4, 3, 3, 3}},
		{2, 4, []int{1, 1, 0, 0}},
		{0, 3, []int{0, 0, 0}},
	}
	for _, tc := range cases {
		got := ShardSizes(tc.c, tc.p)
		if len(got) != len(tc.want) {
			t.Fatalf("ShardSizes(%d,%d) = %v, want %v", tc.c, tc.p, got, tc.want)
		}
		total := 0
		for i := range got {
			total += got[i]
			if got[i] != tc.want[i] {
				t.Fatalf("ShardSizes(%d,%d) = %v, want %v", tc.c, tc.p, got, tc.want)
			}
		}
		if total != tc.c {
			t.Fatalf("ShardSizes(%d,%d) sums to %d", tc.c, tc.p, total)
		}
	}
}

func TestShardedStreamPreservesAggregation(t *testing.T) {
	for _, p := range []int{1, 2, 4} {
		for _, c := range []int{4, 13, 64} {
			rng := rand.New(rand.NewSource(int64(p*100 + c)))
			updates := makeUpdates(c, 3, rng)
			tr := ShardedStreamTransform{K: 3, Shards: p}
			mixed, err := tr.Apply(updates, rng)
			if err != nil {
				t.Fatal(err)
			}
			if len(mixed) != len(updates) {
				t.Fatalf("P=%d C=%d: %d outputs from %d inputs", p, c, len(mixed), len(updates))
			}
			before, err := nn.Average(updates)
			if err != nil {
				t.Fatal(err)
			}
			after, err := nn.Average(mixed)
			if err != nil {
				t.Fatal(err)
			}
			if !before.ApproxEqual(after, 1e-9) {
				t.Fatalf("P=%d C=%d: sharded stream mixing changed the aggregate", p, c)
			}
		}
	}
}

func TestShardedStreamConservesLayers(t *testing.T) {
	// Every input layer value must appear exactly once across the outputs:
	// sharding must not drop, duplicate or cross-contaminate material.
	rng := rand.New(rand.NewSource(7))
	updates := makeUpdates(12, 3, rng)
	tr := ShardedStreamTransform{K: 2, Shards: 3}
	mixed, err := tr.Apply(updates, rng)
	if err != nil {
		t.Fatal(err)
	}
	for li := 0; li < 3; li++ {
		seen := make(map[float64]int)
		for _, u := range updates {
			seen[u.Layers[li].Tensors[0].At(0, 0)]++
		}
		for _, m := range mixed {
			seen[m.Layers[li].Tensors[0].At(0, 0)]--
		}
		for v, n := range seen {
			if n != 0 {
				t.Fatalf("layer %d: value %v has count imbalance %d after sharded mixing", li, v, n)
			}
		}
	}
}

func TestShardedStreamMixesOnlyWithinShard(t *testing.T) {
	// With round-robin routing, shard s holds exactly the updates i with
	// i % p == s; an emitted layer must originate from the same shard as
	// the slot it fills. makeUpdates tags layer j of update i with base
	// value i*100+j, so the source participant is recoverable.
	rng := rand.New(rand.NewSource(8))
	const c, p = 12, 3
	updates := makeUpdates(c, 2, rng)
	tr := ShardedStreamTransform{K: 2, Shards: p}
	mixed, err := tr.Apply(updates, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Outputs are concatenated shard by shard; shard s contributes
	// ShardSizes(c,p)[s] outputs.
	sizes := ShardSizes(c, p)
	idx := 0
	for s := 0; s < p; s++ {
		for n := 0; n < sizes[s]; n++ {
			for li := range mixed[idx].Layers {
				base := mixed[idx].Layers[li].Tensors[0].At(0, 0)
				src := int(base+0.5) / 100 // recover i from i*100+j tag
				if src%p != s {
					t.Fatalf("output %d layer %d came from participant %d (shard %d), want shard %d",
						idx, li, src, src%p, s)
				}
			}
			idx++
		}
	}
}

func TestShardedStreamReducesToStreamWhenOneShard(t *testing.T) {
	rng1 := rand.New(rand.NewSource(9))
	updates := makeUpdates(8, 3, rand.New(rand.NewSource(10)))
	one, err := ShardedStreamTransform{K: 4, Shards: 1}.Apply(updates, rng1)
	if err != nil {
		t.Fatal(err)
	}
	rng2 := rand.New(rand.NewSource(9))
	plain, err := StreamTransform{K: 4}.Apply(updates, rng2)
	if err != nil {
		t.Fatal(err)
	}
	if len(one) != len(plain) {
		t.Fatalf("single-shard output count %d, unsharded %d", len(one), len(plain))
	}
	for i := range one {
		if !one[i].ApproxEqual(plain[i], 0) {
			t.Fatalf("single-shard output %d differs from unsharded stream", i)
		}
	}
}

func TestShardedBatchPreservesAggregationAllGranularities(t *testing.T) {
	for _, g := range []Granularity{GranularityLayer, GranularityTensor, GranularityModel} {
		for _, p := range []int{1, 2, 4} {
			rng := rand.New(rand.NewSource(int64(int(g)*10 + p)))
			updates := makeUpdates(11, 3, rng)
			tr := ShardedTransform{Granularity: g, Shards: p}
			mixed, err := tr.Apply(updates, rng)
			if err != nil {
				t.Fatal(err)
			}
			if len(mixed) != len(updates) {
				t.Fatalf("g=%s P=%d: %d outputs from %d inputs", g, p, len(mixed), len(updates))
			}
			before, err := nn.Average(updates)
			if err != nil {
				t.Fatal(err)
			}
			after, err := nn.Average(mixed)
			if err != nil {
				t.Fatal(err)
			}
			if !before.ApproxEqual(after, 1e-9) {
				t.Fatalf("g=%s P=%d: sharded batch mixing changed the aggregate", g, p)
			}
		}
	}
}

func TestShardedTransformsClampShards(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	updates := makeUpdates(2, 2, rng)
	out, err := ShardedStreamTransform{K: 1, Shards: 8}.Apply(updates, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("clamped sharded stream produced %d outputs, want 2", len(out))
	}
	out, err = ShardedTransform{Shards: 8}.Apply(updates, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("clamped sharded batch produced %d outputs, want 2", len(out))
	}
}

// TestStreamMixerConcurrentAdd drives one mixer from many goroutines (the
// sharded proxy's request handlers do exactly this) and checks the
// accounting under the race detector.
func TestStreamMixerConcurrentAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	updates := makeUpdates(64, 3, rng)
	m, err := NewStreamMixer(8, rand.New(rand.NewSource(13)))
	if err != nil {
		t.Fatal(err)
	}
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		emitted []nn.ParamSet
	)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(updates); i += 8 {
				out, err := m.Add(updates[i])
				if err != nil {
					t.Error(err)
					return
				}
				if out != nil {
					mu.Lock()
					emitted = append(emitted, *out)
					mu.Unlock()
				}
			}
		}(w)
	}
	wg.Wait()
	emitted = append(emitted, m.Drain()...)
	if m.Received() != len(updates) {
		t.Fatalf("received %d, want %d", m.Received(), len(updates))
	}
	if len(emitted) != len(updates) {
		t.Fatalf("emitted %d updates, want %d", len(emitted), len(updates))
	}
	before, err := nn.Average(updates)
	if err != nil {
		t.Fatal(err)
	}
	after, err := nn.Average(emitted)
	if err != nil {
		t.Fatal(err)
	}
	if !before.ApproxEqual(after, 1e-9) {
		t.Fatal("concurrent mixing changed the aggregate")
	}
}
