package core

import (
	"math/rand"
	"testing"

	"mixnn/internal/nn"
)

// asShards adapts a concrete mixer slice to the Shard interface the
// seal/restore API takes.
func asShards(ms []*StreamMixer) []Shard {
	out := make([]Shard, len(ms))
	for i, m := range ms {
		out[i] = m
	}
	return out
}

// FuzzShardedStateRestore feeds arbitrary bytes to the tier-state
// restorer: it must reject garbage without panicking (the blob crosses
// the sealing boundary, so a compromised host could feed anything).
func FuzzShardedStateRestore(f *testing.F) {
	rng := rand.New(rand.NewSource(1))
	mixers := make([]*StreamMixer, 2)
	for s := range mixers {
		m, err := NewStreamMixer(3, rand.New(rand.NewSource(int64(s))))
		if err != nil {
			f.Fatal(err)
		}
		mixers[s] = m
	}
	for i, u := range makeUpdates(3, 2, rng) {
		if _, err := mixers[i%2].Add(u); err != nil {
			f.Fatal(err)
		}
	}
	blob, err := SealShardedState(asShards(mixers), ShardedStateMeta{Routing: RoutingHashRR, InRound: 3}, nil)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(blob)
	f.Add([]byte("MXSH"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		fresh := make([]*StreamMixer, 2)
		for s := range fresh {
			// Alternate the restored tier's storage mode by input length:
			// garbage must be rejected cleanly by both.
			var m *StreamMixer
			var err error
			if len(data)%2 == 0 {
				m, err = NewStreamMixerSlab(3, rand.New(rand.NewSource(int64(10+s))), nil)
			} else {
				m, err = NewStreamMixer(3, rand.New(rand.NewSource(int64(10+s))))
			}
			if err != nil {
				t.Fatal(err)
			}
			fresh[s] = m
		}
		if _, err := RestoreShardedState(data, asShards(fresh), nil); err != nil {
			return
		}
		// Anything accepted must leave the tier usable and conservative:
		// drained output count equals the restored buffer.
		buffered, drained := 0, 0
		for _, m := range fresh {
			buffered += m.Buffered()
		}
		for _, m := range fresh {
			drained += len(m.Drain())
		}
		if drained != buffered {
			t.Fatalf("restored tier drained %d of %d buffered", drained, buffered)
		}
	})
}

// FuzzShardedAggregationEquivalence is the shard-aware property test: for
// every granularity, shard count P ∈ {1, 2, 4} and round size C up to 64,
// both sharded transforms must emit exactly C updates whose layer-wise
// mean equals the mean of the inputs within 1e-9 (the §4.2 theorem
// extended across shards).
func FuzzShardedAggregationEquivalence(f *testing.F) {
	f.Add(uint8(8), uint8(1), uint8(1), int64(1))
	f.Add(uint8(13), uint8(2), uint8(2), int64(2))
	f.Add(uint8(64), uint8(4), uint8(3), int64(3))
	f.Add(uint8(1), uint8(4), uint8(1), int64(4))

	f.Fuzz(func(t *testing.T, cRaw, pRaw, gRaw uint8, seed int64) {
		c := int(cRaw)%64 + 1
		p := shardChoices[int(pRaw)%len(shardChoices)]
		granularities := []Granularity{GranularityLayer, GranularityTensor, GranularityModel}
		g := granularities[int(gRaw)%len(granularities)]

		rng := rand.New(rand.NewSource(seed))
		updates := makeUpdates(c, 3, rng)
		before, err := nn.Average(updates)
		if err != nil {
			t.Fatal(err)
		}

		check := func(name string, mixed []nn.ParamSet, err error) {
			if err != nil {
				t.Fatalf("C=%d P=%d g=%s: %s: %v", c, p, g, name, err)
			}
			if len(mixed) != c {
				t.Fatalf("C=%d P=%d g=%s: %s emitted %d updates", c, p, g, name, len(mixed))
			}
			after, err := nn.Average(mixed)
			if err != nil {
				t.Fatal(err)
			}
			if !before.ApproxEqual(after, 1e-9) {
				t.Fatalf("C=%d P=%d g=%s: %s changed the aggregate", c, p, g, name)
			}
		}

		batch, err := ShardedTransform{Granularity: g, Shards: p}.Apply(updates, rng)
		check("sharded batch", batch, err)
		// The stream mixer always works at layer granularity; sweep it over
		// the same C × P grid with a k that exercises emit-then-drain. The
		// legacy and slab storage modes run on identical fresh RNGs: beyond
		// the mean property, their outputs must be BIT-identical (slab mode
		// changes storage, not mixing decisions).
		stream, err := ShardedStreamTransform{K: 2, Shards: p}.Apply(updates, rand.New(rand.NewSource(seed+7)))
		check("sharded stream", stream, err)
		slab, err := ShardedStreamTransform{K: 2, Shards: p, Slab: true}.Apply(updates, rand.New(rand.NewSource(seed+7)))
		check("sharded slab stream", slab, err)
		for i := range stream {
			if !stream[i].ApproxEqual(slab[i], 0) {
				t.Fatalf("C=%d P=%d: slab output %d is not bit-identical to legacy", c, p, i)
			}
		}
	})
}

// shardChoices is the P/P′ grid both shard-aware fuzz targets sweep.
var shardChoices = []int{1, 2, 4}

// FuzzSealRestoreRoundtrip is the crash-restart property test, the
// durable-state sibling of FuzzShardedAggregationEquivalence: for every
// buffer granularity k, shard count P and restore shard count P′ over
// {1, 2, 4}, sealing a P-shard tier after an arbitrary prefix of the
// round and restoring into a fresh P′-shard tier must leave the finished
// round's layer-wise mean equal to the mean of all C inputs within 1e-9
// — material is neither lost nor double-counted across the crash, even
// when the blob reshards on restore.
func FuzzSealRestoreRoundtrip(f *testing.F) {
	f.Add(uint8(8), uint8(4), uint8(1), uint8(2), uint8(2), int64(1))
	f.Add(uint8(13), uint8(6), uint8(2), uint8(0), uint8(1), int64(2))
	f.Add(uint8(64), uint8(33), uint8(2), uint8(1), uint8(3), int64(3))
	f.Add(uint8(6), uint8(5), uint8(0), uint8(2), uint8(0), int64(4))

	f.Fuzz(func(t *testing.T, cRaw, splitRaw, pRaw, pPrimeRaw, kRaw uint8, seed int64) {
		c := int(cRaw)%64 + 1
		split := int(splitRaw) % (c + 1) // seal after split ∈ [0, c] updates
		p := shardChoices[int(pRaw)%len(shardChoices)]
		pPrime := shardChoices[int(pPrimeRaw)%len(shardChoices)]
		k := int(kRaw)%4 + 1

		// The storage-mode dimension rides the seed instead of a new fuzz
		// parameter (which would orphan the existing corpus): both the
		// sealed tier and the restored tier independently run slab-backed
		// or legacy, covering all four cross-restore combinations.
		slabSealed := seed&1 == 0
		slabRestored := seed&2 == 0

		rng := rand.New(rand.NewSource(seed))
		updates := makeUpdates(c, 3, rng)
		before, err := nn.Average(updates)
		if err != nil {
			t.Fatal(err)
		}

		newMixer := func(slab bool, k int, seed int64) (*StreamMixer, error) {
			if slab {
				return NewStreamMixerSlab(k, rand.New(rand.NewSource(seed)), nil)
			}
			return NewStreamMixer(k, rand.New(rand.NewSource(seed)))
		}
		tier := make([]*StreamMixer, p)
		for s := range tier {
			if tier[s], err = newMixer(slabSealed, k, seed+int64(s)); err != nil {
				t.Fatal(err)
			}
		}
		var emitted []nn.ParamSet
		for i, u := range updates[:split] {
			out, err := tier[i%p].Add(u)
			if err != nil {
				t.Fatal(err)
			}
			if out != nil {
				emitted = append(emitted, *out)
			}
		}

		blob, err := SealShardedState(asShards(tier), ShardedStateMeta{
			Routing: RoutingHashRR, RRCursor: split, InRound: split, Received: split,
		}, nil)
		if err != nil {
			t.Fatal(err)
		}
		restored := make([]*StreamMixer, pPrime)
		for s := range restored {
			if restored[s], err = newMixer(slabRestored, k, seed+100+int64(s)); err != nil {
				t.Fatal(err)
			}
		}
		meta, err := RestoreShardedState(blob, asShards(restored), nil)
		if err != nil {
			t.Fatalf("C=%d split=%d P=%d P'=%d k=%d: restore: %v", c, split, p, pPrime, k, err)
		}
		if meta.SealedShards != p || meta.InRound != split {
			t.Fatalf("meta = %+v, want SealedShards=%d InRound=%d", meta, p, split)
		}

		// The remaining clients finish the round on the restored tier.
		for i, u := range updates[split:] {
			out, err := restored[i%pPrime].Add(u)
			if err != nil {
				t.Fatal(err)
			}
			if out != nil {
				emitted = append(emitted, *out)
			}
		}
		for _, m := range restored {
			emitted = append(emitted, m.Drain()...)
		}
		if len(emitted) != c {
			t.Fatalf("C=%d split=%d P=%d P'=%d k=%d: round emitted %d updates", c, split, p, pPrime, k, len(emitted))
		}
		after, err := nn.Average(emitted)
		if err != nil {
			t.Fatal(err)
		}
		if !before.ApproxEqual(after, 1e-9) {
			t.Fatalf("C=%d split=%d P=%d P'=%d k=%d: seal/restore changed the aggregate", c, split, p, pPrime, k)
		}
	})
}
