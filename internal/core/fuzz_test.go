package core

import (
	"math/rand"
	"testing"
)

// FuzzStreamMixerState feeds arbitrary bytes to the state restorer: it must
// reject garbage without panicking (the blob crosses the sealing boundary,
// so a compromised host could feed anything).
func FuzzStreamMixerState(f *testing.F) {
	rng := rand.New(rand.NewSource(1))
	m, err := NewStreamMixer(3, rng)
	if err != nil {
		f.Fatal(err)
	}
	for _, u := range makeUpdates(2, 2, rng) {
		if _, err := m.Add(u); err != nil {
			f.Fatal(err)
		}
	}
	blob, err := m.MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(blob)
	f.Add([]byte("MXST"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		fresh, err := NewStreamMixer(3, rand.New(rand.NewSource(2)))
		if err != nil {
			t.Fatal(err)
		}
		if err := fresh.UnmarshalBinary(data); err != nil {
			return
		}
		// Anything accepted must leave the mixer usable.
		if fresh.Buffered() > fresh.K() {
			t.Fatalf("restored buffer %d exceeds k %d", fresh.Buffered(), fresh.K())
		}
		_ = fresh.Drain()
	})
}
