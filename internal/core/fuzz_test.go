package core

import (
	"math/rand"
	"testing"

	"mixnn/internal/nn"
)

// FuzzStreamMixerState feeds arbitrary bytes to the state restorer: it must
// reject garbage without panicking (the blob crosses the sealing boundary,
// so a compromised host could feed anything).
func FuzzStreamMixerState(f *testing.F) {
	rng := rand.New(rand.NewSource(1))
	m, err := NewStreamMixer(3, rng)
	if err != nil {
		f.Fatal(err)
	}
	for _, u := range makeUpdates(2, 2, rng) {
		if _, err := m.Add(u); err != nil {
			f.Fatal(err)
		}
	}
	blob, err := m.MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(blob)
	f.Add([]byte("MXST"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		fresh, err := NewStreamMixer(3, rand.New(rand.NewSource(2)))
		if err != nil {
			t.Fatal(err)
		}
		if err := fresh.UnmarshalBinary(data); err != nil {
			return
		}
		// Anything accepted must leave the mixer usable.
		if fresh.Buffered() > fresh.K() {
			t.Fatalf("restored buffer %d exceeds k %d", fresh.Buffered(), fresh.K())
		}
		_ = fresh.Drain()
	})
}

// FuzzShardedAggregationEquivalence is the shard-aware property test: for
// every granularity, shard count P ∈ {1, 2, 4} and round size C up to 64,
// both sharded transforms must emit exactly C updates whose layer-wise
// mean equals the mean of the inputs within 1e-9 (the §4.2 theorem
// extended across shards).
func FuzzShardedAggregationEquivalence(f *testing.F) {
	f.Add(uint8(8), uint8(1), uint8(1), int64(1))
	f.Add(uint8(13), uint8(2), uint8(2), int64(2))
	f.Add(uint8(64), uint8(4), uint8(3), int64(3))
	f.Add(uint8(1), uint8(4), uint8(1), int64(4))

	f.Fuzz(func(t *testing.T, cRaw, pRaw, gRaw uint8, seed int64) {
		c := int(cRaw)%64 + 1
		shardChoices := []int{1, 2, 4}
		p := shardChoices[int(pRaw)%len(shardChoices)]
		granularities := []Granularity{GranularityLayer, GranularityTensor, GranularityModel}
		g := granularities[int(gRaw)%len(granularities)]

		rng := rand.New(rand.NewSource(seed))
		updates := makeUpdates(c, 3, rng)
		before, err := nn.Average(updates)
		if err != nil {
			t.Fatal(err)
		}

		check := func(name string, mixed []nn.ParamSet, err error) {
			if err != nil {
				t.Fatalf("C=%d P=%d g=%s: %s: %v", c, p, g, name, err)
			}
			if len(mixed) != c {
				t.Fatalf("C=%d P=%d g=%s: %s emitted %d updates", c, p, g, name, len(mixed))
			}
			after, err := nn.Average(mixed)
			if err != nil {
				t.Fatal(err)
			}
			if !before.ApproxEqual(after, 1e-9) {
				t.Fatalf("C=%d P=%d g=%s: %s changed the aggregate", c, p, g, name)
			}
		}

		batch, err := ShardedTransform{Granularity: g, Shards: p}.Apply(updates, rng)
		check("sharded batch", batch, err)
		// The stream mixer always works at layer granularity; sweep it over
		// the same C × P grid with a k that exercises emit-then-drain.
		stream, err := ShardedStreamTransform{K: 2, Shards: p}.Apply(updates, rng)
		check("sharded stream", stream, err)
	})
}
