package core

import (
	"fmt"
	"math/rand"
	"sync"

	"mixnn/internal/nn"
)

// Shard is one slot of a mixing tier: the contract the proxy's round
// machinery (ingest, round-close drain, seal/restore) needs from a shard
// regardless of WHERE the mixing happens. A local shard is a StreamMixer
// (mixing in this enclave); a remote shard is a RelayShard (material is
// buffered here and relayed to a peer proxy that mixes in its own
// enclave). Implementations must be safe for concurrent use.
type Shard interface {
	// Add files one update; a non-nil return is an emission (a mixed
	// update leaving the shard mid-round).
	Add(u nn.ParamSet) (*nn.ParamSet, error)
	// AddWire files one ENCODED update, letting the shard choose the
	// cheapest path from wire bytes to its storage: a slab mixer decodes
	// straight into its slab (zero intermediate copies), a legacy mixer
	// or relay runs the zero-copy decoder and aliases the buffer. The
	// wire buffer's ownership transfers to the shard — the caller must
	// not modify it afterwards.
	AddWire(wire []byte) (*nn.ParamSet, error)
	// Drain empties the shard at round close and returns the remainder.
	Drain() []nn.ParamSet
	// Buffered, Received and Emitted report the shard's ledger.
	Buffered() int
	Received() int
	Emitted() int
	// K is the shard's buffer capacity (the mixing breadth for a local
	// shard, the round quota for a relay).
	K() int
	// SnapshotEntries exports the buffered contents as complete
	// pseudo-updates for sealing; RestoreEntry reverses it. See the
	// sharded-state docs in shardstate.go.
	SnapshotEntries() []nn.ParamSet
	RestoreEntry(u nn.ParamSet) error
}

// RelayShard is the local stand-in for a REMOTE shard of the tier: it
// buffers the round's material routed to that shard so the delivery
// pipeline can relay it — re-encrypted for the remote proxy's enclave —
// when the round closes. It never mixes (the remote enclave does); it
// only needs the same conservation property as a mixer, which holds
// trivially because Drain returns exactly what Add received.
type RelayShard struct {
	mu       sync.Mutex
	k        int
	buf      []nn.ParamSet
	received int
	emitted  int
}

// NewRelayShard builds a relay buffer; k is the shard's round quota
// (capacity hint only — a relay never rejects, because the router already
// enforces quotas).
func NewRelayShard(k int) *RelayShard {
	if k <= 0 {
		k = 1
	}
	return &RelayShard{k: k}
}

// Add implements Shard: buffer, never emit.
func (r *RelayShard) Add(u nn.ParamSet) (*nn.ParamSet, error) {
	if len(u.Layers) == 0 {
		return nil, fmt.Errorf("core: relay of empty update")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.buf = append(r.buf, u)
	r.received++
	return nil, nil
}

// AddWire implements Shard: decode zero-copy (the relayed material is
// re-encoded per destination at round close anyway) and buffer. The
// views alias wire, whose ownership transfers to the relay.
func (r *RelayShard) AddWire(wire []byte) (*nn.ParamSet, error) {
	ps, err := nn.DecodeParamSetNoCopy(wire)
	if err != nil {
		return nil, err
	}
	return r.Add(ps)
}

// Drain implements Shard: hand the round's buffered material to the
// relay leg.
func (r *RelayShard) Drain() []nn.ParamSet {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := r.buf
	r.buf = nil
	r.emitted += len(out)
	return out
}

// Buffered implements Shard.
func (r *RelayShard) Buffered() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buf)
}

// Received implements Shard.
func (r *RelayShard) Received() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.received
}

// Emitted implements Shard.
func (r *RelayShard) Emitted() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.emitted
}

// K implements Shard.
func (r *RelayShard) K() int { return r.k }

// SnapshotEntries implements Shard: the buffered updates already are
// complete pseudo-updates.
func (r *RelayShard) SnapshotEntries() []nn.ParamSet {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]nn.ParamSet, len(r.buf))
	copy(out, r.buf)
	return out
}

// RestoreEntry implements Shard.
func (r *RelayShard) RestoreEntry(u nn.ParamSet) error {
	if len(u.Layers) == 0 {
		return fmt.Errorf("core: restore of empty update")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.buf = append(r.buf, u)
	r.received++
	return nil
}

// Sharded mixing (the multi-proxy tier). A round of C participants is
// partitioned round-robin across P independent shards; each shard mixes
// only the updates routed to it. Because every shard's mixer is
// conservative — the multiset of layers it emits over a round equals the
// multiset it received — the union across shards is conservative too, so
// the layer-wise mean of all outgoing updates equals the layer-wise mean of
// the inputs and the §4.2 aggregation-equivalence theorem survives
// sharding. What sharding trades away is mixing breadth: layers are only
// exchanged within a shard (anonymity set C/P per shard instead of C),
// which is why the deployment cascades shards through a second mixing hop.

// ShardSizes returns the per-shard round sizes of a round-robin partition
// of c participants over p shards: sizes[s] counts the i in [0, c) with
// i % p == s. It panics if p <= 0.
func ShardSizes(c, p int) []int {
	if p <= 0 {
		panic(fmt.Sprintf("core: ShardSizes with %d shards", p))
	}
	sizes := make([]int, p)
	for s := range sizes {
		sizes[s] = c / p
		if s < c%p {
			sizes[s]++
		}
	}
	return sizes
}

// shardUpdates partitions updates round-robin: shard s receives updates
// i with i % p == s, in arrival order.
func shardUpdates(updates []nn.ParamSet, p int) [][]nn.ParamSet {
	shards := make([][]nn.ParamSet, p)
	for i, u := range updates {
		s := i % p
		shards[s] = append(shards[s], u)
	}
	return shards
}

// clampShards bounds the shard count to [1, c] so every shard sees at
// least one update.
func clampShards(p, c int) int {
	if p <= 0 {
		p = 1
	}
	if p > c {
		p = c
	}
	return p
}

// ShardedStreamTransform runs one independent k-buffer StreamMixer per
// shard over a round-robin partition of the round and concatenates the
// shards' outputs (emissions followed by the round-close drain, per shard).
// With Shards = 1 it reduces exactly to StreamTransform. It satisfies
// fl.UpdateTransform.
type ShardedStreamTransform struct {
	// K is the per-shard list capacity; it is clamped to the shard's round
	// size (so the buffer always fills and drains within the round).
	K int
	// Shards is the shard count P (defaults to 1; clamped to the number of
	// updates).
	Shards int
	// Slab runs each shard's mixer in slab-backed storage mode. The
	// output is bit-identical to the legacy mode for the same rng (the
	// mixing decisions consume the identical RNG sequence; only storage
	// differs) — which is exactly what the equivalence fuzz targets pin.
	Slab bool
}

// Name implements fl.UpdateTransform.
func (t ShardedStreamTransform) Name() string { return "mixnn-sharded" }

// Apply implements fl.UpdateTransform.
func (t ShardedStreamTransform) Apply(updates []nn.ParamSet, rng *rand.Rand) ([]nn.ParamSet, error) {
	if len(updates) == 0 {
		return nil, fmt.Errorf("core: sharded stream mix of zero updates")
	}
	p := clampShards(t.Shards, len(updates))
	out := make([]nn.ParamSet, 0, len(updates))
	for s, part := range shardUpdates(updates, p) {
		k := t.K
		if k <= 0 || k > len(part) {
			k = len(part)
		}
		var m *StreamMixer
		var err error
		if t.Slab {
			m, err = NewStreamMixerSlab(k, rng, nil)
		} else {
			m, err = NewStreamMixer(k, rng)
		}
		if err != nil {
			return nil, err
		}
		for i, u := range part {
			mixed, err := m.Add(u)
			if err != nil {
				return nil, fmt.Errorf("core: shard %d update %d: %w", s, i, err)
			}
			if mixed != nil {
				out = append(out, *mixed)
			}
		}
		out = append(out, m.Drain()...)
	}
	return out, nil
}

// ShardedTransform is the batch mixer (§4.2) applied per shard: each shard
// mixes its partition with one independent uniform permutation per unit at
// the chosen granularity. With Shards = 1 it reduces exactly to Transform.
// It satisfies fl.UpdateTransform.
type ShardedTransform struct {
	// Granularity defaults to GranularityLayer (the paper's design).
	Granularity Granularity
	// Shards is the shard count P (defaults to 1; clamped to the number of
	// updates).
	Shards int
}

// Name implements fl.UpdateTransform.
func (t ShardedTransform) Name() string { return "mixnn-sharded-batch" }

// Apply implements fl.UpdateTransform.
func (t ShardedTransform) Apply(updates []nn.ParamSet, rng *rand.Rand) ([]nn.ParamSet, error) {
	if len(updates) == 0 {
		return nil, fmt.Errorf("core: sharded batch mix of zero updates")
	}
	g := t.Granularity
	if g == 0 {
		g = GranularityLayer
	}
	p := clampShards(t.Shards, len(updates))
	out := make([]nn.ParamSet, 0, len(updates))
	for s, part := range shardUpdates(updates, p) {
		mixed, _, err := BatchMixAssignment(part, rng, g)
		if err != nil {
			return nil, fmt.Errorf("core: shard %d: %w", s, err)
		}
		out = append(out, mixed...)
	}
	return out, nil
}
