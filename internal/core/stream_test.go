package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mixnn/internal/nn"
	"mixnn/internal/tensor"
)

func TestStreamMixerFillsThenEmits(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	updates := makeUpdates(7, 3, rng)
	m, err := NewStreamMixer(4, rng)
	if err != nil {
		t.Fatal(err)
	}

	// First k=4 updates buffer without emitting.
	for i := 0; i < 4; i++ {
		out, err := m.Add(updates[i])
		if err != nil {
			t.Fatal(err)
		}
		if out != nil {
			t.Fatalf("update %d emitted during fill phase", i)
		}
	}
	if m.Buffered() != 4 {
		t.Fatalf("buffered = %d, want 4", m.Buffered())
	}

	// Each further update emits exactly one mixed update.
	for i := 4; i < 7; i++ {
		out, err := m.Add(updates[i])
		if err != nil {
			t.Fatal(err)
		}
		if out == nil {
			t.Fatalf("update %d did not emit once buffer full", i)
		}
	}
	if m.Buffered() != 4 {
		t.Fatalf("buffered after steady state = %d, want 4", m.Buffered())
	}
	if m.Emitted() != 3 || m.Received() != 7 {
		t.Fatalf("emitted/received = %d/%d, want 3/7", m.Emitted(), m.Received())
	}

	// Drain flushes the remaining 4.
	rest := m.Drain()
	if len(rest) != 4 {
		t.Fatalf("drained %d updates, want 4", len(rest))
	}
	if m.Buffered() != 0 {
		t.Fatalf("buffered after drain = %d, want 0", m.Buffered())
	}
}

func TestStreamMixerConservesLayers(t *testing.T) {
	// Over a full round, every (participant, layer) value must appear in
	// the output exactly once — the conservation property behind
	// aggregation equivalence.
	rng := rand.New(rand.NewSource(2))
	c, l := 9, 4
	updates := makeUpdates(c, l, rng)
	m, err := NewStreamMixer(3, rng)
	if err != nil {
		t.Fatal(err)
	}
	var emitted []nn.ParamSet
	for _, u := range updates {
		out, err := m.Add(u)
		if err != nil {
			t.Fatal(err)
		}
		if out != nil {
			emitted = append(emitted, *out)
		}
	}
	emitted = append(emitted, m.Drain()...)
	if len(emitted) != c {
		t.Fatalf("emitted %d updates for %d participants", len(emitted), c)
	}

	for j := 0; j < l; j++ {
		// Match emitted layer-j tensors back to source participants.
		used := make([]bool, c)
		for _, e := range emitted {
			found := -1
			for src := 0; src < c; src++ {
				if tensor.Equal(e.Layers[j].Tensors[0], updates[src].Layers[j].Tensors[0]) {
					found = src
					break
				}
			}
			if found < 0 {
				t.Fatalf("layer %d of an emitted update matches no participant", j)
			}
			if used[found] {
				t.Fatalf("layer %d of participant %d appears twice", j, found)
			}
			used[found] = true
		}
	}

	before, _ := nn.Average(updates)
	after, err := nn.Average(emitted)
	if err != nil {
		t.Fatal(err)
	}
	if !before.ApproxEqual(after, 1e-9) {
		t.Fatal("stream mixing changed the aggregate")
	}
}

func TestStreamMixerRejects(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	if _, err := NewStreamMixer(0, rng); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := NewStreamMixer(2, nil); err == nil {
		t.Fatal("nil rng accepted")
	}
	m, err := NewStreamMixer(2, rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Add(nn.ParamSet{}); err == nil {
		t.Fatal("empty update accepted")
	}
	good := makeUpdates(1, 2, rng)[0]
	if _, err := m.Add(good); err != nil {
		t.Fatal(err)
	}
	bad := makeUpdates(1, 3, rng)[0]
	if _, err := m.Add(bad); err == nil {
		t.Fatal("incompatible update accepted")
	}
}

func TestStreamTransformRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	updates := makeUpdates(10, 3, rng)
	tr := StreamTransform{K: 4}
	out, err := tr.Apply(updates, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(updates) {
		t.Fatalf("transform returned %d updates for %d inputs", len(out), len(updates))
	}
	before, _ := nn.Average(updates)
	after, err := nn.Average(out)
	if err != nil {
		t.Fatal(err)
	}
	if !before.ApproxEqual(after, 1e-9) {
		t.Fatal("stream transform changed the aggregate")
	}
}

func TestStreamTransformClampsK(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	updates := makeUpdates(3, 2, rng)
	// K larger than the population must still emit everything.
	out, err := StreamTransform{K: 50}.Apply(updates, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("emitted %d, want 3", len(out))
	}
}

// Property: for any population size and k, the stream mixer emits exactly
// the updates it received (conservation) and preserves the aggregate.
func TestQuickStreamConservation(t *testing.T) {
	f := func(seed int64, c8, k8 uint8) bool {
		c := int(c8%12) + 1
		k := int(k8%8) + 1
		rng := rand.New(rand.NewSource(seed))
		updates := makeUpdates(c, 3, rng)
		out, err := StreamTransform{K: k}.Apply(updates, rng)
		if err != nil || len(out) != c {
			return false
		}
		before, err1 := nn.Average(updates)
		after, err2 := nn.Average(out)
		if err1 != nil || err2 != nil {
			return false
		}
		return before.ApproxEqual(after, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
