package enclave

import (
	"crypto/ecdsa"
	"crypto/rsa"
	"fmt"
)

// HopKey is the key material one mixing proxy holds for the next hop of a
// cascade: the next enclave's encryption public key, bound to the
// measurement that was attested when the key was pinned. A proxy that
// forwards mixed updates through a HopKey re-encrypts them end-to-end for
// the next enclave, so the untrusted network between hops (and the
// forwarding proxy's own host) never sees plaintext updates.
type HopKey struct {
	pub         *rsa.PublicKey
	measurement [32]byte
}

// TrustHop verifies a next-hop enclave's attestation report against the
// attestation authority, the expected measurement and the caller's nonce,
// and returns the pinned hop key on success. This is the proxy-to-proxy
// analogue of the participant's attestation handshake.
func TrustHop(rep Report, authority *ecdsa.PublicKey, expectedMeasurement [32]byte, nonce []byte) (*HopKey, error) {
	pub, err := rep.Verify(authority, expectedMeasurement, nonce)
	if err != nil {
		return nil, fmt.Errorf("enclave: trust hop: %w", err)
	}
	rsaPub, ok := pub.(*rsa.PublicKey)
	if !ok {
		return nil, fmt.Errorf("enclave: hop attested a %T key, want RSA", pub)
	}
	return &HopKey{pub: rsaPub, measurement: rep.Measurement}, nil
}

// PinnedHop builds a HopKey from out-of-band key material (deployments
// that distribute the next hop's key alongside its trust bundle instead of
// attesting at startup).
func PinnedHop(pub *rsa.PublicKey, measurement [32]byte) *HopKey {
	return &HopKey{pub: pub, measurement: measurement}
}

// Measurement returns the measurement the hop key is bound to.
func (h *HopKey) Measurement() [32]byte { return h.measurement }

// Wrap encrypts a mixed update for the next hop's enclave using the same
// hybrid scheme participants use, so a cascade hop ingests forwarded
// traffic through the identical decryption path as first-hop traffic.
func (h *HopKey) Wrap(plaintext []byte) ([]byte, error) {
	if h == nil || h.pub == nil {
		return nil, fmt.Errorf("enclave: no hop key pinned")
	}
	return Encrypt(h.pub, plaintext)
}

// NewSession starts a crypto session against the hop's enclave: one
// RSA wrap here, then Session.Wrap is GCM-only for every forwarded
// round (see session.go). Cascade and relay legs use it so steady-state
// inter-proxy delivery sheds the per-round RSA cost the same way
// participant ingress does.
func (h *HopKey) NewSession() (*Session, error) {
	if h == nil || h.pub == nil {
		return nil, fmt.Errorf("enclave: no hop key pinned")
	}
	return NewSession(h.pub)
}
