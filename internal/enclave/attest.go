package enclave

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/sha256"
	"crypto/x509"
	"fmt"
)

// Platform models the physical host: it owns the CPU fuse secret that
// sealing keys derive from and the attestation authority that vouches for
// enclaves running on genuine hardware (the IAS role in real SGX).
type Platform struct {
	fuseSecret [32]byte
	iasKey     *ecdsa.PrivateKey
}

// NewPlatform creates a platform with a fresh fuse secret and attestation
// signing key.
func NewPlatform() (*Platform, error) {
	var fuse [32]byte
	if _, err := rand.Read(fuse[:]); err != nil {
		return nil, fmt.Errorf("enclave: platform fuse secret: %w", err)
	}
	return NewPlatformWithFuse(fuse)
}

// NewPlatformWithFuse creates a platform with the given fuse secret,
// modelling a process restart on the same physical host: real CPU fuses
// are permanent, so an enclave relaunched on the same hardware derives
// the same sealing key and can unseal state a previous incarnation
// sealed. The attestation key is still freshly generated (participants
// re-pin the trust bundle after a restart anyway).
func NewPlatformWithFuse(fuse [32]byte) (*Platform, error) {
	p := &Platform{fuseSecret: fuse}
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("enclave: attestation key: %w", err)
	}
	p.iasKey = key
	return p, nil
}

// AttestationPublicKey returns the verification key clients pin (the IAS
// root in real deployments).
func (p *Platform) AttestationPublicKey() *ecdsa.PublicKey { return &p.iasKey.PublicKey }

// Report is a remote-attestation report: it binds the enclave measurement
// and its encryption public key to a caller-chosen nonce, signed by the
// platform's attestation authority. A client that verifies a Report knows
// the public key belongs to an enclave running the expected code.
type Report struct {
	Measurement [32]byte
	Nonce       []byte
	PubKeyDER   []byte
	Signature   []byte
}

// Attest produces a signed report for the enclave bound to the given nonce.
func (p *Platform) Attest(e *Enclave, nonce []byte) (Report, error) {
	der, err := x509.MarshalPKIXPublicKey(e.PublicKey())
	if err != nil {
		return Report{}, fmt.Errorf("enclave: marshal public key: %w", err)
	}
	r := Report{Measurement: e.Measurement(), Nonce: append([]byte(nil), nonce...), PubKeyDER: der}
	digest := r.digest()
	sig, err := ecdsa.SignASN1(rand.Reader, p.iasKey, digest[:])
	if err != nil {
		return Report{}, fmt.Errorf("enclave: sign report: %w", err)
	}
	r.Signature = sig
	return r, nil
}

func (r Report) digest() [32]byte {
	h := sha256.New()
	h.Write(r.Measurement[:])
	h.Write(r.Nonce)
	h.Write(r.PubKeyDER)
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// Verify checks the report signature against the attestation authority key,
// the expected measurement and the nonce the verifier chose. It returns the
// attested enclave public key on success.
func (r Report) Verify(authority *ecdsa.PublicKey, expectedMeasurement [32]byte, nonce []byte) (interface{}, error) {
	if r.Measurement != expectedMeasurement {
		return nil, fmt.Errorf("enclave: measurement mismatch: enclave runs unexpected code")
	}
	if string(r.Nonce) != string(nonce) {
		return nil, fmt.Errorf("enclave: attestation nonce mismatch (replayed report?)")
	}
	digest := r.digest()
	if !ecdsa.VerifyASN1(authority, digest[:], r.Signature) {
		return nil, fmt.Errorf("enclave: attestation signature invalid")
	}
	pub, err := x509.ParsePKIXPublicKey(r.PubKeyDER)
	if err != nil {
		return nil, fmt.Errorf("enclave: parse attested key: %w", err)
	}
	return pub, nil
}
