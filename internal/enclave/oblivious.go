package enclave

import (
	"crypto/subtle"
	"fmt"
)

// ObliviousStore is a fixed-geometry data-oblivious slot store: every Get
// and Put touches every byte of every slot, so memory access patterns leak
// nothing about which slot was addressed. It is the linear-scan analogue of
// the ORAM mechanisms the paper cites for protecting the proxy's layer
// lists against enclave side channels (§4.3, ZeroTrace).
//
// Linear scanning costs O(slots × slotSize) per access — acceptable here
// because the proxy performs only a handful of accesses per federated
// round (the paper makes the same argument: "the associated overhead is
// negligible in our context where updates are sent only periodically").
type ObliviousStore struct {
	slotSize int
	slots    [][]byte
	accesses int
}

// NewObliviousStore creates a store of n slots of slotSize bytes each,
// zero-initialised.
func NewObliviousStore(n, slotSize int) (*ObliviousStore, error) {
	if n <= 0 || slotSize <= 0 {
		return nil, fmt.Errorf("enclave: oblivious store requires positive geometry, got %dx%d", n, slotSize)
	}
	s := &ObliviousStore{slotSize: slotSize, slots: make([][]byte, n)}
	for i := range s.slots {
		s.slots[i] = make([]byte, slotSize)
	}
	return s, nil
}

// Len returns the number of slots.
func (s *ObliviousStore) Len() int { return len(s.slots) }

// SlotSize returns the slot width in bytes.
func (s *ObliviousStore) SlotSize() int { return s.slotSize }

// Accesses returns how many oblivious operations have been performed
// (tests use it to assert the access discipline).
func (s *ObliviousStore) Accesses() int { return s.accesses }

// Put writes data into slot idx, touching every slot. data must be exactly
// SlotSize bytes.
func (s *ObliviousStore) Put(idx int, data []byte) error {
	if idx < 0 || idx >= len(s.slots) {
		return fmt.Errorf("enclave: oblivious Put index %d outside [0,%d)", idx, len(s.slots))
	}
	if len(data) != s.slotSize {
		return fmt.Errorf("enclave: oblivious Put of %d bytes into %d-byte slots", len(data), s.slotSize)
	}
	for i := range s.slots {
		// mask is all-ones for the target slot, all-zeros otherwise;
		// every slot gets the same sequence of operations.
		mask := byte(subtle.ConstantTimeEq(int32(i), int32(idx)))
		mask = -mask // 0x00 or 0xFF
		slot := s.slots[i]
		for b := 0; b < s.slotSize; b++ {
			slot[b] = (slot[b] &^ mask) | (data[b] & mask)
		}
	}
	s.accesses++
	return nil
}

// Get reads slot idx into a fresh buffer, touching every slot.
func (s *ObliviousStore) Get(idx int) ([]byte, error) {
	if idx < 0 || idx >= len(s.slots) {
		return nil, fmt.Errorf("enclave: oblivious Get index %d outside [0,%d)", idx, len(s.slots))
	}
	out := make([]byte, s.slotSize)
	for i := range s.slots {
		mask := byte(subtle.ConstantTimeEq(int32(i), int32(idx)))
		mask = -mask
		slot := s.slots[i]
		for b := 0; b < s.slotSize; b++ {
			out[b] |= slot[b] & mask
		}
	}
	s.accesses++
	return out, nil
}
