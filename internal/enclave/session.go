// Session-keyed enclave crypto: the versioned ciphertext family that
// amortizes the per-update RSA-OAEP key unwrap into a one-time
// handshake. The legacy hybrid format wraps a FRESH AES-256 key for
// every update (~1ms of RSA per ingest); a session wraps one key once,
// tags it with a random session id, and every subsequent update is a
// pure AES-GCM open under that key (tens of µs). The trust boundary is
// unchanged: the session key is wrapped with the same RSA-OAEP for the
// same attested enclave key, so only the enclave ever sees it.
//
// Two wire formats, disambiguated from the legacy hybrid layout by a
// 4-byte magic (a legacy ciphertext starts with its u16 wrapped-key
// length; "MX" read as a little-endian u16 is 22605 bytes — a ~180000
// bit RSA key — so the magic is unambiguous in practice):
//
//	establish "MXSE" | ver u8 | sid [16]byte | wlen u16 | wrappedKey | AES-GCM ct
//	data      "MXSD" | ver u8 | sid [16]byte | counter u64 | AES-GCM ct
//
// The establish message CARRIES the first update (counter 0), so
// starting a session costs zero extra round trips. The GCM nonce is the
// deterministic 12-byte little-endian encoding of the counter — safe
// because the key is fresh per session and the Session API makes each
// counter single-use — and the full header is bound as AAD, so neither
// the session id nor the counter can be spliced across messages.
//
// The enclave keeps a bounded LRU of sessions, EPC-accounted at one
// page each. A data message for an unknown session (evicted, or the
// enclave restarted and lost its RSA key anyway) is rejected with
// ErrSessionUnknown BEFORE anything is ingested; senders answer it by
// re-establishing with a full wrap. A counter already admitted is
// rejected with ErrSessionReplay — same sender response, since the
// current attempt provably ingested nothing.
package enclave

import (
	"container/list"
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"crypto/rsa"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sync/atomic"
)

const (
	sessionMagicEstablish = "MXSE"
	sessionMagicData      = "MXSD"
	sessionVersion        = 1

	sessionIDSize = 16
	// magic + version + sid [+ u16 wlen | + u64 counter]
	establishHeaderSize = 4 + 1 + sessionIDSize + 2
	dataHeaderSize      = 4 + 1 + sessionIDSize + 8

	// sessionEPCBytes is the EPC charge per cached session: one page
	// covers the AES key schedule, GCM tables and replay state.
	sessionEPCBytes = 4096
)

// DefaultSessionCacheEntries bounds the enclave's session cache: at one
// EPC page each, a full cache costs 16 MiB of the 96 MiB budget.
const DefaultSessionCacheEntries = 4096

// ErrSessionUnknown rejects a session-data ciphertext whose session the
// enclave does not hold (evicted from the bounded cache, or lost with
// the enclave's memory across a restart). The rejection happens before
// any decryption or ingest, so the sender may safely re-establish and
// resend.
var ErrSessionUnknown = errors.New("enclave: unknown crypto session")

// ErrSessionReplay rejects a session-data ciphertext whose counter was
// already admitted (or fell behind the reorder window). The current
// attempt provably ingested nothing; senders recover exactly as for
// ErrSessionUnknown — re-establish with a full wrap.
var ErrSessionReplay = errors.New("enclave: session counter replayed")

// sessionNonce encodes a message counter as the deterministic GCM
// nonce: counter little-endian in the first 8 bytes, zero elsewhere.
func sessionNonce(counter uint64) [gcmNonceSize]byte {
	var n [gcmNonceSize]byte
	binary.LittleEndian.PutUint64(n[:8], counter)
	return n
}

func newSessionAEAD(key []byte) (cipher.AEAD, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	return cipher.NewGCM(block)
}

// Session is the SENDER side of one crypto session: the wrapped key,
// the cached GCM instance and the message counter. The first Wrap
// emits the establish message (which carries that first payload); every
// later Wrap emits a data message with the next counter. Safe for
// concurrent use — the counter is atomic and GCM seal is stateless.
type Session struct {
	sid     [sessionIDSize]byte
	wrapped []byte
	aead    cipher.AEAD
	ctr     atomic.Uint64
}

// sessionCounterLimit forces a key rotation long before the counter
// space (and the deterministic nonces derived from it) could wrap.
const sessionCounterLimit = 1 << 62

// NewSession draws a fresh session key and id and wraps the key for the
// enclave holding pub. The RSA cost is paid HERE, once; Wrap is then
// GCM-only for the session's lifetime.
func NewSession(pub *rsa.PublicKey) (*Session, error) {
	key := make([]byte, 32)
	if _, err := rand.Read(key); err != nil {
		return nil, fmt.Errorf("enclave: draw session key: %w", err)
	}
	s := &Session{}
	if _, err := rand.Read(s.sid[:]); err != nil {
		return nil, fmt.Errorf("enclave: draw session id: %w", err)
	}
	wrapped, err := rsa.EncryptOAEP(sha256.New(), rand.Reader, pub, key, nil)
	if err != nil {
		return nil, fmt.Errorf("enclave: wrap session key: %w", err)
	}
	s.wrapped = wrapped
	if s.aead, err = newSessionAEAD(key); err != nil {
		return nil, fmt.Errorf("enclave: session cipher: %w", err)
	}
	return s, nil
}

// Wrap encrypts one payload for the session's enclave: the establish
// message on the session's first call (counter 0, carrying the wrapped
// key so the handshake costs no extra round trip), a data message with
// the next counter after that. The output is a single exact-size
// allocation — the session's cipher instance is reused, nothing else is
// allocated per call.
func (s *Session) Wrap(plaintext []byte) ([]byte, error) {
	c := s.ctr.Add(1) - 1
	if c >= sessionCounterLimit {
		return nil, fmt.Errorf("enclave: session counter exhausted; establish a new session")
	}
	var out []byte
	if c == 0 {
		out = make([]byte, 0, establishHeaderSize+len(s.wrapped)+len(plaintext)+s.aead.Overhead())
		out = append(out, sessionMagicEstablish...)
		out = append(out, sessionVersion)
		out = append(out, s.sid[:]...)
		out = binary.LittleEndian.AppendUint16(out, uint16(len(s.wrapped)))
		out = append(out, s.wrapped...)
	} else {
		out = make([]byte, 0, dataHeaderSize+len(plaintext)+s.aead.Overhead())
		out = append(out, sessionMagicData...)
		out = append(out, sessionVersion)
		out = append(out, s.sid[:]...)
		out = binary.LittleEndian.AppendUint64(out, c)
	}
	nonce := sessionNonce(c)
	return s.aead.Seal(out, nonce[:], plaintext, out), nil
}

// sessionState is the ENCLAVE side of one session: the key schedule
// plus replay-protection state. hwm is the highest admitted counter;
// window is a 64-bit bitmap of the counters hwm-1 .. hwm-64 (bit k set
// = counter hwm-1-k admitted), so modest network reordering is admitted
// while anything at or below hwm-65, or already admitted, is a replay.
type sessionState struct {
	sid    [sessionIDSize]byte
	aead   cipher.AEAD
	hwm    uint64
	window uint64
	elem   *list.Element
}

// admit runs the replay check for counter c and records it when fresh.
func (s *sessionState) admit(c uint64) bool {
	switch {
	case c > s.hwm:
		shift := c - s.hwm
		if shift >= 64 {
			s.window = 0
		} else {
			// Slide the window and mark the old high-watermark as seen.
			s.window = s.window << shift
			if s.hwm > 0 {
				s.window |= 1 << (shift - 1)
			}
		}
		s.hwm = c
		return true
	case c == s.hwm:
		// Callers reject counter 0 before admission, so hwm == c means
		// the counter was already admitted.
		return false
	default:
		d := s.hwm - c
		if d > 64 {
			return false // fell behind the reorder window
		}
		bit := uint64(1) << (d - 1)
		if s.window&bit != 0 {
			return false
		}
		s.window |= bit
		return true
	}
}

// installSession (re)creates the enclave-side state for sid. An
// establish for a sid the cache already holds REPLACES it with fresh
// replay state — the retry of a lost establish acknowledgement carries
// the identical ciphertext, and a fresh establish under the same sid
// necessarily proved knowledge of the enclave's public key anyway.
func (e *Enclave) installSession(sid [sessionIDSize]byte, aead cipher.AEAD) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if s := e.sessions[sid]; s != nil {
		s.aead = aead
		s.hwm, s.window = 0, 0
		e.sessLRU.MoveToFront(s.elem)
		e.sessEstablished++
		return
	}
	s := &sessionState{sid: sid, aead: aead}
	s.elem = e.sessLRU.PushFront(s)
	e.sessions[sid] = s
	e.allocLocked(sessionEPCBytes)
	e.sessEstablished++
	for len(e.sessions) > e.cfg.SessionCacheEntries {
		oldest := e.sessLRU.Back()
		if oldest == nil {
			break
		}
		victim := e.sessLRU.Remove(oldest).(*sessionState)
		delete(e.sessions, victim.sid)
		e.freeLocked(sessionEPCBytes)
		e.sessEvicts++
	}
}

// ResetSessions drops every cached session: the volatile-state loss of
// an enclave restart. Tests that model a crash on a long-lived Enclave
// object (whose key pair stands in for sealed identity surviving the
// restart) call it so the restarted proxy answers in-flight session
// traffic the way real hardware would — with the typed session-unknown
// rejection that drives senders to re-establish.
func (e *Enclave) ResetSessions() {
	e.mu.Lock()
	defer e.mu.Unlock()
	for range e.sessions {
		e.freeLocked(sessionEPCBytes)
	}
	e.sessions = make(map[[sessionIDSize]byte]*sessionState)
	e.sessLRU.Init()
}

// decryptEstablish opens an "MXSE" establish message: unwrap the
// session key with the enclave's RSA key, authenticate the carried
// payload under it, and only then install the session.
func (e *Enclave) decryptEstablish(ct []byte) ([]byte, error) {
	if len(ct) < establishHeaderSize {
		return nil, fmt.Errorf("%w: truncated session establish", ErrCiphertext)
	}
	if ct[4] != sessionVersion {
		return nil, fmt.Errorf("%w: unsupported session version %d", ErrCiphertext, ct[4])
	}
	wlen := int(binary.LittleEndian.Uint16(ct[establishHeaderSize-2:]))
	hdrLen := establishHeaderSize + wlen
	if len(ct) < hdrLen {
		return nil, fmt.Errorf("%w: truncated session establish", ErrCiphertext)
	}
	key, err := rsa.DecryptOAEP(sha256.New(), nil, e.priv, ct[establishHeaderSize:hdrLen], nil)
	if err != nil {
		return nil, fmt.Errorf("%w: session key unwrap failed", ErrCiphertext)
	}
	if len(key) != 32 {
		return nil, fmt.Errorf("%w: session key has wrong length", ErrCiphertext)
	}
	aead, err := newSessionAEAD(key)
	if err != nil {
		return nil, fmt.Errorf("%w: session cipher", ErrCiphertext)
	}
	nonce := sessionNonce(0)
	plain, err := aead.Open(nil, nonce[:], ct[hdrLen:], ct[:hdrLen])
	if err != nil {
		return nil, fmt.Errorf("%w: authentication failed", ErrCiphertext)
	}
	var sid [sessionIDSize]byte
	copy(sid[:], ct[5:5+sessionIDSize])
	e.installSession(sid, aead)
	return plain, nil
}

// decryptData opens an "MXSD" data message against the session cache.
// The GCM open runs OUTSIDE the enclave lock (the AEAD is immutable),
// and the replay admission re-checks the session afterwards so an
// eviction racing the open cannot corrupt another session's state.
func (e *Enclave) decryptData(ct []byte) ([]byte, error) {
	if len(ct) < dataHeaderSize {
		return nil, fmt.Errorf("%w: truncated session data", ErrCiphertext)
	}
	if ct[4] != sessionVersion {
		return nil, fmt.Errorf("%w: unsupported session version %d", ErrCiphertext, ct[4])
	}
	var sid [sessionIDSize]byte
	copy(sid[:], ct[5:5+sessionIDSize])
	counter := binary.LittleEndian.Uint64(ct[dataHeaderSize-8:])
	if counter == 0 {
		// Counter 0 is the establish nonce; a data message claiming it is
		// forged or corrupt, not a replay.
		return nil, fmt.Errorf("%w: session data counter 0", ErrCiphertext)
	}
	e.mu.Lock()
	s := e.sessions[sid]
	if s == nil {
		e.sessMisses++
		e.mu.Unlock()
		return nil, ErrSessionUnknown
	}
	aead := s.aead
	e.mu.Unlock()
	nonce := sessionNonce(counter)
	plain, err := aead.Open(nil, nonce[:], ct[dataHeaderSize:], ct[:dataHeaderSize])
	if err != nil {
		return nil, fmt.Errorf("%w: authentication failed", ErrCiphertext)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if cur := e.sessions[sid]; cur == nil || cur.aead != aead {
		// Evicted (or re-established) while the open ran.
		e.sessMisses++
		return nil, ErrSessionUnknown
	} else if !cur.admit(counter) {
		e.sessReplays++
		return nil, ErrSessionReplay
	} else {
		e.sessLRU.MoveToFront(cur.elem)
	}
	e.sessHits++
	return plain, nil
}
