package enclave

import (
	"bytes"
	"testing"
)

func TestTrustHopWrapRoundTrip(t *testing.T) {
	platform, err := NewPlatform()
	if err != nil {
		t.Fatal(err)
	}
	next, err := New(Config{CodeIdentity: "hop-b", RSABits: 1024}, platform)
	if err != nil {
		t.Fatal(err)
	}
	nonce := []byte("hop-nonce-1")
	rep, err := platform.Attest(next, nonce)
	if err != nil {
		t.Fatal(err)
	}
	hop, err := TrustHop(rep, platform.AttestationPublicKey(), next.Measurement(), nonce)
	if err != nil {
		t.Fatal(err)
	}
	if hop.Measurement() != next.Measurement() {
		t.Fatal("hop key bound to wrong measurement")
	}
	plain := []byte("mixed update payload")
	ct, err := hop.Wrap(plain)
	if err != nil {
		t.Fatal(err)
	}
	got, err := next.Decrypt(ct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, plain) {
		t.Fatalf("hop round trip = %q, want %q", got, plain)
	}
}

func TestTrustHopRejectsWrongMeasurement(t *testing.T) {
	platform, err := NewPlatform()
	if err != nil {
		t.Fatal(err)
	}
	next, err := New(Config{CodeIdentity: "hop-genuine", RSABits: 1024}, platform)
	if err != nil {
		t.Fatal(err)
	}
	nonce := []byte("hop-nonce-2")
	rep, err := platform.Attest(next, nonce)
	if err != nil {
		t.Fatal(err)
	}
	imposter, err := New(Config{CodeIdentity: "hop-imposter", RSABits: 1024}, platform)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := TrustHop(rep, platform.AttestationPublicKey(), imposter.Measurement(), nonce); err == nil {
		t.Fatal("hop with unexpected measurement trusted")
	}
	if _, err := TrustHop(rep, platform.AttestationPublicKey(), next.Measurement(), []byte("other")); err == nil {
		t.Fatal("replayed hop report trusted")
	}
}

func TestWrapWithoutKeyFails(t *testing.T) {
	var hop *HopKey
	if _, err := hop.Wrap([]byte("x")); err == nil {
		t.Fatal("nil hop key wrapped")
	}
}
