package enclave

import (
	"bytes"
	"crypto/rand"
	"errors"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

// Shared fixtures: RSA keygen is the slow part, so tests reuse one platform
// and enclave pair where mutation is not an issue.
var (
	testOnce     sync.Once
	testPlatform *Platform
	testEnclave  *Enclave
)

func fixtures(t *testing.T) (*Platform, *Enclave) {
	t.Helper()
	testOnce.Do(func() {
		var err error
		testPlatform, err = NewPlatform()
		if err != nil {
			t.Fatalf("NewPlatform: %v", err)
		}
		testEnclave, err = New(Config{}, testPlatform)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
	})
	return testPlatform, testEnclave
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	_, e := fixtures(t)
	msgs := [][]byte{
		[]byte(""),
		[]byte("x"),
		bytes.Repeat([]byte{0xAB}, 10_000),
	}
	for _, msg := range msgs {
		ct, err := Encrypt(e.PublicKey(), msg)
		if err != nil {
			t.Fatalf("Encrypt: %v", err)
		}
		pt, err := e.Decrypt(ct)
		if err != nil {
			t.Fatalf("Decrypt: %v", err)
		}
		if !bytes.Equal(pt, msg) {
			t.Fatalf("round trip mismatch for %d-byte message", len(msg))
		}
	}
}

func TestEncryptIsRandomised(t *testing.T) {
	_, e := fixtures(t)
	a, err := Encrypt(e.PublicKey(), []byte("same message"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Encrypt(e.PublicKey(), []byte("same message"))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a, b) {
		t.Fatal("two encryptions of the same plaintext are identical")
	}
}

func TestDecryptRejectsTampering(t *testing.T) {
	_, e := fixtures(t)
	ct, err := Encrypt(e.PublicKey(), []byte("sensitive model update"))
	if err != nil {
		t.Fatal(err)
	}

	tests := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"flip payload byte", func(b []byte) []byte {
			b[len(b)-1] ^= 0x01
			return b
		}},
		{"flip wrapped key byte", func(b []byte) []byte {
			b[5] ^= 0x80
			return b
		}},
		{"truncate", func(b []byte) []byte { return b[:len(b)/2] }},
		{"empty", func(b []byte) []byte { return nil }},
		{"short header", func(b []byte) []byte { return b[:1] }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			mutated := tt.mutate(append([]byte(nil), ct...))
			if _, err := e.Decrypt(mutated); err == nil {
				t.Fatal("tampered ciphertext decrypted successfully")
			} else if !errors.Is(err, ErrCiphertext) {
				t.Fatalf("error %v is not ErrCiphertext", err)
			}
		})
	}
}

func TestDecryptRejectsForeignCiphertext(t *testing.T) {
	p, e := fixtures(t)
	other, err := New(Config{CodeIdentity: "other-enclave"}, p)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := Encrypt(other.PublicKey(), []byte("for the other enclave"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Decrypt(ct); err == nil {
		t.Fatal("decrypted a ciphertext addressed to another enclave")
	}
}

func TestSealUnsealRoundTrip(t *testing.T) {
	_, e := fixtures(t)
	data := []byte("state persisted outside the enclave")
	blob, err := e.Seal(data)
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.Unseal(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("seal/unseal mismatch")
	}
}

func TestUnsealBoundToIdentityAndPlatform(t *testing.T) {
	p, e := fixtures(t)
	blob, err := e.Seal([]byte("secret"))
	if err != nil {
		t.Fatal(err)
	}

	// Different code identity on the same platform must not unseal.
	imposter, err := New(Config{CodeIdentity: "evil-proxy"}, p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := imposter.Unseal(blob); err == nil {
		t.Fatal("different enclave identity unsealed the blob")
	}

	// Same identity on a different platform must not unseal either.
	p2, err := NewPlatform()
	if err != nil {
		t.Fatal(err)
	}
	migrated, err := New(Config{}, p2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := migrated.Unseal(blob); err == nil {
		t.Fatal("different platform unsealed the blob")
	}
}

func TestAttestationVerifies(t *testing.T) {
	p, e := fixtures(t)
	nonce := []byte("client-chosen-nonce")
	rep, err := p.Attest(e, nonce)
	if err != nil {
		t.Fatal(err)
	}
	pub, err := rep.Verify(p.AttestationPublicKey(), e.Measurement(), nonce)
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if pub == nil {
		t.Fatal("Verify returned nil key")
	}
}

func TestAttestationRejections(t *testing.T) {
	p, e := fixtures(t)
	nonce := []byte("nonce-1")
	rep, err := p.Attest(e, nonce)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("wrong measurement", func(t *testing.T) {
		var wrong [32]byte
		if _, err := rep.Verify(p.AttestationPublicKey(), wrong, nonce); err == nil {
			t.Fatal("verified against wrong measurement")
		}
	})
	t.Run("wrong nonce (replay)", func(t *testing.T) {
		if _, err := rep.Verify(p.AttestationPublicKey(), e.Measurement(), []byte("nonce-2")); err == nil {
			t.Fatal("verified with replayed nonce")
		}
	})
	t.Run("forged signature", func(t *testing.T) {
		forged := rep
		forged.Signature = append([]byte(nil), rep.Signature...)
		forged.Signature[4] ^= 0xFF
		if _, err := forged.Verify(p.AttestationPublicKey(), e.Measurement(), nonce); err == nil {
			t.Fatal("verified forged signature")
		}
	})
	t.Run("wrong authority", func(t *testing.T) {
		p2, err := NewPlatform()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := rep.Verify(p2.AttestationPublicKey(), e.Measurement(), nonce); err == nil {
			t.Fatal("verified against wrong authority")
		}
	})
	t.Run("swapped key", func(t *testing.T) {
		other, err := New(Config{}, p)
		if err != nil {
			t.Fatal(err)
		}
		rep2, err := p.Attest(other, nonce)
		if err != nil {
			t.Fatal(err)
		}
		spliced := rep
		spliced.PubKeyDER = rep2.PubKeyDER
		if _, err := spliced.Verify(p.AttestationPublicKey(), e.Measurement(), nonce); err == nil {
			t.Fatal("verified report with substituted public key")
		}
	})
}

func TestMemoryAccounting(t *testing.T) {
	p, _ := fixtures(t)
	e, err := New(Config{MemoryLimitBytes: 100, RSABits: 2048}, p)
	if err != nil {
		t.Fatal(err)
	}
	e.Alloc(60)
	e.Alloc(30)
	st := e.Stats()
	if st.MemoryUsedBytes != 90 || st.PageEvents != 0 {
		t.Fatalf("stats = %+v, want used 90, no paging", st)
	}
	e.Alloc(30) // crosses the limit
	if st := e.Stats(); st.PageEvents != 1 {
		t.Fatalf("page events = %d, want 1", st.PageEvents)
	}
	e.Free(120)
	if st := e.Stats(); st.MemoryUsedBytes != 0 {
		t.Fatalf("used = %d after freeing everything", st.MemoryUsedBytes)
	}
	e.Free(10)
	if st := e.Stats(); st.MemoryUsedBytes != 0 {
		t.Fatalf("used went negative: %+v", st)
	}
	if st := e.Stats(); st.MemoryPeakBytes != 120 {
		t.Fatalf("peak = %d, want 120", st.MemoryPeakBytes)
	}
}

func TestConstantProcessingGate(t *testing.T) {
	p, _ := fixtures(t)
	const gate = 30 * time.Millisecond
	e, err := New(Config{ConstantProcessing: gate}, p)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := e.Process(func() error { return nil }); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < gate {
		t.Fatalf("fast path took %v, want >= %v (timing leak)", elapsed, gate)
	}
	// Errors must still propagate through the gate.
	wantErr := errors.New("inner failure")
	if err := e.Process(func() error { return wantErr }); !errors.Is(err, wantErr) {
		t.Fatalf("Process swallowed error: %v", err)
	}
}

// Property: Encrypt/Decrypt round-trips arbitrary payloads.
func TestQuickEncryptRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("RSA operations in -short mode")
	}
	_, e := fixtures(t)
	f := func(msg []byte) bool {
		ct, err := Encrypt(e.PublicKey(), msg)
		if err != nil {
			return false
		}
		pt, err := e.Decrypt(ct)
		if err != nil {
			return false
		}
		return bytes.Equal(pt, msg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestSealIsRandomised(t *testing.T) {
	_, e := fixtures(t)
	data := make([]byte, 64)
	if _, err := rand.Read(data); err != nil {
		t.Fatal(err)
	}
	a, err := e.Seal(data)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Seal(data)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a, b) {
		t.Fatal("sealing is deterministic (nonce reuse)")
	}
}

// TestSealLabeledDomainSeparation: material sealed for one purpose (or
// one shard) must not open under another label, nor under the base key —
// the per-shard key separation the sharded proxy's durable state uses.
func TestSealLabeledDomainSeparation(t *testing.T) {
	_, e := fixtures(t)
	blob, err := e.SealLabeled("mixnn/shard/0", []byte("layer lists"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.UnsealLabeled("mixnn/shard/0", blob)
	if err != nil {
		t.Fatalf("matching label failed to unseal: %v", err)
	}
	if !bytes.Equal(got, []byte("layer lists")) {
		t.Fatal("labeled round trip mismatch")
	}
	if _, err := e.UnsealLabeled("mixnn/shard/1", blob); err == nil {
		t.Fatal("blob for shard 0 opened under shard 1's key")
	}
	if _, err := e.Unseal(blob); err == nil {
		t.Fatal("labeled blob opened under the base sealing key")
	}
	base, err := e.Seal([]byte("base"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.UnsealLabeled("mixnn/shard/0", base); err == nil {
		t.Fatal("base blob opened under a shard label")
	}
}

// TestSealSurvivesPlatformRestart: a platform rebuilt with the SAME fuse
// secret (a host restart — fuses are permanent) must unseal blobs a
// previous enclave incarnation of the same identity sealed, including
// labeled ones; a different identity still must not.
func TestSealSurvivesPlatformRestart(t *testing.T) {
	var fuse [32]byte
	if _, err := rand.Read(fuse[:]); err != nil {
		t.Fatal(err)
	}
	p1, err := NewPlatformWithFuse(fuse)
	if err != nil {
		t.Fatal(err)
	}
	e1, err := New(Config{CodeIdentity: "restartable", RSABits: 1024}, p1)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := e1.SealLabeled("mixnn/sharded-state/v1", []byte("round in flight"))
	if err != nil {
		t.Fatal(err)
	}

	p2, err := NewPlatformWithFuse(fuse)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := New(Config{CodeIdentity: "restartable", RSABits: 1024}, p2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := e2.UnsealLabeled("mixnn/sharded-state/v1", blob)
	if err != nil {
		t.Fatalf("restarted enclave failed to unseal: %v", err)
	}
	if !bytes.Equal(got, []byte("round in flight")) {
		t.Fatal("restart round trip mismatch")
	}

	other, err := New(Config{CodeIdentity: "different-build", RSABits: 1024}, p2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := other.UnsealLabeled("mixnn/sharded-state/v1", blob); err == nil {
		t.Fatal("different identity unsealed across restart")
	}
}
