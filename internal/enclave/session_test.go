package enclave

import (
	"bytes"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"sync"
	"testing"
)

var (
	sessFixOnce sync.Once
	sessFixEncl *Enclave
)

// sessionFixture shares one small-key enclave across the session tests
// (RSA keygen dominates otherwise).
func sessionFixture(t testing.TB) *Enclave {
	t.Helper()
	sessFixOnce.Do(func() {
		platform, err := NewPlatform()
		if err != nil {
			panic(err)
		}
		if sessFixEncl, err = New(Config{RSABits: 1024}, platform); err != nil {
			panic(err)
		}
	})
	return sessFixEncl
}

func TestSessionRoundTripAndLegacyInterleave(t *testing.T) {
	e := sessionFixture(t)
	e.ResetSessions()
	before := e.Stats() // lifetime counters persist across the shared fixture
	sess, err := NewSession(e.PublicKey())
	if err != nil {
		t.Fatal(err)
	}
	msgs := [][]byte{[]byte("establish payload"), []byte("second"), []byte("third")}
	for i, msg := range msgs {
		ct, err := sess.Wrap(msg)
		if err != nil {
			t.Fatalf("wrap %d: %v", i, err)
		}
		// Legacy traffic interleaves freely with session traffic.
		legacy, err := Encrypt(e.PublicKey(), msg)
		if err != nil {
			t.Fatal(err)
		}
		for _, body := range [][]byte{ct, legacy} {
			plain, err := e.Decrypt(body)
			if err != nil {
				t.Fatalf("decrypt %d: %v", i, err)
			}
			if !bytes.Equal(plain, msg) {
				t.Fatalf("decrypt %d: plaintext mismatch", i)
			}
		}
	}
	st := e.Stats()
	if est := st.SessionsEstablished - before.SessionsEstablished; st.SessionsActive != 1 || est != 1 {
		t.Fatalf("active/established = %d/%d, want 1/1", st.SessionsActive, est)
	}
	if hits := st.SessionHits - before.SessionHits; hits != 2 {
		t.Fatalf("hits = %d, want 2", hits)
	}
}

func TestSessionUnknownAndReplay(t *testing.T) {
	e := sessionFixture(t)
	e.ResetSessions()
	before := e.Stats()
	sess, err := NewSession(e.PublicKey())
	if err != nil {
		t.Fatal(err)
	}
	est, _ := sess.Wrap([]byte("first"))
	data, _ := sess.Wrap([]byte("second"))

	// Data before establish: the enclave has never seen the session.
	if _, err := e.Decrypt(data); !errors.Is(err, ErrSessionUnknown) {
		t.Fatalf("pre-establish data: got %v, want ErrSessionUnknown", err)
	}
	if _, err := e.Decrypt(est); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Decrypt(data); err != nil {
		t.Fatal(err)
	}
	// Counter reuse: the identical ciphertext must be rejected as a
	// replay, not re-ingested.
	if _, err := e.Decrypt(data); !errors.Is(err, ErrSessionReplay) {
		t.Fatalf("replay: got %v, want ErrSessionReplay", err)
	}
	// A restart (volatile session loss) turns data traffic into the
	// typed unknown-session rejection that drives re-establishment.
	e.ResetSessions()
	if _, err := e.Decrypt(data); !errors.Is(err, ErrSessionUnknown) {
		t.Fatalf("post-reset data: got %v, want ErrSessionUnknown", err)
	}
	st := e.Stats()
	replays, misses := st.SessionReplays-before.SessionReplays, st.SessionMisses-before.SessionMisses
	if replays != 1 || misses != 2 {
		t.Fatalf("replays/misses = %d/%d, want 1/2", replays, misses)
	}
}

func TestSessionReorderWindow(t *testing.T) {
	e := sessionFixture(t)
	e.ResetSessions()
	sess, err := NewSession(e.PublicKey())
	if err != nil {
		t.Fatal(err)
	}
	cts := make([][]byte, 80)
	for i := range cts {
		if cts[i], err = sess.Wrap([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.Decrypt(cts[0]); err != nil { // establish
		t.Fatal(err)
	}
	// Jump ahead: counter 70 admitted first, then modest reordering
	// within the 64-counter window is admitted exactly once each.
	if _, err := e.Decrypt(cts[70]); err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{69, 10, 42} {
		if _, err := e.Decrypt(cts[i]); err != nil {
			t.Fatalf("reordered counter %d: %v", i, err)
		}
		if _, err := e.Decrypt(cts[i]); !errors.Is(err, ErrSessionReplay) {
			t.Fatalf("re-admitted counter %d: %v", i, err)
		}
	}
	// Counter 5 fell 65 behind the high-watermark: outside the window.
	if _, err := e.Decrypt(cts[5]); !errors.Is(err, ErrSessionReplay) {
		t.Fatalf("stale counter: got %v, want ErrSessionReplay", err)
	}
}

func TestSessionCacheEvictionAndEPCAccounting(t *testing.T) {
	platform, err := NewPlatform()
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(Config{RSABits: 1024, SessionCacheEntries: 2}, platform)
	if err != nil {
		t.Fatal(err)
	}
	sessions := make([]*Session, 3)
	data := make([][]byte, 3)
	for i := range sessions {
		if sessions[i], err = NewSession(e.PublicKey()); err != nil {
			t.Fatal(err)
		}
		est, _ := sessions[i].Wrap([]byte("hello"))
		if data[i], err = sessions[i].Wrap([]byte("steady")); err != nil {
			t.Fatal(err)
		}
		if _, err := e.Decrypt(est); err != nil {
			t.Fatal(err)
		}
	}
	// Session 0 was evicted by the third establish; 1 and 2 survive.
	if _, err := e.Decrypt(data[0]); !errors.Is(err, ErrSessionUnknown) {
		t.Fatalf("evicted session: got %v, want ErrSessionUnknown", err)
	}
	for i := 1; i < 3; i++ {
		if _, err := e.Decrypt(data[i]); err != nil {
			t.Fatalf("surviving session %d: %v", i, err)
		}
	}
	st := e.Stats()
	if st.SessionsActive != 2 || st.SessionEvictions != 1 {
		t.Fatalf("active/evictions = %d/%d, want 2/1", st.SessionsActive, st.SessionEvictions)
	}
	if want := 2 * sessionEPCBytes; st.MemoryUsedBytes != want {
		t.Fatalf("EPC accounted %d bytes, want %d", st.MemoryUsedBytes, want)
	}
	e.ResetSessions()
	if st := e.Stats(); st.MemoryUsedBytes != 0 || st.SessionsActive != 0 {
		t.Fatalf("after reset: used/active = %d/%d, want 0/0", st.MemoryUsedBytes, st.SessionsActive)
	}
}

func TestSessionCrossSessionSplice(t *testing.T) {
	e := sessionFixture(t)
	e.ResetSessions()
	a, _ := NewSession(e.PublicKey())
	b, _ := NewSession(e.PublicKey())
	for _, s := range []*Session{a, b} {
		est, _ := s.Wrap([]byte("hi"))
		if _, err := e.Decrypt(est); err != nil {
			t.Fatal(err)
		}
	}
	ctA, _ := a.Wrap([]byte("payload"))
	before := e.Stats()
	// Graft session B's id onto A's data message: the header is bound
	// as AAD, so the splice must fail authentication, not decrypt under
	// B's key or perturb B's replay window.
	spliced := append([]byte(nil), ctA...)
	copy(spliced[5:5+sessionIDSize], b.sid[:])
	if _, err := e.Decrypt(spliced); !errors.Is(err, ErrCiphertext) {
		t.Fatalf("spliced sid: got %v, want ErrCiphertext", err)
	}
	if st := e.Stats(); st.SessionReplays != before.SessionReplays {
		t.Fatal("splice perturbed replay state")
	}
}

func TestSessionWrapAllocations(t *testing.T) {
	e := sessionFixture(t)
	sess, err := NewSession(e.PublicKey())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Wrap(make([]byte, 64)); err != nil { // consume the establish
		t.Fatal(err)
	}
	payload := make([]byte, 4096)
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := sess.Wrap(payload); err != nil {
			t.Fatal(err)
		}
	})
	// One exact-size output buffer per wrap; the cipher and GCM
	// instances are reused across the session.
	if allocs > 2 {
		t.Fatalf("Wrap allocates %.1f times per update, want <= 2", allocs)
	}
}

// FuzzSessionCiphertext drives garbage at the session ciphertext parser:
// truncations, flipped version/sid/counter bytes, cross-session splices
// and counter reuse must all reject cleanly — never panic, and never
// silently ingest. The iteration re-arms a fixed session state so the
// invariant is exact: only a byte-identical replay of the establish
// message may succeed (re-establishment is idempotent by design).
func FuzzSessionCiphertext(f *testing.F) {
	e := sessionFixture(f)
	sess, err := NewSession(e.PublicKey())
	if err != nil {
		f.Fatal(err)
	}
	est, err := sess.Wrap([]byte("establish payload"))
	if err != nil {
		f.Fatal(err)
	}
	consumed, err := sess.Wrap([]byte("consumed data payload"))
	if err != nil {
		f.Fatal(err)
	}

	f.Add([]byte{})
	f.Add(append([]byte(nil), est...))
	f.Add(append([]byte(nil), consumed...))
	f.Add(est[:establishHeaderSize])
	f.Add(consumed[:dataHeaderSize])
	f.Add(consumed[:len(consumed)-1])
	flipVer := append([]byte(nil), consumed...)
	flipVer[4] ^= 0xff
	f.Add(flipVer)
	flipSid := append([]byte(nil), consumed...)
	flipSid[7] ^= 0x01
	f.Add(flipSid)
	flipCtr := append([]byte(nil), consumed...)
	binary.LittleEndian.PutUint64(flipCtr[dataHeaderSize-8:], 99)
	f.Add(flipCtr)
	unknown := append([]byte(nil), consumed...)
	if _, err := rand.Read(unknown[5 : 5+sessionIDSize]); err != nil {
		f.Fatal(err)
	}
	f.Add(unknown)
	zeroCtr := append([]byte(nil), consumed...)
	binary.LittleEndian.PutUint64(zeroCtr[dataHeaderSize-8:], 0)
	f.Add(zeroCtr)

	f.Fuzz(func(t *testing.T, body []byte) {
		// Re-arm: session installed, counter 1 consumed. Every valid
		// ciphertext the corpus can replay is therefore already spent.
		e.ResetSessions()
		if _, err := e.Decrypt(est); err != nil {
			t.Fatal(err)
		}
		if _, err := e.Decrypt(consumed); err != nil {
			t.Fatal(err)
		}
		plain, err := e.Decrypt(body)
		if err == nil && !bytes.Equal(body, est) {
			t.Fatalf("forged/replayed session ciphertext accepted (%d bytes, plaintext %q)", len(body), plain)
		}
		if err != nil && !errors.Is(err, ErrCiphertext) &&
			!errors.Is(err, ErrSessionUnknown) && !errors.Is(err, ErrSessionReplay) {
			t.Fatalf("rejection outside the error taxonomy: %v", err)
		}
	})
}
