// Package enclave is a behavioural simulation of the Intel SGX enclave
// that hosts the MixNN proxy (paper §2.5, §4.3).
//
// What is real: all cryptography. Participants encrypt updates with the
// enclave's RSA-2048 public key (OAEP key wrap around AES-256-GCM);
// attestation reports bind a SHA-256 measurement of the enclave's code
// identity and are signed by a (simulated) attestation authority with
// ECDSA P-256; sealing uses AES-GCM under a key derived from a simulated
// CPU fuse secret and the measurement, so blobs sealed by one enclave
// identity cannot be unsealed by another.
//
// What is simulated: the hardware resource envelope. The enclave tracks
// EPC usage against the 96 MiB usable limit the paper cites and counts
// paging events when the working set exceeds it, and it offers a
// constant-duration processing gate that models the side-channel hardening
// of §4.3 (every update takes the same wall-clock time to process).
package enclave

import (
	"container/list"
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"crypto/rsa"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"
)

// UsableEPCBytes is the usable enclave page cache cited by the paper:
// "only 96 MB out of the 128 reserved for the enclave can be used".
const UsableEPCBytes = 96 << 20

// Config parameterises a simulated enclave.
type Config struct {
	// CodeIdentity stands in for the enclave build being measured;
	// the measurement is SHA-256 of this string.
	CodeIdentity string
	// MemoryLimitBytes is the usable EPC size (default UsableEPCBytes).
	MemoryLimitBytes int
	// RSABits sizes the enclave key pair (default 2048).
	RSABits int
	// ConstantProcessing, when positive, makes every Process call take at
	// least this long (side-channel hardening, §4.3).
	ConstantProcessing time.Duration
	// SessionCacheEntries bounds the crypto session cache (default
	// DefaultSessionCacheEntries). Each cached session is EPC-accounted
	// at one page; the LRU evicts beyond the bound and evicted senders
	// re-establish on the typed session-unknown rejection.
	SessionCacheEntries int
}

func (c *Config) fillDefaults() {
	if c.CodeIdentity == "" {
		c.CodeIdentity = "mixnn-proxy-v1"
	}
	if c.MemoryLimitBytes == 0 {
		c.MemoryLimitBytes = UsableEPCBytes
	}
	if c.RSABits == 0 {
		c.RSABits = 2048
	}
	if c.SessionCacheEntries == 0 {
		c.SessionCacheEntries = DefaultSessionCacheEntries
	}
}

// Stats reports the enclave's simulated resource state.
type Stats struct {
	MemoryUsedBytes  int
	MemoryPeakBytes  int
	MemoryLimitBytes int
	// PageEvents counts Alloc calls that pushed usage past the EPC limit;
	// on real SGX each would trigger costly EWB/ELDU paging.
	PageEvents int
	// SessionsActive is the current crypto session cache population;
	// the counters below run over the enclave's lifetime. A miss is a
	// data message for a session the cache no longer holds (the sender
	// re-establishes); a replay is an already-admitted counter.
	SessionsActive      int
	SessionsEstablished uint64
	SessionHits         uint64
	SessionMisses       uint64
	SessionEvictions    uint64
	SessionReplays      uint64
}

// Enclave is a simulated SGX enclave instance.
type Enclave struct {
	cfg         Config
	priv        *rsa.PrivateKey
	measurement [32]byte
	sealKey     [32]byte

	mu       sync.Mutex
	memUsed  int
	memPeak  int
	pageEvts int
	// sessions is the bounded LRU of receiver-side crypto sessions (see
	// session.go); sessLRU orders it most-recently-used first.
	sessions        map[[sessionIDSize]byte]*sessionState
	sessLRU         *list.List
	sessEstablished uint64
	sessHits        uint64
	sessMisses      uint64
	sessEvicts      uint64
	sessReplays     uint64
}

// New creates an enclave: generates its key pair, computes its measurement
// and derives its sealing key from the platform's fuse secret.
func New(cfg Config, platform *Platform) (*Enclave, error) {
	cfg.fillDefaults()
	priv, err := rsa.GenerateKey(rand.Reader, cfg.RSABits)
	if err != nil {
		return nil, fmt.Errorf("enclave: generate key pair: %w", err)
	}
	e := &Enclave{
		cfg:      cfg,
		priv:     priv,
		sessions: make(map[[sessionIDSize]byte]*sessionState),
		sessLRU:  list.New(),
	}
	e.measurement = sha256.Sum256([]byte(cfg.CodeIdentity))
	// Sealing key = H(fuse secret || measurement): per-platform and
	// per-identity, like SGX's MRENCLAVE-bound sealing.
	h := sha256.New()
	h.Write(platform.fuseSecret[:])
	h.Write(e.measurement[:])
	copy(e.sealKey[:], h.Sum(nil))
	return e, nil
}

// Measurement returns the enclave's code measurement (MRENCLAVE analogue).
func (e *Enclave) Measurement() [32]byte { return e.measurement }

// PublicKey returns the enclave's encryption public key (k_pub in the
// paper); participants encrypt their parameter updates with it.
func (e *Enclave) PublicKey() *rsa.PublicKey { return &e.priv.PublicKey }

// hybrid ciphertext layout:
//
//	u16 wrappedKeyLen | wrappedKey | 12-byte nonce | AES-256-GCM ciphertext
const gcmNonceSize = 12

// Encrypt encrypts plaintext for the enclave holding pub: a fresh AES-256
// key wrapped with RSA-OAEP(SHA-256) followed by the GCM payload. This is
// what participants (and tests) call client-side.
func Encrypt(pub *rsa.PublicKey, plaintext []byte) ([]byte, error) {
	key := make([]byte, 32)
	if _, err := rand.Read(key); err != nil {
		return nil, fmt.Errorf("enclave: draw session key: %w", err)
	}
	wrapped, err := rsa.EncryptOAEP(sha256.New(), rand.Reader, pub, key, nil)
	if err != nil {
		return nil, fmt.Errorf("enclave: wrap session key: %w", err)
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("enclave: session cipher: %w", err)
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("enclave: gcm: %w", err)
	}
	nonce := make([]byte, gcmNonceSize)
	if _, err := rand.Read(nonce); err != nil {
		return nil, fmt.Errorf("enclave: draw nonce: %w", err)
	}
	out := make([]byte, 2, 2+len(wrapped)+gcmNonceSize+len(plaintext)+gcm.Overhead())
	binary.LittleEndian.PutUint16(out, uint16(len(wrapped)))
	out = append(out, wrapped...)
	out = append(out, nonce...)
	out = gcm.Seal(out, nonce, plaintext, nil)
	return out, nil
}

// ErrCiphertext is returned for malformed or tampered ciphertexts.
var ErrCiphertext = errors.New("enclave: invalid ciphertext")

// Decrypt opens a ciphertext inside the enclave: a session establish
// or data message when the body carries the session magic (see
// session.go), the legacy hybrid format otherwise. Legacy and session
// traffic interleave freely on one enclave.
func (e *Enclave) Decrypt(ciphertext []byte) ([]byte, error) {
	if len(ciphertext) >= 4 {
		switch string(ciphertext[:4]) {
		case sessionMagicEstablish:
			return e.decryptEstablish(ciphertext)
		case sessionMagicData:
			return e.decryptData(ciphertext)
		}
	}
	if len(ciphertext) < 2 {
		return nil, fmt.Errorf("%w: too short", ErrCiphertext)
	}
	wlen := int(binary.LittleEndian.Uint16(ciphertext))
	rest := ciphertext[2:]
	if len(rest) < wlen+gcmNonceSize {
		return nil, fmt.Errorf("%w: truncated header", ErrCiphertext)
	}
	key, err := rsa.DecryptOAEP(sha256.New(), nil, e.priv, rest[:wlen], nil)
	if err != nil {
		return nil, fmt.Errorf("%w: key unwrap failed", ErrCiphertext)
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("%w: session cipher", ErrCiphertext)
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("%w: gcm", ErrCiphertext)
	}
	nonce := rest[wlen : wlen+gcmNonceSize]
	plain, err := gcm.Open(nil, nonce, rest[wlen+gcmNonceSize:], nil)
	if err != nil {
		return nil, fmt.Errorf("%w: authentication failed", ErrCiphertext)
	}
	return plain, nil
}

// sealKeyFor derives the sealing key for a purpose label. The empty
// label is the base identity-bound key; any other label yields
// H(sealKey || label), so material sealed for one purpose (or one shard)
// cannot be presented as another — per-shard key separation for the
// sharded proxy's durable state.
func (e *Enclave) sealKeyFor(label string) []byte {
	if label == "" {
		return e.sealKey[:]
	}
	h := sha256.New()
	h.Write(e.sealKey[:])
	h.Write([]byte(label))
	return h.Sum(nil)
}

// Seal encrypts data under the enclave's identity-bound sealing key so it
// can persist outside trusted memory (paper §2.5).
func (e *Enclave) Seal(data []byte) ([]byte, error) {
	return e.SealLabeled("", data)
}

// SealLabeled seals data under a purpose-derived key (see sealKeyFor).
// SealLabeled("", data) is identical to Seal(data).
func (e *Enclave) SealLabeled(label string, data []byte) ([]byte, error) {
	block, err := aes.NewCipher(e.sealKeyFor(label))
	if err != nil {
		return nil, fmt.Errorf("enclave: seal cipher: %w", err)
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("enclave: seal gcm: %w", err)
	}
	nonce := make([]byte, gcmNonceSize)
	if _, err := rand.Read(nonce); err != nil {
		return nil, fmt.Errorf("enclave: seal nonce: %w", err)
	}
	return gcm.Seal(nonce, nonce, data, e.measurement[:]), nil
}

// Unseal decrypts a blob produced by Seal on the same platform and
// enclave identity.
func (e *Enclave) Unseal(blob []byte) ([]byte, error) {
	return e.UnsealLabeled("", blob)
}

// UnsealLabeled decrypts a blob produced by SealLabeled with the same
// label on the same platform and enclave identity.
func (e *Enclave) UnsealLabeled(label string, blob []byte) ([]byte, error) {
	if len(blob) < gcmNonceSize {
		return nil, fmt.Errorf("%w: sealed blob too short", ErrCiphertext)
	}
	block, err := aes.NewCipher(e.sealKeyFor(label))
	if err != nil {
		return nil, fmt.Errorf("enclave: unseal cipher: %w", err)
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("enclave: unseal gcm: %w", err)
	}
	plain, err := gcm.Open(nil, blob[:gcmNonceSize], blob[gcmNonceSize:], e.measurement[:])
	if err != nil {
		return nil, fmt.Errorf("%w: unseal authentication failed", ErrCiphertext)
	}
	return plain, nil
}

// Alloc records n bytes of enclave memory use; crossing the EPC limit is
// counted as a paging event (the expensive case the paper sizes k against).
func (e *Enclave) Alloc(n int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.allocLocked(n)
}

func (e *Enclave) allocLocked(n int) {
	e.memUsed += n
	if e.memUsed > e.memPeak {
		e.memPeak = e.memUsed
	}
	if e.memUsed > e.cfg.MemoryLimitBytes {
		e.pageEvts++
	}
}

// Free releases n bytes of enclave memory.
func (e *Enclave) Free(n int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.freeLocked(n)
}

func (e *Enclave) freeLocked(n int) {
	e.memUsed -= n
	if e.memUsed < 0 {
		e.memUsed = 0
	}
}

// Stats returns the simulated resource counters.
func (e *Enclave) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return Stats{
		MemoryUsedBytes:     e.memUsed,
		MemoryPeakBytes:     e.memPeak,
		MemoryLimitBytes:    e.cfg.MemoryLimitBytes,
		PageEvents:          e.pageEvts,
		SessionsActive:      len(e.sessions),
		SessionsEstablished: e.sessEstablished,
		SessionHits:         e.sessHits,
		SessionMisses:       e.sessMisses,
		SessionEvictions:    e.sessEvicts,
		SessionReplays:      e.sessReplays,
	}
}

// Process runs fn and then, if ConstantProcessing is configured, blocks
// until the constant duration has elapsed, so processing time does not leak
// information about the update (§4.3: "the cost to process an update is
// constantly the same").
func (e *Enclave) Process(fn func() error) error {
	start := time.Now()
	err := fn()
	if d := e.cfg.ConstantProcessing; d > 0 {
		if rem := d - time.Since(start); rem > 0 {
			time.Sleep(rem)
		}
	}
	return err
}
