package enclave

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestObliviousStoreRoundTrip(t *testing.T) {
	s, err := NewObliviousStore(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte("abcdefgh")
	if err := s.Put(2, want); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("Get = %q, want %q", got, want)
	}
	// Other slots untouched.
	for _, idx := range []int{0, 1, 3} {
		v, err := s.Get(idx)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(v, make([]byte, 8)) {
			t.Fatalf("slot %d corrupted: %q", idx, v)
		}
	}
	if s.Accesses() != 5 {
		t.Fatalf("accesses = %d, want 5", s.Accesses())
	}
}

func TestObliviousStoreOverwrite(t *testing.T) {
	s, err := NewObliviousStore(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(1, []byte("aaaa")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(1, []byte("bbbb")); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(1)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "bbbb" {
		t.Fatalf("overwrite failed: %q", got)
	}
}

func TestObliviousStoreErrors(t *testing.T) {
	if _, err := NewObliviousStore(0, 4); err == nil {
		t.Fatal("zero slots accepted")
	}
	if _, err := NewObliviousStore(4, 0); err == nil {
		t.Fatal("zero slot size accepted")
	}
	s, err := NewObliviousStore(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(5, []byte("aaaa")); err == nil {
		t.Fatal("out-of-range Put accepted")
	}
	if err := s.Put(0, []byte("too long data")); err == nil {
		t.Fatal("wrong-size Put accepted")
	}
	if _, err := s.Get(-1); err == nil {
		t.Fatal("negative Get accepted")
	}
}

// Property: a sequence of Puts followed by Gets behaves like a plain array.
func TestQuickObliviousStoreSemantics(t *testing.T) {
	f := func(ops []uint16, payloads []byte) bool {
		const n, size = 8, 4
		s, err := NewObliviousStore(n, size)
		if err != nil {
			return false
		}
		shadow := make([][]byte, n)
		for i := range shadow {
			shadow[i] = make([]byte, size)
		}
		for k, op := range ops {
			idx := int(op) % n
			var payload [size]byte
			for b := 0; b < size; b++ {
				if len(payloads) > 0 {
					payload[b] = payloads[(k+b)%len(payloads)]
				}
			}
			if err := s.Put(idx, payload[:]); err != nil {
				return false
			}
			copy(shadow[idx], payload[:])
		}
		for i := 0; i < n; i++ {
			got, err := s.Get(i)
			if err != nil {
				return false
			}
			if !bytes.Equal(got, shadow[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
