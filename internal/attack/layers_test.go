package attack

import (
	"testing"

	"mixnn/internal/fl"
	"mixnn/internal/nn"
)

func TestLayerLeakageOnClassicFL(t *testing.T) {
	src := &gaussSource{participants: 10, perClient: 64}
	arch := nn.NewMLP("gauss", 8, []int{12}, 2)
	cfg := fl.Config{Rounds: 3, LocalEpochs: 2, BatchSize: 16, LearningRate: 0.01, Optimizer: "adam", Seed: 3}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	parts := src.Participants(11)
	clients := make([]*fl.Client, len(parts))
	attrs := make([]int, len(parts))
	for i, p := range parts {
		clients[i] = fl.NewClient(p, arch, cfg)
		attrs[i] = p.Attribute
	}
	server := fl.NewServer(arch.New(1000).SnapshotParams())
	sim := fl.NewSimulation(server, clients, fl.Identity{}, 5)

	adv, err := New(Config{
		Arch: arch, Source: src, AuxPerClass: 96,
		Epochs: 3, BatchSize: 16, LearningRate: 0.01,
		Active: true, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	obs := NewLayerObserver(adv)
	sim.Observer = obs
	sim.Disseminate = adv.Disseminator()

	if _, err := sim.Run(3); err != nil {
		t.Fatal(err)
	}

	names := obs.LayerNames()
	if len(names) != 2 { // fc1, fc2 of the MLP
		t.Fatalf("layer names = %v, want 2 layers", names)
	}
	perLayer, err := obs.LayerAccuracy(attrs)
	if err != nil {
		t.Fatal(err)
	}
	if len(perLayer) != len(names) {
		t.Fatalf("per-layer accuracies = %d, want %d", len(perLayer), len(names))
	}
	// On this separable task at least one layer must individually leak
	// far above chance — that is exactly why whole-layer routing without
	// mixing would not protect anything.
	best := 0.0
	for _, a := range perLayer {
		if a > best {
			best = a
		}
	}
	if best < 0.8 {
		t.Fatalf("max per-layer leakage %.3f, want >= 0.8 on classic FL", best)
	}

	whole, err := obs.Accuracy(attrs)
	if err != nil {
		t.Fatal(err)
	}
	if whole < 0.8 {
		t.Fatalf("whole-update accuracy %.3f, want >= 0.8", whole)
	}
}

func TestLayerAccuracyBeforeObservation(t *testing.T) {
	src := &gaussSource{participants: 2, perClient: 8}
	adv, err := New(Config{Arch: nn.NewMLP("g", 8, nil, 2), Source: src, AuxPerClass: 8, Epochs: 1})
	if err != nil {
		t.Fatal(err)
	}
	obs := NewLayerObserver(adv)
	if _, err := obs.LayerAccuracy([]int{0, 1}); err == nil {
		t.Fatal("LayerAccuracy before observation succeeded")
	}
}
