package attack

import (
	"fmt"

	"mixnn/internal/fl"
	"mixnn/internal/tensor"
)

// Per-layer leakage analysis: ∇Sim normally scores whole-update
// directions, but the MixNN design question is precisely how much each
// layer leaks on its own — mixing at layer granularity only helps if no
// single layer carries the whole footprint to the slot it lands in.
// LayerObserver accumulates per-layer cosine scores alongside the
// whole-update scores of NablaSim.
type LayerObserver struct {
	adv *NablaSim
	// layerScores[slotKey][layer][class]
	layerScores map[int][][]float64
	layerNames  []string
}

var _ fl.Observer = (*LayerObserver)(nil)

// NewLayerObserver wraps a ∇Sim adversary with per-layer accounting.
// Wire the LayerObserver (not the wrapped adversary) into the simulation.
func NewLayerObserver(adv *NablaSim) *LayerObserver {
	return &LayerObserver{adv: adv, layerScores: make(map[int][][]float64)}
}

// ObserveRound implements fl.Observer: it updates both the wrapped
// whole-update scores and the per-layer scores.
func (o *LayerObserver) ObserveRound(rec fl.RoundRecord) {
	o.adv.ObserveRound(rec)

	o.adv.mu.Lock()
	defer o.adv.mu.Unlock()
	refs := o.adv.refs
	if len(refs) == 0 {
		return
	}
	nLayers := refs[0].NumLayers()
	if o.layerNames == nil {
		for _, lp := range refs[0].Layers {
			o.layerNames = append(o.layerNames, lp.Name)
		}
	}

	// Per-class, per-layer reference directions.
	refDirs := make([][]*tensor.Tensor, len(refs))
	for c, ref := range refs {
		refDirs[c] = make([]*tensor.Tensor, nLayers)
		delta := ref.Clone().Sub(rec.Disseminated)
		for li := 0; li < nLayers; li++ {
			refDirs[c][li] = delta.FlattenLayer(li)
		}
	}
	for i, u := range rec.Updates {
		if !u.Compatible(rec.Disseminated) {
			continue
		}
		key := i
		if i < len(rec.ClientIDs) {
			key = rec.ClientIDs[i]
		}
		sc := o.layerScores[key]
		if sc == nil {
			sc = make([][]float64, nLayers)
			for li := range sc {
				sc[li] = make([]float64, len(refs))
			}
			o.layerScores[key] = sc
		}
		delta := u.Clone().Sub(rec.Disseminated)
		for li := 0; li < nLayers; li++ {
			dir := delta.FlattenLayer(li)
			for c := range refs {
				sc[li][c] += tensor.CosineSimilarity(dir, refDirs[c][li])
			}
		}
	}
}

// LayerNames returns the layer names in score order (nil before any
// observation).
func (o *LayerObserver) LayerNames() []string {
	o.adv.mu.Lock()
	defer o.adv.mu.Unlock()
	return append([]string(nil), o.layerNames...)
}

// LayerAccuracy returns, for each layer, the inference accuracy an
// adversary achieves using that layer's scores alone.
func (o *LayerObserver) LayerAccuracy(trueAttrs []int) ([]float64, error) {
	o.adv.mu.Lock()
	defer o.adv.mu.Unlock()
	if len(o.layerScores) == 0 {
		return nil, fmt.Errorf("attack: no rounds observed")
	}
	nLayers := len(o.layerNames)
	out := make([]float64, nLayers)
	for li := 0; li < nLayers; li++ {
		correct, total := 0, 0
		for key, sc := range o.layerScores {
			if key < 0 || key >= len(trueAttrs) {
				return nil, fmt.Errorf("attack: slot key %d outside population of %d", key, len(trueAttrs))
			}
			best, bestV := 0, sc[li][0]
			for c, v := range sc[li][1:] {
				if v > bestV {
					best, bestV = c+1, v
				}
			}
			total++
			if best == trueAttrs[key] {
				correct++
			}
		}
		out[li] = float64(correct) / float64(total)
	}
	return out, nil
}

// Accuracy proxies the wrapped adversary's whole-update accuracy.
func (o *LayerObserver) Accuracy(trueAttrs []int) (float64, error) {
	return o.adv.Accuracy(trueAttrs)
}
