// Package attack implements ∇Sim, the paper's §5 attribute-inference
// attack exploiting the privacy vulnerability of SGD: the gradient
// direction a participant returns is a fingerprint of its local data
// distribution, and therefore of its sensitive attribute.
//
// The adversary (the aggregation server) holds background knowledge: for
// each sensitive-attribute class it can draw auxiliary data from that
// class's distribution. Each round it trains one reference model per class
// starting from the disseminated model, and classifies every received
// update by the cosine similarity between the update's direction and each
// reference direction. Scores accumulate across rounds, amplifying the
// fingerprint.
//
// The attack is passive (observe the honest protocol) or active (§5: the
// malicious server disseminates the model "calculated for being
// equidistant from the models associated to the sensitive attributes",
// which maximises the separation of the returned directions).
package attack

import (
	"fmt"
	"math/rand"
	"sync"

	"mixnn/internal/data"
	"mixnn/internal/fl"
	"mixnn/internal/nn"
	"mixnn/internal/tensor"
)

// Config parameterises a ∇Sim adversary.
type Config struct {
	// Arch is the main-task architecture (the adversary knows it — it
	// defined the task).
	Arch nn.Arch
	// Source provides auxiliary data per attribute class.
	Source data.Source
	// AuxPerClass is the full background-knowledge pool per class.
	AuxPerClass int
	// BackgroundRatio is the fraction of the pool actually used (the
	// Figure 8 sweep). Zero means 1.0.
	BackgroundRatio float64
	// Epochs of local training for each reference model (the paper trains
	// attack models "for 5 learning rounds").
	Epochs int
	// BatchSize and LearningRate/Optimizer mirror the main task's
	// hyper-parameters.
	BatchSize    int
	LearningRate float64
	Optimizer    string
	// Active selects the active variant (malicious dissemination).
	Active bool
	// Seed drives auxiliary sampling.
	Seed int64
}

func (c *Config) fillDefaults() error {
	if c.Source == nil {
		return fmt.Errorf("attack: Config.Source is required")
	}
	if c.Arch.Build == nil {
		return fmt.Errorf("attack: Config.Arch is required")
	}
	if c.AuxPerClass <= 0 {
		c.AuxPerClass = 100
	}
	if c.BackgroundRatio == 0 {
		c.BackgroundRatio = 1
	}
	if c.BackgroundRatio < 0 || c.BackgroundRatio > 1 {
		return fmt.Errorf("attack: background ratio %g outside (0,1]", c.BackgroundRatio)
	}
	if c.Epochs <= 0 {
		c.Epochs = 5
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 32
	}
	if c.LearningRate == 0 {
		c.LearningRate = 0.001
	}
	if c.Optimizer == "" {
		c.Optimizer = "adam"
	}
	return nil
}

// NablaSim is the ∇Sim adversary. It implements fl.Observer; wire its
// Disseminator into the simulation for the active variant.
type NablaSim struct {
	cfg Config
	aux []data.Dataset // one background-knowledge dataset per attribute class
	net *nn.Network    // scratch network for reference training

	mu sync.Mutex
	// scores[slotKey][class] accumulates cosine similarity per observed
	// slot. Slots are keyed by the client ID the server attributes them
	// to (RoundRecord.ClientIDs) so the attack remains consistent when
	// the server samples a subset of clients each round; records without
	// IDs fall back to positional keys.
	scores    map[int][]float64
	refs      []nn.ParamSet // reference model parameters for the current round
	refsFor   nn.ParamSet   // disseminated model the refs were built from
	rounds    int
	craftSeed int64
}

var _ fl.Observer = (*NablaSim)(nil)

// New builds a ∇Sim adversary and materialises its background knowledge.
func New(cfg Config) (*NablaSim, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	a := &NablaSim{cfg: cfg, net: cfg.Arch.New(cfg.Seed ^ 0x5f5f5f)}
	n := int(float64(cfg.AuxPerClass)*cfg.BackgroundRatio + 0.5)
	if n < 1 {
		n = 1
	}
	for attr := 0; attr < cfg.Source.AttrClasses(); attr++ {
		a.aux = append(a.aux, cfg.Source.Auxiliary(attr, n, cfg.Seed+int64(attr)*17))
	}
	return a, nil
}

// Classes returns the number of sensitive-attribute classes.
func (a *NablaSim) Classes() int { return len(a.aux) }

// Rounds returns how many rounds have been observed.
func (a *NablaSim) Rounds() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.rounds
}

// buildReferences trains one reference model per attribute class starting
// from the given model and returns their parameters. Deterministic given
// the adversary's seed and round counter.
func (a *NablaSim) buildReferences(from nn.ParamSet) ([]nn.ParamSet, error) {
	refs := make([]nn.ParamSet, len(a.aux))
	for attr, ds := range a.aux {
		if err := a.net.SetParams(from); err != nil {
			return nil, fmt.Errorf("attack: reference %d: %w", attr, err)
		}
		opt, err := nn.NewOptimizer(a.cfg.Optimizer, a.cfg.LearningRate)
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(a.cfg.Seed + int64(attr)*101 + a.craftSeed))
		for e := 0; e < a.cfg.Epochs; e++ {
			for _, idx := range ds.Batches(a.cfg.BatchSize, rng) {
				x, y := ds.Batch(idx)
				a.net.TrainBatch(x, y, opt)
			}
		}
		refs[attr] = a.net.SnapshotParams()
	}
	return refs, nil
}

// ensureReferences (re)builds the per-round reference models if the
// disseminated model changed since they were last built.
func (a *NablaSim) ensureReferences(disseminated nn.ParamSet) error {
	if len(a.refs) > 0 && a.refsFor.NumLayers() > 0 && a.refsFor.ApproxEqual(disseminated, 0) {
		return nil
	}
	refs, err := a.buildReferences(disseminated)
	if err != nil {
		return err
	}
	a.refs = refs
	a.refsFor = disseminated.Clone()
	return nil
}

// Disseminator returns the model-dissemination hook. In passive mode it is
// honest (identity). In active mode it returns the crafted model:
// the mean of the per-class reference models, which is equidistant from
// all of them, so each participant's local training pulls its update
// toward its own class's reference.
func (a *NablaSim) Disseminator() fl.Disseminator {
	return func(round int, global nn.ParamSet) nn.ParamSet {
		if !a.cfg.Active {
			return global
		}
		a.mu.Lock()
		defer a.mu.Unlock()
		a.craftSeed = int64(round)
		refs, err := a.buildReferences(global)
		if err != nil {
			// A crafting failure degrades the attack to passive; the
			// protocol must not break.
			return global
		}
		crafted, err := nn.Average(refs)
		if err != nil {
			return global
		}
		// Build the scoring references against the crafted model.
		a.refs = refs
		a.refsFor = crafted.Clone()
		return crafted
	}
}

// ObserveRound implements fl.Observer: scores every received update slot
// against the per-class reference directions.
func (a *NablaSim) ObserveRound(rec fl.RoundRecord) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if err := a.ensureReferences(rec.Disseminated); err != nil {
		return
	}
	if a.scores == nil {
		a.scores = make(map[int][]float64)
	}

	refDirs := make([]*tensor.Tensor, len(a.refs))
	for c, ref := range a.refs {
		refDirs[c] = ref.Clone().Sub(rec.Disseminated).Flatten()
	}
	for i, u := range rec.Updates {
		if !u.Compatible(rec.Disseminated) {
			continue
		}
		key := i
		if i < len(rec.ClientIDs) {
			key = rec.ClientIDs[i]
		}
		sc := a.scores[key]
		if sc == nil {
			sc = make([]float64, len(a.refs))
			a.scores[key] = sc
		}
		dir := u.Clone().Sub(rec.Disseminated).Flatten()
		for c, rd := range refDirs {
			sc[c] += tensor.CosineSimilarity(dir, rd)
		}
	}
	a.rounds++
}

// Predict returns the attribute class inferred for each observed slot key
// (argmax of the accumulated scores). With classic FL, slot key i is
// participant i; after MixNN the attribution is meaningless, which is the
// defence.
func (a *NablaSim) Predict() map[int]int {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[int]int, len(a.scores))
	for key, sc := range a.scores {
		best, bestV := 0, sc[0]
		for c, v := range sc[1:] {
			if v > bestV {
				best, bestV = c+1, v
			}
		}
		out[key] = best
	}
	return out
}

// Accuracy returns the inference accuracy against the true attributes,
// indexed by client ID (the paper's Inference Accuracy). Only observed
// slots count.
func (a *NablaSim) Accuracy(trueAttrs []int) (float64, error) {
	pred := a.Predict()
	if len(pred) == 0 {
		return 0, fmt.Errorf("attack: no rounds observed")
	}
	correct, total := 0, 0
	for key, p := range pred {
		if key < 0 || key >= len(trueAttrs) {
			return 0, fmt.Errorf("attack: observed slot key %d outside population of %d", key, len(trueAttrs))
		}
		total++
		if p == trueAttrs[key] {
			correct++
		}
	}
	return float64(correct) / float64(total), nil
}

// Scores returns a copy of the accumulated score matrix keyed by slot.
func (a *NablaSim) Scores() map[int][]float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[int][]float64, len(a.scores))
	for key, sc := range a.scores {
		out[key] = append([]float64(nil), sc...)
	}
	return out
}
