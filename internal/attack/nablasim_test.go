package attack

import (
	"fmt"
	"math/rand"
	"testing"

	"mixnn/internal/core"
	"mixnn/internal/data"
	"mixnn/internal/fl"
	"mixnn/internal/nn"
	"mixnn/internal/privacy"
)

// gaussSource is a minimal data.Source for attack tests: 2 main classes as
// separated Gaussian blobs in 8-D, and a binary sensitive attribute that
// skews each participant's class mixture 85/15 — the same non-IID
// mechanism as the paper's preference groups, at unit-test scale.
type gaussSource struct {
	participants int
	perClient    int
}

var _ data.Source = (*gaussSource)(nil)

func (s *gaussSource) Name() string           { return "gauss" }
func (s *gaussSource) Input() (int, int, int) { return 1, 1, 8 }
func (s *gaussSource) Classes() int           { return 2 }
func (s *gaussSource) AttrClasses() int       { return 2 }
func (s *gaussSource) AttrName(a int) string  { return fmt.Sprintf("attr%d", a) }

func (s *gaussSource) sample(attr, n int, rng *rand.Rand) data.Dataset {
	ds := data.NewDataset(n, 8)
	for i := 0; i < n; i++ {
		y := attr
		if rng.Float64() < 0.15 {
			y = 1 - attr
		}
		ds.Y[i] = y
		center := -1.0
		if y == 1 {
			center = 1.0
		}
		for j := 0; j < 8; j++ {
			ds.X.Data()[i*8+j] = center + rng.NormFloat64()*0.7
		}
	}
	return ds
}

func (s *gaussSource) Participants(seed int64) []data.Participant {
	out := make([]data.Participant, s.participants)
	for id := range out {
		rng := rand.New(rand.NewSource(seed + int64(id)*131))
		attr := id % 2
		out[id] = data.Participant{
			ID:        id,
			Attribute: attr,
			Train:     s.sample(attr, s.perClient, rng),
			Test:      s.sample(attr, s.perClient/4, rng),
		}
	}
	return out
}

func (s *gaussSource) Auxiliary(attr, n int, seed int64) data.Dataset {
	rng := rand.New(rand.NewSource(seed ^ 0x77))
	return s.sample(attr, n, rng)
}

// Interface-compliance checks for the pipeline arms used below.
var (
	_ fl.UpdateTransform = core.Transform{}
	_ fl.UpdateTransform = core.StreamTransform{}
	_ fl.UpdateTransform = privacy.NoisyTransform{}
	_ fl.UpdateTransform = fl.Identity{}
)

// runAttack runs `rounds` federated rounds of the given arm under a ∇Sim
// adversary and returns the final inference accuracy.
func runAttack(t *testing.T, tr fl.UpdateTransform, active bool, rounds int) float64 {
	t.Helper()
	src := &gaussSource{participants: 10, perClient: 64}
	arch := nn.NewMLP("gauss", 8, []int{12}, 2)
	cfg := fl.Config{Rounds: rounds, LocalEpochs: 2, BatchSize: 16, LearningRate: 0.01, Optimizer: "adam", Seed: 3}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}

	parts := src.Participants(11)
	clients := make([]*fl.Client, len(parts))
	trueAttrs := make([]int, len(parts))
	for i, p := range parts {
		clients[i] = fl.NewClient(p, arch, cfg)
		trueAttrs[i] = p.Attribute
	}
	server := fl.NewServer(arch.New(1000).SnapshotParams())
	sim := fl.NewSimulation(server, clients, tr, 5)

	adv, err := New(Config{
		Arch:         arch,
		Source:       src,
		AuxPerClass:  96,
		Epochs:       3,
		BatchSize:    16,
		LearningRate: 0.01,
		Active:       active,
		Seed:         21,
	})
	if err != nil {
		t.Fatal(err)
	}
	sim.Observer = adv
	sim.Disseminate = adv.Disseminator()

	if _, err := sim.Run(rounds); err != nil {
		t.Fatal(err)
	}
	acc, err := adv.Accuracy(trueAttrs)
	if err != nil {
		t.Fatal(err)
	}
	return acc
}

func TestActiveAttackBreaksClassicFL(t *testing.T) {
	acc := runAttack(t, fl.Identity{}, true, 3)
	if acc < 0.9 {
		t.Fatalf("active ∇Sim accuracy on classic FL = %g, want >= 0.9", acc)
	}
}

func TestPassiveAttackBeatsChanceOnClassicFL(t *testing.T) {
	acc := runAttack(t, fl.Identity{}, false, 3)
	if acc < 0.7 {
		t.Fatalf("passive ∇Sim accuracy on classic FL = %g, want >= 0.7", acc)
	}
}

func TestMixNNDefeatsActiveAttack(t *testing.T) {
	acc := runAttack(t, core.Transform{}, true, 3)
	// 10 participants, binary attribute: random guessing gives ~0.5.
	if acc > 0.75 {
		t.Fatalf("active ∇Sim accuracy under MixNN = %g, want ~0.5 (chance)", acc)
	}
}

func TestMixNNStreamDefeatsActiveAttack(t *testing.T) {
	acc := runAttack(t, core.StreamTransform{K: 4}, true, 3)
	if acc > 0.75 {
		t.Fatalf("active ∇Sim accuracy under streaming MixNN = %g, want ~0.5", acc)
	}
}

func TestNoisyLeaksLessThanClassicFL(t *testing.T) {
	classic := runAttack(t, fl.Identity{}, true, 3)
	noisy := runAttack(t, privacy.NoisyTransform{Sigma: privacy.DefaultSigma}, true, 3)
	if noisy > classic {
		t.Fatalf("noisy arm leaks more than classic FL: %g > %g", noisy, classic)
	}
}

func TestConfigValidation(t *testing.T) {
	src := &gaussSource{participants: 2, perClient: 8}
	arch := nn.NewMLP("g", 8, nil, 2)
	tests := []struct {
		name    string
		cfg     Config
		wantErr bool
	}{
		{"valid", Config{Arch: arch, Source: src}, false},
		{"no source", Config{Arch: arch}, true},
		{"no arch", Config{Source: src}, true},
		{"bad ratio", Config{Arch: arch, Source: src, BackgroundRatio: 1.5}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := New(tt.cfg)
			if (err != nil) != tt.wantErr {
				t.Fatalf("New error = %v, wantErr = %v", err, tt.wantErr)
			}
		})
	}
}

func TestAccuracyErrors(t *testing.T) {
	src := &gaussSource{participants: 2, perClient: 8}
	adv, err := New(Config{Arch: nn.NewMLP("g", 8, nil, 2), Source: src, AuxPerClass: 8, Epochs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := adv.Accuracy([]int{0, 1}); err == nil {
		t.Fatal("Accuracy before any observation succeeded")
	}
}

func TestScoresAccumulateAcrossRounds(t *testing.T) {
	src := &gaussSource{participants: 4, perClient: 32}
	arch := nn.NewMLP("g", 8, []int{6}, 2)
	adv, err := New(Config{Arch: arch, Source: src, AuxPerClass: 32, Epochs: 1, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	global := arch.New(5).SnapshotParams()
	updates := make([]nn.ParamSet, 4)
	rng := rand.New(rand.NewSource(6))
	for i := range updates {
		u := global.Clone()
		for _, lp := range u.Layers {
			for _, tt := range lp.Tensors {
				d := tt.Data()
				for j := range d {
					d[j] += rng.NormFloat64() * 0.1
				}
			}
		}
		updates[i] = u
	}
	rec := fl.RoundRecord{Round: 0, Disseminated: global, Updates: updates}
	adv.ObserveRound(rec)
	s1 := adv.Scores()
	adv.ObserveRound(rec)
	s2 := adv.Scores()
	if adv.Rounds() != 2 {
		t.Fatalf("rounds = %d, want 2", adv.Rounds())
	}
	for i := range s1 {
		for c := range s1[i] {
			if s1[i][c] == 0 {
				continue
			}
			if s2[i][c] == s1[i][c] {
				t.Fatalf("score[%d][%d] did not accumulate", i, c)
			}
		}
	}
	if got := adv.Predict(); len(got) != 4 {
		t.Fatalf("predictions = %d, want 4", len(got))
	}
}

func TestScoresKeyedByClientID(t *testing.T) {
	src := &gaussSource{participants: 6, perClient: 32}
	arch := nn.NewMLP("g", 8, []int{6}, 2)
	adv, err := New(Config{Arch: arch, Source: src, AuxPerClass: 32, Epochs: 1, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	global := arch.New(5).SnapshotParams()
	mkUpdate := func(seed int64) nn.ParamSet {
		u := global.Clone()
		r := rand.New(rand.NewSource(seed))
		for _, lp := range u.Layers {
			for _, tt := range lp.Tensors {
				d := tt.Data()
				for j := range d {
					d[j] += r.NormFloat64() * 0.1
				}
			}
		}
		return u
	}

	// Two rounds with different sampled subsets: scores must accumulate
	// under the client IDs, not the slot positions.
	adv.ObserveRound(fl.RoundRecord{
		Round: 0, Disseminated: global,
		Updates: []nn.ParamSet{mkUpdate(1), mkUpdate(2)}, ClientIDs: []int{4, 1},
	})
	adv.ObserveRound(fl.RoundRecord{
		Round: 1, Disseminated: global,
		Updates: []nn.ParamSet{mkUpdate(3)}, ClientIDs: []int{5},
	})
	scores := adv.Scores()
	for _, want := range []int{4, 1, 5} {
		if _, ok := scores[want]; !ok {
			t.Fatalf("no score recorded for client %d: %v", want, scores)
		}
	}
	if _, ok := scores[0]; ok {
		t.Fatal("positional key 0 recorded despite client IDs being present")
	}
	if _, err := adv.Accuracy([]int{0, 1, 0, 1, 0, 1}); err != nil {
		t.Fatal(err)
	}
	// A slot key outside the population must be reported as an error.
	if _, err := adv.Accuracy([]int{0, 1}); err == nil {
		t.Fatal("out-of-range slot key accepted")
	}
}
