// Package tensor implements dense float64 tensors and the small set of
// linear-algebra kernels needed to train neural networks: element-wise
// arithmetic, matrix multiplication (plus transposed variants), reductions,
// random initialisation, and im2col/col2im for convolutions.
//
// Design notes:
//
//   - Tensors are dense, row-major, and always float64.
//   - Shape mismatches are programmer errors, not runtime conditions, so the
//     arithmetic kernels panic with a descriptive message (the same
//     convention as gonum). Anything that parses untrusted input (the wire
//     codec) returns errors instead.
//   - Methods that mutate the receiver return the receiver to allow
//     chaining; methods named with a -d suffix (e.g. Added) allocate.
package tensor

import (
	"fmt"
	"math"
	"strings"
)

// Tensor is a dense, row-major float64 tensor.
type Tensor struct {
	shape []int
	data  []float64
}

// New returns a zero-filled tensor with the given shape.
// New() with no arguments returns a scalar-shaped tensor of size 1... it
// does not: at least one dimension is required.
func New(shape ...int) *Tensor {
	n := checkShape(shape)
	return &Tensor{shape: append([]int(nil), shape...), data: make([]float64, n)}
}

// FromSlice wraps data in a tensor of the given shape. The slice is used
// directly (not copied); len(data) must equal the shape's element count.
func FromSlice(data []float64, shape ...int) (*Tensor, error) {
	n := checkShape(shape)
	if len(data) != n {
		return nil, fmt.Errorf("tensor: data length %d does not match shape %v (want %d)", len(data), shape, n)
	}
	return &Tensor{shape: append([]int(nil), shape...), data: data}, nil
}

// View initialises t in place as a view over data with the given shape,
// aliasing BOTH slices (FromSlice copies the shape; View does not). It
// exists for bulk view construction — the slab accumulator materialises
// thousands of row views per round and must not allocate a shape copy
// (or a Tensor box) per tensor — so it trades safety for allocation
// count: the caller guarantees that data and shape outlive t, that
// len(data) matches the shape's element count, and that shape is never
// mutated. Shape mismatches are programmer errors here (the slab layout
// was validated when it was built), so View panics like the arithmetic
// kernels rather than returning an error.
func View(t *Tensor, data []float64, shape []int) {
	n := checkShape(shape)
	if len(data) != n {
		panic(fmt.Sprintf("tensor: view data length %d does not match shape %v (want %d)", len(data), shape, n))
	}
	t.shape = shape
	t.data = data
}

// MustFromSlice is FromSlice that panics on error; for tests and literals.
func MustFromSlice(data []float64, shape ...int) *Tensor {
	t, err := FromSlice(data, shape...)
	if err != nil {
		panic(err)
	}
	return t
}

// Full returns a tensor with every element set to v.
func Full(v float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = v
	}
	return t
}

// Ones returns a tensor of ones.
func Ones(shape ...int) *Tensor { return Full(1, shape...) }

func checkShape(shape []int) int {
	if len(shape) == 0 {
		panic("tensor: empty shape")
	}
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dimension in shape %v", shape))
		}
		n *= d
	}
	return n
}

// Shape returns a copy of the tensor's shape.
func (t *Tensor) Shape() []int { return append([]int(nil), t.shape...) }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.shape) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Size returns the total number of elements.
func (t *Tensor) Size() int { return len(t.data) }

// Data returns the underlying storage. The slice is shared with the tensor:
// callers that need an independent copy must Clone first.
func (t *Tensor) Data() []float64 { return t.data }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	return &Tensor{
		shape: append([]int(nil), t.shape...),
		data:  append([]float64(nil), t.data...),
	}
}

// Reshape returns a view sharing storage with t but with a new shape.
// The element counts must match.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := checkShape(shape)
	if n != len(t.data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (%d elems) to %v (%d elems)", t.shape, len(t.data), shape, n))
	}
	return &Tensor{shape: append([]int(nil), shape...), data: t.data}
}

// index converts a multi-dimensional index to a flat offset.
func (t *Tensor) index(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index %v does not match rank %d", idx, len(t.shape)))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// At returns the element at the given multi-dimensional index.
func (t *Tensor) At(idx ...int) float64 { return t.data[t.index(idx)] }

// Set assigns the element at the given multi-dimensional index.
func (t *Tensor) Set(v float64, idx ...int) { t.data[t.index(idx)] = v }

// SameShape reports whether t and o have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.shape) != len(o.shape) {
		return false
	}
	for i := range t.shape {
		if t.shape[i] != o.shape[i] {
			return false
		}
	}
	return true
}

func (t *Tensor) mustSameSize(o *Tensor, op string) {
	if len(t.data) != len(o.data) {
		panic(fmt.Sprintf("tensor: %s size mismatch: %v vs %v", op, t.shape, o.shape))
	}
}

// Zero sets every element to zero and returns t.
func (t *Tensor) Zero() *Tensor {
	for i := range t.data {
		t.data[i] = 0
	}
	return t
}

// Fill sets every element to v and returns t.
func (t *Tensor) Fill(v float64) *Tensor {
	for i := range t.data {
		t.data[i] = v
	}
	return t
}

// Add adds o element-wise into t and returns t.
func (t *Tensor) Add(o *Tensor) *Tensor {
	t.mustSameSize(o, "Add")
	for i, v := range o.data {
		t.data[i] += v
	}
	return t
}

// Sub subtracts o element-wise from t and returns t.
func (t *Tensor) Sub(o *Tensor) *Tensor {
	t.mustSameSize(o, "Sub")
	for i, v := range o.data {
		t.data[i] -= v
	}
	return t
}

// Mul multiplies t by o element-wise and returns t.
func (t *Tensor) Mul(o *Tensor) *Tensor {
	t.mustSameSize(o, "Mul")
	for i, v := range o.data {
		t.data[i] *= v
	}
	return t
}

// Scale multiplies every element by alpha and returns t.
func (t *Tensor) Scale(alpha float64) *Tensor {
	for i := range t.data {
		t.data[i] *= alpha
	}
	return t
}

// AddScalar adds alpha to every element and returns t.
func (t *Tensor) AddScalar(alpha float64) *Tensor {
	for i := range t.data {
		t.data[i] += alpha
	}
	return t
}

// AddScaled adds alpha*o element-wise into t (axpy) and returns t.
func (t *Tensor) AddScaled(o *Tensor, alpha float64) *Tensor {
	t.mustSameSize(o, "AddScaled")
	for i, v := range o.data {
		t.data[i] += alpha * v
	}
	return t
}

// Apply replaces every element x with f(x) and returns t.
func (t *Tensor) Apply(f func(float64) float64) *Tensor {
	for i, v := range t.data {
		t.data[i] = f(v)
	}
	return t
}

// Added returns a new tensor t+o.
func (t *Tensor) Added(o *Tensor) *Tensor { return t.Clone().Add(o) }

// Subbed returns a new tensor t-o.
func (t *Tensor) Subbed(o *Tensor) *Tensor { return t.Clone().Sub(o) }

// Scaled returns a new tensor alpha*t.
func (t *Tensor) Scaled(alpha float64) *Tensor { return t.Clone().Scale(alpha) }

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float64 {
	s := 0.0
	for _, v := range t.data {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of all elements.
func (t *Tensor) Mean() float64 { return t.Sum() / float64(len(t.data)) }

// Max returns the maximum element.
func (t *Tensor) Max() float64 {
	m := math.Inf(-1)
	for _, v := range t.data {
		if v > m {
			m = v
		}
	}
	return m
}

// Min returns the minimum element.
func (t *Tensor) Min() float64 {
	m := math.Inf(1)
	for _, v := range t.data {
		if v < m {
			m = v
		}
	}
	return m
}

// ArgMax returns the flat index of the first maximum element.
func (t *Tensor) ArgMax() int {
	best, bestV := 0, math.Inf(-1)
	for i, v := range t.data {
		if v > bestV {
			best, bestV = i, v
		}
	}
	return best
}

// ArgMaxRows treats t as a 2-D [rows, cols] tensor and returns, for each
// row, the column index of its maximum. Used for batch class predictions.
func (t *Tensor) ArgMaxRows() []int {
	if len(t.shape) != 2 {
		panic(fmt.Sprintf("tensor: ArgMaxRows requires rank 2, got shape %v", t.shape))
	}
	rows, cols := t.shape[0], t.shape[1]
	out := make([]int, rows)
	for r := 0; r < rows; r++ {
		row := t.data[r*cols : (r+1)*cols]
		best, bestV := 0, math.Inf(-1)
		for c, v := range row {
			if v > bestV {
				best, bestV = c, v
			}
		}
		out[r] = best
	}
	return out
}

// Dot returns the inner product of t and o viewed as flat vectors.
func Dot(a, b *Tensor) float64 {
	a.mustSameSize(b, "Dot")
	s := 0.0
	for i, v := range a.data {
		s += v * b.data[i]
	}
	return s
}

// Norm returns the L2 norm of t viewed as a flat vector.
func (t *Tensor) Norm() float64 {
	s := 0.0
	for _, v := range t.data {
		s += v * v
	}
	return math.Sqrt(s)
}

// CosineSimilarity returns the cosine of the angle between a and b viewed
// as flat vectors. Returns 0 if either vector has zero norm.
func CosineSimilarity(a, b *Tensor) float64 {
	na, nb := a.Norm(), b.Norm()
	if na == 0 || nb == 0 {
		return 0
	}
	return Dot(a, b) / (na * nb)
}

// EuclideanDistance returns the L2 distance between a and b viewed as flat
// vectors.
func EuclideanDistance(a, b *Tensor) float64 {
	a.mustSameSize(b, "EuclideanDistance")
	s := 0.0
	for i, v := range a.data {
		d := v - b.data[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// Equal reports exact element-wise equality (shapes must match too).
func Equal(a, b *Tensor) bool {
	if !a.SameShape(b) {
		return false
	}
	for i, v := range a.data {
		if v != b.data[i] {
			return false
		}
	}
	return true
}

// ApproxEqual reports element-wise equality within absolute tolerance tol.
func ApproxEqual(a, b *Tensor, tol float64) bool {
	if !a.SameShape(b) {
		return false
	}
	for i, v := range a.data {
		if math.Abs(v-b.data[i]) > tol {
			return false
		}
	}
	return true
}

// String renders small tensors fully and large tensors as a summary.
func (t *Tensor) String() string {
	const maxElems = 16
	var b strings.Builder
	fmt.Fprintf(&b, "Tensor%v", t.shape)
	if len(t.data) <= maxElems {
		fmt.Fprintf(&b, "%v", t.data)
	} else {
		fmt.Fprintf(&b, "[%g %g ... %g] (n=%d)", t.data[0], t.data[1], t.data[len(t.data)-1], len(t.data))
	}
	return b.String()
}
