package tensor

import (
	"math"
	"math/rand"
)

// RandN fills t with samples from N(mean, std²) drawn from rng and returns t.
func (t *Tensor) RandN(rng *rand.Rand, mean, std float64) *Tensor {
	for i := range t.data {
		t.data[i] = mean + std*rng.NormFloat64()
	}
	return t
}

// RandU fills t with samples from U[lo, hi) drawn from rng and returns t.
func (t *Tensor) RandU(rng *rand.Rand, lo, hi float64) *Tensor {
	for i := range t.data {
		t.data[i] = lo + (hi-lo)*rng.Float64()
	}
	return t
}

// GlorotUniform fills t with the Glorot/Xavier uniform initialisation for a
// parameter connecting fanIn inputs to fanOut outputs and returns t.
func (t *Tensor) GlorotUniform(rng *rand.Rand, fanIn, fanOut int) *Tensor {
	limit := math.Sqrt(6.0 / float64(fanIn+fanOut))
	return t.RandU(rng, -limit, limit)
}

// HeNormal fills t with the He initialisation (for ReLU networks) for a
// parameter with fanIn inputs and returns t.
func (t *Tensor) HeNormal(rng *rand.Rand, fanIn int) *Tensor {
	return t.RandN(rng, 0, math.Sqrt(2.0/float64(fanIn)))
}
