package tensor

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveMatMul is the reference triple loop used to validate the optimised
// kernels.
func naiveMatMul(a, b *Tensor) *Tensor {
	m, k, n := a.Dim(0), a.Dim(1), b.Dim(1)
	out := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for p := 0; p < k; p++ {
				s += a.At(i, p) * b.At(p, j)
			}
			out.Set(s, i, j)
		}
	}
	return out
}

func TestMatMulSmall(t *testing.T) {
	a := MustFromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := MustFromSlice([]float64{7, 8, 9, 10, 11, 12}, 3, 2)
	got := MatMul(a, b)
	want := MustFromSlice([]float64{58, 64, 139, 154}, 2, 2)
	if !ApproxEqual(got, want, 1e-12) {
		t.Fatalf("MatMul = %v, want %v", got, want)
	}
}

func TestMatMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := New(5, 5).RandN(rng, 0, 1)
	id := New(5, 5)
	for i := 0; i < 5; i++ {
		id.Set(1, i, i)
	}
	if !ApproxEqual(MatMul(a, id), a, 1e-12) {
		t.Fatal("A·I != A")
	}
	if !ApproxEqual(MatMul(id, a), a, 1e-12) {
		t.Fatal("I·A != A")
	}
}

func TestMatMulMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, dims := range [][3]int{{1, 1, 1}, {2, 3, 4}, {7, 5, 3}, {16, 16, 16}, {1, 10, 1}} {
		m, k, n := dims[0], dims[1], dims[2]
		a := New(m, k).RandN(rng, 0, 1)
		b := New(k, n).RandN(rng, 0, 1)
		if !ApproxEqual(MatMul(a, b), naiveMatMul(a, b), 1e-9) {
			t.Fatalf("MatMul mismatch at dims %v", dims)
		}
	}
}

func TestMatMulTAMatchesTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := New(6, 4).RandN(rng, 0, 1) // logical aᵀ is 4x6
	b := New(6, 5).RandN(rng, 0, 1)
	got := MatMulTA(a, b)
	want := MatMul(Transpose2D(a), b)
	if !ApproxEqual(got, want, 1e-9) {
		t.Fatal("MatMulTA != Transpose(a)·b")
	}
}

func TestMatMulTBMatchesTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := New(3, 4).RandN(rng, 0, 1)
	b := New(5, 4).RandN(rng, 0, 1) // logical bᵀ is 4x5
	got := MatMulTB(a, b)
	want := MatMul(a, Transpose2D(b))
	if !ApproxEqual(got, want, 1e-9) {
		t.Fatal("MatMulTB != a·Transpose(b)")
	}
}

func TestMatMulPanics(t *testing.T) {
	tests := []struct {
		name string
		fn   func()
	}{
		{"inner mismatch", func() { MatMul(New(2, 3), New(4, 2)) }},
		{"rank", func() { MatMul(New(2, 3, 1), New(3, 2)) }},
		{"TA mismatch", func() { MatMulTA(New(2, 3), New(3, 2)) }},
		{"TB mismatch", func() { MatMulTB(New(2, 3), New(2, 4)) }},
		{"transpose rank", func() { Transpose2D(New(2)) }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("did not panic")
				}
			}()
			tt.fn()
		})
	}
}

func TestTranspose2D(t *testing.T) {
	a := MustFromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	got := Transpose2D(a)
	want := MustFromSlice([]float64{1, 4, 2, 5, 3, 6}, 3, 2)
	if !Equal(got, want) {
		t.Fatalf("Transpose2D = %v, want %v", got, want)
	}
	if !Equal(Transpose2D(got), a) {
		t.Fatal("double transpose is not identity")
	}
}

// Property: (A·B)ᵀ == Bᵀ·Aᵀ for random small matrices.
func TestQuickMatMulTransposeIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	f := func(m8, k8, n8 uint8) bool {
		m, k, n := int(m8%6)+1, int(k8%6)+1, int(n8%6)+1
		a := New(m, k).RandN(rng, 0, 1)
		b := New(k, n).RandN(rng, 0, 1)
		lhs := Transpose2D(MatMul(a, b))
		rhs := MatMul(Transpose2D(b), Transpose2D(a))
		return ApproxEqual(lhs, rhs, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
