package tensor

import (
	"math/rand"
	"testing"
)

func BenchmarkMatMul(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := New(64, 64).RandN(rng, 0, 1)
	y := New(64, 64).RandN(rng, 0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(x, y)
	}
}

func BenchmarkMatMulTA(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	x := New(64, 64).RandN(rng, 0, 1)
	y := New(64, 64).RandN(rng, 0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulTA(x, y)
	}
}

func BenchmarkIm2Col(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	g := ConvGeom{InC: 3, InH: 32, InW: 32, KH: 3, KW: 3, Stride: 1, Pad: 1}
	img := New(3*32*32).RandN(rng, 0, 1).Data()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Im2Col(img, g)
	}
}

func BenchmarkCosineSimilarity(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	x := New(100_000).RandN(rng, 0, 1)
	y := New(100_000).RandN(rng, 0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CosineSimilarity(x, y)
	}
}
