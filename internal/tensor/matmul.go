package tensor

import "fmt"

// MatMul returns the matrix product a·b for 2-D tensors
// a [m,k] and b [k,n], producing [m,n].
//
// The kernel uses i-k-j loop ordering so the innermost loop walks both the
// output row and the b row contiguously, which is the cache-friendly
// ordering for row-major storage.
func MatMul(a, b *Tensor) *Tensor {
	m, k, n := check2D(a, b, false, false)
	out := New(m, n)
	ad, bd, od := a.data, b.data, out.data
	for i := 0; i < m; i++ {
		arow := ad[i*k : (i+1)*k]
		orow := od[i*n : (i+1)*n]
		for p, av := range arow {
			if av == 0 {
				continue
			}
			brow := bd[p*n : (p+1)*n]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// MatMulTA returns aᵀ·b for a [k,m] and b [k,n], producing [m,n], without
// materialising the transpose.
func MatMulTA(a, b *Tensor) *Tensor {
	k, m, n := check2D(a, b, true, false)
	out := New(m, n)
	ad, bd, od := a.data, b.data, out.data
	for p := 0; p < k; p++ {
		arow := ad[p*m : (p+1)*m]
		brow := bd[p*n : (p+1)*n]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			orow := od[i*n : (i+1)*n]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// MatMulTB returns a·bᵀ for a [m,k] and b [n,k], producing [m,n], without
// materialising the transpose.
func MatMulTB(a, b *Tensor) *Tensor {
	m, k, n := check2D(a, b, false, true)
	out := New(m, n)
	ad, bd, od := a.data, b.data, out.data
	for i := 0; i < m; i++ {
		arow := ad[i*k : (i+1)*k]
		orow := od[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := bd[j*k : (j+1)*k]
			s := 0.0
			for p, av := range arow {
				s += av * brow[p]
			}
			orow[j] = s
		}
	}
	return out
}

// check2D validates operand ranks and inner dimensions for the three matmul
// variants and returns (m, k, n) where the product is [m,n] with inner
// dimension k. transA/transB indicate which operand is logically transposed.
func check2D(a, b *Tensor, transA, transB bool) (int, int, int) {
	if len(a.shape) != 2 || len(b.shape) != 2 {
		panic(fmt.Sprintf("tensor: matmul requires rank-2 operands, got %v and %v", a.shape, b.shape))
	}
	am, ak := a.shape[0], a.shape[1]
	if transA {
		am, ak = ak, am
	}
	bk, bn := b.shape[0], b.shape[1]
	if transB {
		bk, bn = bn, bk
	}
	if ak != bk {
		panic(fmt.Sprintf("tensor: matmul inner dimension mismatch: %v x %v (transA=%v transB=%v)", a.shape, b.shape, transA, transB))
	}
	if transA {
		// MatMulTA returns (k, m, n) so the caller loops over k first.
		return ak, am, bn
	}
	return am, ak, bn
}

// Transpose2D returns a new tensor that is the transpose of the 2-D tensor t.
func Transpose2D(t *Tensor) *Tensor {
	if len(t.shape) != 2 {
		panic(fmt.Sprintf("tensor: Transpose2D requires rank 2, got %v", t.shape))
	}
	r, c := t.shape[0], t.shape[1]
	out := New(c, r)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			out.data[j*r+i] = t.data[i*c+j]
		}
	}
	return out
}
