package tensor

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConvGeomOutputDims(t *testing.T) {
	tests := []struct {
		name         string
		g            ConvGeom
		wantH, wantW int
	}{
		{"no pad stride 1", ConvGeom{InC: 1, InH: 5, InW: 5, KH: 3, KW: 3, Stride: 1, Pad: 0}, 3, 3},
		{"same pad", ConvGeom{InC: 3, InH: 8, InW: 8, KH: 3, KW: 3, Stride: 1, Pad: 1}, 8, 8},
		{"stride 2", ConvGeom{InC: 1, InH: 8, InW: 8, KH: 2, KW: 2, Stride: 2, Pad: 0}, 4, 4},
		{"rect kernel", ConvGeom{InC: 1, InH: 10, InW: 6, KH: 5, KW: 1, Stride: 1, Pad: 0}, 6, 6},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.g.Validate(); err != nil {
				t.Fatalf("Validate: %v", err)
			}
			if tt.g.OutH() != tt.wantH || tt.g.OutW() != tt.wantW {
				t.Fatalf("out dims = %dx%d, want %dx%d", tt.g.OutH(), tt.g.OutW(), tt.wantH, tt.wantW)
			}
		})
	}
}

func TestConvGeomValidateRejects(t *testing.T) {
	tests := []struct {
		name string
		g    ConvGeom
	}{
		{"zero channel", ConvGeom{InC: 0, InH: 5, InW: 5, KH: 3, KW: 3, Stride: 1}},
		{"zero kernel", ConvGeom{InC: 1, InH: 5, InW: 5, KH: 0, KW: 3, Stride: 1}},
		{"zero stride", ConvGeom{InC: 1, InH: 5, InW: 5, KH: 3, KW: 3, Stride: 0}},
		{"negative pad", ConvGeom{InC: 1, InH: 5, InW: 5, KH: 3, KW: 3, Stride: 1, Pad: -1}},
		{"kernel larger than input", ConvGeom{InC: 1, InH: 2, InW: 2, KH: 5, KW: 5, Stride: 1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.g.Validate(); err == nil {
				t.Fatalf("Validate(%+v) = nil, want error", tt.g)
			}
		})
	}
}

func TestIm2ColKnownValues(t *testing.T) {
	// 1x3x3 image, 2x2 kernel, stride 1, no padding -> 4 columns of 4 rows.
	img := []float64{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	}
	g := ConvGeom{InC: 1, InH: 3, InW: 3, KH: 2, KW: 2, Stride: 1, Pad: 0}
	cols := Im2Col(img, g)
	want := MustFromSlice([]float64{
		1, 2, 4, 5, // kernel position (0,0) across the 4 output pixels
		2, 3, 5, 6, // (0,1)
		4, 5, 7, 8, // (1,0)
		5, 6, 8, 9, // (1,1)
	}, 4, 4)
	if !Equal(cols, want) {
		t.Fatalf("Im2Col = %v, want %v", cols, want)
	}
}

func TestIm2ColPaddingZeros(t *testing.T) {
	img := []float64{1, 1, 1, 1}
	g := ConvGeom{InC: 1, InH: 2, InW: 2, KH: 3, KW: 3, Stride: 1, Pad: 1}
	cols := Im2Col(img, g)
	// Corner output (0,0): kernel centre at (0,0); 5 of 9 taps fall outside.
	col0Sum := 0.0
	for r := 0; r < 9; r++ {
		col0Sum += cols.At(r, 0)
	}
	if col0Sum != 4 { // all four image pixels visible, rest zero-padded
		t.Fatalf("padded corner column sum = %g, want 4", col0Sum)
	}
}

// convReference computes a direct (non-lowered) convolution for validation.
func convReference(img []float64, w *Tensor, g ConvGeom, outC int) *Tensor {
	outH, outW := g.OutH(), g.OutW()
	out := New(outC, outH*outW)
	for oc := 0; oc < outC; oc++ {
		for oh := 0; oh < outH; oh++ {
			for ow := 0; ow < outW; ow++ {
				s := 0.0
				for c := 0; c < g.InC; c++ {
					for kh := 0; kh < g.KH; kh++ {
						for kw := 0; kw < g.KW; kw++ {
							ih := oh*g.Stride + kh - g.Pad
							iw := ow*g.Stride + kw - g.Pad
							if ih < 0 || ih >= g.InH || iw < 0 || iw >= g.InW {
								continue
							}
							wIdx := ((oc*g.InC+c)*g.KH+kh)*g.KW + kw
							s += w.Data()[wIdx] * img[(c*g.InH+ih)*g.InW+iw]
						}
					}
				}
				out.Set(s, oc, oh*outW+ow)
			}
		}
	}
	return out
}

func TestIm2ColConvolutionEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := ConvGeom{InC: 3, InH: 7, InW: 6, KH: 3, KW: 3, Stride: 2, Pad: 1}
	outC := 4
	img := New(g.InC*g.InH*g.InW).RandN(rng, 0, 1).Data()
	w := New(outC, g.InC*g.KH*g.KW).RandN(rng, 0, 1)

	got := MatMul(w, Im2Col(img, g))
	want := convReference(img, w, g, outC)
	if !ApproxEqual(got, want, 1e-9) {
		t.Fatal("im2col-lowered convolution disagrees with direct convolution")
	}
}

// Property: Col2Im is the adjoint of Im2Col, i.e. for random x (image) and
// y (column matrix): <Im2Col(x), y> == <x, Col2Im(y)>.
func TestQuickCol2ImAdjoint(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := ConvGeom{
			InC:    1 + int(r.Int31n(3)),
			InH:    3 + int(r.Int31n(5)),
			InW:    3 + int(r.Int31n(5)),
			KH:     1 + int(r.Int31n(3)),
			KW:     1 + int(r.Int31n(3)),
			Stride: 1 + int(r.Int31n(2)),
			Pad:    int(r.Int31n(2)),
		}
		if g.Validate() != nil {
			return true
		}
		x := New(g.InC*g.InH*g.InW).RandN(rng, 0, 1)
		y := New(g.InC*g.KH*g.KW, g.OutH()*g.OutW()).RandN(rng, 0, 1)

		lhs := Dot(Im2Col(x.Data(), g), y)
		colImg := Col2Im(y, g)
		rhs := 0.0
		for i, v := range colImg {
			rhs += v * x.Data()[i]
		}
		return lhs-rhs < 1e-9 && rhs-lhs < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCol2ImPanicsOnShapeMismatch(t *testing.T) {
	g := ConvGeom{InC: 1, InH: 4, InW: 4, KH: 2, KW: 2, Stride: 1, Pad: 0}
	defer func() {
		if recover() == nil {
			t.Fatal("Col2Im with wrong shape did not panic")
		}
	}()
	Col2Im(New(3, 3), g)
}
