package tensor

import "fmt"

// ConvGeom describes the geometry of a 2-D convolution or pooling window
// applied to a CHW input.
type ConvGeom struct {
	InC, InH, InW int // input channels, height, width
	KH, KW        int // kernel height, width
	Stride        int
	Pad           int
}

// OutH returns the output height of the convolution.
func (g ConvGeom) OutH() int { return (g.InH+2*g.Pad-g.KH)/g.Stride + 1 }

// OutW returns the output width of the convolution.
func (g ConvGeom) OutW() int { return (g.InW+2*g.Pad-g.KW)/g.Stride + 1 }

// Validate checks that the geometry produces a non-empty output.
func (g ConvGeom) Validate() error {
	switch {
	case g.InC <= 0 || g.InH <= 0 || g.InW <= 0:
		return fmt.Errorf("tensor: conv geometry has non-positive input dims: %+v", g)
	case g.KH <= 0 || g.KW <= 0:
		return fmt.Errorf("tensor: conv geometry has non-positive kernel dims: %+v", g)
	case g.Stride <= 0:
		return fmt.Errorf("tensor: conv geometry has non-positive stride: %+v", g)
	case g.Pad < 0:
		return fmt.Errorf("tensor: conv geometry has negative padding: %+v", g)
	case g.OutH() <= 0 || g.OutW() <= 0:
		return fmt.Errorf("tensor: conv geometry produces empty output: %+v", g)
	}
	return nil
}

// Im2Col lowers a single CHW image (flat slice of length InC*InH*InW) into a
// column matrix of shape [InC*KH*KW, OutH*OutW] so that convolution becomes a
// matrix product: weights [outC, InC*KH*KW] · cols = output [outC, OutH*OutW].
// Out-of-bounds (padding) positions contribute zeros.
func Im2Col(img []float64, g ConvGeom) *Tensor {
	outH, outW := g.OutH(), g.OutW()
	cols := New(g.InC*g.KH*g.KW, outH*outW)
	cd := cols.data
	row := 0
	for c := 0; c < g.InC; c++ {
		chn := img[c*g.InH*g.InW : (c+1)*g.InH*g.InW]
		for kh := 0; kh < g.KH; kh++ {
			for kw := 0; kw < g.KW; kw++ {
				dst := cd[row*outH*outW : (row+1)*outH*outW]
				i := 0
				for oh := 0; oh < outH; oh++ {
					ih := oh*g.Stride + kh - g.Pad
					if ih < 0 || ih >= g.InH {
						i += outW
						continue
					}
					base := ih * g.InW
					for ow := 0; ow < outW; ow++ {
						iw := ow*g.Stride + kw - g.Pad
						if iw >= 0 && iw < g.InW {
							dst[i] = chn[base+iw]
						}
						i++
					}
				}
				row++
			}
		}
	}
	return cols
}

// Col2Im is the adjoint of Im2Col: it scatters a column-matrix gradient
// [InC*KH*KW, OutH*OutW] back into an image gradient of length InC*InH*InW,
// accumulating where windows overlap.
func Col2Im(cols *Tensor, g ConvGeom) []float64 {
	outH, outW := g.OutH(), g.OutW()
	if cols.shape[0] != g.InC*g.KH*g.KW || cols.shape[1] != outH*outW {
		panic(fmt.Sprintf("tensor: Col2Im shape %v does not match geometry %+v", cols.shape, g))
	}
	img := make([]float64, g.InC*g.InH*g.InW)
	cd := cols.data
	row := 0
	for c := 0; c < g.InC; c++ {
		chn := img[c*g.InH*g.InW : (c+1)*g.InH*g.InW]
		for kh := 0; kh < g.KH; kh++ {
			for kw := 0; kw < g.KW; kw++ {
				src := cd[row*outH*outW : (row+1)*outH*outW]
				i := 0
				for oh := 0; oh < outH; oh++ {
					ih := oh*g.Stride + kh - g.Pad
					if ih < 0 || ih >= g.InH {
						i += outW
						continue
					}
					base := ih * g.InW
					for ow := 0; ow < outW; ow++ {
						iw := ow*g.Stride + kw - g.Pad
						if iw >= 0 && iw < g.InW {
							chn[base+iw] += src[i]
						}
						i++
					}
				}
				row++
			}
		}
	}
	return img
}
