package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewZeroFilled(t *testing.T) {
	x := New(2, 3, 4)
	if got := x.Size(); got != 24 {
		t.Fatalf("Size() = %d, want 24", got)
	}
	for i, v := range x.Data() {
		if v != 0 {
			t.Fatalf("element %d = %g, want 0", i, v)
		}
	}
	if x.Rank() != 3 || x.Dim(0) != 2 || x.Dim(1) != 3 || x.Dim(2) != 4 {
		t.Fatalf("unexpected shape: %v", x.Shape())
	}
}

func TestNewPanicsOnBadShape(t *testing.T) {
	tests := []struct {
		name  string
		shape []int
	}{
		{"empty", nil},
		{"zero dim", []int{3, 0}},
		{"negative dim", []int{-1, 2}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("New(%v) did not panic", tt.shape)
				}
			}()
			New(tt.shape...)
		})
	}
}

func TestFromSlice(t *testing.T) {
	d := []float64{1, 2, 3, 4, 5, 6}
	x, err := FromSlice(d, 2, 3)
	if err != nil {
		t.Fatalf("FromSlice: %v", err)
	}
	if x.At(1, 2) != 6 {
		t.Fatalf("At(1,2) = %g, want 6", x.At(1, 2))
	}
	if _, err := FromSlice(d, 2, 2); err == nil {
		t.Fatal("FromSlice with wrong shape did not error")
	}
}

func TestAtSetRoundTrip(t *testing.T) {
	x := New(3, 4)
	x.Set(7.5, 2, 1)
	if got := x.At(2, 1); got != 7.5 {
		t.Fatalf("At(2,1) = %g, want 7.5", got)
	}
	if got := x.Data()[2*4+1]; got != 7.5 {
		t.Fatalf("flat layout wrong: %g", got)
	}
}

func TestAtPanicsOutOfRange(t *testing.T) {
	x := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range At did not panic")
		}
	}()
	x.At(2, 0)
}

func TestCloneIsDeep(t *testing.T) {
	x := MustFromSlice([]float64{1, 2}, 2)
	y := x.Clone()
	y.Data()[0] = 99
	if x.Data()[0] != 1 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestReshapeSharesStorage(t *testing.T) {
	x := MustFromSlice([]float64{1, 2, 3, 4}, 2, 2)
	y := x.Reshape(4)
	y.Data()[3] = 42
	if x.At(1, 1) != 42 {
		t.Fatal("Reshape does not share storage")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("bad Reshape did not panic")
		}
	}()
	x.Reshape(3)
}

func TestElementwiseOps(t *testing.T) {
	a := MustFromSlice([]float64{1, 2, 3}, 3)
	b := MustFromSlice([]float64{10, 20, 30}, 3)

	tests := []struct {
		name string
		got  *Tensor
		want []float64
	}{
		{"Added", a.Added(b), []float64{11, 22, 33}},
		{"Subbed", b.Subbed(a), []float64{9, 18, 27}},
		{"Scaled", a.Scaled(2), []float64{2, 4, 6}},
		{"Mul", a.Clone().Mul(b), []float64{10, 40, 90}},
		{"AddScaled", a.Clone().AddScaled(b, 0.1), []float64{2, 4, 6}},
		{"AddScalar", a.Clone().AddScalar(1), []float64{2, 3, 4}},
		{"Apply", a.Clone().Apply(func(x float64) float64 { return -x }), []float64{-1, -2, -3}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			want := MustFromSlice(tt.want, 3)
			if !ApproxEqual(tt.got, want, 1e-12) {
				t.Fatalf("got %v, want %v", tt.got, want)
			}
		})
	}
}

func TestOpsPanicOnSizeMismatch(t *testing.T) {
	a, b := New(3), New(4)
	ops := map[string]func(){
		"Add":               func() { a.Clone().Add(b) },
		"Sub":               func() { a.Clone().Sub(b) },
		"Mul":               func() { a.Clone().Mul(b) },
		"AddScaled":         func() { a.Clone().AddScaled(b, 1) },
		"Dot":               func() { Dot(a, b) },
		"EuclideanDistance": func() { EuclideanDistance(a, b) },
	}
	for name, op := range ops {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s with mismatched sizes did not panic", name)
				}
			}()
			op()
		})
	}
}

func TestReductions(t *testing.T) {
	x := MustFromSlice([]float64{3, -1, 4, 1, -5, 9}, 2, 3)
	if got := x.Sum(); got != 11 {
		t.Fatalf("Sum = %g, want 11", got)
	}
	if got := x.Mean(); math.Abs(got-11.0/6) > 1e-15 {
		t.Fatalf("Mean = %g", got)
	}
	if got := x.Max(); got != 9 {
		t.Fatalf("Max = %g, want 9", got)
	}
	if got := x.Min(); got != -5 {
		t.Fatalf("Min = %g, want -5", got)
	}
	if got := x.ArgMax(); got != 5 {
		t.Fatalf("ArgMax = %d, want 5", got)
	}
}

func TestArgMaxRows(t *testing.T) {
	x := MustFromSlice([]float64{
		0.1, 0.8, 0.1,
		0.9, 0.05, 0.05,
		0.2, 0.2, 0.6,
	}, 3, 3)
	got := x.ArgMaxRows()
	want := []int{1, 0, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ArgMaxRows = %v, want %v", got, want)
		}
	}
}

func TestVectorMetrics(t *testing.T) {
	a := MustFromSlice([]float64{1, 0}, 2)
	b := MustFromSlice([]float64{0, 1}, 2)
	c := MustFromSlice([]float64{2, 0}, 2)
	if got := CosineSimilarity(a, b); math.Abs(got) > 1e-15 {
		t.Fatalf("cos(orthogonal) = %g, want 0", got)
	}
	if got := CosineSimilarity(a, c); math.Abs(got-1) > 1e-15 {
		t.Fatalf("cos(parallel) = %g, want 1", got)
	}
	if got := CosineSimilarity(a, New(2)); got != 0 {
		t.Fatalf("cos with zero vector = %g, want 0", got)
	}
	if got := EuclideanDistance(a, b); math.Abs(got-math.Sqrt2) > 1e-15 {
		t.Fatalf("dist = %g, want sqrt(2)", got)
	}
	if got := a.Norm(); got != 1 {
		t.Fatalf("Norm = %g, want 1", got)
	}
}

func TestEqualAndApproxEqual(t *testing.T) {
	a := MustFromSlice([]float64{1, 2}, 2)
	b := MustFromSlice([]float64{1, 2}, 1, 2)
	if Equal(a, b) {
		t.Fatal("Equal ignored shape difference")
	}
	c := MustFromSlice([]float64{1, 2 + 1e-9}, 2)
	if Equal(a, c) {
		t.Fatal("Equal ignored value difference")
	}
	if !ApproxEqual(a, c, 1e-8) {
		t.Fatal("ApproxEqual too strict")
	}
	if ApproxEqual(a, c, 1e-10) {
		t.Fatal("ApproxEqual too lax")
	}
}

func TestStringForms(t *testing.T) {
	small := MustFromSlice([]float64{1, 2}, 2)
	if s := small.String(); s == "" {
		t.Fatal("empty String for small tensor")
	}
	big := New(100)
	if s := big.String(); s == "" {
		t.Fatal("empty String for big tensor")
	}
}

func TestRandFillers(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := New(10000).RandN(rng, 2, 0.5)
	if m := x.Mean(); math.Abs(m-2) > 0.05 {
		t.Fatalf("RandN mean = %g, want ~2", m)
	}
	u := New(10000).RandU(rng, -1, 1)
	if min, max := u.Min(), u.Max(); min < -1 || max >= 1 {
		t.Fatalf("RandU out of range: [%g, %g]", min, max)
	}
	g := New(100).GlorotUniform(rng, 50, 50)
	limit := math.Sqrt(6.0 / 100)
	if g.Max() > limit || g.Min() < -limit {
		t.Fatalf("Glorot out of range: [%g, %g] (limit %g)", g.Min(), g.Max(), limit)
	}
	h := New(10000).HeNormal(rng, 2)
	if s := h.Norm() / 100; math.Abs(s-1) > 0.05 { // std should be sqrt(2/2)=1
		t.Fatalf("HeNormal std = %g, want ~1", s)
	}
}

// Property: a + b == b + a element-wise.
func TestQuickAddCommutative(t *testing.T) {
	f := func(vals []float64) bool {
		if len(vals) == 0 {
			return true
		}
		a := MustFromSlice(append([]float64(nil), vals...), len(vals))
		b := New(len(vals)).RandN(rand.New(rand.NewSource(42)), 0, 1)
		return ApproxEqual(a.Added(b), b.Added(a), 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: scaling by alpha then 1/alpha is identity (alpha != 0).
func TestQuickScaleInverse(t *testing.T) {
	f := func(vals []float64, alpha float64) bool {
		if len(vals) == 0 || alpha == 0 || math.IsNaN(alpha) || math.IsInf(alpha, 0) || math.Abs(alpha) < 1e-6 || math.Abs(alpha) > 1e6 {
			return true
		}
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e12 {
				return true
			}
		}
		a := MustFromSlice(append([]float64(nil), vals...), len(vals))
		got := a.Scaled(alpha).Scale(1 / alpha)
		return ApproxEqual(a, got, 1e-6*a.Norm()+1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
