// Package outbox implements the durable delivery queue between the MixNN
// proxy's round drains and its upstream forwarder. Once a shard tier
// drains a round, the mixed material has left the mixers; before this
// package existed a downstream outage mid-drain silently lost those
// updates and skewed the layer-wise mean the paper's equivalence argument
// depends on. The outbox closes that gap: a drained round is committed to
// disk as one sealed, versioned entry BEFORE any network send is
// attempted, and a background dispatcher (dispatcher.go) retries delivery
// with bounded backoff until the downstream acknowledges it.
//
// Like internal/core, the package is crypto-free: entries pass through
// caller-supplied Seal/Open funcs so the proxy can encrypt them under an
// enclave-derived key (enclave.SealLabeled) and nothing mixed ever rests
// on the untrusted host in plaintext. Tests run on nil funcs (plaintext).
//
// Disk layout: one file per entry, named ob-<seq>.ent with a
// zero-padded monotone sequence so lexical order is delivery order.
// Writes are tmp-file + rename (an entry is either fully present or
// absent); acknowledged entries are removed; entries that fail to open or
// parse are quarantined by rename to ob-<seq>.bad — consume-by-rename,
// like the proxy's sealed state blob — so the queue keeps draining past
// garbage while the evidence stays inspectable.
package outbox

import (
	"bytes"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// SealFunc encrypts an entry before it touches disk (e.g. under an
// enclave-derived key). Nil stores entries in plaintext.
type SealFunc func(plain []byte) ([]byte, error)

// OpenFunc reverses SealFunc.
type OpenFunc func(sealed []byte) ([]byte, error)

// ErrEmpty is returned by Next when no deliverable entry remains.
var ErrEmpty = errors.New("outbox: empty")

// Queue is the delivery queue contract shared by the durable on-disk
// outbox and the in-memory variant: per-destination-ordered Put/Next/Ack
// with quarantine for undeliverable entries, partial-delivery progress
// for per-update (NoBatch) forwarding, and a stable sender identity for
// receiver-side redelivery detection.
//
// Entries are partitioned into lanes keyed by the envelope destination
// (LaneOf), so a dead peer's backlog never blocks deliveries bound for
// the cascade hop, the aggregation server, or a healthy peer. Ordering
// is guaranteed per lane, not across lanes.
type Queue interface {
	// Put commits one entry and returns its sequence number. For the disk
	// queue the entry is durable (sealed, atomically renamed into place)
	// before Put returns. The entry joins the lane named by its envelope
	// destination (LaneOf of the plaintext payload).
	Put(payload []byte) (uint64, error)
	// Next returns the oldest entry across all lanes, opened. Corrupt or
	// unopenable entries are quarantined and skipped so one bad entry
	// cannot wedge the queue. ErrEmpty when drained.
	Next() (uint64, []byte, error)
	// NextIn returns the oldest entry of one lane, with the same
	// quarantine-and-skip behaviour as Next. ErrEmpty when the lane is
	// drained.
	NextIn(lane string) (uint64, []byte, error)
	// Lanes lists the lanes that currently hold pending entries, sorted.
	Lanes() []string
	// LaneLen counts entries awaiting delivery in one lane.
	LaneLen(lane string) int
	// LaneLens counts every lane's pending entries in ONE consistent
	// snapshot (a single lock acquisition), so the per-lane depths sum
	// to the queue's total at that instant. Status surfaces polled
	// under load use it instead of Lanes+LaneLen, whose per-lane reads
	// each race the dispatcher's acks.
	LaneLens() map[string]int
	// Ack consumes a delivered entry (and its progress marker).
	Ack(seq uint64) error
	// Quarantine sets aside an entry the receiver permanently rejected.
	Quarantine(seq uint64, reason error) error
	// Len counts entries awaiting delivery.
	Len() int
	// Quarantined counts entries set aside since the queue was opened,
	// including (for the disk queue) .bad files a previous process left
	// behind — the operator surface for material that left the delivery
	// path.
	Quarantined() int
	// SetProgress durably records that the first done updates of entry
	// seq are confirmed delivered, so per-update forwarding resumes
	// after a crash instead of resending the round.
	SetProgress(seq uint64, done int) error
	// Progress returns the recorded progress of entry seq (0 if none).
	Progress(seq uint64) int
	// SenderID is a stable identity for this queue (persisted alongside
	// the disk queue, ephemeral for the in-memory one). Receivers use it
	// with the entry sequence number to recognise stale redeliveries
	// that have aged out of their dedup window.
	SenderID() string
}

// Envelope is the payload of one outbox entry: one destination's share
// of a drained round. Binary layout (little-endian), versioned so the
// format can evolve:
//
//	magic   [4]byte "MXOB"
//	version uint32 (currently 2)
//	epoch   uint64  round number the material belongs to
//	topoVer uint64  (v2) routing-plane topology version the round closed
//	                under — the epoch+topology key delivery is tracked by
//	hop     uint32  cascade depth to stamp on delivery (watermark + 1)
//	destLen uint16, dest bytes (v2) remote-shard address this entry is
//	                addressed to; empty = the tier's upstream/next-hop
//	count   uint32  updates in the round
//	per update: len uint32, bytes (an encoded nn.ParamSet — opaque here)
//
// Version-1 entries (pre-routing-plane) still parse: they carry no
// destination (upstream) and topology version 0.
type Envelope struct {
	Epoch       uint64
	TopoVersion uint64
	Hop         int
	// Dest is the remote shard address the entry must be relayed to
	// (re-encrypted for that shard's enclave); empty means the tier's
	// ordinary downstream (upstream server or cascade next hop).
	Dest    string
	Updates [][]byte
}

const (
	envelopeMagic = "MXOB"

	// EnvelopeVersion is the current entry format; ParseEnvelope also
	// reads version 1 (entries a pre-topology proxy left on disk).
	EnvelopeVersion = 2

	// maxEnvelopeUpdates bounds the updates one entry may claim (entries
	// cross the sealing boundary, so parse limits guard allocations).
	maxEnvelopeUpdates = 1 << 20
	// maxEnvelopeItemBytes bounds one encoded update inside an entry.
	maxEnvelopeItemBytes = 512 << 20
	// maxEnvelopeDestBytes bounds the destination address.
	maxEnvelopeDestBytes = 1 << 10
)

// Marshal encodes the envelope.
func (e *Envelope) Marshal() ([]byte, error) {
	if len(e.Updates) > maxEnvelopeUpdates {
		return nil, fmt.Errorf("outbox: %d updates exceed the per-entry limit", len(e.Updates))
	}
	if e.Hop < 0 {
		return nil, fmt.Errorf("outbox: negative hop %d", e.Hop)
	}
	if len(e.Dest) > maxEnvelopeDestBytes {
		return nil, fmt.Errorf("outbox: destination exceeds %d bytes", maxEnvelopeDestBytes)
	}
	// Append-encode into one exactly-sized allocation: entries can carry a
	// whole round (megabytes at participant scale), where the old
	// bytes.Buffer + binary.Write path cost repeated growth copies plus an
	// interface allocation per field.
	size := len(envelopeMagic) + 4 + 8 + 8 + 4 + 2 + len(e.Dest) + 4
	for i, u := range e.Updates {
		if len(u) > maxEnvelopeItemBytes {
			return nil, fmt.Errorf("outbox: update %d exceeds %d bytes", i, maxEnvelopeItemBytes)
		}
		size += 4 + len(u)
	}
	buf := make([]byte, 0, size)
	buf = append(buf, envelopeMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(EnvelopeVersion))
	buf = binary.LittleEndian.AppendUint64(buf, e.Epoch)
	buf = binary.LittleEndian.AppendUint64(buf, e.TopoVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(e.Hop))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(e.Dest)))
	buf = append(buf, e.Dest...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(e.Updates)))
	for _, u := range e.Updates {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(u)))
		buf = append(buf, u...)
	}
	return buf, nil
}

// ParseEnvelope decodes an entry payload, validating structure before
// allocating.
func ParseEnvelope(data []byte) (*Envelope, error) {
	r := bytes.NewReader(data)
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil || string(magic[:]) != envelopeMagic {
		return nil, fmt.Errorf("outbox: bad entry magic %q", magic)
	}
	var version, hop, count uint32
	var epoch, topoVer uint64
	var dest []byte
	if err := binary.Read(r, binary.LittleEndian, &version); err != nil {
		return nil, fmt.Errorf("outbox: read entry version: %w", err)
	}
	if version != 1 && version != EnvelopeVersion {
		return nil, fmt.Errorf("outbox: entry version %d, want <= %d", version, EnvelopeVersion)
	}
	if err := binary.Read(r, binary.LittleEndian, &epoch); err != nil {
		return nil, fmt.Errorf("outbox: read entry epoch: %w", err)
	}
	if version >= 2 {
		if err := binary.Read(r, binary.LittleEndian, &topoVer); err != nil {
			return nil, fmt.Errorf("outbox: read entry topology version: %w", err)
		}
	}
	if err := binary.Read(r, binary.LittleEndian, &hop); err != nil {
		return nil, fmt.Errorf("outbox: read entry hop: %w", err)
	}
	if version >= 2 {
		var destLen uint16
		if err := binary.Read(r, binary.LittleEndian, &destLen); err != nil {
			return nil, fmt.Errorf("outbox: read entry destination length: %w", err)
		}
		if int(destLen) > maxEnvelopeDestBytes || int(destLen) > r.Len() {
			return nil, fmt.Errorf("outbox: destination length %d out of range", destLen)
		}
		dest = make([]byte, destLen)
		if _, err := io.ReadFull(r, dest); err != nil {
			return nil, fmt.Errorf("outbox: read entry destination: %w", err)
		}
	}
	if err := binary.Read(r, binary.LittleEndian, &count); err != nil {
		return nil, fmt.Errorf("outbox: read entry count: %w", err)
	}
	if count > maxEnvelopeUpdates {
		return nil, fmt.Errorf("outbox: entry claims %d updates", count)
	}
	env := &Envelope{Epoch: epoch, TopoVersion: topoVer, Hop: int(hop), Dest: string(dest), Updates: make([][]byte, 0, count)}
	for i := uint32(0); i < count; i++ {
		var n uint32
		if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
			return nil, fmt.Errorf("outbox: read update %d length: %w", i, err)
		}
		// uint64 comparisons: int(n) would go negative on 32-bit
		// platforms for adversarial lengths ≥ 2³¹ and bypass the bounds.
		if uint64(n) > maxEnvelopeItemBytes || uint64(n) > uint64(r.Len()) {
			return nil, fmt.Errorf("outbox: update %d length %d exceeds remaining bytes", i, n)
		}
		u := make([]byte, n)
		if _, err := io.ReadFull(r, u); err != nil {
			return nil, fmt.Errorf("outbox: read update %d: %w", i, err)
		}
		env.Updates = append(env.Updates, u)
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("outbox: %d trailing bytes after entry", r.Len())
	}
	return env, nil
}

// LaneOf extracts the delivery lane of an entry payload by decoding only
// the envelope header (magic through dest), without touching the update
// bodies. Version-1 entries carry no destination and payloads that do not
// parse as envelopes cannot be steered anywhere better, so both land in
// the default lane "" — the tier's ordinary downstream — where delivery
// (not lane indexing) decides whether to quarantine them.
func LaneOf(payload []byte) string {
	r := bytes.NewReader(payload)
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil || string(magic[:]) != envelopeMagic {
		return ""
	}
	var version uint32
	if err := binary.Read(r, binary.LittleEndian, &version); err != nil || version < 2 || version > EnvelopeVersion {
		return ""
	}
	// Skip epoch + topoVer (uint64 each) and hop (uint32).
	if _, err := r.Seek(8+8+4, io.SeekCurrent); err != nil {
		return ""
	}
	var destLen uint16
	if err := binary.Read(r, binary.LittleEndian, &destLen); err != nil {
		return ""
	}
	if int(destLen) > maxEnvelopeDestBytes || int(destLen) > r.Len() {
		return ""
	}
	dest := make([]byte, destLen)
	if _, err := io.ReadFull(r, dest); err != nil {
		return ""
	}
	return string(dest)
}

// Disk is the durable on-disk queue.
type Disk struct {
	dir    string
	seal   SealFunc
	open   OpenFunc
	sender string

	mu   sync.Mutex
	seqs []uint64 // pending sequence numbers, sorted ascending
	next uint64   // next sequence number to assign
	// laneOf maps each pending seq to its delivery lane; lanes holds the
	// per-lane pending seqs, sorted ascending. Both are derived from the
	// envelope headers: recorded at Put, rebuilt at Open.
	laneOf map[uint64]string
	lanes  map[string][]uint64
	// heads caches the opened payload at the head of each lane between
	// retry attempts (entries are immutable once written), so a long
	// outage does not re-read and re-decrypt the same round every backoff
	// tick.
	heads map[string]headCache
	// quarantined counts entries set aside: .bad files found at Open
	// plus quarantines since.
	quarantined int
	// progress maps entry seq → confirmed per-update delivery progress,
	// mirrored to .prog sidecar files so it survives restarts.
	progress map[uint64]int
}

// headCache is one lane's memoised head entry.
type headCache struct {
	seq     uint64
	payload []byte
}

const (
	entrySuffix      = ".ent"
	quarantineSuffix = ".bad"
	progressSuffix   = ".prog"
	senderFile       = "sender.id"
	// seqFile persists the next sequence number. The sender identity is
	// durable, and receivers key their stale-redelivery watermark on
	// (sender, seq) — so a sequence number must NEVER be reused, even
	// after a restart over a fully-drained (or quarantined-at-head)
	// directory where no .ent file remains to witness the high mark.
	seqFile = "seq.next"
)

func entryName(seq uint64) string { return fmt.Sprintf("ob-%016x%s", seq, entrySuffix) }

// Open opens (creating if needed) an outbox directory and indexes the
// entries a previous process left behind — that carry-over is what makes
// round delivery survive a crash. Quarantined (.bad) leftovers are
// counted and reported loudly: they are rounds that left the delivery
// path and need an operator.
func Open(dir string, seal SealFunc, open OpenFunc) (*Disk, error) {
	if err := os.MkdirAll(dir, 0o700); err != nil {
		return nil, fmt.Errorf("outbox: create dir: %w", err)
	}
	names, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("outbox: scan dir: %w", err)
	}
	d := &Disk{
		dir: dir, seal: seal, open: open,
		progress: make(map[uint64]int),
		laneOf:   make(map[uint64]string),
		lanes:    make(map[string][]uint64),
		heads:    make(map[string]headCache),
	}
	for _, de := range names {
		name := de.Name()
		if strings.HasSuffix(name, quarantineSuffix) {
			d.quarantined++
			// A quarantined entry's sequence number is still consumed:
			// the receiver may have recorded it in its watermark.
			var seq uint64
			if _, err := fmt.Sscanf(name, "ob-%016x", &seq); err == nil && seq >= d.next {
				d.next = seq + 1
			}
			continue
		}
		if strings.HasSuffix(name, progressSuffix) {
			var seq uint64
			if _, err := fmt.Sscanf(name, "ob-%016x"+progressSuffix, &seq); err != nil || name != progressName(seq) {
				continue
			}
			if seq >= d.next {
				d.next = seq + 1
			}
			raw, err := os.ReadFile(filepath.Join(dir, name))
			if err != nil {
				continue
			}
			var done int
			if _, err := fmt.Sscanf(string(raw), "%d", &done); err == nil && done > 0 {
				d.progress[seq] = done
			}
			continue
		}
		var seq uint64
		// Sscanf ignores trailing input, so require an exact round-trip of
		// the name — otherwise ob-N.ent.bad / ob-N.ent.tmp leftovers would
		// be indexed as phantom entries.
		if _, err := fmt.Sscanf(name, "ob-%016x"+entrySuffix, &seq); err != nil || name != entryName(seq) {
			continue // tmp files, foreign files
		}
		d.seqs = append(d.seqs, seq)
		if seq >= d.next {
			d.next = seq + 1
		}
	}
	sort.Slice(d.seqs, func(i, j int) bool { return d.seqs[i] < d.seqs[j] })
	// Orphaned progress markers (their entry was acked or quarantined
	// mid-crash) must not survive to claim progress on a recycled seq.
	for seq := range d.progress {
		if !d.hasSeqLocked(seq) {
			delete(d.progress, seq)
			os.Remove(filepath.Join(dir, progressName(seq)))
		}
	}
	// The persisted counter wins over anything derived from surviving
	// files: acknowledged entries leave no .ent witness, but their
	// sequence numbers are burned at the receivers.
	if raw, err := os.ReadFile(filepath.Join(dir, seqFile)); err == nil {
		var next uint64
		if _, err := fmt.Sscanf(strings.TrimSpace(string(raw)), "%d", &next); err == nil && next > d.next {
			d.next = next
		}
	}
	// Rebuild the lane index: each carried-over entry is opened once to
	// read its envelope destination. Entries that fail to read or unseal
	// here would fail identically at delivery time, so they are
	// quarantined now instead of wedging a lane later; the opened payloads
	// are NOT retained (a restart after a long outage could hold many
	// rounds) — only the lane label is.
	for _, seq := range append([]uint64(nil), d.seqs...) {
		raw, rerr := os.ReadFile(filepath.Join(dir, entryName(seq)))
		if rerr == nil && d.open != nil {
			raw, rerr = d.open(raw)
		}
		if rerr != nil {
			d.quarantineLocked(seq)
			continue
		}
		lane := LaneOf(raw)
		d.laneOf[seq] = lane
		d.lanes[lane] = append(d.lanes[lane], seq)
	}
	if d.sender, err = loadSenderID(dir); err != nil {
		return nil, err
	}
	if d.quarantined > 0 {
		log.Printf("outbox: WARNING: %d quarantined entries (%s files) in %s — rounds that left the delivery path; inspect and re-inject or discard", d.quarantined, quarantineSuffix, dir)
	}
	return d, nil
}

func progressName(seq uint64) string { return fmt.Sprintf("ob-%016x%s", seq, progressSuffix) }

func (d *Disk) hasSeqLocked(seq uint64) bool {
	i := sort.Search(len(d.seqs), func(i int) bool { return d.seqs[i] >= seq })
	return i < len(d.seqs) && d.seqs[i] == seq
}

// loadSenderID reads (or mints) the queue's stable sender identity.
func loadSenderID(dir string) (string, error) {
	path := filepath.Join(dir, senderFile)
	raw, err := os.ReadFile(path)
	if err == nil && len(raw) >= 8 {
		return strings.TrimSpace(string(raw)), nil
	}
	id, err := mintSenderID()
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(path, []byte(id), 0o600); err != nil {
		return "", fmt.Errorf("outbox: persist sender id: %w", err)
	}
	return id, nil
}

// mintSenderID draws a fresh random sender identity.
func mintSenderID() (string, error) {
	var b [12]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("outbox: draw sender id: %w", err)
	}
	return hex.EncodeToString(b[:]), nil
}

// Dir returns the outbox directory.
func (d *Disk) Dir() string { return d.dir }

// Put seals the payload and commits it via tmp-file + rename, so a crash
// or full disk mid-write cannot leave a truncated entry where a good one
// should be.
func (d *Disk) Put(payload []byte) (uint64, error) {
	// The lane is read from the plaintext header, before sealing hides it.
	lane := LaneOf(payload)
	if d.seal != nil {
		var err error
		if payload, err = d.seal(payload); err != nil {
			return 0, fmt.Errorf("outbox: seal entry: %w", err)
		}
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	seq := d.next
	// Burn the sequence number durably BEFORE the entry exists: once the
	// entry is (ever) sent, the receiver's watermark remembers (sender,
	// seq), and a post-restart reuse would make fresh rounds look like
	// stale redeliveries — quarantined unseen. Best-effort on purpose: a
	// failed counter write must not fail the round commit, and Open also
	// rebuilds the counter from every on-disk witness.
	seqTmp := filepath.Join(d.dir, seqFile+".tmp")
	if err := os.WriteFile(seqTmp, []byte(fmt.Sprintf("%d\n", seq+1)), 0o600); err == nil {
		os.Rename(seqTmp, filepath.Join(d.dir, seqFile))
	}
	path := filepath.Join(d.dir, entryName(seq))
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, payload, 0o600); err != nil {
		return 0, fmt.Errorf("outbox: write entry: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return 0, fmt.Errorf("outbox: commit entry: %w", err)
	}
	d.next = seq + 1
	d.seqs = append(d.seqs, seq)
	d.laneOf[seq] = lane
	d.lanes[lane] = append(d.lanes[lane], seq)
	return seq, nil
}

// Next returns the oldest entry across all lanes, opened. Entries that
// fail to read or unseal are quarantined and skipped, so the queue drains
// past garbage a corrupted disk (or an adversarial host) left in the
// directory.
func (d *Disk) Next() (uint64, []byte, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for len(d.seqs) > 0 {
		// The globally-oldest entry is also the head of its own lane.
		seq, payload, err := d.nextInLocked(d.laneOf[d.seqs[0]])
		if errors.Is(err, ErrEmpty) {
			continue
		}
		return seq, payload, err
	}
	return 0, nil, ErrEmpty
}

// NextIn returns the oldest entry of one lane, opened, with the same
// quarantine-and-skip behaviour as Next.
func (d *Disk) NextIn(lane string) (uint64, []byte, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.nextInLocked(lane)
}

func (d *Disk) nextInLocked(lane string) (uint64, []byte, error) {
	for len(d.lanes[lane]) > 0 {
		seq := d.lanes[lane][0]
		if h, ok := d.heads[lane]; ok && h.seq == seq {
			return seq, h.payload, nil
		}
		raw, err := os.ReadFile(filepath.Join(d.dir, entryName(seq)))
		if err == nil && d.open != nil {
			raw, err = d.open(raw)
		}
		if err != nil {
			d.quarantineLocked(seq)
			continue
		}
		d.heads[lane] = headCache{seq: seq, payload: raw}
		return seq, raw, nil
	}
	return 0, nil, ErrEmpty
}

// Lanes lists the lanes that currently hold pending entries, sorted.
func (d *Disk) Lanes() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]string, 0, len(d.lanes))
	for lane, seqs := range d.lanes {
		if len(seqs) > 0 {
			out = append(out, lane)
		}
	}
	sort.Strings(out)
	return out
}

// LaneLen counts entries awaiting delivery in one lane.
func (d *Disk) LaneLen(lane string) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.lanes[lane])
}

// LaneLens snapshots every lane's depth under one lock acquisition.
func (d *Disk) LaneLens() map[string]int {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make(map[string]int, len(d.lanes))
	for lane, seqs := range d.lanes {
		if len(seqs) > 0 {
			out[lane] = len(seqs)
		}
	}
	return out
}

// Ack consumes a delivered entry and its progress marker.
func (d *Disk) Ack(seq uint64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.dropLocked(seq)
	if err := os.Remove(filepath.Join(d.dir, entryName(seq))); err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("outbox: ack entry %d: %w", seq, err)
	}
	return nil
}

// SetProgress durably records per-update delivery progress for entry seq
// (tmp + rename, like entries, so a crash mid-write leaves the previous
// marker intact). Progress is a plain counter, not round material, so it
// is stored in plaintext.
func (d *Disk) SetProgress(seq uint64, done int) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if done <= 0 {
		return nil
	}
	path := filepath.Join(d.dir, progressName(seq))
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, []byte(fmt.Sprintf("%d\n", done)), 0o600); err != nil {
		return fmt.Errorf("outbox: write progress: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("outbox: commit progress: %w", err)
	}
	d.progress[seq] = done
	return nil
}

// Progress returns the recorded delivery progress of entry seq.
func (d *Disk) Progress(seq uint64) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.progress[seq]
}

// SenderID returns the queue's persisted sender identity.
func (d *Disk) SenderID() string { return d.sender }

// Quarantined counts entries set aside since (and found at) Open.
func (d *Disk) Quarantined() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.quarantined
}

// Quarantine renames an entry the downstream permanently rejected to its
// .bad name so delivery continues and the operator keeps the evidence.
func (d *Disk) Quarantine(seq uint64, reason error) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.quarantineLocked(seq)
	return nil
}

func (d *Disk) quarantineLocked(seq uint64) {
	d.dropLocked(seq)
	d.quarantined++
	path := filepath.Join(d.dir, entryName(seq))
	if err := os.Rename(path, path+quarantineSuffix); err != nil && !errors.Is(err, os.ErrNotExist) {
		// The entry could not even be set aside; remove it so the queue
		// is not wedged forever.
		os.Remove(path)
	}
}

func (d *Disk) dropLocked(seq uint64) {
	lane, tracked := d.laneOf[seq]
	if tracked {
		if h, ok := d.heads[lane]; ok && h.seq == seq {
			delete(d.heads, lane)
		}
		delete(d.laneOf, seq)
		for i, s := range d.lanes[lane] {
			if s == seq {
				d.lanes[lane] = append(d.lanes[lane][:i], d.lanes[lane][i+1:]...)
				break
			}
		}
		if len(d.lanes[lane]) == 0 {
			delete(d.lanes, lane)
		}
	}
	if _, ok := d.progress[seq]; ok {
		delete(d.progress, seq)
		os.Remove(filepath.Join(d.dir, progressName(seq)))
	}
	for i, s := range d.seqs {
		if s == seq {
			d.seqs = append(d.seqs[:i], d.seqs[i+1:]...)
			return
		}
	}
}

// Len counts entries awaiting delivery.
func (d *Disk) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.seqs)
}

// Memory is the in-memory queue used when no outbox directory is
// configured: delivery is still decoupled from ingress (and retried), but
// entries do not survive the process.
type Memory struct {
	sender string

	mu          sync.Mutex
	entries     map[uint64][]byte
	seqs        []uint64
	next        uint64
	laneOf      map[uint64]string
	lanes       map[string][]uint64
	quarantined int
	progress    map[uint64]int
}

// NewMemory builds an empty in-memory queue.
func NewMemory() *Memory {
	id, err := mintSenderID()
	if err != nil {
		// The system randomness source is broken; an empty sender id only
		// disables receiver-side aged-redelivery detection.
		id = ""
	}
	return &Memory{
		entries:  make(map[uint64][]byte),
		progress: make(map[uint64]int),
		laneOf:   make(map[uint64]string),
		lanes:    make(map[string][]uint64),
		sender:   id,
	}
}

// Put implements Queue.
func (m *Memory) Put(payload []byte) (uint64, error) {
	lane := LaneOf(payload)
	m.mu.Lock()
	defer m.mu.Unlock()
	seq := m.next
	m.next++
	m.entries[seq] = payload
	m.seqs = append(m.seqs, seq)
	m.laneOf[seq] = lane
	m.lanes[lane] = append(m.lanes[lane], seq)
	return seq, nil
}

// Next implements Queue.
func (m *Memory) Next() (uint64, []byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.seqs) == 0 {
		return 0, nil, ErrEmpty
	}
	seq := m.seqs[0]
	return seq, m.entries[seq], nil
}

// NextIn implements Queue.
func (m *Memory) NextIn(lane string) (uint64, []byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.lanes[lane]) == 0 {
		return 0, nil, ErrEmpty
	}
	seq := m.lanes[lane][0]
	return seq, m.entries[seq], nil
}

// Lanes implements Queue.
func (m *Memory) Lanes() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.lanes))
	for lane, seqs := range m.lanes {
		if len(seqs) > 0 {
			out = append(out, lane)
		}
	}
	sort.Strings(out)
	return out
}

// LaneLen implements Queue.
func (m *Memory) LaneLen(lane string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.lanes[lane])
}

// LaneLens implements Queue: every lane's depth under one lock
// acquisition.
func (m *Memory) LaneLens() map[string]int {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]int, len(m.lanes))
	for lane, seqs := range m.lanes {
		if len(seqs) > 0 {
			out[lane] = len(seqs)
		}
	}
	return out
}

// Ack implements Queue.
func (m *Memory) Ack(seq uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.dropLocked(seq)
	return nil
}

// Quarantine implements Queue (dropping the entry — there is no disk to
// keep evidence on — but still counting it for the operator surface).
func (m *Memory) Quarantine(seq uint64, reason error) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.dropLocked(seq)
	m.quarantined++
	return nil
}

// Quarantined implements Queue.
func (m *Memory) Quarantined() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.quarantined
}

// SetProgress implements Queue.
func (m *Memory) SetProgress(seq uint64, done int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if done > 0 {
		m.progress[seq] = done
	}
	return nil
}

// Progress implements Queue.
func (m *Memory) Progress(seq uint64) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.progress[seq]
}

// SenderID implements Queue.
func (m *Memory) SenderID() string { return m.sender }

func (m *Memory) dropLocked(seq uint64) {
	delete(m.entries, seq)
	delete(m.progress, seq)
	if lane, ok := m.laneOf[seq]; ok {
		delete(m.laneOf, seq)
		for i, s := range m.lanes[lane] {
			if s == seq {
				m.lanes[lane] = append(m.lanes[lane][:i], m.lanes[lane][i+1:]...)
				break
			}
		}
		if len(m.lanes[lane]) == 0 {
			delete(m.lanes, lane)
		}
	}
	for i, s := range m.seqs {
		if s == seq {
			m.seqs = append(m.seqs[:i], m.seqs[i+1:]...)
			return
		}
	}
}

// Len implements Queue.
func (m *Memory) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.seqs)
}
