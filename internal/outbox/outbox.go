// Package outbox implements the durable delivery queue between the MixNN
// proxy's round drains and its upstream forwarder. Once a shard tier
// drains a round, the mixed material has left the mixers; before this
// package existed a downstream outage mid-drain silently lost those
// updates and skewed the layer-wise mean the paper's equivalence argument
// depends on. The outbox closes that gap: a drained round is committed to
// disk as one sealed, versioned entry BEFORE any network send is
// attempted, and a background dispatcher (dispatcher.go) retries delivery
// with bounded backoff until the downstream acknowledges it.
//
// Like internal/core, the package is crypto-free: entries pass through
// caller-supplied Seal/Open funcs so the proxy can encrypt them under an
// enclave-derived key (enclave.SealLabeled) and nothing mixed ever rests
// on the untrusted host in plaintext. Tests run on nil funcs (plaintext).
//
// Disk layout: one file per entry, named ob-<seq>.ent with a
// zero-padded monotone sequence so lexical order is delivery order.
// Writes are tmp-file + rename (an entry is either fully present or
// absent); acknowledged entries are removed; entries that fail to open or
// parse are quarantined by rename to ob-<seq>.bad — consume-by-rename,
// like the proxy's sealed state blob — so the queue keeps draining past
// garbage while the evidence stays inspectable.
package outbox

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// SealFunc encrypts an entry before it touches disk (e.g. under an
// enclave-derived key). Nil stores entries in plaintext.
type SealFunc func(plain []byte) ([]byte, error)

// OpenFunc reverses SealFunc.
type OpenFunc func(sealed []byte) ([]byte, error)

// ErrEmpty is returned by Next when no deliverable entry remains.
var ErrEmpty = errors.New("outbox: empty")

// Queue is the delivery queue contract shared by the durable on-disk
// outbox and the in-memory variant: strictly ordered Put/Next/Ack with
// quarantine for undeliverable entries.
type Queue interface {
	// Put commits one entry and returns its sequence number. For the disk
	// queue the entry is durable (sealed, atomically renamed into place)
	// before Put returns.
	Put(payload []byte) (uint64, error)
	// Next returns the oldest entry, opened and parsed. Corrupt or
	// unopenable entries are quarantined and skipped so one bad entry
	// cannot wedge the queue. ErrEmpty when drained.
	Next() (uint64, []byte, error)
	// Ack consumes a delivered entry.
	Ack(seq uint64) error
	// Quarantine sets aside an entry the receiver permanently rejected.
	Quarantine(seq uint64, reason error) error
	// Len counts entries awaiting delivery.
	Len() int
}

// Envelope is the payload of one outbox entry: a whole drained round.
// Binary layout (little-endian), versioned so the format can evolve:
//
//	magic   [4]byte "MXOB"
//	version uint32 (currently 1)
//	epoch   uint64  round number the material belongs to
//	hop     uint32  cascade depth to stamp on delivery (watermark + 1)
//	count   uint32  updates in the round
//	per update: len uint32, bytes (an encoded nn.ParamSet — opaque here)
type Envelope struct {
	Epoch   uint64
	Hop     int
	Updates [][]byte
}

const (
	envelopeMagic = "MXOB"

	// EnvelopeVersion is the current entry format; ParseEnvelope rejects
	// entries from other versions.
	EnvelopeVersion = 1

	// maxEnvelopeUpdates bounds the updates one entry may claim (entries
	// cross the sealing boundary, so parse limits guard allocations).
	maxEnvelopeUpdates = 1 << 20
	// maxEnvelopeItemBytes bounds one encoded update inside an entry.
	maxEnvelopeItemBytes = 512 << 20
)

// Marshal encodes the envelope.
func (e *Envelope) Marshal() ([]byte, error) {
	if len(e.Updates) > maxEnvelopeUpdates {
		return nil, fmt.Errorf("outbox: %d updates exceed the per-entry limit", len(e.Updates))
	}
	if e.Hop < 0 {
		return nil, fmt.Errorf("outbox: negative hop %d", e.Hop)
	}
	var buf bytes.Buffer
	buf.WriteString(envelopeMagic)
	binary.Write(&buf, binary.LittleEndian, uint32(EnvelopeVersion))
	binary.Write(&buf, binary.LittleEndian, e.Epoch)
	binary.Write(&buf, binary.LittleEndian, uint32(e.Hop))
	binary.Write(&buf, binary.LittleEndian, uint32(len(e.Updates)))
	for i, u := range e.Updates {
		if len(u) > maxEnvelopeItemBytes {
			return nil, fmt.Errorf("outbox: update %d exceeds %d bytes", i, maxEnvelopeItemBytes)
		}
		binary.Write(&buf, binary.LittleEndian, uint32(len(u)))
		buf.Write(u)
	}
	return buf.Bytes(), nil
}

// ParseEnvelope decodes an entry payload, validating structure before
// allocating.
func ParseEnvelope(data []byte) (*Envelope, error) {
	r := bytes.NewReader(data)
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil || string(magic[:]) != envelopeMagic {
		return nil, fmt.Errorf("outbox: bad entry magic %q", magic)
	}
	var version, hop, count uint32
	var epoch uint64
	if err := binary.Read(r, binary.LittleEndian, &version); err != nil {
		return nil, fmt.Errorf("outbox: read entry version: %w", err)
	}
	if version != EnvelopeVersion {
		return nil, fmt.Errorf("outbox: entry version %d, want %d", version, EnvelopeVersion)
	}
	if err := binary.Read(r, binary.LittleEndian, &epoch); err != nil {
		return nil, fmt.Errorf("outbox: read entry epoch: %w", err)
	}
	if err := binary.Read(r, binary.LittleEndian, &hop); err != nil {
		return nil, fmt.Errorf("outbox: read entry hop: %w", err)
	}
	if err := binary.Read(r, binary.LittleEndian, &count); err != nil {
		return nil, fmt.Errorf("outbox: read entry count: %w", err)
	}
	if count > maxEnvelopeUpdates {
		return nil, fmt.Errorf("outbox: entry claims %d updates", count)
	}
	env := &Envelope{Epoch: epoch, Hop: int(hop), Updates: make([][]byte, 0, count)}
	for i := uint32(0); i < count; i++ {
		var n uint32
		if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
			return nil, fmt.Errorf("outbox: read update %d length: %w", i, err)
		}
		// uint64 comparisons: int(n) would go negative on 32-bit
		// platforms for adversarial lengths ≥ 2³¹ and bypass the bounds.
		if uint64(n) > maxEnvelopeItemBytes || uint64(n) > uint64(r.Len()) {
			return nil, fmt.Errorf("outbox: update %d length %d exceeds remaining bytes", i, n)
		}
		u := make([]byte, n)
		if _, err := io.ReadFull(r, u); err != nil {
			return nil, fmt.Errorf("outbox: read update %d: %w", i, err)
		}
		env.Updates = append(env.Updates, u)
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("outbox: %d trailing bytes after entry", r.Len())
	}
	return env, nil
}

// Disk is the durable on-disk queue.
type Disk struct {
	dir  string
	seal SealFunc
	open OpenFunc

	mu   sync.Mutex
	seqs []uint64 // pending sequence numbers, sorted ascending
	next uint64   // next sequence number to assign
	// head caches the opened payload of the queue head between retry
	// attempts (entries are immutable once written), so a long outage
	// does not re-read and re-decrypt the same round every backoff tick.
	headSeq     uint64
	headPayload []byte
}

const (
	entrySuffix      = ".ent"
	quarantineSuffix = ".bad"
)

func entryName(seq uint64) string { return fmt.Sprintf("ob-%016x%s", seq, entrySuffix) }

// Open opens (creating if needed) an outbox directory and indexes the
// entries a previous process left behind — that carry-over is what makes
// round delivery survive a crash.
func Open(dir string, seal SealFunc, open OpenFunc) (*Disk, error) {
	if err := os.MkdirAll(dir, 0o700); err != nil {
		return nil, fmt.Errorf("outbox: create dir: %w", err)
	}
	names, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("outbox: scan dir: %w", err)
	}
	d := &Disk{dir: dir, seal: seal, open: open}
	for _, de := range names {
		var seq uint64
		// Sscanf ignores trailing input, so require an exact round-trip of
		// the name — otherwise ob-N.ent.bad / ob-N.ent.tmp leftovers would
		// be indexed as phantom entries.
		if _, err := fmt.Sscanf(de.Name(), "ob-%016x"+entrySuffix, &seq); err != nil || de.Name() != entryName(seq) {
			continue // tmp files, quarantined entries, foreign files
		}
		d.seqs = append(d.seqs, seq)
		if seq >= d.next {
			d.next = seq + 1
		}
	}
	sort.Slice(d.seqs, func(i, j int) bool { return d.seqs[i] < d.seqs[j] })
	return d, nil
}

// Dir returns the outbox directory.
func (d *Disk) Dir() string { return d.dir }

// Put seals the payload and commits it via tmp-file + rename, so a crash
// or full disk mid-write cannot leave a truncated entry where a good one
// should be.
func (d *Disk) Put(payload []byte) (uint64, error) {
	if d.seal != nil {
		var err error
		if payload, err = d.seal(payload); err != nil {
			return 0, fmt.Errorf("outbox: seal entry: %w", err)
		}
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	seq := d.next
	path := filepath.Join(d.dir, entryName(seq))
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, payload, 0o600); err != nil {
		return 0, fmt.Errorf("outbox: write entry: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return 0, fmt.Errorf("outbox: commit entry: %w", err)
	}
	d.next = seq + 1
	d.seqs = append(d.seqs, seq)
	return seq, nil
}

// Next returns the oldest entry, opened. Entries that fail to read or
// unseal are quarantined and skipped, so the queue drains past garbage a
// corrupted disk (or an adversarial host) left in the directory.
func (d *Disk) Next() (uint64, []byte, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for len(d.seqs) > 0 {
		seq := d.seqs[0]
		if d.headPayload != nil && d.headSeq == seq {
			return seq, d.headPayload, nil
		}
		raw, err := os.ReadFile(filepath.Join(d.dir, entryName(seq)))
		if err == nil && d.open != nil {
			raw, err = d.open(raw)
		}
		if err != nil {
			d.quarantineLocked(seq)
			continue
		}
		d.headSeq, d.headPayload = seq, raw
		return seq, raw, nil
	}
	return 0, nil, ErrEmpty
}

// Ack consumes a delivered entry.
func (d *Disk) Ack(seq uint64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.dropLocked(seq)
	if err := os.Remove(filepath.Join(d.dir, entryName(seq))); err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("outbox: ack entry %d: %w", seq, err)
	}
	return nil
}

// Quarantine renames an entry the downstream permanently rejected to its
// .bad name so delivery continues and the operator keeps the evidence.
func (d *Disk) Quarantine(seq uint64, reason error) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.quarantineLocked(seq)
	return nil
}

func (d *Disk) quarantineLocked(seq uint64) {
	d.dropLocked(seq)
	path := filepath.Join(d.dir, entryName(seq))
	if err := os.Rename(path, path+quarantineSuffix); err != nil && !errors.Is(err, os.ErrNotExist) {
		// The entry could not even be set aside; remove it so the queue
		// is not wedged forever.
		os.Remove(path)
	}
}

func (d *Disk) dropLocked(seq uint64) {
	if d.headPayload != nil && d.headSeq == seq {
		d.headPayload = nil
	}
	for i, s := range d.seqs {
		if s == seq {
			d.seqs = append(d.seqs[:i], d.seqs[i+1:]...)
			return
		}
	}
}

// Len counts entries awaiting delivery.
func (d *Disk) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.seqs)
}

// Memory is the in-memory queue used when no outbox directory is
// configured: delivery is still decoupled from ingress (and retried), but
// entries do not survive the process.
type Memory struct {
	mu      sync.Mutex
	entries map[uint64][]byte
	seqs    []uint64
	next    uint64
}

// NewMemory builds an empty in-memory queue.
func NewMemory() *Memory {
	return &Memory{entries: make(map[uint64][]byte)}
}

// Put implements Queue.
func (m *Memory) Put(payload []byte) (uint64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	seq := m.next
	m.next++
	m.entries[seq] = payload
	m.seqs = append(m.seqs, seq)
	return seq, nil
}

// Next implements Queue.
func (m *Memory) Next() (uint64, []byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.seqs) == 0 {
		return 0, nil, ErrEmpty
	}
	seq := m.seqs[0]
	return seq, m.entries[seq], nil
}

// Ack implements Queue.
func (m *Memory) Ack(seq uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.dropLocked(seq)
	return nil
}

// Quarantine implements Queue (dropping the entry; there is no disk to
// keep evidence on).
func (m *Memory) Quarantine(seq uint64, reason error) error {
	return m.Ack(seq)
}

func (m *Memory) dropLocked(seq uint64) {
	delete(m.entries, seq)
	for i, s := range m.seqs {
		if s == seq {
			m.seqs = append(m.seqs[:i], m.seqs[i+1:]...)
			return
		}
	}
}

// Len implements Queue.
func (m *Memory) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.seqs)
}
