package outbox

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func testEnvelopeDest(epoch uint64, dest string, items ...string) []byte {
	env := Envelope{Epoch: epoch, Hop: 1, Dest: dest, TopoVersion: 1}
	for _, it := range items {
		env.Updates = append(env.Updates, []byte(it))
	}
	raw, err := env.Marshal()
	if err != nil {
		panic(err)
	}
	return raw
}

func TestDeliveryLaneOf(t *testing.T) {
	if lane := LaneOf(testEnvelopeDest(3, "http://peer-a", "u")); lane != "http://peer-a" {
		t.Fatalf("LaneOf = %q, want the envelope dest", lane)
	}
	if lane := LaneOf(testEnvelope(3, "u")); lane != "" {
		t.Fatalf("LaneOf of a destless envelope = %q, want \"\"", lane)
	}
	// v1 envelopes and non-envelope payloads carry no destination: both
	// must land in the default lane rather than error.
	if lane := LaneOf([]byte("not an envelope at all")); lane != "" {
		t.Fatalf("LaneOf of garbage = %q, want \"\"", lane)
	}
	if lane := LaneOf(nil); lane != "" {
		t.Fatalf("LaneOf(nil) = %q, want \"\"", lane)
	}
}

// TestDeliveryLaneQueueOrderAndRebuild drives the disk queue's lane
// partitioning: per-lane FIFO order, lane bookkeeping across Ack, and the
// lane index surviving a reopen (it is rebuilt from the envelope headers,
// not persisted separately).
func TestDeliveryLaneQueueOrderAndRebuild(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ob")
	q, err := Open(dir, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Interleave three lanes: "" (downstream), peer-a, peer-b.
	lanesIn := []string{"", "peer-a", "", "peer-b", "peer-a", ""}
	seqs := make([]uint64, len(lanesIn))
	for i, lane := range lanesIn {
		if seqs[i], err = q.Put(testEnvelopeDest(uint64(i), lane, fmt.Sprintf("u%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	wantLanes := []string{"", "peer-a", "peer-b"}
	gotLanes := q.Lanes()
	if len(gotLanes) != len(wantLanes) {
		t.Fatalf("Lanes() = %v, want %v", gotLanes, wantLanes)
	}
	for i := range wantLanes {
		if gotLanes[i] != wantLanes[i] {
			t.Fatalf("Lanes() = %v, want %v", gotLanes, wantLanes)
		}
	}
	if n := q.LaneLen("peer-a"); n != 2 {
		t.Fatalf("LaneLen(peer-a) = %d, want 2", n)
	}
	// NextIn must return peer-a's entries in Put order without consuming
	// the other lanes' heads.
	seq, payload, err := q.NextIn("peer-a")
	if err != nil {
		t.Fatal(err)
	}
	if seq != seqs[1] {
		t.Fatalf("peer-a head = seq %d, want %d", seq, seqs[1])
	}
	env, err := ParseEnvelope(payload)
	if err != nil {
		t.Fatal(err)
	}
	if env.Epoch != 1 {
		t.Fatalf("peer-a head epoch = %d, want 1", env.Epoch)
	}
	if err := q.Ack(seq); err != nil {
		t.Fatal(err)
	}
	if seq, _, err = q.NextIn("peer-a"); err != nil || seq != seqs[4] {
		t.Fatalf("peer-a next = seq %d err %v, want %d", seq, err, seqs[4])
	}
	// The downstream lane is untouched by peer-a's progress.
	if seq, _, err = q.NextIn(""); err != nil || seq != seqs[0] {
		t.Fatalf("downstream head = seq %d err %v, want %d", seq, err, seqs[0])
	}
	// A drained lane reports ErrEmpty, not another lane's entries.
	if err := q.Ack(seqs[4]); err != nil {
		t.Fatal(err)
	}
	if _, _, err := q.NextIn("peer-a"); !errors.Is(err, ErrEmpty) {
		t.Fatalf("drained lane error = %v, want ErrEmpty", err)
	}

	// Reopen: the lane index is rebuilt from disk. peer-a is gone (both
	// entries acked); the other lanes carry over in order.
	q2, err := Open(dir, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n := q2.LaneLen("peer-a"); n != 0 {
		t.Fatalf("reopened LaneLen(peer-a) = %d, want 0", n)
	}
	if n := q2.LaneLen(""); n != 3 {
		t.Fatalf("reopened LaneLen(\"\") = %d, want 3", n)
	}
	if seq, _, err := q2.NextIn("peer-b"); err != nil || seq != seqs[3] {
		t.Fatalf("reopened peer-b head = seq %d err %v, want %d", seq, err, seqs[3])
	}
	var drained []uint64
	for {
		seq, _, err := q2.NextIn("")
		if errors.Is(err, ErrEmpty) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		drained = append(drained, seq)
		if err := q2.Ack(seq); err != nil {
			t.Fatal(err)
		}
	}
	want := []uint64{seqs[0], seqs[2], seqs[5]}
	if len(drained) != len(want) {
		t.Fatalf("downstream drain = %v, want %v", drained, want)
	}
	for i := range want {
		if drained[i] != want[i] {
			t.Fatalf("downstream drain = %v, want %v", drained, want)
		}
	}
}

// TestDeliveryDispatcherLaneIsolation is the package-level half of the
// head-of-line-blocking fix: a lane whose destination is down keeps
// failing while every other lane drains to completion, and the dead
// lane's backlog delivers in order once the destination recovers.
func TestDeliveryDispatcherLaneIsolation(t *testing.T) {
	q := NewMemory()
	var (
		mu        sync.Mutex
		dead      = true
		delivered = map[string][]uint64{}
	)
	d := NewDispatcher(q, func(ctx context.Context, seq uint64, payload []byte) error {
		env, err := ParseEnvelope(payload)
		if err != nil {
			return Permanent(err)
		}
		mu.Lock()
		defer mu.Unlock()
		if env.Dest == "dead-peer" && dead {
			return errors.New("connection refused")
		}
		delivered[env.Dest] = append(delivered[env.Dest], seq)
		return nil
	}, Options{RetryBase: time.Millisecond, RetryMax: 4 * time.Millisecond, Workers: 3})
	d.Start()
	defer d.Close()

	// Three epochs, each committing one entry per destination — the dead
	// peer's entries land BETWEEN healthy entries in global seq order, so
	// a single global queue would wedge behind the first one.
	for epoch := uint64(0); epoch < 3; epoch++ {
		for _, dest := range []string{"", "dead-peer", "healthy-peer"} {
			if _, err := q.Put(testEnvelopeDest(epoch, dest, "u")); err != nil {
				t.Fatal(err)
			}
		}
		d.Wake()
	}

	// Healthy lanes must drain while the dead lane still holds all 3.
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		done := len(delivered[""]) == 3 && len(delivered["healthy-peer"]) == 3
		mu.Unlock()
		if done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("healthy lanes did not drain while a peer was down")
		}
		time.Sleep(time.Millisecond)
	}
	if n := q.LaneLen("dead-peer"); n != 3 {
		t.Fatalf("dead lane holds %d entries, want 3", n)
	}
	var deadStat *LaneStat
	for _, ls := range d.LaneStats() {
		if ls.Lane == "dead-peer" {
			cp := ls
			deadStat = &cp
		} else if ls.Backoff != 0 {
			t.Fatalf("healthy lane %q reports backoff %v, want 0", ls.Lane, ls.Backoff)
		}
	}
	if deadStat == nil || deadStat.Failures == 0 {
		t.Fatalf("dead lane stat = %+v, want recorded failures", deadStat)
	}

	// Recovery: the parked backlog drains, in per-lane order.
	mu.Lock()
	dead = false
	mu.Unlock()
	d.Wake()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := d.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	for dest, seqs := range delivered {
		if len(seqs) != 3 {
			t.Fatalf("lane %q delivered %v, want 3 entries", dest, seqs)
		}
		for i := 1; i < len(seqs); i++ {
			if seqs[i] < seqs[i-1] {
				t.Fatalf("lane %q delivered out of order: %v", dest, seqs)
			}
		}
	}
}

// TestDeliveryDispatcherWorkerCap pins the pool bound: with W workers and
// more lanes than workers, at most W deliveries run concurrently, and
// every lane still drains.
func TestDeliveryDispatcherWorkerCap(t *testing.T) {
	q := NewMemory()
	var inFlight, peak, total atomic.Int64
	d := NewDispatcher(q, func(ctx context.Context, seq uint64, payload []byte) error {
		n := inFlight.Add(1)
		defer inFlight.Add(-1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(2 * time.Millisecond)
		total.Add(1)
		return nil
	}, Options{RetryBase: time.Millisecond, RetryMax: 2 * time.Millisecond, Workers: 2})
	d.Start()
	defer d.Close()
	for i := 0; i < 6; i++ {
		if _, err := q.Put(testEnvelopeDest(0, fmt.Sprintf("peer-%d", i), "u")); err != nil {
			t.Fatal(err)
		}
	}
	d.Wake()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := d.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if got := total.Load(); got != 6 {
		t.Fatalf("delivered %d entries, want 6", got)
	}
	if p := peak.Load(); p > 2 {
		t.Fatalf("peak concurrency %d exceeds the 2-worker pool", p)
	}
}

// TestDeliveryDispatcherBackoffJitter pins the thundering-herd fix: the
// retry delay is spread over [backoff/2, backoff] and actually varies,
// instead of every proxy of a tier retrying a recovered downstream at the
// exact same deterministic instant.
func TestDeliveryDispatcherBackoffJitter(t *testing.T) {
	const backoff = 100 * time.Millisecond
	seen := map[time.Duration]bool{}
	for i := 0; i < 200; i++ {
		delay := jitter(backoff)
		if delay < backoff/2 || delay > backoff {
			t.Fatalf("jitter(%v) = %v, want within [%v, %v]", backoff, delay, backoff/2, backoff)
		}
		seen[delay] = true
	}
	if len(seen) < 2 {
		t.Fatal("jitter produced a single deterministic delay across 200 draws")
	}
	// Degenerate backoffs must not panic or zero out.
	if d := jitter(1); d != 1 {
		t.Fatalf("jitter(1ns) = %v, want passthrough", d)
	}
}

// TestDeliveryDispatcherTimeoutClamp pins the -delivery-timeout contract:
// the per-attempt ceiling is configurable but never shorter than the
// retry backoff ceiling, and zero means the default.
func TestDeliveryDispatcherTimeoutClamp(t *testing.T) {
	nop := func(ctx context.Context, seq uint64, payload []byte) error { return nil }
	d := NewDispatcher(NewMemory(), nop, Options{RetryMax: 10 * time.Second, AttemptTimeout: time.Second})
	if d.attemptTimeout != 10*time.Second {
		t.Fatalf("attempt timeout %v not clamped to the %v backoff ceiling", d.attemptTimeout, 10*time.Second)
	}
	d = NewDispatcher(NewMemory(), nop, Options{})
	if d.attemptTimeout != DefaultAttemptTimeout {
		t.Fatalf("default attempt timeout = %v, want %v", d.attemptTimeout, DefaultAttemptTimeout)
	}
	d = NewDispatcher(NewMemory(), nop, Options{RetryMax: time.Second, AttemptTimeout: 90 * time.Second})
	if d.attemptTimeout != 90*time.Second {
		t.Fatalf("explicit attempt timeout %v not honoured", d.attemptTimeout)
	}
	d.Close()
}
