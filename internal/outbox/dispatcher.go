package outbox

import (
	"context"
	"errors"
	"fmt"
	"log"
	"math/rand"
	"sort"
	"sync"
	"time"
)

// DeliverFunc attempts delivery of one opened entry. Returning nil
// acknowledges (consumes) the entry. A PermanentError quarantines it —
// the downstream rejected the entry and retrying cannot help. Any other
// error is transient: the entry stays queued and is retried with backoff.
type DeliverFunc func(ctx context.Context, seq uint64, payload []byte) error

// PermanentError marks a delivery failure retrying cannot fix (e.g. the
// downstream returned 4xx). The dispatcher quarantines the entry instead
// of retrying it forever.
type PermanentError struct{ Err error }

func (e *PermanentError) Error() string { return fmt.Sprintf("outbox: permanent: %v", e.Err) }
func (e *PermanentError) Unwrap() error { return e.Err }

// Permanent wraps err as a PermanentError.
func Permanent(err error) error { return &PermanentError{Err: err} }

// Default bounds for the dispatcher's knobs when the caller does not
// override them.
const (
	DefaultRetryBase      = 50 * time.Millisecond
	DefaultRetryMax       = 5 * time.Second
	DefaultWorkers        = 4
	DefaultAttemptTimeout = 60 * time.Second
)

// Options configures a Dispatcher. Zero values take the defaults above.
type Options struct {
	// RetryBase is a lane's first retry delay after a transient failure;
	// RetryMax is its backoff ceiling (doubling in between, jittered).
	RetryBase time.Duration
	RetryMax  time.Duration
	// Workers bounds how many lanes deliver concurrently. One lane is
	// only ever drained by one worker at a time, so per-lane ordering
	// holds for any worker count.
	Workers int
	// AttemptTimeout bounds one delivery attempt. It is clamped to at
	// least RetryMax: an attempt ceiling shorter than the backoff ceiling
	// would cancel slow-but-succeeding sends only to wait even longer
	// before retrying them.
	AttemptTimeout time.Duration
}

// laneState is the dispatcher's retry book-keeping for one lane.
type laneState struct {
	busy      bool          // a worker currently owns this lane
	backoff   time.Duration // delay the last failure scheduled (0 = healthy)
	notBefore time.Time     // next attempt is gated until this instant
	delivered uint64        // entries acknowledged on this lane
	failures  uint64        // transient delivery failures on this lane
}

// LaneStat is a point-in-time snapshot of one lane, for status surfaces.
type LaneStat struct {
	// Lane is the envelope destination ("" = the tier's downstream).
	Lane      string
	Pending   int           // entries awaiting delivery
	InFlight  bool          // a worker is draining the lane right now
	Backoff   time.Duration // current retry delay (0 when healthy)
	NextRetry time.Duration // time until the next gated attempt (0 = none)
	Delivered uint64        // entries acknowledged since Start
	Failures  uint64        // transient failures since Start
}

// Dispatcher drains a Queue through a DeliverFunc using a pool of
// workers, one independent delivery lane per envelope destination. It is
// the background half of the delivery pipeline: ingress commits rounds to
// the queue and returns immediately; the dispatcher owns every retry.
// Each lane keeps its own jittered exponential backoff, so a dead peer's
// lane parks itself between retries while every other lane keeps
// delivering — a partial failure degrades one destination, not the tier.
type Dispatcher struct {
	q              Queue
	deliver        DeliverFunc
	base           time.Duration // first retry delay
	max            time.Duration // backoff ceiling
	workers        int
	attemptTimeout time.Duration

	// ctx is the dispatcher's lifetime: every delivery attempt derives
	// its per-attempt timeout from it, so Close can abort an attempt
	// still hung after closeGrace instead of waiting out the full
	// attempt timeout against a dead peer.
	ctx    context.Context
	cancel context.CancelFunc

	wake    chan struct{}
	stop    chan struct{}
	done    chan struct{}
	jobs    chan string
	results chan laneResult
	wg      sync.WaitGroup

	mu       sync.Mutex
	lanes    map[string]*laneState
	inFlight int // lanes handed to workers and not yet reported back
	started  bool
}

// laneResult is a worker's report after releasing a lane. Deliveries
// are not carried here: drainLane counts each ack into the lane's
// state as it happens, so status snapshots stay live mid-drain.
type laneResult struct {
	lane   string
	failed bool // pass ended on a transient failure (back the lane off)
}

// NewDispatcher builds a dispatcher over q. Call Start to begin draining.
func NewDispatcher(q Queue, deliver DeliverFunc, opts Options) *Dispatcher {
	base, max := opts.RetryBase, opts.RetryMax
	if base <= 0 {
		base = DefaultRetryBase
	}
	if max <= 0 {
		max = DefaultRetryMax
	}
	if max < base {
		max = base
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = DefaultWorkers
	}
	timeout := opts.AttemptTimeout
	if timeout <= 0 {
		timeout = DefaultAttemptTimeout
	}
	if timeout < max {
		timeout = max
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Dispatcher{
		q: q, deliver: deliver, base: base, max: max,
		workers: workers, attemptTimeout: timeout,
		ctx: ctx, cancel: cancel,
		wake:    make(chan struct{}, 1),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
		jobs:    make(chan string, workers),
		results: make(chan laneResult, workers),
		lanes:   make(map[string]*laneState),
	}
}

// Start launches the coordinator and the worker pool.
func (d *Dispatcher) Start() {
	d.mu.Lock()
	if d.started {
		d.mu.Unlock()
		return
	}
	d.started = true
	d.mu.Unlock()
	for i := 0; i < d.workers; i++ {
		d.wg.Add(1)
		go d.worker()
	}
	go d.loop()
}

// Wake nudges the dispatcher after a Put (or after new routing state,
// e.g. a remote key registration, may have unblocked a stalled lane):
// every lane's backoff gate is lifted so the fresh state is tried
// immediately instead of at the next backoff tick.
func (d *Dispatcher) Wake() {
	d.mu.Lock()
	for _, st := range d.lanes {
		st.notBefore = time.Time{}
	}
	d.mu.Unlock()
	select {
	case d.wake <- struct{}{}:
	default:
	}
}

// closeGrace is how long Close lets an in-flight delivery attempt run
// before cancelling it. The two failure modes it balances: an attempt
// that already reached its peer but has not yet recorded progress must
// be allowed to finish — cancelling it loses the ack and the entry
// redelivers (double-counting at receivers without dedup) after a
// restart; an attempt hung on a dead peer must NOT hold shutdown for
// the full attempt timeout. A real in-flight response completes in
// milliseconds; only a blackholed connection is still going after a
// second, and aborting that one is safe (nothing was acked).
const closeGrace = time.Second

// Close stops the coordinator and workers and waits for them to
// return. In-flight delivery attempts get closeGrace to complete
// cleanly; attempts still running after that are cancelled via the
// dispatcher-lifetime context every attempt derives from. Queued
// entries stay queued (on disk for a durable queue) for the next
// process; a cancelled attempt's entry was never acked, so it
// redelivers.
func (d *Dispatcher) Close() {
	d.mu.Lock()
	if !d.started {
		d.started = true // a never-started dispatcher just closes its channels
		close(d.done)
		d.mu.Unlock()
		d.cancel()
		return
	}
	select {
	case <-d.stop:
		d.mu.Unlock()
		<-d.done
		d.joinWorkers()
		return
	default:
	}
	close(d.stop)
	d.mu.Unlock()
	<-d.done
	d.joinWorkers()
}

// joinWorkers waits for the worker pool: a grace period first, so an
// attempt that is mid-response can finish and record its progress,
// then the lifetime context is cancelled to abort attempts that are
// actually hung.
func (d *Dispatcher) joinWorkers() {
	defer d.cancel() // release the lifetime context either way
	workersDone := make(chan struct{})
	go func() { d.wg.Wait(); close(workersDone) }()
	select {
	case <-workersDone:
		return
	case <-time.After(closeGrace):
	}
	d.cancel()
	<-workersDone
}

// Flush blocks until the queue is empty and no delivery is in flight, or
// ctx expires. It is the test/shutdown helper for "everything the tier
// drained has reached the downstream".
func (d *Dispatcher) Flush(ctx context.Context) error {
	tick := time.NewTicker(2 * time.Millisecond)
	defer tick.Stop()
	for {
		d.mu.Lock()
		idle := d.inFlight == 0
		d.mu.Unlock()
		if idle && d.q.Len() == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("outbox: flush: %d entries still pending: %w", d.q.Len(), ctx.Err())
		case <-tick.C:
		}
	}
}

// LaneStats snapshots every lane the dispatcher knows about — lanes with
// pending entries plus lanes that delivered or failed since Start. The
// per-lane depths come from ONE queue snapshot (a single lock
// acquisition), so they are mutually consistent and sum to the queue's
// total at that instant — polling them under load used to read each
// lane's depth separately, racing the workers' acks in between, and
// could report totals no single moment ever held.
// Backlog reports the delivery backlog as two cheap scalars: total
// pending entries across all lanes and the deepest single lane. It is
// the admission gate's signal accessor — called on the ingress hot path
// at snapshot cadence, so it skips LaneStats' per-lane time math and
// sorted assembly.
func (d *Dispatcher) Backlog() (pending, maxLane int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, n := range d.q.LaneLens() {
		pending += n
		if n > maxLane {
			maxLane = n
		}
	}
	return pending, maxLane
}

func (d *Dispatcher) LaneStats() []LaneStat {
	now := time.Now()
	d.mu.Lock()
	defer d.mu.Unlock()
	// The depth snapshot is taken while holding d.mu (the same
	// mu-then-queue order loop uses): delivered counters bump under
	// d.mu just before each ack, so reading depths outside the lock
	// let workers ack entries between the two reads — entries then
	// counted as both Pending and Delivered in one snapshot.
	depths := d.q.LaneLens()
	seen := make(map[string]bool, len(depths)+len(d.lanes))
	names := make([]string, 0, len(depths)+len(d.lanes))
	for lane := range depths {
		if !seen[lane] {
			seen[lane] = true
			names = append(names, lane)
		}
	}
	for lane := range d.lanes {
		if !seen[lane] {
			seen[lane] = true
			names = append(names, lane)
		}
	}
	sort.Strings(names)
	out := make([]LaneStat, 0, len(names))
	for _, lane := range names {
		stat := LaneStat{Lane: lane, Pending: depths[lane]}
		if st := d.lanes[lane]; st != nil {
			stat.InFlight = st.busy
			stat.Backoff = st.backoff
			stat.Delivered = st.delivered
			stat.Failures = st.failures
			if wait := st.notBefore.Sub(now); wait > 0 {
				stat.NextRetry = wait
			}
		}
		out = append(out, stat)
	}
	return out
}

// loop is the coordinator: it hands eligible lanes to workers, applies
// each worker's verdict to the lane's backoff state, and sleeps until the
// earliest gated retry (or a wake) when nothing is runnable.
func (d *Dispatcher) loop() {
	defer close(d.done)
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		now := time.Now()
		var nextGate time.Time
		d.mu.Lock()
		for _, lane := range d.q.Lanes() {
			if d.inFlight >= d.workers {
				break
			}
			st := d.lanes[lane]
			if st == nil {
				st = &laneState{}
				d.lanes[lane] = st
			}
			if st.busy {
				continue
			}
			if now.Before(st.notBefore) {
				if nextGate.IsZero() || st.notBefore.Before(nextGate) {
					nextGate = st.notBefore
				}
				continue
			}
			st.busy = true
			d.inFlight++
			// Never blocks: jobs is buffered to the worker count and
			// inFlight < workers guarantees a free slot.
			d.jobs <- lane
		}
		d.mu.Unlock()

		var timerC <-chan time.Time
		if !nextGate.IsZero() {
			timer.Reset(time.Until(nextGate))
			timerC = timer.C
		}
		select {
		case <-d.stop:
			return
		case <-d.wake:
		case res := <-d.results:
			d.settle(res)
		case <-timerC:
			timerC = nil
		}
		if timerC != nil && !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
	}
}

// settle applies a worker's report to the lane's retry state.
func (d *Dispatcher) settle(res laneResult) {
	d.mu.Lock()
	defer d.mu.Unlock()
	st := d.lanes[res.lane]
	if st == nil {
		return
	}
	st.busy = false
	d.inFlight--
	if !res.failed {
		st.backoff = 0
		st.notBefore = time.Time{}
		return
	}
	st.failures++
	if st.backoff <= 0 {
		st.backoff = d.base
	} else {
		st.backoff *= 2
		if st.backoff > d.max {
			st.backoff = d.max
		}
	}
	st.notBefore = time.Now().Add(jitter(st.backoff))
}

// jitter spreads a retry delay over [backoff/2, backoff]. The doubling
// schedule itself stays deterministic; the jitter decorrelates the
// proxies of a tier so a recovered downstream is not hit by every proxy's
// retry in lockstep (each proxy failed at the same moment the downstream
// went away, so un-jittered deterministic backoff synchronises the herd).
func jitter(backoff time.Duration) time.Duration {
	half := backoff / 2
	if half <= 0 {
		return backoff
	}
	return half + time.Duration(rand.Int63n(int64(half)+1))
}

// worker takes lane assignments from the coordinator, drains each as far
// as it will go, and reports the outcome.
func (d *Dispatcher) worker() {
	defer d.wg.Done()
	for {
		select {
		case <-d.stop:
			return
		case lane := <-d.jobs:
			res := d.drainLane(lane)
			select {
			case d.results <- res:
			case <-d.stop:
				return
			}
		}
	}
}

// drainLane delivers a lane's entries head-first until the lane is empty,
// a transient failure parks it, or the dispatcher stops. Permanent
// rejections quarantine the entry and the drain continues — one poisoned
// round must not park the lane behind it.
func (d *Dispatcher) drainLane(lane string) laneResult {
	res := laneResult{lane: lane}
	for {
		select {
		case <-d.stop:
			return res
		default:
		}
		seq, payload, err := d.q.NextIn(lane)
		if errors.Is(err, ErrEmpty) {
			return res
		}
		if err != nil {
			// Queue-level read failure with entries still indexed; back
			// off rather than spin.
			res.failed = true
			return res
		}
		// Derive the attempt from the dispatcher's lifetime, not
		// context.Background(): Close cancels d.ctx, so shutdown aborts a
		// hung attempt instead of waiting out attemptTimeout.
		ctx, cancel := context.WithTimeout(d.ctx, d.attemptTimeout)
		deliverErr := d.deliver(ctx, seq, payload)
		cancel()
		var perm *PermanentError
		switch {
		case deliverErr == nil:
			// Count the delivery BEFORE the ack removes the entry, under
			// d.mu, so a concurrent LaneStats never sees an entry vanish
			// from Pending without having appeared in Delivered (settle
			// reporting at lane release left a whole drain pass torn).
			d.mu.Lock()
			if st := d.lanes[lane]; st != nil {
				st.delivered++
			}
			d.mu.Unlock()
			d.q.Ack(seq)
		case errors.As(deliverErr, &perm):
			// Quarantining loses the entry from the delivery path; that
			// must never be silent.
			log.Printf("outbox: entry %d quarantined: %v", seq, deliverErr)
			d.q.Quarantine(seq, deliverErr)
		default:
			res.failed = true
			return res
		}
	}
}
