package outbox

import (
	"context"
	"errors"
	"fmt"
	"log"
	"sync"
	"time"
)

// DeliverFunc attempts delivery of one opened entry. Returning nil
// acknowledges (consumes) the entry. A PermanentError quarantines it —
// the downstream rejected the entry and retrying cannot help. Any other
// error is transient: the entry stays queued and is retried with backoff.
type DeliverFunc func(ctx context.Context, seq uint64, payload []byte) error

// PermanentError marks a delivery failure retrying cannot fix (e.g. the
// downstream returned 4xx). The dispatcher quarantines the entry instead
// of retrying it forever.
type PermanentError struct{ Err error }

func (e *PermanentError) Error() string { return fmt.Sprintf("outbox: permanent: %v", e.Err) }
func (e *PermanentError) Unwrap() error { return e.Err }

// Permanent wraps err as a PermanentError.
func Permanent(err error) error { return &PermanentError{Err: err} }

// Dispatcher drains a Queue in sequence order through a DeliverFunc with
// bounded exponential backoff. It is the background half of the delivery
// pipeline: ingress commits rounds to the queue and returns immediately;
// the dispatcher owns every retry, so a downstream outage never blocks
// (or loses) mixing.
type Dispatcher struct {
	q       Queue
	deliver DeliverFunc
	base    time.Duration // first retry delay
	max     time.Duration // backoff ceiling

	wake chan struct{}
	stop chan struct{}
	done chan struct{}

	mu       sync.Mutex
	inFlight bool
	started  bool
}

// DefaultRetryBase and DefaultRetryMax bound the dispatcher's backoff
// when the caller does not override them.
const (
	DefaultRetryBase = 50 * time.Millisecond
	DefaultRetryMax  = 5 * time.Second
)

// NewDispatcher builds a dispatcher over q. base/max bound the retry
// backoff (zero values take the defaults). Call Start to begin draining.
func NewDispatcher(q Queue, deliver DeliverFunc, base, max time.Duration) *Dispatcher {
	if base <= 0 {
		base = DefaultRetryBase
	}
	if max <= 0 {
		max = DefaultRetryMax
	}
	if max < base {
		max = base
	}
	return &Dispatcher{
		q: q, deliver: deliver, base: base, max: max,
		wake: make(chan struct{}, 1),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
}

// Start launches the drain loop.
func (d *Dispatcher) Start() {
	d.mu.Lock()
	if d.started {
		d.mu.Unlock()
		return
	}
	d.started = true
	d.mu.Unlock()
	go d.loop()
}

// Wake nudges the dispatcher after a Put so a fresh entry is tried
// immediately instead of at the next backoff tick.
func (d *Dispatcher) Wake() {
	select {
	case d.wake <- struct{}{}:
	default:
	}
}

// Close stops the drain loop and waits for any in-flight delivery attempt
// to return. Queued entries stay queued (on disk for a durable queue) for
// the next process.
func (d *Dispatcher) Close() {
	d.mu.Lock()
	if !d.started {
		d.started = true // a never-started dispatcher just closes its channels
		close(d.done)
		d.mu.Unlock()
		return
	}
	select {
	case <-d.stop:
		d.mu.Unlock()
		<-d.done
		return
	default:
	}
	close(d.stop)
	d.mu.Unlock()
	<-d.done
}

// Flush blocks until the queue is empty and no delivery is in flight, or
// ctx expires. It is the test/shutdown helper for "everything the tier
// drained has reached the downstream".
func (d *Dispatcher) Flush(ctx context.Context) error {
	tick := time.NewTicker(2 * time.Millisecond)
	defer tick.Stop()
	for {
		d.mu.Lock()
		idle := !d.inFlight
		d.mu.Unlock()
		if idle && d.q.Len() == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("outbox: flush: %d entries still pending: %w", d.q.Len(), ctx.Err())
		case <-tick.C:
		}
	}
}

func (d *Dispatcher) loop() {
	defer close(d.done)
	backoff := d.base
	for {
		select {
		case <-d.stop:
			return
		default:
		}
		seq, payload, err := d.q.Next()
		if errors.Is(err, ErrEmpty) {
			backoff = d.base
			select {
			case <-d.stop:
				return
			case <-d.wake:
			}
			continue
		}
		if err != nil {
			// Queue-level read failure with entries still indexed; back
			// off rather than spin.
			if !d.sleep(backoff) {
				return
			}
			backoff = d.bump(backoff)
			continue
		}

		d.mu.Lock()
		d.inFlight = true
		d.mu.Unlock()
		ctx, cancel := context.WithTimeout(context.Background(), deliveryTimeout)
		deliverErr := d.deliver(ctx, seq, payload)
		cancel()
		d.mu.Lock()
		d.inFlight = false
		d.mu.Unlock()

		var perm *PermanentError
		switch {
		case deliverErr == nil:
			d.q.Ack(seq)
			backoff = d.base
		case errors.As(deliverErr, &perm):
			// Quarantining loses the entry from the delivery path; that
			// must never be silent.
			log.Printf("outbox: entry %d quarantined: %v", seq, deliverErr)
			d.q.Quarantine(seq, deliverErr)
			backoff = d.base
		default:
			if !d.sleep(backoff) {
				return
			}
			backoff = d.bump(backoff)
		}
	}
}

// deliveryTimeout bounds one delivery attempt; the dispatcher's retry
// loop is the only other cancellation delivery has.
const deliveryTimeout = 60 * time.Second

func (d *Dispatcher) bump(backoff time.Duration) time.Duration {
	backoff *= 2
	if backoff > d.max {
		backoff = d.max
	}
	return backoff
}

// sleep waits for the backoff, a wake (fresh entry — retry immediately),
// or shutdown. Returns false when the dispatcher should exit.
func (d *Dispatcher) sleep(backoff time.Duration) bool {
	t := time.NewTimer(backoff)
	defer t.Stop()
	select {
	case <-d.stop:
		return false
	case <-d.wake:
		return true
	case <-t.C:
		return true
	}
}
