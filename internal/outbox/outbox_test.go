package outbox

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func testEnvelope(epoch uint64, items ...string) []byte {
	env := Envelope{Epoch: epoch, Hop: 1}
	for _, it := range items {
		env.Updates = append(env.Updates, []byte(it))
	}
	raw, err := env.Marshal()
	if err != nil {
		panic(err)
	}
	return raw
}

func TestDeliveryEnvelopeRoundTrip(t *testing.T) {
	raw := testEnvelope(7, "alpha", "beta", "")
	env, err := ParseEnvelope(raw)
	if err != nil {
		t.Fatal(err)
	}
	if env.Epoch != 7 || env.Hop != 1 || len(env.Updates) != 3 {
		t.Fatalf("parsed envelope = %+v", env)
	}
	if string(env.Updates[0]) != "alpha" || string(env.Updates[1]) != "beta" || len(env.Updates[2]) != 0 {
		t.Fatalf("updates = %q", env.Updates)
	}
}

func TestDeliveryEnvelopeRejectsGarbage(t *testing.T) {
	good := testEnvelope(1, "payload")
	cases := map[string][]byte{
		"empty":       {},
		"bad magic":   append([]byte("ZZZZ"), good[4:]...),
		"bad version": func() []byte { b := append([]byte(nil), good...); b[4] = 0xEE; return b }(),
		"truncated":   good[:len(good)-3],
		"trailing":    append(append([]byte(nil), good...), 0x01),
		"forged count": func() []byte {
			b := append([]byte(nil), good...)
			// count sits after magic(4)+version(4)+epoch(8)+topoVer(8)+
			// hop(4)+destLen(2)+dest(0)
			b[30], b[31], b[32], b[33] = 0xFF, 0xFF, 0x0F, 0x00
			return b
		}(),
		"forged dest length": func() []byte {
			b := append([]byte(nil), good...)
			// destLen sits after magic(4)+version(4)+epoch(8)+topoVer(8)+hop(4)
			b[28], b[29] = 0xFF, 0xFF
			return b
		}(),
	}
	for name, data := range cases {
		if _, err := ParseEnvelope(data); err == nil {
			t.Fatalf("%s accepted", name)
		}
	}
}

// xorSeal is a stand-in for the enclave sealing hook: enough to prove the
// queue round-trips through Seal/Open and that a foreign-keyed entry is
// rejected at open time.
func xorSeal(key byte) (SealFunc, OpenFunc) {
	xor := func(data []byte) ([]byte, error) {
		out := make([]byte, len(data)+1)
		for i, b := range data {
			out[i] = b ^ key
		}
		out[len(data)] = key // trailing "tag" so the wrong key fails loudly
		return out, nil
	}
	open := func(data []byte) ([]byte, error) {
		if len(data) == 0 || data[len(data)-1] != key {
			return nil, errors.New("xorSeal: authentication failed")
		}
		out := make([]byte, len(data)-1)
		for i := range out {
			out[i] = data[i] ^ key
		}
		return out, nil
	}
	return xor, open
}

func TestDeliveryDiskQueueOrderAndPersistence(t *testing.T) {
	dir := t.TempDir()
	seal, open := xorSeal(0x5A)
	q, err := Open(dir, seal, open)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := q.Put(testEnvelope(uint64(i), fmt.Sprintf("round-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if q.Len() != 3 {
		t.Fatalf("len = %d, want 3", q.Len())
	}
	seq, raw, err := q.Next()
	if err != nil {
		t.Fatal(err)
	}
	env, err := ParseEnvelope(raw)
	if err != nil {
		t.Fatal(err)
	}
	if env.Epoch != 0 {
		t.Fatalf("first entry epoch = %d, want 0 (FIFO)", env.Epoch)
	}
	if err := q.Ack(seq); err != nil {
		t.Fatal(err)
	}

	// A fresh process over the same directory sees the remaining entries
	// in order and continues the sequence — crash durability.
	q2, err := Open(dir, seal, open)
	if err != nil {
		t.Fatal(err)
	}
	if q2.Len() != 2 {
		t.Fatalf("reopened len = %d, want 2", q2.Len())
	}
	_, raw, err = q2.Next()
	if err != nil {
		t.Fatal(err)
	}
	if env, _ := ParseEnvelope(raw); env.Epoch != 1 {
		t.Fatalf("reopened head epoch = %d, want 1", env.Epoch)
	}
	if seq, err := q2.Put(testEnvelope(9)); err != nil || seq != 3 {
		t.Fatalf("reopened Put seq = %d (%v), want 3", seq, err)
	}
}

// TestDeliveryDiskQueueGarbageRobustness is the outbox half of the
// garbage-robustness satellite: truncated, bit-flipped and foreign-keyed
// entries are quarantined (renamed, not deleted) and the queue keeps
// draining the good ones.
func TestDeliveryDiskQueueGarbageRobustness(t *testing.T) {
	dir := t.TempDir()
	seal, open := xorSeal(0x21)
	q, err := Open(dir, seal, open)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Put(testEnvelope(0, "good-0")); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Put(testEnvelope(1, "sacrificial")); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Put(testEnvelope(2, "good-2")); err != nil {
		t.Fatal(err)
	}

	// Corrupt entry 1 on disk: flip a byte inside the sealed payload.
	path := filepath.Join(dir, entryName(1))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xFF
	raw[len(raw)-1] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o600); err != nil {
		t.Fatal(err)
	}
	// Plant a truncated entry and a foreign-keyed entry ahead of the tail.
	foreignSeal, _ := xorSeal(0x99)
	foreign, _ := foreignSeal(testEnvelope(3, "foreign"))
	if err := os.WriteFile(filepath.Join(dir, entryName(3)), foreign, 0o600); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, entryName(4)), []byte{0x01}, 0o600); err != nil {
		t.Fatal(err)
	}

	// Reopen (as a restarted proxy would) so the planted files are indexed.
	q, err = Open(dir, seal, open)
	if err != nil {
		t.Fatal(err)
	}
	var epochs []uint64
	for {
		seq, raw, err := q.Next()
		if errors.Is(err, ErrEmpty) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		env, err := ParseEnvelope(raw)
		if err != nil {
			t.Fatalf("Next returned an unparseable entry: %v", err)
		}
		epochs = append(epochs, env.Epoch)
		if err := q.Ack(seq); err != nil {
			t.Fatal(err)
		}
	}
	if len(epochs) != 2 || epochs[0] != 0 || epochs[1] != 2 {
		t.Fatalf("drained epochs %v, want [0 2] (corrupt entries skipped)", epochs)
	}
	// The rejects were quarantined by rename, not deleted.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	bad := 0
	for _, de := range entries {
		if strings.HasSuffix(de.Name(), quarantineSuffix) {
			bad++
		}
	}
	if bad != 3 {
		t.Fatalf("%d quarantined files, want 3 (bit-flipped, foreign, truncated)", bad)
	}
	// A fresh Open over the quarantined directory must not index the
	// .bad leftovers as phantom pending entries.
	q3, err := Open(dir, seal, open)
	if err != nil {
		t.Fatal(err)
	}
	if q3.Len() != 0 {
		t.Fatalf("reopened quarantined dir reports %d pending entries, want 0", q3.Len())
	}
}

func TestDeliveryDispatcherDrainRetryQuarantine(t *testing.T) {
	q := NewMemory()
	var (
		mu        sync.Mutex
		delivered []uint64
		fails     = map[uint64]int{1: 2} // entry 1 fails twice, then succeeds
	)
	d := NewDispatcher(q, func(ctx context.Context, seq uint64, payload []byte) error {
		mu.Lock()
		defer mu.Unlock()
		if bytes.Contains(payload, []byte("poison")) {
			return Permanent(errors.New("downstream rejected"))
		}
		if fails[seq] > 0 {
			fails[seq]--
			return errors.New("transient outage")
		}
		delivered = append(delivered, seq)
		return nil
	}, Options{RetryBase: time.Millisecond, RetryMax: 4 * time.Millisecond})
	d.Start()
	defer d.Close()

	for i := 0; i < 3; i++ {
		if _, err := q.Put(testEnvelope(uint64(i), "ok")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := q.Put([]byte("poison pill")); err != nil {
		t.Fatal(err)
	}
	d.Wake()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := d.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(delivered) != 3 {
		t.Fatalf("delivered %v, want the 3 good entries", delivered)
	}
	// In-order: retries must not let a later entry overtake an earlier one.
	for i, seq := range delivered {
		if seq != uint64(i) {
			t.Fatalf("delivery order %v, want [0 1 2]", delivered)
		}
	}
}

func TestDeliveryDispatcherCloseStopsRetrying(t *testing.T) {
	q := NewMemory()
	attempts := make(chan struct{}, 64)
	d := NewDispatcher(q, func(ctx context.Context, seq uint64, payload []byte) error {
		attempts <- struct{}{}
		return errors.New("always down")
	}, Options{RetryBase: time.Millisecond, RetryMax: 2 * time.Millisecond})
	d.Start()
	if _, err := q.Put(testEnvelope(0, "stuck")); err != nil {
		t.Fatal(err)
	}
	d.Wake()
	<-attempts // at least one attempt happened
	d.Close()
	// After Close the entry is still queued (durability) and no further
	// attempts arrive.
	if q.Len() != 1 {
		t.Fatalf("queue len after close = %d, want 1", q.Len())
	}
	drained := len(attempts)
	time.Sleep(10 * time.Millisecond)
	if len(attempts) != drained {
		t.Fatal("dispatcher kept delivering after Close")
	}
	d.Close() // idempotent
}

func TestDeliveryEnvelopeDestTopoRoundTrip(t *testing.T) {
	env := Envelope{Epoch: 3, TopoVersion: 7, Hop: 2, Dest: "http://shard-b:8443",
		Updates: [][]byte{[]byte("u1"), []byte("u2")}}
	raw, err := env.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseEnvelope(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != 3 || got.TopoVersion != 7 || got.Hop != 2 || got.Dest != env.Dest || len(got.Updates) != 2 {
		t.Fatalf("parsed = %+v", got)
	}
}

// TestDeliveryEnvelopeReadsV1 pins upgrade compatibility: entries a
// pre-routing-plane proxy left on disk still parse (no destination,
// topology version 0).
func TestDeliveryEnvelopeReadsV1(t *testing.T) {
	var v1 bytes.Buffer
	v1.WriteString("MXOB")
	binary.Write(&v1, binary.LittleEndian, uint32(1)) // version 1
	binary.Write(&v1, binary.LittleEndian, uint64(9)) // epoch
	binary.Write(&v1, binary.LittleEndian, uint32(2)) // hop
	binary.Write(&v1, binary.LittleEndian, uint32(1)) // count
	binary.Write(&v1, binary.LittleEndian, uint32(5))
	v1.WriteString("hello")
	env, err := ParseEnvelope(v1.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if env.Epoch != 9 || env.Hop != 2 || env.Dest != "" || env.TopoVersion != 0 || string(env.Updates[0]) != "hello" {
		t.Fatalf("v1 parsed = %+v", env)
	}
}

// TestDeliveryProgressPersists pins the durable-progress contract:
// SetProgress survives a queue reopen, and Ack/Quarantine clean it up.
func TestDeliveryProgressPersists(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	seq1, err := d.Put(testEnvelope(1, "a", "b", "c"))
	if err != nil {
		t.Fatal(err)
	}
	seq2, err := d.Put(testEnvelope(2, "d"))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.SetProgress(seq1, 2); err != nil {
		t.Fatal(err)
	}
	if got := d.Progress(seq1); got != 2 {
		t.Fatalf("progress = %d, want 2", got)
	}

	// Reopen: the marker must come back; the sender id must be stable.
	sender := d.SenderID()
	if sender == "" {
		t.Fatal("empty sender id")
	}
	d2, err := Open(dir, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := d2.Progress(seq1); got != 2 {
		t.Fatalf("progress after reopen = %d, want 2", got)
	}
	if d2.SenderID() != sender {
		t.Fatalf("sender id changed across reopen: %q vs %q", d2.SenderID(), sender)
	}
	if err := d2.Ack(seq1); err != nil {
		t.Fatal(err)
	}
	if got := d2.Progress(seq1); got != 0 {
		t.Fatalf("progress survived ack: %d", got)
	}
	if err := d2.Quarantine(seq2, errors.New("nope")); err != nil {
		t.Fatal(err)
	}
	// A third open must not resurrect markers for consumed entries.
	d3, err := Open(dir, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := d3.Progress(seq1); got != 0 {
		t.Fatalf("orphaned progress resurrected: %d", got)
	}
	if d3.Quarantined() != 1 {
		t.Fatalf("quarantined = %d, want 1 (the .bad leftover)", d3.Quarantined())
	}
}

// TestDeliveryQuarantinedCounting: counts accumulate from leftovers and
// live quarantines, on both queue variants.
func TestDeliveryQuarantinedCounting(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "ob-00000000000000aa.ent.bad"), []byte("junk"), 0o600); err != nil {
		t.Fatal(err)
	}
	d, err := Open(dir, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d.Quarantined() != 1 {
		t.Fatalf("leftover .bad not counted: %d", d.Quarantined())
	}
	seq, err := d.Put(testEnvelope(1, "x"))
	if err != nil {
		t.Fatal(err)
	}
	d.Quarantine(seq, errors.New("rejected"))
	if d.Quarantined() != 2 {
		t.Fatalf("live quarantine not counted: %d", d.Quarantined())
	}

	m := NewMemory()
	if m.SenderID() == "" {
		t.Fatal("memory queue has no sender id")
	}
	mseq, _ := m.Put([]byte("y"))
	m.Quarantine(mseq, errors.New("rejected"))
	if m.Quarantined() != 1 || m.Len() != 0 {
		t.Fatalf("memory quarantine: count=%d len=%d", m.Quarantined(), m.Len())
	}
}

// TestDeliverySeqNeverReused pins the watermark-safety invariant: a
// restart over a fully-drained (or quarantined-at-head) directory must
// NOT recycle sequence numbers — receivers key their stale-redelivery
// watermark on (sender, seq), so a reused pair would make fresh rounds
// look like stale duplicates and lose them.
func TestDeliverySeqNeverReused(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		seq, err := d.Put(testEnvelope(uint64(i), "x"))
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Ack(seq); err != nil { // fully drained: no .ent witness left
			t.Fatal(err)
		}
	}
	d2, err := Open(dir, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := d2.Put(testEnvelope(9, "y"))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 3 {
		t.Fatalf("post-restart seq = %d, want 3 (sequence numbers must never be reused)", seq)
	}
	// Quarantine the head (the only entry), restart again: the .bad
	// witness alone must keep the counter monotone even without seq.next.
	d2.Quarantine(seq, errors.New("rejected"))
	os.Remove(filepath.Join(dir, seqFile))
	d3, err := Open(dir, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if seq, err = d3.Put(testEnvelope(10, "z")); err != nil || seq != 4 {
		t.Fatalf("post-quarantine seq = %d (%v), want 4", seq, err)
	}
}
