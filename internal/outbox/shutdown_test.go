package outbox

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestDispatcherCloseCancelsInflightAttempt pins the shutdown-under-
// dead-peer fix: delivery attempts derive their context from the
// dispatcher's lifetime, so Close aborts a hung attempt instead of
// waiting out the full attempt timeout. Before the fix the attempt
// context came from context.Background() — with a dead peer and a
// large -delivery-timeout, mixnn-proxy shutdown stalled for the whole
// AttemptTimeout (an hour here; the test would time out).
func TestDispatcherCloseCancelsInflightAttempt(t *testing.T) {
	q := NewMemory()
	if _, err := q.Put(testEnvelopeDest(0, "http://peer-dead", "u")); err != nil {
		t.Fatal(err)
	}
	var once sync.Once
	started := make(chan struct{})
	d := NewDispatcher(q, func(ctx context.Context, seq uint64, payload []byte) error {
		once.Do(func() { close(started) })
		// A dead peer that blackholes the connection: the attempt only
		// ends when its context does.
		<-ctx.Done()
		return fmt.Errorf("attempt aborted: %w", ctx.Err())
	}, Options{RetryBase: time.Millisecond, RetryMax: time.Hour, AttemptTimeout: time.Hour})
	d.Start()
	<-started

	closed := make(chan struct{})
	go func() {
		d.Close()
		close(closed)
	}()
	select {
	case <-closed:
	case <-time.After(10 * time.Second):
		t.Fatal("Close did not cancel the hung in-flight attempt (shutdown held hostage by AttemptTimeout)")
	}
	// The aborted entry was never acked: it stays queued for the next
	// process rather than being lost.
	if q.Len() != 1 {
		t.Fatalf("queue holds %d entries after cancelled shutdown, want 1 (cancelled attempt must not consume the entry)", q.Len())
	}
}

// TestLaneStatsLiveAndConsistentMidDrain pins the status-consistency
// fix: (a) per-lane Pending comes from ONE queue snapshot, and (b)
// Delivered counts each ack as it happens, not when the worker
// releases the lane. With one worker draining one lane, every
// LaneStats snapshot must account for all N entries: Pending+Delivered
// is N (plus at most 1 for the entry inside the count/ack window).
// Before the fix, Delivered stayed 0 for the whole drain pass while
// Pending fell, so snapshots under-counted by the number of acked
// entries — exactly what a load harness polling every round saw.
func TestLaneStatsLiveAndConsistentMidDrain(t *testing.T) {
	const n = 64
	q := NewMemory()
	for i := 0; i < n; i++ {
		if _, err := q.Put(testEnvelopeDest(uint64(i), "http://peer-a", "u")); err != nil {
			t.Fatal(err)
		}
	}
	d := NewDispatcher(q, func(ctx context.Context, seq uint64, payload []byte) error {
		time.Sleep(200 * time.Microsecond) // stretch the drain so the poller samples mid-pass
		return nil
	}, Options{Workers: 1, RetryBase: time.Millisecond, RetryMax: 10 * time.Millisecond})
	d.Start()
	defer d.Close()

	sawMidDrain := false
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		var pending int
		var delivered uint64
		for _, ls := range d.LaneStats() {
			pending += ls.Pending
			delivered += ls.Delivered
		}
		total := uint64(pending) + delivered
		if total < n || total > n+1 {
			t.Fatalf("snapshot lost track of entries: pending=%d delivered=%d (want %d ≤ sum ≤ %d)", pending, delivered, n, n+1)
		}
		if pending > 0 && delivered > 0 {
			sawMidDrain = true // a live mid-drain snapshot: some acked, some queued
		}
		if pending == 0 && delivered == n {
			break
		}
	}
	if !sawMidDrain {
		t.Fatal("poller never observed a mid-drain snapshot; slow the deliver func down")
	}
	if err := d.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
}
