package proxy

import (
	"sync"
)

// DefaultDedupWindow is the batch-dedup FIFO capacity when the operator
// does not override it (-dedup-window).
const DefaultDedupWindow = 1024

// maxDedupSenders bounds the per-sender sequence watermark map (FIFO:
// the oldest sender ages out first).
const maxDedupSenders = 256

// dedupVerdict is Begin's decision for one batch id.
type dedupVerdict int

const (
	// dedupClaimed: the caller owns the application and must end it with
	// Done or Forget.
	dedupClaimed dedupVerdict = iota
	// dedupApplied: a previous application completed — ack the duplicate
	// without reprocessing.
	dedupApplied
	// dedupInFlight: another application of the same id is still running
	// — answer retryable, NOT success (a success ack would let the
	// sender consume its entry while the owning attempt can still fail).
	dedupInFlight
	// dedupStale: the id is gone from the window AND the sender's
	// sequence watermark proves this entry was superseded long ago — a
	// stale redelivery (delayed duplicate, operator re-injection) that
	// must be rejected (409), not silently re-absorbed into a new round.
	dedupStale
)

// batchDedup remembers recently-applied batch ids so a redelivered batch
// acks instead of double-counting, and tracks in-flight applications so
// an overlapping redelivery neither re-applies NOR falsely acks work
// that has not finished. The id window is a bounded FIFO; what closes
// the aged-out slip is the per-sender sequence watermark: a sender's
// outbox is strictly ordered (entry N+1 is never sent before N is
// acknowledged), so once the receiver has applied seq N from a sender,
//
//   - a redelivery of seq == N whose id aged out is the lost-ack case:
//     it was applied, ack it (dedupApplied);
//   - anything with seq < N can only be a stale duplicate: reject it
//     (dedupStale) instead of re-absorbing a round that already counted.
type batchDedup struct {
	mu    sync.Mutex
	cap   int
	state map[string]bool // false = application in flight, true = applied
	order []string
	// hwm maps sender id → highest entry sequence acknowledged as
	// applied; hwmOrder bounds it FIFO.
	hwm      map[string]uint64
	hwmOrder []string
}

// SetWindow sizes the id FIFO (<= 0 keeps DefaultDedupWindow). Call
// before first use.
func (d *batchDedup) SetWindow(n int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if n > 0 {
		d.cap = n
	}
}

func (d *batchDedup) capLocked() int {
	if d.cap > 0 {
		return d.cap
	}
	return DefaultDedupWindow
}

// Begin atomically decides what to do with batch id from (sender, seq);
// hasSeq is false when the sender did not identify itself (legacy
// senders — the watermark check is skipped and aged-out ids are
// indistinguishable from new batches, the pre-watermark behaviour).
func (d *batchDedup) Begin(id, sender string, seq uint64, hasSeq bool) dedupVerdict {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.state == nil {
		d.state = make(map[string]bool)
	}
	if done, ok := d.state[id]; ok {
		if done {
			return dedupApplied
		}
		return dedupInFlight
	}
	if hasSeq {
		if h, ok := d.hwm[sender]; ok {
			if seq == h {
				// Lost-ack redelivery of the sender's last applied entry,
				// its id already aged out of the window.
				return dedupApplied
			}
			if seq < h {
				return dedupStale
			}
		}
	}
	d.state[id] = false
	d.order = append(d.order, id)
	if len(d.order) > d.capLocked() {
		delete(d.state, d.order[0])
		d.order = d.order[1:]
	}
	return dedupClaimed
}

// Done marks a claimed id as applied and advances the sender's sequence
// watermark.
func (d *batchDedup) Done(id, sender string, seq uint64, hasSeq bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.state[id]; ok {
		d.state[id] = true
	}
	if !hasSeq {
		return
	}
	if d.hwm == nil {
		d.hwm = make(map[string]uint64)
	}
	if h, ok := d.hwm[sender]; !ok {
		d.hwm[sender] = seq
		d.hwmOrder = append(d.hwmOrder, sender)
		if len(d.hwmOrder) > maxDedupSenders {
			delete(d.hwm, d.hwmOrder[0])
			d.hwmOrder = d.hwmOrder[1:]
		}
		return
	} else if seq > h {
		d.hwm[sender] = seq
	}
	// LRU, not FIFO: a long-lived durable sender must not be evicted by
	// a churn of one-shot senders just because it registered first — it
	// is exactly the sender whose watermark matters.
	for i, v := range d.hwmOrder {
		if v == sender {
			d.hwmOrder = append(append(d.hwmOrder[:i:i], d.hwmOrder[i+1:]...), sender)
			break
		}
	}
}

// Forget releases an id claimed by Begin whose application failed, so a
// redelivery gets a fresh attempt.
func (d *batchDedup) Forget(id string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.state, id)
	for i, v := range d.order {
		if v == id {
			d.order = append(d.order[:i], d.order[i+1:]...)
			return
		}
	}
}
