package proxy

import (
	"context"
	"crypto/ecdsa"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"mixnn/internal/core"
	"mixnn/internal/enclave"
	"mixnn/internal/health"
	"mixnn/internal/nn"
	"mixnn/internal/outbox"
	"mixnn/internal/route"
	"mixnn/internal/transport"
	"mixnn/internal/wire"
)

// DefaultMaxHops bounds cascade depth: a forwarded update whose hop count
// exceeds this is rejected, which breaks accidental forwarding cycles.
const DefaultMaxHops = 4

// ShardedConfig parameterises a sharded (and optionally cascaded) MixNN
// proxy tier.
type ShardedConfig struct {
	// Upstream is the aggregation server base URL; mixed updates go there
	// in plaintext when no NextHop is configured.
	Upstream string
	// NextHop, when non-empty, is the base URL of the next mixing proxy of
	// the cascade. Mixed updates are re-encrypted with NextHopKey and
	// posted to {NextHop}/v1/batch (or /v1/hop with NoBatch) instead of
	// Upstream.
	NextHop string
	// NextHopKey is the attested (or pinned) key material for NextHop.
	// Required when NextHop is set.
	NextHopKey *enclave.HopKey
	// NextHopSecret, when non-empty, is sent as a bearer token with
	// forwarded hop traffic (it must match the next hop's HopSecret).
	NextHopSecret string
	// HopSecret, when non-empty, gates this proxy's /v1/hop and /v1/batch
	// endpoints: requests without the matching bearer token are rejected.
	// Without it any party holding the (public) enclave key can post hop
	// traffic and poison the round's hop watermark, killing the round at
	// the next depth check.
	HopSecret string
	// Shards is the number of independent mixing shards P (default 1).
	// It is the shorthand for a uniform all-local topology; ShardSpecs
	// overrides it.
	Shards int
	// Routing selects the shard-routing policy (default route.ModeSticky,
	// the pre-routing-plane behaviour: client-hash with round-robin
	// fallback).
	Routing route.Mode
	// ShardSpecs, when non-nil, describes the initial topology in full:
	// per-shard weights and remote placement. nil = Shards local shards
	// of weight 1.
	ShardSpecs []route.ShardSpec
	// RemoteShards maps a remote shard address to its attested key
	// material. Every remote address in ShardSpecs needs an entry (or a
	// later RegisterRemote) before its material can be relayed.
	RemoteShards map[string]RemoteShard
	// DedupWindow sizes the batch-dedup FIFO on this proxy's /v1/batch
	// endpoint (default DefaultDedupWindow). Redeliveries whose id has
	// aged out of the window are rejected with 409 via the sender
	// sequence watermark instead of being silently re-absorbed.
	DedupWindow int
	// AdoptSealedTopology makes RestoreState adopt the topology sealed
	// inside a v3 state blob (mode, weights, remote placement, quota
	// loads) instead of resharding the material into this tier's
	// configured topology. mixnn-proxy sets it unless the operator
	// explicitly asked for a different shape on the restart command line.
	AdoptSealedTopology bool
	// K is the per-shard list capacity of each stream mixer; it is clamped
	// to the shard's round-robin share of RoundSize so every shard's
	// buffer fills and drains within a round.
	K int
	// RoundSize is the total number of updates per round (C) across all
	// shards; when it is reached every shard is drained, the drained round
	// is committed to the delivery outbox as one entry, and fresh mixers
	// take over for the next round.
	RoundSize int
	// MaxHops bounds cascade depth (default DefaultMaxHops).
	MaxHops int
	// LegacyMix switches the local shards back to the legacy per-tensor
	// mixer storage. By default every local shard runs slab-backed (one
	// contiguous float64 slab per round, recycled across epochs through a
	// pool), which mixes bit-identically for the same seed but without
	// the per-update decode allocations. The flag exists as an escape
	// hatch while the slab path beds in.
	LegacyMix bool
	// Seed drives the mixing randomness (each shard derives its own
	// stream from it, per epoch).
	Seed int64
	// OutboxDir is the durable delivery queue directory. Drained rounds
	// are sealed under an enclave-derived key and committed there before
	// any network send, so delivery survives downstream outages AND proxy
	// crashes. Empty = an in-memory queue: delivery is still asynchronous
	// and retried, but entries die with the process.
	OutboxDir string
	// NoBatch forwards each update of a drained round individually to the
	// single-update endpoints (/v1/update, /v1/hop) instead of coalescing
	// the round into one /v1/batch POST — compatibility with pre-batch
	// downstreams, at C requests per round and without the batch
	// idempotency id (delivery degrades to at-least-once across crashes).
	NoBatch bool
	// RetryBase and RetryMax bound each delivery lane's exponential
	// backoff (defaults outbox.DefaultRetryBase/Max).
	RetryBase time.Duration
	RetryMax  time.Duration
	// DeliveryWorkers bounds how many destination lanes deliver
	// concurrently (default outbox.DefaultWorkers). A lane is drained by
	// at most one worker at a time, so per-destination ordering is
	// unaffected by the worker count.
	DeliveryWorkers int
	// DeliveryTimeout bounds one delivery attempt (default
	// outbox.DefaultAttemptTimeout; clamped to at least RetryMax).
	DeliveryTimeout time.Duration
	// Transport carries every outbound leg of this tier — batch/single
	// delivery downstream, relay legs to remote shards, and the hop
	// attestation handshakes admin directives trigger. nil = the HTTP
	// transport (over HTTPClient when set); a transport.Loopback here
	// runs the whole tier in-process.
	Transport transport.Transport
	// HTTPClient overrides the HTTP forwarding client (tests); ignored
	// when Transport is set.
	HTTPClient *http.Client

	// Endpoint is this proxy's own advertised base URL on /v1/discover
	// (how participants should address it); empty = not advertised.
	Endpoint string
	// Peers lists sibling front endpoints advertised on /v1/discover so
	// a participant that knows one seed can learn the full failover set.
	// Learned peers still gate on attestation before any material flows,
	// so a wrong (or malicious) peer list cannot redirect updates to an
	// unattested enclave — it can only waste a probe.
	Peers []string
	// RatePerSec enables the per-sender token-bucket admission limiter
	// on the participant ingress: each ClientID may sustain this many
	// updates/sec with bursts up to RateBurst (default = RatePerSec,
	// floor 1). 0 disables rate limiting — the default, so existing
	// deployments are unchanged. Over-budget sends are refused with a
	// typed 429 + Retry-After before any enclave work, provably not
	// ingested.
	RatePerSec float64
	RateBurst  float64
	// Load-shedding thresholds: while ANY enabled signal is at or above
	// its threshold the participant ingress refuses everything with 429.
	// Each 0 disables that signal (all default off). The signals are the
	// live ingress queue depth (IngressDepth), the deepest outbox
	// delivery lane, and the mean enclave decrypt latency in µs.
	ShedQueueDepth    int
	ShedLaneBacklog   int
	ShedDecryptMicros float64
	// IngressDepth reports the live ingress queue depth feeding this
	// proxy (e.g. a closure over Loopback.QueueDepth, or a listener's
	// accept backlog); nil = the signal falls back to the
	// committed-but-undelivered outbox backlog, the tier's real
	// ingress-to-egress queue in deployments with no observable
	// transport queue (the HTTP daemon).
	IngressDepth func() int
	// DisableMetrics turns off the /v1/metrics operator registry; the
	// endpoint then answers 404, like a binary without it.
	DisableMetrics bool
}

// ShardedProxy is the horizontally-scaled MixNN mixing tier: participants
// are partitioned across P independent stream mixers (shards) behind one
// endpoint, and the mixed output optionally cascades to a next-hop proxy
// re-encrypted for that hop's enclave. Sharding removes the single-mixer
// bottleneck; cascading restores mixing breadth across shards (a layer
// that stayed within its shard on hop 1 is re-mixed against the whole
// round on hop 2) and unlinks each proxy's view — no single hop observes
// both who sent an update and what reaches the aggregation server.
//
// Delivery is asynchronous: ingress never blocks on the downstream. When
// a round closes, the shards atomically swap to fresh mixers (so round
// N+1 ingests immediately — cross-round pipelining) while the drained
// round is committed to a sealed outbox entry and delivered by a
// background dispatcher as one batch, with bounded retry across
// downstream outages and, with OutboxDir set, across proxy restarts.
type ShardedProxy struct {
	cfg      ShardedConfig
	enclave  *enclave.Enclave
	platform *enclave.Platform
	tr       transport.Transport
	box      outbox.Queue
	disp     *outbox.Dispatcher
	seen     batchDedup
	// planner owns the routing plane's lifecycle: admin directives stage
	// the next epoch's topology there; the round-close swap advances it.
	planner *route.Planner
	// slabPool recycles the local mixers' slab chunks across epochs (nil
	// with LegacyMix). Chunks return to it only after their round's
	// outbox commit fully succeeded — see packageRound.
	slabPool *core.SlabPool

	// dcache memoises each in-flight entry's parsed envelope and (batch
	// mode) request body between retry attempts — entries are immutable,
	// and a long outage must not re-parse/re-encode a large round every
	// backoff tick. Keyed by entry seq: delivery lanes run concurrently.
	dcache deliverCache

	// hopSessions holds one sender-side crypto session per delivery
	// destination, so cascade and relay legs pay the RSA wrap once per
	// session instead of once per round. Keyed by destination base; each
	// entry remembers the hop key it was built for, so a re-registered
	// remote (fresh attested key after a peer restart) rotates the
	// session instead of sending undecryptable traffic. Lanes serialize
	// per destination, but Session.Wrap is concurrency-safe anyway.
	hsmu        sync.Mutex
	hopSessions map[string]*hopSession

	mu   sync.Mutex
	cond *sync.Cond // signals closing/putEpoch transitions
	// topo is the CURRENT epoch's routing plan and rst its mutable
	// routing state (cursor + per-shard quota loads); both swap with the
	// shards at round close.
	topo *route.Topology
	rst  *route.State
	// remotes maps remote shard addresses to attested key material. It
	// only grows: an address removed from the topology keeps its key so
	// outbox entries addressed to it under an earlier topology version
	// still deliver.
	remotes map[string]RemoteShard
	// sealedTrust is the remote-trust material restored from a seal
	// blob for addresses whose hop keys are not yet re-attested;
	// ReattestRemotes drains it.
	sealedTrust map[string]RemoteTrust
	// shards are the CURRENT epoch's mixers (local) and relay buffers
	// (remote); round close swaps the whole slice, so a drain can never
	// sweep in an update of the next round.
	shards []core.Shard
	// pending buffers updates the mixers emitted mid-round; they join the
	// round's outbox entry at close (and the seal blob before that).
	pending []nn.ParamSet
	// closing counts round packagings in flight (drained but not yet
	// committed to the outbox); SealState waits for zero so no material
	// can fall between a snapshot and the queue.
	closing int
	// retained counts updates whose outbox commit failed; they live in
	// pending and ride the next committed entry. Flush refuses to report
	// success while any exist — on a quiescent tier nothing else would
	// ever deliver them.
	retained int
	// putEpoch is the epoch whose outbox commit may proceed next —
	// concurrent round closes commit strictly in epoch order.
	putEpoch int
	// shardRecv/shardEmit carry each shard's mixer ledger across epoch
	// swaps (and restores), so per-shard counters are cumulative.
	shardRecv []int
	shardEmit []int

	inRound      int // updates received in the current round
	rounds       int // completed rounds == the epoch being ingested
	hopMark      int // highest incoming hop depth seen this round
	received     int // participant updates ingested (hop 0)
	hopReceived  int // cascade updates ingested (hop >= 1)
	forwarded    int // updates acknowledged downstream
	batches      int // batch POSTs acknowledged downstream
	restoredFrom int // shard count of the blob this tier restored from (0 = fresh)
	updateBytes  int
	decryptT     timing
	storeT       timing
	mixT         timing
	processT     timing

	// Control plane (see controlplane.go): the admission gate in front
	// of participant ingress, the operator metrics registry behind
	// /v1/metrics (nil with DisableMetrics), and the short-lived signal
	// snapshot the gate reads instead of polling queues per update.
	admission   *health.Admission
	metrics     *health.Registry
	decryptHist *health.Histogram
	admRate     atomic.Uint64 // 429s: sender over its token-bucket budget
	admShed     atomic.Uint64 // 429s: tier load-shedding
	sigMu       sync.Mutex
	sigAt       time.Time
	sig         health.Signals
}

// outboxLabel domain-separates outbox entries from other sealed material.
const outboxLabel = "mixnn/outbox/v1"

// RemoteShard is the attested key material of a remote shard: the hop
// key pinned by the attestation handshake plus the bearer secret its hop
// endpoints require (if any).
type RemoteShard struct {
	Key    *enclave.HopKey
	Secret string
	// Trust is the attestation trust bundle the key was pinned under,
	// when known (directives and shards files carry it; a bare Key
	// handed to ShardedConfig.RemoteShards has none). It rides the seal
	// blob so a restarted replacement can RE-ATTEST the peer — the
	// peer's enclave key does not survive the peer's own restarts, so
	// sealing the pinned key would not be enough.
	Trust *RemoteTrust
}

// RemoteTrust is the sealable trust material of one remote shard: what
// a proxy needs to re-run the hop attestation handshake after a
// restart, without an admin directive or a shards-file reload.
type RemoteTrust struct {
	AuthorityPubDER []byte `json:"authority_pub_der"`
	MeasurementHex  string `json:"measurement"`
	Secret          string `json:"secret,omitempty"`
}

// initialTopology builds the tier's starting topology from the config:
// the full ShardSpecs when given, else the uniform local topology the
// legacy Shards knob describes.
func initialTopology(cfg ShardedConfig) (*route.Topology, error) {
	specs := cfg.ShardSpecs
	if specs == nil {
		p := cfg.Shards
		if p <= 0 {
			p = 1
		}
		specs = make([]route.ShardSpec, p)
	}
	topo, err := route.New(0, cfg.Routing, cfg.RoundSize, specs)
	if err != nil {
		return nil, fmt.Errorf("proxy: %w", err)
	}
	return topo, nil
}

// NewSharded builds a sharded proxy tier hosted in the given enclave and
// starts its delivery dispatcher; callers own the tier's lifecycle and
// should Close it when done.
func NewSharded(cfg ShardedConfig, encl *enclave.Enclave, platform *enclave.Platform) (*ShardedProxy, error) {
	if cfg.Upstream == "" && cfg.NextHop == "" {
		return nil, fmt.Errorf("proxy: ShardedConfig needs an Upstream or a NextHop")
	}
	if cfg.NextHop != "" && cfg.NextHopKey == nil {
		return nil, fmt.Errorf("proxy: NextHop %q configured without NextHopKey", cfg.NextHop)
	}
	if cfg.RoundSize <= 0 {
		return nil, fmt.Errorf("proxy: ShardedConfig.RoundSize must be positive, got %d", cfg.RoundSize)
	}
	if cfg.MaxHops <= 0 {
		cfg.MaxHops = DefaultMaxHops
	}
	if encl == nil || platform == nil {
		return nil, fmt.Errorf("proxy: enclave and platform are required")
	}
	tr := cfg.Transport
	if tr == nil {
		tr = transport.NewHTTP(cfg.HTTPClient)
	}
	topo, err := initialTopology(cfg)
	if err != nil {
		return nil, err
	}
	remotes := make(map[string]RemoteShard, len(cfg.RemoteShards))
	for addr, rs := range cfg.RemoteShards {
		if rs.Key == nil {
			return nil, fmt.Errorf("proxy: remote shard %q configured without a hop key", addr)
		}
		remotes[addr] = rs
	}
	for _, addr := range topo.Remotes() {
		if _, ok := remotes[addr]; !ok {
			return nil, fmt.Errorf("proxy: remote shard %q has no attested key material (RemoteShards)", addr)
		}
	}
	var pool *core.SlabPool
	if !cfg.LegacyMix {
		pool = core.NewSlabPool()
	}
	shards, err := newShardSet(cfg, topo, 0, pool)
	if err != nil {
		return nil, err
	}
	var box outbox.Queue
	if cfg.OutboxDir != "" {
		box, err = outbox.Open(cfg.OutboxDir,
			func(plain []byte) ([]byte, error) { return encl.SealLabeled(outboxLabel, plain) },
			func(sealed []byte) ([]byte, error) { return encl.UnsealLabeled(outboxLabel, sealed) },
		)
		if err != nil {
			return nil, fmt.Errorf("proxy: open outbox: %w", err)
		}
	} else {
		box = outbox.NewMemory()
	}
	p := &ShardedProxy{
		cfg: cfg, enclave: encl, platform: platform, tr: tr,
		box: box, shards: shards,
		topo: topo, rst: topo.NewState(), remotes: remotes,
		planner:   route.NewPlanner(topo),
		slabPool:  pool,
		shardRecv: make([]int, topo.P()),
		shardEmit: make([]int, topo.P()),
	}
	p.seen.SetWindow(cfg.DedupWindow)
	p.cond = sync.NewCond(&p.mu)
	p.initControlPlane()
	p.disp = outbox.NewDispatcher(box, p.deliver, outbox.Options{
		RetryBase:      cfg.RetryBase,
		RetryMax:       cfg.RetryMax,
		Workers:        cfg.DeliveryWorkers,
		AttemptTimeout: cfg.DeliveryTimeout,
	})
	p.disp.Start()
	return p, nil
}

// Close stops the delivery dispatcher. Undelivered outbox entries stay
// queued — on disk when OutboxDir is set — for the next process.
func (p *ShardedProxy) Close() {
	p.disp.Close()
}

// Flush blocks until every drained round has been committed to the
// outbox AND acknowledged downstream, or ctx expires. Tests and graceful
// shutdown use it; serving code never needs to.
func (p *ShardedProxy) Flush(ctx context.Context) error {
	for {
		p.mu.Lock()
		n := p.closing
		p.mu.Unlock()
		if n == 0 {
			break
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("proxy: flush: %d round closes in flight: %w", n, ctx.Err())
		case <-time.After(2 * time.Millisecond):
		}
	}
	if err := p.disp.Flush(ctx); err != nil {
		return err
	}
	p.mu.Lock()
	retained := p.retained
	p.mu.Unlock()
	if retained > 0 {
		return fmt.Errorf("proxy: flush: %d updates retained from a failed outbox commit await the next round close", retained)
	}
	return nil
}

// newShardSet builds the tier's fresh shard slots for one epoch under a
// topology: local shards get a StreamMixer with K clamped to the shard's
// round quota and a per-shard rand stream derived from the seed and epoch
// (each round's swap gets fresh, independent streams); remote shards get
// a relay buffer sized by their quota. Shared by NewSharded, the round
// close swap and RestoreState so every epoch's tier is shaped alike.
func newShardSet(cfg ShardedConfig, topo *route.Topology, epoch int, pool *core.SlabPool) ([]core.Shard, error) {
	shards := make([]core.Shard, topo.P())
	for s := range shards {
		quota := topo.Quota(s)
		if topo.IsRemote(s) {
			shards[s] = core.NewRelayShard(quota)
			continue
		}
		k := cfg.K
		if k <= 0 || k > quota {
			k = quota
		}
		// Each shard owns its rand stream: StreamMixer serialises itself,
		// but a shared rand.Rand across concurrently-adding shards would
		// race.
		rng := rand.New(rand.NewSource(cfg.Seed + int64(epoch)*int64(topo.P()) + int64(s)))
		var m *core.StreamMixer
		var err error
		if cfg.LegacyMix {
			m, err = core.NewStreamMixer(k, rng)
		} else {
			m, err = core.NewStreamMixerSlab(k, rng, pool)
		}
		if err != nil {
			return nil, fmt.Errorf("proxy: shard %d: %w", s, err)
		}
		shards[s] = m
	}
	return shards, nil
}

// Shards returns the shard count P. It synchronises with RestoreState,
// which swaps the shard slice under p.mu.
func (p *ShardedProxy) Shards() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.shards)
}

// Handler returns the sharded proxy's HTTP API — the typed protocol
// served over the wire-compatible HTTP adapter: the participant
// endpoint, the inter-proxy cascade endpoints (single and batched),
// attestation, status and the topology admin plane.
func (p *ShardedProxy) Handler() http.Handler {
	return transport.NewHandler(p)
}

// authorizeHop enforces the inter-proxy secret and the cascade depth
// rules shared by the hop and batch ingresses, over any transport.
func (p *ShardedProxy) authorizeHop(secret string, hop int) (int, error) {
	if p.cfg.HopSecret != "" &&
		subtle.ConstantTimeCompare([]byte(secret), []byte(p.cfg.HopSecret)) != 1 {
		return 0, transport.Errorf(http.StatusUnauthorized, "hop endpoint requires the inter-proxy secret")
	}
	if hop < 0 {
		return 0, transport.Errorf(http.StatusBadRequest, "proxy: negative cascade depth %d", hop)
	}
	if hop == 0 {
		hop = 1 // an upstream proxy that omitted the depth is hop 1
	}
	if hop > p.cfg.MaxHops {
		return 0, transport.Errorf(http.StatusLoopDetected, "cascade depth %d exceeds limit %d", hop, p.cfg.MaxHops)
	}
	return hop, nil
}

// HandleUpdate ingests one encrypted participant update (hop 0). It
// implements transport.Server; the acknowledgement means ACCEPTANCE
// INTO THE TIER — forwarding happens asynchronously through the outbox,
// so a downstream outage never turns into participant-visible errors
// (or lost rounds). Forged cascade depth is unrepresentable here: the
// typed participant request has no depth field, and the HTTP adapter
// rejects a raw X-Mixnn-Hop header before it reaches this method.
func (p *ShardedProxy) HandleUpdate(ctx context.Context, req transport.UpdateRequest) (transport.Receipt, error) {
	// Admission runs BEFORE any enclave work: a refusal here is cheap
	// and provably not ingested, so the sender can safely back off or
	// fail over without risking a double-count.
	if err := p.admit(req.ClientID); err != nil {
		return transport.Receipt{Shard: -1}, err
	}
	return p.ingressOne(req.Body, req.ClientID, 0, false)
}

// HandleHop ingests one re-encrypted mixed update from an upstream
// proxy of the cascade. It implements transport.Server.
func (p *ShardedProxy) HandleHop(ctx context.Context, req transport.HopRequest) (transport.Receipt, error) {
	hop, err := p.authorizeHop(req.Secret, req.Hop)
	if err != nil {
		return transport.Receipt{Shard: -1}, err
	}
	return p.ingressOne(req.Body, "", hop, true)
}

// ingressOne processes one encrypted update through the enclave
// pipeline: decrypt, zero-copy decode, mix, and — when the round closes
// — package it for delivery.
func (p *ShardedProxy) ingressOne(body []byte, clientID string, hop int, fromHop bool) (transport.Receipt, error) {
	if err := transport.CheckBody(body); err != nil {
		return transport.Receipt{Shard: -1}, err
	}
	var (
		closed *roundClose
		shard  int
	)
	start := time.Now()
	procErr := p.enclave.Process(func() error {
		t0 := time.Now()
		plain, err := p.enclave.Decrypt(body)
		decryptDur := time.Since(t0)
		p.observeDecrypt(decryptDur)
		if err != nil {
			return fmt.Errorf("proxy: decrypt: %w", err)
		}
		// No decode here: the plaintext wire bytes go straight to the
		// routed shard, which picks its cheapest path to storage — a slab
		// mixer decodes the payload directly into its slab row, a legacy
		// mixer or relay shard runs the zero-copy decoder and aliases the
		// buffer. Ownership of plain transfers with it.
		closed, shard, err = p.ingest(nn.ParamSet{}, plain, len(plain), clientID, hop, fromHop, decryptDur, 0)
		return err
	})
	p.mu.Lock()
	p.processT.add(time.Since(start))
	p.mu.Unlock()
	if procErr != nil {
		return transport.Receipt{Shard: -1}, ingressError(procErr)
	}
	if closed != nil {
		if err := p.packageRound(closed); err != nil {
			// The round's material is retained in memory (see
			// packageRound) and WILL be delivered with the next committed
			// entry, so the update is still accepted — an error response
			// here would make the sender retry and double-count it.
			log.Printf("proxy: round %d outbox commit failed (material retained): %v", closed.epoch, err)
		}
	}
	return transport.Receipt{Shard: shard}, nil
}

// ingressError maps an enclave-pipeline failure onto the wire
// vocabulary. A session miss (the cache evicted it, or the enclave
// restarted and lost its volatile session memory) and a counter replay
// both become the TYPED 428 session rejection: in either case this
// attempt provably ingested nothing, and the sender recovers by
// re-establishing with a full wrap — a generic 4xx here would make the
// SDK treat the bytes as poison and the dispatcher quarantine a
// perfectly good round. Everything else stays the 400 the legacy
// decrypt path always answered.
func ingressError(err error) error {
	if errors.Is(err, enclave.ErrSessionUnknown) || errors.Is(err, enclave.ErrSessionReplay) {
		return &transport.StatusError{
			Code:           http.StatusPreconditionRequired,
			SessionUnknown: true,
			Msg:            err.Error(),
		}
	}
	return transport.Errorf(http.StatusBadRequest, "%s", err.Error())
}

// HandleBatch ingests a whole drained round from an upstream proxy: a
// BatchEnvelope wrapped for this enclave. It implements
// transport.Server, shares the hop gate and depth rules with HandleHop,
// and dedups on the sender's idempotency id so a redelivered batch
// (lost acknowledgement, crashed upstream) cannot double-count a round.
func (p *ShardedProxy) HandleBatch(ctx context.Context, req transport.BatchRequest) (transport.Receipt, error) {
	hop, err := p.authorizeHop(req.Secret, req.Hop)
	if err != nil {
		return transport.Receipt{Shard: -1}, err
	}
	if err := transport.CheckBody(req.Body); err != nil {
		return transport.Receipt{Shard: -1}, err
	}
	// Claim the id atomically BEFORE ingesting: a retry overlapping a
	// slow first attempt must dedup, not re-mix the round — and an
	// attempt still in flight must NOT be acked as applied (the sender
	// would consume the entry while this attempt can still fail).
	batchID := req.ID
	sender, senderSeq, hasSeq := req.Sender, req.Seq, req.HasSeq && req.Sender != ""
	if batchID != "" {
		switch p.seen.Begin(batchID, sender, senderSeq, hasSeq) {
		case dedupApplied:
			return transport.Receipt{Shard: -1, Duplicate: true}, nil // already applied; ack the duplicate
		case dedupInFlight:
			return transport.Receipt{Shard: -1}, transport.Errorf(http.StatusConflict, "batch application in flight")
		case dedupStale:
			// The id aged out of the dedup window but the sender's
			// sequence watermark proves this entry was superseded:
			// re-absorbing it would double-count a round that already
			// reached the aggregate. The stale marker tells the sender
			// this 409 is permanent (quarantine), unlike the retryable
			// in-flight 409.
			return transport.Receipt{Shard: -1}, &transport.StatusError{
				Code: http.StatusConflict, Stale: true,
				Msg: "stale batch redelivery (sequence below the sender's applied watermark)",
			}
		}
	}
	body := req.Body

	var closes []*roundClose
	start := time.Now()
	procErr := p.enclave.Process(func() error {
		t0 := time.Now()
		plain, err := p.enclave.Decrypt(body)
		decryptDur := time.Since(t0)
		p.observeDecrypt(decryptDur)
		if err != nil {
			return fmt.Errorf("proxy: decrypt: %w", err)
		}
		env, err := wire.DecodeBatchEnvelope(plain)
		if err != nil {
			return fmt.Errorf("proxy: %w", err)
		}
		// Decode every item — and check they share one model structure —
		// before mixing any, so a malformed or heterogeneous batch cannot
		// leave the round half-applied (the upstream quarantines rejected
		// entries and must be able to trust that nothing was counted).
		t1 := time.Now()
		pss := make([]nn.ParamSet, len(env.Updates))
		for i, raw := range env.Updates {
			if pss[i], err = nn.DecodeParamSetNoCopy(raw); err != nil {
				return fmt.Errorf("proxy: batch update %d: %w", i, err)
			}
			if i > 0 && !pss[0].Compatible(pss[i]) {
				return fmt.Errorf("proxy: batch update %d incompatible with update 0", i)
			}
		}
		decodeDur := time.Since(t1)
		// Spread the one decrypt/decode over the items so per-update
		// stage means stay comparable with the single-update path.
		n := time.Duration(len(env.Updates))
		var itemErrs int
		var firstErr error
		for i, ps := range pss {
			closed, _, err := p.ingest(ps, nil, len(env.Updates[i]), "", hop, true, decryptDur/n, decodeDur/n)
			if err != nil {
				// An item the open round's mixers reject (structure set
				// by earlier traffic of this epoch) can never be mixed at
				// this hop — rejecting the WHOLE batch here would let a
				// half-applied round masquerade as "nothing counted" when
				// the upstream quarantines it. Skip just this item, keep
				// the rest of the round.
				log.Printf("proxy: batch update %d skipped: %v", i, err)
				itemErrs++
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			if closed != nil {
				closes = append(closes, closed)
			}
		}
		if itemErrs == len(pss) {
			return firstErr // nothing applied; safe for the upstream to quarantine
		}
		return nil
	})
	p.mu.Lock()
	p.processT.add(time.Since(start))
	p.mu.Unlock()
	// Rounds that closed DID close — their mixers were swapped out and
	// p.closing incremented — so package them even when a later item
	// failed: skipping would leak p.closing/putEpoch and wedge SealState,
	// Flush and every future round's commit.
	for _, c := range closes {
		if err := p.packageRound(c); err != nil {
			// Retained in p.pending (see packageRound); the material IS
			// applied, so this is not the sender's problem — an error
			// response would trigger a redelivery that double-counts.
			log.Printf("proxy: round %d outbox commit failed (material retained): %v", c.epoch, err)
		}
	}
	if procErr != nil {
		// Nothing was applied (decode/compat failures precede any ingest,
		// and the all-items-failed path mixes nothing), so release the id
		// for a future redelivery.
		if batchID != "" {
			p.seen.Forget(batchID)
		}
		return transport.Receipt{Shard: -1}, ingressError(procErr)
	}
	if batchID != "" {
		p.seen.Done(batchID, sender, senderSeq, hasSeq)
	}
	return transport.Receipt{Shard: -1}, nil
}

// roundClose carries everything a completed round needs on its way to
// the outbox: the epoch, the topology it closed under (which shards are
// remote, and the version delivery is keyed by), the hop depth to stamp
// (watermark + 1), the retired shard slots (still holding the round's
// buffered material) and the mid-round emissions.
type roundClose struct {
	epoch   int
	hop     int
	topo    *route.Topology
	mixers  []core.Shard
	pending []nn.ParamSet
	// emitBase is each retired mixer's emitted count at swap time; the
	// swap already rolled counters up to here into the cumulative shard
	// ledger, so packageRound only adds what Drain emits beyond it.
	emitBase []int
}

// ingest files one decoded update into its shard's mixer and, when the
// round completes, swaps the tier to fresh mixers and returns a
// roundClose for packaging. The expensive stages (decrypt, decode —
// milliseconds) already ran outside any lock in the caller; the cheap
// mixing step (layer pointer swaps — microseconds) and the round
// accounting run under one mutex, which makes round closure atomic: a
// drain can never sweep in an update that belongs to the next round, and
// updates arriving an instant after the swap land in epoch N+1's fresh
// mixers while epoch N drains in the background (cross-round
// pipelining).
//
// The close's hop is the depth to stamp on the delivered round: one past
// the highest incoming depth seen in the current round. Buffered material
// loses its individual depth inside the mixers, so the watermark is what
// keeps depth monotone — in an accidental proxy cycle the watermark grows
// every traversal until the MaxHops check breaks the loop.
func (p *ShardedProxy) ingest(ps nn.ParamSet, wire []byte, size int, clientID string, hop int, fromHop bool, decryptDur, decodeDur time.Duration) (*roundClose, int, error) {
	p.enclave.Alloc(size)

	p.mu.Lock()
	shard := p.topo.Route(clientID, p.rst)
	p.decryptT.add(decryptDur)
	p.updateBytes = size
	tAdd := time.Now()
	// Single-update ingress hands the shard the raw wire bytes (wire
	// non-nil) so a slab mixer can decode straight into its slab row; the
	// batch path validated and decoded every item up front and files the
	// decoded views. Either way there is exactly one copy of the floats
	// between the decrypted buffer and the mixer's storage.
	var out *nn.ParamSet
	var err error
	if wire != nil {
		out, err = p.shards[shard].AddWire(wire)
	} else {
		out, err = p.shards[shard].Add(ps)
	}
	p.storeT.add(decodeDur + time.Since(tAdd)) // §6.5 store stage: decode + file into the lists
	if err != nil {
		// Route already charged the shard's quota; a rejected update must
		// not consume it.
		p.rst.Load[shard]--
		p.mu.Unlock()
		p.enclave.Free(size)
		return nil, shard, fmt.Errorf("proxy: shard %d mix: %w", shard, err)
	}
	t2 := time.Now()
	if out != nil {
		p.pending = append(p.pending, *out)
	}
	if fromHop {
		p.hopReceived++
	} else {
		p.received++
	}
	if hop > p.hopMark {
		p.hopMark = hop
	}
	p.inRound++
	var closed *roundClose
	if p.inRound >= p.topo.RoundSize() {
		// The epoch boundary is where the routing plane may change: any
		// staged topology (admin directive, shards-file reload) becomes
		// the next epoch's plan, applied under the same lock as the mixer
		// swap — membership changes can never tear an open round.
		nextTopo := p.planner.Advance()
		fresh, ferr := newShardSet(p.cfg, nextTopo, p.rounds+1, p.slabPool)
		if ferr != nil {
			// Unreachable for a validated topology; leave the round open
			// so the next ingest retries the close.
			p.mixT.add(time.Since(t2))
			p.mu.Unlock()
			return nil, shard, ferr
		}
		closed = &roundClose{epoch: p.rounds, hop: p.hopMark + 1, topo: p.topo, mixers: p.shards, pending: p.pending}
		// Roll the retired mixers' counters into the cumulative ledger
		// HERE, under the same lock as the swap, so per-shard Received
		// never appears to regress in a concurrently-polled Status. The
		// drain's emissions land later (see packageRound/emitBase).
		closed.emitBase = make([]int, len(closed.mixers))
		for s, m := range closed.mixers {
			p.shardRecv[s] += m.Received()
			closed.emitBase[s] = m.Emitted()
			p.shardEmit[s] += closed.emitBase[s]
		}
		// A membership change resizes the cumulative per-shard ledgers
		// sum-preservingly: per-shard exactness is not meaningful when
		// the shards themselves changed.
		p.shardRecv = resizeLedger(p.shardRecv, nextTopo.P())
		p.shardEmit = resizeLedger(p.shardEmit, nextTopo.P())
		p.topo = nextTopo
		// The per-round quota loads reset, but the round-robin cursor
		// carries across rounds (as the pre-topology tier's did), so
		// which shards take a non-divisible round's extra updates rotates
		// instead of always starving the last shard.
		rr := p.rst.RR % nextTopo.P()
		p.rst = nextTopo.NewState()
		p.rst.RR = rr
		p.shards = fresh
		p.pending = nil
		// Any retained (failed-commit) material just moved into this
		// close; if its commit fails too, packageRound re-counts it.
		p.retained = 0
		p.rounds++
		p.inRound = 0
		p.hopMark = 0
		p.closing++
	}
	p.mixT.add(time.Since(t2)) // §6.5 mix stage: emission assembly + epoch swap
	p.mu.Unlock()
	return closed, shard, nil
}

// destEntry is one destination's share of a closed round on its way to
// the outbox: the tier's ordinary downstream (dest == "") or a remote
// shard address.
type destEntry struct {
	dest    string
	updates []nn.ParamSet
	// shard is the remote shard index the material came from (-1 for the
	// downstream entry), used to return material on a commit failure.
	shard int
}

// resizeLedger maps a cumulative per-shard ledger onto a new shard count:
// unchanged when P stays, otherwise the total is preserved and spread
// evenly (per-shard exactness is not meaningful across a membership
// change).
func resizeLedger(old []int, pPrime int) []int {
	if len(old) == pPrime {
		return old
	}
	total := 0
	for _, v := range old {
		total += v
	}
	out := make([]int, pPrime)
	for s := 0; s < pPrime; s++ {
		out[s] = total / pPrime
		if s < total%pPrime {
			out[s]++
		}
	}
	return out
}

// encodeBufPool recycles the append-encode buffers packageRound slices
// outbox payloads from; a tier re-encodes one round's worth of updates
// per epoch, so a handful of buffers reach steady state quickly.
var encodeBufPool sync.Pool

// packageRound drains a closed round's retired shard slots and commits
// the round to the outbox in epoch order: ONE sealed entry for the
// downstream (mid-round emissions plus every local shard's drain) and, in
// a multi-process topology, one sealed entry per remote shard holding the
// material routed to it (relayed to that shard's enclave by the delivery
// dispatcher). It runs outside p.mu (and outside the enclave's
// constant-time gate), so ingest of the next epoch proceeds concurrently.
// On a commit failure the material is retained — downstream material in
// p.pending, remote material back in the live relay shard for its address
// when one exists — so nothing mixed (or relayed) is ever dropped.
func (p *ShardedProxy) packageRound(rc *roundClose) error {
	entries := []destEntry{{dest: "", updates: rc.pending, shard: -1}}
	for s, m := range rc.mixers {
		drained := m.Drain()
		if rc.topo.IsRemote(s) {
			if len(drained) > 0 {
				entries = append(entries, destEntry{dest: rc.topo.Spec(s).Addr, updates: drained, shard: s})
			}
			continue
		}
		entries[0].updates = append(entries[0].updates, drained...)
	}
	// Encode everything before taking the epoch's commit turn.
	type rawEntry struct {
		destEntry
		raw   []byte
		bytes int
	}
	raws := make([]rawEntry, 0, len(entries))
	var encErr error
	total := 0
	for _, de := range entries {
		// One pooled buffer carries the whole entry's encoded updates:
		// each update is append-encoded into it and its payload sliced
		// out, so encoding a round costs zero allocations at steady state
		// (Envelope.Marshal copies the payloads into the sealed entry,
		// after which the buffer recycles).
		bp, _ := encodeBufPool.Get().(*[]byte)
		if bp == nil {
			bp = new([]byte)
		}
		need := 0
		for _, ps := range de.updates {
			need += nn.EncodedSize(ps)
		}
		buf := (*bp)[:0]
		if cap(buf) < need {
			buf = make([]byte, 0, need)
		}
		payloads := make([][]byte, len(de.updates))
		size := 0
		for i, ps := range de.updates {
			start := len(buf)
			var err error
			if buf, err = nn.AppendParamSet(buf, ps); err != nil {
				encErr = err
				break
			}
			payloads[i] = buf[start:len(buf):len(buf)]
			size += len(payloads[i])
		}
		var raw []byte
		if encErr == nil {
			env := outbox.Envelope{
				Epoch:       uint64(rc.epoch),
				TopoVersion: rc.topo.Version(),
				Hop:         rc.hop,
				Dest:        de.dest,
				Updates:     payloads,
			}
			var err error
			if raw, err = env.Marshal(); err != nil {
				encErr = err
			}
		}
		*bp = buf
		encodeBufPool.Put(bp)
		if encErr != nil {
			break
		}
		raws = append(raws, rawEntry{destEntry: de, raw: raw, bytes: size})
		total += size
	}
	// Ordered commit: take this epoch's turn even when there is nothing
	// to Put — the epoch chain must advance by exactly one per close or
	// every later commit (and SealState/Flush) waits forever.
	p.mu.Lock()
	for p.putEpoch != rc.epoch {
		p.cond.Wait()
	}
	p.mu.Unlock()
	var failed []destEntry
	err := encErr
	if encErr != nil {
		failed = entries
	} else {
		for _, re := range raws {
			// A short retry absorbs transient commit failures (disk
			// hiccups) here, while the epoch's commit turn is held: a
			// round retained past this point only re-commits at the NEXT
			// round close, which on a quiescent tier may never come.
			var putErr error
			for attempt := 0; ; attempt++ {
				if _, putErr = p.box.Put(re.raw); putErr == nil || attempt >= 2 {
					break
				}
				time.Sleep(100 * time.Millisecond)
			}
			if putErr != nil {
				failed = append(failed, re.destEntry)
				if err == nil {
					err = putErr
				}
				continue
			}
			p.enclave.Free(re.bytes)
		}
	}

	p.mu.Lock()
	// The swap already rolled the retired mixers' counters; only the
	// drain's emissions (beyond emitBase) remain, regardless of the
	// commit outcome (they describe mixing history, not delivery). The
	// ledger may have been resized by a concurrent membership change.
	for s, m := range rc.mixers {
		p.shardEmit[s%len(p.shardEmit)] += m.Emitted() - rc.emitBase[s]
	}
	for _, de := range failed {
		if de.dest != "" {
			// Remote-destined material must NOT fall back to the
			// downstream: it is unmixed participant material whose mixing
			// hop is a mixing enclave, and delivering it raw would hand
			// the server individually-linkable updates. Return it to the
			// live relay shard for the same address when the current
			// topology still has one; otherwise file it into the current
			// epoch's shard 0 — a local mixer absorbs it into the open
			// round (over-full buffers stay conservative), a relay slot
			// relays it to that shard's enclave. Either way it is mixed
			// before it travels, is covered by SealState, and rides the
			// next round close.
			s := p.relayShardLocked(de.dest)
			if s < 0 {
				s = 0
				log.Printf("proxy: remote shard %s left the topology with %d uncommitted updates; re-filing them into shard 0 of the current epoch", de.dest, len(de.updates))
			}
			refiled := len(de.updates)
			for i, u := range de.updates {
				if rerr := p.shards[s].RestoreEntry(u); rerr != nil {
					// Structurally incompatible with the open round (model
					// changed between epochs) — the only escape left is
					// the pending buffer; it reaches the server mixed with
					// nothing, so be loud about the privacy downgrade.
					log.Printf("proxy: re-file update into shard %d failed (%v); %d updates will deliver downstream UNMIXED", s, rerr, len(de.updates)-i)
					p.pending = append(append([]nn.ParamSet{}, de.updates[i:]...), p.pending...)
					refiled = i
					break
				}
			}
			// The re-filed updates were already counted once (the retired
			// relay's Add, rolled into the cumulative ledger at the swap);
			// RestoreEntry counted them again inside the live shard, so
			// compensate the carry to keep sum(per-shard Received) equal
			// to the tier's Received.
			p.shardRecv[s%len(p.shardRecv)] -= refiled
			// Both halves await the next round close (re-filed head in a
			// shard, incompatible tail in pending), so both count as
			// retained: Flush must keep failing until they move.
			p.retained += len(de.updates)
			continue
		}
		// Downstream material is already mixed; retain it in memory and
		// it joins the next downstream entry (and any SealState blob
		// taken before then).
		p.pending = append(append([]nn.ParamSet{}, de.updates...), p.pending...)
		p.retained += len(de.updates)
	}
	p.putEpoch = rc.epoch + 1
	p.closing--
	p.cond.Broadcast()
	p.mu.Unlock()
	if err == nil {
		// The whole round is sealed in the outbox: every emission and
		// drained update was copied into the committed entries, so nothing
		// references the retired mixers' slab rows any more — recycle the
		// chunks for a future epoch's mixers. On a failed commit the
		// retained material still aliases the slabs, so we skip this and
		// let the GC reclaim them instead.
		for _, m := range rc.mixers {
			if sm, ok := m.(*core.StreamMixer); ok {
				sm.ReleaseSlab()
			}
		}
		p.disp.Wake()
	}
	return err
}

// relayShardLocked returns the index of the live relay shard for addr,
// -1 when the current topology has none. Caller holds p.mu.
func (p *ShardedProxy) relayShardLocked(addr string) int {
	for s := 0; s < p.topo.P(); s++ {
		if p.topo.Spec(s).Addr == addr {
			return s
		}
	}
	return -1
}

// deliverCache is the per-entry memo of delivery artefacts (see
// ShardedProxy.dcache). The mutex guards only the map: an entry's memo is
// mutated exclusively by the one worker that owns the entry's lane.
type deliverCache struct {
	mu      sync.Mutex
	entries map[uint64]*deliverMemo
}

// deliverMemo caches one outbox entry's delivery artefacts across retry
// attempts.
type deliverMemo struct {
	env     *outbox.Envelope
	body    []byte // assembled /v1/batch body (hop-wrapped if cascading)
	id      string // idempotency id for body
	singles bool   // round too large to batch; use the singles path
	// sess is the crypto session that wrapped body (nil on the
	// plaintext server leg): a typed session rejection invalidates
	// exactly this session plus the memoized body, and the retry
	// re-wraps under a fresh establish. The idempotency id derives from
	// the PLAINTEXT payload, so it survives the re-wrap and redelivery
	// stays exactly-once.
	sess *enclave.Session
}

func (c *deliverCache) get(seq uint64) *deliverMemo {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.entries[seq]
}

func (c *deliverCache) put(seq uint64, m *deliverMemo) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.entries == nil {
		c.entries = make(map[uint64]*deliverMemo)
	}
	c.entries[seq] = m
}

func (c *deliverCache) drop(seq uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.entries, seq)
}

// batchIDFor derives the idempotency id of an outbox entry from its
// plaintext payload: deterministic across retries and restarts, so a
// receiver that already applied the entry recognises the redelivery.
func batchIDFor(payload []byte) string {
	sum := sha256.Sum256(payload)
	return hex.EncodeToString(sum[:16])
}

// hopSession pairs a destination's crypto session with the hop key it
// was established against (see ShardedProxy.hopSessions).
type hopSession struct {
	key  *enclave.HopKey
	sess *enclave.Session
}

// hopSessionFor returns the crypto session for a delivery destination,
// establishing one against its current hop key when none exists or the
// cached one was built for a superseded key.
func (p *ShardedProxy) hopSessionFor(base string, key *enclave.HopKey) (*enclave.Session, error) {
	p.hsmu.Lock()
	defer p.hsmu.Unlock()
	if hs := p.hopSessions[base]; hs != nil && hs.key == key {
		return hs.sess, nil
	}
	sess, err := key.NewSession()
	if err != nil {
		return nil, err
	}
	if p.hopSessions == nil {
		p.hopSessions = make(map[string]*hopSession)
	}
	p.hopSessions[base] = &hopSession{key: key, sess: sess}
	return sess, nil
}

// dropHopSession invalidates a destination's session — only if sess is
// still the pinned one, so a stale rejection cannot tear down a fresher
// session.
func (p *ShardedProxy) dropHopSession(base string, sess *enclave.Session) {
	p.hsmu.Lock()
	defer p.hsmu.Unlock()
	if hs := p.hopSessions[base]; hs != nil && hs.sess == sess {
		delete(p.hopSessions, base)
	}
}

// wrapForHop seals payload for tgt's enclave under the destination's
// crypto session, rotating the session once if its counter space is
// exhausted. It returns the session that produced the ciphertext so the
// caller can invalidate precisely it on a typed session rejection.
func (p *ShardedProxy) wrapForHop(tgt hopTarget, payload []byte) ([]byte, *enclave.Session, error) {
	for attempt := 0; ; attempt++ {
		sess, err := p.hopSessionFor(tgt.base, tgt.key)
		if err != nil {
			return nil, nil, fmt.Errorf("proxy: session for %s: %w", tgt.base, err)
		}
		ct, err := sess.Wrap(payload)
		if err == nil {
			return ct, sess, nil
		}
		p.dropHopSession(tgt.base, sess)
		if attempt > 0 {
			return nil, nil, fmt.Errorf("proxy: wrap for %s: %w", tgt.base, err)
		}
	}
}

// hopTarget is the resolved destination of one outbox entry: where to
// POST, and the hop-key material to wrap with (nil key = plaintext to the
// aggregation server).
type hopTarget struct {
	base   string
	key    *enclave.HopKey
	secret string
}

// target resolves an envelope's destination: a remote shard address when
// the entry is a relay leg of a multi-process topology, else the tier's
// cascade next hop or upstream server. A remote address without attested
// key material is a transient error — the material stays queued until
// the operator re-registers the shard (losing a round over a missing key
// would be strictly worse than stalling the queue).
func (p *ShardedProxy) target(env *outbox.Envelope) (hopTarget, error) {
	if env.Dest != "" {
		p.mu.Lock()
		rs, ok := p.remotes[env.Dest]
		p.mu.Unlock()
		if !ok {
			return hopTarget{}, fmt.Errorf("proxy: no attested key for remote shard %s (topology v%d); re-register it via the topology admin endpoint", env.Dest, env.TopoVersion)
		}
		return hopTarget{base: env.Dest, key: rs.Key, secret: rs.Secret}, nil
	}
	if p.cfg.NextHop != "" {
		return hopTarget{base: p.cfg.NextHop, key: p.cfg.NextHopKey, secret: p.cfg.NextHopSecret}, nil
	}
	return hopTarget{base: p.cfg.Upstream}, nil
}

// deliver is the dispatcher callback: it sends one outbox entry (one
// destination's share of a drained round) onward. nil consumes the entry;
// a PermanentError quarantines it; anything else retries with backoff.
// It wraps deliverPayload to evict the entry's memo once the entry leaves
// the queue (acked or quarantined) — the memo map must track only live
// retries, not every entry ever delivered.
func (p *ShardedProxy) deliver(ctx context.Context, seq uint64, payload []byte) error {
	err := p.deliverPayload(ctx, seq, payload)
	var perm *outbox.PermanentError
	if err == nil || errors.As(err, &perm) {
		p.dcache.drop(seq)
	}
	return err
}

func (p *ShardedProxy) deliverPayload(ctx context.Context, seq uint64, payload []byte) error {
	c := p.dcache.get(seq)
	if c == nil {
		env, err := outbox.ParseEnvelope(payload)
		if err != nil {
			// The queue's open hook already authenticated the entry, so a
			// parse failure means a foreign or torn payload: set it aside.
			return outbox.Permanent(err)
		}
		c = &deliverMemo{env: env}
		p.dcache.put(seq, c)
	}
	env := c.env
	if len(env.Updates) == 0 {
		return nil
	}
	tgt, err := p.target(env)
	if err != nil {
		return err
	}
	if p.cfg.NoBatch || c.singles {
		return p.deliverSingles(ctx, seq, env, tgt)
	}
	if c.body == nil {
		enc, err := wire.BatchEnvelope{Updates: env.Updates}.Encode()
		if err != nil {
			return outbox.Permanent(err)
		}
		// The batch body must fit the receiver's read bound (plus
		// hop-wrap overhead); a round too large to batch — huge models ×
		// large C — falls back to per-update delivery instead of being
		// permanently rejected downstream and quarantined.
		const wrapMargin = 4096
		if len(enc)+wrapMargin > wire.MaxBodyBytes {
			// No silent caps: the fallback loses the batch idempotency id
			// (per-update POSTs are at-least-once across a crash), so the
			// downgrade must be visible.
			log.Printf("proxy: entry %d (%d bytes) exceeds the batch body bound; delivering per update", seq, len(enc))
			c.singles = true
			return p.deliverSingles(ctx, seq, env, tgt)
		}
		if tgt.key != nil {
			if enc, c.sess, err = p.wrapForHop(tgt, enc); err != nil {
				return err
			}
		}
		c.body, c.id = enc, batchIDFor(payload)
	}
	req := transport.BatchRequest{Body: c.body, ID: c.id}
	if tgt.key != nil {
		req.Hop, req.Secret = env.Hop, tgt.secret
	}
	// Sender identity + entry sequence let the receiver detect a stale
	// redelivery even after the id aged out of its dedup window.
	if sender := p.box.SenderID(); sender != "" {
		req.Sender, req.Seq, req.HasSeq = sender, seq, true
	}
	if _, err := p.tr.SendBatch(ctx, tgt.base, req); err != nil {
		if transport.SessionRejected(err) {
			// The downstream enclave lost our session and provably
			// ingested nothing: invalidate the memoized body so the next
			// attempt re-wraps under a fresh establish (the idempotency
			// id is plaintext-derived and unchanged, so a downstream
			// that DID apply an earlier attempt still dedups it).
			p.dropHopSession(tgt.base, c.sess)
			c.body, c.id, c.sess = nil, "", nil
		}
		return classifyDelivery(err)
	}
	p.mu.Lock()
	p.forwarded += len(env.Updates)
	p.batches++
	p.mu.Unlock()
	return nil
}

// deliverSingles is the NoBatch compatibility path: one POST per update
// to the single-update endpoints. Progress is persisted into the outbox
// on every confirmed send, so a mid-round outage — or a proxy crash —
// resumes where delivery stopped instead of resending the round:
// per-update delivery is exactly-once across crashes too, not just
// within one process lifetime.
func (p *ShardedProxy) deliverSingles(ctx context.Context, seq uint64, env *outbox.Envelope, tgt hopTarget) error {
	for i := p.box.Progress(seq); i < len(env.Updates); i++ {
		if err := p.forwardOne(ctx, env.Updates[i], env.Hop, tgt); err != nil {
			return err
		}
		if perr := p.box.SetProgress(seq, i+1); perr != nil {
			// Progress is an optimisation for crash recovery; failing to
			// record it must not fail the delivery — but it must be loud,
			// because a crash now would re-send from the last marker.
			log.Printf("proxy: entry %d: record delivery progress %d: %v", seq, i+1, perr)
		}
		p.mu.Lock()
		p.forwarded++
		p.mu.Unlock()
	}
	return nil
}

// forwardOne sends one mixed update onward: re-encrypted for the
// target's enclave when it has a hop key (cascade next hop or remote
// shard), in plaintext to the aggregation server otherwise.
func (p *ShardedProxy) forwardOne(ctx context.Context, raw []byte, fwdHop int, tgt hopTarget) error {
	var err error
	if tgt.key != nil {
		ct, sess, werr := p.wrapForHop(tgt, raw)
		if werr != nil {
			return werr
		}
		_, err = p.tr.Hop(ctx, tgt.base, transport.HopRequest{Body: ct, Hop: fwdHop, Secret: tgt.secret})
		if err != nil && transport.SessionRejected(err) {
			// Singles wrap fresh per attempt, so dropping the session is
			// all the recovery the retry needs.
			p.dropHopSession(tgt.base, sess)
		}
	} else {
		_, err = p.tr.SendUpdate(ctx, tgt.base, transport.UpdateRequest{Body: raw})
	}
	if err != nil {
		return classifyDelivery(err)
	}
	return nil
}

// classifyDelivery maps a transport error onto the dispatcher's retry
// semantics: a typed rejection carrying the stale marker, a definitive
// 4xx, or a depth rejection is permanent (retrying an entry the
// downstream rejects forever would wedge the strictly-ordered queue);
// anything else — including transport-level failures, where the
// downstream is simply unreachable — is transient. Auth failures
// (401/403) stay transient: they usually mean a secret rotation in
// progress, and quarantining a whole round over a recoverable operator
// mistake would lose it.
func classifyDelivery(err error) error {
	if errors.Is(err, transport.ErrNotSupported) {
		// A Loopback receiver that does not serve the operation — the
		// same misconfiguration an HTTP receiver answers with 404, which
		// the branch below quarantines; the two transports must agree on
		// retry policy.
		return outbox.Permanent(fmt.Errorf("proxy: downstream does not serve this operation: %w", err))
	}
	se := transport.AsStatus(err)
	if se == nil {
		return err // transient: downstream unreachable
	}
	code := se.Code
	switch {
	case se.SessionUnknown:
		// The downstream enclave lost the crypto session this entry was
		// wrapped under (restart or cache eviction) and provably
		// ingested nothing. The sender already invalidated the session
		// and memoized body, so the retry re-establishes — transient,
		// NOT the permanent 4xx class: quarantining would lose a good
		// round over a recoverable key-cache condition.
		return fmt.Errorf("proxy: downstream lost the delivery crypto session (re-establishing on retry): %d %s", code, se.Msg)
	case se.Stale && code == http.StatusConflict:
		return outbox.Permanent(fmt.Errorf("proxy: downstream rejected delivery as stale duplicate: %d %s", code, se.Msg))
	case code >= 400 && code < 500 &&
		code != http.StatusUnauthorized && code != http.StatusForbidden &&
		code != http.StatusConflict && // a duplicate still being applied by an earlier attempt
		code != http.StatusRequestTimeout && code != http.StatusTooManyRequests:
		return outbox.Permanent(fmt.Errorf("proxy: downstream rejected delivery: %d %s", code, se.Msg))
	case code == http.StatusLoopDetected:
		// The hop stamp inside the entry is immutable, so a depth
		// rejection can never succeed on retry.
		return outbox.Permanent(fmt.Errorf("proxy: downstream rejected delivery: %d %s", code, se.Msg))
	default:
		return fmt.Errorf("proxy: downstream returned %d %s", code, se.Msg)
	}
}

// AttestHop performs the proxy-to-proxy attestation handshake over
// HTTP: it fetches the next hop's report, verifies it against the
// attestation authority and expected measurement, and returns the
// pinned hop key for ShardedConfig.NextHopKey. httpc may be nil for a
// default client.
func AttestHop(ctx context.Context, nextHopURL string, httpc *http.Client, authority *ecdsa.PublicKey, measurement [32]byte) (*enclave.HopKey, error) {
	return AttestHopOver(ctx, transport.NewHTTP(httpc), nextHopURL, authority, measurement)
}

// AttestHopOver is AttestHop over an arbitrary transport (a Loopback
// tier attests its hops the same way an HTTP one does).
func AttestHopOver(ctx context.Context, tr transport.Transport, nextHopEP string, authority *ecdsa.PublicKey, measurement [32]byte) (*enclave.HopKey, error) {
	rep, nonce, err := transport.FetchReport(ctx, tr, nextHopEP)
	if err != nil {
		return nil, err
	}
	return enclave.TrustHop(rep, authority, measurement, nonce)
}

// shardStateLabel domain-separates the tier's durable state from other
// sealed material; each shard's section is additionally sealed under a
// per-shard derived key (see sectionLabel).
const shardStateLabel = "mixnn/sharded-state/v1"

func sectionLabel(shard int) string {
	switch shard {
	case core.PendingSection:
		return shardStateLabel + "/pending"
	case core.TrustSection:
		return shardStateLabel + "/trust"
	}
	return fmt.Sprintf("%s/shard/%d", shardStateLabel, shard)
}

// SealState exports the whole tier's durable state — every shard's
// buffered layers, the pending (emitted but not yet committed) updates,
// the per-shard ledgers, routing metadata and the round ledger — sealed
// under the enclave's identity-bound keys, so a proxy crash mid-round
// loses no participant material and leaks none to the untrusted host
// (§2.5 sealing applied to the §4.3 lists, tier-wide). Outbox entries are
// NOT in the blob: they are already durable (and sealed) on disk.
// SealState is safe to call concurrently with ingress: it waits for
// in-flight round commits (so no material sits between mixers and the
// outbox) and snapshots under the same mutex that serialises mixing, so
// the blob is always round-consistent.
func (p *ShardedProxy) SealState() ([]byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for p.closing > 0 {
		p.cond.Wait()
	}
	shardRecv := make([]int, len(p.shards))
	shardEmit := make([]int, len(p.shards))
	for s, m := range p.shards {
		shardRecv[s] = p.shardRecv[s] + m.Received()
		shardEmit[s] = p.shardEmit[s] + m.Emitted()
	}
	load := make([]int, len(p.rst.Load))
	copy(load, p.rst.Load)
	// Remote-shard trust material rides the blob (sealed under its own
	// derived key — it carries inter-proxy secrets) so the replacement
	// tier can re-attest its relay peers without an admin directive.
	// Restored-but-not-yet-reattested trust is included too: a tier
	// sealed while a peer was still down must not lose that peer's
	// trust, or its own blob would become unrestorable.
	trust := make(map[string]RemoteTrust)
	for addr, rt := range p.sealedTrust {
		trust[addr] = rt
	}
	for addr, rs := range p.remotes {
		if rs.Trust != nil {
			trust[addr] = *rs.Trust
		}
	}
	var trustBlob []byte
	if len(trust) > 0 {
		var err error
		if trustBlob, err = json.Marshal(trust); err != nil {
			return nil, fmt.Errorf("proxy: marshal remote trust: %w", err)
		}
	}
	raw, err := core.SealShardedState(p.shards, core.ShardedStateMeta{
		Routing:       core.RoutingMode(p.topo.Mode()),
		RRCursor:      p.rst.RR,
		InRound:       p.inRound,
		Rounds:        p.rounds,
		HopMark:       p.hopMark,
		Received:      p.received,
		HopReceived:   p.hopReceived,
		Forwarded:     p.forwarded,
		ShardReceived: shardRecv,
		ShardEmitted:  shardEmit,
		Pending:       p.pending,
		ShardLoad:     load,
		Topo:          p.topo.Marshal(),
		RemoteTrust:   trustBlob,
	}, func(s int, plain []byte) ([]byte, error) {
		return p.enclave.SealLabeled(sectionLabel(s), plain)
	})
	if err != nil {
		return nil, fmt.Errorf("proxy: export tier state: %w", err)
	}
	blob, err := p.enclave.SealLabeled(shardStateLabel, raw)
	if err != nil {
		return nil, fmt.Errorf("proxy: seal tier state: %w", err)
	}
	return blob, nil
}

// RestoreState loads a SealState blob into a freshly-constructed tier
// (same enclave identity and platform).
//
// With AdoptSealedTopology set and a v3 blob, the tier comes back under
// EXACTLY the topology it was sealed under — routing mode, shard
// weights, remote placement, quota loads and topology version — so a
// crash-restart lands mid-round with the routing plane intact, whatever
// the replacement's static flags said.
//
// Otherwise the blob's material is resharded into THIS tier's configured
// topology: buffered material is redistributed across the new shards
// with the round's layer-wise aggregate unchanged, so an operator can
// crash a P-shard proxy and bring up a P′-shard replacement mid-round.
// Per-shard mixer ledgers restore exactly for an unchanged shard count
// and as a sum-preserving redistribution otherwise; pending emissions
// restore into the pending buffer and ride the next round's outbox
// entry.
func (p *ShardedProxy) RestoreState(blob []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.received != 0 || p.hopReceived != 0 {
		return fmt.Errorf("proxy: RestoreState on a proxy that already processed updates")
	}
	raw, err := p.enclave.UnsealLabeled(shardStateLabel, blob)
	if err != nil {
		return fmt.Errorf("proxy: unseal tier state: %w", err)
	}
	// Restore into fresh mixers so a failed restore cannot leave the
	// serving tier half-populated. The mixers continue the sealed tier's
	// epoch, so their rand streams don't replay an earlier epoch's.
	epoch, err := core.ShardedStateRounds(raw)
	if err != nil {
		return fmt.Errorf("proxy: restore tier state: %w", err)
	}
	topo := p.topo
	adopted := false
	if p.cfg.AdoptSealedTopology {
		topoBlob, err := core.ShardedStateTopo(raw)
		if err != nil {
			return fmt.Errorf("proxy: restore tier state: %w", err)
		}
		if topoBlob != nil {
			if topo, err = route.Parse(topoBlob); err != nil {
				return fmt.Errorf("proxy: sealed topology: %w", err)
			}
			adopted = true
		}
	}
	fresh, err := newShardSet(p.cfg, topo, epoch, p.slabPool)
	if err != nil {
		return err
	}
	meta, err := core.RestoreShardedState(raw, fresh, func(s int, sealed []byte) ([]byte, error) {
		return p.enclave.UnsealLabeled(sectionLabel(s), sealed)
	})
	if err != nil {
		return fmt.Errorf("proxy: restore tier state: %w", err)
	}
	// Every remote shard of the adopted topology needs either an
	// already-registered key or sealed trust material to re-attest from
	// (v4 blobs carry it); with neither the relay leg could never
	// deliver, so refuse the restore up front.
	sealedTrust := make(map[string]RemoteTrust)
	if meta.RemoteTrust != nil {
		if err := json.Unmarshal(meta.RemoteTrust, &sealedTrust); err != nil {
			return fmt.Errorf("proxy: sealed remote trust: %w", err)
		}
	}
	if adopted {
		for _, addr := range topo.Remotes() {
			if _, ok := p.remotes[addr]; ok {
				continue
			}
			if _, ok := sealedTrust[addr]; !ok {
				return fmt.Errorf("proxy: sealed topology names remote shard %q but no attested key is registered (RemoteShards) and the blob carries no trust material for it", addr)
			}
		}
	}
	if meta.Routing < core.RoutingHashRR || meta.Routing > core.RoutingHashQuota {
		return fmt.Errorf("proxy: sealed state uses unknown routing mode %d", meta.Routing)
	}
	if meta.InRound >= topo.RoundSize() {
		return fmt.Errorf("proxy: sealed in-round progress %d does not fit round size %d", meta.InRound, topo.RoundSize())
	}
	p.shards = fresh
	p.topo = topo
	p.planner.Reset(topo)
	p.rst = topo.NewState()
	p.rst.RR = meta.RRCursor % topo.P()
	if adopted && meta.ShardLoad != nil && len(meta.ShardLoad) == topo.P() {
		copy(p.rst.Load, meta.ShardLoad)
	} else {
		// Resharded restore: the sealed per-shard loads describe shards
		// that no longer exist. Spread the open round's routed count
		// round-robin — approximate, but quota enforcement only needs the
		// totals to add up.
		for i := 0; i < meta.InRound; i++ {
			p.rst.Load[i%topo.P()]++
		}
	}
	p.inRound = meta.InRound
	p.rounds = meta.Rounds
	p.putEpoch = meta.Rounds
	p.hopMark = meta.HopMark
	p.received = meta.Received
	p.hopReceived = meta.HopReceived
	p.forwarded = meta.Forwarded
	p.pending = meta.Pending
	p.restoredFrom = meta.SealedShards
	p.shardRecv, p.shardEmit = restoredLedgers(meta, fresh)
	// Keep the sealed trust for addresses still lacking a key;
	// ReattestRemotes (or an explicit RegisterRemote) turns them into
	// deliverable relay legs.
	for addr, rt := range sealedTrust {
		if _, ok := p.remotes[addr]; ok {
			continue
		}
		if p.sealedTrust == nil {
			p.sealedTrust = make(map[string]RemoteTrust)
		}
		p.sealedTrust[addr] = rt
	}
	return nil
}

// ReattestRemotes re-runs the hop attestation handshake for every
// remote shard whose trust material was restored from a seal blob but
// whose key has not been re-attested yet, registering the fresh keys it
// pins (which also wakes the delivery dispatcher: queued relay entries
// for those shards become deliverable). The sealed PINNED key would not
// have been enough — a peer's enclave key does not survive the peer's
// own restart — which is why the blob carries trust material instead.
// A peer that is down stays in the pending set (its queued material
// stalls, it is never lost) and the returned error reports it; calling
// again retries.
func (p *ShardedProxy) ReattestRemotes(ctx context.Context) error {
	p.mu.Lock()
	pending := make(map[string]RemoteTrust, len(p.sealedTrust))
	for addr, rt := range p.sealedTrust {
		if _, ok := p.remotes[addr]; ok {
			continue // registered out of band since the restore
		}
		pending[addr] = rt
	}
	p.mu.Unlock()
	var errs []error
	for addr, rt := range pending {
		rs, err := resolveRemoteShard(ctx, wire.TopologyShardSpec{
			Addr:            addr,
			AuthorityPubDER: rt.AuthorityPubDER,
			MeasurementHex:  rt.MeasurementHex,
			Secret:          rt.Secret,
		}, p.tr)
		if err != nil {
			errs = append(errs, fmt.Errorf("proxy: re-attest remote shard %s: %w", addr, err))
			continue
		}
		if err := p.RegisterRemote(addr, rs); err != nil {
			errs = append(errs, err)
			continue
		}
		p.mu.Lock()
		delete(p.sealedTrust, addr)
		p.mu.Unlock()
	}
	return errors.Join(errs...)
}

// restoredLedgers maps the sealed per-shard mixer ledgers onto the
// restoring tier. With an unchanged shard count the mapping is exact
// (each mixer already re-counted its restored entries; the carry is the
// history beyond them). Across a reshard the totals are preserved and
// spread evenly — per-shard exactness is not meaningful when the shards
// themselves changed.
func restoredLedgers(meta core.ShardedStateMeta, mixers []core.Shard) (recv, emit []int) {
	pPrime := len(mixers)
	recv = make([]int, pPrime)
	emit = make([]int, pPrime)
	if meta.ShardReceived == nil {
		// A v1 blob carries no per-shard ledgers; they start over.
		return recv, emit
	}
	if pPrime == meta.SealedShards {
		for s := range mixers {
			if recv[s] = meta.ShardReceived[s] - mixers[s].Received(); recv[s] < 0 {
				recv[s] = 0
			}
			emit[s] = meta.ShardEmitted[s]
		}
		return recv, emit
	}
	totalRecv, totalEmit, restored := 0, 0, 0
	for _, v := range meta.ShardReceived {
		totalRecv += v
	}
	for _, v := range meta.ShardEmitted {
		totalEmit += v
	}
	for _, m := range mixers {
		restored += m.Received()
	}
	carry := totalRecv - restored
	if carry < 0 {
		carry = 0
	}
	for s := 0; s < pPrime; s++ {
		recv[s] = carry / pPrime
		if s < carry%pPrime {
			recv[s]++
		}
		emit[s] = totalEmit / pPrime
		if s < totalEmit%pPrime {
			emit[s]++
		}
	}
	return recv, emit
}

// HandleAttest serves a signed enclave report bound to the caller's
// nonce so participants (and upstream cascade proxies) can verify this
// enclave before trusting its key. It implements transport.Server.
func (p *ShardedProxy) HandleAttest(ctx context.Context, nonce []byte) (wire.AttestationResponse, error) {
	if len(nonce) == 0 {
		return wire.AttestationResponse{}, transport.Errorf(http.StatusBadRequest, "missing or invalid nonce")
	}
	rep, err := p.platform.Attest(p.enclave, nonce)
	if err != nil {
		return wire.AttestationResponse{}, err
	}
	return wire.AttestationResponse{
		MeasurementHex: hex.EncodeToString(rep.Measurement[:]),
		NonceHex:       hex.EncodeToString(rep.Nonce),
		PubKeyDER:      rep.PubKeyDER,
		Signature:      rep.Signature,
	}, nil
}

// HandleModel implements transport.Server: proxies serve no model.
func (p *ShardedProxy) HandleModel(ctx context.Context) (transport.ModelResponse, error) {
	return transport.ModelResponse{}, transport.ErrNotSupported
}

// HandleStatus implements transport.Server.
func (p *ShardedProxy) HandleStatus(ctx context.Context) (transport.StatusResponse, error) {
	st := p.Status()
	return transport.StatusResponse{Proxy: &st}, nil
}

// HandleTopology implements transport.Server: the admin plane. A nil
// directive reads the routing plane; a non-nil one stages it for the
// next round close. Both sides are gated on the inter-proxy secret —
// and staging over the network requires the proxy to HAVE one:
// reshaping the tier is privacy-critical either way (a forged directive
// could shrink the anonymity set to one shard, or attach an
// attacker-attested "remote shard" that receives raw pre-mix updates).
// Operators without a secret still have -shards-file and the Go API.
func (p *ShardedProxy) HandleTopology(ctx context.Context, req transport.TopologyRequest) (wire.TopologyStatus, error) {
	if req.Directive != nil && p.cfg.HopSecret == "" {
		return wire.TopologyStatus{}, transport.Errorf(http.StatusForbidden,
			"topology admin POST requires the proxy to be started with an inter-proxy secret (-hop-secret)")
	}
	if p.cfg.HopSecret != "" &&
		subtle.ConstantTimeCompare([]byte(req.Secret), []byte(p.cfg.HopSecret)) != 1 {
		return wire.TopologyStatus{}, transport.Errorf(http.StatusUnauthorized, "topology admin requires the inter-proxy secret")
	}
	if req.Directive != nil {
		if _, err := p.StageTopology(ctx, *req.Directive); err != nil {
			return wire.TopologyStatus{}, transport.Errorf(http.StatusUnprocessableEntity, "%s", err.Error())
		}
	}
	return p.TopologyStatus(), nil
}

// Status snapshots the tier: global round progress plus per-shard mixers
// (cumulative across epoch swaps and restores) and the delivery
// pipeline's epoch/backlog. p.mu is held across the whole snapshot (lock
// order p.mu → mixer.mu, as in ingest) so the per-shard counters are
// consistent with the global round state — a concurrent round close
// cannot appear half-applied.
func (p *ShardedProxy) Status() wire.ShardedProxyStatus {
	// Lane stats are snapshotted before p.mu: the dispatcher runs its own
	// lock domain, and holding p.mu across it would nest p.mu outside the
	// delivery locks for no consistency gain. OutboxPending is the SUM of
	// this one snapshot, not a separate p.box.Len() read — two reads at
	// different instants race the dispatcher's acks, and a status poller
	// under load would see a total no set of lanes ever added up to.
	var lanes []wire.OutboxLaneStatus
	pending := 0
	for _, ls := range p.disp.LaneStats() {
		pending += ls.Pending
		lanes = append(lanes, wire.OutboxLaneStatus{
			Dest:        ls.Lane,
			Pending:     ls.Pending,
			InFlight:    ls.InFlight,
			BackoffMs:   float64(ls.Backoff) / float64(time.Millisecond),
			NextRetryMs: float64(ls.NextRetry) / float64(time.Millisecond),
			Delivered:   ls.Delivered,
			Failures:    ls.Failures,
		})
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	shards := make([]wire.ShardStatus, len(p.shards))
	for s, m := range p.shards {
		spec := p.topo.Spec(s)
		shards[s] = wire.ShardStatus{
			Shard:    s,
			K:        m.K(),
			Buffered: m.Buffered(),
			Received: p.shardRecv[s] + m.Received(),
			Emitted:  p.shardEmit[s] + m.Emitted(),
			Quota:    p.topo.Quota(s),
			Load:     p.rst.Load[s],
			Addr:     spec.Addr,
			Weight:   spec.Weight,
		}
	}
	var stagedVer uint64
	if staged := p.planner.Staged(); staged != nil {
		stagedVer = staged.Version()
	}
	st := p.enclave.Stats()
	return wire.ShardedProxyStatus{
		Shards:            shards,
		Received:          p.received,
		HopReceived:       p.hopReceived,
		Forwarded:         p.forwarded,
		Rounds:            p.rounds,
		InRound:           p.inRound,
		RoundSize:         p.topo.RoundSize(),
		Epoch:             p.rounds,
		OutboxPending:     pending,
		OutboxLanes:       lanes,
		BatchesSent:       p.batches,
		NextHop:           p.cfg.NextHop,
		MaxHops:           p.cfg.MaxHops,
		TopoVersion:       p.topo.Version(),
		RoutingMode:       p.topo.Mode().String(),
		StagedTopoVersion: stagedVer,
		OutboxQuarantined: p.box.Quarantined(),
		RestoredFrom:      p.restoredFrom,
		UpdateBytes:       p.updateBytes,
		EnclaveUsed:       st.MemoryUsedBytes,
		EnclavePeak:       st.MemoryPeakBytes,
		EnclavePaging:     st.PageEvents,
		DecryptMillis:     p.decryptT.meanMillisExact(),
		DecryptMicros:     p.decryptT.meanMillisExact() * 1000,
		StoreMillis:       p.storeT.meanMillisExact(),
		MixMillis:         p.mixT.meanMillisExact(),
		ProcessMillis:     p.processT.meanMillisExact(),

		SessionsActive:      st.SessionsActive,
		SessionsEstablished: st.SessionsEstablished,
		SessionHits:         st.SessionHits,
		SessionMisses:       st.SessionMisses,
		SessionEvictions:    st.SessionEvictions,
		SessionReplays:      st.SessionReplays,

		AdmissionRateLimited: p.admRate.Load(),
		AdmissionShed:        p.admShed.Load(),
	}
}
