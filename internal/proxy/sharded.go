package proxy

import (
	"bytes"
	"context"
	"crypto/ecdsa"
	"crypto/subtle"
	"fmt"
	"hash/fnv"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"

	"mixnn/internal/core"
	"mixnn/internal/enclave"
	"mixnn/internal/nn"
	"mixnn/internal/wire"
)

// DefaultMaxHops bounds cascade depth: a forwarded update whose hop count
// exceeds this is rejected, which breaks accidental forwarding cycles.
const DefaultMaxHops = 4

// ShardedConfig parameterises a sharded (and optionally cascaded) MixNN
// proxy tier.
type ShardedConfig struct {
	// Upstream is the aggregation server base URL; mixed updates go there
	// in plaintext when no NextHop is configured.
	Upstream string
	// NextHop, when non-empty, is the base URL of the next mixing proxy of
	// the cascade. Mixed updates are re-encrypted with NextHopKey and
	// posted to {NextHop}/v1/hop instead of Upstream.
	NextHop string
	// NextHopKey is the attested (or pinned) key material for NextHop.
	// Required when NextHop is set.
	NextHopKey *enclave.HopKey
	// NextHopSecret, when non-empty, is sent as a bearer token with
	// forwarded hop traffic (it must match the next hop's HopSecret).
	NextHopSecret string
	// HopSecret, when non-empty, gates this proxy's /v1/hop endpoint:
	// requests without the matching bearer token are rejected. Without
	// it any party holding the (public) enclave key can post to /v1/hop
	// and poison the round's hop watermark, killing the round at the
	// next depth check.
	HopSecret string
	// Shards is the number of independent mixing shards P (default 1).
	Shards int
	// K is the per-shard list capacity of each stream mixer; it is clamped
	// to the shard's round-robin share of RoundSize so every shard's
	// buffer fills and drains within a round.
	K int
	// RoundSize is the total number of updates per round (C) across all
	// shards; when it is reached every shard is drained so the round
	// closes with exact aggregation equivalence.
	RoundSize int
	// MaxHops bounds cascade depth (default DefaultMaxHops).
	MaxHops int
	// Seed drives the mixing randomness (each shard derives its own
	// stream from it).
	Seed int64
	// HTTPClient overrides the forwarding client (tests); nil = default.
	HTTPClient *http.Client
}

// ShardedProxy is the horizontally-scaled MixNN mixing tier: participants
// are partitioned across P independent stream mixers (shards) behind one
// endpoint, and the mixed output optionally cascades to a next-hop proxy
// re-encrypted for that hop's enclave. Sharding removes the single-mixer
// bottleneck; cascading restores mixing breadth across shards (a layer
// that stayed within its shard on hop 1 is re-mixed against the whole
// round on hop 2) and unlinks each proxy's view — no single hop observes
// both who sent an update and what reaches the aggregation server.
type ShardedProxy struct {
	cfg      ShardedConfig
	enclave  *enclave.Enclave
	platform *enclave.Platform
	httpc    *http.Client
	shards   []*core.StreamMixer

	mu           sync.Mutex
	rr           int // round-robin routing cursor
	inRound      int // updates received in the current round
	rounds       int // completed rounds
	hopMark      int // highest incoming hop depth seen this round
	received     int // participant updates ingested (hop 0)
	hopReceived  int // cascade updates ingested (hop >= 1)
	forwarded    int
	restoredFrom int // shard count of the blob this tier restored from (0 = fresh)
	updateBytes  int
	decryptT     timing
	storeT       timing
	mixT         timing
	processT     timing
}

// NewSharded builds a sharded proxy tier hosted in the given enclave.
func NewSharded(cfg ShardedConfig, encl *enclave.Enclave, platform *enclave.Platform) (*ShardedProxy, error) {
	if cfg.Upstream == "" && cfg.NextHop == "" {
		return nil, fmt.Errorf("proxy: ShardedConfig needs an Upstream or a NextHop")
	}
	if cfg.NextHop != "" && cfg.NextHopKey == nil {
		return nil, fmt.Errorf("proxy: NextHop %q configured without NextHopKey", cfg.NextHop)
	}
	if cfg.RoundSize <= 0 {
		return nil, fmt.Errorf("proxy: ShardedConfig.RoundSize must be positive, got %d", cfg.RoundSize)
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if cfg.Shards > cfg.RoundSize {
		return nil, fmt.Errorf("proxy: %d shards for round size %d (shards must not outnumber participants)", cfg.Shards, cfg.RoundSize)
	}
	if cfg.MaxHops <= 0 {
		cfg.MaxHops = DefaultMaxHops
	}
	if encl == nil || platform == nil {
		return nil, fmt.Errorf("proxy: enclave and platform are required")
	}
	httpc := cfg.HTTPClient
	if httpc == nil {
		httpc = &http.Client{Timeout: 60 * time.Second}
	}
	shards, err := newShardMixers(cfg)
	if err != nil {
		return nil, err
	}
	return &ShardedProxy{cfg: cfg, enclave: encl, platform: platform, httpc: httpc, shards: shards}, nil
}

// newShardMixers builds the tier's fresh mixers from a validated config:
// per-shard K clamped to the round-robin share, per-shard rand streams
// derived from the seed. Shared by NewSharded and RestoreState so a
// restored tier is shaped exactly like a freshly built one.
func newShardMixers(cfg ShardedConfig) ([]*core.StreamMixer, error) {
	sizes := core.ShardSizes(cfg.RoundSize, cfg.Shards)
	shards := make([]*core.StreamMixer, cfg.Shards)
	for s := range shards {
		k := cfg.K
		if k <= 0 || k > sizes[s] {
			k = sizes[s]
		}
		// Each shard owns its rand stream: StreamMixer serialises itself,
		// but a shared rand.Rand across concurrently-adding shards would
		// race.
		m, err := core.NewStreamMixer(k, rand.New(rand.NewSource(cfg.Seed+int64(s))))
		if err != nil {
			return nil, fmt.Errorf("proxy: shard %d: %w", s, err)
		}
		shards[s] = m
	}
	return shards, nil
}

// Shards returns the shard count P. It synchronises with RestoreState,
// which swaps the shard slice under p.mu.
func (p *ShardedProxy) Shards() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.shards)
}

// Handler returns the sharded proxy's HTTP API: the participant endpoint,
// the inter-proxy cascade endpoint, attestation and status.
func (p *ShardedProxy) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/update", func(w http.ResponseWriter, r *http.Request) {
		p.handleIngress(w, r, false)
	})
	mux.HandleFunc("POST /v1/hop", func(w http.ResponseWriter, r *http.Request) {
		p.handleIngress(w, r, true)
	})
	mux.HandleFunc("GET /v1/attestation", p.handleAttestation)
	mux.HandleFunc("GET /v1/status", p.handleStatus)
	return mux
}

// handleIngress processes one encrypted update, from a participant
// (/v1/update, hop 0) or from an upstream proxy of the cascade (/v1/hop).
func (p *ShardedProxy) handleIngress(w http.ResponseWriter, r *http.Request, fromHop bool) {
	hop := 0
	if fromHop {
		if p.cfg.HopSecret != "" &&
			subtle.ConstantTimeCompare([]byte(r.Header.Get("Authorization")), []byte("Bearer "+p.cfg.HopSecret)) != 1 {
			http.Error(w, "hop endpoint requires the inter-proxy secret", http.StatusUnauthorized)
			return
		}
		var err error
		hop, err = wire.ParseHop(r.Header)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if hop == 0 {
			hop = 1 // an upstream proxy that omitted the header is hop 1
		}
		if hop > p.cfg.MaxHops {
			http.Error(w, fmt.Sprintf("cascade depth %d exceeds limit %d", hop, p.cfg.MaxHops), http.StatusLoopDetected)
			return
		}
	} else if r.Header.Get(wire.HeaderHop) != "" {
		// Participants must not forge cascade depth: a forged header
		// would be stamped +1 onto every update their round emits and
		// could poison the whole round at the next hop's depth check.
		http.Error(w, fmt.Sprintf("%s not allowed on the participant endpoint", wire.HeaderHop), http.StatusBadRequest)
		return
	}
	body, err := wire.ReadBody(r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	var (
		emitted []nn.ParamSet
		shard   int
		fwdHop  int
	)
	start := time.Now()
	procErr := p.enclave.Process(func() error {
		var err error
		emitted, shard, fwdHop, err = p.ingest(body, r.Header.Get(wire.HeaderClient), hop, fromHop)
		return err
	})
	p.mu.Lock()
	p.processT.add(time.Since(start))
	p.mu.Unlock()
	if procErr != nil {
		http.Error(w, procErr.Error(), http.StatusBadRequest)
		return
	}

	// Forward on a context detached from the triggering request: a drain
	// carries the whole round's material, and one participant's
	// disconnect must not cancel delivery of everyone else's updates.
	fwdCtx, cancel := context.WithTimeout(context.WithoutCancel(r.Context()), forwardTimeout)
	defer cancel()
	// Attempt every emitted update even if one fails: the mixers have
	// already released this material, so stopping at the first error
	// would silently drop the rest of a drained round downstream.
	var fwdErr error
	for _, ps := range emitted {
		if err := p.forward(fwdCtx, ps, fwdHop); err != nil && fwdErr == nil {
			fwdErr = err
		}
	}
	if fwdErr != nil {
		http.Error(w, fmt.Sprintf("forward: %v", fwdErr), http.StatusBadGateway)
		return
	}
	w.Header().Set(wire.HeaderShard, strconv.Itoa(shard))
	w.WriteHeader(http.StatusAccepted)
}

// routeLocked picks the shard for an update: a stable FNV hash of the
// client id when the participant identifies itself (so a client's updates
// always meet the same buffer), round-robin otherwise. The caller holds
// p.mu, which also synchronises with RestoreState's shard-slice swap.
func (p *ShardedProxy) routeLocked(clientID string) int {
	if clientID != "" {
		h := fnv.New32a()
		h.Write([]byte(clientID))
		return int(h.Sum32() % uint32(len(p.shards)))
	}
	s := p.rr
	p.rr = (p.rr + 1) % len(p.shards)
	return s
}

// ingest decrypts and decodes one update inside the enclave, feeds it to
// its shard's mixer, and drains every shard when the round completes.
// The expensive stages (decrypt, decode — milliseconds) run outside any
// lock so concurrent requests parallelise; the cheap mixing step (layer
// pointer swaps — microseconds) and the round accounting run under one
// mutex, which makes round closure atomic: a drain can never sweep in an
// update that belongs to the next round.
//
// The returned fwdHop is the depth to stamp on forwarded updates: one
// past the highest incoming depth seen in the current round. Buffered
// material loses its individual depth inside the mixers, so the
// watermark is what keeps depth monotone — in an accidental proxy cycle
// the watermark grows every traversal until the MaxHops check breaks
// the loop.
func (p *ShardedProxy) ingest(ciphertext []byte, clientID string, hop int, fromHop bool) ([]nn.ParamSet, int, int, error) {
	t0 := time.Now()
	plain, err := p.enclave.Decrypt(ciphertext)
	decryptDur := time.Since(t0)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("proxy: decrypt: %w", err)
	}
	t1 := time.Now()
	ps, err := nn.DecodeParamSet(plain)
	decodeDur := time.Since(t1) // measured outside p.mu so lock wait doesn't pollute it
	if err != nil {
		return nil, 0, 0, fmt.Errorf("proxy: decode: %w", err)
	}

	p.enclave.Alloc(len(plain))

	p.mu.Lock()
	shard := p.routeLocked(clientID)
	p.decryptT.add(decryptDur)
	p.updateBytes = len(plain)
	var emitted []nn.ParamSet
	tAdd := time.Now()
	out, err := p.shards[shard].Add(ps)
	p.storeT.add(decodeDur + time.Since(tAdd)) // §6.5 store stage: decode + file into the lists
	if err != nil {
		p.mu.Unlock()
		p.enclave.Free(len(plain))
		return nil, shard, 0, fmt.Errorf("proxy: shard %d mix: %w", shard, err)
	}
	t2 := time.Now()
	if out != nil {
		emitted = append(emitted, *out)
	}
	if fromHop {
		p.hopReceived++
	} else {
		p.received++
	}
	if hop > p.hopMark {
		p.hopMark = hop
	}
	fwdHop := p.hopMark + 1
	p.inRound++
	if p.inRound >= p.cfg.RoundSize {
		p.inRound = 0
		p.rounds++
		p.hopMark = 0
		for _, m := range p.shards {
			emitted = append(emitted, m.Drain()...)
		}
	}
	p.mixT.add(time.Since(t2)) // §6.5 mix stage: emission assembly + round drain
	p.mu.Unlock()

	p.enclave.Free(len(plain) * len(emitted))
	return emitted, shard, fwdHop, nil
}

// forwardTimeout bounds delivery of one mixed update downstream; the
// context is detached from the triggering request, so this is the only
// cancellation forwarding has.
const forwardTimeout = 60 * time.Second

// forward sends one mixed update onward: re-encrypted to the cascade's
// next hop when one is configured, in plaintext to the aggregation server
// otherwise. fwdHop is the depth to stamp (the round's hop watermark + 1,
// see ingest).
func (p *ShardedProxy) forward(ctx context.Context, ps nn.ParamSet, fwdHop int) error {
	raw, err := nn.EncodeParamSet(ps)
	if err != nil {
		return err
	}
	var req *http.Request
	if p.cfg.NextHop != "" {
		ct, err := p.cfg.NextHopKey.Wrap(raw)
		if err != nil {
			return fmt.Errorf("proxy: wrap for next hop: %w", err)
		}
		req, err = http.NewRequestWithContext(ctx, http.MethodPost, p.cfg.NextHop+"/v1/hop", bytes.NewReader(ct))
		if err != nil {
			return err
		}
		req.Header.Set(wire.HeaderHop, strconv.Itoa(fwdHop))
		if p.cfg.NextHopSecret != "" {
			req.Header.Set("Authorization", "Bearer "+p.cfg.NextHopSecret)
		}
	} else {
		req, err = http.NewRequestWithContext(ctx, http.MethodPost, p.cfg.Upstream+"/v1/update", bytes.NewReader(raw))
		if err != nil {
			return err
		}
	}
	req.Header.Set("Content-Type", wire.ContentTypeUpdate)
	resp, err := p.httpc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("proxy: downstream returned %s", resp.Status)
	}
	p.mu.Lock()
	p.forwarded++
	p.mu.Unlock()
	return nil
}

// AttestHop performs the proxy-to-proxy attestation handshake: it fetches
// the next hop's report, verifies it against the attestation authority and
// expected measurement, and returns the pinned hop key for
// ShardedConfig.NextHopKey. httpc may be nil for a default client.
func AttestHop(ctx context.Context, nextHopURL string, httpc *http.Client, authority *ecdsa.PublicKey, measurement [32]byte) (*enclave.HopKey, error) {
	if httpc == nil {
		httpc = &http.Client{Timeout: 60 * time.Second}
	}
	rep, nonce, err := fetchReport(ctx, httpc, nextHopURL)
	if err != nil {
		return nil, err
	}
	return enclave.TrustHop(rep, authority, measurement, nonce)
}

// shardStateLabel domain-separates the tier's durable state from other
// sealed material; each shard's section is additionally sealed under a
// per-shard derived key (see sectionLabel).
const shardStateLabel = "mixnn/sharded-state/v1"

func sectionLabel(shard int) string {
	return fmt.Sprintf("%s/shard/%d", shardStateLabel, shard)
}

// SealState exports the whole tier's durable state — every shard's
// buffered layers plus routing metadata and the round ledger — sealed
// under the enclave's identity-bound keys, so a proxy crash mid-round
// loses no participant material and leaks none to the untrusted host
// (§2.5 sealing applied to the §4.3 lists, tier-wide). Each shard's
// section is sealed under its own derived key, and the assembled blob is
// sealed once more so the metadata is protected too. SealState is safe
// to call concurrently with ingress: it snapshots under the same mutex
// that serialises mixing, so the blob is always round-consistent.
func (p *ShardedProxy) SealState() ([]byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	raw, err := core.SealShardedState(p.shards, core.ShardedStateMeta{
		Routing:     core.RoutingHashRR,
		RRCursor:    p.rr,
		InRound:     p.inRound,
		Rounds:      p.rounds,
		HopMark:     p.hopMark,
		Received:    p.received,
		HopReceived: p.hopReceived,
		Forwarded:   p.forwarded,
	}, func(s int, plain []byte) ([]byte, error) {
		return p.enclave.SealLabeled(sectionLabel(s), plain)
	})
	if err != nil {
		return nil, fmt.Errorf("proxy: export tier state: %w", err)
	}
	blob, err := p.enclave.SealLabeled(shardStateLabel, raw)
	if err != nil {
		return nil, fmt.Errorf("proxy: seal tier state: %w", err)
	}
	return blob, nil
}

// RestoreState loads a SealState blob into a freshly-constructed tier
// (same enclave identity and platform). The blob's shard count may
// differ from this tier's: buffered material is redistributed across the
// new shards (resharding on restore) with the round's layer-wise
// aggregate unchanged, so an operator can crash a P-shard proxy and
// bring up a P′-shard replacement mid-round.
func (p *ShardedProxy) RestoreState(blob []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.received != 0 || p.hopReceived != 0 {
		return fmt.Errorf("proxy: RestoreState on a proxy that already processed updates")
	}
	raw, err := p.enclave.UnsealLabeled(shardStateLabel, blob)
	if err != nil {
		return fmt.Errorf("proxy: unseal tier state: %w", err)
	}
	// Restore into fresh mixers so a failed restore cannot leave the
	// serving tier half-populated.
	fresh, err := newShardMixers(p.cfg)
	if err != nil {
		return err
	}
	meta, err := core.RestoreShardedState(raw, fresh, func(s int, sealed []byte) ([]byte, error) {
		return p.enclave.UnsealLabeled(sectionLabel(s), sealed)
	})
	if err != nil {
		return fmt.Errorf("proxy: restore tier state: %w", err)
	}
	if meta.Routing != core.RoutingHashRR {
		return fmt.Errorf("proxy: sealed state uses unknown routing mode %d", meta.Routing)
	}
	if meta.InRound >= p.cfg.RoundSize {
		return fmt.Errorf("proxy: sealed in-round progress %d does not fit round size %d", meta.InRound, p.cfg.RoundSize)
	}
	p.shards = fresh
	p.rr = meta.RRCursor % len(fresh)
	p.inRound = meta.InRound
	p.rounds = meta.Rounds
	p.hopMark = meta.HopMark
	p.received = meta.Received
	p.hopReceived = meta.HopReceived
	p.forwarded = meta.Forwarded
	p.restoredFrom = meta.SealedShards
	return nil
}

func (p *ShardedProxy) handleAttestation(w http.ResponseWriter, r *http.Request) {
	serveAttestation(w, r, p.enclave, p.platform)
}

func (p *ShardedProxy) handleStatus(w http.ResponseWriter, r *http.Request) {
	wire.WriteJSON(w, p.Status())
}

// Status snapshots the tier: global round progress plus per-shard mixers.
// p.mu is held across the whole snapshot (lock order p.mu → mixer.mu, as
// in ingest) so the per-shard counters are consistent with the global
// round state — a concurrent round close cannot appear half-applied.
func (p *ShardedProxy) Status() wire.ShardedProxyStatus {
	p.mu.Lock()
	defer p.mu.Unlock()
	shards := make([]wire.ShardStatus, len(p.shards))
	for s, m := range p.shards {
		shards[s] = wire.ShardStatus{
			Shard:    s,
			K:        m.K(),
			Buffered: m.Buffered(),
			Received: m.Received(),
			Emitted:  m.Emitted(),
		}
	}
	st := p.enclave.Stats()
	return wire.ShardedProxyStatus{
		Shards:        shards,
		Received:      p.received,
		HopReceived:   p.hopReceived,
		Forwarded:     p.forwarded,
		Rounds:        p.rounds,
		InRound:       p.inRound,
		RoundSize:     p.cfg.RoundSize,
		NextHop:       p.cfg.NextHop,
		MaxHops:       p.cfg.MaxHops,
		RestoredFrom:  p.restoredFrom,
		UpdateBytes:   p.updateBytes,
		EnclaveUsed:   st.MemoryUsedBytes,
		EnclavePeak:   st.MemoryPeakBytes,
		EnclavePaging: st.PageEvents,
		DecryptMillis: p.decryptT.meanMillisExact(),
		StoreMillis:   p.storeT.meanMillisExact(),
		MixMillis:     p.mixT.meanMillisExact(),
		ProcessMillis: p.processT.meanMillisExact(),
	}
}
