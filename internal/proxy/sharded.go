package proxy

import (
	"bytes"
	"context"
	"crypto/ecdsa"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/fnv"
	"log"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"

	"mixnn/internal/core"
	"mixnn/internal/enclave"
	"mixnn/internal/nn"
	"mixnn/internal/outbox"
	"mixnn/internal/wire"
)

// DefaultMaxHops bounds cascade depth: a forwarded update whose hop count
// exceeds this is rejected, which breaks accidental forwarding cycles.
const DefaultMaxHops = 4

// ShardedConfig parameterises a sharded (and optionally cascaded) MixNN
// proxy tier.
type ShardedConfig struct {
	// Upstream is the aggregation server base URL; mixed updates go there
	// in plaintext when no NextHop is configured.
	Upstream string
	// NextHop, when non-empty, is the base URL of the next mixing proxy of
	// the cascade. Mixed updates are re-encrypted with NextHopKey and
	// posted to {NextHop}/v1/batch (or /v1/hop with NoBatch) instead of
	// Upstream.
	NextHop string
	// NextHopKey is the attested (or pinned) key material for NextHop.
	// Required when NextHop is set.
	NextHopKey *enclave.HopKey
	// NextHopSecret, when non-empty, is sent as a bearer token with
	// forwarded hop traffic (it must match the next hop's HopSecret).
	NextHopSecret string
	// HopSecret, when non-empty, gates this proxy's /v1/hop and /v1/batch
	// endpoints: requests without the matching bearer token are rejected.
	// Without it any party holding the (public) enclave key can post hop
	// traffic and poison the round's hop watermark, killing the round at
	// the next depth check.
	HopSecret string
	// Shards is the number of independent mixing shards P (default 1).
	Shards int
	// K is the per-shard list capacity of each stream mixer; it is clamped
	// to the shard's round-robin share of RoundSize so every shard's
	// buffer fills and drains within a round.
	K int
	// RoundSize is the total number of updates per round (C) across all
	// shards; when it is reached every shard is drained, the drained round
	// is committed to the delivery outbox as one entry, and fresh mixers
	// take over for the next round.
	RoundSize int
	// MaxHops bounds cascade depth (default DefaultMaxHops).
	MaxHops int
	// Seed drives the mixing randomness (each shard derives its own
	// stream from it, per epoch).
	Seed int64
	// OutboxDir is the durable delivery queue directory. Drained rounds
	// are sealed under an enclave-derived key and committed there before
	// any network send, so delivery survives downstream outages AND proxy
	// crashes. Empty = an in-memory queue: delivery is still asynchronous
	// and retried, but entries die with the process.
	OutboxDir string
	// NoBatch forwards each update of a drained round individually to the
	// single-update endpoints (/v1/update, /v1/hop) instead of coalescing
	// the round into one /v1/batch POST — compatibility with pre-batch
	// downstreams, at C requests per round and without the batch
	// idempotency id (delivery degrades to at-least-once across crashes).
	NoBatch bool
	// RetryBase and RetryMax bound the delivery dispatcher's exponential
	// backoff (defaults outbox.DefaultRetryBase/Max).
	RetryBase time.Duration
	RetryMax  time.Duration
	// HTTPClient overrides the forwarding client (tests); nil = default.
	HTTPClient *http.Client
}

// ShardedProxy is the horizontally-scaled MixNN mixing tier: participants
// are partitioned across P independent stream mixers (shards) behind one
// endpoint, and the mixed output optionally cascades to a next-hop proxy
// re-encrypted for that hop's enclave. Sharding removes the single-mixer
// bottleneck; cascading restores mixing breadth across shards (a layer
// that stayed within its shard on hop 1 is re-mixed against the whole
// round on hop 2) and unlinks each proxy's view — no single hop observes
// both who sent an update and what reaches the aggregation server.
//
// Delivery is asynchronous: ingress never blocks on the downstream. When
// a round closes, the shards atomically swap to fresh mixers (so round
// N+1 ingests immediately — cross-round pipelining) while the drained
// round is committed to a sealed outbox entry and delivered by a
// background dispatcher as one batch, with bounded retry across
// downstream outages and, with OutboxDir set, across proxy restarts.
type ShardedProxy struct {
	cfg      ShardedConfig
	enclave  *enclave.Enclave
	platform *enclave.Platform
	httpc    *http.Client
	box      outbox.Queue
	disp     *outbox.Dispatcher
	seen     batchDedup

	// singleProgress tracks, per outbox entry, how many updates a NoBatch
	// delivery already landed, so a retry resumes instead of resending
	// the whole round. Touched only by the dispatcher goroutine.
	singleProgress map[uint64]int
	// dcache memoises the head entry's parsed envelope and (batch mode)
	// request body between retry attempts — entries are immutable, and a
	// long outage must not re-parse/re-encode a large round every
	// backoff tick. Touched only by the dispatcher goroutine.
	dcache deliverCache

	mu   sync.Mutex
	cond *sync.Cond // signals closing/putEpoch transitions
	// shards are the CURRENT epoch's mixers; round close swaps the whole
	// slice, so a drain can never sweep in an update of the next round.
	shards []*core.StreamMixer
	// pending buffers updates the mixers emitted mid-round; they join the
	// round's outbox entry at close (and the seal blob before that).
	pending []nn.ParamSet
	// closing counts round packagings in flight (drained but not yet
	// committed to the outbox); SealState waits for zero so no material
	// can fall between a snapshot and the queue.
	closing int
	// retained counts updates whose outbox commit failed; they live in
	// pending and ride the next committed entry. Flush refuses to report
	// success while any exist — on a quiescent tier nothing else would
	// ever deliver them.
	retained int
	// putEpoch is the epoch whose outbox commit may proceed next —
	// concurrent round closes commit strictly in epoch order.
	putEpoch int
	// shardRecv/shardEmit carry each shard's mixer ledger across epoch
	// swaps (and restores), so per-shard counters are cumulative.
	shardRecv []int
	shardEmit []int

	rr           int // round-robin routing cursor
	inRound      int // updates received in the current round
	rounds       int // completed rounds == the epoch being ingested
	hopMark      int // highest incoming hop depth seen this round
	received     int // participant updates ingested (hop 0)
	hopReceived  int // cascade updates ingested (hop >= 1)
	forwarded    int // updates acknowledged downstream
	batches      int // batch POSTs acknowledged downstream
	restoredFrom int // shard count of the blob this tier restored from (0 = fresh)
	updateBytes  int
	decryptT     timing
	storeT       timing
	mixT         timing
	processT     timing
}

// outboxLabel domain-separates outbox entries from other sealed material.
const outboxLabel = "mixnn/outbox/v1"

// NewSharded builds a sharded proxy tier hosted in the given enclave and
// starts its delivery dispatcher; callers own the tier's lifecycle and
// should Close it when done.
func NewSharded(cfg ShardedConfig, encl *enclave.Enclave, platform *enclave.Platform) (*ShardedProxy, error) {
	if cfg.Upstream == "" && cfg.NextHop == "" {
		return nil, fmt.Errorf("proxy: ShardedConfig needs an Upstream or a NextHop")
	}
	if cfg.NextHop != "" && cfg.NextHopKey == nil {
		return nil, fmt.Errorf("proxy: NextHop %q configured without NextHopKey", cfg.NextHop)
	}
	if cfg.RoundSize <= 0 {
		return nil, fmt.Errorf("proxy: ShardedConfig.RoundSize must be positive, got %d", cfg.RoundSize)
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if cfg.Shards > cfg.RoundSize {
		return nil, fmt.Errorf("proxy: %d shards for round size %d (shards must not outnumber participants)", cfg.Shards, cfg.RoundSize)
	}
	if cfg.MaxHops <= 0 {
		cfg.MaxHops = DefaultMaxHops
	}
	if encl == nil || platform == nil {
		return nil, fmt.Errorf("proxy: enclave and platform are required")
	}
	httpc := cfg.HTTPClient
	if httpc == nil {
		httpc = &http.Client{Timeout: 60 * time.Second}
	}
	shards, err := newShardMixers(cfg, 0)
	if err != nil {
		return nil, err
	}
	var box outbox.Queue
	if cfg.OutboxDir != "" {
		box, err = outbox.Open(cfg.OutboxDir,
			func(plain []byte) ([]byte, error) { return encl.SealLabeled(outboxLabel, plain) },
			func(sealed []byte) ([]byte, error) { return encl.UnsealLabeled(outboxLabel, sealed) },
		)
		if err != nil {
			return nil, fmt.Errorf("proxy: open outbox: %w", err)
		}
	} else {
		box = outbox.NewMemory()
	}
	p := &ShardedProxy{
		cfg: cfg, enclave: encl, platform: platform, httpc: httpc,
		box: box, shards: shards,
		shardRecv:      make([]int, cfg.Shards),
		shardEmit:      make([]int, cfg.Shards),
		singleProgress: make(map[uint64]int),
	}
	p.cond = sync.NewCond(&p.mu)
	p.disp = outbox.NewDispatcher(box, p.deliver, cfg.RetryBase, cfg.RetryMax)
	p.disp.Start()
	return p, nil
}

// Close stops the delivery dispatcher. Undelivered outbox entries stay
// queued — on disk when OutboxDir is set — for the next process.
func (p *ShardedProxy) Close() {
	p.disp.Close()
}

// Flush blocks until every drained round has been committed to the
// outbox AND acknowledged downstream, or ctx expires. Tests and graceful
// shutdown use it; serving code never needs to.
func (p *ShardedProxy) Flush(ctx context.Context) error {
	for {
		p.mu.Lock()
		n := p.closing
		p.mu.Unlock()
		if n == 0 {
			break
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("proxy: flush: %d round closes in flight: %w", n, ctx.Err())
		case <-time.After(2 * time.Millisecond):
		}
	}
	if err := p.disp.Flush(ctx); err != nil {
		return err
	}
	p.mu.Lock()
	retained := p.retained
	p.mu.Unlock()
	if retained > 0 {
		return fmt.Errorf("proxy: flush: %d updates retained from a failed outbox commit await the next round close", retained)
	}
	return nil
}

// newShardMixers builds the tier's fresh mixers for one epoch from a
// validated config: per-shard K clamped to the round-robin share,
// per-shard rand streams derived from the seed and epoch (each round's
// swap gets fresh, independent streams). Shared by NewSharded, the round
// close swap and RestoreState so every epoch's tier is shaped alike.
func newShardMixers(cfg ShardedConfig, epoch int) ([]*core.StreamMixer, error) {
	sizes := core.ShardSizes(cfg.RoundSize, cfg.Shards)
	shards := make([]*core.StreamMixer, cfg.Shards)
	for s := range shards {
		k := cfg.K
		if k <= 0 || k > sizes[s] {
			k = sizes[s]
		}
		// Each shard owns its rand stream: StreamMixer serialises itself,
		// but a shared rand.Rand across concurrently-adding shards would
		// race.
		m, err := core.NewStreamMixer(k, rand.New(rand.NewSource(cfg.Seed+int64(epoch)*int64(cfg.Shards)+int64(s))))
		if err != nil {
			return nil, fmt.Errorf("proxy: shard %d: %w", s, err)
		}
		shards[s] = m
	}
	return shards, nil
}

// Shards returns the shard count P. It synchronises with RestoreState,
// which swaps the shard slice under p.mu.
func (p *ShardedProxy) Shards() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.shards)
}

// Handler returns the sharded proxy's HTTP API: the participant endpoint,
// the inter-proxy cascade endpoints (single and batched), attestation and
// status.
func (p *ShardedProxy) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/update", func(w http.ResponseWriter, r *http.Request) {
		p.handleIngress(w, r, false)
	})
	mux.HandleFunc("POST /v1/hop", func(w http.ResponseWriter, r *http.Request) {
		p.handleIngress(w, r, true)
	})
	mux.HandleFunc("POST /v1/batch", p.handleBatch)
	mux.HandleFunc("GET /v1/attestation", p.handleAttestation)
	mux.HandleFunc("GET /v1/status", p.handleStatus)
	return mux
}

// authorizeHop enforces the inter-proxy secret and the cascade depth
// rules shared by /v1/hop and /v1/batch. It writes the error response
// itself and returns ok=false when the request must not proceed.
func (p *ShardedProxy) authorizeHop(w http.ResponseWriter, r *http.Request) (hop int, ok bool) {
	if p.cfg.HopSecret != "" &&
		subtle.ConstantTimeCompare([]byte(r.Header.Get("Authorization")), []byte("Bearer "+p.cfg.HopSecret)) != 1 {
		http.Error(w, "hop endpoint requires the inter-proxy secret", http.StatusUnauthorized)
		return 0, false
	}
	hop, err := wire.ParseHop(r.Header)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return 0, false
	}
	if hop == 0 {
		hop = 1 // an upstream proxy that omitted the header is hop 1
	}
	if hop > p.cfg.MaxHops {
		http.Error(w, fmt.Sprintf("cascade depth %d exceeds limit %d", hop, p.cfg.MaxHops), http.StatusLoopDetected)
		return 0, false
	}
	return hop, true
}

// handleIngress processes one encrypted update, from a participant
// (/v1/update, hop 0) or from an upstream proxy of the cascade (/v1/hop).
// The response acknowledges ACCEPTANCE INTO THE TIER: forwarding happens
// asynchronously through the outbox, so a downstream outage no longer
// turns into participant-visible errors (or lost rounds).
func (p *ShardedProxy) handleIngress(w http.ResponseWriter, r *http.Request, fromHop bool) {
	hop := 0
	if fromHop {
		var ok bool
		if hop, ok = p.authorizeHop(w, r); !ok {
			return
		}
	} else if r.Header.Get(wire.HeaderHop) != "" {
		// Participants must not forge cascade depth: a forged header
		// would be stamped +1 onto every update their round emits and
		// could poison the whole round at the next hop's depth check.
		http.Error(w, fmt.Sprintf("%s not allowed on the participant endpoint", wire.HeaderHop), http.StatusBadRequest)
		return
	}
	body, err := wire.ReadBody(r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	var (
		closed *roundClose
		shard  int
	)
	start := time.Now()
	procErr := p.enclave.Process(func() error {
		t0 := time.Now()
		plain, err := p.enclave.Decrypt(body)
		decryptDur := time.Since(t0)
		if err != nil {
			return fmt.Errorf("proxy: decrypt: %w", err)
		}
		t1 := time.Now()
		// Zero-copy decode: the tensors alias plain, which this request
		// owns and the mixers never mutate in place.
		ps, err := nn.DecodeParamSetNoCopy(plain)
		decodeDur := time.Since(t1) // measured outside p.mu so lock wait doesn't pollute it
		if err != nil {
			return fmt.Errorf("proxy: decode: %w", err)
		}
		closed, shard, err = p.ingest(ps, len(plain), r.Header.Get(wire.HeaderClient), hop, fromHop, decryptDur, decodeDur)
		return err
	})
	p.mu.Lock()
	p.processT.add(time.Since(start))
	p.mu.Unlock()
	if procErr != nil {
		http.Error(w, procErr.Error(), http.StatusBadRequest)
		return
	}
	if closed != nil {
		if err := p.packageRound(closed); err != nil {
			// The round's material is retained in memory (see
			// packageRound) and WILL be delivered with the next committed
			// entry, so the update is still accepted — an error response
			// here would make the sender retry and double-count it.
			log.Printf("proxy: round %d outbox commit failed (material retained): %v", closed.epoch, err)
		}
	}
	w.Header().Set(wire.HeaderShard, strconv.Itoa(shard))
	w.WriteHeader(http.StatusAccepted)
}

// handleBatch ingests a whole drained round from an upstream proxy: a
// BatchEnvelope wrapped for this enclave. It shares the hop gate and
// depth rules with /v1/hop, and dedups on the sender's idempotency id so
// a redelivered batch (lost acknowledgement, crashed upstream) cannot
// double-count a round.
func (p *ShardedProxy) handleBatch(w http.ResponseWriter, r *http.Request) {
	hop, ok := p.authorizeHop(w, r)
	if !ok {
		return
	}
	// Claim the id atomically BEFORE ingesting: a retry overlapping a
	// slow first attempt must dedup, not re-mix the round — and an
	// attempt still in flight must NOT be acked as applied (the sender
	// would consume the entry while this attempt can still fail).
	batchID := r.Header.Get(wire.HeaderBatch)
	if batchID != "" {
		claimed, done := p.seen.Begin(batchID)
		if !claimed {
			if done {
				w.WriteHeader(http.StatusOK) // already applied; ack the duplicate
			} else {
				http.Error(w, "batch application in flight", http.StatusConflict)
			}
			return
		}
	}
	body, err := wire.ReadBody(r.Body)
	if err != nil {
		if batchID != "" {
			p.seen.Forget(batchID)
		}
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	var closes []*roundClose
	start := time.Now()
	procErr := p.enclave.Process(func() error {
		t0 := time.Now()
		plain, err := p.enclave.Decrypt(body)
		decryptDur := time.Since(t0)
		if err != nil {
			return fmt.Errorf("proxy: decrypt: %w", err)
		}
		env, err := wire.DecodeBatchEnvelope(plain)
		if err != nil {
			return fmt.Errorf("proxy: %w", err)
		}
		// Decode every item — and check they share one model structure —
		// before mixing any, so a malformed or heterogeneous batch cannot
		// leave the round half-applied (the upstream quarantines rejected
		// entries and must be able to trust that nothing was counted).
		t1 := time.Now()
		pss := make([]nn.ParamSet, len(env.Updates))
		for i, raw := range env.Updates {
			if pss[i], err = nn.DecodeParamSetNoCopy(raw); err != nil {
				return fmt.Errorf("proxy: batch update %d: %w", i, err)
			}
			if i > 0 && !pss[0].Compatible(pss[i]) {
				return fmt.Errorf("proxy: batch update %d incompatible with update 0", i)
			}
		}
		decodeDur := time.Since(t1)
		// Spread the one decrypt/decode over the items so per-update
		// stage means stay comparable with the single-update path.
		n := time.Duration(len(env.Updates))
		var itemErrs int
		var firstErr error
		for i, ps := range pss {
			closed, _, err := p.ingest(ps, len(env.Updates[i]), "", hop, true, decryptDur/n, decodeDur/n)
			if err != nil {
				// An item the open round's mixers reject (structure set
				// by earlier traffic of this epoch) can never be mixed at
				// this hop — rejecting the WHOLE batch here would let a
				// half-applied round masquerade as "nothing counted" when
				// the upstream quarantines it. Skip just this item, keep
				// the rest of the round.
				log.Printf("proxy: batch update %d skipped: %v", i, err)
				itemErrs++
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			if closed != nil {
				closes = append(closes, closed)
			}
		}
		if itemErrs == len(pss) {
			return firstErr // nothing applied; safe for the upstream to quarantine
		}
		return nil
	})
	p.mu.Lock()
	p.processT.add(time.Since(start))
	p.mu.Unlock()
	// Rounds that closed DID close — their mixers were swapped out and
	// p.closing incremented — so package them even when a later item
	// failed: skipping would leak p.closing/putEpoch and wedge SealState,
	// Flush and every future round's commit.
	for _, c := range closes {
		if err := p.packageRound(c); err != nil {
			// Retained in p.pending (see packageRound); the material IS
			// applied, so this is not the sender's problem — an error
			// response would trigger a redelivery that double-counts.
			log.Printf("proxy: round %d outbox commit failed (material retained): %v", c.epoch, err)
		}
	}
	if procErr != nil {
		// Nothing was applied (decode/compat failures precede any ingest,
		// and the all-items-failed path mixes nothing), so release the id
		// for a future redelivery.
		if batchID != "" {
			p.seen.Forget(batchID)
		}
		http.Error(w, procErr.Error(), http.StatusBadRequest)
		return
	}
	if batchID != "" {
		p.seen.Done(batchID)
	}
	w.WriteHeader(http.StatusAccepted)
}

// routeLocked picks the shard for an update: a stable FNV hash of the
// client id when the participant identifies itself (so a client's updates
// always meet the same buffer), round-robin otherwise. The caller holds
// p.mu, which also synchronises with RestoreState's shard-slice swap.
func (p *ShardedProxy) routeLocked(clientID string) int {
	if clientID != "" {
		h := fnv.New32a()
		h.Write([]byte(clientID))
		return int(h.Sum32() % uint32(len(p.shards)))
	}
	s := p.rr
	p.rr = (p.rr + 1) % len(p.shards)
	return s
}

// roundClose carries everything a completed round needs on its way to
// the outbox: the epoch, the hop depth to stamp (watermark + 1), the
// retired mixers (still holding the round's buffered material) and the
// mid-round emissions.
type roundClose struct {
	epoch   int
	hop     int
	mixers  []*core.StreamMixer
	pending []nn.ParamSet
	// emitBase is each retired mixer's emitted count at swap time; the
	// swap already rolled counters up to here into the cumulative shard
	// ledger, so packageRound only adds what Drain emits beyond it.
	emitBase []int
}

// ingest files one decoded update into its shard's mixer and, when the
// round completes, swaps the tier to fresh mixers and returns a
// roundClose for packaging. The expensive stages (decrypt, decode —
// milliseconds) already ran outside any lock in the caller; the cheap
// mixing step (layer pointer swaps — microseconds) and the round
// accounting run under one mutex, which makes round closure atomic: a
// drain can never sweep in an update that belongs to the next round, and
// updates arriving an instant after the swap land in epoch N+1's fresh
// mixers while epoch N drains in the background (cross-round
// pipelining).
//
// The close's hop is the depth to stamp on the delivered round: one past
// the highest incoming depth seen in the current round. Buffered material
// loses its individual depth inside the mixers, so the watermark is what
// keeps depth monotone — in an accidental proxy cycle the watermark grows
// every traversal until the MaxHops check breaks the loop.
func (p *ShardedProxy) ingest(ps nn.ParamSet, size int, clientID string, hop int, fromHop bool, decryptDur, decodeDur time.Duration) (*roundClose, int, error) {
	p.enclave.Alloc(size)

	p.mu.Lock()
	shard := p.routeLocked(clientID)
	p.decryptT.add(decryptDur)
	p.updateBytes = size
	tAdd := time.Now()
	out, err := p.shards[shard].Add(ps)
	p.storeT.add(decodeDur + time.Since(tAdd)) // §6.5 store stage: decode + file into the lists
	if err != nil {
		p.mu.Unlock()
		p.enclave.Free(size)
		return nil, shard, fmt.Errorf("proxy: shard %d mix: %w", shard, err)
	}
	t2 := time.Now()
	if out != nil {
		p.pending = append(p.pending, *out)
	}
	if fromHop {
		p.hopReceived++
	} else {
		p.received++
	}
	if hop > p.hopMark {
		p.hopMark = hop
	}
	p.inRound++
	var closed *roundClose
	if p.inRound >= p.cfg.RoundSize {
		fresh, ferr := newShardMixers(p.cfg, p.rounds+1)
		if ferr != nil {
			// Unreachable for a validated config; leave the round open so
			// the next ingest retries the close.
			p.mixT.add(time.Since(t2))
			p.mu.Unlock()
			return nil, shard, ferr
		}
		closed = &roundClose{epoch: p.rounds, hop: p.hopMark + 1, mixers: p.shards, pending: p.pending}
		// Roll the retired mixers' counters into the cumulative ledger
		// HERE, under the same lock as the swap, so per-shard Received
		// never appears to regress in a concurrently-polled Status. The
		// drain's emissions land later (see packageRound/emitBase).
		closed.emitBase = make([]int, len(closed.mixers))
		for s, m := range closed.mixers {
			p.shardRecv[s] += m.Received()
			closed.emitBase[s] = m.Emitted()
			p.shardEmit[s] += closed.emitBase[s]
		}
		p.shards = fresh
		p.pending = nil
		// Any retained (failed-commit) material just moved into this
		// close; if its commit fails too, packageRound re-counts it.
		p.retained = 0
		p.rounds++
		p.inRound = 0
		p.hopMark = 0
		p.closing++
	}
	p.mixT.add(time.Since(t2)) // §6.5 mix stage: emission assembly + epoch swap
	p.mu.Unlock()
	return closed, shard, nil
}

// packageRound drains a closed round's retired mixers and commits the
// whole round — mid-round emissions plus drained buffers — to the outbox
// as ONE sealed entry. It runs outside p.mu (and outside the enclave's
// constant-time gate), so ingest of the next epoch proceeds concurrently;
// commits are serialised in epoch order so the outbox replays rounds the
// way they closed. On a commit failure the material is retained in
// p.pending — it will ride the next committed entry — so nothing mixed is
// ever dropped.
func (p *ShardedProxy) packageRound(rc *roundClose) error {
	updates := rc.pending
	for _, m := range rc.mixers {
		updates = append(updates, m.Drain()...)
	}
	payloads := make([][]byte, len(updates))
	total := 0
	var err error
	for i, ps := range updates {
		if payloads[i], err = nn.EncodeParamSet(ps); err != nil {
			break
		}
		total += len(payloads[i])
	}
	var raw []byte
	if err == nil {
		env := outbox.Envelope{Epoch: uint64(rc.epoch), Hop: rc.hop, Updates: payloads}
		raw, err = env.Marshal()
	}
	// Ordered commit: take this epoch's turn even when there is nothing
	// to Put — the epoch chain must advance by exactly one per close or
	// every later commit (and SealState/Flush) waits forever.
	p.mu.Lock()
	for p.putEpoch != rc.epoch {
		p.cond.Wait()
	}
	p.mu.Unlock()
	if err == nil {
		// A short retry absorbs transient commit failures (disk hiccups)
		// here, while the epoch's commit turn is held: a round retained
		// past this point only re-commits at the NEXT round close, which
		// on a quiescent tier may never come.
		for attempt := 0; ; attempt++ {
			if _, err = p.box.Put(raw); err == nil || attempt >= 2 {
				break
			}
			time.Sleep(100 * time.Millisecond)
		}
	}

	p.mu.Lock()
	// The swap already rolled the retired mixers' counters; only the
	// drain's emissions (beyond emitBase) remain, regardless of the
	// commit outcome (they describe mixing history, not delivery).
	for s, m := range rc.mixers {
		p.shardEmit[s] += m.Emitted() - rc.emitBase[s]
	}
	if err != nil {
		// Retain the round in memory; it joins the next entry (and any
		// SealState blob taken before then).
		p.pending = append(updates, p.pending...)
		p.retained += len(updates)
	}
	p.putEpoch = rc.epoch + 1
	p.closing--
	p.cond.Broadcast()
	p.mu.Unlock()
	if err == nil {
		p.enclave.Free(total)
		p.disp.Wake()
	}
	return err
}

// deliverCache is the dispatcher-goroutine-local memo of the head
// entry's delivery artefacts (see ShardedProxy.dcache).
type deliverCache struct {
	seq     uint64
	valid   bool
	env     *outbox.Envelope
	body    []byte // assembled /v1/batch body (hop-wrapped if cascading)
	id      string // idempotency id for body
	singles bool   // round too large to batch; use the singles path
}

// batchIDFor derives the idempotency id of an outbox entry from its
// plaintext payload: deterministic across retries and restarts, so a
// receiver that already applied the entry recognises the redelivery.
func batchIDFor(payload []byte) string {
	sum := sha256.Sum256(payload)
	return hex.EncodeToString(sum[:16])
}

// deliver is the dispatcher callback: it sends one outbox entry (a whole
// drained round) downstream. nil consumes the entry; a PermanentError
// quarantines it; anything else retries with backoff.
func (p *ShardedProxy) deliver(ctx context.Context, seq uint64, payload []byte) error {
	c := &p.dcache
	if !c.valid || c.seq != seq {
		env, err := outbox.ParseEnvelope(payload)
		if err != nil {
			// The queue's open hook already authenticated the entry, so a
			// parse failure means a foreign or torn payload: set it aside.
			return outbox.Permanent(err)
		}
		p.dcache = deliverCache{seq: seq, valid: true, env: env}
	}
	env := c.env
	if len(env.Updates) == 0 {
		return nil
	}
	if p.cfg.NoBatch || c.singles {
		return p.deliverSingles(ctx, seq, env)
	}
	if c.body == nil {
		enc, err := wire.BatchEnvelope{Updates: env.Updates}.Encode()
		if err != nil {
			return outbox.Permanent(err)
		}
		// The batch body must fit the receiver's read bound (plus
		// hop-wrap overhead); a round too large to batch — huge models ×
		// large C — falls back to per-update delivery instead of being
		// permanently rejected downstream and quarantined.
		const wrapMargin = 4096
		if len(enc)+wrapMargin > wire.MaxBodyBytes {
			// No silent caps: the fallback loses the batch idempotency id
			// (per-update POSTs are at-least-once across a crash), so the
			// downgrade must be visible.
			log.Printf("proxy: entry %d (%d bytes) exceeds the batch body bound; delivering per update", seq, len(enc))
			c.singles = true
			return p.deliverSingles(ctx, seq, env)
		}
		if p.cfg.NextHop != "" {
			if enc, err = p.cfg.NextHopKey.Wrap(enc); err != nil {
				return fmt.Errorf("proxy: wrap batch for next hop: %w", err)
			}
		}
		c.body, c.id = enc, batchIDFor(payload)
	}
	base := p.cfg.Upstream
	if p.cfg.NextHop != "" {
		base = p.cfg.NextHop
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/batch", bytes.NewReader(c.body))
	if err != nil {
		return err
	}
	if p.cfg.NextHop != "" {
		req.Header.Set(wire.HeaderHop, strconv.Itoa(env.Hop))
		if p.cfg.NextHopSecret != "" {
			req.Header.Set("Authorization", "Bearer "+p.cfg.NextHopSecret)
		}
	}
	req.Header.Set("Content-Type", wire.ContentTypeBatch)
	req.Header.Set(wire.HeaderBatch, c.id)
	resp, err := p.httpc.Do(req)
	if err != nil {
		return err // transient: downstream unreachable
	}
	resp.Body.Close()
	if err := classifyStatus(resp.StatusCode, resp.Status); err != nil {
		return err
	}
	p.mu.Lock()
	p.forwarded += len(env.Updates)
	p.batches++
	p.mu.Unlock()
	return nil
}

// deliverSingles is the NoBatch compatibility path: one POST per update
// to the single-update endpoints. Progress is tracked per entry so a
// mid-round outage resumes where it stopped instead of resending the
// round (exactly-once degrades to at-least-once only across process
// crashes, where the in-memory progress is lost).
func (p *ShardedProxy) deliverSingles(ctx context.Context, seq uint64, env *outbox.Envelope) error {
	for i := p.singleProgress[seq]; i < len(env.Updates); i++ {
		if err := p.forwardOne(ctx, env.Updates[i], env.Hop); err != nil {
			var perm *outbox.PermanentError
			if errors.As(err, &perm) {
				// The dispatcher will quarantine the entry; its progress
				// marker must not outlive it.
				delete(p.singleProgress, seq)
			} else {
				p.singleProgress[seq] = i
			}
			return err
		}
		p.mu.Lock()
		p.forwarded++
		p.mu.Unlock()
	}
	delete(p.singleProgress, seq)
	return nil
}

// forwardOne sends one mixed update onward: re-encrypted to the
// cascade's next hop when one is configured, in plaintext to the
// aggregation server otherwise.
func (p *ShardedProxy) forwardOne(ctx context.Context, raw []byte, fwdHop int) error {
	var req *http.Request
	var err error
	if p.cfg.NextHop != "" {
		ct, err := p.cfg.NextHopKey.Wrap(raw)
		if err != nil {
			return fmt.Errorf("proxy: wrap for next hop: %w", err)
		}
		req, err = http.NewRequestWithContext(ctx, http.MethodPost, p.cfg.NextHop+"/v1/hop", bytes.NewReader(ct))
		if err != nil {
			return err
		}
		req.Header.Set(wire.HeaderHop, strconv.Itoa(fwdHop))
		if p.cfg.NextHopSecret != "" {
			req.Header.Set("Authorization", "Bearer "+p.cfg.NextHopSecret)
		}
	} else {
		req, err = http.NewRequestWithContext(ctx, http.MethodPost, p.cfg.Upstream+"/v1/update", bytes.NewReader(raw))
		if err != nil {
			return err
		}
	}
	req.Header.Set("Content-Type", wire.ContentTypeUpdate)
	resp, err := p.httpc.Do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()
	return classifyStatus(resp.StatusCode, resp.Status)
}

// classifyStatus maps a downstream HTTP status onto the dispatcher's
// retry semantics: 2xx delivered, definitive 4xx permanent (retrying an
// entry the downstream rejects forever would wedge the queue), anything
// else transient. Auth failures (401/403) stay transient: they usually
// mean a secret rotation in progress, and quarantining a whole round
// over a recoverable operator mistake would lose it.
func classifyStatus(code int, status string) error {
	switch {
	case code == http.StatusOK || code == http.StatusAccepted:
		return nil
	case code >= 400 && code < 500 &&
		code != http.StatusUnauthorized && code != http.StatusForbidden &&
		code != http.StatusConflict && // a duplicate still being applied by an earlier attempt
		code != http.StatusRequestTimeout && code != http.StatusTooManyRequests:
		return outbox.Permanent(fmt.Errorf("proxy: downstream rejected delivery: %s", status))
	case code == http.StatusLoopDetected:
		// The hop stamp inside the entry is immutable, so a depth
		// rejection can never succeed on retry; treating it as transient
		// would wedge the strictly-ordered queue head forever.
		return outbox.Permanent(fmt.Errorf("proxy: downstream rejected delivery: %s", status))
	default:
		return fmt.Errorf("proxy: downstream returned %s", status)
	}
}

// AttestHop performs the proxy-to-proxy attestation handshake: it fetches
// the next hop's report, verifies it against the attestation authority and
// expected measurement, and returns the pinned hop key for
// ShardedConfig.NextHopKey. httpc may be nil for a default client.
func AttestHop(ctx context.Context, nextHopURL string, httpc *http.Client, authority *ecdsa.PublicKey, measurement [32]byte) (*enclave.HopKey, error) {
	if httpc == nil {
		httpc = &http.Client{Timeout: 60 * time.Second}
	}
	rep, nonce, err := fetchReport(ctx, httpc, nextHopURL)
	if err != nil {
		return nil, err
	}
	return enclave.TrustHop(rep, authority, measurement, nonce)
}

// shardStateLabel domain-separates the tier's durable state from other
// sealed material; each shard's section is additionally sealed under a
// per-shard derived key (see sectionLabel).
const shardStateLabel = "mixnn/sharded-state/v1"

func sectionLabel(shard int) string {
	if shard == core.PendingSection {
		return shardStateLabel + "/pending"
	}
	return fmt.Sprintf("%s/shard/%d", shardStateLabel, shard)
}

// SealState exports the whole tier's durable state — every shard's
// buffered layers, the pending (emitted but not yet committed) updates,
// the per-shard ledgers, routing metadata and the round ledger — sealed
// under the enclave's identity-bound keys, so a proxy crash mid-round
// loses no participant material and leaks none to the untrusted host
// (§2.5 sealing applied to the §4.3 lists, tier-wide). Outbox entries are
// NOT in the blob: they are already durable (and sealed) on disk.
// SealState is safe to call concurrently with ingress: it waits for
// in-flight round commits (so no material sits between mixers and the
// outbox) and snapshots under the same mutex that serialises mixing, so
// the blob is always round-consistent.
func (p *ShardedProxy) SealState() ([]byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for p.closing > 0 {
		p.cond.Wait()
	}
	shardRecv := make([]int, len(p.shards))
	shardEmit := make([]int, len(p.shards))
	for s, m := range p.shards {
		shardRecv[s] = p.shardRecv[s] + m.Received()
		shardEmit[s] = p.shardEmit[s] + m.Emitted()
	}
	raw, err := core.SealShardedState(p.shards, core.ShardedStateMeta{
		Routing:       core.RoutingHashRR,
		RRCursor:      p.rr,
		InRound:       p.inRound,
		Rounds:        p.rounds,
		HopMark:       p.hopMark,
		Received:      p.received,
		HopReceived:   p.hopReceived,
		Forwarded:     p.forwarded,
		ShardReceived: shardRecv,
		ShardEmitted:  shardEmit,
		Pending:       p.pending,
	}, func(s int, plain []byte) ([]byte, error) {
		return p.enclave.SealLabeled(sectionLabel(s), plain)
	})
	if err != nil {
		return nil, fmt.Errorf("proxy: export tier state: %w", err)
	}
	blob, err := p.enclave.SealLabeled(shardStateLabel, raw)
	if err != nil {
		return nil, fmt.Errorf("proxy: seal tier state: %w", err)
	}
	return blob, nil
}

// RestoreState loads a SealState blob into a freshly-constructed tier
// (same enclave identity and platform). The blob's shard count may
// differ from this tier's: buffered material is redistributed across the
// new shards (resharding on restore) with the round's layer-wise
// aggregate unchanged, so an operator can crash a P-shard proxy and
// bring up a P′-shard replacement mid-round. Per-shard mixer ledgers
// restore exactly for an unchanged shard count and as a sum-preserving
// redistribution otherwise; pending emissions restore into the pending
// buffer and ride the next round's outbox entry.
func (p *ShardedProxy) RestoreState(blob []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.received != 0 || p.hopReceived != 0 {
		return fmt.Errorf("proxy: RestoreState on a proxy that already processed updates")
	}
	raw, err := p.enclave.UnsealLabeled(shardStateLabel, blob)
	if err != nil {
		return fmt.Errorf("proxy: unseal tier state: %w", err)
	}
	// Restore into fresh mixers so a failed restore cannot leave the
	// serving tier half-populated. The mixers continue the sealed tier's
	// epoch, so their rand streams don't replay an earlier epoch's.
	epoch, err := core.ShardedStateRounds(raw)
	if err != nil {
		return fmt.Errorf("proxy: restore tier state: %w", err)
	}
	fresh, err := newShardMixers(p.cfg, epoch)
	if err != nil {
		return err
	}
	meta, err := core.RestoreShardedState(raw, fresh, func(s int, sealed []byte) ([]byte, error) {
		return p.enclave.UnsealLabeled(sectionLabel(s), sealed)
	})
	if err != nil {
		return fmt.Errorf("proxy: restore tier state: %w", err)
	}
	if meta.Routing != core.RoutingHashRR {
		return fmt.Errorf("proxy: sealed state uses unknown routing mode %d", meta.Routing)
	}
	if meta.InRound >= p.cfg.RoundSize {
		return fmt.Errorf("proxy: sealed in-round progress %d does not fit round size %d", meta.InRound, p.cfg.RoundSize)
	}
	p.shards = fresh
	p.rr = meta.RRCursor % len(fresh)
	p.inRound = meta.InRound
	p.rounds = meta.Rounds
	p.putEpoch = meta.Rounds
	p.hopMark = meta.HopMark
	p.received = meta.Received
	p.hopReceived = meta.HopReceived
	p.forwarded = meta.Forwarded
	p.pending = meta.Pending
	p.restoredFrom = meta.SealedShards
	p.shardRecv, p.shardEmit = restoredLedgers(meta, fresh)
	return nil
}

// restoredLedgers maps the sealed per-shard mixer ledgers onto the
// restoring tier. With an unchanged shard count the mapping is exact
// (each mixer already re-counted its restored entries; the carry is the
// history beyond them). Across a reshard the totals are preserved and
// spread evenly — per-shard exactness is not meaningful when the shards
// themselves changed.
func restoredLedgers(meta core.ShardedStateMeta, mixers []*core.StreamMixer) (recv, emit []int) {
	pPrime := len(mixers)
	recv = make([]int, pPrime)
	emit = make([]int, pPrime)
	if meta.ShardReceived == nil {
		// A v1 blob carries no per-shard ledgers; they start over.
		return recv, emit
	}
	if pPrime == meta.SealedShards {
		for s := range mixers {
			if recv[s] = meta.ShardReceived[s] - mixers[s].Received(); recv[s] < 0 {
				recv[s] = 0
			}
			emit[s] = meta.ShardEmitted[s]
		}
		return recv, emit
	}
	totalRecv, totalEmit, restored := 0, 0, 0
	for _, v := range meta.ShardReceived {
		totalRecv += v
	}
	for _, v := range meta.ShardEmitted {
		totalEmit += v
	}
	for _, m := range mixers {
		restored += m.Received()
	}
	carry := totalRecv - restored
	if carry < 0 {
		carry = 0
	}
	for s := 0; s < pPrime; s++ {
		recv[s] = carry / pPrime
		if s < carry%pPrime {
			recv[s]++
		}
		emit[s] = totalEmit / pPrime
		if s < totalEmit%pPrime {
			emit[s]++
		}
	}
	return recv, emit
}

func (p *ShardedProxy) handleAttestation(w http.ResponseWriter, r *http.Request) {
	serveAttestation(w, r, p.enclave, p.platform)
}

func (p *ShardedProxy) handleStatus(w http.ResponseWriter, r *http.Request) {
	wire.WriteJSON(w, p.Status())
}

// Status snapshots the tier: global round progress plus per-shard mixers
// (cumulative across epoch swaps and restores) and the delivery
// pipeline's epoch/backlog. p.mu is held across the whole snapshot (lock
// order p.mu → mixer.mu, as in ingest) so the per-shard counters are
// consistent with the global round state — a concurrent round close
// cannot appear half-applied.
func (p *ShardedProxy) Status() wire.ShardedProxyStatus {
	p.mu.Lock()
	defer p.mu.Unlock()
	shards := make([]wire.ShardStatus, len(p.shards))
	for s, m := range p.shards {
		shards[s] = wire.ShardStatus{
			Shard:    s,
			K:        m.K(),
			Buffered: m.Buffered(),
			Received: p.shardRecv[s] + m.Received(),
			Emitted:  p.shardEmit[s] + m.Emitted(),
		}
	}
	st := p.enclave.Stats()
	return wire.ShardedProxyStatus{
		Shards:        shards,
		Received:      p.received,
		HopReceived:   p.hopReceived,
		Forwarded:     p.forwarded,
		Rounds:        p.rounds,
		InRound:       p.inRound,
		RoundSize:     p.cfg.RoundSize,
		Epoch:         p.rounds,
		OutboxPending: p.box.Len(),
		BatchesSent:   p.batches,
		NextHop:       p.cfg.NextHop,
		MaxHops:       p.cfg.MaxHops,
		RestoredFrom:  p.restoredFrom,
		UpdateBytes:   p.updateBytes,
		EnclaveUsed:   st.MemoryUsedBytes,
		EnclavePeak:   st.MemoryPeakBytes,
		EnclavePaging: st.PageEvents,
		DecryptMillis: p.decryptT.meanMillisExact(),
		StoreMillis:   p.storeT.meanMillisExact(),
		MixMillis:     p.mixT.meanMillisExact(),
		ProcessMillis: p.processT.meanMillisExact(),
	}
}

// batchDedup remembers recently-applied batch ids so a redelivered batch
// acks instead of double-counting, and tracks in-flight applications so
// an overlapping redelivery neither re-applies NOR falsely acks work
// that has not finished. Bounded FIFO: old ids age out, which is safe
// because the sender's outbox consumes an entry on the first
// acknowledgement — redeliveries arrive promptly or not at all.
type batchDedup struct {
	mu    sync.Mutex
	state map[string]bool // false = application in flight, true = applied
	order []string
}

const batchDedupCap = 1024

// Begin atomically claims id. claimed means the caller owns the
// application and must end it with Done or Forget; otherwise done tells
// whether a previous application completed (ack the duplicate) or is
// still in flight (the caller must answer retryable, NOT success — a
// success ack would let the sender consume the entry while the owning
// attempt can still fail).
func (d *batchDedup) Begin(id string) (claimed, done bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.state == nil {
		d.state = make(map[string]bool)
	}
	if done, ok := d.state[id]; ok {
		return false, done
	}
	d.state[id] = false
	d.order = append(d.order, id)
	if len(d.order) > batchDedupCap {
		delete(d.state, d.order[0])
		d.order = d.order[1:]
	}
	return true, false
}

// Done marks a claimed id as applied.
func (d *batchDedup) Done(id string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.state[id]; ok {
		d.state[id] = true
	}
}

// Forget releases an id claimed by Begin whose application failed, so a
// redelivery gets a fresh attempt.
func (d *batchDedup) Forget(id string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.state, id)
	for i, v := range d.order {
		if v == id {
			d.order = append(d.order[:i], d.order[i+1:]...)
			return
		}
	}
}
