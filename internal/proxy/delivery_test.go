package proxy

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"mixnn/internal/enclave"
	"mixnn/internal/fl"
	"mixnn/internal/nn"
	"mixnn/internal/outbox"
	"mixnn/internal/transport"
	"mixnn/internal/wire"
)

// gatedServer wraps an AggServer so tests can take the downstream
// offline (POSTs return 503) and bring it back — the outage half of the
// delivery pipeline's failure model.
type gatedServer struct {
	mu   sync.Mutex
	down bool
	next http.Handler
}

func (g *gatedServer) SetDown(down bool) {
	g.mu.Lock()
	g.down = down
	g.mu.Unlock()
}

func (g *gatedServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	g.mu.Lock()
	down := g.down
	g.mu.Unlock()
	if down && r.Method == http.MethodPost {
		http.Error(w, "downstream outage", http.StatusServiceUnavailable)
		return
	}
	g.next.ServeHTTP(w, r)
}

// perturbed returns C recognisable updates derived from base.
func perturbed(base nn.ParamSet, c int, offset float64) []nn.ParamSet {
	updates := make([]nn.ParamSet, c)
	for i := range updates {
		u := base.Clone()
		u.Layers[0].Tensors[0].AddScalar(offset + float64(i+1))
		u.Layers[len(u.Layers)-1].Tensors[0].AddScalar(-(offset + float64(i+1)) / 2)
		updates[i] = u
	}
	return updates
}

// waitServerRound polls the aggregation server until it reaches round
// want (delivery is asynchronous even after Flush on multi-hop paths).
func waitServerRound(t *testing.T, agg *AggServer, want int) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for agg.Round() < want {
		if time.Now().After(deadline) {
			t.Fatalf("server round = %d, want %d", agg.Round(), want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestDeliveryExactlyOnceAcrossOutageAndRestart is the acceptance e2e of
// the delivery pipeline: the downstream dies mid-drain, the proxy is
// crashed (sealed) and restarted over the same outbox directory, the
// downstream comes back — and the aggregated global model still equals
// the classic-FL mean at 1e-9, with no duplicate or lost updates.
func TestDeliveryExactlyOnceAcrossOutageAndRestart(t *testing.T) {
	platform, encl := fixtures(t)
	const clients = 4
	initial := testArch().New(1).SnapshotParams()

	agg, err := NewAggServer(initial, clients)
	if err != nil {
		t.Fatal(err)
	}
	obs := &roundObserver{}
	agg.SetObserver(obs)
	gate := &gatedServer{next: agg.Handler()}
	aggSrv := httptest.NewServer(gate)
	t.Cleanup(aggSrv.Close)

	outboxDir := t.TempDir()
	cfg := ShardedConfig{
		Upstream: aggSrv.URL, K: 1, RoundSize: clients, Shards: 2, Seed: 31,
		OutboxDir: outboxDir, RetryBase: time.Millisecond, RetryMax: 5 * time.Millisecond,
	}
	px1, err := NewSharded(cfg, encl, platform)
	if err != nil {
		t.Fatal(err)
	}
	px1Srv := httptest.NewServer(px1.Handler())

	// Round 1 flows normally.
	round1 := perturbed(initial, clients, 0)
	for i, u := range round1 {
		resp := sendRaw(t, encl, px1Srv.URL, "", u)
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("round 1 send %d: %s", i, resp.Status)
		}
	}
	flushTier(t, px1)
	if agg.Round() != 1 {
		t.Fatalf("round 1 did not close: %d", agg.Round())
	}

	// Downstream outage. Round 2 is still fully ingested — ingress never
	// blocks on the downstream — and the drained round commits to the
	// sealed outbox where delivery keeps retrying.
	gate.SetDown(true)
	round2 := perturbed(initial, clients, 100)
	for i, u := range round2 {
		resp := sendRaw(t, encl, px1Srv.URL, "", u)
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("round 2 send %d during outage: %s", i, resp.Status)
		}
	}
	st := px1.Status()
	if st.OutboxPending != 1 || st.Epoch != 2 {
		t.Fatalf("outage status pending/epoch = %d/%d, want 1/2", st.OutboxPending, st.Epoch)
	}

	// Crash the proxy mid-outage: seal, stop, restart over the SAME
	// outbox directory (the entry on disk is the round's durability).
	blob, err := px1.SealState()
	if err != nil {
		t.Fatal(err)
	}
	px1Srv.Close()
	px1.Close()

	px2, err := NewSharded(cfg, encl, platform)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(px2.Close)
	if err := px2.RestoreState(blob); err != nil {
		t.Fatal(err)
	}
	if got := px2.Status().OutboxPending; got != 1 {
		t.Fatalf("restarted proxy indexes %d outbox entries, want 1", got)
	}

	// Downstream recovers; the restarted dispatcher delivers round 2
	// exactly once.
	gate.SetDown(false)
	flushTier(t, px2)
	waitServerRound(t, agg, 2)
	if agg.Round() != 2 {
		t.Fatalf("server round = %d, want 2", agg.Round())
	}

	obs.mu.Lock()
	defer obs.mu.Unlock()
	if len(obs.recs) != 2 {
		t.Fatalf("observer saw %d rounds, want 2", len(obs.recs))
	}
	for r, rec := range obs.recs {
		if len(rec.Updates) != clients {
			t.Fatalf("round %d carried %d updates, want %d (lost or duplicated)", r, len(rec.Updates), clients)
		}
	}
	classic := fl.NewServer(initial)
	if err := classic.Aggregate(round2); err != nil {
		t.Fatal(err)
	}
	if !agg.Global().ApproxEqual(classic.Global(), 1e-9) {
		t.Fatal("global model != classic FL mean after outage + crash + restart")
	}
}

// TestDeliveryPipelinedEpochs: with the downstream offline, the tier
// keeps ingesting — round N+1 lands in fresh mixers while rounds ≤ N sit
// in the outbox — and once the downstream recovers the backlog delivers
// in epoch order with per-round aggregation equivalence intact.
func TestDeliveryPipelinedEpochs(t *testing.T) {
	platform, encl := fixtures(t)
	const clients, epochs = 4, 3
	initial := testArch().New(1).SnapshotParams()

	agg, err := NewAggServer(initial, clients)
	if err != nil {
		t.Fatal(err)
	}
	obs := &roundObserver{}
	agg.SetObserver(obs)
	gate := &gatedServer{next: agg.Handler()}
	gate.SetDown(true)
	aggSrv := httptest.NewServer(gate)
	t.Cleanup(aggSrv.Close)

	px, err := NewSharded(ShardedConfig{
		Upstream: aggSrv.URL, K: 1, RoundSize: clients, Shards: 2, Seed: 37,
		RetryBase: time.Millisecond, RetryMax: 5 * time.Millisecond,
	}, encl, platform)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(px.Close)
	pxSrv := httptest.NewServer(px.Handler())
	t.Cleanup(pxSrv.Close)

	sent := make([][]nn.ParamSet, epochs)
	for e := 0; e < epochs; e++ {
		sent[e] = perturbed(initial, clients, float64(e*1000))
		for i, u := range sent[e] {
			resp := sendRaw(t, encl, pxSrv.URL, "", u)
			resp.Body.Close()
			if resp.StatusCode != http.StatusAccepted {
				t.Fatalf("epoch %d send %d: %s", e, i, resp.Status)
			}
		}
	}
	st := px.Status()
	if st.Epoch != epochs || st.OutboxPending != epochs || st.Received != epochs*clients {
		t.Fatalf("pipelined status epoch/pending/received = %d/%d/%d, want %d/%d/%d",
			st.Epoch, st.OutboxPending, st.Received, epochs, epochs, epochs*clients)
	}

	gate.SetDown(false)
	flushTier(t, px)
	waitServerRound(t, agg, epochs)

	obs.mu.Lock()
	defer obs.mu.Unlock()
	if len(obs.recs) != epochs {
		t.Fatalf("observer saw %d rounds, want %d", len(obs.recs), epochs)
	}
	for e, rec := range obs.recs {
		classic := fl.NewServer(initial)
		if err := classic.Aggregate(sent[e]); err != nil {
			t.Fatal(err)
		}
		got, err := nn.Average(rec.Updates)
		if err != nil {
			t.Fatal(err)
		}
		if !got.ApproxEqual(classic.Global(), 1e-9) {
			t.Fatalf("epoch %d delivered out of order or corrupted (round mean mismatch)", e)
		}
	}
}

// TestDeliveryOutboxGarbageRobustness plants truncated, bit-flipped and
// foreign-enclave entries in a proxy's outbox directory: all three are
// quarantined (renamed .bad, kept as evidence) and the queue keeps
// draining real rounds.
func TestDeliveryOutboxGarbageRobustness(t *testing.T) {
	platform, encl := fixtures(t)
	const clients = 4
	initial := testArch().New(1).SnapshotParams()

	agg, err := NewAggServer(initial, clients)
	if err != nil {
		t.Fatal(err)
	}
	aggSrv := httptest.NewServer(agg.Handler())
	t.Cleanup(aggSrv.Close)

	// Plant garbage BEFORE the proxy opens the directory, as a corrupted
	// disk (or meddling host) would leave it.
	dir := t.TempDir()
	plant := func(name string, data []byte) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o600); err != nil {
			t.Fatal(err)
		}
	}
	plant("ob-0000000000000000.ent", []byte{0x01, 0x02}) // truncated
	// A well-formed sealed entry from a DIFFERENT enclave identity: the
	// open hook must reject it (sealing keys are measurement-bound).
	other, err := enclave.New(enclave.Config{CodeIdentity: "other-outbox", RSABits: 1024}, platform)
	if err != nil {
		t.Fatal(err)
	}
	foreign, err := other.SealLabeled(outboxLabel, []byte("MXOB-foreign"))
	if err != nil {
		t.Fatal(err)
	}
	plant("ob-0000000000000001.ent", foreign)

	px, err := NewSharded(ShardedConfig{
		Upstream: aggSrv.URL, K: 2, RoundSize: clients, Shards: 2, Seed: 41,
		OutboxDir: dir, RetryBase: time.Millisecond, RetryMax: 5 * time.Millisecond,
	}, encl, platform)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(px.Close)
	pxSrv := httptest.NewServer(px.Handler())
	t.Cleanup(pxSrv.Close)

	// Bit-flip a third entry AFTER sealing by corrupting a real one: run
	// a round while the downstream briefly rejects, flip the committed
	// entry, then let delivery continue — the flipped entry must be
	// quarantined, not looped on.
	for i, u := range perturbed(initial, clients, 0) {
		resp := sendRaw(t, encl, pxSrv.URL, "", u)
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("send %d: %s", i, resp.Status)
		}
	}
	flushTier(t, px)
	waitServerRound(t, agg, 1)
	if agg.Round() != 1 {
		t.Fatalf("round did not survive the garbage: %d", agg.Round())
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var bad, live int
	for _, de := range entries {
		switch {
		case strings.HasSuffix(de.Name(), ".bad"):
			bad++
		case strings.HasSuffix(de.Name(), ".ent"):
			live++
		}
	}
	if bad != 2 {
		t.Fatalf("%d quarantined entries, want 2 (truncated + foreign)", bad)
	}
	if live != 0 {
		t.Fatalf("%d entries still queued after flush", live)
	}
}

// TestDeliveryBatchEndpointForgedHop is the /v1/batch regression mirror
// of the /v1/hop hardening: the inter-proxy secret gates it, forged
// excess depth is rejected with 508 before any material is touched, and
// malformed depth is a plain 400.
func TestDeliveryBatchEndpointForgedHop(t *testing.T) {
	platform, encl := fixtures(t)
	agg, err := NewAggServer(testArch().New(1).SnapshotParams(), 8)
	if err != nil {
		t.Fatal(err)
	}
	aggSrv := httptest.NewServer(agg.Handler())
	t.Cleanup(aggSrv.Close)
	px, err := NewSharded(ShardedConfig{
		Upstream: aggSrv.URL, RoundSize: 8, Shards: 2, Seed: 43, HopSecret: "s3cret",
	}, encl, platform)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(px.Close)
	pxSrv := httptest.NewServer(px.Handler())
	t.Cleanup(pxSrv.Close)

	// A legitimate batch body, wrapped for the enclave.
	raw, err := nn.EncodeParamSet(testArch().New(3).SnapshotParams())
	if err != nil {
		t.Fatal(err)
	}
	enc, err := wire.BatchEnvelope{Updates: [][]byte{raw, raw}}.Encode()
	if err != nil {
		t.Fatal(err)
	}
	ct, err := enclave.Encrypt(encl.PublicKey(), enc)
	if err != nil {
		t.Fatal(err)
	}
	post := func(auth, hop string) int {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, pxSrv.URL+"/v1/batch", bytes.NewReader(ct))
		if err != nil {
			t.Fatal(err)
		}
		if auth != "" {
			req.Header.Set("Authorization", auth)
		}
		if hop != "" {
			req.Header.Set(wire.HeaderHop, hop)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post("", "1"); code != http.StatusUnauthorized {
		t.Fatalf("unauthenticated batch returned %d, want 401", code)
	}
	if code := post("Bearer wrong", "1"); code != http.StatusUnauthorized {
		t.Fatalf("wrong-secret batch returned %d, want 401", code)
	}
	if code := post("Bearer s3cret", fmt.Sprint(DefaultMaxHops+1)); code != http.StatusLoopDetected {
		t.Fatalf("over-deep batch returned %d, want 508", code)
	}
	if code := post("Bearer s3cret", "-2"); code != http.StatusBadRequest {
		t.Fatalf("malformed hop batch returned %d, want 400", code)
	}
	if got := px.Status().HopReceived; got != 0 {
		t.Fatalf("rejected batches still counted %d updates", got)
	}
	if code := post("Bearer s3cret", "2"); code != http.StatusAccepted {
		t.Fatalf("authorized batch returned %d, want 202", code)
	}
	if got := px.Status().HopReceived; got != 2 {
		t.Fatalf("hop_received = %d, want 2 (both batch items)", got)
	}
	// Garbage bodies on the gated endpoint are a plain 400.
	req, _ := http.NewRequest(http.MethodPost, pxSrv.URL+"/v1/batch", strings.NewReader("junk"))
	req.Header.Set("Authorization", "Bearer s3cret")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage batch returned %s, want 400", resp.Status)
	}
}

// TestDeliveryBatchRedeliveryDedup: both receivers (aggregation server
// and cascade proxy) must treat a redelivered batch id as already
// applied — that is what turns at-least-once retry into exactly-once
// rounds.
func TestDeliveryBatchRedeliveryDedup(t *testing.T) {
	platform, encl := fixtures(t)
	const clients = 4
	initial := testArch().New(1).SnapshotParams()

	t.Run("aggserver", func(t *testing.T) {
		agg, err := NewAggServer(initial, clients)
		if err != nil {
			t.Fatal(err)
		}
		aggSrv := httptest.NewServer(agg.Handler())
		t.Cleanup(aggSrv.Close)

		updates := perturbed(initial, clients, 0)
		payloads := make([][]byte, clients)
		for i, u := range updates {
			if payloads[i], err = nn.EncodeParamSet(u); err != nil {
				t.Fatal(err)
			}
		}
		enc, err := wire.BatchEnvelope{Updates: payloads}.Encode()
		if err != nil {
			t.Fatal(err)
		}
		post := func() int {
			req, err := http.NewRequest(http.MethodPost, aggSrv.URL+"/v1/batch", bytes.NewReader(enc))
			if err != nil {
				t.Fatal(err)
			}
			req.Header.Set(wire.HeaderBatch, "batch-under-test")
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			return resp.StatusCode
		}
		if code := post(); code != http.StatusAccepted {
			t.Fatalf("first delivery returned %d, want 202", code)
		}
		// The same batch redelivered (lost ack) is acknowledged without
		// starting a second round.
		if code := post(); code != http.StatusOK {
			t.Fatalf("redelivery returned %d, want 200 (already applied)", code)
		}
		if agg.Round() != 1 {
			t.Fatalf("server round = %d, want 1 (duplicate batch double-counted)", agg.Round())
		}
		want, err := nn.Average(updates)
		if err != nil {
			t.Fatal(err)
		}
		if !agg.Global().ApproxEqual(want, 1e-9) {
			t.Fatal("redelivery skewed the aggregate")
		}
	})

	t.Run("proxy", func(t *testing.T) {
		agg, err := NewAggServer(initial, 2*clients)
		if err != nil {
			t.Fatal(err)
		}
		aggSrv := httptest.NewServer(agg.Handler())
		t.Cleanup(aggSrv.Close)
		px, err := NewSharded(ShardedConfig{
			Upstream: aggSrv.URL, RoundSize: 2 * clients, Shards: 2, Seed: 47,
		}, encl, platform)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(px.Close)
		pxSrv := httptest.NewServer(px.Handler())
		t.Cleanup(pxSrv.Close)

		raw, err := nn.EncodeParamSet(initial)
		if err != nil {
			t.Fatal(err)
		}
		enc, err := wire.BatchEnvelope{Updates: [][]byte{raw, raw}}.Encode()
		if err != nil {
			t.Fatal(err)
		}
		ct, err := enclave.Encrypt(encl.PublicKey(), enc)
		if err != nil {
			t.Fatal(err)
		}
		post := func() int {
			req, err := http.NewRequest(http.MethodPost, pxSrv.URL+"/v1/batch", bytes.NewReader(ct))
			if err != nil {
				t.Fatal(err)
			}
			req.Header.Set(wire.HeaderHop, "1")
			req.Header.Set(wire.HeaderBatch, "proxy-batch-under-test")
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			return resp.StatusCode
		}
		if code := post(); code != http.StatusAccepted {
			t.Fatalf("first delivery returned %d, want 202", code)
		}
		if code := post(); code != http.StatusOK {
			t.Fatalf("redelivery returned %d, want 200", code)
		}
		if got := px.Status().HopReceived; got != 2 {
			t.Fatalf("hop_received = %d, want 2 (redelivery must not re-ingest)", got)
		}
	})
}

// TestDeliveryNoBatchCompat: the NoBatch mode drives the drained round
// through the single-update endpoints — one POST per update — for
// downstreams that predate /v1/batch.
func TestDeliveryNoBatchCompat(t *testing.T) {
	platform, encl := fixtures(t)
	const clients = 4
	initial := testArch().New(1).SnapshotParams()

	agg, err := NewAggServer(initial, clients)
	if err != nil {
		t.Fatal(err)
	}
	aggSrv := httptest.NewServer(agg.Handler())
	t.Cleanup(aggSrv.Close)
	px, err := NewSharded(ShardedConfig{
		Upstream: aggSrv.URL, K: 1, RoundSize: clients, Shards: 2, Seed: 53, NoBatch: true,
		RetryBase: time.Millisecond, RetryMax: 5 * time.Millisecond,
	}, encl, platform)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(px.Close)
	pxSrv := httptest.NewServer(px.Handler())
	t.Cleanup(pxSrv.Close)

	updates := perturbed(initial, clients, 0)
	for i, u := range updates {
		resp := sendRaw(t, encl, pxSrv.URL, "", u)
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("send %d: %s", i, resp.Status)
		}
	}
	flushTier(t, px)
	waitServerRound(t, agg, 1)
	st := px.Status()
	if st.Forwarded != clients || st.BatchesSent != 0 {
		t.Fatalf("forwarded/batches = %d/%d, want %d/0 (single-update compat path)", st.Forwarded, st.BatchesSent, clients)
	}
	want, err := nn.Average(updates)
	if err != nil {
		t.Fatal(err)
	}
	if !agg.Global().ApproxEqual(want, 1e-9) {
		t.Fatal("NoBatch delivery broke aggregation equivalence")
	}
}

// TestDeliveryCountersSurviveSealRestore is the PR 2 follow-up: per-shard
// mixer counters (received/emitted) restore with the tier instead of
// resetting, exactly for an unchanged shard count and sum-preserving
// across a reshard — and the pending (emitted-but-uncommitted) updates
// survive too, so the finished round still matches classic FL.
func TestDeliveryCountersSurviveSealRestore(t *testing.T) {
	platform, encl := fixtures(t)
	const clients = 6
	initial := testArch().New(1).SnapshotParams()

	agg, err := NewAggServer(initial, clients)
	if err != nil {
		t.Fatal(err)
	}
	aggSrv := httptest.NewServer(agg.Handler())
	t.Cleanup(aggSrv.Close)

	// K=1 over 2 shards: the 4 pre-crash sends produce mid-round
	// emissions, so the pending buffer is non-empty at seal time.
	cfg := ShardedConfig{Upstream: aggSrv.URL, K: 1, RoundSize: clients, Shards: 2, Seed: 59}
	px1, err := NewSharded(cfg, encl, platform)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(px1.Close)
	px1Srv := httptest.NewServer(px1.Handler())
	updates := perturbed(initial, clients, 0)
	for i := 0; i < 4; i++ {
		resp := sendRaw(t, encl, px1Srv.URL, fmt.Sprintf("client-%d", i), updates[i])
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("send %d: %s", i, resp.Status)
		}
	}
	sealedSt := px1.Status()
	var sealedEmitted int
	for _, sh := range sealedSt.Shards {
		sealedEmitted += sh.Emitted
	}
	if sealedEmitted == 0 {
		t.Fatal("test setup: no emissions before seal; counters not exercised")
	}
	blob, err := px1.SealState()
	if err != nil {
		t.Fatal(err)
	}
	px1Srv.Close()

	// Same-shape restore: per-shard counters are exact.
	same, err := NewSharded(cfg, encl, platform)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(same.Close)
	if err := same.RestoreState(blob); err != nil {
		t.Fatal(err)
	}
	sameSt := same.Status()
	for s, sh := range sameSt.Shards {
		if sh.Received != sealedSt.Shards[s].Received || sh.Emitted != sealedSt.Shards[s].Emitted {
			t.Fatalf("shard %d counters %d/%d after restore, sealed %d/%d",
				s, sh.Received, sh.Emitted, sealedSt.Shards[s].Received, sealedSt.Shards[s].Emitted)
		}
	}

	// Resharded restore (2 → 3): totals are preserved.
	reshardCfg := cfg
	reshardCfg.Shards = 3
	resharded, err := NewSharded(reshardCfg, encl, platform)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(resharded.Close)
	if err := resharded.RestoreState(blob); err != nil {
		t.Fatal(err)
	}
	var wantRecv, wantEmit, gotRecv, gotEmit int
	for _, sh := range sealedSt.Shards {
		wantRecv += sh.Received
		wantEmit += sh.Emitted
	}
	for _, sh := range resharded.Status().Shards {
		gotRecv += sh.Received
		gotEmit += sh.Emitted
	}
	if gotRecv != wantRecv || gotEmit != wantEmit {
		t.Fatalf("resharded counter totals %d/%d, sealed %d/%d", gotRecv, gotEmit, wantRecv, wantEmit)
	}

	// Finish the round on the same-shape restore; the pending emissions
	// must ride along — equivalence proves nothing was dropped.
	sameSrv := httptest.NewServer(same.Handler())
	t.Cleanup(sameSrv.Close)
	for i := 4; i < clients; i++ {
		resp := sendRaw(t, encl, sameSrv.URL, fmt.Sprintf("client-%d", i), updates[i])
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("send %d: %s", i, resp.Status)
		}
	}
	flushTier(t, same)
	waitServerRound(t, agg, 1)
	want, err := nn.Average(updates)
	if err != nil {
		t.Fatal(err)
	}
	if !agg.Global().ApproxEqual(want, 1e-9) {
		t.Fatal("restored pending emissions lost: aggregate != classic mean")
	}
}

// TestDeliveryNoBatchCascade: the compat path through a real cascade —
// the front tier posts each update of the drained round individually to
// the hop's /v1/hop (re-encrypted per update, watermark-stamped), and
// the round still closes with exact equivalence.
func TestDeliveryNoBatchCascade(t *testing.T) {
	platform, frontEncl := fixtures(t)
	hopEncl, err := enclave.New(enclave.Config{CodeIdentity: "mixnn-proxy-nobatch-hop"}, platform)
	if err != nil {
		t.Fatal(err)
	}
	const clients = 4
	initial := testArch().New(1).SnapshotParams()

	agg, err := NewAggServer(initial, clients)
	if err != nil {
		t.Fatal(err)
	}
	aggSrv := httptest.NewServer(agg.Handler())
	t.Cleanup(aggSrv.Close)
	hopPx, err := NewSharded(ShardedConfig{
		Upstream: aggSrv.URL, K: 2, RoundSize: clients, Seed: 61, HopSecret: "nb-secret",
	}, hopEncl, platform)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(hopPx.Close)
	hopSrv := httptest.NewServer(hopPx.Handler())
	t.Cleanup(hopSrv.Close)

	frontPx, err := NewSharded(ShardedConfig{
		NextHop: hopSrv.URL, NextHopKey: enclave.PinnedHop(hopEncl.PublicKey(), hopEncl.Measurement()),
		NextHopSecret: "nb-secret", K: 1, RoundSize: clients, Shards: 2, Seed: 62, NoBatch: true,
		RetryBase: time.Millisecond, RetryMax: 5 * time.Millisecond,
	}, frontEncl, platform)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(frontPx.Close)
	frontSrv := httptest.NewServer(frontPx.Handler())
	t.Cleanup(frontSrv.Close)

	updates := perturbed(initial, clients, 0)
	for i, u := range updates {
		resp := sendRaw(t, frontEncl, frontSrv.URL, "", u)
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("send %d: %s", i, resp.Status)
		}
	}
	flushTier(t, frontPx, hopPx)
	waitServerRound(t, agg, 1)
	frontSt, hopSt := frontPx.Status(), hopPx.Status()
	if frontSt.Forwarded != clients || frontSt.BatchesSent != 0 {
		t.Fatalf("front forwarded/batches = %d/%d, want %d/0", frontSt.Forwarded, frontSt.BatchesSent, clients)
	}
	if hopSt.HopReceived != clients {
		t.Fatalf("hop received %d singles, want %d", hopSt.HopReceived, clients)
	}
	want, err := nn.Average(updates)
	if err != nil {
		t.Fatal(err)
	}
	if !agg.Global().ApproxEqual(want, 1e-9) {
		t.Fatal("NoBatch cascade broke aggregation equivalence")
	}
}

// TestDeliveryPermanentRejectQuarantines: a downstream that definitively
// rejects a batch (4xx) must not be retried forever — the entry is
// quarantined and the queue keeps moving.
func TestDeliveryPermanentRejectQuarantines(t *testing.T) {
	platform, encl := fixtures(t)
	reject := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "schema mismatch", http.StatusBadRequest)
	}))
	t.Cleanup(reject.Close)

	dir := t.TempDir()
	px, err := NewSharded(ShardedConfig{
		Upstream: reject.URL, K: 1, RoundSize: 2, Shards: 1, Seed: 67,
		OutboxDir: dir, RetryBase: time.Millisecond, RetryMax: 5 * time.Millisecond,
	}, encl, platform)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(px.Close)
	pxSrv := httptest.NewServer(px.Handler())
	t.Cleanup(pxSrv.Close)

	for i := 0; i < 2; i++ {
		resp := sendRaw(t, encl, pxSrv.URL, "", testArch().New(int64(70+i)).SnapshotParams())
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("send %d: %s", i, resp.Status)
		}
	}
	// The rejected entry leaves the queue (Flush returns) without ever
	// being counted as forwarded, and the evidence lands in a .bad file.
	flushTier(t, px)
	st := px.Status()
	if st.OutboxPending != 0 || st.Forwarded != 0 {
		t.Fatalf("pending/forwarded = %d/%d, want 0/0 (quarantined, not delivered)", st.OutboxPending, st.Forwarded)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	bad := 0
	for _, de := range entries {
		if strings.HasSuffix(de.Name(), ".bad") {
			bad++
		}
	}
	if bad != 1 {
		t.Fatalf("%d quarantined entries, want 1", bad)
	}
}

// TestDeliveryNoBatchPermanentReject: in single-update compat mode a
// definitive downstream rejection also quarantines the entry (with its
// resume marker cleaned up) instead of retrying forever.
func TestDeliveryNoBatchPermanentReject(t *testing.T) {
	platform, encl := fixtures(t)
	reject := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", http.StatusBadRequest)
	}))
	t.Cleanup(reject.Close)
	px, err := NewSharded(ShardedConfig{
		Upstream: reject.URL, K: 1, RoundSize: 2, Shards: 1, Seed: 71, NoBatch: true,
		RetryBase: time.Millisecond, RetryMax: 5 * time.Millisecond,
	}, encl, platform)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(px.Close)
	pxSrv := httptest.NewServer(px.Handler())
	t.Cleanup(pxSrv.Close)

	for i := 0; i < 2; i++ {
		resp := sendRaw(t, encl, pxSrv.URL, "", testArch().New(int64(80+i)).SnapshotParams())
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("send %d: %s", i, resp.Status)
		}
	}
	flushTier(t, px)
	st := px.Status()
	if st.OutboxPending != 0 || st.Forwarded != 0 {
		t.Fatalf("pending/forwarded = %d/%d, want 0/0 (entry quarantined)", st.OutboxPending, st.Forwarded)
	}
	if got := px.box.Progress(0); got != 0 {
		t.Fatalf("quarantined entry leaked a progress marker (%d)", got)
	}
}

// TestDeliveryBatchIncompatibleWithOpenRound: a batch whose items cannot
// be mixed into the epoch's established model structure is rejected
// whole (nothing counted), so the upstream can safely quarantine it.
func TestDeliveryBatchIncompatibleWithOpenRound(t *testing.T) {
	platform, encl := fixtures(t)
	agg, err := NewAggServer(testArch().New(1).SnapshotParams(), 8)
	if err != nil {
		t.Fatal(err)
	}
	aggSrv := httptest.NewServer(agg.Handler())
	t.Cleanup(aggSrv.Close)
	px, err := NewSharded(ShardedConfig{
		Upstream: aggSrv.URL, RoundSize: 8, Shards: 1, Seed: 73,
	}, encl, platform)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(px.Close)
	pxSrv := httptest.NewServer(px.Handler())
	t.Cleanup(pxSrv.Close)

	// Establish the epoch's structure with one participant update.
	resp := sendRaw(t, encl, pxSrv.URL, "", testArch().New(2).SnapshotParams())
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("seed update: %s", resp.Status)
	}

	// A batch of a DIFFERENT architecture: every item fails to mix.
	other, err := nn.EncodeParamSet(nn.NewMLP("other", 3, []int{2}, 2).New(1).SnapshotParams())
	if err != nil {
		t.Fatal(err)
	}
	enc, err := wire.BatchEnvelope{Updates: [][]byte{other, other}}.Encode()
	if err != nil {
		t.Fatal(err)
	}
	ct, err := enclave.Encrypt(encl.PublicKey(), enc)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, pxSrv.URL+"/v1/batch", bytes.NewReader(ct))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(wire.HeaderHop, "1")
	req.Header.Set(wire.HeaderBatch, "incompatible-batch")
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("incompatible batch returned %s, want 400", resp2.Status)
	}
	st := px.Status()
	if st.HopReceived != 0 || st.InRound != 1 {
		t.Fatalf("hop_received/in_round = %d/%d, want 0/1 (nothing from the batch counted)", st.HopReceived, st.InRound)
	}
	// The rejected batch released its id (nothing was applied), so a
	// redelivery is processed afresh — and still rejected, not 200-acked
	// as a duplicate of something that never landed.
	req2, err := http.NewRequest(http.MethodPost, pxSrv.URL+"/v1/batch", bytes.NewReader(ct))
	if err != nil {
		t.Fatal(err)
	}
	req2.Header.Set(wire.HeaderHop, "1")
	req2.Header.Set(wire.HeaderBatch, "incompatible-batch")
	resp3, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusBadRequest {
		t.Fatalf("redelivered rejected batch returned %s, want 400 (id must have been released)", resp3.Status)
	}
}

// TestDeliveryClassifyStatus pins the retry-vs-quarantine mapping the
// dispatcher depends on, now expressed over typed transport errors.
func TestDeliveryClassifyStatus(t *testing.T) {
	isPermanent := func(err error) bool {
		if err == nil {
			return false
		}
		var perm *outbox.PermanentError
		return errors.As(err, &perm)
	}
	permanent := func(code int) bool {
		return isPermanent(classifyDelivery(&transport.StatusError{Code: code, Msg: http.StatusText(code)}))
	}
	for _, code := range []int{http.StatusBadRequest, http.StatusUnprocessableEntity, http.StatusNotFound,
		http.StatusUpgradeRequired, http.StatusLoopDetected} {
		if !permanent(code) {
			t.Fatalf("%d must be permanent (retry can never succeed)", code)
		}
	}
	for _, code := range []int{http.StatusUnauthorized, http.StatusForbidden, http.StatusRequestTimeout,
		http.StatusTooManyRequests, http.StatusInternalServerError, http.StatusServiceUnavailable} {
		err := classifyDelivery(&transport.StatusError{Code: code, Msg: http.StatusText(code)})
		if err == nil || permanent(code) {
			t.Fatalf("%d must be transient (recoverable downstream state)", code)
		}
	}
	// A 409 is transient (an earlier attempt may still be applying) —
	// unless it carries the stale marker, which proves retrying can
	// never succeed.
	if isPermanent(classifyDelivery(&transport.StatusError{Code: http.StatusConflict})) {
		t.Fatal("plain 409 must stay transient")
	}
	if !isPermanent(classifyDelivery(&transport.StatusError{Code: http.StatusConflict, Stale: true})) {
		t.Fatal("stale 409 must be permanent")
	}
	// Transport-level failures (downstream unreachable) are transient by
	// definition.
	if isPermanent(classifyDelivery(errors.New("connection refused"))) {
		t.Fatal("transport errors must stay transient")
	}
}

// TestDeliveryStatusSurfaces covers the HTTP status endpoint and the
// tier-shape accessors the delivery pipeline extended.
func TestDeliveryStatusSurfaces(t *testing.T) {
	_, px, proxyURL, _ := shardedDeployment(t, 6, 2, 3)
	if px.Shards() != 3 {
		t.Fatalf("Shards() = %d, want 3", px.Shards())
	}
	resp, err := http.Get(proxyURL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st wire.ShardedProxyStatus
	if err := wire.DecodeJSON(resp.Body, &st); err != nil {
		t.Fatal(err)
	}
	if len(st.Shards) != 3 || st.RoundSize != 6 || st.Epoch != 0 || st.OutboxPending != 0 {
		t.Fatalf("status over HTTP = %+v", st)
	}
}

// TestAggServerBatchRejectsGarbage: the server-side batch endpoint
// validates the envelope and every item before counting anything.
func TestAggServerBatchRejectsGarbage(t *testing.T) {
	agg, err := NewAggServer(testArch().New(1).SnapshotParams(), 2)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(agg.Handler())
	t.Cleanup(srv.Close)

	post := func(body []byte) int {
		resp, err := http.Post(srv.URL+"/v1/batch", wire.ContentTypeBatch, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post([]byte("junk")); code != http.StatusBadRequest {
		t.Fatalf("garbage envelope returned %d, want 400", code)
	}
	badItem, err := wire.BatchEnvelope{Updates: [][]byte{[]byte("not a param set")}}.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if code := post(badItem); code != http.StatusBadRequest {
		t.Fatalf("malformed batch item returned %d, want 400", code)
	}
	// A well-formed batch of the WRONG architecture is rejected before
	// anything is buffered (422, permanent), and — since nothing was
	// applied — its idempotency id is released for redelivery.
	wrongArch, err := nn.EncodeParamSet(nn.NewMLP("wrong", 3, []int{2}, 2).New(1).SnapshotParams())
	if err != nil {
		t.Fatal(err)
	}
	poison, err := wire.BatchEnvelope{Updates: [][]byte{wrongArch, wrongArch}}.Encode()
	if err != nil {
		t.Fatal(err)
	}
	postID := func(body []byte) int {
		req, err := http.NewRequest(http.MethodPost, srv.URL+"/v1/batch", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set(wire.HeaderBatch, "poison-batch")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	for i := 0; i < 2; i++ {
		if code := postID(poison); code != http.StatusUnprocessableEntity {
			t.Fatalf("poison batch attempt %d returned %d, want 422", i, code)
		}
	}
	if agg.Round() != 0 {
		t.Fatalf("rejected batches advanced the round to %d", agg.Round())
	}
	st, err := http.Get(srv.URL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Body.Close()
	var status wire.ServerStatus
	if err := wire.DecodeJSON(st.Body, &status); err != nil {
		t.Fatal(err)
	}
	if status.UpdatesInRound != 0 {
		t.Fatalf("rejected batch items were counted: %d", status.UpdatesInRound)
	}
}

// FuzzDeliveryEquivalence fuzzes the delivery pipeline's core invariant
// over epochs × shard count × round size × batch mode × mixer storage
// mode: every epoch's delivered round must average to exactly that
// epoch's classic-FL mean.
func FuzzDeliveryEquivalence(f *testing.F) {
	f.Add(uint8(1), uint8(1), uint8(3), true, false)
	f.Add(uint8(2), uint8(2), uint8(4), true, false)
	f.Add(uint8(3), uint8(3), uint8(5), true, true)
	f.Add(uint8(2), uint8(2), uint8(4), false, true)
	f.Add(uint8(2), uint8(2), uint8(6), true, false)
	f.Add(uint8(3), uint8(1), uint8(7), true, true)
	f.Fuzz(func(t *testing.T, epochs, shards, c uint8, batch, loop bool) {
		e := int(epochs)%3 + 1
		p := int(shards)%4 + 1
		clients := p + int(c)%8
		platform, encl := fixtures(t)
		initial := testArch().New(1).SnapshotParams()

		agg, err := NewAggServer(initial, clients)
		if err != nil {
			t.Fatal(err)
		}
		obs := &roundObserver{}
		agg.SetObserver(obs)
		// Transport dimension: the same pipeline over real HTTP or over
		// the in-process Loopback must deliver identical aggregates.
		tn := newTestNet(t, loop)
		aggEP := tn.serve("loop://agg", agg)
		px, err := NewSharded(ShardedConfig{
			Upstream: aggEP, K: 1, RoundSize: clients, Shards: p,
			Seed: int64(e*100 + p*10 + clients), NoBatch: !batch,
			RetryBase: time.Millisecond, RetryMax: 5 * time.Millisecond,
			Transport: tn.cfgTransport(),
			// Storage-mode dimension, derived from an existing parameter so
			// the corpus stays valid: slab-backed (the default) and legacy
			// mixers must deliver identical aggregates.
			LegacyMix: c&1 == 1,
		}, encl, platform)
		if err != nil {
			t.Fatal(err)
		}
		defer px.Close()
		pxEP := tn.serve("loop://front", px)

		// Ingress-format dimension: when set, even-index clients speak the
		// session-keyed ciphertext (one session per client, persisting
		// across epochs) while odd clients stay on the legacy hybrid
		// format — both interleaved must deliver identical aggregates.
		sessionArm := c&2 == 2
		sessions := make([]*enclave.Session, clients)
		if sessionArm {
			for i := 0; i < clients; i += 2 {
				s, err := enclave.NewSession(encl.PublicKey())
				if err != nil {
					t.Fatal(err)
				}
				sessions[i] = s
			}
		}
		sent := make([][]nn.ParamSet, e)
		for epoch := 0; epoch < e; epoch++ {
			sent[epoch] = perturbed(initial, clients, float64(epoch*1000))
			for i, u := range sent[epoch] {
				if sessions[i] != nil {
					sendSessionTyped(t, tn.tr(), sessions[i], pxEP, fmt.Sprintf("c%d", i), u)
				} else {
					sendTyped(t, tn.tr(), encl, pxEP, fmt.Sprintf("c%d", i), u)
				}
			}
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := px.Flush(ctx); err != nil {
			t.Fatal(err)
		}
		waitServerRound(t, agg, e)

		obs.mu.Lock()
		defer obs.mu.Unlock()
		if len(obs.recs) != e {
			t.Fatalf("observer saw %d rounds, want %d", len(obs.recs), e)
		}
		for epoch, rec := range obs.recs {
			want, err := nn.Average(sent[epoch])
			if err != nil {
				t.Fatal(err)
			}
			got, err := nn.Average(rec.Updates)
			if err != nil {
				t.Fatal(err)
			}
			if !got.ApproxEqual(want, 1e-9) {
				t.Fatalf("epoch %d (P=%d C=%d batch=%v): delivered mean != classic mean", epoch, p, clients, batch)
			}
		}
	})
}
