// Package proxy implements the networked deployment of MixNN (Figure 3):
// an HTTP aggregation server, the MixNN proxy running inside a (simulated)
// SGX enclave, and the participant-side client that encrypts updates for
// the attested enclave.
package proxy

import (
	"fmt"
	"net/http"
	"strconv"
	"sync"

	"mixnn/internal/fl"
	"mixnn/internal/nn"
	"mixnn/internal/wire"
)

// AggServer is the HTTP aggregation server: it collects a fixed number of
// updates per round, averages them, and serves the global model.
// An optional fl.Observer sees each completed round's updates — this is
// how the adversarial-server experiments instrument the networked path.
type AggServer struct {
	expect int

	mu       sync.Mutex
	server   *fl.Server
	round    int
	pending  []nn.ParamSet
	observer fl.Observer
	// disseminated is the model as served for the current round (what
	// clients train on); recorded so observers get the exact base model.
	disseminated nn.ParamSet
}

// NewAggServer builds the server with its initial global model and the
// number of updates that completes a round.
func NewAggServer(initial nn.ParamSet, expectPerRound int) (*AggServer, error) {
	if expectPerRound <= 0 {
		return nil, fmt.Errorf("proxy: expectPerRound must be positive, got %d", expectPerRound)
	}
	return &AggServer{
		expect:       expectPerRound,
		server:       fl.NewServer(initial),
		disseminated: initial.Clone(),
	}, nil
}

// SetObserver installs an observer of completed rounds (e.g. ∇Sim).
func (s *AggServer) SetObserver(obs fl.Observer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.observer = obs
}

// SetDisseminated overrides the model served to clients for the current
// round (the active-attack hook).
func (s *AggServer) SetDisseminated(ps nn.ParamSet) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.disseminated = ps.Clone()
}

// Round returns the current round number (completed rounds).
func (s *AggServer) Round() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.round
}

// Global returns the current global model.
func (s *AggServer) Global() nn.ParamSet { return s.server.Global() }

// Handler returns the HTTP API.
func (s *AggServer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/update", s.handleUpdate)
	mux.HandleFunc("GET /v1/model", s.handleModel)
	mux.HandleFunc("GET /v1/status", s.handleStatus)
	return mux
}

func (s *AggServer) handleUpdate(w http.ResponseWriter, r *http.Request) {
	body, err := wire.ReadBody(r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	ps, err := nn.DecodeParamSet(body)
	if err != nil {
		http.Error(w, fmt.Sprintf("decode update: %v", err), http.StatusBadRequest)
		return
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	s.pending = append(s.pending, ps)
	if len(s.pending) < s.expect {
		w.WriteHeader(http.StatusAccepted)
		return
	}
	// Round complete: observe, aggregate, advance.
	if s.observer != nil {
		s.observer.ObserveRound(fl.RoundRecord{
			Round:        s.round,
			Disseminated: s.disseminated,
			Updates:      s.pending,
		})
	}
	if err := s.server.Aggregate(s.pending); err != nil {
		s.pending = nil
		http.Error(w, fmt.Sprintf("aggregate: %v", err), http.StatusInternalServerError)
		return
	}
	s.pending = nil
	s.round++
	s.disseminated = s.server.Global()
	w.WriteHeader(http.StatusOK)
}

func (s *AggServer) handleModel(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	round := s.round
	model := s.disseminated.Clone()
	s.mu.Unlock()

	w.Header().Set("Content-Type", wire.ContentTypeUpdate)
	w.Header().Set(wire.HeaderRound, strconv.Itoa(round))
	if err := nn.WriteParamSet(w, model); err != nil {
		// Response already started; the client's decode will fail and it
		// will retry.
		return
	}
}

func (s *AggServer) handleStatus(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	st := wire.ServerStatus{Round: s.round, UpdatesInRound: len(s.pending), ExpectPerRound: s.expect}
	s.mu.Unlock()
	wire.WriteJSON(w, st)
}
