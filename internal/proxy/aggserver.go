// Package proxy implements the networked deployment of MixNN (Figure 3):
// an HTTP aggregation server, the MixNN proxy running inside a (simulated)
// SGX enclave, and the participant-side client that encrypts updates for
// the attested enclave.
package proxy

import (
	"context"
	"fmt"
	"net/http"
	"sync"

	"mixnn/internal/fl"
	"mixnn/internal/nn"
	"mixnn/internal/transport"
	"mixnn/internal/wire"
)

// AggServer is the HTTP aggregation server: it collects a fixed number of
// updates per round — one at a time on /v1/update or a whole drained
// round on /v1/batch — averages them, and serves the global model.
// An optional fl.Observer sees each completed round's updates — this is
// how the adversarial-server experiments instrument the networked path.
type AggServer struct {
	expect int

	mu       sync.Mutex
	server   *fl.Server
	round    int
	pending  []nn.ParamSet
	observer fl.Observer
	// seen dedups batch idempotency ids so a proxy redelivering after a
	// lost acknowledgement cannot double-count a round.
	seen batchDedup
	// disseminated is the model as served for the current round (what
	// clients train on); recorded so observers get the exact base model.
	disseminated nn.ParamSet
	// encModel caches the encoded form of disseminated for the model
	// endpoint (participants poll it every few hundred ms; re-encoding
	// megabytes per poll would be pure garbage). modelGen bumps on every
	// disseminated change, invalidating the cache.
	encModel []byte
	modelGen uint64
}

// NewAggServer builds the server with its initial global model and the
// number of updates that completes a round.
func NewAggServer(initial nn.ParamSet, expectPerRound int) (*AggServer, error) {
	if expectPerRound <= 0 {
		return nil, fmt.Errorf("proxy: expectPerRound must be positive, got %d", expectPerRound)
	}
	return &AggServer{
		expect:       expectPerRound,
		server:       fl.NewServer(initial),
		disseminated: initial.Clone(),
	}, nil
}

// SetObserver installs an observer of completed rounds (e.g. ∇Sim).
func (s *AggServer) SetObserver(obs fl.Observer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.observer = obs
}

// SetDedupWindow sizes the batch-dedup FIFO (default DefaultDedupWindow).
// Call before serving.
func (s *AggServer) SetDedupWindow(n int) {
	s.seen.SetWindow(n)
}

// SetDisseminated overrides the model served to clients for the current
// round (the active-attack hook).
func (s *AggServer) SetDisseminated(ps nn.ParamSet) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.disseminated = ps.Clone()
	s.encModel = nil
	s.modelGen++
}

// Round returns the current round number (completed rounds).
func (s *AggServer) Round() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.round
}

// Global returns the current global model.
func (s *AggServer) Global() nn.ParamSet { return s.server.Global() }

// Handler returns the HTTP API: the typed protocol served over the
// wire-compatible HTTP adapter. Endpoints the aggregation server does
// not provide (cascade ingress, attestation, topology admin) answer 404
// exactly as the unregistered routes did.
func (s *AggServer) Handler() http.Handler {
	return transport.NewHandler(s)
}

// absorb appends updates to the open round and closes as many rounds as
// they complete (a batch may span a round boundary — e.g. a restored
// proxy delivering a merged backlog). Round closure is unchanged:
// observe, aggregate, advance. It reports how many rounds closed so a
// batch handler can tell "rejected untouched" from "partially applied".
func (s *AggServer) absorb(updates []nn.ParamSet) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	// Validate structure against the global model BEFORE buffering
	// anything: a poison update must not enter pending, where it would
	// sink whole rounds of other senders' material when Aggregate fails.
	for i, u := range updates {
		if !s.disseminated.Compatible(u) {
			return 0, fmt.Errorf("update %d incompatible with the global model", i)
		}
	}
	closed := 0
	s.pending = append(s.pending, updates...)
	for len(s.pending) >= s.expect {
		batch := s.pending[:s.expect:s.expect]
		if s.observer != nil {
			s.observer.ObserveRound(fl.RoundRecord{
				Round:        s.round,
				Disseminated: s.disseminated,
				Updates:      batch,
			})
		}
		if err := s.server.Aggregate(batch); err != nil {
			// Drop only the failing round's material; later-arrived
			// updates already acknowledged to other senders stay
			// buffered for the rounds they belong to.
			s.pending = append([]nn.ParamSet(nil), s.pending[s.expect:]...)
			return closed, fmt.Errorf("aggregate: %w", err)
		}
		s.pending = s.pending[s.expect:]
		s.round++
		s.disseminated = s.server.Global()
		s.encModel = nil
		s.modelGen++
		closed++
	}
	return closed, nil
}

// HandleUpdate ingests one plaintext mixed update. It implements
// transport.Server.
func (s *AggServer) HandleUpdate(ctx context.Context, req transport.UpdateRequest) (transport.Receipt, error) {
	if err := transport.CheckBody(req.Body); err != nil {
		return transport.Receipt{Shard: -1}, err
	}
	// Zero-copy decode: the views alias req.Body, which this request owns
	// and the aggregation path never mutates (absorb buffers the views and
	// Average allocates a fresh result).
	ps, err := nn.DecodeParamSetNoCopy(req.Body)
	if err != nil {
		return transport.Receipt{Shard: -1}, transport.Errorf(http.StatusBadRequest, "decode update: %v", err)
	}
	if _, err := s.absorb([]nn.ParamSet{ps}); err != nil {
		// An aggregate failure is structural (updates incompatible with
		// the global model) — retrying the same material cannot succeed,
		// so answer 422: proxies classify it permanent and quarantine the
		// entry instead of wedging their queue on it.
		return transport.Receipt{Shard: -1}, transport.Errorf(http.StatusUnprocessableEntity, "%s", err.Error())
	}
	return transport.Receipt{Shard: -1}, nil
}

// HandleBatch ingests a whole drained round in one request. The body is
// a plaintext wire.BatchEnvelope; the idempotency id makes redelivery
// safe: a batch the server already applied is acknowledged without
// reprocessing, so proxy retry after a lost acknowledgement cannot skew
// the round mean with duplicates. It implements transport.Server.
func (s *AggServer) HandleBatch(ctx context.Context, req transport.BatchRequest) (transport.Receipt, error) {
	if err := transport.CheckBody(req.Body); err != nil {
		return transport.Receipt{Shard: -1}, err
	}
	batchID := req.ID
	env, err := wire.DecodeBatchEnvelope(req.Body)
	if err != nil {
		return transport.Receipt{Shard: -1}, transport.Errorf(http.StatusBadRequest, "%s", err.Error())
	}
	// Decode every update before absorbing any, so a malformed item
	// cannot leave a round half-counted.
	updates := make([]nn.ParamSet, len(env.Updates))
	for i, raw := range env.Updates {
		// The request body's ownership transferred to this handler, so
		// the zero-copy decode is safe; aggregation never mutates updates.
		if updates[i], err = nn.DecodeParamSetNoCopy(raw); err != nil {
			return transport.Receipt{Shard: -1}, transport.Errorf(http.StatusBadRequest, "decode batch update %d: %v", i, err)
		}
	}
	// Claim the id BEFORE absorbing: a retry overlapping a slow first
	// attempt must dedup, not re-apply — and an attempt still in flight
	// must not be acked as applied (the sender would consume its outbox
	// entry while this attempt can still fail).
	sender, senderSeq, hasSeq := req.Sender, req.Seq, req.HasSeq && req.Sender != ""
	if batchID != "" {
		switch s.seen.Begin(batchID, sender, senderSeq, hasSeq) {
		case dedupApplied:
			return transport.Receipt{Shard: -1, Duplicate: true}, nil
		case dedupInFlight:
			return transport.Receipt{Shard: -1}, transport.Errorf(http.StatusConflict, "batch application in flight")
		case dedupStale:
			// Aged out of the window but provably superseded by the
			// sender's sequence watermark: re-absorbing would double-count
			// a round. The stale marker makes the sender quarantine
			// instead of retrying.
			return transport.Receipt{Shard: -1}, &transport.StatusError{
				Code: http.StatusConflict, Stale: true,
				Msg: "stale batch redelivery (sequence below the sender's applied watermark)",
			}
		}
	}
	closed, err := s.absorb(updates)
	if err != nil {
		// Structural failure — permanent from the sender's point of view
		// (see HandleUpdate); a 5xx here would make the proxy retry the
		// same poison batch forever. If the batch spanned round
		// boundaries and some rounds DID close before the failure, keep
		// its id recorded as applied: the entry will be quarantined
		// upstream, and should the operator ever re-inject the .bad
		// file, the dedup must stop the applied rounds from
		// double-counting.
		if batchID != "" {
			if closed == 0 {
				s.seen.Forget(batchID)
			} else {
				s.seen.Done(batchID, sender, senderSeq, hasSeq)
			}
		}
		return transport.Receipt{Shard: -1}, transport.Errorf(http.StatusUnprocessableEntity, "%s", err.Error())
	}
	if batchID != "" {
		s.seen.Done(batchID, sender, senderSeq, hasSeq)
	}
	return transport.Receipt{Shard: -1}, nil
}

// HandleHop implements transport.Server: the aggregation server is not
// a cascade hop.
func (s *AggServer) HandleHop(ctx context.Context, req transport.HopRequest) (transport.Receipt, error) {
	return transport.Receipt{Shard: -1}, transport.ErrNotSupported
}

// HandleAttest implements transport.Server: the server runs no enclave.
func (s *AggServer) HandleAttest(ctx context.Context, nonce []byte) (wire.AttestationResponse, error) {
	return wire.AttestationResponse{}, transport.ErrNotSupported
}

// HandleTopology implements transport.Server: the server has no
// routing plane.
func (s *AggServer) HandleTopology(ctx context.Context, req transport.TopologyRequest) (wire.TopologyStatus, error) {
	return wire.TopologyStatus{}, transport.ErrNotSupported
}

// HandleModel serves the current global model. It implements
// transport.Server. The encoded body is cached per model generation —
// participants poll this endpoint continuously, and the cache turns
// each poll into a buffer handoff instead of a clone + encode. The
// returned Body is shared between concurrent polls and MUST NOT be
// mutated by callers (the HTTP adapter only writes it; the SDK's
// FetchModel decodes it with the copying decoder).
func (s *AggServer) HandleModel(ctx context.Context) (transport.ModelResponse, error) {
	s.mu.Lock()
	if s.encModel != nil {
		resp := transport.ModelResponse{Round: s.round, Body: s.encModel}
		s.mu.Unlock()
		return resp, nil
	}
	round, gen := s.round, s.modelGen
	model := s.disseminated.Clone()
	s.mu.Unlock()
	// Encode outside the lock: a multi-megabyte encode must not block
	// ingress. The generation check below keeps a concurrent round
	// close (or an active-attack SetDisseminated) from caching a stale
	// body.
	body, err := nn.EncodeParamSet(model)
	if err != nil {
		return transport.ModelResponse{}, err
	}
	s.mu.Lock()
	if s.modelGen == gen && s.encModel == nil {
		s.encModel = body
	}
	s.mu.Unlock()
	return transport.ModelResponse{Round: round, Body: body}, nil
}

// HandleStatus implements transport.Server.
func (s *AggServer) HandleStatus(ctx context.Context) (transport.StatusResponse, error) {
	s.mu.Lock()
	st := wire.ServerStatus{Round: s.round, UpdatesInRound: len(s.pending), ExpectPerRound: s.expect}
	s.mu.Unlock()
	return transport.StatusResponse{Server: &st}, nil
}

// HandleDiscover implements transport.Server: the aggregation server is
// not a failover target for participant ingress, so it advertises
// nothing.
func (s *AggServer) HandleDiscover(ctx context.Context) (wire.DiscoverResponse, error) {
	return wire.DiscoverResponse{}, transport.ErrNotSupported
}
