// Package proxy implements the networked deployment of MixNN (Figure 3):
// an HTTP aggregation server, the MixNN proxy running inside a (simulated)
// SGX enclave, and the participant-side client that encrypts updates for
// the attested enclave.
package proxy

import (
	"fmt"
	"net/http"
	"strconv"
	"sync"

	"mixnn/internal/fl"
	"mixnn/internal/nn"
	"mixnn/internal/wire"
)

// AggServer is the HTTP aggregation server: it collects a fixed number of
// updates per round — one at a time on /v1/update or a whole drained
// round on /v1/batch — averages them, and serves the global model.
// An optional fl.Observer sees each completed round's updates — this is
// how the adversarial-server experiments instrument the networked path.
type AggServer struct {
	expect int

	mu       sync.Mutex
	server   *fl.Server
	round    int
	pending  []nn.ParamSet
	observer fl.Observer
	// seen dedups batch idempotency ids so a proxy redelivering after a
	// lost acknowledgement cannot double-count a round.
	seen batchDedup
	// disseminated is the model as served for the current round (what
	// clients train on); recorded so observers get the exact base model.
	disseminated nn.ParamSet
}

// NewAggServer builds the server with its initial global model and the
// number of updates that completes a round.
func NewAggServer(initial nn.ParamSet, expectPerRound int) (*AggServer, error) {
	if expectPerRound <= 0 {
		return nil, fmt.Errorf("proxy: expectPerRound must be positive, got %d", expectPerRound)
	}
	return &AggServer{
		expect:       expectPerRound,
		server:       fl.NewServer(initial),
		disseminated: initial.Clone(),
	}, nil
}

// SetObserver installs an observer of completed rounds (e.g. ∇Sim).
func (s *AggServer) SetObserver(obs fl.Observer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.observer = obs
}

// SetDedupWindow sizes the batch-dedup FIFO (default DefaultDedupWindow).
// Call before serving.
func (s *AggServer) SetDedupWindow(n int) {
	s.seen.SetWindow(n)
}

// SetDisseminated overrides the model served to clients for the current
// round (the active-attack hook).
func (s *AggServer) SetDisseminated(ps nn.ParamSet) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.disseminated = ps.Clone()
}

// Round returns the current round number (completed rounds).
func (s *AggServer) Round() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.round
}

// Global returns the current global model.
func (s *AggServer) Global() nn.ParamSet { return s.server.Global() }

// Handler returns the HTTP API.
func (s *AggServer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/update", s.handleUpdate)
	mux.HandleFunc("POST /v1/batch", s.handleBatch)
	mux.HandleFunc("GET /v1/model", s.handleModel)
	mux.HandleFunc("GET /v1/status", s.handleStatus)
	return mux
}

// absorb appends updates to the open round and closes as many rounds as
// they complete (a batch may span a round boundary — e.g. a restored
// proxy delivering a merged backlog). Round closure is unchanged:
// observe, aggregate, advance. It reports how many rounds closed so a
// batch handler can tell "rejected untouched" from "partially applied".
func (s *AggServer) absorb(updates []nn.ParamSet) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	// Validate structure against the global model BEFORE buffering
	// anything: a poison update must not enter pending, where it would
	// sink whole rounds of other senders' material when Aggregate fails.
	for i, u := range updates {
		if !s.disseminated.Compatible(u) {
			return 0, fmt.Errorf("update %d incompatible with the global model", i)
		}
	}
	closed := 0
	s.pending = append(s.pending, updates...)
	for len(s.pending) >= s.expect {
		batch := s.pending[:s.expect:s.expect]
		if s.observer != nil {
			s.observer.ObserveRound(fl.RoundRecord{
				Round:        s.round,
				Disseminated: s.disseminated,
				Updates:      batch,
			})
		}
		if err := s.server.Aggregate(batch); err != nil {
			// Drop only the failing round's material; later-arrived
			// updates already acknowledged to other senders stay
			// buffered for the rounds they belong to.
			s.pending = append([]nn.ParamSet(nil), s.pending[s.expect:]...)
			return closed, fmt.Errorf("aggregate: %w", err)
		}
		s.pending = s.pending[s.expect:]
		s.round++
		s.disseminated = s.server.Global()
		closed++
	}
	return closed, nil
}

func (s *AggServer) handleUpdate(w http.ResponseWriter, r *http.Request) {
	body, err := wire.ReadBody(r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	ps, err := nn.DecodeParamSet(body)
	if err != nil {
		http.Error(w, fmt.Sprintf("decode update: %v", err), http.StatusBadRequest)
		return
	}
	if _, err := s.absorb([]nn.ParamSet{ps}); err != nil {
		// An aggregate failure is structural (updates incompatible with
		// the global model) — retrying the same material cannot succeed,
		// so answer 422: proxies classify it permanent and quarantine the
		// entry instead of wedging their queue on it.
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	w.WriteHeader(http.StatusAccepted)
}

// handleBatch ingests a whole drained round in one POST. The body is a
// plaintext wire.BatchEnvelope; the X-Mixnn-Batch id makes redelivery
// idempotent: a batch the server already applied is acknowledged without
// reprocessing, so proxy retry after a lost acknowledgement cannot skew
// the round mean with duplicates.
func (s *AggServer) handleBatch(w http.ResponseWriter, r *http.Request) {
	batchID := r.Header.Get(wire.HeaderBatch)
	body, err := wire.ReadBody(r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	env, err := wire.DecodeBatchEnvelope(body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	// Decode every update before absorbing any, so a malformed item
	// cannot leave a round half-counted.
	updates := make([]nn.ParamSet, len(env.Updates))
	for i, raw := range env.Updates {
		// The envelope was read into a fresh buffer this handler owns, so
		// the zero-copy decode is safe; aggregation never mutates updates.
		if updates[i], err = nn.DecodeParamSetNoCopy(raw); err != nil {
			http.Error(w, fmt.Sprintf("decode batch update %d: %v", i, err), http.StatusBadRequest)
			return
		}
	}
	// Claim the id BEFORE absorbing: a retry overlapping a slow first
	// attempt must dedup, not re-apply — and an attempt still in flight
	// must not be acked as applied (the sender would consume its outbox
	// entry while this attempt can still fail).
	sender, senderSeq, hasSeq := batchSender(r.Header.Get)
	if batchID != "" {
		switch s.seen.Begin(batchID, sender, senderSeq, hasSeq) {
		case dedupApplied:
			w.WriteHeader(http.StatusOK)
			return
		case dedupInFlight:
			http.Error(w, "batch application in flight", http.StatusConflict)
			return
		case dedupStale:
			// Aged out of the window but provably superseded by the
			// sender's sequence watermark: re-absorbing would double-count
			// a round. The stale marker makes the sender quarantine
			// instead of retrying.
			w.Header().Set(wire.HeaderStale, "1")
			http.Error(w, "stale batch redelivery (sequence below the sender's applied watermark)", http.StatusConflict)
			return
		}
	}
	closed, err := s.absorb(updates)
	if err != nil {
		// Structural failure — permanent from the sender's point of view
		// (see handleUpdate); a 5xx here would make the proxy retry the
		// same poison batch forever. If the batch spanned round
		// boundaries and some rounds DID close before the failure, keep
		// its id recorded as applied: the entry will be quarantined
		// upstream, and should the operator ever re-inject the .bad
		// file, the dedup must stop the applied rounds from
		// double-counting.
		if batchID != "" {
			if closed == 0 {
				s.seen.Forget(batchID)
			} else {
				s.seen.Done(batchID, sender, senderSeq, hasSeq)
			}
		}
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	if batchID != "" {
		s.seen.Done(batchID, sender, senderSeq, hasSeq)
	}
	w.WriteHeader(http.StatusAccepted)
}

func (s *AggServer) handleModel(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	round := s.round
	model := s.disseminated.Clone()
	s.mu.Unlock()

	w.Header().Set("Content-Type", wire.ContentTypeUpdate)
	w.Header().Set(wire.HeaderRound, strconv.Itoa(round))
	if err := nn.WriteParamSet(w, model); err != nil {
		// Response already started; the client's decode will fail and it
		// will retry.
		return
	}
}

func (s *AggServer) handleStatus(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	st := wire.ServerStatus{Round: s.round, UpdatesInRound: len(s.pending), ExpectPerRound: s.expect}
	s.mu.Unlock()
	wire.WriteJSON(w, st)
}
