package proxy

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"mixnn/internal/enclave"
	"mixnn/internal/fl"
	"mixnn/internal/nn"
	"mixnn/internal/wire"
)

var (
	fixOnce sync.Once
	fixPlat *enclave.Platform
	fixEncl *enclave.Enclave
)

// fixtures shares one platform/enclave across tests (RSA keygen is slow).
func fixtures(t *testing.T) (*enclave.Platform, *enclave.Enclave) {
	t.Helper()
	fixOnce.Do(func() {
		var err error
		fixPlat, err = enclave.NewPlatform()
		if err != nil {
			t.Fatalf("NewPlatform: %v", err)
		}
		fixEncl, err = enclave.New(enclave.Config{}, fixPlat)
		if err != nil {
			t.Fatalf("New enclave: %v", err)
		}
	})
	return fixPlat, fixEncl
}

func testArch() nn.Arch { return nn.NewMLP("net", 4, []int{6}, 2) }

// flushTier waits until every listed tier has committed and delivered all
// drained rounds. Delivery is asynchronous (outbox + dispatcher), so
// tests flush before asserting on downstream state. Order matters for
// cascades: flush the front tier before the hop it feeds.
func flushTier(t *testing.T, proxies ...interface {
	Flush(context.Context) error
}) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for _, p := range proxies {
		if err := p.Flush(ctx); err != nil {
			t.Fatal(err)
		}
	}
}

// testDeployment stands up an aggregation server and a MixNN proxy over
// httptest and returns their URLs plus the AggServer for inspection.
func testDeployment(t *testing.T, expect, k int) (*AggServer, *Proxy, string, string) {
	t.Helper()
	platform, encl := fixtures(t)

	agg, err := NewAggServer(testArch().New(1).SnapshotParams(), expect)
	if err != nil {
		t.Fatal(err)
	}
	aggSrv := httptest.NewServer(agg.Handler())
	t.Cleanup(aggSrv.Close)

	px, err := New(Config{Upstream: aggSrv.URL, K: k, RoundSize: expect, Seed: 42}, encl, platform)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(px.Close)
	pxSrv := httptest.NewServer(px.Handler())
	t.Cleanup(pxSrv.Close)

	return agg, px, pxSrv.URL, aggSrv.URL
}

func TestEndToEndNetworkedRound(t *testing.T) {
	platform, encl := fixtures(t)
	const clients = 5
	agg, px, proxyURL, serverURL := testDeployment(t, clients, 3)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Each participant attests the proxy, fetches the model, perturbs it
	// (standing in for local training) and sends it encrypted.
	updates := make([]nn.ParamSet, clients)
	for i := 0; i < clients; i++ {
		p := NewParticipant(proxyURL, serverURL, nil)
		if err := p.Attest(ctx, platform.AttestationPublicKey(), encl.Measurement()); err != nil {
			t.Fatalf("participant %d attest: %v", i, err)
		}
		round, model, err := p.FetchModel(ctx)
		if err != nil {
			t.Fatalf("participant %d fetch: %v", i, err)
		}
		if round != 0 {
			t.Fatalf("initial round = %d, want 0", round)
		}
		u := model.Clone()
		u.Layers[0].Tensors[0].AddScalar(float64(i + 1))
		updates[i] = u
		if err := p.SendUpdate(ctx, u); err != nil {
			t.Fatalf("participant %d send: %v", i, err)
		}
	}

	// All updates accepted; once the delivery pipeline drains, the round
	// must have closed.
	flushTier(t, px)
	if agg.Round() != 1 {
		t.Fatalf("server round = %d, want 1", agg.Round())
	}
	want, err := nn.Average(updates)
	if err != nil {
		t.Fatal(err)
	}
	if !agg.Global().ApproxEqual(want, 1e-9) {
		t.Fatal("aggregated global != mean of sent updates (equivalence broken over the network)")
	}

	// A participant can observe the new round.
	p := NewParticipant(proxyURL, serverURL, nil)
	round, _, err := p.WaitForRound(ctx, 1, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if round != 1 {
		t.Fatalf("observed round = %d, want 1", round)
	}
}

func TestProxyStatusCounters(t *testing.T) {
	platform, encl := fixtures(t)
	_, px, proxyURL, serverURL := testDeployment(t, 3, 2)

	arch := testArch()
	ctx := context.Background()
	p := NewParticipant(proxyURL, serverURL, nil)
	if err := p.Attest(ctx, platform.AttestationPublicKey(), encl.Measurement()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := p.SendUpdate(ctx, arch.New(int64(i)).SnapshotParams()); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	flushTier(t, px)
	st := px.Status()
	if st.Received != 3 || st.Forwarded != 3 {
		t.Fatalf("received/forwarded = %d/%d, want 3/3", st.Received, st.Forwarded)
	}
	if st.Buffered != 0 {
		t.Fatalf("buffered after round close = %d, want 0", st.Buffered)
	}
	if st.UpdateBytes <= 0 {
		t.Fatal("update size not recorded")
	}
	if st.K != 2 || st.RoundSize != 3 {
		t.Fatalf("k/roundSize = %d/%d, want 2/3", st.K, st.RoundSize)
	}
}

func TestProxyRejectsGarbage(t *testing.T) {
	_, _, proxyURL, _ := testDeployment(t, 2, 2)
	resp, err := http.Post(proxyURL+"/v1/update", wire.ContentTypeUpdate, strings.NewReader("not a ciphertext"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
}

func TestProxyRejectsStructureChange(t *testing.T) {
	platform, encl := fixtures(t)
	_, _, proxyURL, serverURL := testDeployment(t, 4, 2)
	ctx := context.Background()
	p := NewParticipant(proxyURL, serverURL, nil)
	if err := p.Attest(ctx, platform.AttestationPublicKey(), encl.Measurement()); err != nil {
		t.Fatal(err)
	}
	if err := p.SendUpdate(ctx, testArch().New(1).SnapshotParams()); err != nil {
		t.Fatal(err)
	}
	// A structurally different model must be rejected by the mixer.
	other := nn.NewMLP("other", 3, []int{2}, 2).New(1).SnapshotParams()
	if err := p.SendUpdate(ctx, other); err == nil {
		t.Fatal("structurally different update accepted")
	}
}

// TestProxyUpstreamFailure pins the BEHAVIOUR CHANGE of the delivery
// pipeline: a downstream outage is no longer the participant's problem.
// The send is accepted, the drained round is committed to the outbox,
// and the dispatcher retries until the downstream recovers.
func TestProxyUpstreamFailure(t *testing.T) {
	platform, encl := fixtures(t)
	// Upstream that always fails.
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	t.Cleanup(bad.Close)

	px, err := New(Config{Upstream: bad.URL, K: 1, RoundSize: 1, Seed: 1}, encl, platform)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(px.Close)
	pxSrv := httptest.NewServer(px.Handler())
	t.Cleanup(pxSrv.Close)

	p := NewParticipant(pxSrv.URL, bad.URL, nil)
	if err := p.Attest(context.Background(), platform.AttestationPublicKey(), encl.Measurement()); err != nil {
		t.Fatal(err)
	}
	if err := p.SendUpdate(context.Background(), testArch().New(1).SnapshotParams()); err != nil {
		t.Fatalf("send with dead upstream must be accepted (delivery is async): %v", err)
	}
	st := px.ShardedProxy.Status()
	if st.OutboxPending != 1 || st.Forwarded != 0 {
		t.Fatalf("outbox_pending/forwarded = %d/%d, want 1/0 (round retained for retry)", st.OutboxPending, st.Forwarded)
	}
}

func TestAttestationEndpointRequiresNonce(t *testing.T) {
	_, _, proxyURL, _ := testDeployment(t, 2, 2)
	resp, err := http.Get(proxyURL + "/v1/attestation")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status without nonce = %d, want 400", resp.StatusCode)
	}
}

func TestParticipantAttestRejectsWrongMeasurement(t *testing.T) {
	platform, _ := fixtures(t)
	_, _, proxyURL, serverURL := testDeployment(t, 2, 2)
	p := NewParticipant(proxyURL, serverURL, nil)
	var wrong [32]byte
	wrong[0] = 0xFF
	if err := p.Attest(context.Background(), platform.AttestationPublicKey(), wrong); err == nil {
		t.Fatal("attestation with wrong measurement verified")
	}
}

func TestParticipantSendWithoutKey(t *testing.T) {
	p := NewParticipant("http://unused", "http://unused", nil)
	if err := p.SendUpdate(context.Background(), testArch().New(1).SnapshotParams()); err == nil {
		t.Fatal("send without pinned key succeeded")
	}
}

func TestAggServerRejectsBadBody(t *testing.T) {
	agg, err := NewAggServer(testArch().New(1).SnapshotParams(), 2)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(agg.Handler())
	t.Cleanup(srv.Close)
	resp, err := http.Post(srv.URL+"/v1/update", wire.ContentTypeUpdate, bytes.NewReader([]byte("junk")))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
}

func TestAggServerStatusEndpoint(t *testing.T) {
	agg, err := NewAggServer(testArch().New(1).SnapshotParams(), 3)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(agg.Handler())
	t.Cleanup(srv.Close)

	raw, err := nn.EncodeParamSet(testArch().New(2).SnapshotParams())
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/v1/update", wire.ContentTypeUpdate, bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first update status = %d, want 202", resp.StatusCode)
	}

	stResp, err := http.Get(srv.URL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	defer stResp.Body.Close()
	var st wire.ServerStatus
	if err := wire.DecodeJSON(stResp.Body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Round != 0 || st.UpdatesInRound != 1 || st.ExpectPerRound != 3 {
		t.Fatalf("status = %+v", st)
	}
}

// roundObserver records what the adversarial server sees.
type roundObserver struct {
	mu   sync.Mutex
	recs []fl.RoundRecord
}

func (o *roundObserver) ObserveRound(rec fl.RoundRecord) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.recs = append(o.recs, rec)
}

func TestAggServerObserverSeesMixedUpdates(t *testing.T) {
	platform, encl := fixtures(t)
	agg, px, proxyURL, serverURL := testDeployment(t, 3, 2)
	obs := &roundObserver{}
	agg.SetObserver(obs)

	ctx := context.Background()
	p := NewParticipant(proxyURL, serverURL, nil)
	if err := p.Attest(ctx, platform.AttestationPublicKey(), encl.Measurement()); err != nil {
		t.Fatal(err)
	}
	arch := testArch()
	for i := 0; i < 3; i++ {
		if err := p.SendUpdate(ctx, arch.New(int64(10+i)).SnapshotParams()); err != nil {
			t.Fatal(err)
		}
	}
	flushTier(t, px)
	obs.mu.Lock()
	defer obs.mu.Unlock()
	if len(obs.recs) != 1 {
		t.Fatalf("observer saw %d rounds, want 1", len(obs.recs))
	}
	if len(obs.recs[0].Updates) != 3 {
		t.Fatalf("observer saw %d updates, want 3", len(obs.recs[0].Updates))
	}
}

func TestNewProxyValidation(t *testing.T) {
	platform, encl := fixtures(t)
	tests := []struct {
		name string
		cfg  Config
	}{
		{"no upstream", Config{RoundSize: 2}},
		{"bad round size", Config{Upstream: "http://x", RoundSize: 0}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := New(tt.cfg, encl, platform); err == nil {
				t.Fatal("no error")
			}
		})
	}
	if _, err := New(Config{Upstream: "http://x", RoundSize: 2}, nil, nil); err == nil {
		t.Fatal("nil enclave accepted")
	}
}
