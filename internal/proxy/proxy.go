package proxy

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"mixnn/internal/core"
	"mixnn/internal/enclave"
	"mixnn/internal/nn"
	"mixnn/internal/wire"
)

// Config parameterises a MixNN proxy instance.
type Config struct {
	// Upstream is the aggregation server base URL.
	Upstream string
	// K is the per-layer list capacity of the stream mixer (§4.3).
	K int
	// RoundSize is the number of participants per round (C); after
	// forwarding material for RoundSize updates the mixer is drained so
	// the round closes with exact aggregation equivalence.
	RoundSize int
	// Seed drives the mixing randomness.
	Seed int64
	// HTTPClient overrides the upstream client (tests); nil = default.
	HTTPClient *http.Client
}

// timing accumulates a mean over observations.
type timing struct {
	total time.Duration
	n     int
}

func (t *timing) add(d time.Duration) { t.total += d; t.n++ }

// meanMillisExact returns the mean in milliseconds with sub-ms resolution.
func (t *timing) meanMillisExact() float64 {
	if t.n == 0 {
		return 0
	}
	return t.total.Seconds() * 1000 / float64(t.n)
}

// Proxy is the MixNN proxy: it terminates encrypted participant traffic
// inside the enclave, mixes layers with a k-buffer stream mixer, and
// forwards mixed updates upstream. It implements the §6.5 instrumentation
// (per-stage latency, enclave memory, update size).
type Proxy struct {
	cfg      Config
	enclave  *enclave.Enclave
	platform *enclave.Platform
	httpc    *http.Client

	mu          sync.Mutex
	mixer       *core.StreamMixer
	rng         *rand.Rand
	inRound     int // updates received in the current round
	forwarded   int
	received    int
	updateBytes int
	decryptT    timing
	storeT      timing
	mixT        timing
	processT    timing
}

// New builds a proxy hosted in the given enclave on the given platform.
func New(cfg Config, encl *enclave.Enclave, platform *enclave.Platform) (*Proxy, error) {
	if cfg.Upstream == "" {
		return nil, fmt.Errorf("proxy: Config.Upstream is required")
	}
	if cfg.RoundSize <= 0 {
		return nil, fmt.Errorf("proxy: Config.RoundSize must be positive, got %d", cfg.RoundSize)
	}
	if cfg.K <= 0 || cfg.K > cfg.RoundSize {
		cfg.K = cfg.RoundSize
	}
	if encl == nil || platform == nil {
		return nil, fmt.Errorf("proxy: enclave and platform are required")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	mixer, err := core.NewStreamMixer(cfg.K, rng)
	if err != nil {
		return nil, err
	}
	httpc := cfg.HTTPClient
	if httpc == nil {
		httpc = &http.Client{Timeout: 60 * time.Second}
	}
	return &Proxy{cfg: cfg, enclave: encl, platform: platform, httpc: httpc, mixer: mixer, rng: rng}, nil
}

// Handler returns the proxy's HTTP API.
func (p *Proxy) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/update", p.handleUpdate)
	mux.HandleFunc("GET /v1/attestation", p.handleAttestation)
	mux.HandleFunc("GET /v1/status", p.handleStatus)
	return mux
}

// handleUpdate processes one encrypted participant update: decrypt inside
// the enclave, split/store by layer, mix, and forward any emitted updates.
func (p *Proxy) handleUpdate(w http.ResponseWriter, r *http.Request) {
	body, err := wire.ReadBody(r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	var emitted []nn.ParamSet
	start := time.Now()
	procErr := p.enclave.Process(func() error {
		var err error
		emitted, err = p.ingest(body)
		return err
	})
	p.mu.Lock()
	p.processT.add(time.Since(start))
	p.mu.Unlock()
	if procErr != nil {
		http.Error(w, procErr.Error(), http.StatusBadRequest)
		return
	}

	for _, ps := range emitted {
		if err := p.forward(r.Context(), ps); err != nil {
			http.Error(w, fmt.Sprintf("forward upstream: %v", err), http.StatusBadGateway)
			return
		}
	}
	w.WriteHeader(http.StatusAccepted)
}

// ingest runs inside the enclave's constant-time gate: decrypt, decode,
// account memory, mix, and close the round when complete.
func (p *Proxy) ingest(ciphertext []byte) ([]nn.ParamSet, error) {
	t0 := time.Now()
	plain, err := p.enclave.Decrypt(ciphertext)
	decryptDur := time.Since(t0)
	if err != nil {
		return nil, fmt.Errorf("proxy: decrypt: %w", err)
	}

	t1 := time.Now()
	ps, err := nn.DecodeParamSet(plain)
	if err != nil {
		return nil, fmt.Errorf("proxy: decode: %w", err)
	}

	p.mu.Lock()
	defer p.mu.Unlock()
	p.decryptT.add(decryptDur)
	p.received++
	p.updateBytes = len(plain)
	p.enclave.Alloc(len(plain))

	var emitted []nn.ParamSet
	out, err := p.mixer.Add(ps)
	storeDur := time.Since(t1)
	p.storeT.add(storeDur)
	if err != nil {
		p.enclave.Free(len(plain))
		return nil, fmt.Errorf("proxy: mix: %w", err)
	}
	t2 := time.Now()
	if out != nil {
		emitted = append(emitted, *out)
		p.enclave.Free(len(plain)) // one update's worth leaves the buffer
	}
	p.inRound++
	if p.inRound >= p.cfg.RoundSize {
		drained := p.mixer.Drain()
		emitted = append(emitted, drained...)
		p.enclave.Free(len(plain) * len(drained))
		p.inRound = 0
	}
	p.mixT.add(time.Since(t2))
	return emitted, nil
}

// forward posts one mixed update to the aggregation server.
func (p *Proxy) forward(ctx context.Context, ps nn.ParamSet) error {
	raw, err := nn.EncodeParamSet(ps)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, p.cfg.Upstream+"/v1/update", bytes.NewReader(raw))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", wire.ContentTypeUpdate)
	resp, err := p.httpc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("proxy: upstream returned %s", resp.Status)
	}
	p.mu.Lock()
	p.forwarded++
	p.mu.Unlock()
	return nil
}

// serveAttestation serves a signed enclave report bound to the caller's
// nonce so participants (and upstream cascade proxies) can verify an
// enclave before trusting its key. Shared by Proxy and ShardedProxy.
func serveAttestation(w http.ResponseWriter, r *http.Request, encl *enclave.Enclave, platform *enclave.Platform) {
	nonceHex := r.URL.Query().Get("nonce")
	nonce, err := hex.DecodeString(nonceHex)
	if err != nil || len(nonce) == 0 {
		http.Error(w, "missing or invalid nonce", http.StatusBadRequest)
		return
	}
	rep, err := platform.Attest(encl, nonce)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	wire.WriteJSON(w, wire.AttestationResponse{
		MeasurementHex: hex.EncodeToString(rep.Measurement[:]),
		NonceHex:       hex.EncodeToString(rep.Nonce),
		PubKeyDER:      rep.PubKeyDER,
		Signature:      rep.Signature,
	})
}

func (p *Proxy) handleAttestation(w http.ResponseWriter, r *http.Request) {
	serveAttestation(w, r, p.enclave, p.platform)
}

func (p *Proxy) handleStatus(w http.ResponseWriter, r *http.Request) {
	wire.WriteJSON(w, p.Status())
}

// SealState exports the mixer's buffered layers, sealed under the
// enclave's identity-bound key, so a proxy restart mid-round loses no
// participant material and leaks none to the untrusted host (§2.5 sealing
// applied to the §4.3 lists).
func (p *Proxy) SealState() ([]byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	raw, err := p.mixer.MarshalBinary()
	if err != nil {
		return nil, fmt.Errorf("proxy: export mixer state: %w", err)
	}
	var trailer [4]byte
	binary.LittleEndian.PutUint32(trailer[:], uint32(p.inRound))
	blob, err := p.enclave.Seal(append(raw, trailer[:]...))
	if err != nil {
		return nil, fmt.Errorf("proxy: seal mixer state: %w", err)
	}
	return blob, nil
}

// RestoreState loads a SealState blob into a freshly-constructed proxy
// (same enclave identity and platform, same K).
func (p *Proxy) RestoreState(blob []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.received != 0 {
		return fmt.Errorf("proxy: RestoreState on a proxy that already processed updates")
	}
	raw, err := p.enclave.Unseal(blob)
	if err != nil {
		return fmt.Errorf("proxy: unseal mixer state: %w", err)
	}
	if len(raw) < 4 {
		return fmt.Errorf("proxy: sealed state too short")
	}
	mixer, err := core.NewStreamMixer(p.cfg.K, p.rng)
	if err != nil {
		return err
	}
	if err := mixer.UnmarshalBinary(raw[:len(raw)-4]); err != nil {
		return fmt.Errorf("proxy: restore mixer state: %w", err)
	}
	p.mixer = mixer
	p.inRound = int(binary.LittleEndian.Uint32(raw[len(raw)-4:]))
	p.received = mixer.Received()
	return nil
}

// Status snapshots the §6.5 system-performance counters.
func (p *Proxy) Status() wire.ProxyStatus {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := p.enclave.Stats()
	return wire.ProxyStatus{
		Buffered:      p.mixer.Buffered(),
		Received:      p.received,
		Forwarded:     p.forwarded,
		RoundSize:     p.cfg.RoundSize,
		K:             p.mixer.K(),
		UpdateBytes:   p.updateBytes,
		EnclaveUsed:   st.MemoryUsedBytes,
		EnclavePeak:   st.MemoryPeakBytes,
		EnclavePaging: st.PageEvents,
		DecryptMillis: p.decryptT.meanMillisExact(),
		StoreMillis:   p.storeT.meanMillisExact(),
		MixMillis:     p.mixT.meanMillisExact(),
		ProcessMillis: p.processT.meanMillisExact(),
	}
}
