package proxy

import (
	"fmt"
	"net/http"
	"time"

	"mixnn/internal/enclave"
	"mixnn/internal/wire"
)

// Config parameterises the paper-shaped single-mixer MixNN proxy. It is
// the Shards=1 slice of ShardedConfig, kept so callers reproducing the
// paper's deployment don't carry cascade knobs they never set.
type Config struct {
	// Upstream is the aggregation server base URL.
	Upstream string
	// K is the per-layer list capacity of the stream mixer (§4.3).
	K int
	// RoundSize is the number of participants per round (C); after
	// forwarding material for RoundSize updates the mixer is drained so
	// the round closes with exact aggregation equivalence.
	RoundSize int
	// Seed drives the mixing randomness.
	Seed int64
	// HTTPClient overrides the upstream client (tests); nil = default.
	HTTPClient *http.Client
}

// timing accumulates a mean over observations.
type timing struct {
	total time.Duration
	n     int
}

func (t *timing) add(d time.Duration) { t.total += d; t.n++ }

// meanMillisExact returns the mean in milliseconds with sub-ms resolution.
func (t *timing) meanMillisExact() float64 {
	if t.n == 0 {
		return 0
	}
	return t.total.Seconds() * 1000 / float64(t.n)
}

// Proxy is the MixNN proxy of the paper: it terminates encrypted
// participant traffic inside the enclave, mixes layers with a k-buffer
// stream mixer, and forwards mixed updates upstream with the §6.5
// instrumentation. It is a thin wrapper over a Shards=1 ShardedProxy, so
// round closure, asynchronous outbox delivery, status, seal/restore and
// ingress validation — including the rejection of forged X-Mixnn-Hop
// headers — are the one code path the sharded tier implements. Callers
// own the lifecycle: Close stops the delivery dispatcher.
type Proxy struct {
	*ShardedProxy
}

// New builds a single-shard proxy hosted in the given enclave on the
// given platform.
func New(cfg Config, encl *enclave.Enclave, platform *enclave.Platform) (*Proxy, error) {
	if cfg.Upstream == "" {
		return nil, fmt.Errorf("proxy: Config.Upstream is required")
	}
	sp, err := NewSharded(ShardedConfig{
		Upstream:   cfg.Upstream,
		Shards:     1,
		K:          cfg.K,
		RoundSize:  cfg.RoundSize,
		Seed:       cfg.Seed,
		HTTPClient: cfg.HTTPClient,
	}, encl, platform)
	if err != nil {
		return nil, err
	}
	return &Proxy{ShardedProxy: sp}, nil
}

// Status projects the tier status onto the single-proxy §6.5 view:
// Buffered and K describe the one mixer, Received counts every ingested
// update regardless of ingress endpoint (the pre-consolidation proxy had
// only one).
func (p *Proxy) Status() wire.ProxyStatus {
	st := p.ShardedProxy.Status()
	var buffered, k int
	for _, sh := range st.Shards {
		buffered += sh.Buffered
		k = sh.K
	}
	return wire.ProxyStatus{
		Buffered:      buffered,
		Received:      st.Received + st.HopReceived,
		Forwarded:     st.Forwarded,
		RoundSize:     st.RoundSize,
		K:             k,
		UpdateBytes:   st.UpdateBytes,
		EnclaveUsed:   st.EnclaveUsed,
		EnclavePeak:   st.EnclavePeak,
		EnclavePaging: st.EnclavePaging,
		DecryptMillis: st.DecryptMillis,
		StoreMillis:   st.StoreMillis,
		MixMillis:     st.MixMillis,
		ProcessMillis: st.ProcessMillis,
	}
}
