package proxy

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"mixnn/internal/enclave"
	"mixnn/internal/nn"
	"mixnn/internal/wire"
)

// shardedDeployment stands up an aggregation server fronted by a sharded
// proxy tier over httptest.
func shardedDeployment(t *testing.T, expect, k, shards int) (*AggServer, *ShardedProxy, string, string) {
	t.Helper()
	platform, encl := fixtures(t)

	agg, err := NewAggServer(testArch().New(1).SnapshotParams(), expect)
	if err != nil {
		t.Fatal(err)
	}
	aggSrv := httptest.NewServer(agg.Handler())
	t.Cleanup(aggSrv.Close)

	px, err := NewSharded(ShardedConfig{
		Upstream: aggSrv.URL, K: k, RoundSize: expect, Shards: shards, Seed: 42,
	}, encl, platform)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(px.Close)
	pxSrv := httptest.NewServer(px.Handler())
	t.Cleanup(pxSrv.Close)

	return agg, px, pxSrv.URL, aggSrv.URL
}

// sendRaw encrypts one update for the enclave and posts it directly,
// optionally tagging the participant id (the Participant client does not
// set HeaderClient).
func sendRaw(t *testing.T, encl *enclave.Enclave, proxyURL, clientID string, ps nn.ParamSet) *http.Response {
	t.Helper()
	raw, err := nn.EncodeParamSet(ps)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := enclave.Encrypt(encl.PublicKey(), raw)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, proxyURL+"/v1/update", bytes.NewReader(ct))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", wire.ContentTypeUpdate)
	if clientID != "" {
		req.Header.Set(wire.HeaderClient, clientID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestShardedProxyRoundClosure(t *testing.T) {
	platform, encl := fixtures(t)
	const clients, shards = 6, 2
	agg, px, proxyURL, serverURL := shardedDeployment(t, clients, 2, shards)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	updates := make([]nn.ParamSet, clients)
	for i := 0; i < clients; i++ {
		p := NewParticipant(proxyURL, serverURL, nil)
		if err := p.Attest(ctx, platform.AttestationPublicKey(), encl.Measurement()); err != nil {
			t.Fatalf("participant %d attest: %v", i, err)
		}
		_, model, err := p.FetchModel(ctx)
		if err != nil {
			t.Fatal(err)
		}
		u := model.Clone()
		u.Layers[0].Tensors[0].AddScalar(float64(i + 1))
		updates[i] = u
		if err := p.SendUpdate(ctx, u); err != nil {
			t.Fatalf("participant %d send: %v", i, err)
		}
	}

	flushTier(t, px)
	if agg.Round() != 1 {
		t.Fatalf("server round = %d, want 1", agg.Round())
	}
	want, err := nn.Average(updates)
	if err != nil {
		t.Fatal(err)
	}
	if !agg.Global().ApproxEqual(want, 1e-9) {
		t.Fatal("sharded mixing broke aggregation equivalence over the network")
	}

	st := px.Status()
	if len(st.Shards) != shards {
		t.Fatalf("status reports %d shards, want %d", len(st.Shards), shards)
	}
	if st.Received != clients || st.Forwarded != clients || st.Rounds != 1 || st.InRound != 0 {
		t.Fatalf("status = %+v", st)
	}
	if st.Epoch != 1 || st.OutboxPending != 0 || st.BatchesSent != 1 {
		t.Fatalf("delivery status epoch/pending/batches = %d/%d/%d, want 1/0/1", st.Epoch, st.OutboxPending, st.BatchesSent)
	}
	// Round-robin routing splits 6 updates evenly over 2 shards (the
	// per-shard counters survive the epoch swap at round close), and the
	// close drains both buffers.
	for _, sh := range st.Shards {
		if sh.Received != clients/shards {
			t.Fatalf("shard %d received %d, want %d", sh.Shard, sh.Received, clients/shards)
		}
		if sh.Buffered != 0 {
			t.Fatalf("shard %d still buffers %d after round close", sh.Shard, sh.Buffered)
		}
		if sh.K != 2 {
			t.Fatalf("shard %d k = %d, want 2", sh.Shard, sh.K)
		}
	}
}

func TestShardedProxyStickyClientRouting(t *testing.T) {
	_, encl := fixtures(t)
	_, px, proxyURL, _ := shardedDeployment(t, 8, 2, 4)

	// The same client id must always land on the same shard.
	ps := testArch().New(2).SnapshotParams()
	var shard string
	for i := 0; i < 3; i++ {
		resp := sendRaw(t, encl, proxyURL, "client-42", ps)
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("send %d: %s", i, resp.Status)
		}
		got := resp.Header.Get(wire.HeaderShard)
		if got == "" {
			t.Fatal("no shard header on response")
		}
		if shard == "" {
			shard = got
		} else if got != shard {
			t.Fatalf("client-42 routed to shard %s then %s", shard, got)
		}
	}
	if px.Status().Received != 3 {
		t.Fatalf("received = %d, want 3", px.Status().Received)
	}
}

func TestShardedProxyHopLimit(t *testing.T) {
	_, encl := fixtures(t)
	_, px, proxyURL, _ := shardedDeployment(t, 4, 2, 2)

	raw, err := nn.EncodeParamSet(testArch().New(3).SnapshotParams())
	if err != nil {
		t.Fatal(err)
	}
	ct, err := enclave.Encrypt(encl.PublicKey(), raw)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, proxyURL+"/v1/hop", bytes.NewReader(ct))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(wire.HeaderHop, strconv.Itoa(DefaultMaxHops+1))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusLoopDetected {
		t.Fatalf("over-deep hop returned %s, want 508", resp.Status)
	}
	if got := px.Status().HopReceived; got != 0 {
		t.Fatalf("rejected hop still counted: %d", got)
	}

	// A malformed hop header is a plain bad request.
	req, err = http.NewRequest(http.MethodPost, proxyURL+"/v1/hop", bytes.NewReader(ct))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(wire.HeaderHop, "-3")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad hop header returned %s, want 400", resp.Status)
	}

	// Participants must not be able to forge cascade depth: any
	// X-Mixnn-Hop on /v1/update is rejected outright.
	req, err = http.NewRequest(http.MethodPost, proxyURL+"/v1/update", bytes.NewReader(ct))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(wire.HeaderHop, "2")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("forged hop header on /v1/update returned %s, want 400", resp.Status)
	}
}

// TestShardedProxyConcurrentRequests is the shard router's race test: a
// full round delivered from concurrent goroutines must still close with
// exact aggregation equivalence.
func TestShardedProxyConcurrentRequests(t *testing.T) {
	_, encl := fixtures(t)
	const clients, shards = 32, 4
	agg, px, proxyURL, _ := shardedDeployment(t, clients, 4, shards)

	base := testArch().New(1).SnapshotParams()
	updates := make([]nn.ParamSet, clients)
	for i := range updates {
		u := base.Clone()
		u.Layers[0].Tensors[0].AddScalar(float64(i + 1))
		updates[i] = u
	}

	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp := sendRaw(t, encl, proxyURL, fmt.Sprintf("client-%d", i), updates[i])
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusAccepted {
				errs <- fmt.Errorf("participant %d: %s", i, resp.Status)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	flushTier(t, px)
	if agg.Round() != 1 {
		t.Fatalf("server round = %d, want 1", agg.Round())
	}
	want, err := nn.Average(updates)
	if err != nil {
		t.Fatal(err)
	}
	if !agg.Global().ApproxEqual(want, 1e-9) {
		t.Fatal("concurrent sharded round broke aggregation equivalence")
	}
	st := px.Status()
	if st.Received != clients || st.Forwarded != clients {
		t.Fatalf("received %d forwarded %d, want %d each", st.Received, st.Forwarded, clients)
	}
}

// TestCascadeHopWatermark: forwarded depth must be one past the highest
// incoming depth of the round, not the triggering request's depth —
// otherwise a proxy cycle would reset the counter each round and the
// MaxHops guard would never fire. With batched forwarding the whole
// round arrives as ONE /v1/batch POST stamped with the watermark.
func TestCascadeHopWatermark(t *testing.T) {
	platform, encl := fixtures(t)

	type batchReq struct {
		hop, batchID string
		body         []byte
	}
	var (
		mu      sync.Mutex
		batches []batchReq
	)
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/batch" {
			t.Errorf("unexpected downstream path %s", r.URL.Path)
			http.Error(w, "wrong path", http.StatusNotFound)
			return
		}
		body, err := wire.ReadBody(r.Body)
		if err != nil {
			t.Error(err)
		}
		mu.Lock()
		batches = append(batches, batchReq{
			hop: r.Header.Get(wire.HeaderHop), batchID: r.Header.Get(wire.HeaderBatch), body: body,
		})
		mu.Unlock()
		w.WriteHeader(http.StatusAccepted)
	}))
	t.Cleanup(stub.Close)

	px, err := NewSharded(ShardedConfig{
		NextHop: stub.URL, NextHopKey: enclave.PinnedHop(encl.PublicKey(), encl.Measurement()),
		K: 2, RoundSize: 4, Shards: 2, Seed: 42,
	}, encl, platform)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(px.Close)
	pxSrv := httptest.NewServer(px.Handler())
	t.Cleanup(pxSrv.Close)

	raw, err := nn.EncodeParamSet(testArch().New(4).SnapshotParams())
	if err != nil {
		t.Fatal(err)
	}
	ct, err := enclave.Encrypt(encl.PublicKey(), raw)
	if err != nil {
		t.Fatal(err)
	}
	// Three participant updates (depth 0) and one cascade update at
	// depth 2 close the round; the delivered batch must be stamped 3.
	for i := 0; i < 3; i++ {
		resp := sendRaw(t, encl, pxSrv.URL, "", testArch().New(4).SnapshotParams())
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("participant update %d: %s", i, resp.Status)
		}
	}
	req, err := http.NewRequest(http.MethodPost, pxSrv.URL+"/v1/hop", bytes.NewReader(ct))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(wire.HeaderHop, "2")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("hop update: %s", resp.Status)
	}
	flushTier(t, px)

	mu.Lock()
	defer mu.Unlock()
	if len(batches) != 1 {
		t.Fatalf("next hop saw %d batch POSTs, want 1 (the whole round coalesced)", len(batches))
	}
	got := batches[0]
	if got.hop != "3" {
		t.Fatalf("batch stamped hop %q, want 3 (watermark 2 + 1)", got.hop)
	}
	if got.batchID == "" {
		t.Fatal("batch POST carries no idempotency id")
	}
	// The body is the round's BatchEnvelope wrapped for the hop enclave.
	plain, err := encl.Decrypt(got.body)
	if err != nil {
		t.Fatalf("batch body not wrapped for the hop enclave: %v", err)
	}
	env, err := wire.DecodeBatchEnvelope(plain)
	if err != nil {
		t.Fatal(err)
	}
	if len(env.Updates) != 4 {
		t.Fatalf("batch carries %d updates, want the whole round of 4", len(env.Updates))
	}
	for i, u := range env.Updates {
		if _, err := nn.DecodeParamSet(u); err != nil {
			t.Fatalf("batch update %d does not decode: %v", i, err)
		}
	}
}

func TestNewShardedValidation(t *testing.T) {
	platform, encl := fixtures(t)
	cases := []ShardedConfig{
		{},                     // no upstream, no next hop
		{Upstream: "http://x"}, // no round size
		{Upstream: "http://x", RoundSize: 2, Shards: 3}, // shards > round size
		{NextHop: "http://next", RoundSize: 4},          // next hop without key
	}
	for i, cfg := range cases {
		if _, err := NewSharded(cfg, encl, platform); err == nil {
			t.Fatalf("case %d: invalid config %+v accepted", i, cfg)
		}
	}
	if _, err := NewSharded(ShardedConfig{Upstream: "http://x", RoundSize: 4}, nil, nil); err == nil {
		t.Fatal("nil enclave accepted")
	}
}
