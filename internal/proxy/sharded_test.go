package proxy

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"mixnn/internal/enclave"
	"mixnn/internal/nn"
	"mixnn/internal/wire"
)

// shardedDeployment stands up an aggregation server fronted by a sharded
// proxy tier over httptest.
func shardedDeployment(t *testing.T, expect, k, shards int) (*AggServer, *ShardedProxy, string, string) {
	t.Helper()
	platform, encl := fixtures(t)

	agg, err := NewAggServer(testArch().New(1).SnapshotParams(), expect)
	if err != nil {
		t.Fatal(err)
	}
	aggSrv := httptest.NewServer(agg.Handler())
	t.Cleanup(aggSrv.Close)

	px, err := NewSharded(ShardedConfig{
		Upstream: aggSrv.URL, K: k, RoundSize: expect, Shards: shards, Seed: 42,
	}, encl, platform)
	if err != nil {
		t.Fatal(err)
	}
	pxSrv := httptest.NewServer(px.Handler())
	t.Cleanup(pxSrv.Close)

	return agg, px, pxSrv.URL, aggSrv.URL
}

// sendRaw encrypts one update for the enclave and posts it directly,
// optionally tagging the participant id (the Participant client does not
// set HeaderClient).
func sendRaw(t *testing.T, encl *enclave.Enclave, proxyURL, clientID string, ps nn.ParamSet) *http.Response {
	t.Helper()
	raw, err := nn.EncodeParamSet(ps)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := enclave.Encrypt(encl.PublicKey(), raw)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, proxyURL+"/v1/update", bytes.NewReader(ct))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", wire.ContentTypeUpdate)
	if clientID != "" {
		req.Header.Set(wire.HeaderClient, clientID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestShardedProxyRoundClosure(t *testing.T) {
	platform, encl := fixtures(t)
	const clients, shards = 6, 2
	agg, px, proxyURL, serverURL := shardedDeployment(t, clients, 2, shards)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	updates := make([]nn.ParamSet, clients)
	for i := 0; i < clients; i++ {
		p := NewParticipant(proxyURL, serverURL, nil)
		if err := p.Attest(ctx, platform.AttestationPublicKey(), encl.Measurement()); err != nil {
			t.Fatalf("participant %d attest: %v", i, err)
		}
		_, model, err := p.FetchModel(ctx)
		if err != nil {
			t.Fatal(err)
		}
		u := model.Clone()
		u.Layers[0].Tensors[0].AddScalar(float64(i + 1))
		updates[i] = u
		if err := p.SendUpdate(ctx, u); err != nil {
			t.Fatalf("participant %d send: %v", i, err)
		}
	}

	if agg.Round() != 1 {
		t.Fatalf("server round = %d, want 1", agg.Round())
	}
	want, err := nn.Average(updates)
	if err != nil {
		t.Fatal(err)
	}
	if !agg.Global().ApproxEqual(want, 1e-9) {
		t.Fatal("sharded mixing broke aggregation equivalence over the network")
	}

	st := px.Status()
	if len(st.Shards) != shards {
		t.Fatalf("status reports %d shards, want %d", len(st.Shards), shards)
	}
	if st.Received != clients || st.Forwarded != clients || st.Rounds != 1 || st.InRound != 0 {
		t.Fatalf("status = %+v", st)
	}
	// Round-robin routing splits 6 updates evenly over 2 shards, and round
	// close drains both buffers.
	for _, sh := range st.Shards {
		if sh.Received != clients/shards {
			t.Fatalf("shard %d received %d, want %d", sh.Shard, sh.Received, clients/shards)
		}
		if sh.Buffered != 0 {
			t.Fatalf("shard %d still buffers %d after round close", sh.Shard, sh.Buffered)
		}
		if sh.K != 2 {
			t.Fatalf("shard %d k = %d, want 2", sh.Shard, sh.K)
		}
	}
}

func TestShardedProxyStickyClientRouting(t *testing.T) {
	_, encl := fixtures(t)
	_, px, proxyURL, _ := shardedDeployment(t, 8, 2, 4)

	// The same client id must always land on the same shard.
	ps := testArch().New(2).SnapshotParams()
	var shard string
	for i := 0; i < 3; i++ {
		resp := sendRaw(t, encl, proxyURL, "client-42", ps)
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("send %d: %s", i, resp.Status)
		}
		got := resp.Header.Get(wire.HeaderShard)
		if got == "" {
			t.Fatal("no shard header on response")
		}
		if shard == "" {
			shard = got
		} else if got != shard {
			t.Fatalf("client-42 routed to shard %s then %s", shard, got)
		}
	}
	if px.Status().Received != 3 {
		t.Fatalf("received = %d, want 3", px.Status().Received)
	}
}

func TestShardedProxyHopLimit(t *testing.T) {
	_, encl := fixtures(t)
	_, px, proxyURL, _ := shardedDeployment(t, 4, 2, 2)

	raw, err := nn.EncodeParamSet(testArch().New(3).SnapshotParams())
	if err != nil {
		t.Fatal(err)
	}
	ct, err := enclave.Encrypt(encl.PublicKey(), raw)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, proxyURL+"/v1/hop", bytes.NewReader(ct))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(wire.HeaderHop, strconv.Itoa(DefaultMaxHops+1))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusLoopDetected {
		t.Fatalf("over-deep hop returned %s, want 508", resp.Status)
	}
	if got := px.Status().HopReceived; got != 0 {
		t.Fatalf("rejected hop still counted: %d", got)
	}

	// A malformed hop header is a plain bad request.
	req, err = http.NewRequest(http.MethodPost, proxyURL+"/v1/hop", bytes.NewReader(ct))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(wire.HeaderHop, "-3")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad hop header returned %s, want 400", resp.Status)
	}

	// Participants must not be able to forge cascade depth: any
	// X-Mixnn-Hop on /v1/update is rejected outright.
	req, err = http.NewRequest(http.MethodPost, proxyURL+"/v1/update", bytes.NewReader(ct))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(wire.HeaderHop, "2")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("forged hop header on /v1/update returned %s, want 400", resp.Status)
	}
}

// TestShardedProxyConcurrentRequests is the shard router's race test: a
// full round delivered from concurrent goroutines must still close with
// exact aggregation equivalence.
func TestShardedProxyConcurrentRequests(t *testing.T) {
	_, encl := fixtures(t)
	const clients, shards = 32, 4
	agg, px, proxyURL, _ := shardedDeployment(t, clients, 4, shards)

	base := testArch().New(1).SnapshotParams()
	updates := make([]nn.ParamSet, clients)
	for i := range updates {
		u := base.Clone()
		u.Layers[0].Tensors[0].AddScalar(float64(i + 1))
		updates[i] = u
	}

	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp := sendRaw(t, encl, proxyURL, fmt.Sprintf("client-%d", i), updates[i])
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusAccepted {
				errs <- fmt.Errorf("participant %d: %s", i, resp.Status)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	if agg.Round() != 1 {
		t.Fatalf("server round = %d, want 1", agg.Round())
	}
	want, err := nn.Average(updates)
	if err != nil {
		t.Fatal(err)
	}
	if !agg.Global().ApproxEqual(want, 1e-9) {
		t.Fatal("concurrent sharded round broke aggregation equivalence")
	}
	st := px.Status()
	if st.Received != clients || st.Forwarded != clients {
		t.Fatalf("received %d forwarded %d, want %d each", st.Received, st.Forwarded, clients)
	}
}

// TestCascadeHopWatermark: forwarded depth must be one past the highest
// incoming depth of the round, not the triggering request's depth —
// otherwise a proxy cycle would reset the counter each round and the
// MaxHops guard would never fire.
func TestCascadeHopWatermark(t *testing.T) {
	platform, encl := fixtures(t)

	var (
		mu   sync.Mutex
		hops []string
	)
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		hops = append(hops, r.Header.Get(wire.HeaderHop))
		mu.Unlock()
		w.WriteHeader(http.StatusAccepted)
	}))
	t.Cleanup(stub.Close)

	px, err := NewSharded(ShardedConfig{
		NextHop: stub.URL, NextHopKey: enclave.PinnedHop(encl.PublicKey(), encl.Measurement()),
		K: 2, RoundSize: 4, Shards: 2, Seed: 42,
	}, encl, platform)
	if err != nil {
		t.Fatal(err)
	}
	pxSrv := httptest.NewServer(px.Handler())
	t.Cleanup(pxSrv.Close)

	raw, err := nn.EncodeParamSet(testArch().New(4).SnapshotParams())
	if err != nil {
		t.Fatal(err)
	}
	ct, err := enclave.Encrypt(encl.PublicKey(), raw)
	if err != nil {
		t.Fatal(err)
	}
	// Three participant updates (depth 0) and one cascade update at
	// depth 2 close the round; every forward must be stamped 3.
	for i := 0; i < 3; i++ {
		resp := sendRaw(t, encl, pxSrv.URL, "", testArch().New(4).SnapshotParams())
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("participant update %d: %s", i, resp.Status)
		}
	}
	req, err := http.NewRequest(http.MethodPost, pxSrv.URL+"/v1/hop", bytes.NewReader(ct))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(wire.HeaderHop, "2")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("hop update: %s", resp.Status)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(hops) != 4 {
		t.Fatalf("next hop saw %d forwards, want 4", len(hops))
	}
	for i, h := range hops {
		if h != "3" {
			t.Fatalf("forward %d stamped hop %q, want 3 (watermark 2 + 1)", i, h)
		}
	}
}

func TestNewShardedValidation(t *testing.T) {
	platform, encl := fixtures(t)
	cases := []ShardedConfig{
		{},                     // no upstream, no next hop
		{Upstream: "http://x"}, // no round size
		{Upstream: "http://x", RoundSize: 2, Shards: 3}, // shards > round size
		{NextHop: "http://next", RoundSize: 4},          // next hop without key
	}
	for i, cfg := range cases {
		if _, err := NewSharded(cfg, encl, platform); err == nil {
			t.Fatalf("case %d: invalid config %+v accepted", i, cfg)
		}
	}
	if _, err := NewSharded(ShardedConfig{Upstream: "http://x", RoundSize: 4}, nil, nil); err == nil {
		t.Fatal("nil enclave accepted")
	}
}
