package proxy

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"mixnn/internal/health"
)

// admissionDeployment stands up a front proxy with the admission gate
// configured, over httptest.
func admissionDeployment(t *testing.T, cfg ShardedConfig) (*ShardedProxy, string) {
	t.Helper()
	platform, encl := fixtures(t)
	agg, err := NewAggServer(testArch().New(1).SnapshotParams(), 4)
	if err != nil {
		t.Fatal(err)
	}
	aggSrv := httptest.NewServer(agg.Handler())
	t.Cleanup(aggSrv.Close)
	cfg.Upstream = aggSrv.URL
	if cfg.RoundSize == 0 {
		cfg.RoundSize = 4
	}
	if cfg.K == 0 {
		cfg.K = 2
	}
	px, err := NewSharded(cfg, encl, platform)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(px.Close)
	pxSrv := httptest.NewServer(px.Handler())
	t.Cleanup(pxSrv.Close)
	return px, pxSrv.URL
}

// TestAdmissionRateLimitPerSender: a sender over its token budget gets
// the typed 429 with a Retry-After hint, while OTHER senders stay
// admitted — the bucket is per-sender, not per-tier.
func TestAdmissionRateLimitPerSender(t *testing.T) {
	_, encl := fixtures(t)
	px, proxyURL := admissionDeployment(t, ShardedConfig{
		Seed: 7, RatePerSec: 0.001, RateBurst: 1,
	})
	ps := testArch().New(2).SnapshotParams()

	resp := sendRaw(t, encl, proxyURL, "heavy", ps)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first send within burst: got %d, want 202", resp.StatusCode)
	}
	resp = sendRaw(t, encl, proxyURL, "heavy", ps)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second send over budget: got %d, want 429", resp.StatusCode)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Fatalf("429 must carry an integer Retry-After >= 1s, got %q", resp.Header.Get("Retry-After"))
	}
	// A different sender has its own bucket and is admitted.
	resp = sendRaw(t, encl, proxyURL, "light", ps)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("other sender: got %d, want 202 (buckets are per-sender)", resp.StatusCode)
	}
	st := px.Status()
	if st.AdmissionRateLimited != 1 || st.AdmissionShed != 0 {
		t.Fatalf("status counters: rate_limited=%d shed=%d, want 1/0", st.AdmissionRateLimited, st.AdmissionShed)
	}
	if st.Received != 2 {
		t.Fatalf("ingested %d, want 2 — the refused update must not be counted", st.Received)
	}
}

// TestAdmissionShedGate: ingress pressure over the configured depth
// sheds EVERY participant update with 429 until the pressure clears.
func TestAdmissionShedGate(t *testing.T) {
	_, encl := fixtures(t)
	var depth atomic.Int64
	px, proxyURL := admissionDeployment(t, ShardedConfig{
		Seed: 7, ShedQueueDepth: 4,
		IngressDepth: func() int { return int(depth.Load()) },
	})
	ps := testArch().New(2).SnapshotParams()

	depth.Store(10)
	resp := sendRaw(t, encl, proxyURL, "c0", ps)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("under pressure: got %d, want 429", resp.StatusCode)
	}
	// The signals snapshot is cached for signalCacheTTL; wait it out
	// before flipping the pressure off.
	depth.Store(0)
	time.Sleep(3 * signalCacheTTL)
	resp = sendRaw(t, encl, proxyURL, "c0", ps)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("pressure cleared: got %d, want 202", resp.StatusCode)
	}
	if st := px.Status(); st.AdmissionShed != 1 {
		t.Fatalf("AdmissionShed=%d, want 1", st.AdmissionShed)
	}
}

// TestMetricsEndpoint: /v1/metrics serves valid Prometheus text
// exposition covering the core instrument families, and the admission
// counters move with the gate.
func TestMetricsEndpoint(t *testing.T) {
	_, encl := fixtures(t)
	px, proxyURL := admissionDeployment(t, ShardedConfig{Seed: 7})
	ps := testArch().New(2).SnapshotParams()
	// A full round: the close drains through the outbox, so the
	// per-lane instruments exist by the time we scrape.
	for i := 0; i < 4; i++ {
		resp := sendRaw(t, encl, proxyURL, "c"+strconv.Itoa(i), ps)
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("send %d: got %d, want 202", i, resp.StatusCode)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := px.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(proxyURL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/metrics: got %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type %q, want text/plain exposition", ct)
	}
	families, err := health.ValidateExposition(resp.Body)
	if err != nil {
		t.Fatalf("exposition does not parse: %v", err)
	}
	have := make(map[string]bool, len(families))
	for _, f := range families {
		have[f] = true
	}
	for _, want := range []string{
		"mixnn_ingress_updates_total",
		"mixnn_admission_rate_limited_total",
		"mixnn_admission_shed_total",
		"mixnn_outbox_pending",
		"mixnn_outbox_lane_pending",
		"mixnn_session_hits_total",
		"mixnn_decrypt_us",
		"mixnn_health_score",
	} {
		if !have[want] {
			t.Errorf("core instrument family %s missing from exposition (got %v)", want, families)
		}
	}
}

// TestMetricsDisabled404: with the registry disabled the endpoint
// answers 404 — the same wire shape as a binary without the route.
func TestMetricsDisabled404(t *testing.T) {
	_, proxyURL := admissionDeployment(t, ShardedConfig{Seed: 7, DisableMetrics: true})
	resp, err := http.Get(proxyURL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("metrics disabled: got %d, want 404", resp.StatusCode)
	}
}

// TestHandleDiscover: the advertisement names the proxy's endpoint and
// peers, reports the shard map, and carries a health score in (0, 1].
func TestHandleDiscover(t *testing.T) {
	px, _ := admissionDeployment(t, ShardedConfig{
		Seed: 7, Shards: 2,
		Endpoint: "http://front-0", Peers: []string{"http://front-0", "http://front-1"},
	})
	dr, err := px.HandleDiscover(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if dr.Endpoint != "http://front-0" {
		t.Fatalf("Endpoint %q, want the configured one", dr.Endpoint)
	}
	if len(dr.Peers) != 2 || dr.Peers[1] != "http://front-1" {
		t.Fatalf("Peers %v, want the configured peer list", dr.Peers)
	}
	if len(dr.Shards) != 2 {
		t.Fatalf("advertised %d shards, want 2", len(dr.Shards))
	}
	if dr.Shedding {
		t.Fatal("an idle proxy must not advertise shedding")
	}
	if dr.Health <= 0.1 || dr.Health > 1 {
		t.Fatalf("idle health %v, want in the non-shedding band (0.1, 1]", dr.Health)
	}
	if dr.RoundSize != 4 {
		t.Fatalf("RoundSize %d, want the configured 4", dr.RoundSize)
	}
}
