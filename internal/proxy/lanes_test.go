package proxy

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"mixnn/internal/enclave"
	"mixnn/internal/nn"
	"mixnn/internal/route"
	"mixnn/internal/transport"
	"mixnn/internal/wire"
)

// gatedRemoteShard is remoteShardFixture with a gatedServer in front of
// the peer's handler, so a test can take ONE peer of a multi-shard
// topology offline while the rest of the tier keeps running. Attestation
// happens before the caller closes the gate (the gate only blocks POSTs,
// and the handshake is a GET, but the ordering keeps the fixture honest).
func gatedRemoteShard(t *testing.T, platform *enclave.Platform, upstream string, roundSize int, seed int64) (*ShardedProxy, *gatedServer, string, RemoteShard) {
	t.Helper()
	encl, err := enclave.New(enclave.Config{CodeIdentity: fmt.Sprintf("shard-enclave-%d", seed), RSABits: 1024}, platform)
	if err != nil {
		t.Fatal(err)
	}
	px, err := NewSharded(ShardedConfig{
		Upstream: upstream, K: 1, RoundSize: roundSize, Shards: 1, Seed: seed,
		RetryBase: time.Millisecond, RetryMax: 5 * time.Millisecond,
	}, encl, platform)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(px.Close)
	gate := &gatedServer{next: px.Handler()}
	srv := httptest.NewServer(gate)
	t.Cleanup(srv.Close)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	key, err := AttestHopOver(ctx, transport.NewHTTP(nil), srv.URL, platform.AttestationPublicKey(), encl.Measurement())
	if err != nil {
		t.Fatal(err)
	}
	return px, gate, srv.URL, RemoteShard{Key: key}
}

func laneStatus(st wire.ShardedProxyStatus, dest string) (wire.OutboxLaneStatus, bool) {
	for _, ls := range st.OutboxLanes {
		if ls.Dest == dest {
			return ls, true
		}
	}
	return wire.OutboxLaneStatus{}, false
}

// TestDeliveryLaneIsolationDeadPeer is the acceptance e2e of the
// per-destination lane split: one remote peer of a three-shard tier is
// down for N rounds while the aggregation-server lane and the healthy
// peer's lane keep delivering within normal backoff time. The old single
// ordered queue wedged ALL of them behind the dead peer's first entry.
// After the peer recovers, the parked backlog drains and the aggregate
// still equals the classic mean at 1e-9 — degradation, not loss.
func TestDeliveryLaneIsolationDeadPeer(t *testing.T) {
	const c, epochs = 6, 3
	platform, encl := fixtures(t)
	initial := testArch().New(1).SnapshotParams()
	agg, err := NewAggServer(initial, c)
	if err != nil {
		t.Fatal(err)
	}
	obs := &roundObserver{}
	agg.SetObserver(obs)
	aggSrv := httptest.NewServer(agg.Handler())
	t.Cleanup(aggSrv.Close)

	// Three shards, quota 2 each: local, a healthy peer, a doomed peer.
	pxHealthy, addrHealthy, rsHealthy := remoteShardFixture(t, platform, aggSrv.URL, 2, 201)
	_, gate, addrDead, rsDead := gatedRemoteShard(t, platform, aggSrv.URL, 2, 202)
	gate.SetDown(true)

	front, err := NewSharded(ShardedConfig{
		Upstream: aggSrv.URL, K: 1, RoundSize: c, Seed: 203,
		Routing:    route.ModeHashQuota,
		ShardSpecs: []route.ShardSpec{{}, {Addr: addrHealthy}, {Addr: addrDead}},
		RemoteShards: map[string]RemoteShard{
			addrHealthy: rsHealthy,
			addrDead:    rsDead,
		},
		RetryBase: time.Millisecond, RetryMax: 5 * time.Millisecond,
		DeliveryWorkers: 3,
	}, encl, platform)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(front.Close)
	frontSrv := httptest.NewServer(front.Handler())
	t.Cleanup(frontSrv.Close)

	// N full rounds ingest while the peer is dead: every epoch commits one
	// entry per destination, and the dead peer's entries sit BETWEEN the
	// healthy ones in global sequence order.
	var sent []nn.ParamSet
	for e := 0; e < epochs; e++ {
		updates := perturbed(initial, c, float64(300+40*e))
		sent = append(sent, updates...)
		for i, u := range updates {
			resp := sendRaw(t, encl, frontSrv.URL, fmt.Sprintf("lane-%d-%d", e, i), u)
			resp.Body.Close()
			if resp.StatusCode != http.StatusAccepted {
				t.Fatalf("epoch %d send %d: %s", e, i, resp.Status)
			}
		}
	}

	// The healthy lanes must complete while the dead peer is STILL down:
	// agg + healthy-peer deliveries for all N epochs, the dead lane
	// holding its full backlog. 10s against millisecond backoffs is
	// "normal backoff time" with an enormous margin.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := front.Status()
		deadLane, _ := laneStatus(st, addrDead)
		aggLane, _ := laneStatus(st, "")
		healthyLane, _ := laneStatus(st, addrHealthy)
		if aggLane.Pending == 0 && aggLane.Delivered == epochs &&
			healthyLane.Pending == 0 && healthyLane.Delivered == epochs &&
			pxHealthy.Status().HopReceived == 2*epochs {
			if deadLane.Pending != epochs {
				t.Fatalf("dead lane pending = %d, want %d (one entry per epoch)", deadLane.Pending, epochs)
			}
			if deadLane.Failures == 0 || deadLane.BackoffMs <= 0 {
				t.Fatalf("dead lane stat %+v, want recorded failures and a backoff", deadLane)
			}
			if aggLane.BackoffMs != 0 || healthyLane.BackoffMs != 0 {
				t.Fatalf("healthy lanes report backoff (agg %v, peer %v), want 0", aggLane.BackoffMs, healthyLane.BackoffMs)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("healthy lanes did not deliver during the peer outage: status %+v", st.OutboxLanes)
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Peer recovers: the parked lane drains and every update lands
	// exactly once. Rounds at the server recompose across lanes, so the
	// invariant is conservation + the overall layer-wise mean (mixing
	// preserves the multiset of layers, hence the mean).
	gate.SetDown(false)
	flushTier(t, front, pxHealthy)
	waitServerRound(t, agg, epochs)

	obs.mu.Lock()
	var delivered []nn.ParamSet
	for r, rec := range obs.recs {
		if len(rec.Updates) != c {
			obs.mu.Unlock()
			t.Fatalf("server round %d carried %d updates, want %d (lost or duplicated)", r, len(rec.Updates), c)
		}
		delivered = append(delivered, rec.Updates...)
	}
	obs.mu.Unlock()
	if len(delivered) != epochs*c {
		t.Fatalf("server saw %d updates, want %d", len(delivered), epochs*c)
	}
	wantMean, err := nn.Average(sent)
	if err != nil {
		t.Fatal(err)
	}
	gotMean, err := nn.Average(delivered)
	if err != nil {
		t.Fatal(err)
	}
	if !gotMean.ApproxEqual(wantMean, 1e-9) {
		t.Fatal("layer-wise mean diverged across the dead-peer outage and recovery")
	}
}

// TestDeliveryLaneCrashRestartProgress proves per-lane NoBatch progress
// is exactly-once across a crash: a peer lane is interrupted mid-entry
// (one of two singles delivered) while the agg lane completes; the proxy
// crashes; the restarted proxy resumes the peer lane from its durable
// .prog marker — never re-sending the confirmed single — and the round
// closes with the classic mean.
func TestDeliveryLaneCrashRestartProgress(t *testing.T) {
	const c = 4
	platform, encl := fixtures(t)
	initial := testArch().New(1).SnapshotParams()
	agg, err := NewAggServer(initial, c)
	if err != nil {
		t.Fatal(err)
	}
	aggSrv := httptest.NewServer(agg.Handler())
	t.Cleanup(aggSrv.Close)

	// The peer accepts exactly one hop POST, then fails until reopened.
	peerEncl, err := enclave.New(enclave.Config{CodeIdentity: "shard-enclave-210", RSABits: 1024}, platform)
	if err != nil {
		t.Fatal(err)
	}
	peer, err := NewSharded(ShardedConfig{
		Upstream: aggSrv.URL, K: 1, RoundSize: 2, Shards: 1, Seed: 210,
		RetryBase: time.Millisecond, RetryMax: 5 * time.Millisecond,
	}, peerEncl, platform)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(peer.Close)
	var (
		mu       sync.Mutex
		accepted int
		gateOpen bool
	)
	peerGate := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost {
			mu.Lock()
			ok := gateOpen || accepted < 1
			if ok {
				accepted++
			}
			mu.Unlock()
			if !ok {
				http.Error(w, "peer outage", http.StatusServiceUnavailable)
				return
			}
		}
		peer.Handler().ServeHTTP(w, r)
	})
	peerSrv := httptest.NewServer(peerGate)
	t.Cleanup(peerSrv.Close)
	actx, acancel := context.WithTimeout(context.Background(), 30*time.Second)
	key, err := AttestHopOver(actx, transport.NewHTTP(nil), peerSrv.URL, platform.AttestationPublicKey(), peerEncl.Measurement())
	acancel()
	if err != nil {
		t.Fatal(err)
	}

	outboxDir := filepath.Join(t.TempDir(), "outbox")
	cfg := ShardedConfig{
		Upstream: aggSrv.URL, K: 1, RoundSize: c, Seed: 211,
		Routing:      route.ModeHashQuota,
		ShardSpecs:   []route.ShardSpec{{}, {Addr: peerSrv.URL}},
		RemoteShards: map[string]RemoteShard{peerSrv.URL: {Key: key}},
		NoBatch:      true, OutboxDir: outboxDir,
		RetryBase: time.Millisecond, RetryMax: 5 * time.Millisecond,
	}
	px1, err := NewSharded(cfg, encl, platform)
	if err != nil {
		t.Fatal(err)
	}
	px1Srv := httptest.NewServer(px1.Handler())
	updates := perturbed(initial, c, 500)
	for i, u := range updates {
		resp := sendRaw(t, encl, px1Srv.URL, fmt.Sprintf("cr-%d", i), u)
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("send %d: %s", i, resp.Status)
		}
	}

	// Wait until the independent lanes reach the crash point: the agg
	// lane fully delivered (2 singles straight to the server), the peer
	// lane stuck at 1 of 2.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := px1.Status()
		aggLane, _ := laneStatus(st, "")
		mu.Lock()
		n := accepted
		mu.Unlock()
		if aggLane.Pending == 0 && aggLane.Delivered == 1 && n == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("lanes did not reach the crash point: agg %+v, peer accepted %d", st.OutboxLanes, n)
		}
		time.Sleep(time.Millisecond)
	}

	// Crash. On disk: only the peer entry (.ent) remains — the agg lane's
	// entry was acked and removed — alongside its .prog marker.
	px1Srv.Close()
	px1.Close()
	var ents, progs int
	names, err := os.ReadDir(outboxDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range names {
		switch {
		case strings.HasSuffix(de.Name(), ".ent"):
			ents++
		case strings.HasSuffix(de.Name(), ".prog"):
			progs++
		}
	}
	if ents != 1 || progs != 1 {
		t.Fatalf("crash left %d entries and %d progress markers, want 1 and 1 (peer lane only)", ents, progs)
	}

	// Restart over the same outbox; the peer recovers. The resumed lane
	// must send exactly the one unconfirmed single.
	mu.Lock()
	gateOpen = true
	mu.Unlock()
	px2, err := NewSharded(cfg, encl, platform)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(px2.Close)
	flushTier(t, px2, peer)
	waitServerRound(t, agg, 1)
	mu.Lock()
	total := accepted
	mu.Unlock()
	if total != 2 {
		t.Fatalf("peer accepted %d POSTs, want exactly 2 (the .prog resume must not re-send)", total)
	}
	if hr := peer.Status().HopReceived; hr != 2 {
		t.Fatalf("peer ingested %d hop updates, want 2", hr)
	}
	want, err := nn.Average(updates)
	if err != nil {
		t.Fatal(err)
	}
	if !agg.Global().ApproxEqual(want, 1e-9) {
		t.Fatal("aggregate diverged across the per-lane crash-resume")
	}
}
