package proxy

import (
	"fmt"
	"testing"
)

// TestDedupSenderWatermarkLRU: an active durable sender's watermark must
// survive a churn of one-shot senders (LRU, not insertion-order FIFO).
func TestDedupSenderWatermarkLRU(t *testing.T) {
	var d batchDedup
	d.SetWindow(1)
	// The durable sender registers first and keeps delivering.
	d.Begin("id-a1", "durable", 1, true)
	d.Done("id-a1", "durable", 1, true)
	for i := 0; i < maxDedupSenders+32; i++ {
		id := fmt.Sprintf("churn-%d", i)
		d.Begin(id, fmt.Sprintf("oneshot-%d", i), 1, true)
		d.Done(id, fmt.Sprintf("oneshot-%d", i), 1, true)
		if i%8 == 0 { // the durable sender stays active throughout
			id := fmt.Sprintf("id-a-%d", i)
			d.Done(id, "durable", uint64(2+i), true)
		}
	}
	// Its id FIFO slot is long gone (window=1); the watermark must still
	// classify an old seq as stale.
	if got := d.Begin("id-a1", "durable", 1, true); got != dedupStale {
		t.Fatalf("durable sender's aged redelivery = %v, want dedupStale (watermark evicted?)", got)
	}
}

// TestDedupWatermarkVerdicts pins the Begin decision table.
func TestDedupWatermarkVerdicts(t *testing.T) {
	var d batchDedup
	d.SetWindow(1)
	if got := d.Begin("i1", "s", 1, true); got != dedupClaimed {
		t.Fatalf("fresh id = %v", got)
	}
	if got := d.Begin("i1", "s", 1, true); got != dedupInFlight {
		t.Fatalf("in-flight id = %v", got)
	}
	d.Done("i1", "s", 1, true)
	if got := d.Begin("i1", "s", 1, true); got != dedupApplied {
		t.Fatalf("applied id = %v", got)
	}
	d.Begin("i2", "s", 2, true)
	d.Done("i2", "s", 2, true) // evicts i1 from the window
	if got := d.Begin("i1", "s", 1, true); got != dedupStale {
		t.Fatalf("aged-out superseded id = %v, want stale", got)
	}
	if got := d.Begin("i2", "s", 2, true); got != dedupApplied {
		t.Fatalf("in-window id = %v", got)
	}
	// Lost-ack: id evicted but seq == watermark.
	d.Begin("i3", "other", 1, true)
	d.Done("i3", "other", 1, true)
	if got := d.Begin("i2", "s", 2, true); got != dedupApplied {
		t.Fatalf("lost-ack at watermark = %v, want applied", got)
	}
	// Legacy sender (no seq headers): aged ids are indistinguishable
	// from new batches — claimed, never stale.
	if got := d.Begin("i9", "", 0, false); got != dedupClaimed {
		t.Fatalf("legacy sender = %v", got)
	}
}
