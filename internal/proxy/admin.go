// Topology administration: the HTTP surface (and Go API) through which
// an operator reshapes the mixing tier's routing plane at run time —
// growing or shrinking the shard set, switching the routing policy,
// reweighting quotas, and attaching remote shards (peer proxies with
// their own enclaves). Directives are STAGED: they take effect at the
// next round close, the same atomic swap that rotates the per-epoch
// mixers, so membership changes never tear an open round. A directive
// staged while the tier is idle (no open round) applies immediately.
package proxy

import (
	"context"
	"crypto/ecdsa"
	"crypto/x509"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"mixnn/internal/route"
	"mixnn/internal/transport"
	"mixnn/internal/wire"
)

// TrustBundle is the out-of-band material a participant (or a peer proxy)
// pins before trusting an enclave: the (simulated) attestation authority
// key and the expected enclave measurement. mixnn-proxy writes one at
// startup (-trust-out); topology directives reference them to attest
// remote shards.
type TrustBundle struct {
	AuthorityPubDER []byte `json:"authority_pub_der"`
	MeasurementHex  string `json:"measurement"`
}

// ReadTrustBundle loads a trust bundle file.
func ReadTrustBundle(path string) (TrustBundle, error) {
	var bundle TrustBundle
	raw, err := os.ReadFile(path)
	if err != nil {
		return bundle, fmt.Errorf("read trust bundle: %w", err)
	}
	if err := json.Unmarshal(raw, &bundle); err != nil {
		return bundle, fmt.Errorf("parse trust bundle %s: %w", path, err)
	}
	return bundle, nil
}

// Topology returns the routing plan of the epoch currently being
// ingested.
func (p *ShardedProxy) Topology() *route.Topology {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.topo
}

// RegisterRemote records attested key material for a remote shard
// address, making it usable in topology directives (and letting queued
// entries addressed to it deliver).
func (p *ShardedProxy) RegisterRemote(addr string, rs RemoteShard) error {
	if addr == "" || rs.Key == nil {
		return fmt.Errorf("proxy: RegisterRemote needs an address and a hop key")
	}
	p.mu.Lock()
	p.remotes[addr] = rs
	p.mu.Unlock()
	p.disp.Wake() // entries may have been waiting on this key
	return nil
}

// StageTopology validates a directive, attests any new remote shards
// (resolving their trust material), and stages the resulting topology
// for the next epoch. When the tier is idle (no update of the current
// round ingested, no round close in flight) the staged topology applies
// immediately; otherwise it applies at the next round close.
//
// With d.SyncPeers set, each remote shard's OWN round size is driven to
// its new quota in the same step: the proxy posts a RoundSize directive
// to every remote peer's admin plane before promoting the staged plan,
// so one directive reshapes both ends of every relay leg in the same
// epoch. Peers must run with an inter-proxy secret (their admin POST is
// gated on it); the secret used is the one registered for the shard.
// SyncPeers requires a QUIESCENT tier (no open round, no round close in
// flight, empty delivery outbox): a peer applies its round-size change
// as soon as it is idle, so reshaping it while this tier still has an
// old-quota round open (or queued) would deliver q_old updates into a
// round sized q_new — stalling the peer's round or splitting an epoch
// across two of its rounds. The directive fails cleanly instead; retry
// between rounds.
func (p *ShardedProxy) StageTopology(ctx context.Context, d wire.TopologyDirective) (*route.Topology, error) {
	mode, err := route.ParseMode(d.Mode)
	if err != nil {
		return nil, err
	}
	if d.SyncPeers {
		if err := p.requireQuiesced(); err != nil {
			return nil, fmt.Errorf("proxy: sync_peers: %w", err)
		}
	}
	if d.Mode == "" {
		mode = 0 // keep the current mode
	}
	rd := route.Directive{Mode: mode, RoundSize: d.RoundSize}
	if d.Shards != nil {
		rd.Shards = make([]route.ShardSpec, len(d.Shards))
		for i, s := range d.Shards {
			rd.Shards[i] = route.ShardSpec{Addr: s.Addr, Weight: s.Weight}
			if s.Addr == "" {
				continue
			}
			if err := p.ensureRemote(ctx, s); err != nil {
				return nil, fmt.Errorf("proxy: remote shard %s: %w", s.Addr, err)
			}
		}
	}
	next, err := p.planner.Stage(rd)
	if err != nil {
		return nil, err
	}
	if d.SyncPeers {
		if err := p.syncPeerRoundSizes(ctx, next); err != nil {
			// The directive is all-or-nothing: a plan whose peers were
			// not (all) resized must not auto-promote at the next round
			// close — that would relay new-quota shares into old-size
			// peer rounds. syncPeerRoundSizes already rolled back any
			// peer it had resized; discard the staged plan too.
			p.planner.Unstage()
			return nil, err
		}
	}
	p.applyStagedIfIdle()
	return next, nil
}

// requireQuiesced fails unless the tier has no open round, no round
// close in flight, and an empty delivery outbox — the precondition for
// reshaping both ends of a relay leg atomically. Advisory: an update
// racing in between this check and the staged plan's promotion narrows
// but cannot fully close the window; the systematic mid-round skew is
// what it prevents.
func (p *ShardedProxy) requireQuiesced() error {
	p.mu.Lock()
	inRound, closing, retained := p.inRound, p.closing, p.retained
	p.mu.Unlock()
	if inRound != 0 || closing != 0 || retained != 0 {
		return fmt.Errorf("tier is mid-round (%d updates in, %d closes in flight); retry between rounds", inRound, closing)
	}
	if n := p.box.Len(); n != 0 {
		return fmt.Errorf("delivery outbox still holds %d entries routed under the current quotas; retry after it drains", n)
	}
	return nil
}

// syncPeerRoundSizes drives every remote shard's round size to its
// quota under the staged topology, via the peer's typed admin plane.
// It is as close to atomic as a cross-process config change gets
// without two-phase commit: every peer's admin plane is PROBED (an
// authenticated read, recording its current round size) before any
// peer is mutated — so the common failures, an unreachable or
// misauthenticated peer, abort with nothing changed — and if a resize
// still fails mid-way, the peers already resized are rolled back to
// the round size the probe recorded.
func (p *ShardedProxy) syncPeerRoundSizes(ctx context.Context, next *route.Topology) error {
	type peerSync struct {
		addr   string
		secret string
		quota  int
		oldRS  int
	}
	var peers []peerSync
	for s := 0; s < next.P(); s++ {
		if !next.IsRemote(s) {
			continue
		}
		addr := next.Spec(s).Addr
		p.mu.Lock()
		secret := p.remotes[addr].Secret
		p.mu.Unlock()
		st, err := p.tr.Topology(ctx, addr, transport.TopologyRequest{Secret: secret})
		if err != nil {
			return fmt.Errorf("proxy: probe peer %s admin plane before resizing any peer: %w", addr, err)
		}
		peers = append(peers, peerSync{addr: addr, secret: secret, quota: next.Quota(s), oldRS: st.RoundSize})
	}
	for i, ps := range peers {
		_, err := p.tr.Topology(ctx, ps.addr, transport.TopologyRequest{
			Directive: &wire.TopologyDirective{RoundSize: ps.quota},
			Secret:    ps.secret,
		})
		if err == nil {
			continue
		}
		// Roll the already-resized peers back to their probed round
		// sizes; a rollback that itself fails needs the operator (the
		// caller also unstages, so nothing promotes meanwhile).
		for _, done := range peers[:i] {
			if _, rerr := p.tr.Topology(ctx, done.addr, transport.TopologyRequest{
				Directive: &wire.TopologyDirective{RoundSize: done.oldRS},
				Secret:    done.secret,
			}); rerr != nil {
				log.Printf("proxy: rollback of peer %s round size to %d failed (operator must reconcile): %v", done.addr, done.oldRS, rerr)
			}
		}
		return fmt.Errorf("proxy: sync peer %s round size to quota %d: %w", ps.addr, ps.quota, err)
	}
	return nil
}

// applyStagedIfIdle promotes a staged topology right away when no round
// is open: the current mixers are empty, so the swap loses nothing and
// the operator sees the change without waiting for traffic.
func (p *ShardedProxy) applyStagedIfIdle() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.inRound != 0 || p.closing != 0 || p.planner.Staged() == nil {
		return
	}
	// inRound == 0 does not guarantee empty shards: packageRound re-files
	// failed-commit remote material into the live shards without touching
	// the round counter. Swapping those shards out would drop mixed
	// updates; leave the plan staged for the next round close instead.
	for _, sh := range p.shards {
		if sh.Buffered() != 0 {
			return
		}
	}
	nextTopo := p.planner.Advance()
	fresh, err := newShardSet(p.cfg, nextTopo, p.rounds, p.slabPool)
	if err != nil {
		// Unreachable for a validated topology; the staged plan was
		// already consumed, so fall back to keeping the current shards.
		return
	}
	p.shardRecv = resizeLedger(p.shardRecv, nextTopo.P())
	p.shardEmit = resizeLedger(p.shardEmit, nextTopo.P())
	p.topo = nextTopo
	rr := p.rst.RR % nextTopo.P() // the cursor carries across swaps
	p.rst = nextTopo.NewState()
	p.rst.RR = rr
	p.shards = fresh
}

// ensureRemote makes sure attested key material exists for a remote
// shard spec: already-registered addresses pass through (the secret may
// be refreshed); new ones must carry trust material (inline DER +
// measurement, or a trust-bundle file) and are attested now, so a bad
// directive fails at the admin call, not at delivery time.
func (p *ShardedProxy) ensureRemote(ctx context.Context, s wire.TopologyShardSpec) error {
	p.mu.Lock()
	existing, known := p.remotes[s.Addr]
	p.mu.Unlock()
	if known && s.AuthorityPubDER == nil && s.TrustFile == "" {
		if s.Secret != "" && s.Secret != existing.Secret {
			p.mu.Lock()
			existing.Secret = s.Secret
			if existing.Trust != nil {
				existing.Trust.Secret = s.Secret
			}
			p.remotes[s.Addr] = existing
			p.mu.Unlock()
		}
		return nil
	}
	actx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	rs, err := resolveRemoteShard(actx, s, p.tr)
	if err != nil {
		return err
	}
	return p.RegisterRemote(s.Addr, rs)
}

// ResolveRemoteShard resolves a remote shard spec's trust material and
// runs the hop-attestation handshake against it, returning the key
// material a ShardedConfig (or RegisterRemote) needs. mixnn-proxy uses
// it to bring up a -shards-file topology before serving. httpc may be
// nil for a default client.
func ResolveRemoteShard(ctx context.Context, s wire.TopologyShardSpec, httpc *http.Client) (RemoteShard, error) {
	return ResolveRemoteShardOver(ctx, s, transport.NewHTTP(httpc))
}

// ResolveRemoteShardOver is ResolveRemoteShard over an arbitrary
// transport.
func ResolveRemoteShardOver(ctx context.Context, s wire.TopologyShardSpec, tr transport.Transport) (RemoteShard, error) {
	if s.Addr == "" {
		return RemoteShard{}, fmt.Errorf("proxy: remote shard spec without an address")
	}
	rs, err := resolveRemoteShard(ctx, s, tr)
	if err != nil {
		return RemoteShard{}, fmt.Errorf("proxy: remote shard %s: %w", s.Addr, err)
	}
	return rs, nil
}

// resolveRemoteShard resolves trust material and attests, recording the
// trust bundle inside the RemoteShard so the tier can seal it (a
// restarted replacement re-attests the peer from the blob alone).
func resolveRemoteShard(ctx context.Context, s wire.TopologyShardSpec, tr transport.Transport) (RemoteShard, error) {
	authority, measurement, bundle, err := resolveTrust(s)
	if err != nil {
		return RemoteShard{}, err
	}
	key, err := AttestHopOver(ctx, tr, s.Addr, authority, measurement)
	if err != nil {
		return RemoteShard{}, fmt.Errorf("attest: %w", err)
	}
	return RemoteShard{
		Key:    key,
		Secret: s.Secret,
		Trust:  &RemoteTrust{AuthorityPubDER: bundle.AuthorityPubDER, MeasurementHex: bundle.MeasurementHex, Secret: s.Secret},
	}, nil
}

// resolveTrust extracts the attestation trust of a shard spec: inline
// material wins; a trust file (the bundle mixnn-proxy writes at
// startup) is the file-based alternative used by -shards-file. It
// returns both the parsed forms (for the handshake) and the raw bundle
// (for sealing).
func resolveTrust(s wire.TopologyShardSpec) (*ecdsa.PublicKey, [32]byte, TrustBundle, error) {
	var meas [32]byte
	bundle := TrustBundle{AuthorityPubDER: s.AuthorityPubDER, MeasurementHex: s.MeasurementHex}
	if bundle.AuthorityPubDER == nil && s.TrustFile != "" {
		var err error
		if bundle, err = ReadTrustBundle(s.TrustFile); err != nil {
			return nil, meas, bundle, err
		}
	}
	if bundle.AuthorityPubDER == nil {
		return nil, meas, bundle, fmt.Errorf("no trust material (authority_pub_der+measurement or trust_file) for a new remote shard")
	}
	pub, err := x509.ParsePKIXPublicKey(bundle.AuthorityPubDER)
	if err != nil {
		return nil, meas, bundle, fmt.Errorf("parse authority key: %w", err)
	}
	authority, ok := pub.(*ecdsa.PublicKey)
	if !ok {
		return nil, meas, bundle, fmt.Errorf("authority key is %T, want ECDSA", pub)
	}
	raw, err := hex.DecodeString(bundle.MeasurementHex)
	if err != nil || len(raw) != 32 {
		return nil, meas, bundle, fmt.Errorf("malformed measurement")
	}
	copy(meas[:], raw)
	return authority, meas, bundle, nil
}

// TopologyStatus snapshots the routing plane for the admin endpoint.
func (p *ShardedProxy) TopologyStatus() wire.TopologyStatus {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := wire.TopologyStatus{
		Version:   p.topo.Version(),
		Mode:      p.topo.Mode().String(),
		RoundSize: p.topo.RoundSize(),
		Epoch:     p.rounds,
		Shards:    topoShards(p.topo, p.rst.Load),
	}
	if staged := p.planner.Staged(); staged != nil {
		st.Staged = &wire.TopologyStaged{
			Version:   staged.Version(),
			Mode:      staged.Mode().String(),
			RoundSize: staged.RoundSize(),
			Shards:    topoShards(staged, nil),
		}
	}
	return st
}

func topoShards(t *route.Topology, load []int) []wire.TopologyShard {
	out := make([]wire.TopologyShard, t.P())
	for s := range out {
		spec := t.Spec(s)
		out[s] = wire.TopologyShard{Shard: s, Addr: spec.Addr, Weight: spec.Weight, Quota: t.Quota(s)}
		if load != nil {
			out[s].Load = load[s]
		}
	}
	return out
}
