// Topology administration: the HTTP surface (and Go API) through which
// an operator reshapes the mixing tier's routing plane at run time —
// growing or shrinking the shard set, switching the routing policy,
// reweighting quotas, and attaching remote shards (peer proxies with
// their own enclaves). Directives are STAGED: they take effect at the
// next round close, the same atomic swap that rotates the per-epoch
// mixers, so membership changes never tear an open round. A directive
// staged while the tier is idle (no open round) applies immediately.
package proxy

import (
	"context"
	"crypto/ecdsa"
	"crypto/subtle"
	"crypto/x509"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"time"

	"mixnn/internal/route"
	"mixnn/internal/wire"
)

// TrustBundle is the out-of-band material a participant (or a peer proxy)
// pins before trusting an enclave: the (simulated) attestation authority
// key and the expected enclave measurement. mixnn-proxy writes one at
// startup (-trust-out); topology directives reference them to attest
// remote shards.
type TrustBundle struct {
	AuthorityPubDER []byte `json:"authority_pub_der"`
	MeasurementHex  string `json:"measurement"`
}

// ReadTrustBundle loads a trust bundle file.
func ReadTrustBundle(path string) (TrustBundle, error) {
	var bundle TrustBundle
	raw, err := os.ReadFile(path)
	if err != nil {
		return bundle, fmt.Errorf("read trust bundle: %w", err)
	}
	if err := json.Unmarshal(raw, &bundle); err != nil {
		return bundle, fmt.Errorf("parse trust bundle %s: %w", path, err)
	}
	return bundle, nil
}

// Topology returns the routing plan of the epoch currently being
// ingested.
func (p *ShardedProxy) Topology() *route.Topology {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.topo
}

// RegisterRemote records attested key material for a remote shard
// address, making it usable in topology directives (and letting queued
// entries addressed to it deliver).
func (p *ShardedProxy) RegisterRemote(addr string, rs RemoteShard) error {
	if addr == "" || rs.Key == nil {
		return fmt.Errorf("proxy: RegisterRemote needs an address and a hop key")
	}
	p.mu.Lock()
	p.remotes[addr] = rs
	p.mu.Unlock()
	p.disp.Wake() // entries may have been waiting on this key
	return nil
}

// StageTopology validates a directive, attests any new remote shards
// (resolving their trust material), and stages the resulting topology
// for the next epoch. When the tier is idle (no update of the current
// round ingested, no round close in flight) the staged topology applies
// immediately; otherwise it applies at the next round close.
func (p *ShardedProxy) StageTopology(ctx context.Context, d wire.TopologyDirective) (*route.Topology, error) {
	mode, err := route.ParseMode(d.Mode)
	if err != nil {
		return nil, err
	}
	if d.Mode == "" {
		mode = 0 // keep the current mode
	}
	rd := route.Directive{Mode: mode, RoundSize: d.RoundSize}
	if d.Shards != nil {
		rd.Shards = make([]route.ShardSpec, len(d.Shards))
		for i, s := range d.Shards {
			rd.Shards[i] = route.ShardSpec{Addr: s.Addr, Weight: s.Weight}
			if s.Addr == "" {
				continue
			}
			if err := p.ensureRemote(ctx, s); err != nil {
				return nil, fmt.Errorf("proxy: remote shard %s: %w", s.Addr, err)
			}
		}
	}
	next, err := p.planner.Stage(rd)
	if err != nil {
		return nil, err
	}
	p.applyStagedIfIdle()
	return next, nil
}

// applyStagedIfIdle promotes a staged topology right away when no round
// is open: the current mixers are empty, so the swap loses nothing and
// the operator sees the change without waiting for traffic.
func (p *ShardedProxy) applyStagedIfIdle() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.inRound != 0 || p.closing != 0 || p.planner.Staged() == nil {
		return
	}
	// inRound == 0 does not guarantee empty shards: packageRound re-files
	// failed-commit remote material into the live shards without touching
	// the round counter. Swapping those shards out would drop mixed
	// updates; leave the plan staged for the next round close instead.
	for _, sh := range p.shards {
		if sh.Buffered() != 0 {
			return
		}
	}
	nextTopo := p.planner.Advance()
	fresh, err := newShardSet(p.cfg, nextTopo, p.rounds)
	if err != nil {
		// Unreachable for a validated topology; the staged plan was
		// already consumed, so fall back to keeping the current shards.
		return
	}
	p.shardRecv = resizeLedger(p.shardRecv, nextTopo.P())
	p.shardEmit = resizeLedger(p.shardEmit, nextTopo.P())
	p.topo = nextTopo
	rr := p.rst.RR % nextTopo.P() // the cursor carries across swaps
	p.rst = nextTopo.NewState()
	p.rst.RR = rr
	p.shards = fresh
}

// ensureRemote makes sure attested key material exists for a remote
// shard spec: already-registered addresses pass through (the secret may
// be refreshed); new ones must carry trust material (inline DER +
// measurement, or a trust-bundle file) and are attested now, so a bad
// directive fails at the admin call, not at delivery time.
func (p *ShardedProxy) ensureRemote(ctx context.Context, s wire.TopologyShardSpec) error {
	p.mu.Lock()
	existing, known := p.remotes[s.Addr]
	p.mu.Unlock()
	if known && s.AuthorityPubDER == nil && s.TrustFile == "" {
		if s.Secret != "" && s.Secret != existing.Secret {
			p.mu.Lock()
			existing.Secret = s.Secret
			p.remotes[s.Addr] = existing
			p.mu.Unlock()
		}
		return nil
	}
	authority, measurement, err := resolveTrust(s)
	if err != nil {
		return err
	}
	actx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	key, err := AttestHop(actx, s.Addr, p.httpc, authority, measurement)
	if err != nil {
		return fmt.Errorf("attest: %w", err)
	}
	return p.RegisterRemote(s.Addr, RemoteShard{Key: key, Secret: s.Secret})
}

// ResolveRemoteShard resolves a remote shard spec's trust material and
// runs the hop-attestation handshake against it, returning the key
// material a ShardedConfig (or RegisterRemote) needs. mixnn-proxy uses
// it to bring up a -shards-file topology before serving. httpc may be
// nil for a default client.
func ResolveRemoteShard(ctx context.Context, s wire.TopologyShardSpec, httpc *http.Client) (RemoteShard, error) {
	if s.Addr == "" {
		return RemoteShard{}, fmt.Errorf("proxy: remote shard spec without an address")
	}
	authority, measurement, err := resolveTrust(s)
	if err != nil {
		return RemoteShard{}, fmt.Errorf("proxy: remote shard %s: %w", s.Addr, err)
	}
	key, err := AttestHop(ctx, s.Addr, httpc, authority, measurement)
	if err != nil {
		return RemoteShard{}, fmt.Errorf("proxy: attest remote shard %s: %w", s.Addr, err)
	}
	return RemoteShard{Key: key, Secret: s.Secret}, nil
}

// resolveTrust extracts the attestation authority key + expected
// measurement from a shard spec: inline material wins; a trust file
// (the bundle mixnn-proxy writes at startup) is the file-based
// alternative used by -shards-file.
func resolveTrust(s wire.TopologyShardSpec) (*ecdsa.PublicKey, [32]byte, error) {
	var meas [32]byte
	der := s.AuthorityPubDER
	measHex := s.MeasurementHex
	if der == nil && s.TrustFile != "" {
		bundle, err := ReadTrustBundle(s.TrustFile)
		if err != nil {
			return nil, meas, err
		}
		der, measHex = bundle.AuthorityPubDER, bundle.MeasurementHex
	}
	if der == nil {
		return nil, meas, fmt.Errorf("no trust material (authority_pub_der+measurement or trust_file) for a new remote shard")
	}
	pub, err := x509.ParsePKIXPublicKey(der)
	if err != nil {
		return nil, meas, fmt.Errorf("parse authority key: %w", err)
	}
	authority, ok := pub.(*ecdsa.PublicKey)
	if !ok {
		return nil, meas, fmt.Errorf("authority key is %T, want ECDSA", pub)
	}
	raw, err := hex.DecodeString(measHex)
	if err != nil || len(raw) != 32 {
		return nil, meas, fmt.Errorf("malformed measurement")
	}
	copy(meas[:], raw)
	return authority, meas, nil
}

// TopologyStatus snapshots the routing plane for the admin endpoint.
func (p *ShardedProxy) TopologyStatus() wire.TopologyStatus {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := wire.TopologyStatus{
		Version:   p.topo.Version(),
		Mode:      p.topo.Mode().String(),
		RoundSize: p.topo.RoundSize(),
		Epoch:     p.rounds,
		Shards:    topoShards(p.topo, p.rst.Load),
	}
	if staged := p.planner.Staged(); staged != nil {
		st.Staged = &wire.TopologyStaged{
			Version:   staged.Version(),
			Mode:      staged.Mode().String(),
			RoundSize: staged.RoundSize(),
			Shards:    topoShards(staged, nil),
		}
	}
	return st
}

func topoShards(t *route.Topology, load []int) []wire.TopologyShard {
	out := make([]wire.TopologyShard, t.P())
	for s := range out {
		spec := t.Spec(s)
		out[s] = wire.TopologyShard{Shard: s, Addr: spec.Addr, Weight: spec.Weight, Quota: t.Quota(s)}
		if load != nil {
			out[s].Load = load[s]
		}
	}
	return out
}

// authorizeAdmin gates the admin surface with the inter-proxy secret
// when one is configured: reshaping the tier is at least as sensitive as
// posting hop traffic.
func (p *ShardedProxy) authorizeAdmin(w http.ResponseWriter, r *http.Request) bool {
	if p.cfg.HopSecret != "" &&
		subtle.ConstantTimeCompare([]byte(r.Header.Get("Authorization")), []byte("Bearer "+p.cfg.HopSecret)) != 1 {
		http.Error(w, "topology admin requires the inter-proxy secret", http.StatusUnauthorized)
		return false
	}
	return true
}

func (p *ShardedProxy) handleTopologyGet(w http.ResponseWriter, r *http.Request) {
	if !p.authorizeAdmin(w, r) {
		return
	}
	wire.WriteJSON(w, p.TopologyStatus())
}

func (p *ShardedProxy) handleTopologyPost(w http.ResponseWriter, r *http.Request) {
	// Reshaping the tier over the network is privacy-critical either way
	// — a forged directive could shrink the anonymity set to one shard,
	// or attach an attacker-attested "remote shard" that receives raw
	// pre-mix updates — so the POST surface only exists behind the
	// inter-proxy secret. Operators without one still have -shards-file
	// (local file, hot-reloaded) and the Go API.
	if p.cfg.HopSecret == "" {
		http.Error(w, "topology admin POST requires the proxy to be started with an inter-proxy secret (-hop-secret)", http.StatusForbidden)
		return
	}
	if !p.authorizeAdmin(w, r) {
		return
	}
	var d wire.TopologyDirective
	if err := wire.DecodeJSON(r.Body, &d); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if _, err := p.StageTopology(r.Context(), d); err != nil {
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	wire.WriteJSON(w, p.TopologyStatus())
}
