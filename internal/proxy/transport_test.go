package proxy

// End-to-end batteries for the typed transport layer and the
// participant SDK: Loopback-vs-HTTP equivalence, participant failover,
// remote-shard re-attestation from the seal blob, and the SyncPeers
// admin directive.

import (
	"context"
	"crypto/x509"
	"encoding/hex"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"mixnn/internal/client"
	"mixnn/internal/enclave"
	"mixnn/internal/nn"
	"mixnn/internal/route"
	"mixnn/internal/transport"
	"mixnn/internal/wire"
)

// testNet serves typed servers over one shared Loopback (loop=true) or
// over httptest listeners (loop=false) inside one test case — the test
// twin of the experiment harness's perfNet, shared by the fuzz
// batteries' transport dimension.
type testNet struct {
	t  *testing.T
	lb *transport.Loopback
}

func newTestNet(t *testing.T, loop bool) *testNet {
	tn := &testNet{t: t}
	if loop {
		tn.lb = transport.NewLoopback()
	}
	return tn
}

// tr returns the transport senders should use.
func (tn *testNet) tr() transport.Transport {
	if tn.lb != nil {
		return tn.lb
	}
	return transport.NewHTTP(nil)
}

// cfgTransport returns the ShardedConfig.Transport value (nil = the
// tier's default HTTP transport).
func (tn *testNet) cfgTransport() transport.Transport {
	if tn.lb != nil {
		return tn.lb
	}
	return nil
}

// serve exposes a typed server and returns its endpoint: the given name
// over Loopback, a listener URL over HTTP.
func (tn *testNet) serve(name string, s transport.Server) string {
	if tn.lb != nil {
		tn.lb.Register(name, s)
		return name
	}
	srv := httptest.NewServer(transport.NewHandler(s))
	tn.t.Cleanup(srv.Close)
	return srv.URL
}

// sendTyped encrypts one update for the enclave and sends it through
// the given transport — the typed-counterpart of sendRaw, usable over
// Loopback as well as HTTP.
func sendTyped(t *testing.T, tr transport.Transport, encl *enclave.Enclave, ep, clientID string, ps nn.ParamSet) {
	t.Helper()
	raw, err := nn.EncodeParamSet(ps)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := enclave.Encrypt(encl.PublicKey(), raw)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := tr.SendUpdate(ctx, ep, transport.UpdateRequest{Body: ct, ClientID: clientID}); err != nil {
		t.Fatalf("typed send: %v", err)
	}
}

// sendSessionTyped is the session-crypto twin of sendTyped: the update
// travels as session ciphertext (establish on the session's first wrap,
// cheap GCM data messages after).
func sendSessionTyped(t *testing.T, tr transport.Transport, sess *enclave.Session, ep, clientID string, ps nn.ParamSet) {
	t.Helper()
	raw, err := nn.EncodeParamSet(ps)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := sess.Wrap(raw)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := tr.SendUpdate(ctx, ep, transport.UpdateRequest{Body: ct, ClientID: clientID}); err != nil {
		t.Fatalf("session send: %v", err)
	}
}

// deployTier stands up an agg server + front proxy over either
// transport kind and returns the agg, the proxy and the endpoints
// participants should use.
func deployTier(t *testing.T, kind string, encl *enclave.Enclave, platform *enclave.Platform, clients, shards int, seed int64) (*AggServer, *ShardedProxy, transport.Transport, string, string) {
	t.Helper()
	agg, err := NewAggServer(testArch().New(1).SnapshotParams(), clients)
	if err != nil {
		t.Fatal(err)
	}
	var tr transport.Transport
	var aggEP, frontEP string
	var cfgTransport transport.Transport
	switch kind {
	case "loopback":
		lb := transport.NewLoopback()
		lb.Register("loop://agg", agg)
		tr, cfgTransport, aggEP, frontEP = lb, lb, "loop://agg", "loop://front"
	case "http":
		aggSrv := httptest.NewServer(agg.Handler())
		t.Cleanup(aggSrv.Close)
		tr, aggEP = transport.NewHTTP(nil), aggSrv.URL
	default:
		t.Fatalf("unknown transport kind %q", kind)
	}
	px, err := NewSharded(ShardedConfig{
		Upstream: aggEP, K: 2, RoundSize: clients, Shards: shards, Seed: seed,
		Transport: cfgTransport,
	}, encl, platform)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(px.Close)
	if kind == "loopback" {
		tr.(*transport.Loopback).Register("loop://front", px)
	} else {
		pxSrv := httptest.NewServer(px.Handler())
		t.Cleanup(pxSrv.Close)
		frontEP = pxSrv.URL
	}
	return agg, px, tr, frontEP, aggEP
}

// TestTransportLoopbackEquivalence runs the identical round — same
// seeds, same client ids, same updates — through an HTTP tier and a
// Loopback tier and requires both aggregates to equal the classic
// FedAvg mean at 1e-9: the transport is a pure codec, invisible to the
// pipeline's numerics.
func TestTransportLoopbackEquivalence(t *testing.T) {
	platform, _ := fixtures(t)
	const clients, shards = 6, 2
	initial := testArch().New(1).SnapshotParams()
	updates := make([]nn.ParamSet, clients)
	for i := range updates {
		u := initial.Clone()
		u.Layers[0].Tensors[0].AddScalar(float64(i + 1))
		updates[i] = u
	}
	want, err := nn.Average(updates)
	if err != nil {
		t.Fatal(err)
	}
	globals := map[string]nn.ParamSet{}
	for _, kind := range []string{"http", "loopback"} {
		encl, err := enclave.New(enclave.Config{CodeIdentity: "equiv-" + kind}, platform)
		if err != nil {
			t.Fatal(err)
		}
		agg, px, tr, frontEP, aggEP := deployTier(t, kind, encl, platform, clients, shards, 99)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		for i, u := range updates {
			part, err := client.New(client.Config{
				Proxies: []string{frontEP}, Server: aggEP, Transport: tr,
				ClientID: fmt.Sprintf("c%d", i),
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := part.Attest(ctx, platform.AttestationPublicKey(), encl.Measurement()); err != nil {
				t.Fatalf("%s attest: %v", kind, err)
			}
			if err := part.SendUpdate(ctx, u); err != nil {
				t.Fatalf("%s send %d: %v", kind, i, err)
			}
		}
		flushTier(t, px)
		if agg.Round() != 1 {
			t.Fatalf("%s tier: round = %d, want 1", kind, agg.Round())
		}
		if !agg.Global().ApproxEqual(want, 1e-9) {
			t.Fatalf("%s tier aggregate diverged from classic FedAvg", kind)
		}
		globals[kind] = agg.Global()
		cancel()
	}
	if !globals["http"].ApproxEqual(globals["loopback"], 1e-9) {
		t.Fatal("HTTP and Loopback tiers disagree at 1e-9")
	}
}

// TestParticipantFailoverExactlyOnce: two front proxies feed one
// aggregation server; the first goes down mid-round, the SDK fails over
// to the second, and the server closes exactly one round whose mean is
// the classic FedAvg of all four updates — nothing lost, nothing
// double-absorbed (the batch dedup watermark sees two distinct senders,
// one batch each).
func TestParticipantFailoverExactlyOnce(t *testing.T) {
	platform, _ := fixtures(t)
	const clients = 4
	initial := testArch().New(1).SnapshotParams()

	lb := transport.NewLoopback()
	agg, err := NewAggServer(initial, clients)
	if err != nil {
		t.Fatal(err)
	}
	lb.Register("loop://agg", agg)

	// Both proxies run RoundSize 2: each closes (and delivers) a
	// half-round of the server's expected 4.
	proxies := make([]*ShardedProxy, 2)
	enclaves := make([]*enclave.Enclave, 2)
	for i := range proxies {
		encl, err := enclave.New(enclave.Config{CodeIdentity: fmt.Sprintf("failover-%d", i)}, platform)
		if err != nil {
			t.Fatal(err)
		}
		px, err := NewSharded(ShardedConfig{
			Upstream: "loop://agg", K: 1, RoundSize: 2, Shards: 1, Seed: int64(i + 5),
			Transport: lb,
		}, encl, platform)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(px.Close)
		lb.Register(fmt.Sprintf("loop://px-%d", i), px)
		proxies[i], enclaves[i] = px, encl
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	updates := make([]nn.ParamSet, clients)
	parts := make([]*client.Participant, clients)
	for i := range parts {
		u := initial.Clone()
		u.Layers[0].Tensors[0].AddScalar(float64(i + 1))
		updates[i] = u
		var err error
		parts[i], err = client.New(client.Config{
			Proxies: []string{"loop://px-0", "loop://px-1"}, Server: "loop://agg", Transport: lb,
		})
		if err != nil {
			t.Fatal(err)
		}
		// One attestation call pins both proxies' enclave keys; with a
		// proxy down it would pin lazily at failover time instead. Both
		// proxies run the same code identity? No — each has its own
		// measurement, so attest against the one the update may land on.
		if err := parts[i].Attest(ctx, platform.AttestationPublicKey(), enclaves[0].Measurement()); err != nil {
			t.Fatal(err)
		}
	}

	// First half-round lands on the primary and reaches the server.
	for i := 0; i < 2; i++ {
		if err := parts[i].SendUpdate(ctx, updates[i]); err != nil {
			t.Fatalf("send %d via primary: %v", i, err)
		}
	}
	flushTier(t, proxies[0])

	// Primary goes down mid-round (the server's round is still open).
	lb.Unregister("loop://px-0")

	// The failover proxy has a different enclave identity, so the
	// remaining participants must be able to attest it during failover:
	// re-pin trust at the second proxy's measurement.
	for i := 2; i < clients; i++ {
		// Attest succeeds because px-1 is reachable (px-0, being down,
		// keeps its stale key — which is exactly what forces the send
		// below through the failover path).
		if err := parts[i].Attest(ctx, platform.AttestationPublicKey(), enclaves[1].Measurement()); err != nil {
			t.Fatalf("attest against the failover proxy: %v", err)
		}
		if err := parts[i].SendUpdate(ctx, updates[i]); err != nil {
			t.Fatalf("send %d after failover: %v", i, err)
		}
	}
	flushTier(t, proxies[1])

	waitServerRound(t, agg, 1)
	if agg.Round() != 1 {
		t.Fatalf("server closed %d rounds, want exactly 1", agg.Round())
	}
	st, err := parts[0].ServerStatus(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.UpdatesInRound != 0 {
		t.Fatalf("server buffered %d stray updates after the round — duplicate absorption", st.UpdatesInRound)
	}
	want, err := nn.Average(updates)
	if err != nil {
		t.Fatal(err)
	}
	if !agg.Global().ApproxEqual(want, 1e-9) {
		t.Fatal("failover round aggregate != classic FedAvg mean (lost or duplicated update)")
	}
}

// trustSpecFor builds an inline-trust shard spec for a remote peer.
func trustSpecFor(t *testing.T, platform *enclave.Platform, encl *enclave.Enclave, addr, secret string, weight int) wire.TopologyShardSpec {
	t.Helper()
	der, err := x509.MarshalPKIXPublicKey(platform.AttestationPublicKey())
	if err != nil {
		t.Fatal(err)
	}
	meas := encl.Measurement()
	return wire.TopologyShardSpec{
		Addr: addr, Weight: weight,
		AuthorityPubDER: der, MeasurementHex: hex.EncodeToString(meas[:]),
		Secret: secret,
	}
}

// TestReattestRemotesFromSealBlob: a front tier with a remote shard is
// sealed and restored into a REPLACEMENT that was handed no RemoteShards
// key material at all. The v4 blob carries the remote's trust bundle;
// ReattestRemotes re-runs the hop handshake from it, and the restored
// tier's relay leg delivers a full round — no admin directive, no
// shards-file reload.
func TestReattestRemotesFromSealBlob(t *testing.T) {
	platform, _ := fixtures(t)
	const clients = 4
	initial := testArch().New(1).SnapshotParams()

	lb := transport.NewLoopback()
	agg, err := NewAggServer(initial, clients)
	if err != nil {
		t.Fatal(err)
	}
	lb.Register("loop://agg", agg)

	peerEncl, err := enclave.New(enclave.Config{CodeIdentity: "reattest-peer"}, platform)
	if err != nil {
		t.Fatal(err)
	}
	peer, err := NewSharded(ShardedConfig{
		Upstream: "loop://agg", K: 1, RoundSize: 2, Shards: 1, Seed: 11, Transport: lb,
	}, peerEncl, platform)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(peer.Close)
	lb.Register("loop://peer", peer)

	frontEncl, err := enclave.New(enclave.Config{CodeIdentity: "reattest-front"}, platform)
	if err != nil {
		t.Fatal(err)
	}
	front1, err := NewSharded(ShardedConfig{
		Upstream: "loop://agg", K: 1, RoundSize: clients, Shards: 1, Seed: 12,
		Routing: route.ModeHashQuota, Transport: lb,
	}, frontEncl, platform)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(front1.Close)
	// Attach the remote shard through the directive path, which records
	// its trust material for sealing (the tier is idle, so it applies
	// immediately).
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := front1.StageTopology(ctx, wire.TopologyDirective{
		Mode: "hash-quota",
		Shards: []wire.TopologyShardSpec{
			{Weight: 1},
			trustSpecFor(t, platform, peerEncl, "loop://peer", "", 1),
		},
	}); err != nil {
		t.Fatal(err)
	}
	lb.Register("loop://front", front1)

	sendRound := func(epoch int) []nn.ParamSet {
		t.Helper()
		round := make([]nn.ParamSet, clients)
		for i := range round {
			u := initial.Clone()
			u.Layers[0].Tensors[0].AddScalar(float64(epoch*100 + i + 1))
			round[i] = u
			part, err := client.New(client.Config{
				Proxies: []string{"loop://front"}, Server: "loop://agg", Transport: lb,
				ClientID: fmt.Sprintf("c%d", i),
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := part.Attest(ctx, platform.AttestationPublicKey(), frontEncl.Measurement()); err != nil {
				t.Fatal(err)
			}
			if err := part.SendUpdate(ctx, u); err != nil {
				t.Fatal(err)
			}
		}
		return round
	}
	sendRound(0)
	flushTier(t, front1, peer)
	waitServerRound(t, agg, 1)

	// Crash/replace the front. The replacement gets NO RemoteShards —
	// everything it knows about loop://peer must come from the blob.
	blob, err := front1.SealState()
	if err != nil {
		t.Fatal(err)
	}
	lb.Unregister("loop://front")
	front1.Close()
	front2, err := NewSharded(ShardedConfig{
		Upstream: "loop://agg", K: 1, RoundSize: clients, Shards: 1, Seed: 13,
		AdoptSealedTopology: true, Transport: lb,
	}, frontEncl, platform)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(front2.Close)
	if err := front2.RestoreState(blob); err != nil {
		t.Fatalf("restore with sealed trust material: %v", err)
	}
	if got := front2.Topology().Remotes(); len(got) != 1 || got[0] != "loop://peer" {
		t.Fatalf("restored topology remotes = %v", got)
	}
	// A tier sealed BEFORE re-attestation (the peer could still be down)
	// must carry the restored trust forward: its own blob has to remain
	// restorable, or one restart during a peer outage would strand the
	// state file.
	blob2, err := front2.SealState()
	if err != nil {
		t.Fatal(err)
	}
	front2b, err := NewSharded(ShardedConfig{
		Upstream: "loop://agg", K: 1, RoundSize: clients, Shards: 1, Seed: 14,
		AdoptSealedTopology: true, Transport: lb,
	}, frontEncl, platform)
	if err != nil {
		t.Fatal(err)
	}
	if err := front2b.RestoreState(blob2); err != nil {
		t.Fatalf("re-seal before re-attestation lost the remote trust: %v", err)
	}
	front2b.Close()
	if err := front2.ReattestRemotes(ctx); err != nil {
		t.Fatalf("re-attest from seal blob: %v", err)
	}
	lb.Register("loop://front", front2)

	// The restored tier's relay leg must work end to end.
	round2 := sendRound(1)
	flushTier(t, front2, peer)
	waitServerRound(t, agg, 2)
	classic, err := nn.Average(round2)
	if err != nil {
		t.Fatal(err)
	}
	if !agg.Global().ApproxEqual(classic, 1e-9) {
		t.Fatal("restored tier's relayed round diverged from classic FedAvg")
	}
}

// TestSyncPeersDirective: one admin directive reshapes the front tier's
// quota AND the remote peer's own round size in the same epoch, through
// the admin sub-client. Without the sync, the operator would have to
// reconfigure the peer by hand before its rounds could ever close under
// the new quota.
func TestSyncPeersDirective(t *testing.T) {
	platform, _ := fixtures(t)
	const clients = 6
	initial := testArch().New(1).SnapshotParams()

	lb := transport.NewLoopback()
	agg, err := NewAggServer(initial, clients)
	if err != nil {
		t.Fatal(err)
	}
	lb.Register("loop://agg", agg)

	peerEncl, err := enclave.New(enclave.Config{CodeIdentity: "sync-peer"}, platform)
	if err != nil {
		t.Fatal(err)
	}
	// The peer starts with a WRONG round size (5): under the staged
	// topology its quota will be 3, and without SyncPeers its rounds
	// would never close.
	peer, err := NewSharded(ShardedConfig{
		Upstream: "loop://agg", K: 1, RoundSize: 5, Shards: 1, Seed: 21,
		HopSecret: "peer-secret", Transport: lb,
	}, peerEncl, platform)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(peer.Close)
	lb.Register("loop://peer", peer)

	frontEncl, err := enclave.New(enclave.Config{CodeIdentity: "sync-front"}, platform)
	if err != nil {
		t.Fatal(err)
	}
	front, err := NewSharded(ShardedConfig{
		Upstream: "loop://agg", K: 1, RoundSize: clients, Shards: 1, Seed: 22,
		Routing: route.ModeHashQuota, HopSecret: "front-secret", Transport: lb,
	}, frontEncl, platform)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(front.Close)
	lb.Register("loop://front", front)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// A directive whose peer sync CANNOT succeed (wrong inter-proxy
	// secret) must be all-or-nothing: probe-first means the peer is
	// never resized, and the staged plan is discarded instead of
	// auto-promoting a half-applied reshape at the next round close.
	admin := client.NewAdmin(lb, "loop://front", "front-secret")
	if _, err := admin.Stage(ctx, wire.TopologyDirective{
		Mode: "hash-quota",
		Shards: []wire.TopologyShardSpec{
			{Weight: 1},
			trustSpecFor(t, platform, peerEncl, "loop://peer", "WRONG-secret", 1),
		},
		SyncPeers: true,
	}); err == nil {
		t.Fatal("sync_peers with an unauthenticated peer must fail")
	}
	if staged := front.planner.Staged(); staged != nil {
		t.Fatal("failed sync_peers directive left a plan staged (would auto-promote half-applied)")
	}
	if got := peer.Topology().RoundSize(); got != 5 {
		t.Fatalf("failed sync_peers directive resized the peer to %d", got)
	}

	// ONE directive through the admin sub-client: attach the remote
	// shard at weight 1 (quota 3 of 6) and drive the peer's round size
	// to that quota in the same step.
	st, err := admin.Stage(ctx, wire.TopologyDirective{
		Mode: "hash-quota",
		Shards: []wire.TopologyShardSpec{
			{Weight: 1},
			trustSpecFor(t, platform, peerEncl, "loop://peer", "peer-secret", 1),
		},
		SyncPeers: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Shards) != 2 {
		t.Fatalf("front topology after directive: %+v", st)
	}
	if got := peer.Topology().RoundSize(); got != 3 {
		t.Fatalf("peer round size = %d, want 3 (the shard's quota) in the same epoch", got)
	}

	// The reshaped tier closes a full round end to end.
	updates := make([]nn.ParamSet, clients)
	for i := range updates {
		u := initial.Clone()
		u.Layers[0].Tensors[0].AddScalar(float64(i + 1))
		updates[i] = u
		part, err := client.New(client.Config{
			Proxies: []string{"loop://front"}, Server: "loop://agg", Transport: lb,
			ClientID: fmt.Sprintf("c%d", i),
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := part.Attest(ctx, platform.AttestationPublicKey(), frontEncl.Measurement()); err != nil {
			t.Fatal(err)
		}
		if err := part.SendUpdate(ctx, u); err != nil {
			t.Fatal(err)
		}
	}
	flushTier(t, front, peer)
	waitServerRound(t, agg, 1)
	want, err := nn.Average(updates)
	if err != nil {
		t.Fatal(err)
	}
	if !agg.Global().ApproxEqual(want, 1e-9) {
		t.Fatal("synced-quota round diverged from classic FedAvg")
	}

	// A sync_peers directive against a MID-ROUND tier must be rejected:
	// the peer would apply its new round size immediately while this
	// tier still owes it old-quota material.
	sendTyped(t, lb, frontEncl, "loop://front", "c0", updates[0])
	if _, err := admin.Stage(ctx, wire.TopologyDirective{
		Shards: []wire.TopologyShardSpec{
			{Weight: 2},
			trustSpecFor(t, platform, peerEncl, "loop://peer", "peer-secret", 1),
		},
		SyncPeers: true,
	}); err == nil {
		t.Fatal("mid-round sync_peers directive must be rejected (quiescence precondition)")
	}
}
