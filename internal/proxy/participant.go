package proxy

import (
	"net/http"

	"mixnn/internal/client"
	"mixnn/internal/transport"
)

// Participant is the participant-side session handle, now implemented
// by the SDK in internal/client (attestation, per-proxy enclave keys,
// ordered failover, typed transport). The alias keeps the package's
// historical construction site working.
type Participant = client.Participant

// NewParticipant builds a single-proxy participant session over HTTP —
// the pre-SDK constructor, kept for callers that predate failover
// lists. httpc may be nil for a default client; use client.New for the
// full configuration surface (failover, custom transports, client ids).
func NewParticipant(proxyURL, serverURL string, httpc *http.Client) *Participant {
	p, err := client.New(client.Config{
		Proxies:   []string{proxyURL},
		Server:    serverURL,
		Transport: transport.NewHTTP(httpc),
	})
	if err != nil {
		// Unreachable: the config always names one proxy.
		panic(err)
	}
	return p
}
