package proxy

import (
	"bytes"
	"context"
	"crypto/ecdsa"
	"crypto/rand"
	"crypto/rsa"
	"encoding/hex"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"mixnn/internal/enclave"
	"mixnn/internal/nn"
	"mixnn/internal/wire"
)

// Participant is the client-side transport: it attests the MixNN proxy,
// encrypts parameter updates with the attested enclave key, and fetches
// global models from the aggregation server. This is the component behind
// the paper's "users have only to configure its system to use a proxy".
type Participant struct {
	proxyURL  string
	serverURL string
	httpc     *http.Client
	clientID  string

	enclaveKey *rsa.PublicKey
}

// SetClientID sets the pseudonymous id sent as the X-Mixnn-Client header
// with each update. A sharded proxy uses it for sticky shard routing, so
// a participant's updates always meet the same mixing buffer; without it
// routing falls back to round-robin.
func (c *Participant) SetClientID(id string) { c.clientID = id }

// NewParticipant builds a transport for the given proxy and server URLs.
// httpc may be nil for a default client.
func NewParticipant(proxyURL, serverURL string, httpc *http.Client) *Participant {
	if httpc == nil {
		httpc = &http.Client{Timeout: 60 * time.Second}
	}
	return &Participant{proxyURL: proxyURL, serverURL: serverURL, httpc: httpc}
}

// fetchReport retrieves a proxy's attestation report bound to a fresh
// nonce (shared by the participant handshake and the cascade hop
// handshake).
func fetchReport(ctx context.Context, httpc *http.Client, baseURL string) (enclave.Report, []byte, error) {
	nonce := make([]byte, 16)
	if _, err := rand.Read(nonce); err != nil {
		return enclave.Report{}, nil, fmt.Errorf("proxy: attestation nonce: %w", err)
	}
	url := fmt.Sprintf("%s/v1/attestation?nonce=%s", baseURL, hex.EncodeToString(nonce))
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return enclave.Report{}, nil, err
	}
	resp, err := httpc.Do(req)
	if err != nil {
		return enclave.Report{}, nil, fmt.Errorf("proxy: attestation request: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return enclave.Report{}, nil, fmt.Errorf("proxy: attestation returned %s", resp.Status)
	}
	var ar wire.AttestationResponse
	if err := wire.DecodeJSON(resp.Body, &ar); err != nil {
		return enclave.Report{}, nil, err
	}
	var rep enclave.Report
	meas, err := hex.DecodeString(ar.MeasurementHex)
	if err != nil || len(meas) != 32 {
		return enclave.Report{}, nil, fmt.Errorf("proxy: malformed measurement in report")
	}
	copy(rep.Measurement[:], meas)
	if rep.Nonce, err = hex.DecodeString(ar.NonceHex); err != nil {
		return enclave.Report{}, nil, fmt.Errorf("proxy: malformed nonce in report")
	}
	rep.PubKeyDER = ar.PubKeyDER
	rep.Signature = ar.Signature
	return rep, nonce, nil
}

// Attest fetches and verifies the proxy's attestation report against the
// pinned authority key and expected measurement, then pins the enclave's
// encryption key for subsequent SendUpdate calls.
func (c *Participant) Attest(ctx context.Context, authority *ecdsa.PublicKey, measurement [32]byte) error {
	rep, nonce, err := fetchReport(ctx, c.httpc, c.proxyURL)
	if err != nil {
		return err
	}
	pub, err := rep.Verify(authority, measurement, nonce)
	if err != nil {
		return err
	}
	rsaPub, ok := pub.(*rsa.PublicKey)
	if !ok {
		return fmt.Errorf("proxy: attested key is %T, want RSA", pub)
	}
	c.enclaveKey = rsaPub
	return nil
}

// SetEnclaveKey pins the enclave key directly (for deployments where the
// key is distributed out of band instead of via attestation).
func (c *Participant) SetEnclaveKey(pub *rsa.PublicKey) { c.enclaveKey = pub }

// SendUpdate encrypts the parameter update for the attested enclave and
// posts it to the proxy. A 202 acknowledges acceptance into the mixing
// tier — delivery to the aggregation server is asynchronous (the proxy's
// sealed outbox retries across downstream outages), so observe round
// progress with WaitForRound rather than inferring it from the send.
func (c *Participant) SendUpdate(ctx context.Context, ps nn.ParamSet) error {
	if c.enclaveKey == nil {
		return fmt.Errorf("proxy: no enclave key pinned; call Attest first")
	}
	raw, err := nn.EncodeParamSet(ps)
	if err != nil {
		return err
	}
	ct, err := enclave.Encrypt(c.enclaveKey, raw)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.proxyURL+"/v1/update", bytes.NewReader(ct))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", wire.ContentTypeUpdate)
	if c.clientID != "" {
		req.Header.Set(wire.HeaderClient, c.clientID)
	}
	resp, err := c.httpc.Do(req)
	if err != nil {
		return fmt.Errorf("proxy: send update: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		return fmt.Errorf("proxy: update rejected: %s", resp.Status)
	}
	return nil
}

// FetchModel retrieves the current global model and round number from the
// aggregation server.
func (c *Participant) FetchModel(ctx context.Context) (int, nn.ParamSet, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.serverURL+"/v1/model", nil)
	if err != nil {
		return 0, nn.ParamSet{}, err
	}
	resp, err := c.httpc.Do(req)
	if err != nil {
		return 0, nn.ParamSet{}, fmt.Errorf("proxy: fetch model: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, nn.ParamSet{}, fmt.Errorf("proxy: model fetch returned %s", resp.Status)
	}
	round, err := strconv.Atoi(resp.Header.Get(wire.HeaderRound))
	if err != nil {
		return 0, nn.ParamSet{}, fmt.Errorf("proxy: missing round header: %w", err)
	}
	body, err := wire.ReadBody(resp.Body)
	if err != nil {
		return 0, nn.ParamSet{}, err
	}
	ps, err := nn.DecodeParamSet(body)
	if err != nil {
		return 0, nn.ParamSet{}, err
	}
	return round, ps, nil
}

// WaitForRound polls the server until its round counter reaches minRound
// (or ctx expires) and returns the model of that round.
func (c *Participant) WaitForRound(ctx context.Context, minRound int, poll time.Duration) (int, nn.ParamSet, error) {
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	for {
		round, ps, err := c.FetchModel(ctx)
		if err == nil && round >= minRound {
			return round, ps, nil
		}
		select {
		case <-ctx.Done():
			if err == nil {
				err = ctx.Err()
			}
			return 0, nn.ParamSet{}, fmt.Errorf("proxy: waiting for round %d: %w", minRound, err)
		case <-time.After(poll):
		}
	}
}
